// Ablation (§1.2): the verbatim §1.1 delta tower (memoize Delta^j over
// j-tuples of updates) versus the factorized view hierarchy, on the
// Example 1.2 self-join count. Both are *recursive* IVM — the difference
// is the representation of the deltas. The paper's motivation for the
// compiler is precisely that the tower's memo "may become large ...
// [which] defeats the practical purpose"; this bench quantifies it:
// the tower stores Theta(|U|^(k-1)) values and performs Theta(|U|)
// additions per update, while the factorized hierarchy stores O(adom)
// values and performs O(1) operations.

#include <chrono>
#include <cstdio>

#include "agca/ast.h"
#include "baseline/delta_tower.h"
#include "runtime/engine.h"
#include "util/random.h"
#include "util/table_printer.h"

namespace {

using ringdb::Numeric;
using ringdb::Rng;
using ringdb::Symbol;
using ringdb::Value;
using ringdb::agca::CmpOp;
using ringdb::agca::Expr;
using ringdb::agca::ExprPtr;
using ringdb::agca::Term;

Symbol S(const char* s) { return Symbol::Intern(s); }

struct Row {
  int64_t adom;
  double tower_us;
  size_t tower_values;
  double engine_us;
  size_t engine_values;
  bool agree;
};

Row RunOne(int64_t adom, int updates) {
  ringdb::ring::Catalog catalog;
  Symbol r = S("Rt");
  catalog.AddRelation(r, {S("A")});
  ExprPtr body = Expr::Mul({Expr::Relation(r, {Term(S("x"))}),
                            Expr::Relation(r, {Term(S("y"))}),
                            Expr::Cmp(CmpOp::kEq, Expr::Var(S("x")),
                                      Expr::Var(S("y")))});

  ringdb::baseline::DeltaTowerIvm tower(catalog, body);
  auto engine = ringdb::runtime::Engine::Create(catalog, {}, body);

  Rng rng(adom);
  std::vector<ringdb::ring::Update> stream;
  for (int i = 0; i < updates; ++i) {
    stream.push_back(ringdb::ring::Update::Insert(
        r, {Value(rng.Range(0, adom - 1))}));
  }

  Row row;
  row.adom = adom;
  {
    auto start = std::chrono::steady_clock::now();
    for (const auto& u : stream) (void)tower.Apply(u);
    row.tower_us = 1e6 *
                   std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count() /
                   updates;
    row.tower_values = tower.MemoizedValues();
  }
  {
    auto start = std::chrono::steady_clock::now();
    for (const auto& u : stream) (void)engine->Apply(u);
    row.engine_us = 1e6 *
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count() /
                    updates;
    size_t n = 0;
    for (size_t v = 0; v < engine->program().views.size(); ++v) {
      n += engine->executor().view(static_cast<int>(v)).size();
    }
    row.engine_values = n;
  }
  row.agree = (tower.ResultScalar() == engine->ResultScalar());
  return row;
}

}  // namespace

int main() {
  std::printf(
      "ablation — §1.1 delta tower (unfactorized Delta^j memo tables) vs\n"
      "the factorized view hierarchy, Example 1.2 query, insert stream\n\n");
  ringdb::TablePrinter table({"adom", "tower us/upd", "tower memo values",
                              "hierarchy us/upd", "hierarchy entries",
                              "Q agree?"});
  for (int64_t adom : {8, 16, 32, 64, 128}) {
    Row row = RunOne(adom, 2000);
    char a[32], b[32];
    std::snprintf(a, sizeof(a), "%.2f", row.tower_us);
    std::snprintf(b, sizeof(b), "%.3f", row.engine_us);
    table.AddRow({std::to_string(row.adom), a,
                  std::to_string(row.tower_values), b,
                  std::to_string(row.engine_values),
                  row.agree ? "yes" : "NO!"});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nexpected shape: tower memo ~ (2*adom)^2 values and per-update "
      "work ~ 2*adom additions;\nhierarchy entries ~ adom with constant "
      "per-update work. Both compute identical Q.\n");
  return 0;
}
