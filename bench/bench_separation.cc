// E8 — the complexity separation (Theorem 7.1): per-update maintenance
// cost as the database grows, for
//   * recursive IVM (this paper): constant per update,
//   * classical first-order IVM: evaluates the delta query against the
//     base database per update (grows with the matching-group size),
//   * naive re-evaluation: O(n^deg) per update.
//
// Two queries: the degree-2 self-join count of Example 1.2 and a
// degree-3 self-join. Absolute numbers are machine-dependent; the shape
// (flat vs growing columns) is the reproduced result.

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "agca/ast.h"
#include "baseline/baselines.h"
#include "runtime/engine.h"
#include "util/random.h"
#include "util/table_printer.h"

namespace {

using ringdb::Numeric;
using ringdb::Rng;
using ringdb::Symbol;
using ringdb::Value;
using ringdb::agca::CmpOp;
using ringdb::agca::Expr;
using ringdb::agca::ExprPtr;
using ringdb::agca::Term;
using ringdb::ring::Update;

Symbol S(const char* s) { return Symbol::Intern(s); }

struct QuerySpec {
  std::string name;
  ringdb::ring::Catalog catalog;
  ExprPtr body;
  Symbol relation;
  int64_t naive_cap;      // largest size the naive baseline still runs at
  int64_t classical_cap;  // ditto for classical IVM
};

QuerySpec SelfJoinCount2() {
  QuerySpec q;
  q.name = "degree-2 self-join count (Ex. 1.2)";
  q.relation = S("R2s");
  q.catalog.AddRelation(q.relation, {S("A")});
  q.body = Expr::Mul({Expr::Relation(q.relation, {Term(S("x"))}),
                      Expr::Relation(q.relation, {Term(S("y"))}),
                      Expr::Cmp(CmpOp::kEq, Expr::Var(S("x")),
                                Expr::Var(S("y")))});
  q.naive_cap = 2048;
  q.classical_cap = 1 << 20;
  return q;
}

QuerySpec SelfJoinCount3() {
  QuerySpec q;
  q.name = "degree-3 self-join count";
  q.relation = S("R3s");
  q.catalog.AddRelation(q.relation, {S("A")});
  // Conditions interleaved right after the atoms that bind them, so the
  // reference evaluator filters early (it is still O(n^3) worst case).
  q.body = Expr::Mul({Expr::Relation(q.relation, {Term(S("x"))}),
                      Expr::Relation(q.relation, {Term(S("y"))}),
                      Expr::Cmp(CmpOp::kEq, Expr::Var(S("x")),
                                Expr::Var(S("y"))),
                      Expr::Relation(q.relation, {Term(S("z"))}),
                      Expr::Cmp(CmpOp::kEq, Expr::Var(S("y")),
                                Expr::Var(S("z")))});
  q.naive_cap = 512;
  q.classical_cap = 1 << 20;
  return q;
}

// Measures the average latency of `measured_updates` updates applied on
// top of a database of `size` tuples: `load` grows the database (cheap
// path where available), `apply` is the timed per-update maintenance.
template <typename LoadFn, typename ApplyFn>
double MeasureUs(int64_t size, int measured_updates, uint64_t seed,
                 LoadFn&& load, ApplyFn&& apply) {
  Rng rng(seed);
  for (int64_t i = 0; i < size; ++i) {
    load(Update::Insert(Symbol(), {Value(rng.Range(0, size / 4 + 1))}));
  }
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < measured_updates; ++i) {
    apply(Update::Insert(Symbol(), {Value(rng.Range(0, size / 4 + 1))}));
  }
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return 1e6 * elapsed / measured_updates;
}

void RunQuery(const QuerySpec& spec) {
  std::printf("\n%s\n", spec.name.c_str());
  ringdb::TablePrinter table(
      {"db size", "recursive IVM us/upd", "classical IVM us/upd",
       "naive reeval us/upd"});
  for (int64_t size : {256, 512, 1024, 2048, 4096, 8192}) {
    int measured = 512;
    auto engine =
        ringdb::runtime::Engine::Create(spec.catalog, {}, spec.body);
    auto engine_apply = [&](Update u) {
      u.relation = spec.relation;
      (void)engine->Apply(u);
    };
    double engine_us =
        MeasureUs(size, measured, 42, engine_apply, engine_apply);

    std::string classical_us = "-";
    if (size <= spec.classical_cap) {
      ringdb::baseline::ClassicalIvm classical(spec.catalog, {}, spec.body);
      double us = MeasureUs(
          size, std::min(measured, 64), 42,
          [&](Update u) {
            u.relation = spec.relation;
            // Warm-up: only the base database matters for delta-eval cost.
            classical.LoadWithoutViewMaintenance(u);
          },
          [&](Update u) {
            u.relation = spec.relation;
            (void)classical.Apply(u);
          });
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", us);
      classical_us = buf;
    }

    std::string naive_us = "-";
    if (size <= spec.naive_cap) {
      ringdb::baseline::NaiveReevaluator naive(spec.catalog, {}, spec.body);
      double us = MeasureUs(
          size, 4, 42,
          [&](Update u) {
            u.relation = spec.relation;
            naive.Load(u);  // bulk load, no re-evaluation
          },
          [&](Update u) {
            u.relation = spec.relation;
            (void)naive.Apply(u);
          });
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f", us);
      naive_us = buf;
    }

    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", engine_us);
    table.AddRow({std::to_string(size), buf, classical_us, naive_us});
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace

int main() {
  std::printf(
      "Theorem 7.1 separation — per-update latency vs database size\n"
      "(expected shape: recursive IVM flat; classical grows with the\n"
      "matching-group size; naive grows polynomially, O(n^deg))\n");
  RunQuery(SelfJoinCount2());
  RunQuery(SelfJoinCount3());
  return 0;
}
