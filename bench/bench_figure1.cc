// E1 — regenerates Figure 1 of the paper: the seven memoized values for
// f(x) = x² under U = {+1, -1}, for x = -2 .. 4, maintained by recursive
// delta memoization (additions only after initialization).
//
// Expected output (paper, Figure 1):
//   x    f(x)  Δf(x,-1) Δf(x,+1)  Δ²(-1,-1) Δ²(-1,+1) Δ²(+1,-1) Δ²(+1,+1)
//   -2   4     5         -3        2         -2        -2        2
//   ...
//   4    16    -7        9         2         -2        -2        2

#include <cstdio>

#include "algebra/memoizer.h"
#include "util/table_printer.h"

int main() {
  using Memo = ringdb::algebra::RecursiveMemoizer<int64_t, int64_t, int64_t>;
  // Update index 0 is +1, index 1 is -1 (matching the paper's columns,
  // which list -1 before +1).
  Memo memo([](const int64_t& x) { return x * x; },
            [](const int64_t& x, const int64_t& u) { return x + u; },
            {+1, -1}, /*depth=*/3, /*initial=*/-2);

  std::printf(
      "Figure 1: recursive memoization of deltas for f(x) = x^2\n"
      "(7 memoized values per row; rows advance by ApplyUpdate(+1), "
      "never re-evaluating f)\n\n");
  ringdb::TablePrinter table({"x", "f(x)", "df(x,-1)", "df(x,+1)",
                              "d2f(x,-1,-1)", "d2f(x,-1,+1)",
                              "d2f(x,+1,-1)", "d2f(x,+1,+1)"});
  auto cell = [](int64_t v) { return std::to_string(v); };
  for (int64_t x = -2; x <= 4; ++x) {
    table.AddRow({cell(x), cell(memo.Current()), cell(memo.DeltaAt({1})),
                  cell(memo.DeltaAt({0})), cell(memo.DeltaAt({1, 1})),
                  cell(memo.DeltaAt({1, 0})), cell(memo.DeltaAt({0, 1})),
                  cell(memo.DeltaAt({0, 0}))});
    if (x < 4) memo.ApplyUpdate(0);
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nadditions performed for the 6 row advances: %zu "
      "(3 per update: levels 0 and 1; level 2 is constant)\n",
      memo.AdditionsPerformed());
  return 0;
}
