// E10 — end-to-end stream analytics throughput: the revenue-per-customer
// query and the Example 5.2 per-customer nation count, maintained over
// generated order/lineitem/customer streams (uniform and zipf-skewed,
// with deletions), comparing recursive IVM against classical first-order
// IVM. Expected shape: recursive IVM sustains a multiple of classical
// throughput, growing with stream length (classical per-update cost
// scales with matching-group sizes).

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baseline/baselines.h"
#include "exec/batch.h"
#include "log/durable_log.h"
#include "runtime/engine.h"
#include "sql/translate.h"
#include "util/table_printer.h"
#include "workload/stream.h"

namespace {

using ringdb::Symbol;
using ringdb::Value;

Symbol S(const char* s) { return Symbol::Intern(s); }

struct Config {
  std::string name;
  double zipf_s;
  double delete_fraction;
};

// Command line: --updates N (sweep event budget), --json PATH (snapshot
// output, empty disables), --label STR (snapshot label), --sweep-only
// (skip the classical-IVM comparison sections; CI smoke mode),
// --backend interpret|compile|both (which statement-execution backends
// the sweep measures; compile rows are skipped with a note when no host
// C compiler is available), --stats (dump each sweep engine's full
// metrics export — per-statement counters, dispatch decisions, stage
// spans — after its row). The default output name is distinct from the
// committed trajectory file BENCH_tpch_stream.json (same schema) so an
// argless run never clobbers the recorded per-PR history; merge
// snapshots into it deliberately.
struct Options {
  int updates = 200000;
  std::string json_path = "BENCH_tpch_stream.dev.json";
  std::string label = "dev";
  bool sweep_only = false;
  std::string backend = "both";
  std::string stream = "both";   // uniform|zipf|both: sweep stream filter
  std::string config_filter;     // substring filter over sweep config names
  bool stats = false;
  // off|never|window|group|all: adds the durability overhead section,
  // which re-runs the zipf batch-1024 row with every applied window
  // appended write-ahead (log/durable_log.h) under the given fsync
  // policy, against the memory-only baseline. Empty = section skipped.
  std::string durability;
  // --assert-scaling: fail (exit 1) unless every 4-shard batch-1024 row
  // reached >= 2x its 1-shard row — skipped with a note on hosts with
  // hardware_concurrency < 4, where no scaling claim is possible.
  bool assert_scaling = false;
  // --trace FILE: enable the per-window flight recorder on every batched
  // sweep engine (Engine::EnableTracing), write the last batch-1024
  // row's Chrome trace-event JSON to FILE, and attach a
  // "stage_breakdown" object to every traced row. Single-tuple rows run
  // untraced (they go through Engine::Apply, below window granularity).
  std::string trace_path;
};

// One measured (stream, engine-config) cell of the sweep, serialized to
// BENCH_tpch_stream.json so the repo tracks a perf trajectory across PRs.
struct SweepResult {
  std::string stream;
  std::string config;
  std::string backend;  // "interpret" or "compile"
  // Batch delta representation the run executed with: "columnar" (the
  // default dense-column windows) or "row" (RINGDB_FORCE_ROW=1 legacy
  // per-tuple path; the differential suite pins both to identical
  // results and operation counts).
  std::string representation;
  size_t batch_size;
  size_t shards;
  double upd_per_s;
  size_t approx_bytes;
  std::string stats_json;  // Engine::StatsJson of the run (valid JSON)
  // Engine::TraceBreakdownJson when the run was traced (empty = "null").
  std::string stage_breakdown;
};

// One line of the snapshot's `scaling` block: a multi-shard batch-1024
// row normalized to its same-(stream, backend) 1-shard row. `scaled` is
// an honesty label, not a measurement: it is refused outright when the
// host has fewer cores than the row has shards, so 1-core container
// numbers can never masquerade as scaling data no matter what the
// speedup ratio happens to be.
struct ScalingEntry {
  std::string stream;
  std::string backend;
  size_t shards;
  double upd_per_s;
  double speedup_vs_1shard;
  bool scaled;
};

std::vector<ScalingEntry> ComputeScaling(
    const std::vector<SweepResult>& results) {
  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<ScalingEntry> out;
  for (const SweepResult& r : results) {
    if (r.batch_size != 1024 || r.shards <= 1) continue;
    const SweepResult* base = nullptr;
    for (const SweepResult& b : results) {
      if (b.batch_size == 1024 && b.shards == 1 && b.stream == r.stream &&
          b.backend == r.backend && b.representation == r.representation &&
          b.config.rfind("durability=", 0) != 0) {
        base = &b;
        break;
      }
    }
    if (base == nullptr || base->upd_per_s <= 0.0) continue;
    out.push_back(ScalingEntry{
        r.stream, r.backend, r.shards, r.upd_per_s,
        r.upd_per_s / base->upd_per_s, hw >= r.shards});
  }
  return out;
}

// --assert-scaling: on hosts with the cores to back it up, the 4-shard
// batch-1024 rows must actually scale (>= 2x their 1-shard row). On
// smaller hosts the assertion is skipped with a note — there is nothing
// to assert, and the emitted rows already carry scaled=false.
bool AssertScaling(const std::vector<ScalingEntry>& scaling) {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < 4) {
    std::printf("\n--assert-scaling: skipped, hardware_concurrency=%u < 4 "
                "(rows are labeled scaled=false)\n", hw);
    return true;
  }
  bool ok = true;
  bool any = false;
  for (const ScalingEntry& e : scaling) {
    if (e.shards != 4 || !e.scaled) continue;
    any = true;
    if (e.speedup_vs_1shard < 2.0) {
      std::fprintf(stderr,
                   "--assert-scaling FAILED: %s/%s 4 shards is only "
                   "%.2fx the 1-shard row (need >= 2x)\n",
                   e.stream.c_str(), e.backend.c_str(),
                   e.speedup_vs_1shard);
      ok = false;
    }
  }
  if (!any) {
    std::fprintf(stderr, "--assert-scaling FAILED: no 4-shard batch-1024 "
                         "row ran (config filter?)\n");
    return false;
  }
  if (ok) std::printf("\n--assert-scaling: ok (all 4-shard rows >= 2x)\n");
  return ok;
}

// The representation the executors will run with, decided by the same
// environment knob the executors sample at construction.
const char* ActiveRepresentation() {
  const char* force_row = std::getenv("RINGDB_FORCE_ROW");
  return force_row != nullptr && force_row[0] == '1' ? "row" : "columnar";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

void WriteSnapshotJson(const Options& opt,
                       const std::vector<SweepResult>& results) {
  if (opt.json_path.empty()) return;
  std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"tpch_stream\",\n  \"snapshots\": [\n");
  std::fprintf(f, "    {\n      \"label\": \"%s\",\n      \"updates\": %d,\n",
               JsonEscape(opt.label).c_str(), opt.updates);
  std::fprintf(f, "      \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "      \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    std::fprintf(f,
                 "        {\"stream\": \"%s\", \"config\": \"%s\", "
                 "\"backend\": \"%s\", \"representation\": \"%s\", "
                 "\"batch_size\": %zu, \"shards\": %zu, "
                 "\"hardware_concurrency\": %u, "
                 "\"upd_per_s\": %.0f, \"approx_bytes\": %zu,\n"
                 "         \"stage_breakdown\": %s,\n"
                 "         \"stats\": %s}%s\n",
                 JsonEscape(r.stream).c_str(), JsonEscape(r.config).c_str(),
                 JsonEscape(r.backend).c_str(),
                 JsonEscape(r.representation).c_str(), r.batch_size,
                 r.shards, std::thread::hardware_concurrency(),
                 r.upd_per_s, r.approx_bytes,
                 r.stage_breakdown.empty() ? "null"
                                           : r.stage_breakdown.c_str(),
                 r.stats_json.empty() ? "null" : r.stats_json.c_str(),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "      ],\n");
  // Multi-shard throughput normalized to the matching 1-shard row.
  // `scaled: false` rows are data recorded without the cores to back
  // them (or genuinely flat scaling on a capable host — the speedup
  // value disambiguates); downstream gates must never read a speedup
  // off a scaled=false row as evidence of scaling.
  const std::vector<ScalingEntry> scaling = ComputeScaling(results);
  std::fprintf(f, "      \"scaling\": [\n");
  for (size_t i = 0; i < scaling.size(); ++i) {
    const ScalingEntry& e = scaling[i];
    std::fprintf(f,
                 "        {\"stream\": \"%s\", \"backend\": \"%s\", "
                 "\"shards\": %zu, \"upd_per_s\": %.0f, "
                 "\"speedup_vs_1shard\": %.3f, \"scaled\": %s}%s\n",
                 JsonEscape(e.stream).c_str(), JsonEscape(e.backend).c_str(),
                 e.shards, e.upd_per_s, e.speedup_vs_1shard,
                 e.scaled ? "true" : "false",
                 i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(f, "      ]\n    }\n  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu results)\n", opt.json_path.c_str(),
              results.size());
}

double Throughput(const std::function<void(const ringdb::ring::Update&)>&
                      apply,
                  ringdb::workload::RoundRobinStream& stream, int updates) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < updates; ++i) apply(stream.Next());
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return updates / elapsed;
}

void RevenueQuery() {
  std::printf("revenue per customer over orders/lineitem streams\n\n");
  ringdb::ring::Catalog catalog = ringdb::workload::OrdersSchema();
  auto t = ringdb::sql::TranslateSql(
      catalog,
      "SELECT o.ckey, SUM(l.price * l.qty) FROM orders o, lineitem l "
      "WHERE o.okey = l.okey GROUP BY o.ckey");
  if (!t.ok()) {
    std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
    return;
  }
  const std::vector<Config> configs = {
      {"uniform, insert-only", 0.0, 0.0},
      {"uniform, 15% deletes", 0.0, 0.15},
      {"zipf(1.1), 15% deletes", 1.1, 0.15},
  };
  ringdb::TablePrinter table({"stream", "recursive IVM upd/s",
                              "classical IVM upd/s", "speedup"});
  for (const Config& config : configs) {
    auto make_stream = [&](uint64_t seed) {
      ringdb::workload::StreamOptions options;
      options.seed = seed;
      options.domain_size = 4096;
      options.zipf_s = config.zipf_s;
      options.delete_fraction = config.delete_fraction;
      std::vector<ringdb::workload::RelationStream> streams;
      streams.emplace_back(catalog, S("orders"), options);
      streams.emplace_back(catalog, S("lineitem"), options);
      return ringdb::workload::RoundRobinStream(std::move(streams));
    };

    auto engine =
        ringdb::runtime::Engine::Create(catalog, t->group_vars, t->body);
    auto s1 = make_stream(99);
    double engine_tput = Throughput(
        [&](const ringdb::ring::Update& u) { (void)engine->Apply(u); }, s1,
        100000);

    ringdb::baseline::ClassicalIvm classical(catalog, t->group_vars,
                                             t->body);
    auto s2 = make_stream(99);
    double classical_tput = Throughput(
        [&](const ringdb::ring::Update& u) { (void)classical.Apply(u); },
        s2, 20000);

    char a[32], b[32], c[32];
    std::snprintf(a, sizeof(a), "%.0f", engine_tput);
    std::snprintf(b, sizeof(b), "%.0f", classical_tput);
    std::snprintf(c, sizeof(c), "%.1fx", engine_tput / classical_tput);
    table.AddRow({config.name, a, b, c});
  }
  std::printf("%s", table.Render().c_str());
}

void NationCountQuery() {
  std::printf("\nper-customer same-nation count (Ex. 5.2 shape)\n\n");
  ringdb::ring::Catalog catalog;
  catalog.AddRelation(S("customer"), {S("cid"), S("nation")});
  auto t = ringdb::sql::TranslateSql(
      catalog,
      "SELECT C1.cid, SUM(1) FROM customer C1, customer C2 "
      "WHERE C1.nation = C2.nation GROUP BY C1.cid");
  if (!t.ok()) {
    std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
    return;
  }
  // Nation domain small (25 nations): the grouped self-join has real
  // fan-out (every same-nation customer is an affected value).
  ringdb::workload::StreamOptions options;
  options.seed = 5;
  options.domain_size = 25;
  options.delete_fraction = 0.3;  // heavy churn keeps groups bounded

  ringdb::TablePrinter table(
      {"updates", "recursive IVM upd/s", "classical IVM upd/s"});
  for (int updates : {2000, 8000, 32000}) {
    auto engine =
        ringdb::runtime::Engine::Create(catalog, t->group_vars, t->body);
    std::vector<ringdb::workload::RelationStream> se;
    se.emplace_back(catalog, S("customer"), options);
    ringdb::workload::RoundRobinStream stream_e(std::move(se));
    double engine_tput = Throughput(
        [&](const ringdb::ring::Update& u) { (void)engine->Apply(u); },
        stream_e, updates);

    ringdb::baseline::ClassicalIvm classical(catalog, t->group_vars,
                                             t->body);
    std::vector<ringdb::workload::RelationStream> sc;
    sc.emplace_back(catalog, S("customer"), options);
    ringdb::workload::RoundRobinStream stream_c(std::move(sc));
    double classical_tput = Throughput(
        [&](const ringdb::ring::Update& u) { (void)classical.Apply(u); },
        stream_c, std::min(updates, 8000));

    char a[32], b[32];
    std::snprintf(a, sizeof(a), "%.0f", engine_tput);
    std::snprintf(b, sizeof(b), "%.0f", classical_tput);
    table.AddRow({std::to_string(updates), a, b});
  }
  std::printf("%s", table.Render().c_str());
}

// E11 — batched + sharded execution sweep (src/exec/): the revenue query
// maintained over the same streams through Engine::ApplyBatch at varying
// batch sizes and shard counts, against the single-tuple single-thread
// path. Batching coalesces each window into per-relation delta GMRs
// (cancelled events vanish, repeated events fire linear triggers once,
// scratch and hash-table reservations amortize); sharding partitions the
// view hierarchy by the join key (okey) and applies sub-batches on a
// persistent worker pool.
void BatchShardSweep(const Options& opt,
                     std::vector<SweepResult>* all_results,
                     std::string* trace_json) {
  std::printf("\nbatched + sharded execution sweep (revenue query)\n\n");
  ringdb::ring::Catalog catalog = ringdb::workload::OrdersSchema();
  auto t = ringdb::sql::TranslateSql(
      catalog,
      "SELECT o.ckey, SUM(l.price * l.qty) FROM orders o, lineitem l "
      "WHERE o.okey = l.okey GROUP BY o.ckey");
  if (!t.ok()) {
    std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
    return;
  }

  struct SweepConfig {
    std::string name;
    size_t batch_size;
    size_t num_shards;
  };
  const std::vector<SweepConfig> sweep = {
      {"single-tuple (baseline)", 1, 1},
      {"batch 256", 256, 1},
      {"batch 1024", 1024, 1},
      {"batch 1024, 2 shards", 1024, 2},
      {"batch 1024, 4 shards", 1024, 4},
  };
  const std::vector<Config> stream_configs = {
      {"uniform, 15% deletes", 0.0, 0.15},
      {"zipf(1.1), 15% deletes", 1.1, 0.15},
  };
  const int kUpdates = opt.updates;
  std::vector<SweepResult> sweep_results;

  const char* representation = ActiveRepresentation();
  for (const Config& stream_config : stream_configs) {
    if (opt.stream != "both") {
      const bool is_zipf = stream_config.zipf_s > 0.0;
      if (opt.stream == "zipf" ? !is_zipf : is_zipf) continue;
    }
    std::printf("stream: %s, %d updates\n", stream_config.name.c_str(),
                kUpdates);
    // One pre-generated stream per stream shape, shared by every engine
    // config, so all rows maintain the identical update sequence.
    ringdb::workload::StreamOptions options;
    options.seed = 99;
    options.domain_size = 4096;
    options.zipf_s = stream_config.zipf_s;
    options.delete_fraction = stream_config.delete_fraction;
    std::vector<ringdb::workload::RelationStream> streams;
    streams.emplace_back(catalog, S("orders"), options);
    streams.emplace_back(catalog, S("lineitem"), options);
    ringdb::workload::RoundRobinStream stream(std::move(streams));
    std::vector<ringdb::ring::Update> updates;
    updates.reserve(kUpdates);
    for (int i = 0; i < kUpdates; ++i) updates.push_back(stream.Next());

    // Backend dimension: the interpreter rows are the trajectory the
    // repo has tracked since PR 1; the compiled rows measure the emitted
    // C + dlopen backend on identical streams. Engine construction
    // (including the one-time cc invocation, amortized by the .so cache)
    // is outside the timed region, matching the long-lived-engine use
    // the backend targets.
    std::vector<ringdb::runtime::Backend> backends;
    if (opt.backend == "interpret" || opt.backend == "both") {
      backends.push_back(ringdb::runtime::Backend::kInterpret);
    }
    if (opt.backend == "compile" || opt.backend == "both") {
      backends.push_back(ringdb::runtime::Backend::kCompile);
    }
    ringdb::TablePrinter table({"config", "backend", "shards", "upd/s",
                                "vs single-tuple", "view MB"});
    double baseline = 0.0;
    for (const ringdb::runtime::Backend backend : backends) {
      const char* backend_name =
          backend == ringdb::runtime::Backend::kCompile ? "compile"
                                                        : "interpret";
      for (const SweepConfig& config : sweep) {
        if (!opt.config_filter.empty() &&
            config.name.find(opt.config_filter) == std::string::npos) {
          continue;
        }
        ringdb::runtime::EngineOptions engine_options;
        engine_options.batch_size = config.batch_size;
        engine_options.num_shards = config.num_shards;
        engine_options.backend = backend;
        auto engine = ringdb::runtime::Engine::Create(
            catalog, t->group_vars, t->body, engine_options);
        if (!engine.ok()) {
          std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
          return;
        }
        if (backend == ringdb::runtime::Backend::kCompile &&
            !engine->native_enabled()) {
          std::printf("  (compiled backend unavailable: %s)\n",
                      engine->native_status().ToString().c_str());
          break;
        }
        const bool traced =
            !opt.trace_path.empty() && config.batch_size > 1;
        if (traced) engine->EnableTracing();
        auto start = std::chrono::steady_clock::now();
        if (config.batch_size <= 1 && config.num_shards <= 1) {
          for (const ringdb::ring::Update& u : updates) {
            (void)engine->Apply(u);
          }
        } else {
          (void)engine->ApplyBatch(updates);
        }
        double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
        double tput = kUpdates / elapsed;
        if (baseline == 0.0) baseline = tput;
        const size_t bytes = engine->sharded().ApproxBytes();
        sweep_results.push_back(
            SweepResult{stream_config.name, config.name, backend_name,
                        representation, config.batch_size,
                        engine->num_shards(), tput, bytes,
                        engine->StatsJson(9),
                        traced ? engine->TraceBreakdownJson(9)
                               : std::string()});
        if (traced && config.batch_size == 1024) {
          // Later rows overwrite: with both streams the zipf batch-1024
          // row (the acceptance workload) is what lands in the file.
          *trace_json = engine->TraceJson();
        }
        if (opt.stats) {
          std::printf("--- stats: %s / %s / %s ---\n%s\n",
                      stream_config.name.c_str(), config.name.c_str(),
                      backend_name, engine->StatsText().c_str());
        }
        char a[32], b[32], c[32], d[32];
        std::snprintf(a, sizeof(a), "%zu", engine->num_shards());
        std::snprintf(b, sizeof(b), "%.0f", tput);
        std::snprintf(c, sizeof(c), "%.2fx", tput / baseline);
        std::snprintf(d, sizeof(d), "%.1f", bytes / (1024.0 * 1024.0));
        table.AddRow({config.name, backend_name, a, b, c, d});
      }
    }
    std::printf("%s\n", table.Render().c_str());
  }
  all_results->insert(all_results->end(), sweep_results.begin(),
                      sweep_results.end());
}

// E12 — durability overhead: the zipf(1.1) 15%-delete stream at batch
// 1024, with every applied window encoded and appended to the WAL
// (log/durable_log.h) under each fsync policy, against the memory-only
// run. This is the write-ahead cost the serving batcher pays per window;
// the policies mirror the classic redo-flush spectrum (never / every
// window / group commit).
void DurabilitySweep(const Options& opt,
                     std::vector<SweepResult>* all_results) {
  std::printf("\ndurability overhead sweep (zipf batch-1024, WAL per "
              "window)\n\n");
  ringdb::ring::Catalog catalog = ringdb::workload::OrdersSchema();
  auto t = ringdb::sql::TranslateSql(
      catalog,
      "SELECT o.ckey, SUM(l.price * l.qty) FROM orders o, lineitem l "
      "WHERE o.okey = l.okey GROUP BY o.ckey");
  if (!t.ok()) {
    std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
    return;
  }

  ringdb::workload::StreamOptions options;
  options.seed = 99;
  options.domain_size = 4096;
  options.zipf_s = 1.1;
  options.delete_fraction = 0.15;
  std::vector<ringdb::workload::RelationStream> streams;
  streams.emplace_back(catalog, S("orders"), options);
  streams.emplace_back(catalog, S("lineitem"), options);
  ringdb::workload::RoundRobinStream stream(std::move(streams));
  std::vector<ringdb::ring::Update> updates;
  updates.reserve(opt.updates);
  for (int i = 0; i < opt.updates; ++i) updates.push_back(stream.Next());
  constexpr size_t kBatch = 1024;

  struct PolicyRow {
    const char* name;  // config name in the snapshot: "durability=<x>"
    bool enabled;
    ringdb::log::FsyncPolicy policy;
  };
  std::vector<PolicyRow> rows;
  auto want = [&](const char* name) {
    return opt.durability == "all" || opt.durability == name;
  };
  // The off row always runs: it is the baseline the ratios are against.
  rows.push_back({"off", false, ringdb::log::FsyncPolicy::kNever});
  if (want("never")) {
    rows.push_back({"never", true, ringdb::log::FsyncPolicy::kNever});
  }
  if (want("window")) {
    rows.push_back({"window", true, ringdb::log::FsyncPolicy::kEveryWindow});
  }
  if (want("group")) {
    rows.push_back({"group", true, ringdb::log::FsyncPolicy::kGroupCommit});
  }

  ringdb::TablePrinter table(
      {"durability", "upd/s", "vs off", "fsyncs", "wal MB"});
  double baseline = 0.0;
  for (const PolicyRow& row : rows) {
    auto engine = ringdb::runtime::Engine::Create(catalog, t->group_vars,
                                                  t->body, {});
    if (!engine.ok()) {
      std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
      return;
    }
    std::unique_ptr<ringdb::log::DurableLog> dlog;
    const std::string dir =
        "/tmp/ringdb-bench-durability-" + std::to_string(::getpid());
    if (row.enabled) {
      std::filesystem::remove_all(dir);
      ringdb::log::DurabilityOptions dopt;
      dopt.dir = dir;
      dopt.fsync_policy = row.policy;
      // No checkpoints: isolate the per-window append + flush cost.
      dopt.checkpoint_every_windows = 0;
      auto opened = ringdb::log::DurableLog::Open(catalog, dopt);
      if (!opened.ok()) {
        std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
        return;
      }
      dlog = std::move(opened).value();
      std::vector<ringdb::log::DurableLog::EngineSlot> slots;
      (void)dlog->Recover(slots);
    }

    ringdb::exec::BatchBuilder builder(catalog);
    uint64_t seq = 0;
    uint64_t applied = 0;
    auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < updates.size();) {
      const size_t end = std::min(i + kBatch, updates.size());
      for (; i < end; ++i) (void)builder.Add(updates[i]);
      ringdb::exec::UpdateBatch batch = builder.Build();
      ++seq;
      applied = i;
      if (dlog != nullptr) {
        ringdb::Status logged =
            dlog->AppendWindow(seq, end, applied, batch);
        if (!logged.ok()) {
          std::fprintf(stderr, "%s\n", logged.ToString().c_str());
          return;
        }
      }
      (void)engine->ApplyPrepared(batch);
    }
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    const double tput = updates.size() / elapsed;
    if (baseline == 0.0) baseline = tput;
    uint64_t fsyncs = 0;
    uint64_t wal_bytes = 0;
    if (dlog != nullptr) {
      const ringdb::log::DurabilityStats stats = dlog->GetStats();
      fsyncs = stats.wal_fsyncs;
      wal_bytes = stats.wal_bytes;
      (void)dlog->Close();
      std::filesystem::remove_all(dir);
    }
    const std::string config = std::string("durability=") + row.name;
    all_results->push_back(SweepResult{
        "zipf(1.1), 15% deletes", config, "interpret",
        ActiveRepresentation(), kBatch, 1, tput, 0, engine->StatsJson(9)});
    char a[32], b[32], c[32], d[32];
    std::snprintf(a, sizeof(a), "%.0f", tput);
    std::snprintf(b, sizeof(b), "%.2fx", tput / baseline);
    std::snprintf(c, sizeof(c), "%llu",
                  static_cast<unsigned long long>(fsyncs));
    std::snprintf(d, sizeof(d), "%.1f", wal_bytes / (1024.0 * 1024.0));
    table.AddRow({row.name, a, b, c, d});
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--updates") == 0 && i + 1 < argc) {
      errno = 0;
      char* end = nullptr;
      const long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || errno == ERANGE || v <= 0 ||
          v > 1000000000L) {
        std::fprintf(stderr,
                     "--updates wants a positive integer <= 1e9, got %s\n",
                     argv[i]);
        return 2;
      }
      opt.updates = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc) {
      opt.label = argv[++i];
    } else if (std::strcmp(argv[i], "--sweep-only") == 0) {
      opt.sweep_only = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      opt.stats = true;
    } else if (std::strcmp(argv[i], "--assert-scaling") == 0) {
      opt.assert_scaling = true;
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      opt.backend = argv[++i];
      if (opt.backend != "interpret" && opt.backend != "compile" &&
          opt.backend != "both") {
        std::fprintf(stderr,
                     "--backend wants interpret|compile|both, got %s\n",
                     opt.backend.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--stream") == 0 && i + 1 < argc) {
      opt.stream = argv[++i];
      if (opt.stream != "uniform" && opt.stream != "zipf" &&
          opt.stream != "both") {
        std::fprintf(stderr, "--stream wants uniform|zipf|both, got %s\n",
                     opt.stream.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--config") == 0 && i + 1 < argc) {
      opt.config_filter = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      opt.trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--durability") == 0 && i + 1 < argc) {
      opt.durability = argv[++i];
      if (opt.durability != "off" && opt.durability != "never" &&
          opt.durability != "window" && opt.durability != "group" &&
          opt.durability != "all") {
        std::fprintf(stderr,
                     "--durability wants off|never|window|group|all, "
                     "got %s\n",
                     opt.durability.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--updates N] [--json PATH] [--label STR] "
                   "[--sweep-only] [--backend interpret|compile|both] "
                   "[--stream uniform|zipf|both] [--config SUBSTR] "
                   "[--durability off|never|window|group|all] [--stats] "
                   "[--assert-scaling] [--trace FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!opt.sweep_only) {
    RevenueQuery();
    NationCountQuery();
  }
  std::vector<SweepResult> results;
  std::string trace_json;
  BatchShardSweep(opt, &results, &trace_json);
  if (!opt.durability.empty()) DurabilitySweep(opt, &results);
  if (!opt.trace_path.empty()) {
    if (trace_json.empty()) {
      std::fprintf(stderr,
                   "--trace: no batch-1024 row ran, nothing to write\n");
    } else {
      std::FILE* tf = std::fopen(opt.trace_path.c_str(), "w");
      if (tf == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", opt.trace_path.c_str());
      } else {
        std::fwrite(trace_json.data(), 1, trace_json.size(), tf);
        std::fclose(tf);
        std::printf("wrote %s (%zu bytes, load in chrome://tracing)\n",
                    opt.trace_path.c_str(), trace_json.size());
      }
    }
  }
  WriteSnapshotJson(opt, results);
  if (opt.assert_scaling && !AssertScaling(ComputeScaling(results))) {
    return 1;
  }
  return 0;
}
