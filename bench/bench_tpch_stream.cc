// E10 — end-to-end stream analytics throughput: the revenue-per-customer
// query and the Example 5.2 per-customer nation count, maintained over
// generated order/lineitem/customer streams (uniform and zipf-skewed,
// with deletions), comparing recursive IVM against classical first-order
// IVM. Expected shape: recursive IVM sustains a multiple of classical
// throughput, growing with stream length (classical per-update cost
// scales with matching-group sizes).

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "baseline/baselines.h"
#include "runtime/engine.h"
#include "sql/translate.h"
#include "util/table_printer.h"
#include "workload/stream.h"

namespace {

using ringdb::Symbol;
using ringdb::Value;

Symbol S(const char* s) { return Symbol::Intern(s); }

struct Config {
  std::string name;
  double zipf_s;
  double delete_fraction;
};

double Throughput(const std::function<void(const ringdb::ring::Update&)>&
                      apply,
                  ringdb::workload::RoundRobinStream& stream, int updates) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < updates; ++i) apply(stream.Next());
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return updates / elapsed;
}

void RevenueQuery() {
  std::printf("revenue per customer over orders/lineitem streams\n\n");
  ringdb::ring::Catalog catalog = ringdb::workload::OrdersSchema();
  auto t = ringdb::sql::TranslateSql(
      catalog,
      "SELECT o.ckey, SUM(l.price * l.qty) FROM orders o, lineitem l "
      "WHERE o.okey = l.okey GROUP BY o.ckey");
  if (!t.ok()) {
    std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
    return;
  }
  const std::vector<Config> configs = {
      {"uniform, insert-only", 0.0, 0.0},
      {"uniform, 15% deletes", 0.0, 0.15},
      {"zipf(1.1), 15% deletes", 1.1, 0.15},
  };
  ringdb::TablePrinter table({"stream", "recursive IVM upd/s",
                              "classical IVM upd/s", "speedup"});
  for (const Config& config : configs) {
    auto make_stream = [&](uint64_t seed) {
      ringdb::workload::StreamOptions options;
      options.seed = seed;
      options.domain_size = 4096;
      options.zipf_s = config.zipf_s;
      options.delete_fraction = config.delete_fraction;
      std::vector<ringdb::workload::RelationStream> streams;
      streams.emplace_back(catalog, S("orders"), options);
      streams.emplace_back(catalog, S("lineitem"), options);
      return ringdb::workload::RoundRobinStream(std::move(streams));
    };

    auto engine =
        ringdb::runtime::Engine::Create(catalog, t->group_vars, t->body);
    auto s1 = make_stream(99);
    double engine_tput = Throughput(
        [&](const ringdb::ring::Update& u) { (void)engine->Apply(u); }, s1,
        100000);

    ringdb::baseline::ClassicalIvm classical(catalog, t->group_vars,
                                             t->body);
    auto s2 = make_stream(99);
    double classical_tput = Throughput(
        [&](const ringdb::ring::Update& u) { (void)classical.Apply(u); },
        s2, 20000);

    char a[32], b[32], c[32];
    std::snprintf(a, sizeof(a), "%.0f", engine_tput);
    std::snprintf(b, sizeof(b), "%.0f", classical_tput);
    std::snprintf(c, sizeof(c), "%.1fx", engine_tput / classical_tput);
    table.AddRow({config.name, a, b, c});
  }
  std::printf("%s", table.Render().c_str());
}

void NationCountQuery() {
  std::printf("\nper-customer same-nation count (Ex. 5.2 shape)\n\n");
  ringdb::ring::Catalog catalog;
  catalog.AddRelation(S("customer"), {S("cid"), S("nation")});
  auto t = ringdb::sql::TranslateSql(
      catalog,
      "SELECT C1.cid, SUM(1) FROM customer C1, customer C2 "
      "WHERE C1.nation = C2.nation GROUP BY C1.cid");
  if (!t.ok()) {
    std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
    return;
  }
  // Nation domain small (25 nations): the grouped self-join has real
  // fan-out (every same-nation customer is an affected value).
  ringdb::workload::StreamOptions options;
  options.seed = 5;
  options.domain_size = 25;
  options.delete_fraction = 0.3;  // heavy churn keeps groups bounded

  ringdb::TablePrinter table(
      {"updates", "recursive IVM upd/s", "classical IVM upd/s"});
  for (int updates : {2000, 8000, 32000}) {
    auto engine =
        ringdb::runtime::Engine::Create(catalog, t->group_vars, t->body);
    std::vector<ringdb::workload::RelationStream> se;
    se.emplace_back(catalog, S("customer"), options);
    ringdb::workload::RoundRobinStream stream_e(std::move(se));
    double engine_tput = Throughput(
        [&](const ringdb::ring::Update& u) { (void)engine->Apply(u); },
        stream_e, updates);

    ringdb::baseline::ClassicalIvm classical(catalog, t->group_vars,
                                             t->body);
    std::vector<ringdb::workload::RelationStream> sc;
    sc.emplace_back(catalog, S("customer"), options);
    ringdb::workload::RoundRobinStream stream_c(std::move(sc));
    double classical_tput = Throughput(
        [&](const ringdb::ring::Update& u) { (void)classical.Apply(u); },
        stream_c, std::min(updates, 8000));

    char a[32], b[32];
    std::snprintf(a, sizeof(a), "%.0f", engine_tput);
    std::snprintf(b, sizeof(b), "%.0f", classical_tput);
    table.AddRow({std::to_string(updates), a, b});
  }
  std::printf("%s", table.Render().c_str());
}

// E11 — batched + sharded execution sweep (src/exec/): the revenue query
// maintained over the same streams through Engine::ApplyBatch at varying
// batch sizes and shard counts, against the single-tuple single-thread
// path. Batching coalesces each window into per-relation delta GMRs
// (cancelled events vanish, repeated events fire linear triggers once,
// scratch and hash-table reservations amortize); sharding partitions the
// view hierarchy by the join key (okey) and applies sub-batches on a
// persistent worker pool.
void BatchShardSweep() {
  std::printf("\nbatched + sharded execution sweep (revenue query)\n\n");
  ringdb::ring::Catalog catalog = ringdb::workload::OrdersSchema();
  auto t = ringdb::sql::TranslateSql(
      catalog,
      "SELECT o.ckey, SUM(l.price * l.qty) FROM orders o, lineitem l "
      "WHERE o.okey = l.okey GROUP BY o.ckey");
  if (!t.ok()) {
    std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
    return;
  }

  struct SweepConfig {
    std::string name;
    size_t batch_size;
    size_t num_shards;
  };
  const std::vector<SweepConfig> sweep = {
      {"single-tuple (baseline)", 1, 1},
      {"batch 256", 256, 1},
      {"batch 1024", 1024, 1},
      {"batch 1024, 2 shards", 1024, 2},
      {"batch 1024, 4 shards", 1024, 4},
  };
  const std::vector<Config> stream_configs = {
      {"uniform, 15% deletes", 0.0, 0.15},
      {"zipf(1.1), 15% deletes", 1.1, 0.15},
  };
  const int kUpdates = 200000;

  for (const Config& stream_config : stream_configs) {
    std::printf("stream: %s, %d updates\n", stream_config.name.c_str(),
                kUpdates);
    // One pre-generated stream per stream shape, shared by every engine
    // config, so all rows maintain the identical update sequence.
    ringdb::workload::StreamOptions options;
    options.seed = 99;
    options.domain_size = 4096;
    options.zipf_s = stream_config.zipf_s;
    options.delete_fraction = stream_config.delete_fraction;
    std::vector<ringdb::workload::RelationStream> streams;
    streams.emplace_back(catalog, S("orders"), options);
    streams.emplace_back(catalog, S("lineitem"), options);
    ringdb::workload::RoundRobinStream stream(std::move(streams));
    std::vector<ringdb::ring::Update> updates;
    updates.reserve(kUpdates);
    for (int i = 0; i < kUpdates; ++i) updates.push_back(stream.Next());

    ringdb::TablePrinter table(
        {"config", "shards", "upd/s", "vs single-tuple", "view MB"});
    double baseline = 0.0;
    for (const SweepConfig& config : sweep) {
      ringdb::runtime::EngineOptions engine_options;
      engine_options.batch_size = config.batch_size;
      engine_options.num_shards = config.num_shards;
      auto engine = ringdb::runtime::Engine::Create(
          catalog, t->group_vars, t->body, engine_options);
      if (!engine.ok()) {
        std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
        return;
      }
      auto start = std::chrono::steady_clock::now();
      if (config.batch_size <= 1 && config.num_shards <= 1) {
        for (const ringdb::ring::Update& u : updates) (void)engine->Apply(u);
      } else {
        (void)engine->ApplyBatch(updates);
      }
      double elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
      double tput = kUpdates / elapsed;
      if (baseline == 0.0) baseline = tput;
      char a[32], b[32], c[32], d[32];
      std::snprintf(a, sizeof(a), "%zu", engine->num_shards());
      std::snprintf(b, sizeof(b), "%.0f", tput);
      std::snprintf(c, sizeof(c), "%.2fx", tput / baseline);
      std::snprintf(d, sizeof(d), "%.1f",
                    engine->sharded().ApproxBytes() / (1024.0 * 1024.0));
      table.AddRow({config.name, a, b, c, d});
    }
    std::printf("%s\n", table.Render().c_str());
  }
}

}  // namespace

int main() {
  RevenueQuery();
  NationCountQuery();
  BatchShardSweep();
  return 0;
}
