// E2 — regenerates the Example 1.2 table: the self-join count
//   Q(R) = select count(*) from R r1, R r2 where r1.A = r2.A
// through the paper's update sequence, showing Q(R) and the first deltas
// ΔQ(R, ±R(c)) and ΔQ(R, ±R(d)) — all read from the compiled view
// hierarchy (ΔQ(±R(a)) = 1 ± 2·m1[a], with m1 the per-value count view).
//
// Expected Q(R) column: 0, 1, 4, 5, 10, 9, 16, 9 (paper, Example 1.2).

#include <cstdio>
#include <string>
#include <vector>

#include "agca/ast.h"
#include "runtime/engine.h"
#include "util/table_printer.h"

using ringdb::Numeric;
using ringdb::Symbol;
using ringdb::Value;
using ringdb::agca::CmpOp;
using ringdb::agca::Expr;
using ringdb::agca::Term;

int main() {
  ringdb::ring::Catalog catalog;
  Symbol r = Symbol::Intern("R");
  catalog.AddRelation(r, {Symbol::Intern("A")});
  Symbol r1 = Symbol::Intern("r1"), r2 = Symbol::Intern("r2");
  auto body = Expr::Mul({Expr::Relation(r, {Term(r1)}),
                         Expr::Relation(r, {Term(r2)}),
                         Expr::Cmp(CmpOp::kEq, Expr::Var(r1),
                                   Expr::Var(r2))});
  auto engine = ringdb::runtime::Engine::Create(catalog, {}, body);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  // The auxiliary count view m1[a] (the only degree-1 view).
  int aux = -1;
  for (const auto& v : engine->program().views) {
    if (v.degree == 1) aux = v.id;
  }
  auto delta_q = [&](const Value& a, bool insert) {
    Numeric count = engine->executor().view(aux).At({a});
    Numeric twice = Numeric(2) * count;
    return insert ? ringdb::kOne + twice : ringdb::kOne - twice;
  };

  Value c("c"), d("d");
  ringdb::TablePrinter table({"Update", "R", "Q(R)", "dQ(+R(c))",
                              "dQ(-R(c))", "dQ(+R(d))", "dQ(-R(d))"});
  std::string multiset;  // rendered {|...|} contents
  int count_c = 0, count_d = 0;
  auto render_r = [&] {
    std::string out = "{|";
    for (int i = 0; i < count_c; ++i) out += (out.size() > 2 ? ", c" : "c");
    for (int i = 0; i < count_d; ++i) out += (out.size() > 2 ? ", d" : "d");
    return out + "|}";
  };
  auto row = [&](const std::string& update) {
    table.AddRow({update, render_r(), engine->ResultScalar().ToString(),
                  delta_q(c, true).ToString(), delta_q(c, false).ToString(),
                  delta_q(d, true).ToString(),
                  delta_q(d, false).ToString()});
  };

  row("(start)");
  struct Step {
    bool insert;
    bool is_c;
  };
  const std::vector<Step> steps = {{true, true},  {true, true},
                                   {true, false}, {true, true},
                                   {false, false}, {true, true},
                                   {false, true}};
  for (const Step& s : steps) {
    const Value& v = s.is_c ? c : d;
    if (s.insert) {
      (void)engine->Insert(r, {v});
      (s.is_c ? count_c : count_d) += 1;
    } else {
      (void)engine->Delete(r, {v});
      (s.is_c ? count_c : count_d) -= 1;
    }
    row(std::string(s.insert ? "+R(" : "-R(") + (s.is_c ? "c" : "d") + ")");
  }
  std::printf(
      "Example 1.2: Q = select count(*) from R r1, R r2 where r1.A = "
      "r2.A\n(the second delta is constant: d2Q(+a,+a) = d2Q(-a,-a) = 2, "
      "d2Q(+a,-a) = -2, 0 for distinct values)\n\n%s",
      table.Render().c_str());
  std::printf("\ncompiled hierarchy:\n%s",
              engine->program().ToString().c_str());
  return 0;
}
