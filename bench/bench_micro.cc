// Micro-benchmarks (google-benchmark): per-update latency of the
// compiled trigger programs for the canonical query shapes, compile
// times, evaluator throughput, and view-map primitives.

#include <benchmark/benchmark.h>

#include "agca/ast.h"
#include "agca/eval.h"
#include "baseline/baselines.h"
#include "compiler/compile.h"
#include "runtime/engine.h"
#include "runtime/view_table.h"
#include "sql/translate.h"
#include "util/random.h"
#include "workload/stream.h"

namespace {

using ringdb::Numeric;
using ringdb::Rng;
using ringdb::Symbol;
using ringdb::Value;
using ringdb::agca::CmpOp;
using ringdb::agca::Expr;
using ringdb::agca::ExprPtr;
using ringdb::agca::Term;

Symbol S(const char* s) { return Symbol::Intern(s); }

struct SelfJoin {
  ringdb::ring::Catalog catalog;
  Symbol rel = S("Rmb");
  ExprPtr body;
  SelfJoin() {
    catalog.AddRelation(rel, {S("A")});
    body = Expr::Mul({Expr::Relation(rel, {Term(S("x"))}),
                      Expr::Relation(rel, {Term(S("y"))}),
                      Expr::Cmp(CmpOp::kEq, Expr::Var(S("x")),
                                Expr::Var(S("y")))});
  }
};

void BM_EngineApplySelfJoin(benchmark::State& state) {
  SelfJoin q;
  auto engine = ringdb::runtime::Engine::Create(q.catalog, {}, q.body);
  Rng rng(1);
  // Pre-populate.
  for (int64_t i = 0; i < state.range(0); ++i) {
    (void)engine->Insert(q.rel, {Value(rng.Range(0, 1024))});
  }
  for (auto _ : state) {
    (void)engine->Insert(q.rel, {Value(rng.Range(0, 1024))});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineApplySelfJoin)->Arg(1024)->Arg(65536);

void BM_ClassicalApplySelfJoin(benchmark::State& state) {
  SelfJoin q;
  ringdb::baseline::ClassicalIvm classical(q.catalog, {}, q.body);
  Rng rng(1);
  for (int64_t i = 0; i < state.range(0); ++i) {
    (void)classical.Apply(
        ringdb::ring::Update::Insert(q.rel, {Value(rng.Range(0, 1024))}));
  }
  for (auto _ : state) {
    (void)classical.Apply(
        ringdb::ring::Update::Insert(q.rel, {Value(rng.Range(0, 1024))}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassicalApplySelfJoin)->Arg(1024)->Arg(16384);

void BM_EngineApplyRevenue(benchmark::State& state) {
  auto catalog = ringdb::workload::OrdersSchema();
  auto t = ringdb::sql::TranslateSql(
      catalog,
      "SELECT o.ckey, SUM(l.price * l.qty) FROM orders o, lineitem l "
      "WHERE o.okey = l.okey GROUP BY o.ckey");
  auto engine =
      ringdb::runtime::Engine::Create(catalog, t->group_vars, t->body);
  ringdb::workload::StreamOptions options;
  options.domain_size = 4096;
  options.delete_fraction = 0.1;
  std::vector<ringdb::workload::RelationStream> streams;
  streams.emplace_back(catalog, S("orders"), options);
  streams.emplace_back(catalog, S("lineitem"), options);
  ringdb::workload::RoundRobinStream stream(std::move(streams));
  for (auto _ : state) {
    (void)engine->Apply(stream.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineApplyRevenue);

void BM_CompileRevenueQuery(benchmark::State& state) {
  auto catalog = ringdb::workload::OrdersSchema();
  auto t = ringdb::sql::TranslateSql(
      catalog,
      "SELECT o.ckey, SUM(l.price * l.qty) FROM orders o, lineitem l "
      "WHERE o.okey = l.okey GROUP BY o.ckey");
  for (auto _ : state) {
    auto compiled =
        ringdb::compiler::Compile(catalog, t->group_vars, t->body);
    benchmark::DoNotOptimize(compiled);
  }
}
BENCHMARK(BM_CompileRevenueQuery);

void BM_SqlParseTranslate(benchmark::State& state) {
  auto catalog = ringdb::workload::OrdersSchema();
  for (auto _ : state) {
    auto t = ringdb::sql::TranslateSql(
        catalog,
        "SELECT o.ckey, SUM(l.price * l.qty) FROM orders o, lineitem l "
        "WHERE o.okey = l.okey AND l.qty > 2 GROUP BY o.ckey");
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_SqlParseTranslate);

void BM_EvaluatorJoin(benchmark::State& state) {
  // Reference evaluator on an n x n two-way equijoin — the nonincremental
  // cost recursive IVM avoids.
  ringdb::ring::Catalog catalog;
  catalog.AddRelation(S("Rmv"), {S("A"), S("B")});
  catalog.AddRelation(S("Smv"), {S("B"), S("C")});
  ringdb::ring::Database db(catalog);
  Rng rng(3);
  int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) {
    db.Insert(S("Rmv"), {Value(i), Value(rng.Range(0, n / 4 + 1))});
    db.Insert(S("Smv"), {Value(rng.Range(0, n / 4 + 1)), Value(i)});
  }
  ExprPtr q = Expr::Sum(
      {}, Expr::Mul({Expr::Relation(S("Rmv"), {Term(S("a")), Term(S("b"))}),
                     Expr::Relation(S("Smv"),
                                    {Term(S("b")), Term(S("c"))})}));
  for (auto _ : state) {
    auto r = ringdb::agca::EvaluateScalar(q, db, ringdb::ring::Tuple());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EvaluatorJoin)->Arg(64)->Arg(256);

void BM_ViewTableAdd(benchmark::State& state) {
  ringdb::runtime::ViewTable view(2);
  Rng rng(5);
  for (auto _ : state) {
    view.Add({Value(rng.Range(0, 4096)), Value(rng.Range(0, 16))},
             ringdb::kOne);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ViewTableAdd);

void BM_ViewTableIndexedProbe(benchmark::State& state) {
  ringdb::runtime::ViewTable view(2);
  int index = view.EnsureIndex({1});
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) {
    view.Add({Value(rng.Range(0, 65536)), Value(rng.Range(0, 64))},
             ringdb::kOne);
  }
  for (auto _ : state) {
    int64_t probe = rng.Range(0, 64);
    size_t n = 0;
    view.ForEachMatching(index, {Value(probe)},
                         [&](ringdb::runtime::KeyView, Numeric) { ++n; });
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_ViewTableIndexedProbe);

}  // namespace

BENCHMARK_MAIN();
