// E9 — the constant-work property (NC0): exact count of arithmetic
// operations (+, *, comparisons, final +=) per single-tuple update, as
// the database grows, measured by the instrumented interpreter. For
// fully update-bound queries the count is a constant of the query, not
// of the data. For queries with free group variables the work is
// proportional to the number of *affected* values, with a constant per
// value — also reported.

#include <cstdio>
#include <string>
#include <vector>

#include "agca/ast.h"
#include "runtime/engine.h"
#include "util/random.h"
#include "util/table_printer.h"

namespace {

using ringdb::Rng;
using ringdb::Symbol;
using ringdb::Value;
using ringdb::agca::CmpOp;
using ringdb::agca::Expr;
using ringdb::agca::ExprPtr;
using ringdb::agca::Term;

Symbol S(const char* s) { return Symbol::Intern(s); }

void FullyBoundQueries() {
  std::printf(
      "fully update-bound queries: ops per update at growing |DB|\n\n");
  struct Spec {
    std::string name;
    ringdb::ring::Catalog catalog;
    std::vector<Symbol> rels;
    ExprPtr body;
  };
  std::vector<Spec> specs;
  {
    Spec s2;
    s2.name = "count(R)";
    Symbol r = S("Oa");
    s2.catalog.AddRelation(r, {S("A")});
    s2.rels = {r};
    s2.body = Expr::Relation(r, {Term(S("x"))});
    specs.push_back(std::move(s2));
  }
  {
    Spec s2;
    s2.name = "self-join count (deg 2)";
    Symbol r = S("Ob");
    s2.catalog.AddRelation(r, {S("A")});
    s2.rels = {r};
    s2.body = Expr::Mul({Expr::Relation(r, {Term(S("x"))}),
                         Expr::Relation(r, {Term(S("y"))}),
                         Expr::Cmp(CmpOp::kEq, Expr::Var(S("x")),
                                   Expr::Var(S("y")))});
    specs.push_back(std::move(s2));
  }
  {
    Spec s2;
    s2.name = "self-join count (deg 4)";
    Symbol r = S("Oc");
    s2.catalog.AddRelation(r, {S("A")});
    s2.rels = {r};
    std::vector<ExprPtr> fs;
    const char* vars[] = {"x", "y", "z", "w"};
    for (const char* v : vars) {
      fs.push_back(Expr::Relation(r, {Term(S(v))}));
    }
    for (int i = 0; i < 3; ++i) {
      fs.push_back(Expr::Cmp(CmpOp::kEq, Expr::Var(S(vars[i])),
                             Expr::Var(S(vars[i + 1]))));
    }
    s2.body = Expr::Mul(std::move(fs));
    specs.push_back(std::move(s2));
  }

  ringdb::TablePrinter table({"query", "|DB|=1k", "|DB|=4k", "|DB|=16k",
                              "|DB|=64k", "constant?"});
  for (Spec& spec : specs) {
    auto engine = ringdb::runtime::Engine::Create(spec.catalog, {},
                                                  spec.body);
    Rng rng(7);
    std::vector<std::string> row = {spec.name};
    std::vector<uint64_t> samples;
    int64_t applied = 0;
    for (int64_t target : {1000, 4000, 16000, 64000}) {
      while (applied < target) {
        (void)engine->Insert(spec.rels[0], {Value(rng.Range(0, 64))});
        ++applied;
      }
      // Measure the exact op count of the next 100 updates.
      uint64_t before = engine->executor().stats().arithmetic_ops;
      for (int i = 0; i < 100; ++i) {
        (void)engine->Insert(spec.rels[0], {Value(rng.Range(0, 64))});
        ++applied;
      }
      uint64_t ops = engine->executor().stats().arithmetic_ops - before;
      samples.push_back(ops / 100);
      row.push_back(std::to_string(ops / 100));
    }
    bool constant = true;
    for (uint64_t s2 : samples) constant = constant && (s2 == samples[0]);
    row.push_back(constant ? "yes" : "NO");
    table.AddRow(row);
  }
  std::printf("%s", table.Render().c_str());
}

void GroupLoopQuery() {
  std::printf(
      "\ngrouped query with update-free group key (per-nation count of\n"
      "Ex. 5.2 shape): total ops grow with affected groups, but ops per\n"
      "*affected value* stay constant\n\n");
  ringdb::ring::Catalog catalog;
  Symbol c = S("Od");
  catalog.AddRelation(c, {S("cid"), S("nation")});
  ExprPtr body =
      Expr::Mul({Expr::Relation(c, {Term(S("u")), Term(S("n"))}),
                 Expr::Relation(c, {Term(S("v")), Term(S("n"))})});
  auto engine = ringdb::runtime::Engine::Create(catalog, {S("u")}, body);
  Rng rng(11);
  ringdb::TablePrinter table(
      {"customers", "ops/update", "entries touched/update",
       "ops per touched entry"});
  int64_t cid = 0;
  for (int64_t target : {500, 2000, 8000, 32000}) {
    while (cid < target) {
      (void)engine->Insert(c, {Value(cid++), Value(rng.Range(0, 4))});
    }
    uint64_t ops0 = engine->executor().stats().arithmetic_ops;
    uint64_t touched0 = engine->executor().stats().entries_touched;
    for (int i = 0; i < 50; ++i) {
      (void)engine->Insert(c, {Value(cid++), Value(rng.Range(0, 4))});
    }
    uint64_t ops = engine->executor().stats().arithmetic_ops - ops0;
    uint64_t touched =
        engine->executor().stats().entries_touched - touched0;
    char per[32];
    std::snprintf(per, sizeof(per), "%.2f",
                  static_cast<double>(ops) / static_cast<double>(touched));
    table.AddRow({std::to_string(cid), std::to_string(ops / 50),
                  std::to_string(touched / 50), per});
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace

int main() {
  std::printf("NC0 constant-work measurement (instrumented interpreter)\n\n");
  FullyBoundQueries();
  GroupLoopQuery();
  return 0;
}
