// E6 — degree reduction under repeated deltas (Examples 6.2 / 6.5 and
// Theorem 6.4): prints the symbolic delta derivation of the grouped
// self-join query and a degree table for a family of chain joins,
// demonstrating that the k-th delta of a degree-k query is constant and
// the (k+1)-st vanishes.

#include <cstdio>
#include <vector>

#include "agca/ast.h"
#include "agca/degree.h"
#include "delta/delta.h"
#include "ring/database.h"
#include "util/table_printer.h"

using ringdb::Symbol;
using ringdb::agca::Degree;
using ringdb::agca::Expr;
using ringdb::agca::ExprPtr;
using ringdb::agca::Term;
using ringdb::delta::Delta;
using ringdb::delta::Event;
using ringdb::delta::MakeEvent;
using ringdb::ring::Update;

namespace {

Symbol S(const char* s) { return Symbol::Intern(s); }

void Example65() {
  ringdb::ring::Catalog catalog;
  catalog.AddRelation(S("C"), {S("cid"), S("nation")});
  // q = Sum_[c](C(c,n) * C(c2,n)), Example 6.2.
  ExprPtr q = Expr::Sum(
      {S("c")},
      Expr::Mul({Expr::Relation(S("C"), {Term(S("c")), Term(S("n"))}),
                 Expr::Relation(S("C"), {Term(S("c2")), Term(S("n"))})}));
  std::printf("Example 6.2/6.5 — q = %s\n\n", q->ToString().c_str());

  Event e1 = MakeEvent(catalog, S("C"), Update::Sign::kInsert, "1");
  ExprPtr d1 = Delta(q, e1);
  std::printf("deg q      = %d\n", Degree(*q));
  std::printf("D[+C#1] q  = %s\n", d1->ToString().c_str());
  std::printf("deg D q    = %d\n\n", Degree(*d1));

  Event e2 = MakeEvent(catalog, S("C"), Update::Sign::kInsert, "2");
  ExprPtr d2 = Delta(d1, e2);
  std::printf("D[+C#2] D[+C#1] q = %s\n", d2->ToString().c_str());
  std::printf("deg D^2 q  = %d  (depends only on the update)\n",
              Degree(*d2));

  Event e3 = MakeEvent(catalog, S("C"), Update::Sign::kInsert, "3");
  ExprPtr d3 = Delta(d2, e3);
  std::printf("D^3 q      = %s  (identically zero)\n\n",
              d3->ToString().c_str());
}

void DegreeTable() {
  // Chain joins R1(x0,x1) * R2(x1,x2) * ... of degree k = 1..5: the j-th
  // delta has degree max(0, k - j) (Theorem 6.4).
  std::printf(
      "Theorem 6.4 — degree of the j-th delta of a degree-k chain join\n\n");
  ringdb::TablePrinter table(
      {"k = deg q", "deg Dq", "deg D2q", "deg D3q", "deg D4q", "deg D5q",
       "deg D6q"});
  for (int k = 1; k <= 5; ++k) {
    ringdb::ring::Catalog catalog;
    std::vector<ExprPtr> atoms;
    for (int i = 0; i < k; ++i) {
      Symbol rel = S(("Rel" + std::to_string(i)).c_str());
      catalog.AddRelation(rel, {S("a"), S("b")});
      Symbol x = S(("x" + std::to_string(i)).c_str());
      Symbol y = S(("x" + std::to_string(i + 1)).c_str());
      atoms.push_back(Expr::Relation(rel, {Term(x), Term(y)}));
    }
    ExprPtr q = Expr::Sum({}, Expr::Mul(atoms));
    std::vector<std::string> row = {std::to_string(k)};
    ExprPtr cur = q;
    for (int j = 1; j <= 6; ++j) {
      Symbol rel = S(("Rel" + std::to_string((j - 1) % k)).c_str());
      cur = Delta(cur, MakeEvent(catalog, rel, Update::Sign::kInsert,
                                 "#" + std::to_string(j)));
      row.push_back(cur->IsZero() ? "0 (zero)"
                                  : std::to_string(Degree(*cur)));
    }
    table.AddRow(row);
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace

int main() {
  Example65();
  DegreeTable();
  return 0;
}
