// E12 — concurrent serving throughput (src/serve/): K reader threads ×
// M standing queries over one zipf write stream through QueryService.
// Readers hammer snapshot point lookups (wait-free RCU reads) while the
// ingest pipeline applies batches and republishes snapshots; the single-
// writer Engine::ApplyBatch throughput on the same stream is measured
// first as the baseline, so the table shows what fraction of raw
// maintenance throughput survives serving (snapshot publication + fan-
// out) and how many reads ride along for free. This is the first bench
// where read throughput exists at all: before serve/, results could only
// be read between batches on the writer thread.

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace_export.h"
#include "runtime/engine.h"
#include "serve/query_service.h"
#include "sql/translate.h"
#include "util/random.h"
#include "util/table_printer.h"
#include "workload/stream.h"

namespace {

using ringdb::Numeric;
using ringdb::Symbol;
using ringdb::Value;

Symbol S(const char* s) { return Symbol::Intern(s); }

struct Options {
  int updates = 200000;
  int readers = 4;
  int queries = 2;
  size_t batch_size = 1024;
  size_t shards = 1;
  std::string json_path = "BENCH_serve.dev.json";
  std::string label = "dev";
  // --stats: dump the service's full metrics export (queue spans,
  // coalesce/apply/publish-age histograms, per-query staleness) after
  // the throughput table.
  bool stats = false;
  // --trace FILE: write the flight recorder's Chrome trace-event JSON
  // (chrome://tracing / Perfetto-loadable) after the run; the bench row
  // also gains a "stage_breakdown" object and the per-stage latency
  // table prints after the throughput table.
  std::string trace_path;
};

struct Result {
  int readers;
  int queries;
  size_t batch_size;
  size_t shards;
  double base_upd_per_s;  // single-writer Engine::ApplyBatch, no serving
  double upd_per_s;       // service ingest throughput with readers live
  double reads_per_s;     // aggregate snapshot reads across reader threads
  uint64_t final_version;
  std::string stats_json;       // QueryService::StatsJson at end of run
  std::string stage_breakdown;  // TraceBreakdownJson (empty = no --trace)
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

void WriteSnapshotJson(const Options& opt, const std::vector<Result>& results) {
  if (opt.json_path.empty()) return;
  std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"serve\",\n  \"snapshots\": [\n");
  std::fprintf(f, "    {\n      \"label\": \"%s\",\n      \"updates\": %d,\n",
               JsonEscape(opt.label).c_str(), opt.updates);
  std::fprintf(f, "      \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "      \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f,
                 "        {\"readers\": %d, \"queries\": %d, "
                 "\"batch_size\": %zu, \"shards\": %zu, "
                 "\"base_upd_per_s\": %.0f, \"upd_per_s\": %.0f, "
                 "\"reads_per_s\": %.0f, \"final_version\": %llu,\n"
                 "         \"stage_breakdown\": %s,\n"
                 "         \"stats\": %s}%s\n",
                 r.readers, r.queries, r.batch_size, r.shards,
                 r.base_upd_per_s, r.upd_per_s, r.reads_per_s,
                 static_cast<unsigned long long>(r.final_version),
                 r.stage_breakdown.empty() ? "null"
                                           : r.stage_breakdown.c_str(),
                 r.stats_json.empty() ? "null" : r.stats_json.c_str(),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "      ]\n    }\n  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu results)\n", opt.json_path.c_str(),
              results.size());
}

std::vector<ringdb::ring::Update> MakeUpdates(
    const ringdb::ring::Catalog& catalog, int count) {
  ringdb::workload::StreamOptions options;
  options.seed = 99;
  options.domain_size = 4096;
  options.zipf_s = 1.1;
  options.delete_fraction = 0.15;
  std::vector<ringdb::workload::RelationStream> streams;
  streams.emplace_back(catalog, S("orders"), options);
  streams.emplace_back(catalog, S("lineitem"), options);
  ringdb::workload::RoundRobinStream stream(std::move(streams));
  std::vector<ringdb::ring::Update> updates;
  updates.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) updates.push_back(stream.Next());
  return updates;
}

// The M standing queries: the revenue join and the per-customer order
// count, alternating (both multiplicity-linear and okey/ckey-groupable,
// the shape the serving fan-out is built for).
const char* QuerySql(int index) {
  return index % 2 == 0
             ? "SELECT o.ckey, SUM(l.price * l.qty) FROM orders o, "
               "lineitem l WHERE o.okey = l.okey GROUP BY o.ckey"
             : "SELECT o.ckey, SUM(1) FROM orders o GROUP BY o.ckey";
}

void Run(const Options& opt) {
  ringdb::ring::Catalog catalog = ringdb::workload::OrdersSchema();
  std::vector<ringdb::ring::Update> updates =
      MakeUpdates(catalog, opt.updates);

  std::printf(
      "serve read/write mix: %d updates (zipf 1.1, 15%% del), "
      "%d queries, %d readers, batch %zu, %zu shard(s)\n\n",
      opt.updates, opt.queries, opt.readers, opt.batch_size, opt.shards);

  // Baseline: one engine, one thread, no serving machinery.
  double base_upd_per_s = 0.0;
  {
    auto translated = ringdb::sql::TranslateSql(catalog, QuerySql(0));
    if (!translated.ok()) {
      std::fprintf(stderr, "%s\n", translated.status().ToString().c_str());
      return;
    }
    ringdb::runtime::EngineOptions engine_options;
    engine_options.batch_size = opt.batch_size;
    auto engine = ringdb::runtime::Engine::Create(
        catalog, translated->group_vars, translated->body, engine_options);
    if (!engine.ok()) {
      std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
      return;
    }
    auto start = std::chrono::steady_clock::now();
    (void)engine->ApplyBatch(updates);
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    base_upd_per_s = opt.updates / elapsed;
  }

  // The service under reader load.
  ringdb::serve::ServeOptions serve_options;
  serve_options.batch_size = opt.batch_size;
  serve_options.num_shards = opt.shards;
  serve_options.queue_capacity = 1 << 15;
  ringdb::serve::QueryService service(catalog, serve_options);
  std::vector<ringdb::serve::QueryId> query_ids;
  for (int i = 0; i < opt.queries; ++i) {
    auto id = service.RegisterSql("q" + std::to_string(i), QuerySql(i));
    if (!id.ok()) {
      std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
      return;
    }
    query_ids.push_back(*id);
  }
  service.Start();

  std::atomic<bool> stop_readers{false};
  std::atomic<uint64_t> total_reads{0};
  std::atomic<int64_t> checksum{0};  // defeats dead-read elimination
  std::vector<std::thread> readers;
  readers.reserve(static_cast<size_t>(opt.readers));
  for (int r = 0; r < opt.readers; ++r) {
    readers.emplace_back([&, r] {
      ringdb::Rng rng(ringdb::workload::ChildSeed(4242, r));
      ringdb::Zipf zipf(4096, 1.1);
      uint64_t reads = 0;
      int64_t local_sum = 0;
      std::vector<Value> key(1);
      while (!stop_readers.load(std::memory_order_relaxed)) {
        const ringdb::serve::QueryId q =
            query_ids[reads % query_ids.size()];
        key[0] = Value(static_cast<int64_t>(zipf.Sample(rng)));
        Numeric v = service.Get(q, key);
        local_sum ^= static_cast<int64_t>(v.Hash());
        ++reads;
      }
      total_reads.fetch_add(reads);
      checksum.fetch_add(local_sum);
    });
  }

  auto start = std::chrono::steady_clock::now();
  for (const ringdb::ring::Update& update : updates) {
    (void)service.Push(update);
  }
  service.Drain();
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  stop_readers.store(true);
  for (std::thread& t : readers) t.join();
  const uint64_t final_version = service.version(query_ids[0]);
  // Capture before Stop(): the export is concurrency-safe, and reading
  // it while the pipeline threads are still up is the supported pattern
  // (operators poll a live service).
  const std::string stats_json = service.StatsJson(9);
  const std::string stats_text = service.StatsText();
  std::string stage_breakdown;
  std::string breakdown_text;
  if (!opt.trace_path.empty()) {
    const std::string trace_json = service.TraceJson();
    std::FILE* tf = std::fopen(opt.trace_path.c_str(), "w");
    if (tf == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", opt.trace_path.c_str());
    } else {
      std::fwrite(trace_json.data(), 1, trace_json.size(), tf);
      std::fclose(tf);
      std::printf("wrote %s (%zu bytes, load in chrome://tracing)\n",
                  opt.trace_path.c_str(), trace_json.size());
    }
    stage_breakdown = service.TraceBreakdownJson(9);
    breakdown_text = ringdb::obs::TraceBreakdownText(
        ringdb::obs::ComputeTraceBreakdown(service.TraceWindows()));
  }
  service.Stop();
  if (!service.status().ok()) {
    std::fprintf(stderr, "%s\n", service.status().ToString().c_str());
    return;
  }

  Result result;
  result.readers = opt.readers;
  result.queries = opt.queries;
  result.batch_size = opt.batch_size;
  result.shards = opt.shards;
  result.base_upd_per_s = base_upd_per_s;
  result.upd_per_s = opt.updates / elapsed;
  result.reads_per_s = total_reads.load() / elapsed;
  result.final_version = final_version;
  result.stats_json = stats_json;
  result.stage_breakdown = stage_breakdown;

  ringdb::TablePrinter table({"config", "upd/s", "vs single-writer",
                              "reads/s", "windows"});
  char a[32], b[32], c[32], d[32];
  std::snprintf(a, sizeof(a), "%.0f", result.upd_per_s);
  std::snprintf(b, sizeof(b), "%.0f%%",
                100.0 * result.upd_per_s / result.base_upd_per_s);
  std::snprintf(c, sizeof(c), "%.0f", result.reads_per_s);
  std::snprintf(d, sizeof(d), "%llu",
                static_cast<unsigned long long>(result.final_version));
  table.AddRow({"serve (" + std::to_string(opt.queries) + "q, " +
                    std::to_string(opt.readers) + "r)",
                a, b, c, d});
  std::snprintf(a, sizeof(a), "%.0f", result.base_upd_per_s);
  table.AddRow({"single-writer engine", a, "100%", "-", "-"});
  std::printf("%s", table.Render().c_str());
  std::printf("(read checksum %lld)\n",
              static_cast<long long>(checksum.load()));
  if (!breakdown_text.empty()) {
    std::printf("\n--- stage breakdown ---\n%s", breakdown_text.c_str());
  }
  if (opt.stats) {
    std::printf("\n--- service stats ---\n%s", stats_text.c_str());
  }

  WriteSnapshotJson(opt, {result});
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  auto parse_positive = [&](const char* flag, const char* arg, long max,
                            long* out) {
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(arg, &end, 10);
    if (end == arg || *end != '\0' || errno == ERANGE || v <= 0 || v > max) {
      std::fprintf(stderr, "%s wants a positive integer <= %ld, got %s\n",
                   flag, max, arg);
      return false;
    }
    *out = v;
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    long v = 0;
    if (std::strcmp(argv[i], "--updates") == 0 && i + 1 < argc) {
      if (!parse_positive("--updates", argv[++i], 1000000000L, &v)) return 2;
      opt.updates = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--readers") == 0 && i + 1 < argc) {
      // 0 readers is allowed: it isolates the serving pipeline's own
      // overhead (coalesce-once fan-out + snapshot publication).
      errno = 0;
      char* end = nullptr;
      v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || errno == ERANGE || v < 0 ||
          v > 256) {
        std::fprintf(stderr, "--readers wants an integer in [0, 256]\n");
        return 2;
      }
      opt.readers = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      if (!parse_positive("--queries", argv[++i], 64, &v)) return 2;
      opt.queries = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      if (!parse_positive("--batch", argv[++i], 1 << 20, &v)) return 2;
      opt.batch_size = static_cast<size_t>(v);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      if (!parse_positive("--shards", argv[++i], 64, &v)) return 2;
      opt.shards = static_cast<size_t>(v);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc) {
      opt.label = argv[++i];
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      opt.stats = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      opt.trace_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--updates N] [--readers K] [--queries M] "
                   "[--batch B] [--shards S] [--json PATH] [--label STR] "
                   "[--stats] [--trace FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  Run(opt);
  return 0;
}
