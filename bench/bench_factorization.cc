// E3 — Example 1.3: factorization of delta queries.
//
//   Q = select sum(A*F) from R, S, T where B=C and D=E
//
// The delta w.r.t. ±S(c,d) factorizes into (ΔQ)1(c) * (ΔQ)2(d). The
// factorized compiler maintains two *linear*-size views; maintaining the
// unfactorized ΔQ(c,d) explicitly costs quadratic space and O(adom) work
// per R/T update. This bench measures both, sweeping the active-domain
// size: view entries (space) and per-update latency (time). The expected
// shape: factorized stays flat/linear, unfactorized grows ~quadratically
// in entries and ~linearly in per-update work.

#include <chrono>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "agca/ast.h"
#include "runtime/engine.h"
#include "util/random.h"
#include "util/table_printer.h"

namespace {

using ringdb::Numeric;
using ringdb::Rng;
using ringdb::Symbol;
using ringdb::Value;
using ringdb::agca::Expr;
using ringdb::agca::ExprPtr;
using ringdb::agca::Term;
using ringdb::ring::Update;

Symbol S(const char* s) { return Symbol::Intern(s); }

// Hand-rolled *unfactorized* maintenance: materializes the full second-
// order delta table u[c,d] = (sum_a R(a,c)) * (sum_f T(d,f)*f) alongside
// the two linear sub-aggregates used to refresh it.
class UnfactorizedDelta {
 public:
  // +R(a, b): m1[b] += a; u[b, d] += a * m2[d] for ALL d.
  void OnR(const Value& a, const Value& b, bool insert) {
    Numeric delta = insert ? *a.ToNumeric() : -*a.ToNumeric();
    m1_[b] += delta;
    for (const auto& [d, v] : m2_) {
      u_[{b, d}] += delta * v;
      ++ops_;
    }
  }
  // +T(d, f): m2[d] += f; u[c, d] += m1[c] * f for ALL c.
  void OnT(const Value& d, const Value& f, bool insert) {
    Numeric delta = insert ? *f.ToNumeric() : -*f.ToNumeric();
    m2_[d] += delta;
    for (const auto& [c, v] : m1_) {
      u_[{c, d}] += v * delta;
      ++ops_;
    }
  }
  // ±S(c, d): Q ±= u[c, d] — the O(1) part.
  void OnS(const Value& c, const Value& d, bool insert) {
    auto it = u_.find({c, d});
    Numeric delta = it == u_.end() ? ringdb::kZero : it->second;
    q_ += insert ? delta : -delta;
    ++ops_;
  }

  size_t DeltaTableEntries() const { return u_.size(); }
  uint64_t ops() const { return ops_; }
  Numeric q() const { return q_; }
  Numeric UAt(const Value& c, const Value& d) const {
    auto it = u_.find({c, d});
    return it == u_.end() ? ringdb::kZero : it->second;
  }

 private:
  struct PairHash {
    size_t operator()(const std::pair<Value, Value>& p) const noexcept {
      return ringdb::HashCombine(p.first.Hash(), p.second.Hash());
    }
  };
  std::unordered_map<Value, Numeric> m1_, m2_;
  std::unordered_map<std::pair<Value, Value>, Numeric, PairHash> u_;
  Numeric q_ = ringdb::kZero;
  uint64_t ops_ = 0;
};

struct Row {
  int64_t adom;
  double factored_us;
  size_t factored_entries;
  double unfactored_us;
  size_t unfactored_entries;
  bool deltas_agree;
};

Row RunOne(int64_t adom, int updates) {
  ringdb::ring::Catalog catalog;
  catalog.AddRelation(S("R"), {S("A"), S("B")});
  catalog.AddRelation(S("Sx"), {S("C"), S("D")});
  catalog.AddRelation(S("T"), {S("E"), S("F")});
  Symbol a = S("a"), b = S("b"), d = S("d"), f = S("f");
  ExprPtr body = Expr::Mul({Expr::Relation(S("R"), {Term(a), Term(b)}),
                            Expr::Relation(S("Sx"), {Term(b), Term(d)}),
                            Expr::Relation(S("T"), {Term(d), Term(f)}),
                            Expr::Var(a), Expr::Var(f)});
  auto engine = ringdb::runtime::Engine::Create(catalog, {}, body);
  UnfactorizedDelta unfactored;

  // Pre-generate one update stream used for both systems.
  Rng rng(9000 + static_cast<uint64_t>(adom));
  struct Ev {
    int rel;  // 0=R, 1=S, 2=T
    Value x, y;
    bool insert;
  };
  std::vector<Ev> events;
  events.reserve(static_cast<size_t>(updates));
  for (int i = 0; i < updates; ++i) {
    Ev e;
    e.rel = static_cast<int>(rng.Below(3));
    e.x = Value(rng.Range(0, adom - 1));
    e.y = Value(rng.Range(0, adom - 1));
    e.insert = true;
    events.push_back(e);
  }

  Row row;
  row.adom = adom;
  {
    auto start = std::chrono::steady_clock::now();
    for (const Ev& e : events) {
      Symbol rel = e.rel == 0 ? S("R") : (e.rel == 1 ? S("Sx") : S("T"));
      (void)engine->Insert(rel, {e.x, e.y});
    }
    row.factored_us =
        1e6 *
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count() /
        updates;
    size_t entries = 0;
    for (size_t v = 0; v < engine->program().views.size(); ++v) {
      entries += engine->executor().view(static_cast<int>(v)).size();
    }
    row.factored_entries = entries;
  }
  {
    auto start = std::chrono::steady_clock::now();
    for (const Ev& e : events) {
      if (e.rel == 0) {
        unfactored.OnR(e.x, e.y, e.insert);
      } else if (e.rel == 1) {
        unfactored.OnS(e.x, e.y, e.insert);
      } else {
        unfactored.OnT(e.x, e.y, e.insert);
      }
    }
    row.unfactored_us =
        1e6 *
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count() /
        updates;
    row.unfactored_entries = unfactored.DeltaTableEntries();
  }

  // Cross-check: the factorized lookup (dQ)1(c) * (dQ)2(d) must equal the
  // materialized u[c, d] on random probes. The two unary degree-1 views
  // are told apart by the relation they aggregate.
  int m_r = -1, m_t = -1;
  for (const auto& v : engine->program().views) {
    if (v.degree != 1 || v.key_vars.size() != 1) continue;
    auto rels = ringdb::agca::RelationsIn(*v.definition);
    if (rels.contains(S("R"))) m_r = v.id;
    if (rels.contains(S("T"))) m_t = v.id;
  }
  row.deltas_agree = (m_r >= 0 && m_t >= 0);
  Rng probe_rng(1);
  for (int i = 0; i < 64 && row.deltas_agree; ++i) {
    Value c(probe_rng.Range(0, adom - 1)), d(probe_rng.Range(0, adom - 1));
    Numeric factored = engine->executor().view(m_r).At({c}) *
                       engine->executor().view(m_t).At({d});
    row.deltas_agree = (factored == unfactored.UAt(c, d));
  }
  return row;
}

}  // namespace

int main() {
  std::printf(
      "Example 1.3 — factorized (two linear views) vs unfactorized "
      "(materialized quadratic DeltaQ(c,d))\nper-update latency and view "
      "entries; both maintain identical Q\n\n");
  ringdb::TablePrinter table({"adom", "factored us/upd", "factored entries",
                              "unfactored us/upd", "unfactored entries",
                              "dQ_S agree?"});
  char buf[64];
  for (int64_t adom : {64, 128, 256, 512, 1024}) {
    Row row = RunOne(adom, 6000);
    std::snprintf(buf, sizeof(buf), "%.3f", row.factored_us);
    std::string f_us = buf;
    std::snprintf(buf, sizeof(buf), "%.3f", row.unfactored_us);
    std::string u_us = buf;
    table.AddRow({std::to_string(row.adom), f_us,
                  std::to_string(row.factored_entries), u_us,
                  std::to_string(row.unfactored_entries),
                  row.deltas_agree ? "yes" : "NO!"});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nexpected shape: factored columns flat/linear in adom; "
      "unfactored entries ~quadratic, latency growing with adom.\n");
  return 0;
}
