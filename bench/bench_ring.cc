// E4 — the ring of databases: prints the Example 3.2 tables (S + T and
// R * (S + T) over schema-polymorphic gmrs), then runs micro-benchmarks
// of the ring operations (google-benchmark).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "ring/gmr.h"
#include "ring/tuple.h"
#include "util/random.h"

namespace {

using ringdb::Numeric;
using ringdb::Rng;
using ringdb::Symbol;
using ringdb::Value;
using ringdb::ring::Gmr;
using ringdb::ring::Tuple;

Symbol A() { return Symbol::Intern("A"); }
Symbol B() { return Symbol::Intern("B"); }
Symbol C() { return Symbol::Intern("C"); }

void PrintExample32() {
  // Symbolic multiplicities r1, r2, s, t1, t2 as distinct primes.
  Gmr r, s, t;
  r.Add(Tuple{{A(), Value("a1")}}, Numeric(2));
  r.Add(Tuple{{A(), Value("a2")}, {B(), Value("b")}}, Numeric(3));
  s.Add(Tuple{{C(), Value("c")}}, Numeric(5));
  t.Add(Tuple{{B(), Value("c")}}, Numeric(7));
  t.Add(Tuple{{B(), Value("b")}, {C(), Value("c")}}, Numeric(11));

  std::printf("Example 3.2 (r1=2, r2=3, s=5, t1=7, t2=11):\n\n");
  std::printf("R          = %s\n", r.ToString().c_str());
  std::printf("S          = %s\n", s.ToString().c_str());
  std::printf("T          = %s\n", t.ToString().c_str());
  std::printf("S + T      = %s\n", (s + t).ToString().c_str());
  std::printf("R * (S+T)  = %s\n", (r * (s + t)).ToString().c_str());
  std::printf("R*S + R*T  = %s   (distributivity)\n\n",
              (r * s + r * t).ToString().c_str());
}

Gmr RandomRelation(size_t n, uint64_t seed, Symbol col_a, Symbol col_b) {
  Rng rng(seed);
  Gmr g;
  for (size_t i = 0; i < n; ++i) {
    g.Add(Tuple{{col_a, Value(rng.Range(0, static_cast<int64_t>(n)))},
                {col_b, Value(rng.Range(0, 64))}},
          ringdb::kOne);
  }
  return g;
}

void BM_GmrAdd(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Gmr x = RandomRelation(n, 1, A(), B());
  Gmr y = RandomRelation(n, 2, A(), B());
  for (auto _ : state) {
    Gmr z = x + y;
    benchmark::DoNotOptimize(z);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_GmrAdd)->Range(64, 4096);

void BM_GmrJoin(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Gmr x = RandomRelation(n, 1, A(), B());
  Gmr y = RandomRelation(n, 2, B(), C());
  for (auto _ : state) {
    Gmr z = x * y;
    benchmark::DoNotOptimize(z);
  }
}
BENCHMARK(BM_GmrJoin)->Range(64, 512);

void BM_GmrNegate(benchmark::State& state) {
  Gmr x = RandomRelation(static_cast<size_t>(state.range(0)), 1, A(), B());
  for (auto _ : state) {
    Gmr z = -x;
    benchmark::DoNotOptimize(z);
  }
}
BENCHMARK(BM_GmrNegate)->Range(64, 4096);

void BM_TupleJoin(benchmark::State& state) {
  Tuple x{{A(), Value(1)}, {B(), Value(2)}};
  Tuple y{{B(), Value(2)}, {C(), Value(3)}};
  for (auto _ : state) {
    auto z = Tuple::Join(x, y);
    benchmark::DoNotOptimize(z);
  }
}
BENCHMARK(BM_TupleJoin);

void BM_TupleHash(benchmark::State& state) {
  Tuple x{{A(), Value(1)}, {B(), Value("key")}, {C(), Value(2.5)}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(x.Hash());
  }
}
BENCHMARK(BM_TupleHash);

}  // namespace

int main(int argc, char** argv) {
  PrintExample32();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
