#!/usr/bin/env python3
"""Markdown link checker for the docs CI job.

Verifies that every relative link target in the given markdown files
exists in the repository (anchors are stripped; http/https/mailto links
are skipped so the check works offline). Exit code 1 lists every broken
link; 0 means all links resolve.

Usage: tools/check_md_links.py README.md DESIGN.md examples/README.md
"""

import os
import re
import sys

# Inline links [text](target) — skips images' leading ! automatically —
# and reference definitions [id]: target.
INLINE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def check_file(path: str) -> list[str]:
    broken = []
    with open(path, encoding="utf-8") as f:
        text = f.read()
    base = os.path.dirname(path)
    targets = INLINE.findall(text) + REFDEF.findall(text)
    for target in targets:
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        resolved = os.path.normpath(os.path.join(base, rel))
        if not os.path.exists(resolved):
            broken.append(f"{path}: broken link -> {target}")
    return broken


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    broken = []
    for path in sys.argv[1:]:
        if not os.path.exists(path):
            broken.append(f"{path}: file not found")
            continue
        broken.extend(check_file(path))
    for line in broken:
        print(line, file=sys.stderr)
    if not broken:
        print(f"all links resolve in {len(sys.argv) - 1} file(s)")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
