#!/usr/bin/env python3
"""Trace-export gate for the CI release job.

Validates a Chrome trace-event JSON file produced by
`bench_serve --trace` / `bench_tpch_stream --trace` /
`QueryService::TraceJson()`:

  - the file parses as JSON with a `traceEvents` array;
  - every event is a complete (`ph: "X"`) or metadata (`ph: "M"`)
    record with the fields Perfetto / chrome://tracing require
    (pid, tid, ts; dur + name for X events);
  - all three track groups are present and named: pid 1 (pipeline
    stages), pid 2 (queries), pid 3 (shards) — a missing group means
    an instrumentation site silently stopped recording;
  - X-event intervals are non-negative and pipeline stage lanes carry
    the expected stage names.

Optionally (--bench JSON), cross-checks the embedded `stage_breakdown`
of each bench row: `reconcile_error_pct` — the share of end-to-end
window time NOT attributed to any stage interval — must stay under
--max-reconcile-pct (default 5%). The stages are recorded as adjacent
intervals, so unattributed time is an instrumentation gap, not noise.

Usage:
  tools/check_trace.py trace.json [--bench BENCH.json]
      [--max-reconcile-pct 5.0] [--require-queries] [--require-shards]

pid-2/pid-3 tracks only exist when the trace came from a run with
standing queries / >1 shard; the flags make their absence an error.

Exit code 0: trace well-formed and within budget. 1: otherwise.
"""

import argparse
import json
import sys

PIPELINE_PID = 1
QUERY_PID = 2
SHARD_PID = 3

KNOWN_STAGES = {
    "queue_wait", "coalesce", "wal_append", "wal_fsync",
    "apply", "fanout", "checkpoint",
}


def fail(msg: str) -> int:
    print(f"check_trace: FAIL — {msg}", file=sys.stderr)
    return 1


def check_trace(path: str, require_queries: bool,
                require_shards: bool) -> int:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail(f"{path}: no traceEvents array")

    pids_with_x = set()
    named_pids = set()
    n_x = n_m = 0
    stage_names = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return fail(f"{path}: event #{i} is not an object")
        ph = ev.get("ph")
        if ph == "M":
            n_m += 1
            if "pid" not in ev:
                return fail(f"{path}: metadata event #{i} has no pid")
            if ev.get("name") == "process_name":
                named_pids.add(ev["pid"])
            continue
        if ph != "X":
            return fail(f"{path}: event #{i} has ph={ph!r}, "
                        "expected 'X' or 'M'")
        n_x += 1
        for field in ("pid", "tid", "ts", "dur", "name"):
            if field not in ev:
                return fail(f"{path}: X event #{i} missing {field!r}")
        if ev["dur"] < 0 or ev["ts"] < 0:
            return fail(f"{path}: X event #{i} has negative ts/dur")
        pids_with_x.add(ev["pid"])
        if ev["pid"] == PIPELINE_PID:
            # Pipeline lanes are named "<stage> w<seq>".
            stage_names.add(ev["name"].split(" ")[0])

    if n_x == 0:
        return fail(f"{path}: no complete (X) events — empty trace")

    required = {PIPELINE_PID}
    if require_queries:
        required.add(QUERY_PID)
    if require_shards:
        required.add(SHARD_PID)
    for pid in sorted(required):
        if pid not in pids_with_x:
            return fail(f"{path}: no events on pid {pid} "
                        "(1=pipeline, 2=queries, 3=shards)")
        if pid not in named_pids:
            return fail(f"{path}: pid {pid} has no process_name metadata")

    unknown = stage_names - KNOWN_STAGES
    if unknown:
        return fail(f"{path}: unknown pipeline stage lanes: "
                    f"{sorted(unknown)}")

    print(f"check_trace: {path}: {n_x} span events + {n_m} metadata "
          f"events across pids {sorted(pids_with_x)}; "
          f"stages: {sorted(stage_names)}")
    return 0


def check_bench(path: str, max_reconcile_pct: float) -> int:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    checked = 0
    for snapshot in doc.get("snapshots", []):
        for r in snapshot.get("results", []):
            sb = r.get("stage_breakdown")
            if not sb:  # untraced row (single-tuple, or tracing off)
                continue
            if "stream" in r:  # bench_tpch_stream sweep row
                label = (f"{r['stream']} / {r.get('config', '?')} / "
                         f"{r.get('backend', '?')}")
            else:  # bench_serve row
                label = (f"{r.get('queries', '?')}q x "
                         f"{r.get('readers', '?')}r batch "
                         f"{r.get('batch_size', '?')}")
            pct = sb.get("reconcile_error_pct")
            if pct is None:
                return fail(f"{path}: row [{label}] stage_breakdown has "
                            "no reconcile_error_pct")
            if not sb.get("stages"):
                return fail(f"{path}: row [{label}] stage_breakdown has "
                            "no stages")
            if pct > max_reconcile_pct:
                return fail(f"{path}: row [{label}] reconcile_error_pct "
                            f"{pct:.2f}% > {max_reconcile_pct:.2f}% — "
                            "stage intervals fail to tile the window")
            print(f"check_trace: {path}: row [{label}] "
                  f"reconcile_error_pct {pct:.2f}% "
                  f"(budget {max_reconcile_pct:.2f}%)")
            checked += 1
    if checked == 0:
        return fail(f"{path}: no bench rows carried a stage_breakdown")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON to validate")
    parser.add_argument("--bench", action="append", default=[],
                        help="bench JSON whose stage_breakdown rows to "
                             "gate; repeatable")
    parser.add_argument("--max-reconcile-pct", type=float, default=5.0,
                        help="max unattributed share of window time "
                             "(default: 5.0)")
    parser.add_argument("--require-queries", action="store_true",
                        help="fail unless pid-2 (query) events exist")
    parser.add_argument("--require-shards", action="store_true",
                        help="fail unless pid-3 (shard) events exist")
    args = parser.parse_args()

    rc = check_trace(args.trace, args.require_queries, args.require_shards)
    for bench in args.bench:
        if rc:
            break
        rc = check_bench(bench, args.max_reconcile_pct)
    if rc == 0:
        print("check_trace: OK")
    return rc


if __name__ == "__main__":
    sys.exit(main())
