#!/usr/bin/env python3
"""Metrics-overhead gate for the CI release job.

Compares two bench_tpch_stream JSON snapshots — one from the normal
build (metrics on) and one from a -DRINGDB_NO_METRICS=ON control build —
and fails when the always-on observability layer costs more than the
budget (default 2%) of maintenance throughput.

Rows are matched by (stream, config, backend). Two noise filters make a
2% gate workable on shared CI runners whose single-run numbers swing by
double digits: pass each flag several times (one JSON per repeated bench
run) and the tool takes the best-of-N throughput per row — throughput
noise is one-sided, the fastest run is the least-disturbed one — and the
gate is then evaluated on the geometric mean of per-row ratios rather
than any single row, since the layer's cost is a property of the whole
sweep, not of one lucky cell. The headline zipf batch-1024 row is
printed separately because it is the number the repo tracks.

Usage:
  tools/check_overhead.py --metrics run1.json --metrics run2.json \
      --control ctl1.json --control ctl2.json [--max-overhead-pct 2.0]

Exit code 0: overhead within budget. 1: over budget or inputs unusable.
"""

import argparse
import json
import math
import sys


def load_rows(paths: list[str]) -> dict[tuple[str, str, str], float]:
    """(stream, config, backend) -> best-of-N upd_per_s across the runs."""
    rows: dict[tuple[str, str, str], float] = {}
    for path in paths:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
        for snapshot in doc.get("snapshots", []):
            for r in snapshot.get("results", []):
                key = (r["stream"], r["config"], r["backend"])
                rows[key] = max(rows.get(key, 0.0), float(r["upd_per_s"]))
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metrics", required=True, action="append",
                        help="bench JSON from the normal (metrics-on) "
                             "build; repeat for best-of-N")
    parser.add_argument("--control", required=True, action="append",
                        help="bench JSON from the RINGDB_NO_METRICS "
                             "build; repeat for best-of-N")
    parser.add_argument("--max-overhead-pct", type=float, default=2.0,
                        help="budget as a percentage (default: 2.0)")
    args = parser.parse_args()

    metrics = load_rows(args.metrics)
    control = load_rows(args.control)
    common = sorted(set(metrics) & set(control))
    if not common:
        print("check_overhead: no matching (stream, config, backend) rows "
              "between the two snapshots", file=sys.stderr)
        return 1

    print(f"{'stream':<24} {'config':<24} {'backend':<10} "
          f"{'metrics':>10} {'control':>10} {'overhead':>9}")
    log_ratio_sum = 0.0
    for key in common:
        stream, config, backend = key
        with_metrics = metrics[key]
        without = control[key]
        overhead = (without - with_metrics) / without * 100.0
        log_ratio_sum += math.log(with_metrics / without)
        print(f"{stream:<24} {config:<24} {backend:<10} "
              f"{with_metrics:>10.0f} {without:>10.0f} {overhead:>8.2f}%")

    geomean_overhead = (1.0 - math.exp(log_ratio_sum / len(common))) * 100.0
    print(f"\ngeomean overhead over {len(common)} rows: "
          f"{geomean_overhead:.2f}% (budget {args.max_overhead_pct:.2f}%)")

    headline = ("zipf(1.1), 15% deletes", "batch 1024", "interpret")
    if headline in metrics and headline in control:
        h = (control[headline] - metrics[headline]) / control[headline] * 100
        print(f"headline zipf batch-1024 interpret overhead: {h:.2f}%")

    if geomean_overhead > args.max_overhead_pct:
        print(f"check_overhead: FAIL — metrics cost {geomean_overhead:.2f}% "
              f"> {args.max_overhead_pct:.2f}% budget", file=sys.stderr)
        return 1
    print("check_overhead: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
