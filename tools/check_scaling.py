#!/usr/bin/env python3
"""Scaling-honesty and perf-trajectory gate over the committed bench file.

Validates the newest snapshot in BENCH_tpch_stream.json (the per-PR
throughput trajectory, recorded on the maintainer's fixed box so
adjacent snapshots are comparable — unlike CI runners, whose absolute
numbers are meaningless across machines):

1. The snapshot carries a `scaling` block (bench_tpch_stream emits it
   per multi-shard batch-1024 row, normalized to the 1-shard row).
2. Honesty: no scaling entry is labeled `scaled: true` unless the
   recording host had hardware_concurrency >= shards. A 1-core container
   must never ship rows that masquerade as scaling data.
3. When the recording host did have >= 4 cores, every 4-shard entry
   labeled scaled must show >= --min-4shard-speedup (default 2.0).
4. No regression: the headline row (zipf, batch 1024, 1 shard, compiled)
   must be within --max-regression-pct below the newest preceding
   snapshot that has a matching row. Being faster is always fine.

Usage:
  tools/check_scaling.py BENCH_tpch_stream.json [--max-regression-pct 5.0]

Exit code 0: all checks pass. 1: a check failed or inputs unusable.
"""

import argparse
import json
import sys

HEADLINE_CONFIG = "batch 1024"
HEADLINE_BACKEND = "compile"


def headline_row(snapshot):
    """The zipf / batch-1024 / 1-shard / compiled row, or None."""
    for r in snapshot.get("results", []):
        if (r.get("config") == HEADLINE_CONFIG
                and r.get("backend") == HEADLINE_BACKEND
                and r.get("shards") == 1
                and "zipf" in r.get("stream", "")):
            return r
    return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="committed BENCH_tpch_stream.json")
    parser.add_argument("--max-regression-pct", type=float, default=5.0)
    parser.add_argument("--min-4shard-speedup", type=float, default=2.0)
    args = parser.parse_args()

    with open(args.bench_json, encoding="utf-8") as f:
        doc = json.load(f)
    snapshots = doc.get("snapshots", [])
    if not snapshots:
        print("no snapshots in", args.bench_json)
        return 1
    latest = snapshots[-1]
    label = latest.get("label", "<unlabeled>")
    hw = int(latest.get("hardware_concurrency", 0))
    failures = []

    scaling = latest.get("scaling")
    if not isinstance(scaling, list) or not scaling:
        failures.append(f"latest snapshot '{label}' has no scaling block")
        scaling = []
    for e in scaling:
        shards = int(e.get("shards", 0))
        speedup = float(e.get("speedup_vs_1shard", 0.0))
        scaled = bool(e.get("scaled", False))
        where = f"{e.get('stream')}/{e.get('backend')}/{shards} shards"
        if scaled and hw < shards:
            failures.append(
                f"{where}: labeled scaled=true but hardware_concurrency="
                f"{hw} < shards={shards}")
        if scaled and shards == 4 and speedup < args.min_4shard_speedup:
            failures.append(
                f"{where}: {speedup:.2f}x < required "
                f"{args.min_4shard_speedup:.1f}x at 4 shards")
        print(f"  scaling {where}: {speedup:.2f}x"
              f" ({'scaled' if scaled else 'not scaled: insufficient cores'})")

    new_row = headline_row(latest)
    if new_row is None:
        failures.append(f"latest snapshot '{label}' lacks the headline row "
                        f"(zipf / {HEADLINE_CONFIG} / {HEADLINE_BACKEND})")
    else:
        base = None
        for prev in reversed(snapshots[:-1]):
            base = headline_row(prev)
            if base is not None:
                base_label = prev.get("label", "<unlabeled>")
                break
        if base is None:
            print("  no preceding snapshot with a headline row; "
                  "regression check skipped")
        else:
            new_tput = float(new_row["upd_per_s"])
            old_tput = float(base["upd_per_s"])
            change_pct = 100.0 * (new_tput - old_tput) / old_tput
            print(f"  headline: {new_tput:.0f} upd/s vs {old_tput:.0f} "
                  f"('{base_label}'), {change_pct:+.1f}%")
            if change_pct < -args.max_regression_pct:
                failures.append(
                    f"headline row regressed {change_pct:+.1f}% vs "
                    f"'{base_label}' (budget -{args.max_regression_pct:.1f}%)")

    if failures:
        for f_ in failures:
            print("FAIL:", f_, file=sys.stderr)
        return 1
    print(f"ok: '{label}' scaling block honest, headline within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
