// The recursive delta memoization scheme of §1.1, in its abstract form.
//
// Given f : X -> V with V an additive group, a finite update set U acting
// on X, and a depth k such that the k-th delta of f vanishes identically,
// RecursiveMemoizer materializes the values
//
//     Delta^j f(x, u_1, ..., u_j)    for all 0 <= j < k, u_i in U,
//
// for the current x. ApplyUpdate(u) then refreshes every memoized value
// with a single addition (Equation (1)):
//
//     Delta^j f(x_new, theta) := Delta^j f(x, theta)
//                                + Delta^{j+1} f(x, theta, u),
//
// processed in order of increasing j so the update is in-place. After
// initialization, f itself is never re-evaluated: Current() is a memo
// lookup. This is the engine behind Figure 1 (f(x) = x^2 over Z,
// U = {+1, -1}) and the conceptual template for the query compiler.

#ifndef RINGDB_ALGEBRA_MEMOIZER_H_
#define RINGDB_ALGEBRA_MEMOIZER_H_

#include <cstddef>
#include <functional>
#include <map>
#include <vector>

#include "util/check.h"

namespace ringdb {
namespace algebra {

template <typename X, typename U, typename V>
class RecursiveMemoizer {
 public:
  using Fn = std::function<V(const X&)>;
  using Apply = std::function<X(const X&, const U&)>;

  // `f`: the expensive function; `apply`: the update action x + u;
  // `updates`: the finite update set U; `depth`: the k with
  // Delta^k f == 0 (statically known from f's definition, e.g. polynomial
  // degree + 1).
  RecursiveMemoizer(Fn f, Apply apply, std::vector<U> updates, size_t depth,
                    X initial)
      : f_(std::move(f)),
        apply_(std::move(apply)),
        updates_(std::move(updates)),
        depth_(depth),
        x_(std::move(initial)) {
    RINGDB_CHECK_GE(depth_, 1u);
    Initialize();
  }

  // The memoized f(x) for the current x. O(1); no evaluation of f.
  const V& Current() const { return memo_.at({}); }

  // Memoized Delta^j f(x, theta) where theta indexes into the update set.
  const V& DeltaAt(const std::vector<size_t>& theta) const {
    return memo_.at(theta);
  }

  size_t depth() const { return depth_; }
  size_t MemoizedCount() const { return memo_.size(); }
  size_t AdditionsPerformed() const { return additions_; }

  // Applies update u (an index into the update set): x := x + U[u].
  // Performs exactly one addition per memoized value of level < depth-1.
  void ApplyUpdate(size_t u) {
    RINGDB_CHECK_LT(u, updates_.size());
    // Ascending level order: each level-j cell reads the level-(j+1) cell's
    // pre-update value, which is untouched because levels are disjoint.
    for (size_t j = 0; j + 1 < depth_; ++j) {
      for (auto& [theta, value] : memo_) {
        if (theta.size() != j) continue;
        std::vector<size_t> next = theta;
        next.push_back(u);
        value = value + memo_.at(next);
        ++additions_;
      }
    }
    x_ = apply_(x_, updates_[u]);
  }

  // Recomputes Delta^j f(x, theta) from the definition of f by
  // inclusion-exclusion; used only for initialization and by tests as an
  // oracle. Cost grows as 2^|theta| evaluations of f.
  V EvalDeltaFromDefinition(const std::vector<size_t>& theta) const {
    return EvalDelta(x_, theta);
  }

 private:
  void Initialize() {
    memo_.clear();
    std::vector<size_t> theta;
    InitLevel(&theta);
  }

  void InitLevel(std::vector<size_t>* theta) {
    memo_[*theta] = EvalDelta(x_, *theta);
    if (theta->size() + 1 >= depth_) return;
    for (size_t u = 0; u < updates_.size(); ++u) {
      theta->push_back(u);
      InitLevel(theta);
      theta->pop_back();
    }
  }

  // Delta^j f(x, u_1..u_j) = Delta^{j-1} f(x + u_j, u_1..u_{j-1})
  //                          - Delta^{j-1} f(x, u_1..u_{j-1}).
  V EvalDelta(const X& x, const std::vector<size_t>& theta) const {
    if (theta.empty()) return f_(x);
    std::vector<size_t> prefix(theta.begin(), theta.end() - 1);
    const U& last = updates_[theta.back()];
    return EvalDelta(apply_(x, last), prefix) + (-EvalDelta(x, prefix));
  }

  Fn f_;
  Apply apply_;
  std::vector<U> updates_;
  size_t depth_;
  X x_;
  size_t additions_ = 0;
  // map (not unordered) so iteration order is deterministic across runs.
  std::map<std::vector<size_t>, V> memo_;
};

}  // namespace algebra
}  // namespace ringdb

#endif  // RINGDB_ALGEBRA_MEMOIZER_H_
