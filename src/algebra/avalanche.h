// Avalanche (semi)rings  =>A[G]  (Definition 2.5, Theorem 2.6).
//
// An avalanche element is a function f : G -> A[G]. Multiplication performs
// sideways binding passing: the right factor is evaluated at b *G y, the
// composition of the incoming binding b with the group element y produced
// by the left factor:
//
//     (f * g)(b)(x) = sum_{x = y *G z} f(b)(y) *A g(b *G y)(z).
//
// This is the algebraic mechanism by which AGCA passes variable bindings
// from left to right through a product (range restriction without a
// selection operator). The AGCA evaluator (src/agca/eval.cc) is a
// specialized, efficient realization of this structure; the generic form
// here exists so the ring axioms of Theorem 2.6 can be verified directly
// in tests over small finite monoids, including mutilated ones (§2.4) and
// the embedding of A[G] as the subring of binding-ignoring functions
// (Proposition 2.8).

#ifndef RINGDB_ALGEBRA_AVALANCHE_H_
#define RINGDB_ALGEBRA_AVALANCHE_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "algebra/monoid_ring.h"
#include "algebra/ring_traits.h"

namespace ringdb {
namespace algebra {

template <PartialMonoid G, RingScalar A>
class AvalancheElem {
 public:
  using Ring = MonoidRingElem<G, A>;
  using Fn = std::function<Ring(const G&)>;

  AvalancheElem() : fn_([](const G&) { return Ring::Zero(); }) {}
  explicit AvalancheElem(Fn fn) : fn_(std::move(fn)) {}

  // 0 and 1 ignore their binding (they lie in the subring =>A[G]_0).
  static AvalancheElem Zero() { return AvalancheElem(); }
  static AvalancheElem One() {
    return AvalancheElem([](const G&) { return Ring::One(); });
  }

  // Lifts alpha in A[G] to the binding-ignoring function (. -> alpha);
  // this is the isomorphic embedding of Proposition 2.8.
  static AvalancheElem Lift(Ring alpha) {
    return AvalancheElem(
        [alpha = std::move(alpha)](const G&) { return alpha; });
  }

  Ring Eval(const G& binding) const { return fn_(binding); }

  friend AvalancheElem operator+(const AvalancheElem& f,
                                 const AvalancheElem& g) {
    return AvalancheElem(
        [f, g](const G& b) { return f.Eval(b) + g.Eval(b); });
  }

  AvalancheElem operator-() const {
    AvalancheElem self = *this;
    return AvalancheElem([self](const G& b) { return -self.Eval(b); });
  }

  friend AvalancheElem operator-(const AvalancheElem& f,
                                 const AvalancheElem& g) {
    return f + (-g);
  }

  // Sideways-binding-passing product. Terms where b *G y leaves the
  // mutilated monoid contribute nothing (the extended-type convention at
  // the end of §2.4: f(b)(x) = 0 whenever b *G x is excluded).
  friend AvalancheElem operator*(const AvalancheElem& f,
                                 const AvalancheElem& g) {
    return AvalancheElem([f, g](const G& b) {
      Ring out;
      Ring left = f.Eval(b);
      for (const auto& [y, coeff_y] : left.support()) {
        std::optional<G> by = G::Compose(b, y);
        if (!by.has_value()) continue;
        Ring right = g.Eval(*by);
        for (const auto& [z, coeff_z] : right.support()) {
          std::optional<G> yz = G::Compose(y, z);
          if (!yz.has_value()) continue;
          out.Add(*yz, coeff_y * coeff_z);
        }
      }
      return out;
    });
  }

  // Pointwise equality over an explicit finite test universe. Avalanche
  // elements are functions on all of G, so equality is only decidable for
  // finite (enumerated) monoids; tests supply the enumeration.
  bool EqualsOn(const AvalancheElem& other,
                const std::vector<G>& universe) const {
    for (const G& b : universe) {
      if (Eval(b) != other.Eval(b)) return false;
    }
    return true;
  }

 private:
  Fn fn_;
};

}  // namespace algebra
}  // namespace ringdb

#endif  // RINGDB_ALGEBRA_AVALANCHE_H_
