// Monoid (semi)rings A[G] (Definition 2.3) and their mutilations (§2.4).
//
// An element of A[G] is a finite-support function alpha : G -> A. Addition
// is pointwise; multiplication is the convolution product
//
//     (alpha * beta)(x) = sum_{x = y *G z} alpha(y) *A beta(z).
//
// This generic construction is the reference implementation against which
// the specialized database ring ring::Gmr (§3) is tested: Gmr is exactly
// Z[Sng] for the mutilated singleton-relation monoid, and the test suite
// checks the two agree. Proposition 2.4 (ring axioms) and Proposition 2.16
// (uniqueness of the convolution product) are exercised as property tests
// over random elements of small instances.

#ifndef RINGDB_ALGEBRA_MONOID_RING_H_
#define RINGDB_ALGEBRA_MONOID_RING_H_

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "algebra/ring_traits.h"
#include "util/check.h"

namespace ringdb {
namespace algebra {

template <PartialMonoid G, RingScalar A>
class MonoidRingElem {
 public:
  using Support = std::unordered_map<G, A>;

  MonoidRingElem() = default;

  // The additive identity 0: all of G maps to 0A.
  static MonoidRingElem Zero() { return MonoidRingElem(); }

  // The multiplicative identity 1: 1G -> 1A, all else 0A.
  static MonoidRingElem One() {
    MonoidRingElem e;
    e.Set(G::One(), RingTraits<A>::One());
    return e;
  }

  // A basis element chi_g scaled by a (Proposition 2.15 notation: a*chi_g).
  static MonoidRingElem Singleton(G g, A a) {
    MonoidRingElem e;
    e.Set(std::move(g), std::move(a));
    return e;
  }

  // Coefficient of g; 0A for g outside the support.
  A At(const G& g) const {
    auto found = support_.find(g);
    if (found == support_.end()) return RingTraits<A>::Zero();
    return found->second;
  }

  void Set(G g, A a) {
    if (a == RingTraits<A>::Zero()) {
      support_.erase(g);
    } else {
      support_[std::move(g)] = std::move(a);
    }
  }

  // Adds a to the coefficient of g, dropping the entry if it cancels.
  void Add(const G& g, const A& a) {
    auto it = support_.find(g);
    if (it == support_.end()) {
      if (!(a == RingTraits<A>::Zero())) support_.emplace(g, a);
      return;
    }
    it->second = it->second + a;
    if (it->second == RingTraits<A>::Zero()) support_.erase(it);
  }

  const Support& support() const { return support_; }
  size_t SupportSize() const { return support_.size(); }
  bool IsZero() const { return support_.empty(); }

  friend MonoidRingElem operator+(const MonoidRingElem& x,
                                  const MonoidRingElem& y) {
    MonoidRingElem r = x;
    for (const auto& [g, a] : y.support_) r.Add(g, a);
    return r;
  }

  MonoidRingElem operator-() const {
    MonoidRingElem r;
    for (const auto& [g, a] : support_) r.Set(g, -a);
    return r;
  }

  friend MonoidRingElem operator-(const MonoidRingElem& x,
                                  const MonoidRingElem& y) {
    return x + (-y);
  }

  // Convolution product. Products y *G z that fall outside the mutilated
  // monoid (Compose == nullopt) contribute nothing — this is precisely the
  // natural projection onto the quotient ring A[G0] of Lemma 2.9.
  friend MonoidRingElem operator*(const MonoidRingElem& x,
                                  const MonoidRingElem& y) {
    MonoidRingElem r;
    for (const auto& [g, a] : x.support_) {
      for (const auto& [h, b] : y.support_) {
        std::optional<G> prod = G::Compose(g, h);
        if (!prod.has_value()) continue;
        r.Add(*prod, a * b);
      }
    }
    return r;
  }

  // Scalar action making A[G] an A-module (Proposition 2.15).
  friend MonoidRingElem operator*(const A& a, const MonoidRingElem& x) {
    MonoidRingElem r;
    for (const auto& [g, b] : x.support_) r.Add(g, a * b);
    return r;
  }

  friend bool operator==(const MonoidRingElem& x, const MonoidRingElem& y) {
    if (x.support_.size() != y.support_.size()) return false;
    for (const auto& [g, a] : x.support_) {
      auto it = y.support_.find(g);
      if (it == y.support_.end() || !(it->second == a)) return false;
    }
    return true;
  }
  friend bool operator!=(const MonoidRingElem& x, const MonoidRingElem& y) {
    return !(x == y);
  }

 private:
  Support support_;
};

}  // namespace algebra
}  // namespace ringdb

#endif  // RINGDB_ALGEBRA_MONOID_RING_H_
