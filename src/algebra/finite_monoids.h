// Small finite monoids used to instantiate and test the generic algebra of
// §2. These are deliberately tiny so that property tests can enumerate the
// whole structure and verify ring axioms exhaustively.

#ifndef RINGDB_ALGEBRA_FINITE_MONOIDS_H_
#define RINGDB_ALGEBRA_FINITE_MONOIDS_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace ringdb {
namespace algebra {

// (Z_N, +, 0): a commutative group, hence a plain (unmutilated) monoid.
template <uint32_t N>
struct CyclicAddMonoid {
  uint32_t v = 0;

  static CyclicAddMonoid One() { return {0}; }
  static std::optional<CyclicAddMonoid> Compose(CyclicAddMonoid a,
                                                CyclicAddMonoid b) {
    return CyclicAddMonoid{(a.v + b.v) % N};
  }
  friend bool operator==(CyclicAddMonoid a, CyclicAddMonoid b) {
    return a.v == b.v;
  }

  static std::vector<CyclicAddMonoid> Universe() {
    std::vector<CyclicAddMonoid> u;
    for (uint32_t i = 0; i < N; ++i) u.push_back({i});
    return u;
  }
};

// (Z_N \ {0}, *, 1): the multiplicative monoid of Z_N with its zero
// mutilated away (§2.4). Z_N \ {0} is downward-closed in (Z_N, *) because
// a*b != 0 implies a != 0 and b != 0. For composite N the composition is
// genuinely partial (e.g. 2 * 3 = 0 mod 6 falls outside), which makes this
// the minimal interesting test of the quotient construction.
template <uint32_t N>
struct ModMulMonoid {
  uint32_t v = 1;  // invariant: v != 0

  static ModMulMonoid One() { return {1}; }
  static std::optional<ModMulMonoid> Compose(ModMulMonoid a, ModMulMonoid b) {
    uint32_t p = static_cast<uint32_t>(
        (static_cast<uint64_t>(a.v) * b.v) % N);
    if (p == 0) return std::nullopt;
    return ModMulMonoid{p};
  }
  friend bool operator==(ModMulMonoid a, ModMulMonoid b) {
    return a.v == b.v;
  }

  static std::vector<ModMulMonoid> Universe() {
    std::vector<ModMulMonoid> u;
    for (uint32_t i = 1; i < N; ++i) u.push_back({i});
    return u;
  }
};

}  // namespace algebra
}  // namespace ringdb

template <uint32_t N>
struct std::hash<ringdb::algebra::CyclicAddMonoid<N>> {
  size_t operator()(ringdb::algebra::CyclicAddMonoid<N> m) const noexcept {
    return m.v * 0x9e3779b97f4a7c15ULL >> 17;
  }
};

template <uint32_t N>
struct std::hash<ringdb::algebra::ModMulMonoid<N>> {
  size_t operator()(ringdb::algebra::ModMulMonoid<N> m) const noexcept {
    return m.v * 0xbf58476d1ce4e5b9ULL >> 17;
  }
};

#endif  // RINGDB_ALGEBRA_FINITE_MONOIDS_H_
