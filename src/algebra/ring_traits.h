// Scalar (semi)ring traits for the generic algebraic constructions of §2.
//
// A scalar type A models a commutative ring with identity through
// RingTraits<A>: Zero/One constants plus the type's own +, *, unary -.
// The default works for built-in integers, doubles, and util::Numeric.

#ifndef RINGDB_ALGEBRA_RING_TRAITS_H_
#define RINGDB_ALGEBRA_RING_TRAITS_H_

#include <concepts>

namespace ringdb {
namespace algebra {

template <typename A>
struct RingTraits {
  static A Zero() { return A(0); }
  static A One() { return A(1); }
};

// Requirements on a scalar ring element type.
template <typename A>
concept RingScalar = requires(A a, A b) {
  { a + b } -> std::convertible_to<A>;
  { a * b } -> std::convertible_to<A>;
  { -a } -> std::convertible_to<A>;
  { a == b } -> std::convertible_to<bool>;
  { RingTraits<A>::Zero() } -> std::convertible_to<A>;
  { RingTraits<A>::One() } -> std::convertible_to<A>;
};

// Requirements on a (possibly mutilated) monoid element type G.
//
// Compose is the monoid operation *G, made partial to realize the
// quotient-by-downward-closed-subset ("mutilation") construction of §2.4:
// Compose returns nullopt exactly when the product falls outside the
// retained subset G0 (e.g. the removed zero of Sng∅). For an ordinary
// monoid, Compose always returns a value. Downward-closure of G0 is what
// makes the quotient well defined; the unit tests verify the ring axioms
// still hold for mutilated instances.
template <typename G>
concept PartialMonoid = requires(const G& g, const G& h) {
  { G::One() } -> std::convertible_to<G>;
  { G::Compose(g, h) };  // -> std::optional<G>
  { g == h } -> std::convertible_to<bool>;
};

}  // namespace algebra
}  // namespace ringdb

#endif  // RINGDB_ALGEBRA_RING_TRAITS_H_
