#include "serve/query_service.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <utility>

#include "obs/trace_export.h"
#include "sql/translate.h"
#include "util/check.h"
#include "util/table_printer.h"

namespace ringdb {
namespace serve {

namespace {

// Minimal JSON string escaping for error messages embedded in StatsJson
// (paths and strerror text can carry quotes and backslashes).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

QueryService::QueryService(ring::Catalog catalog, ServeOptions options)
    : catalog_(std::move(catalog)),
      options_(options),
      queue_(options.queue_capacity),
      builder_(catalog_),
      trace_(options.trace_windows) {}

QueryService::~QueryService() { Stop(); }

StatusOr<QueryId> QueryService::Register(std::string name,
                                         std::vector<Symbol> group_vars,
                                         agca::ExprPtr body) {
  if (started_ || stopped_) {
    return Status::FailedPrecondition(
        "queries must be registered before Start()");
  }
  runtime::EngineOptions engine_options;
  engine_options.batch_size = options_.batch_size;
  engine_options.num_shards = options_.num_shards;
  engine_options.backend = options_.backend;
  RINGDB_ASSIGN_OR_RETURN(
      runtime::Engine engine,
      runtime::Engine::Create(catalog_, group_vars, std::move(body),
                              engine_options));
  auto info = std::make_shared<QueryInfo>();
  info->name = std::move(name);
  info->group_vars = std::move(group_vars);
  info->key_order = engine.root_key_order();
  auto query = std::make_unique<Query>();
  query->info = info;
  query->engine = std::make_unique<runtime::Engine>(std::move(engine));
  for (const compiler::Trigger& trigger : query->engine->program().triggers) {
    query->relevant_relations.insert(trigger.relation);
  }
  // The empty pre-ingest snapshot: readers are never handed a null.
  query->snapshot.store(ResultSnapshot::Build(std::move(info),
                                              *query->engine,
                                              /*version=*/0,
                                              /*updates_applied=*/0));
  queries_.push_back(std::move(query));
  return queries_.size() - 1;
}

StatusOr<QueryId> QueryService::RegisterSql(std::string name,
                                            const std::string& sql) {
  RINGDB_ASSIGN_OR_RETURN(sql::TranslatedQuery translated,
                          sql::TranslateSql(catalog_, sql));
  return Register(std::move(name), std::move(translated.group_vars),
                  std::move(translated.body));
}

std::vector<log::DurableLog::EngineSlot> QueryService::EngineSlots() const {
  std::vector<log::DurableLog::EngineSlot> slots;
  slots.reserve(queries_.size());
  for (size_t i = 0; i < queries_.size(); ++i) {
    // Registration order names the checkpoint families; a service must
    // register its queries in the same order across restarts (the
    // program fingerprint rejects a swapped assignment regardless).
    slots.push_back({"q" + std::to_string(i), queries_[i]->engine.get()});
  }
  return slots;
}

void QueryService::DisableDurability(Status error) {
  bool first_error = false;
  {
    std::lock_guard<std::mutex> lock(dlog_mu_);
    if (durability_status_.ok()) {
      durability_status_ = std::move(error);
      first_error = true;
    }
    if (dlog_ != nullptr) {
      (void)dlog_->Close();  // best effort; the error is already recorded
      dlog_.reset();
    }
  }
#ifndef RINGDB_NO_METRICS
  // Flight dump on the first fail-stop: the last trace_windows windows
  // (the failing one still in flight, complete=false) to the durability
  // directory, outside dlog_mu_ — the dump is pure reads of the trace
  // ring plus file IO.
  if (first_error && !options_.durability.dir.empty()) {
    WriteTraceFile(options_.durability.dir + "/flight.trace.json");
  }
#else
  (void)first_error;
#endif
}

void QueryService::WriteTraceFile(const std::string& path) const {
  const std::string json = TraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;  // best effort: tracing must never fail ingest
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

void QueryService::RecoverDurability() {
  if (!options_.durability.enabled()) return;
  auto opened = log::DurableLog::Open(catalog_, options_.durability);
  if (!opened.ok()) {
    DisableDurability(opened.status());
    return;
  }
  std::unique_ptr<log::DurableLog> dlog = std::move(opened).value();
  Status recovered = dlog->Recover(EngineSlots());
  if (!recovered.ok()) {
    // Fail-stop, not fatal: the engines may hold a partial replay, but
    // every snapshot still advertises the pre-recovery epoch 0 and no
    // new windows were applied — republish nothing, serve memory-only.
    DisableDurability(std::move(recovered));
    return;
  }
  recovered_seq_ = dlog->recovered_seq();
  recovered_updates_ = dlog->recovered_updates();
  if (recovered_seq_ > 0) {
    // Republish every query at the recovered epoch: readers of the
    // restarted service resume exactly at "a replay of the first
    // recovered_updates events", the invariant snapshots advertise.
    for (auto& query : queries_) {
      query->snapshot.store(ResultSnapshot::Build(
          query->info, *query->engine, recovered_seq_, recovered_updates_));
    }
    RINGDB_OBS(windows_.SetMax(static_cast<int64_t>(recovered_seq_)));
  }
  // From here every AppendWindow/MaybeCheckpoint attributes its WAL
  // append, fsync, and checkpoint time to the window's trace slot.
  dlog->set_trace(&trace_);
  std::lock_guard<std::mutex> lock(dlog_mu_);
  dlog_ = std::move(dlog);
}

void QueryService::Start() {
  RINGDB_CHECK(!started_ && !stopped_);
  RecoverDurability();  // before any thread exists; engines are quiescent
  // Shard-owned publication from here on: each shard freezes its root
  // sub-snapshot at window end (under its token), so snapshot builds
  // compose pointers instead of scanning. Enabled only now — recovery
  // replay above paid no per-window freezes, and its republish seeded
  // the per-shard epochs lazily through RootSubSnapshots.
  for (auto& query : queries_) {
    query->engine->sharded().EnablePublish(true);
  }
#ifndef RINGDB_NO_METRICS
  if (!options_.trace_dump_path.empty()) {
    // Opt-in on-demand dump: `kill -USR1 <pid>` flags a request; the
    // batcher polls between windows and writes trace_dump_path.
    obs::ArmTraceDumpSignal(SIGUSR1);
  }
#endif
  started_ = true;
  for (size_t i = 1; i < queries_.size(); ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  batcher_ = std::thread([this] { BatcherLoop(); });
}

Status QueryService::Push(const ring::Update& update) {
  // Before Start there is no batcher to drain the queue: accepting the
  // update would strand it (and leave a later Drain() waiting forever).
  if (!started_) {
    return Status::FailedPrecondition("Push before Start()");
  }
  // Eager validation — the exact check BatchBuilder::Add performs — so
  // the producer gets the error and the batcher can treat builder
  // failures as impossible.
  RINGDB_RETURN_IF_ERROR(exec::BatchBuilder::Validate(
      catalog_, update.relation, update.values));
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++pushed_;
  }
  // Not accepted after all: undo the drain accounting. The rollback may
  // have made Drain's predicate true with no further applies coming, so
  // wake waiters too.
  auto rollback = [&] {
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      --pushed_;
    }
    drain_cv_.notify_all();
  };
  if (options_.push_timeout_ms == 0) {
    // No deadline: block on backpressure for as long as it takes.
    if (!queue_.Push(update)) {
      rollback();
      return Status::FailedPrecondition("ingest queue closed");
    }
    return Status::Ok();
  }
  switch (queue_.TryPushFor(
      update, std::chrono::milliseconds(options_.push_timeout_ms))) {
    case IngestQueue::PushResult::kAccepted:
      return Status::Ok();
    case IngestQueue::PushResult::kTimedOut:
      rollback();
      return Status::Unavailable(
          "ingest queue full: no space within " +
          std::to_string(options_.push_timeout_ms) + "ms (retryable)");
    case IngestQueue::PushResult::kClosed:
      rollback();
      return Status::FailedPrecondition("ingest queue closed");
  }
  RINGDB_CHECK(false);
  return Status::Internal("unreachable");
}

void QueryService::Drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [&] { return applied_ >= pushed_; });
}

void QueryService::Stop() {
  if (stopped_) return;
  stall_batcher_.store(false, std::memory_order_release);
  queue_.Close();
  if (batcher_.joinable()) batcher_.join();  // drains accepted updates
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_workers_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  {
    // Batcher joined: the WAL tail is quiescent. A clean stop syncs it,
    // so kGroupCommit loses nothing across an orderly restart.
    std::lock_guard<std::mutex> lock(dlog_mu_);
    if (dlog_ != nullptr) {
      Status closed = dlog_->Close();
      if (!closed.ok() && durability_status_.ok()) {
        durability_status_ = std::move(closed);
      }
    }
  }
  stopped_ = true;
}

const QueryInfo& QueryService::query_info(QueryId id) const {
  RINGDB_CHECK(id < queries_.size());
  return *queries_[id]->info;
}

Status QueryService::status() const {
  for (const auto& query : queries_) {
    if (!query->apply_status.ok()) return query->apply_status;
  }
  return Status::Ok();
}

Status QueryService::durability_status() const {
  std::lock_guard<std::mutex> lock(dlog_mu_);
  return durability_status_;
}

runtime::Engine& QueryService::engine(QueryId id) {
  RINGDB_CHECK(id < queries_.size());
  RINGDB_CHECK(!started_ || stopped_);
  return *queries_[id]->engine;
}

void QueryService::ApplyAndPublish(size_t query_index,
                                   const exec::UpdateBatch& batch,
                                   uint64_t version,
                                   uint64_t updates_applied,
                                   uint64_t window_ns) {
  Query& query = *queries_[query_index];
  // A window disjoint from the query's trigger relations cannot move
  // the result: skip the no-op apply and the O(result-size) snapshot
  // rebuild. The previous snapshot stays published — still a correct
  // prefix of the stream, just labeled with its older epoch.
  bool touches_query = false;
  for (const exec::RelationDelta& delta : batch.deltas()) {
    if (query.relevant_relations.contains(delta.relation)) {
      touches_query = true;
      break;
    }
  }
  if (!touches_query) {
    RINGDB_OBS(query.windows_skipped.Add(1));
    return;
  }
#ifndef RINGDB_NO_METRICS
  const uint64_t t0 = obs::NowNs();
  // Hand the window's trace slot down to the engine's shard layer: each
  // shard records its own apply span tagged with this query. The engine
  // is exclusively this applier's for the duration of the window, so the
  // plain write is safe (workers read it after the generation handshake).
  query.engine->sharded().SetTraceContext(
      {&trace_, version, static_cast<uint32_t>(query_index)});
#endif
  Status applied = query.engine->ApplyPrepared(batch);
#ifndef RINGDB_NO_METRICS
  query.engine->sharded().SetTraceContext({});
  const uint64_t t1 = obs::NowNs();
  query_apply_ns_.Record(t1 - t0);
#endif
  if (!applied.ok() && query.apply_status.ok()) {
    query.apply_status = std::move(applied);
  }
  query.snapshot.store(ResultSnapshot::Build(query.info, *query.engine,
                                             version, updates_applied));
#ifndef RINGDB_NO_METRICS
  const uint64_t t2 = obs::NowNs();
  publish_age_ns_.Record(t2 - window_ns);
  const uint32_t mode = query.engine->executor().window_dispatch_mode();
  trace_.AddSpan(version, obs::kSpanQueryApply,
                 static_cast<uint32_t>(query_index), /*shard=*/0, mode, t0,
                 t1);
  trace_.AddSpan(version, obs::kSpanQueryPublish,
                 static_cast<uint32_t>(query_index), /*shard=*/0, mode, t1,
                 t2);
#endif
  RINGDB_OBS(query.windows_applied.Add(1));
}

void QueryService::WorkerLoop(size_t query_index) {
  uint64_t seen_generation = 0;
  while (true) {
    const exec::UpdateBatch* batch = nullptr;
    uint64_t version = 0;
    uint64_t updates = 0;
    uint64_t window_ns = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_workers_ || generation_ != seen_generation;
      });
      if (stop_workers_) return;
      seen_generation = generation_;
      batch = current_batch_;
      version = current_version_;
      updates = current_updates_;
      window_ns = current_window_ns_;
    }
    ApplyAndPublish(query_index, *batch, version, updates, window_ns);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
    }
    done_cv_.notify_one();
  }
}

void QueryService::BatcherLoop() {
  std::vector<ring::Update> window;
  // Window numbering continues across restarts: recovery landed the
  // engines (and the published snapshots) exactly on this epoch.
  uint64_t sequence = recovered_seq_;
  uint64_t cumulative_updates = recovered_updates_;
  uint64_t oldest_enqueue_ns = 0;
  while (queue_.PopWindow(options_.batch_size, &window, &oldest_enqueue_ns)) {
    while (stall_batcher_.load(std::memory_order_acquire)) {
      // Test hook: hold the popped window so producers fill the queue
      // behind it. Stop() clears the flag before closing the queue.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const uint64_t window_ns = obs::NowNs();
    cumulative_updates += window.size();
    const uint64_t version = ++sequence;
#ifndef RINGDB_NO_METRICS
    // The window's trace slot opens here and closes after checkpoint;
    // queue-wait is the span the window's oldest event spent enqueued
    // before the batcher picked the window up.
    trace_.BeginWindow(version, window.size());
    if (oldest_enqueue_ns != 0 && oldest_enqueue_ns <= window_ns) {
      trace_.Stage(version, obs::kTraceQueueWait, oldest_enqueue_ns,
                   window_ns);
    }
#endif
    for (const ring::Update& update : window) {
      // Push validated relation and arity; Add cannot fail.
      RINGDB_CHECK(builder_.Add(update).ok());
    }
    // The window's delta GMRs, built once for all queries.
    exec::UpdateBatch batch = builder_.Build();
#ifndef RINGDB_NO_METRICS
    const uint64_t coalesce_end = obs::NowNs();
    coalesce_ns_.Record(coalesce_end - window_ns);
    trace_.Stage(version, obs::kTraceCoalesce, window_ns, coalesce_end);
#endif
    // Write-ahead: the window is logged before any engine sees it, so a
    // crash anywhere downstream replays it instead of losing it. Append
    // failure is fail-stop for durability only (record + keep serving).
    if (dlog_ != nullptr) {
      Status logged;
      {
        std::lock_guard<std::mutex> lock(dlog_mu_);
        if (dlog_ != nullptr) {
          logged = dlog_->AppendWindow(version, window.size(),
                                       cumulative_updates, batch);
        }
      }
      if (!logged.ok()) DisableDurability(std::move(logged));
    }
    RINGDB_OBS(windows_.Set(static_cast<int64_t>(version)));
    const size_t num_queries = queries_.size();
#ifndef RINGDB_NO_METRICS
    const uint64_t fanout_t0 = obs::NowNs();
#endif
    if (num_queries > 1) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        current_batch_ = &batch;
        current_version_ = version;
        current_updates_ = cumulative_updates;
        current_window_ns_ = window_ns;
        pending_ = num_queries - 1;
        ++generation_;
      }
      work_cv_.notify_all();
    }
    if (num_queries > 0) {
      // Query 0 runs here: the batcher is an applier, not just a router.
      ApplyAndPublish(0, batch, version, cumulative_updates, window_ns);
    }
    if (num_queries > 1) {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&] { return pending_ == 0; });
    }
#ifndef RINGDB_NO_METRICS
    if (num_queries > 0) {
      // Fan-out barrier: publish through every applier's ApplyPrepared +
      // snapshot swap, back to all-workers-parked. The per-query and
      // per-shard spans recorded inside nest under this interval.
      trace_.Stage(version, obs::kTraceFanout, fanout_t0, obs::NowNs());
    }
#endif
    // Every engine has fully applied the window and the workers are
    // parked — the quiescence WriteCheckpoint requires.
    if (dlog_ != nullptr) {
      Status ckpt;
      {
        std::lock_guard<std::mutex> lock(dlog_mu_);
        if (dlog_ != nullptr) {
          ckpt = dlog_->MaybeCheckpoint(version, cumulative_updates,
                                        EngineSlots());
        }
      }
      if (!ckpt.ok()) DisableDurability(std::move(ckpt));
    }
#ifndef RINGDB_NO_METRICS
    trace_.FinishWindow(version);
    if (!options_.trace_dump_path.empty() &&
        obs::ConsumeTraceDumpRequest()) {
      WriteTraceFile(options_.trace_dump_path);
    }
#endif
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      applied_ += window.size();
    }
    drain_cv_.notify_all();
  }
}

QueryService::ServiceStats QueryService::Stats() const {
  ServiceStats out;
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    out.pushed = pushed_;
    out.applied = applied_;
  }
  out.windows = windows_.Value();
  out.queue = queue_.GetStats();
  {
    std::lock_guard<std::mutex> lock(dlog_mu_);
    if (dlog_ != nullptr) out.durability = dlog_->GetStats();
    out.degraded = !durability_status_.ok();
    if (out.degraded) out.durability_error = durability_status_.message();
  }
  out.crash_points = log::CrashPointCounts();
  out.coalesce_ns = coalesce_ns_.Snapshot();
  out.query_apply_ns = query_apply_ns_.Snapshot();
  out.publish_age_ns = publish_age_ns_.Snapshot();
  out.queries.reserve(queries_.size());
  for (const auto& query : queries_) {
    QueryStats qs;
    qs.name = query->info->name;
    qs.snapshot_version = query->snapshot.load()->version();
    qs.windows_applied = query->windows_applied.Value();
    qs.windows_skipped = query->windows_skipped.Value();
    // The global epoch is read after the per-query ones, so a racing
    // window can only make staleness look larger, never negative — but
    // clamp anyway (a query may also observe its own window before the
    // batcher's Set lands).
    qs.staleness_windows = std::max<int64_t>(
        0, out.windows - (qs.windows_applied + qs.windows_skipped));
    out.queries.push_back(std::move(qs));
  }
  return out;
}

std::string QueryService::StatsText() const {
  const ServiceStats st = Stats();
  std::string out;
  out += "serve: pushed=" + std::to_string(st.pushed) +
         " applied=" + std::to_string(st.applied) +
         " windows=" + std::to_string(st.windows) +
         " queue_depth=" + std::to_string(st.queue.depth) + "/" +
         std::to_string(st.queue.capacity) +
         " stalls=" + std::to_string(st.queue.stalls) + "\n";
  auto span = [&](const char* name, const obs::HistogramSnapshot& s) {
    out += std::string(name) + ": n=" + std::to_string(s.count) +
           " mean=" + std::to_string(s.mean()) +
           "ns p50=" + std::to_string(s.p50) +
           "ns p99=" + std::to_string(s.p99) +
           "ns max=" + std::to_string(s.max) + "ns\n";
  };
  span("queue_wait", st.queue.wait_ns);
  span("queue_stall", st.queue.stall_ns);
  span("coalesce", st.coalesce_ns);
  span("query_apply", st.query_apply_ns);
  span("publish_age", st.publish_age_ns);
  if (st.durability.enabled) {
    out += "durability: policy=" + st.durability.policy +
           " wal_records=" + std::to_string(st.durability.wal_records) +
           " wal_bytes=" + std::to_string(st.durability.wal_bytes) +
           " fsyncs=" + std::to_string(st.durability.wal_fsyncs) +
           " unsynced=" + std::to_string(st.durability.unsynced_windows) +
           " checkpoints=" + std::to_string(st.durability.checkpoints) +
           " windows_since_ckpt=" +
           std::to_string(st.durability.windows_since_checkpoint) +
           " recovered_seq=" + std::to_string(st.durability.recovered_seq) +
           " recovered_updates=" +
           std::to_string(st.durability.recovered_updates) +
           " truncated_bytes=" +
           std::to_string(st.durability.truncated_bytes) + "\n";
    span("wal_append", st.durability.append_ns);
    span("checkpoint", st.durability.checkpoint_ns);
  }
  if (st.degraded) {
    out += "durability DEGRADED (fail-stop, serving memory-only): " +
           st.durability_error + "\n";
  }
  if (!st.crash_points.empty()) {
    out += "crash_points:";
    for (const log::CrashPointCount& cp : st.crash_points) {
      out += " " + std::string(cp.name) + "=" + std::to_string(cp.hits);
    }
    out += "\n";
  }
  TablePrinter table({"query", "version", "windows_applied",
                      "windows_skipped", "staleness"});
  for (const QueryStats& q : st.queries) {
    table.AddRow({q.name, std::to_string(q.snapshot_version),
                  std::to_string(q.windows_applied),
                  std::to_string(q.windows_skipped),
                  std::to_string(q.staleness_windows)});
  }
  out += table.Render();
  return out;
}

std::string QueryService::StatsJson(int indent) const {
  const ServiceStats st = Stats();
  const std::string pad(static_cast<size_t>(indent), ' ');
  std::string out = "{\n";
  out += pad + "  \"pushed\": " + std::to_string(st.pushed) + ",\n";
  out += pad + "  \"applied\": " + std::to_string(st.applied) + ",\n";
  out += pad + "  \"windows\": " + std::to_string(st.windows) + ",\n";
  out += pad + "  \"queue\": {\"depth\": " + std::to_string(st.queue.depth) +
         ", \"capacity\": " + std::to_string(st.queue.capacity) +
         ", \"stalls\": " + std::to_string(st.queue.stalls) +
         ", \"stall_ns\": ";
  obs::AppendHistogramJson(st.queue.stall_ns, &out);
  out += ", \"wait_ns\": ";
  obs::AppendHistogramJson(st.queue.wait_ns, &out);
  out += ", \"window_size\": ";
  obs::AppendHistogramJson(st.queue.window_size, &out);
  out += "},\n";
  out += pad + "  \"coalesce_ns\": ";
  obs::AppendHistogramJson(st.coalesce_ns, &out);
  out += ",\n" + pad + "  \"query_apply_ns\": ";
  obs::AppendHistogramJson(st.query_apply_ns, &out);
  out += ",\n" + pad + "  \"publish_age_ns\": ";
  obs::AppendHistogramJson(st.publish_age_ns, &out);
  out += ",\n" + pad + "  \"durability\": {\"enabled\": " +
         std::string(st.durability.enabled ? "true" : "false") +
         ", \"degraded\": " + (st.degraded ? "true" : "false");
  if (st.degraded) {
    out += ", \"error\": \"" + JsonEscape(st.durability_error) + "\"";
  }
  if (st.durability.enabled) {
    out += ", \"policy\": \"" + st.durability.policy + "\"" +
           ", \"wal_records\": " + std::to_string(st.durability.wal_records) +
           ", \"wal_bytes\": " + std::to_string(st.durability.wal_bytes) +
           ", \"wal_fsyncs\": " + std::to_string(st.durability.wal_fsyncs) +
           ", \"unsynced_windows\": " +
           std::to_string(st.durability.unsynced_windows) +
           ", \"checkpoints\": " + std::to_string(st.durability.checkpoints) +
           ", \"windows_since_checkpoint\": " +
           std::to_string(st.durability.windows_since_checkpoint) +
           ", \"recovered_seq\": " +
           std::to_string(st.durability.recovered_seq) +
           ", \"recovered_updates\": " +
           std::to_string(st.durability.recovered_updates) +
           ", \"recovered_records\": " +
           std::to_string(st.durability.recovered_records) +
           ", \"truncated_bytes\": " +
           std::to_string(st.durability.truncated_bytes) +
           ", \"append_ns\": ";
    obs::AppendHistogramJson(st.durability.append_ns, &out);
    out += ", \"checkpoint_ns\": ";
    obs::AppendHistogramJson(st.durability.checkpoint_ns, &out);
  }
  out += "},\n" + pad + "  \"crash_points\": {";
  for (size_t i = 0; i < st.crash_points.size(); ++i) {
    out += std::string(i == 0 ? "" : ", ") + "\"" + st.crash_points[i].name +
           "\": " + std::to_string(st.crash_points[i].hits);
  }
  out += "},\n" + pad + "  \"queries\": [\n";
  for (size_t i = 0; i < st.queries.size(); ++i) {
    const QueryStats& q = st.queries[i];
    out += pad + "    {\"name\": \"" + q.name + "\", \"version\": " +
           std::to_string(q.snapshot_version) +
           ", \"windows_applied\": " + std::to_string(q.windows_applied) +
           ", \"windows_skipped\": " + std::to_string(q.windows_skipped) +
           ", \"staleness_windows\": " +
           std::to_string(q.staleness_windows) + "}";
    out += (i + 1 < st.queries.size()) ? ",\n" : "\n";
  }
  out += pad + "  ]\n" + pad + "}";
  return out;
}

std::string QueryService::TraceJson() const {
  return obs::TraceToChromeJson(trace_.Export(), "serve");
}

std::string QueryService::TraceBreakdownJson(int indent) const {
  std::string out;
  obs::AppendTraceBreakdownJson(obs::ComputeTraceBreakdown(trace_.Export()),
                                indent, &out);
  return out;
}

}  // namespace serve
}  // namespace ringdb
