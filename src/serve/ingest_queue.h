// Bounded MPSC ingest queue with blocking backpressure.
//
// Producer threads Push update events; the serving batcher pops windows
// of up to batch_size events at a time. The bound is the pipeline's flow
// control: when view maintenance falls behind the producers, Push blocks
// instead of growing an unbounded buffer (and instead of dropping
// events), so memory stays fixed and producers pace themselves to the
// sustainable ingest rate. Close() releases everyone — pending items
// still drain, later Push calls fail, and PopWindow returns false once
// the queue is empty.
//
// A mutex + two condvars over a deque is deliberately boring: the queue
// hands off whole windows (one lock round-trip per batch on the consumer
// side), so it is nowhere near the contention point of the pipeline —
// the per-query trigger execution is.

#ifndef RINGDB_SERVE_INGEST_QUEUE_H_
#define RINGDB_SERVE_INGEST_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "ring/database.h"

namespace ringdb {
namespace serve {

class IngestQueue {
 public:
  explicit IngestQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  // Blocks while the queue is full. Returns false iff the queue was
  // closed (the update is not enqueued).
  bool Push(ring::Update update) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(update));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Pops up to max_n events into *out (cleared first), blocking until at
  // least one event is available. Returns false iff the queue is closed
  // and fully drained.
  bool PopWindow(size_t max_n, std::vector<ring::Update>* out) {
    out->clear();
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    const size_t n = std::min(max_n, items_.size());
    out->reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    lock.unlock();
    not_full_.notify_all();
    return true;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<ring::Update> items_;
  bool closed_ = false;
};

}  // namespace serve
}  // namespace ringdb

#endif  // RINGDB_SERVE_INGEST_QUEUE_H_
