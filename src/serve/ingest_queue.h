// Bounded MPSC ingest queue with blocking backpressure.
//
// Producer threads Push update events; the serving batcher pops windows
// of up to batch_size events at a time. The bound is the pipeline's flow
// control: when view maintenance falls behind the producers, Push blocks
// instead of growing an unbounded buffer (and instead of dropping
// events), so memory stays fixed and producers pace themselves to the
// sustainable ingest rate. Close() releases everyone — pending items
// still drain, later Push calls fail, and PopWindow returns false once
// the queue is empty.
//
// A mutex + two condvars over a deque is deliberately boring: the queue
// hands off whole windows (one lock round-trip per batch on the consumer
// side), so it is nowhere near the contention point of the pipeline —
// the per-query trigger execution is.
//
// The queue is also the pipeline's first traced stage: every event
// carries its enqueue timestamp so PopWindow can record the
// enqueue→dequeue wait, Push counts backpressure stalls (and how long
// they blocked), and popped window sizes feed a histogram — all behind
// RINGDB_OBS / obs primitives, so -DRINGDB_NO_METRICS builds shed the
// cost entirely.

#ifndef RINGDB_SERVE_INGEST_QUEUE_H_
#define RINGDB_SERVE_INGEST_QUEUE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "obs/metrics.h"
#include "ring/database.h"

namespace ringdb {
namespace serve {

class IngestQueue {
 public:
  // Merged read-time view of the queue's metrics (QueryService::Stats).
  struct Stats {
    size_t depth = 0;
    size_t capacity = 0;
    uint64_t stalls = 0;                // Push calls that hit the bound
    uint64_t timeouts = 0;              // TryPushFor calls that gave up
    obs::HistogramSnapshot stall_ns;    // how long those blocked
    obs::HistogramSnapshot wait_ns;     // per-event enqueue→dequeue wait
    obs::HistogramSnapshot window_size; // events per popped window
  };

  explicit IngestQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  // Blocks while the queue is full. Returns false iff the queue was
  // closed (the update is not enqueued).
  bool Push(ring::Update update) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!closed_ && items_.size() >= capacity_) {
      // Backpressure engaged: count the stall and time the block (the
      // producers' view of "maintenance is the bottleneck").
      RINGDB_OBS(stalls_.Add());
      const uint64_t t0 = obs::NowNs();
      not_full_.wait(lock,
                     [&] { return closed_ || items_.size() < capacity_; });
      RINGDB_OBS(stall_ns_.Record(obs::NowNs() - t0));
    }
    if (closed_) return false;
    items_.push_back(Item{std::move(update), obs::NowNs()});
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  enum class PushResult { kAccepted, kTimedOut, kClosed };

  // Push with a bounded wait: blocks at most `timeout` for space, then
  // gives the update back to the caller as kTimedOut instead of hanging
  // the producer forever behind a stalled consumer. kTimedOut leaves the
  // queue unchanged — the caller decides whether to retry or shed load.
  PushResult TryPushFor(ring::Update update,
                        std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!closed_ && items_.size() >= capacity_) {
      RINGDB_OBS(stalls_.Add());
      const uint64_t t0 = obs::NowNs();
      const bool has_space = not_full_.wait_for(
          lock, timeout,
          [&] { return closed_ || items_.size() < capacity_; });
      RINGDB_OBS(stall_ns_.Record(obs::NowNs() - t0));
      if (!has_space) {
        // Not RINGDB_OBS: a timeout is a flow-control outcome the
        // caller acted on, counted in every build.
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        return PushResult::kTimedOut;
      }
    }
    if (closed_) return PushResult::kClosed;
    items_.push_back(Item{std::move(update), obs::NowNs()});
    lock.unlock();
    not_empty_.notify_one();
    return PushResult::kAccepted;
  }

  // Pops up to max_n events into *out (cleared first), blocking until at
  // least one event is available. Returns false iff the queue is closed
  // and fully drained. When `oldest_enqueue_ns` is non-null it receives
  // the enqueue timestamp of the window's oldest event (0 under
  // RINGDB_NO_METRICS) — the begin edge of the traced queue-wait stage.
  bool PopWindow(size_t max_n, std::vector<ring::Update>* out,
                 uint64_t* oldest_enqueue_ns = nullptr) {
    out->clear();
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    const size_t n = std::min(max_n, items_.size());
    if (oldest_enqueue_ns != nullptr) {
      *oldest_enqueue_ns = items_.front().enqueue_ns;
    }
    out->reserve(n);
    RINGDB_OBS(const uint64_t now = obs::NowNs();
               for (size_t i = 0; i < n; ++i)
                   wait_ns_.Record(now - items_[i].enqueue_ns));
    for (size_t i = 0; i < n; ++i) {
      out->push_back(std::move(items_.front().update));
      items_.pop_front();
    }
    lock.unlock();
    RINGDB_OBS(window_size_.Record(n));
    not_full_.notify_all();
    return true;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  size_t capacity() const { return capacity_; }

  // Concurrent-safe (one mutex acquisition for the depth; everything
  // else merges atomics).
  Stats GetStats() const {
    Stats s;
    s.depth = size();
    s.capacity = capacity_;
    s.stalls = stalls_.Value();
    s.timeouts = timeouts_.load(std::memory_order_relaxed);
    s.stall_ns = stall_ns_.Snapshot();
    s.wait_ns = wait_ns_.Snapshot();
    s.window_size = window_size_.Snapshot();
    return s;
  }

 private:
  struct Item {
    ring::Update update;
    uint64_t enqueue_ns;  // NowNs at Push (0 under RINGDB_NO_METRICS)
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Item> items_;
  bool closed_ = false;

  obs::Counter stalls_;
  std::atomic<uint64_t> timeouts_{0};
  obs::Histogram stall_ns_;
  obs::Histogram wait_ns_;
  obs::Histogram window_size_;
};

}  // namespace serve
}  // namespace ringdb

#endif  // RINGDB_SERVE_INGEST_QUEUE_H_
