// Bounded multi-producer ingest front composed of lock-free SPSC rings.
//
// Producer threads Push update events; the serving batcher pops windows
// of up to batch_size events at a time. The bound is the pipeline's flow
// control: when view maintenance falls behind the producers, Push blocks
// instead of growing an unbounded buffer (and instead of dropping
// events), so memory stays fixed and producers pace themselves to the
// sustainable ingest rate. Close() releases everyone — pending items
// still drain, later Push calls fail, and PopWindow returns false once
// the queue is empty.
//
// Structure (PR 10; the previous mutexed MPSC deque serialized every
// producer against the batcher on one lock):
//
//  - Each producer thread lazily registers one SpscRing (spsc_ring.h)
//    per queue on its first Push — one writer (the thread), one reader
//    (the batcher), so the steady-state push is a slot write plus a
//    release store, with no shared mutable state between producers.
//  - The *global* capacity bound is a credit counter: Push acquires a
//    credit (CAS on one atomic) before writing its ring, PopWindow
//    releases one credit per popped event. Each ring's own capacity is
//    the queue capacity rounded up to a power of two, so a producer
//    holding any number of credits always has ring space — TryPush
//    after a granted credit cannot fail. (The per-producer ring is
//    sized for the worst case; with the default 64Ki-event bound that
//    is a few MB per distinct producer thread.)
//  - The mutex + condvars survive only on the *edges*: a producer that
//    finds no credits sleeps on not_full_; the batcher, when every ring
//    is empty, sets consumer_sleeping_ and sleeps on not_empty_.
//    Producers elide the wake syscall with a Dekker-style seq_cst
//    fence pair (publish item, fence, read consumer_sleeping_ vs set
//    consumer_sleeping_, fence, re-scan rings): one side is guaranteed
//    to see the other, so the consumer never sleeps over a published
//    item and the producer fast path never touches the mutex.
//
// Ordering: FIFO per producer (each ring preserves its thread's push
// order; WindowingAndClose-style single-threaded use sees strict FIFO).
// Across producers the interleaving is unspecified, exactly as it
// already was when racing producers contended on the old deque's lock.
//
// The queue is also the pipeline's first traced stage: every event
// carries its enqueue timestamp so PopWindow can record the
// enqueue→dequeue wait, Push counts backpressure stalls (and how long
// they blocked), and popped window sizes feed a histogram — all behind
// RINGDB_OBS / obs primitives, so -DRINGDB_NO_METRICS builds shed the
// cost entirely.

#ifndef RINGDB_SERVE_INGEST_QUEUE_H_
#define RINGDB_SERVE_INGEST_QUEUE_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "ring/database.h"
#include "serve/spsc_ring.h"
#include "util/check.h"

namespace ringdb {
namespace serve {

class IngestQueue {
 public:
  // Merged read-time view of the queue's metrics (QueryService::Stats).
  struct Stats {
    size_t depth = 0;
    size_t capacity = 0;
    uint64_t stalls = 0;                // Push calls that hit the bound
    uint64_t timeouts = 0;              // TryPushFor calls that gave up
    obs::HistogramSnapshot stall_ns;    // how long those blocked
    obs::HistogramSnapshot wait_ns;     // per-event enqueue→dequeue wait
    obs::HistogramSnapshot window_size; // events per popped window
  };

  explicit IngestQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity),
        id_(next_queue_id_.fetch_add(1, std::memory_order_relaxed)) {}

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  ~IngestQueue() {
    // Flag this queue's rings so surviving threads' thread_local
    // registries prune the dead entries on their next slow-path lookup
    // (the registry cannot be reached from here — it lives per thread).
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& ring : rings_) {
      ring->retired.store(true, std::memory_order_release);
    }
  }

  // Blocks while the queue is full. Returns false iff the queue was
  // closed (the update is not enqueued).
  bool Push(ring::Update update) {
    if (closed_.load(std::memory_order_acquire)) return false;
    ProducerRing& ring = LocalRing();
    if (!AcquireCredit()) {
      // Backpressure engaged: count the stall and time the block (the
      // producers' view of "maintenance is the bottleneck").
      std::unique_lock<std::mutex> lock(mu_);
      RINGDB_OBS(stalls_.Add());
      const uint64_t t0 = obs::NowNs();
      bool granted = false;
      ++waiting_producers_;
      not_full_.wait(lock, [&] {
        if (closed_.load(std::memory_order_relaxed)) return true;
        granted = AcquireCredit();
        return granted;
      });
      --waiting_producers_;
      RINGDB_OBS(stall_ns_.Record(obs::NowNs() - t0));
      if (!granted) return false;  // closed while waiting
      if (closed_.load(std::memory_order_relaxed)) {
        // Closed in the same wakeup that granted the credit: give it
        // back — Close() wins, the update is not enqueued.
        ReleaseCredits(1);
        return false;
      }
    }
    Publish(ring, std::move(update));
    return true;
  }

  enum class PushResult { kAccepted, kTimedOut, kClosed };

  // Push with a bounded wait: blocks at most `timeout` for space, then
  // gives the update back to the caller as kTimedOut instead of hanging
  // the producer forever behind a stalled consumer. kTimedOut leaves the
  // queue unchanged — the caller decides whether to retry or shed load.
  PushResult TryPushFor(ring::Update update,
                        std::chrono::milliseconds timeout) {
    if (closed_.load(std::memory_order_acquire)) return PushResult::kClosed;
    ProducerRing& ring = LocalRing();
    if (!AcquireCredit()) {
      std::unique_lock<std::mutex> lock(mu_);
      RINGDB_OBS(stalls_.Add());
      const uint64_t t0 = obs::NowNs();
      bool granted = false;
      ++waiting_producers_;
      const bool woke = not_full_.wait_for(lock, timeout, [&] {
        if (closed_.load(std::memory_order_relaxed)) return true;
        granted = AcquireCredit();
        return granted;
      });
      --waiting_producers_;
      RINGDB_OBS(stall_ns_.Record(obs::NowNs() - t0));
      if (!woke) {
        // Not RINGDB_OBS: a timeout is a flow-control outcome the
        // caller acted on, counted in every build.
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        return PushResult::kTimedOut;
      }
      if (!granted) return PushResult::kClosed;
      if (closed_.load(std::memory_order_relaxed)) {
        ReleaseCredits(1);
        return PushResult::kClosed;
      }
    }
    Publish(ring, std::move(update));
    return PushResult::kAccepted;
  }

  // Pops up to max_n events into *out (cleared first), blocking until at
  // least one event is available. Returns false iff the queue is closed
  // and fully drained. When `oldest_enqueue_ns` is non-null it receives
  // the enqueue timestamp of the window's oldest event (0 under
  // RINGDB_NO_METRICS) — the begin edge of the traced queue-wait stage.
  bool PopWindow(size_t max_n, std::vector<ring::Update>* out,
                 uint64_t* oldest_enqueue_ns = nullptr) {
    out->clear();
    uint64_t oldest = 0;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (DrainLocked(max_n, out, &oldest)) break;
      if (closed_.load(std::memory_order_relaxed)) return false;
      // Every ring looked empty. Announce the sleep, fence, and scan
      // once more: a producer publishes (release-store to its ring's
      // tail), fences, then reads consumer_sleeping_ — the seq_cst
      // fences on both sides guarantee that either the producer sees
      // the flag (and notifies) or this re-scan sees the item.
      consumer_sleeping_.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (DrainLocked(max_n, out, &oldest)) {
        consumer_sleeping_.store(false, std::memory_order_relaxed);
        break;
      }
      not_empty_.wait(lock);
      consumer_sleeping_.store(false, std::memory_order_relaxed);
    }
    if (oldest_enqueue_ns != nullptr) *oldest_enqueue_ns = oldest;
    RINGDB_OBS(window_size_.Record(out->size()));
    return true;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_.store(true, std::memory_order_release);
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  // Credits in flight: items published to rings plus pushes between
  // credit grant and ring publication (momentarily counted, never
  // above capacity — the depth gauge the stats hammer asserts on).
  size_t size() const { return size_.load(std::memory_order_acquire); }
  size_t capacity() const { return capacity_; }

  // Concurrent-safe: atomics and histogram merges only.
  Stats GetStats() const {
    Stats s;
    s.depth = size();
    s.capacity = capacity_;
    s.stalls = stalls_.Value();
    s.timeouts = timeouts_.load(std::memory_order_relaxed);
    s.stall_ns = stall_ns_.Snapshot();
    s.wait_ns = wait_ns_.Snapshot();
    s.window_size = window_size_.Snapshot();
    return s;
  }

 private:
  struct Item {
    ring::Update update;
    uint64_t enqueue_ns = 0;  // NowNs at Push (0 under RINGDB_NO_METRICS)
  };

  // One producer thread's lane. `retired` flips when the owning queue
  // dies, licensing thread_local registries to drop their reference.
  struct ProducerRing {
    explicit ProducerRing(size_t capacity) : ring(capacity) {}
    SpscRing<Item> ring;
    std::atomic<bool> retired{false};
  };

  // The calling thread's ring for this queue, registering it (one mutex
  // round-trip, once per thread per queue) on first use.
  ProducerRing& LocalRing() {
    thread_local std::unordered_map<uint64_t, std::shared_ptr<ProducerRing>>
        registry;
    auto it = registry.find(id_);
    if (it != registry.end()) return *it->second;
    // Slow path: sweep rings of destroyed queues, then register.
    for (auto i = registry.begin(); i != registry.end();) {
      i = i->second->retired.load(std::memory_order_acquire)
              ? registry.erase(i)
              : std::next(i);
    }
    auto ring = std::make_shared<ProducerRing>(capacity_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      rings_.push_back(ring);
    }
    ProducerRing& ref = *ring;
    registry.emplace(id_, std::move(ring));
    return ref;
  }

  bool AcquireCredit() {
    uint64_t cur = size_.load(std::memory_order_relaxed);
    while (cur < capacity_) {
      if (size_.compare_exchange_weak(cur, cur + 1,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  void ReleaseCredits(size_t n) {
    size_.fetch_sub(n, std::memory_order_acq_rel);
  }

  // Credit already held: write the ring (cannot fail — ring capacity
  // covers the full credit bound) and wake the batcher if it sleeps.
  void Publish(ProducerRing& ring, ring::Update update) {
    RINGDB_CHECK(ring.ring.TryPush(Item{std::move(update), obs::NowNs()}));
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (consumer_sleeping_.load(std::memory_order_relaxed)) {
      // Lock-then-notify: taking (and dropping) mu_ guarantees the
      // consumer is either fully asleep in wait() or has not yet
      // re-checked under the lock — no wakeup can be lost between its
      // flag store and its wait.
      { std::lock_guard<std::mutex> lock(mu_); }
      not_empty_.notify_one();
    }
  }

  // Round-robin drain under mu_: up to max_n items across all rings,
  // rotating the start ring per window so a hot producer cannot starve
  // the others. Returns false when every ring was empty.
  bool DrainLocked(size_t max_n, std::vector<ring::Update>* out,
                   uint64_t* oldest_enqueue_ns) {
    const size_t num_rings = rings_.size();
    if (num_rings == 0) return false;
    uint64_t oldest = UINT64_MAX;
    size_t popped = 0;
    const uint64_t now = obs::NowNs();  // 0 under RINGDB_NO_METRICS
    Item item;
    for (size_t k = 0; k < num_rings && out->size() < max_n; ++k) {
      ProducerRing& ring = *rings_[(rr_next_ + k) % num_rings];
      while (out->size() < max_n && ring.ring.TryPop(&item)) {
        oldest = std::min(oldest, item.enqueue_ns);
        RINGDB_OBS(wait_ns_.Record(now - item.enqueue_ns));
        out->push_back(std::move(item.update));
        ++popped;
      }
    }
    rr_next_ = (rr_next_ + 1) % num_rings;
    if (popped == 0) return false;
    *oldest_enqueue_ns = oldest;
    ReleaseCredits(popped);
    if (waiting_producers_ > 0) not_full_.notify_all();
    return true;
  }

  static inline std::atomic<uint64_t> next_queue_id_{1};

  const size_t capacity_;
  const uint64_t id_;  // keys thread_local ring registries

  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<std::shared_ptr<ProducerRing>> rings_;  // guarded by mu_
  size_t rr_next_ = 0;            // batcher-only (under mu_)
  size_t waiting_producers_ = 0;  // guarded by mu_
  std::atomic<bool> closed_{false};  // written under mu_; read anywhere

  std::atomic<uint64_t> size_{0};  // credits in flight (global bound)
  std::atomic<bool> consumer_sleeping_{false};

  obs::Counter stalls_;
  std::atomic<uint64_t> timeouts_{0};
  obs::Histogram stall_ns_;
  obs::Histogram wait_ns_;
  obs::Histogram window_size_;
};

}  // namespace serve
}  // namespace ringdb

#endif  // RINGDB_SERVE_INGEST_QUEUE_H_
