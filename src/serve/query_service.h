// Concurrent query serving: many standing queries over one ingest
// stream, snapshot-isolated reads racing a single logical writer.
//
// The paper's point is that maintained views make query *results* cheap
// to read; QueryService is the layer that lets arbitrarily many threads
// actually read them while updates keep flowing. It hosts N registered
// queries (SQL or AGCA) over one shared catalog, each compiled to its
// own trigger program; one ingest stream fans out to all of them, with
// each window's per-relation delta GMRs coalesced exactly once
// (exec::BatchBuilder) and the same UpdateBatch fed to every query's
// engine via Engine::ApplyPrepared — cancellation and dedup work
// amortize across queries instead of repeating per query. After every
// applied window each query publishes an immutable ResultSnapshot by
// swapping its SnapshotCell (RCU-style), so readers get constant-time,
// batch-consistent point lookups, scalar reads, and scans, and never
// observe a half-applied window.
//
// Pipeline (each stage overlaps the others):
//
//   producers --Push--> IngestQueue (bounded, backpressure)
//     --> batcher thread: window coalescing, fan-out
//       --> per-query appliers (query 0 on the batcher thread, one
//           worker thread per further query; each engine may be
//           internally sharded on top) --> snapshot publication
//
//   serve::QueryService service(catalog, {.batch_size = 1024});
//   auto revenue = service.RegisterSql("revenue",
//       "SELECT o.ckey, SUM(l.price * l.qty) FROM orders o, lineitem l "
//       "WHERE o.okey = l.okey GROUP BY o.ckey");
//   service.Start();
//   // producer threads:          reader threads:
//   service.Push(update);         service.Get(*revenue, {Value(ckey)});
//   service.Stop();

#ifndef RINGDB_SERVE_QUERY_SERVICE_H_
#define RINGDB_SERVE_QUERY_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "agca/ast.h"
#include "exec/batch.h"
#include "log/crash_point.h"
#include "log/durable_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ring/database.h"
#include "runtime/engine.h"
#include "serve/ingest_queue.h"
#include "serve/snapshot.h"
#include "util/status.h"

namespace ringdb {
namespace serve {

using QueryId = size_t;

struct ServeOptions {
  // Updates coalesced per applied window; also the snapshot cadence
  // (one snapshot per query per window).
  size_t batch_size = 1024;
  // Data-parallel shards per query engine (subject to each query's
  // partition analysis; see exec/partition.h).
  size_t num_shards = 1;
  // IngestQueue bound: producers block once this many events are
  // pending (backpressure instead of unbounded buffering).
  size_t queue_capacity = 1 << 16;
  // Statement-execution backend for every registered query's engine
  // (runtime::EngineOptions::backend): kCompile dispatches trigger
  // statements into runtime-compiled native code where available,
  // falling back to the interpreter transparently. Standing queries are
  // exactly the long-lived engines the one-time compile cost amortizes
  // over.
  runtime::Backend backend = runtime::Backend::kInterpret;
  // Durability (log/durable_log.h): when `durability.dir` is non-empty,
  // Start() recovers the service's state from that directory (checkpoint
  // load + WAL replay + torn-tail truncation) and every applied window
  // is logged write-ahead. Empty dir = the memory-only default.
  log::DurabilityOptions durability;
  // Push backpressure bound: a producer blocked this long on a full
  // ingest queue gets Status kUnavailable back instead of blocking
  // further (load shedding the producer can see). 0 = block forever
  // (the pre-timeout behavior).
  uint64_t push_timeout_ms = 30000;
  // Flight-recorder depth: the last `trace_windows` applied windows keep
  // their full per-stage trace (obs/trace.h) in a lock-free ring,
  // exportable any time via TraceJson() and dumped automatically on a
  // durability fail-stop. 0 disables window tracing entirely (every
  // recorder call early-outs); under -DRINGDB_NO_METRICS it is forced
  // to 0 regardless.
  size_t trace_windows = obs::TraceRecorder::kDefaultCapacity;
  // When non-empty, Start() arms SIGUSR1 as an on-demand dump hook: the
  // batcher polls between windows and writes the Chrome-trace JSON of
  // the retained windows to this path. Empty = no signal handler is
  // installed (the default: libraries should not take signals
  // unprompted).
  std::string trace_dump_path;
};

class QueryService {
 public:
  // A service over `catalog`; all queries registered later are compiled
  // against it. No threads run until Start().
  explicit QueryService(ring::Catalog catalog, ServeOptions options = {});
  ~QueryService();  // Stop()

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Registers the standing query Sum_[group_vars](body); compiles it to
  // its trigger program on this service's catalog. Registration is only
  // allowed before Start().
  StatusOr<QueryId> Register(std::string name,
                             std::vector<Symbol> group_vars,
                             agca::ExprPtr body);
  StatusOr<QueryId> RegisterSql(std::string name, const std::string& sql);

  // Spawns the batcher and per-query worker threads; freezes
  // registration. Snapshots (version 0, empty result) are readable even
  // before Start.
  void Start();

  // Enqueues one update. Validated against the catalog here so the
  // producer gets the error synchronously (the asynchronous batcher
  // could only drop it). Blocks while the queue is full — at most
  // options.push_timeout_ms, after which the update is rejected with
  // kUnavailable (retryable: nothing was enqueued); FailedPrecondition
  // outside the running window (before Start or after Stop).
  Status Push(const ring::Update& update);

  // Blocks until every successfully pushed update has been applied to
  // every query and the corresponding snapshots published. Meaningful
  // once the caller's producers are quiescent.
  void Drain();

  // Closes the queue (later Push calls fail), drains what was accepted,
  // and joins all threads. Idempotent; snapshots stay readable forever.
  void Stop();

  // Number of registered standing queries.
  size_t num_queries() const { return queries_.size(); }
  // Name/definition metadata recorded at registration. Precondition:
  // id came from this service's Register/RegisterSql.
  const QueryInfo& query_info(QueryId id) const;
  // First ingest/apply error, if any. Stable once Drain()/Stop()
  // returned; racing appliers may not have recorded an error yet.
  Status status() const;
  // First durability error, if any (recovery or WAL append/checkpoint
  // failure). Durability is fail-stop but non-fatal: on error the
  // service records it here, stops logging, and keeps serving
  // memory-only — producers and readers see no difference.
  Status durability_status() const;
  // The window/event epoch recovery landed on at Start() (0 when
  // durability is off or the directory was empty). Snapshots published
  // before any new window advertise exactly this epoch.
  uint64_t recovered_seq() const { return recovered_seq_; }
  uint64_t recovered_updates() const { return recovered_updates_; }

  // Test hook: freeze the batcher between windows so the ingest queue
  // fills deterministically (exercises the Push timeout path).
  void TestOnlyStallBatcher(bool stalled) {
    stall_batcher_.store(stalled, std::memory_order_release);
  }
  // Test hook: inject a durability failure through the same fail-stop
  // path a real WAL/checkpoint error takes (records the error, stops
  // logging, writes the flight-recorder dump). Lets tests exercise the
  // degraded state without filesystem fault injection.
  void TestOnlyInjectDurabilityError(Status error) {
    DisableDurability(std::move(error));
  }

  // --- Read path: any thread, any time after registration -------------
  // RCU-style reads: one shared_ptr copy out of the query's publication
  // cell (a mutex held for nanoseconds; see SnapshotCell), then pure
  // probes into immutable memory. No read ever blocks ingest for longer
  // than a pointer swap; ingest never blocks a read on batch work.
  // A query's snapshot advances only with windows that touch its
  // relations (disjoint windows cannot move the result and are skipped),
  // so version() lags the global window count for single-relation
  // queries on multi-relation streams.
  // The query's latest published snapshot (immutable; hold the pointer
  // to read many values from one consistent version).
  SnapshotPtr snapshot(QueryId id) const {
    RINGDB_CHECK(id < queries_.size());
    return queries_[id]->snapshot.load();
  }
  // Point lookup in the latest snapshot, values in group_vars order.
  Numeric Get(QueryId id, const std::vector<Value>& group_values) const {
    return snapshot(id)->Get(group_values);
  }
  // Scalar result from the latest snapshot (scalar queries only).
  Numeric Scalar(QueryId id) const { return snapshot(id)->scalar(); }
  // Applied-window sequence number of the latest snapshot.
  uint64_t version(QueryId id) const { return snapshot(id)->version(); }

  // Test/maintenance access to a query's engine. Only valid while the
  // service is not running (before Start or after Stop).
  runtime::Engine& engine(QueryId id);

  // --- Observability ---------------------------------------------------
  // Everything below is safe to call from any thread at any time,
  // concurrently with ingest: reads are atomics, histogram merges, and
  // two short mutex acquisitions (queue depth, drain counters). The
  // per-query epoch fields (snapshot_version, windows_applied,
  // windows_skipped) are monotone — pollers can assert they never move
  // backwards (serve_test's stats hammer does).
  struct QueryStats {
    std::string name;
    uint64_t snapshot_version = 0;   // applied-window seq of the snapshot
    int64_t windows_applied = 0;     // relevant windows applied
    int64_t windows_skipped = 0;     // disjoint windows skipped
    int64_t staleness_windows = 0;   // global windows not yet reflected
  };
  struct ServiceStats {
    uint64_t pushed = 0;             // accepted Push calls
    uint64_t applied = 0;            // updates applied + published
    int64_t windows = 0;             // coalesce windows popped so far
    IngestQueue::Stats queue;
    obs::HistogramSnapshot coalesce_ns;     // window -> delta GMRs
    obs::HistogramSnapshot query_apply_ns;  // per query per window
    obs::HistogramSnapshot publish_age_ns;  // window pop -> snapshot swap
    log::DurabilityStats durability;        // zeros when durability is off
    // Fail-stop state: true once the first durability error was recorded
    // (the service keeps serving memory-only); durability_error is that
    // first error's message.
    bool degraded = false;
    std::string durability_error;
    // Pass counts of every RINGDB_CRASH_POINT site the durability path
    // crossed (process-wide; see log/crash_point.h).
    std::vector<log::CrashPointCount> crash_points;
    std::vector<QueryStats> queries;
  };
  ServiceStats Stats() const;
  std::string StatsText() const;
  std::string StatsJson(int indent = 0) const;

  // --- Window tracing (flight recorder) --------------------------------
  // The pipeline-wide trace ring: the batcher records queue-wait,
  // coalesce, WAL append/fsync, fan-out, and checkpoint stages per
  // window; appliers add per-query apply/publish spans and each engine's
  // shards add per-shard apply spans. Exports are safe from any thread
  // at any time (seqlock-validated copies; in-flight windows export as
  // complete=false).
  // Chrome trace-event JSON of the retained windows (chrome://tracing /
  // Perfetto-loadable).
  std::string TraceJson() const;
  // Per-stage latency breakdown (p50/p99, critical-path attribution) of
  // the retained windows as a JSON object.
  std::string TraceBreakdownJson(int indent = 0) const;
  // The retained windows themselves (tests assert span invariants on
  // these; empty when tracing is off).
  std::vector<obs::WindowTrace> TraceWindows() const {
    return trace_.Export();
  }
  const obs::TraceRecorder& trace_recorder() const { return trace_; }

 private:
  struct Query {
    std::shared_ptr<const QueryInfo> info;
    std::unique_ptr<runtime::Engine> engine;
    SnapshotCell snapshot;
    // Relations with a trigger in this query's program: a window whose
    // delta relations are disjoint cannot change the result, so its
    // apply (a no-op) and its O(result) snapshot rebuild are skipped —
    // the previous snapshot stays published, and it still equals the
    // replay of the longer prefix.
    std::unordered_set<Symbol> relevant_relations;
    // Written only by this query's applier thread; read via status()
    // after the Drain()/Stop() happens-before edge.
    Status apply_status;
    // Monotone epoch gauges (single writer: this query's applier;
    // concurrent readers via Stats()).
    obs::Gauge windows_applied;
    obs::Gauge windows_skipped;
  };

  void BatcherLoop();
  void WorkerLoop(size_t query_index);
  // Start()-time recovery: opens the durable log, loads checkpoints,
  // replays the WAL into every engine, republishes snapshots at the
  // recovered epoch. A failure records durability_status_ and leaves
  // dlog_ null (memory-only service).
  void RecoverDurability();
  // One engine slot per query, in registration order ("q0", "q1", ...).
  std::vector<log::DurableLog::EngineSlot> EngineSlots() const;
  // Records the first durability error and stops logging (fail-stop).
  // The first call also dumps the flight recorder — the last
  // trace_windows windows, including the failing in-flight one — to
  // <durability.dir>/flight.trace.json, so the window timeline leading
  // into the failure survives for post-mortem.
  void DisableDurability(Status error);
  // Writes TraceJson() to `path` (best effort; used by the flight dump
  // and the SIGUSR1 on-demand dump).
  void WriteTraceFile(const std::string& path) const;
  // Applies the window's batch to one query and publishes its snapshot.
  // `window_ns` is the window's PopWindow timestamp (publish-age span).
  void ApplyAndPublish(size_t query_index, const exec::UpdateBatch& batch,
                       uint64_t version, uint64_t updates_applied,
                       uint64_t window_ns);

  ring::Catalog catalog_;
  ServeOptions options_;
  std::vector<std::unique_ptr<Query>> queries_;
  IngestQueue queue_;
  exec::BatchBuilder builder_;  // batcher-thread-only after Start

  // Atomic so a misuse like Push racing Start() fails cleanly (the
  // FailedPrecondition path) instead of being a data race; the intended
  // protocol is still Start -> spawn producers -> Push.
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> stall_batcher_{false};  // test hook; Stop() clears it

  // Durability: dlog_ is touched by Start() (recovery, pre-thread), the
  // batcher thread (append/checkpoint), Stop() (close, post-join), and
  // Stats() readers — dlog_mu_ serializes them (appends hold it through
  // their fsync; Stats tolerates that, it is observability).
  mutable std::mutex dlog_mu_;
  std::unique_ptr<log::DurableLog> dlog_;
  Status durability_status_;  // first durability error (guarded by dlog_mu_)
  uint64_t recovered_seq_ = 0;      // set by Start() before threads spawn
  uint64_t recovered_updates_ = 0;

  std::thread batcher_;
  std::vector<std::thread> workers_;  // worker i serves query i + 1

  // Fan-out handoff (mirrors exec::ShardedExecutor's pool): the batcher
  // publishes the window's batch/version under mu_, bumps generation_,
  // and waits for pending_ to drain; workers re-read the shared fields
  // after observing the generation change under the same mutex.
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const exec::UpdateBatch* current_batch_ = nullptr;
  uint64_t current_version_ = 0;
  uint64_t current_updates_ = 0;
  uint64_t current_window_ns_ = 0;  // PopWindow timestamp of the window
  uint64_t generation_ = 0;
  size_t pending_ = 0;
  bool stop_workers_ = false;

  // Pipeline stage spans + global window epoch (batcher writes, any
  // thread reads through Stats()).
  obs::Gauge windows_;                // coalesce windows popped (monotone)
  obs::Histogram coalesce_ns_;        // window -> delta GMRs (batcher)
  obs::Histogram query_apply_ns_;     // ApplyPrepared span per query/window
  obs::Histogram publish_age_ns_;  // pop -> snapshot swap

  // Pipeline-wide flight recorder (capacity options.trace_windows; 0 =
  // off). Single writer per stage: the batcher owns the stage intervals,
  // each applier its query's spans, each shard its apply span — the
  // recorder's seqlock framing makes concurrent Export() safe.
  obs::TraceRecorder trace_;

  // Drain accounting: pushed_ counts accepted Push calls, applied_
  // counts window events whose snapshots are all published.
  mutable std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  uint64_t pushed_ = 0;
  uint64_t applied_ = 0;
};

}  // namespace serve
}  // namespace ringdb

#endif  // RINGDB_SERVE_QUERY_SERVICE_H_
