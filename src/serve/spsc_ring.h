// Bounded lock-free single-producer / single-consumer ring.
//
// The ingest pipeline's per-producer lane (see ingest_queue.h): each
// producer thread owns the write side of exactly one ring, the batcher
// owns the read side of all of them, and neither side ever takes a lock
// on the fast path. The design is the classic cached-index SPSC queue:
//
//  - capacity is rounded up to a power of two; head_ (consumer) and
//    tail_ (producer) are free-running uint64 indexes, slot = index &
//    mask, so full/empty tests are plain subtraction and wraparound
//    needs no modulo or sentinel slot.
//  - publication is acquire/release on the indexes only: the producer
//    writes the slot, then store-releases tail_; the consumer
//    load-acquires tail_ before reading the slot (and symmetrically for
//    head_ on recycle). The slot payloads themselves are plain memory —
//    the index edges carry the happens-before.
//  - each side keeps a *cached* copy of the opposite index and only
//    re-reads the shared atomic when the cached value says the ring is
//    full (producer) or empty (consumer). In steady state a push is one
//    relaxed load, one plain slot write, and one release store — no
//    shared-line ping-pong on every operation.
//
// TryPush/TryPop never block; the coordination that turns "full" into
// backpressure (credits, condvars, Close) lives in IngestQueue, which
// composes rings — this class stays a pure data structure so the TSan
// hammer in tests/spsc_ring_test.cc can pound on it in isolation.

#ifndef RINGDB_SERVE_SPSC_RING_H_
#define RINGDB_SERVE_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ringdb {
namespace serve {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t min_capacity)
      : capacity_(RoundUpPow2(min_capacity == 0 ? 1 : min_capacity)),
        mask_(capacity_ - 1),
        slots_(capacity_) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return capacity_; }

  // Producer side. Returns false when the ring is full (the value is
  // untouched — the caller keeps it).
  bool TryPush(T&& value) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= capacity_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= capacity_) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false when the ring is empty.
  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Consumer side: the oldest element without popping it, or nullptr
  // when empty. Valid until the consumer's next TryPop.
  const T* Front() {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return nullptr;
    }
    return &slots_[head & mask_];
  }

  // Approximate from any thread (exact from either endpoint when the
  // other is quiescent).
  size_t size() const {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }
  bool empty() const { return size() == 0; }

 private:
  static size_t RoundUpPow2(size_t n) {
    size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  const size_t capacity_;
  const size_t mask_;
  std::vector<T> slots_;

  // Consumer cache line: head_ is written by the consumer only;
  // cached_tail_ is the consumer's private copy of tail_.
  alignas(64) std::atomic<uint64_t> head_{0};
  uint64_t cached_tail_ = 0;

  // Producer cache line: tail_ is written by the producer only;
  // cached_head_ is the producer's private copy of head_.
  alignas(64) std::atomic<uint64_t> tail_{0};
  uint64_t cached_head_ = 0;
};

}  // namespace serve
}  // namespace ringdb

#endif  // RINGDB_SERVE_SPSC_RING_H_
