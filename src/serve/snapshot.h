// Immutable, versioned query results for concurrent serving.
//
// A ResultSnapshot freezes one query's maintained result as of a batch
// boundary: an epoch (version = number of applied ingest windows, plus
// the count of input tuple-units those windows carried) and the query's
// grouped result *composed* from per-shard immutable sub-snapshots
// (runtime::FrozenView, published by the shard that applied the window —
// see ShardedExecutor::RootSubSnapshots). Composition replaces the old
// merge-on-read barrier: building a snapshot collects one shared_ptr per
// shard plus an O(shards) ring sum of precomputed totals — no global
// scan, no quiesce beyond the batch boundary the caller already owns.
//
// Reads against the composition:
//  - scalar(): precomputed at build (sum of per-part totals).
//  - Get()/AtRootKey(): probe every part's frozen table and sum in the
//    ring — O(shards) probes, each two cache lines.
//  - ForEach()/ToGmr()/size(): need the cross-shard merge; a multi-part
//    snapshot materializes the merged dense arrays lazily, once, behind
//    a std::once_flag (keys whose shard contributions cancel to zero are
//    skipped, as the ring semantics require). Single-part snapshots
//    iterate their one part directly and never merge.
//
// serve::QueryService publishes a fresh snapshot per query after every
// applied window by swapping a shared_ptr cell (SnapshotCell below) —
// RCU-style: readers copy the pointer and the refcount keeps their
// snapshot (and its FrozenView parts) alive for as long as they hold
// it, the writer never waits for readers. Any number of threads get
// consistent point lookups, scalar reads, and full scans while
// ingestion keeps running; no reader ever observes a half-applied
// batch.

#ifndef RINGDB_SERVE_SNAPSHOT_H_
#define RINGDB_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ring/gmr.h"
#include "runtime/frozen_view.h"
#include "runtime/view_table.h"
#include "util/numeric.h"
#include "util/symbol.h"
#include "util/value.h"

namespace ringdb {

namespace runtime {
class Engine;
}  // namespace runtime

namespace serve {

// Immutable per-query metadata, shared by every snapshot of the query
// (one allocation at registration, not one per publication).
struct QueryInfo {
  std::string name;
  // Requested grouping order (empty for scalar queries).
  std::vector<Symbol> group_vars;
  // group i -> root-view key position (root keys are stored in the
  // compiler's canonical order; see runtime::Engine::root_key_order).
  std::vector<size_t> key_order;
};

class ResultSnapshot {
 public:
  // Composes `engine`'s current per-shard sub-snapshots. Must not race
  // an apply on the same engine; QueryService builds snapshots on the
  // thread that just applied the batch (shards already froze their
  // parts at window end, so composition is pointer collection).
  static std::shared_ptr<const ResultSnapshot> Build(
      std::shared_ptr<const QueryInfo> info, const runtime::Engine& engine,
      uint64_t version, uint64_t updates_applied);

  // Applied-window sequence number; strictly increases across the
  // snapshots of one query (0 = the empty pre-ingest snapshot).
  uint64_t version() const { return version_; }
  // Input tuple-units covered: this snapshot equals a replay of exactly
  // the first updates_applied() events of the ingest stream.
  uint64_t updates_applied() const { return updates_applied_; }

  const QueryInfo& info() const { return *info_; }
  size_t arity() const { return arity_; }
  bool scalar_query() const { return arity_ == 0; }
  // Number of groups in the result (multi-part: forces the merge).
  size_t size() const {
    if (parts_.size() == 1) return parts_[0]->size();
    EnsureMerged();
    return merged_values_.size();
  }

  // Number of per-shard parts composed into this snapshot.
  size_t num_parts() const { return parts_.size(); }

  // Scalar fast path: the root value for scalar queries; the Sum(.)
  // collapse (total over all groups) otherwise. Precomputed from the
  // per-part totals.
  Numeric scalar() const { return scalar_; }

  // Point lookup, values given in group_vars order; 0 outside the
  // result (the gmr default).
  Numeric Get(const std::vector<Value>& group_values) const;

  // Raw probe with the key already in root-view key order: ring sum of
  // every part's probe.
  Numeric AtRootKey(const Value* key, size_t n) const;

  // Full scan: fn(KeyView, Numeric) per group, keys in root order
  // (permute through info().key_order for group_vars order). One group
  // key appears exactly once; zero-sum groups are skipped on the merged
  // multi-part path (single-part scans mirror the part's own iteration,
  // zero entries of keep_zeros views included).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (parts_.size() == 1) {
      parts_[0]->ForEach(fn);
      return;
    }
    EnsureMerged();
    for (size_t i = 0; i < merged_values_.size(); ++i) {
      fn(runtime::KeyView(merged_keys_.data() + i * arity_, arity_),
         merged_values_[i]);
    }
  }

  // The result as a gmr over the group variables (equivalence checks).
  ring::Gmr ToGmr() const;

 private:
  ResultSnapshot() = default;
  // Builds the cross-shard merged dense arrays (multi-part scans); safe
  // to race from any number of readers via the once flag.
  void EnsureMerged() const;

  std::shared_ptr<const QueryInfo> info_;
  uint64_t version_ = 0;
  uint64_t updates_applied_ = 0;
  size_t arity_ = 0;
  Numeric scalar_ = kZero;
  std::vector<runtime::FrozenViewPtr> parts_;  // one per shard
  // Lazily merged scan arrays (multi-part only), built under
  // merged_once_: logically const, hence mutable.
  mutable std::once_flag merged_once_;
  mutable std::vector<Value> merged_keys_;  // arity_-strided, root order
  mutable std::vector<Numeric> merged_values_;
};

using SnapshotPtr = std::shared_ptr<const ResultSnapshot>;

// The published-snapshot cell: an atomically swappable SnapshotPtr.
// std::atomic<shared_ptr> would be the textbook tool, but libstdc++'s
// lock-free _Sp_atomic is not TSan-annotated in GCC 12 and the
// debug-tsan CI job gates this subsystem, so the cell uses a plain
// mutex held only for the pointer copy: constant-time on both sides
// (the writer swaps one pointer per applied window, readers copy one
// pointer and then probe immutable memory lock-free), and the refcount
// retires an old snapshot when its last reader drops it.
class SnapshotCell {
 public:
  SnapshotCell() = default;
  SnapshotCell(const SnapshotCell&) = delete;
  SnapshotCell& operator=(const SnapshotCell&) = delete;

  SnapshotPtr load() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ptr_;
  }

  void store(SnapshotPtr next) {
    SnapshotPtr old;
    {
      std::lock_guard<std::mutex> lock(mu_);
      old = std::move(ptr_);
      ptr_ = std::move(next);
    }
    // `old` (and possibly the whole retired snapshot) dies here, outside
    // the lock, so publication never holds the cell over a deallocation.
  }

 private:
  mutable std::mutex mu_;
  SnapshotPtr ptr_;
};

}  // namespace serve
}  // namespace ringdb

#endif  // RINGDB_SERVE_SNAPSHOT_H_
