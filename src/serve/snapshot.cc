#include "serve/snapshot.h"

#include <unordered_map>

#include "log/crash_point.h"
#include "ring/tuple.h"
#include "runtime/engine.h"
#include "util/check.h"

namespace ringdb {
namespace serve {

namespace {

// Group keys up to this arity are permuted on the stack in Get (larger
// arities fall back to a heap key; grouping columns are few in practice).
constexpr size_t kInlineArity = 4;

}  // namespace

std::shared_ptr<const ResultSnapshot> ResultSnapshot::Build(
    std::shared_ptr<const QueryInfo> info, const runtime::Engine& engine,
    uint64_t version, uint64_t updates_applied) {
  auto snap = std::shared_ptr<ResultSnapshot>(new ResultSnapshot());
  snap->info_ = std::move(info);
  snap->version_ = version;
  snap->updates_applied_ = updates_applied;
  snap->arity_ = snap->info_->group_vars.size();
  // Collect the per-shard FrozenViews. In the serving steady state each
  // shard froze its part when it finished its window (under the shard
  // token), so this is pointer collection plus an O(shards) ring sum of
  // precomputed totals; stale shards (recovery, publication gaps) are
  // frozen here on the calling thread.
  snap->parts_ = engine.sharded().RootSubSnapshots();
  RINGDB_CRASH_POINT("snapshot_compose");
  Numeric total = kZero;
  for (const runtime::FrozenViewPtr& part : snap->parts_) {
    total += part->total();
  }
  snap->scalar_ = total;
  return snap;
}

void ResultSnapshot::EnsureMerged() const {
  std::call_once(merged_once_, [this] {
    std::unordered_map<runtime::Key, Numeric, runtime::KeyHash> merge;
    size_t estimate = 0;
    for (const runtime::FrozenViewPtr& part : parts_) {
      estimate += part->size();
    }
    merge.reserve(estimate);
    for (const runtime::FrozenViewPtr& part : parts_) {
      part->ForEach([&](runtime::KeyView key, Numeric m) {
        auto [it, inserted] = merge.try_emplace(key.ToKey(), m);
        if (!inserted) it->second += m;
      });
    }
    merged_keys_.reserve(merge.size() * arity_);
    merged_values_.reserve(merge.size());
    for (const auto& [key, m] : merge) {
      if (m.IsZero()) continue;  // shard contributions cancelled
      for (const Value& v : key) merged_keys_.push_back(v);
      merged_values_.push_back(m);
    }
  });
}

Numeric ResultSnapshot::AtRootKey(const Value* key, size_t n) const {
  RINGDB_CHECK_EQ(n, arity_);
  Numeric sum = kZero;
  for (const runtime::FrozenViewPtr& part : parts_) {
    sum += part->At(key, n);
  }
  return sum;
}

Numeric ResultSnapshot::Get(const std::vector<Value>& group_values) const {
  RINGDB_CHECK_EQ(group_values.size(), arity_);
  if (arity_ == 0) return scalar_;
  const std::vector<size_t>& order = info_->key_order;
  if (arity_ <= kInlineArity) {
    Value key[kInlineArity];
    for (size_t i = 0; i < arity_; ++i) key[order[i]] = group_values[i];
    return AtRootKey(key, arity_);
  }
  runtime::Key key(arity_);
  for (size_t i = 0; i < arity_; ++i) key[order[i]] = group_values[i];
  return AtRootKey(key.data(), arity_);
}

ring::Gmr ResultSnapshot::ToGmr() const {
  ring::Gmr out;
  const std::vector<Symbol>& group_vars = info_->group_vars;
  const std::vector<size_t>& order = info_->key_order;
  out.Reserve(size());
  ForEach([&](runtime::KeyView key, Numeric m) {
    std::vector<ring::Tuple::Field> fields;
    fields.reserve(group_vars.size());
    for (size_t i = 0; i < group_vars.size(); ++i) {
      fields.emplace_back(group_vars[i], key[order[i]]);
    }
    out.Add(ring::Tuple::FromFields(std::move(fields)), m);
  });
  return out;
}

}  // namespace serve
}  // namespace ringdb
