#include "serve/snapshot.h"

#include "ring/tuple.h"
#include "runtime/engine.h"
#include "util/check.h"

namespace ringdb {
namespace serve {

namespace {

constexpr uint32_t kEmptySlot = UINT32_MAX;

// Group keys up to this arity are permuted on the stack in Get (larger
// arities fall back to a heap key; grouping columns are few in practice).
constexpr size_t kInlineArity = 4;

}  // namespace

std::shared_ptr<const ResultSnapshot> ResultSnapshot::Build(
    std::shared_ptr<const QueryInfo> info, const runtime::Engine& engine,
    uint64_t version, uint64_t updates_applied) {
  auto snap = std::shared_ptr<ResultSnapshot>(new ResultSnapshot());
  snap->info_ = std::move(info);
  snap->version_ = version;
  snap->updates_applied_ = updates_applied;
  snap->arity_ = snap->info_->group_vars.size();
  // Upper bound on the merged cardinality: sum of per-shard root sizes
  // (exact for one shard), so the dense arrays fill without growing.
  size_t estimate = 0;
  for (size_t i = 0; i < engine.num_shards(); ++i) {
    estimate += engine.sharded().shard(i).root().size();
  }
  snap->keys_.reserve(estimate * snap->arity_);
  snap->values_.reserve(estimate);
  Numeric total = kZero;
  engine.sharded().ForEachRootMerged([&](runtime::KeyView key, Numeric m) {
    for (size_t i = 0; i < key.size(); ++i) snap->keys_.push_back(key[i]);
    snap->values_.push_back(m);
    total += m;
  });
  snap->scalar_ = total;
  snap->BuildSlots();
  return snap;
}

void ResultSnapshot::BuildSlots() {
  size_t want = 16;
  while (want < values_.size() * 2) want <<= 1;
  slots_.assign(want, kEmptySlot);
  slot_mask_ = want - 1;
  for (size_t id = 0; id < values_.size(); ++id) {
    const uint64_t h =
        runtime::HashValues(keys_.data() + id * arity_, arity_);
    size_t slot = h & slot_mask_;
    while (slots_[slot] != kEmptySlot) slot = (slot + 1) & slot_mask_;
    slots_[slot] = static_cast<uint32_t>(id);
  }
}

Numeric ResultSnapshot::AtRootKey(const Value* key, size_t n) const {
  RINGDB_CHECK_EQ(n, arity_);
  if (values_.empty()) return kZero;
  size_t slot = runtime::HashValues(key, n) & slot_mask_;
  while (slots_[slot] != kEmptySlot) {
    const uint32_t id = slots_[slot];
    const Value* entry_key = keys_.data() + static_cast<size_t>(id) * arity_;
    bool match = true;
    for (size_t i = 0; i < n && match; ++i) match = entry_key[i] == key[i];
    if (match) return values_[id];
    slot = (slot + 1) & slot_mask_;
  }
  return kZero;
}

Numeric ResultSnapshot::Get(const std::vector<Value>& group_values) const {
  RINGDB_CHECK_EQ(group_values.size(), arity_);
  if (arity_ == 0) return scalar_;
  const std::vector<size_t>& order = info_->key_order;
  if (arity_ <= kInlineArity) {
    Value key[kInlineArity];
    for (size_t i = 0; i < arity_; ++i) key[order[i]] = group_values[i];
    return AtRootKey(key, arity_);
  }
  runtime::Key key(arity_);
  for (size_t i = 0; i < arity_; ++i) key[order[i]] = group_values[i];
  return AtRootKey(key.data(), arity_);
}

ring::Gmr ResultSnapshot::ToGmr() const {
  ring::Gmr out;
  const std::vector<Symbol>& group_vars = info_->group_vars;
  const std::vector<size_t>& order = info_->key_order;
  out.Reserve(values_.size());
  ForEach([&](runtime::KeyView key, Numeric m) {
    std::vector<ring::Tuple::Field> fields;
    fields.reserve(group_vars.size());
    for (size_t i = 0; i < group_vars.size(); ++i) {
      fields.emplace_back(group_vars[i], key[order[i]]);
    }
    out.Add(ring::Tuple::FromFields(std::move(fields)), m);
  });
  return out;
}

}  // namespace serve
}  // namespace ringdb
