#include "exec/partition.h"

#include <set>
#include <sstream>

#include "agca/polynomial.h"
#include "util/check.h"

namespace ringdb {
namespace exec {

namespace {

using agca::Expr;
using agca::ExprPtr;
using agca::Monomial;

// Union-find over variable symbols (equivalence under shared names and
// explicit kEq comparisons).
class VarClasses {
 public:
  Symbol Find(Symbol v) {
    auto it = parent_.find(v);
    if (it == parent_.end()) {
      parent_.emplace(v, v);
      return v;
    }
    if (it->second == v) return v;
    Symbol root = Find(it->second);
    parent_[v] = root;
    return root;
  }

  void Union(Symbol a, Symbol b) {
    Symbol ra = Find(a);
    Symbol rb = Find(b);
    if (!(ra == rb)) parent_[ra] = rb;
  }

 private:
  std::unordered_map<Symbol, Symbol> parent_;
};

struct RelAtom {
  Symbol relation;
  const std::vector<agca::Term>* args;
};

// One way a monomial satisfies the co-partitioning condition: for every
// relation it mentions, the set of columns that carry the witnessing
// equivalence class in *all* of that relation's atoms.
using CandidateMap = std::unordered_map<Symbol, std::vector<size_t>>;

// Collects the monomial's relation atoms; fails (returns false) when a
// relation occurs inside a nested aggregate factor, which this analysis
// does not see through.
bool CollectAtoms(const Monomial& m, std::vector<RelAtom>* atoms,
                  VarClasses* classes) {
  for (const ExprPtr& f : m.factors) {
    switch (f->kind()) {
      case Expr::Kind::kRelation:
        atoms->push_back(RelAtom{f->relation(), &f->args()});
        break;
      case Expr::Kind::kCmp:
        if (f->cmp_op() == agca::CmpOp::kEq &&
            f->lhs()->kind() == Expr::Kind::kVar &&
            f->rhs()->kind() == Expr::Kind::kVar) {
          classes->Union(f->lhs()->var(), f->rhs()->var());
        }
        if (!agca::DatabaseFree(*f)) return false;
        break;
      default:
        if (!agca::DatabaseFree(*f)) return false;  // nested Sum over a
                                                    // relation: bail out
        break;
    }
  }
  return true;
}

// All candidate maps of one monomial, one per equivalence class that
// covers every relation atom.
std::vector<CandidateMap> CandidatesFor(const std::vector<RelAtom>& atoms,
                                        VarClasses* classes) {
  // Distinct classes among variables used as atom arguments.
  std::vector<Symbol> roots;
  std::set<Symbol> seen;
  for (const RelAtom& a : atoms) {
    for (const agca::Term& t : *a.args) {
      if (!agca::IsVar(t)) continue;
      Symbol r = classes->Find(agca::TermVar(t));
      if (seen.insert(r).second) roots.push_back(r);
    }
  }
  std::vector<CandidateMap> out;
  for (Symbol root : roots) {
    CandidateMap candidate;
    bool covers = true;
    for (const RelAtom& a : atoms) {
      if (!covers) break;
      if (candidate.contains(a.relation)) continue;
      // Columns carrying class `root` in every atom of this relation.
      std::vector<size_t> columns;
      for (size_t p = 0; p < a.args->size(); ++p) {
        bool in_all = true;
        for (const RelAtom& b : atoms) {
          if (!(b.relation == a.relation)) continue;
          const agca::Term& t = (*b.args)[p];
          if (!agca::IsVar(t) ||
              !(classes->Find(agca::TermVar(t)) == root)) {
            in_all = false;
            break;
          }
        }
        if (in_all) columns.push_back(p);
      }
      if (columns.empty()) {
        covers = false;
      } else {
        candidate.emplace(a.relation, std::move(columns));
      }
    }
    if (covers) out.push_back(std::move(candidate));
  }
  return out;
}

// Backtracking search for one routing column per relation consistent with
// at least one candidate of every monomial. Problem sizes are tiny (a few
// monomials, arities <= a handful), so exhaustive search is fine.
bool Solve(const std::vector<std::vector<CandidateMap>>& per_monomial,
           size_t idx, std::unordered_map<Symbol, size_t>* assignment) {
  if (idx == per_monomial.size()) return true;
  for (const CandidateMap& candidate : per_monomial[idx]) {
    // Relations already pinned must be compatible with this candidate.
    std::vector<Symbol> free_rels;
    bool compatible = true;
    for (const auto& [rel, columns] : candidate) {
      auto it = assignment->find(rel);
      if (it == assignment->end()) {
        free_rels.push_back(rel);
      } else if (std::find(columns.begin(), columns.end(), it->second) ==
                 columns.end()) {
        compatible = false;
        break;
      }
    }
    if (!compatible) continue;
    // Enumerate column choices for the relations this candidate newly
    // pins (cross product; tiny).
    std::vector<size_t> choice(free_rels.size(), 0);
    while (true) {
      for (size_t i = 0; i < free_rels.size(); ++i) {
        (*assignment)[free_rels[i]] =
            candidate.at(free_rels[i])[choice[i]];
      }
      if (Solve(per_monomial, idx + 1, assignment)) return true;
      size_t i = 0;
      for (; i < free_rels.size(); ++i) {
        if (++choice[i] < candidate.at(free_rels[i]).size()) break;
        choice[i] = 0;
      }
      if (i == free_rels.size()) break;
    }
    for (Symbol rel : free_rels) assignment->erase(rel);
  }
  return false;
}

}  // namespace

PartitionScheme DerivePartitionScheme(const ring::Catalog& catalog,
                                      const std::vector<Symbol>& group_vars,
                                      const agca::ExprPtr& body) {
  (void)group_vars;  // the merge is a ring sum, valid for any grouping
  PartitionScheme scheme;
  if (body == nullptr) return scheme;
  std::vector<Monomial> monomials = agca::Expand(body);
  std::vector<std::vector<CandidateMap>> per_monomial;
  for (const Monomial& m : monomials) {
    VarClasses classes;
    std::vector<RelAtom> atoms;
    if (!CollectAtoms(m, &atoms, &classes)) return scheme;
    if (atoms.empty()) continue;  // database-free monomial: unaffected
    std::vector<CandidateMap> candidates = CandidatesFor(atoms, &classes);
    if (candidates.empty()) return scheme;
    per_monomial.push_back(std::move(candidates));
  }
  std::unordered_map<Symbol, size_t> assignment;
  if (!Solve(per_monomial, 0, &assignment)) return scheme;
  for (const auto& [rel, column] : assignment) {
    RINGDB_CHECK(catalog.Has(rel));
    RINGDB_CHECK_LT(column, catalog.Arity(rel));
  }
  scheme.valid = true;
  scheme.route_column = std::move(assignment);
  return scheme;
}

std::string PartitionScheme::ToString() const {
  if (!valid) return "<unpartitionable>";
  std::ostringstream out;
  bool first = true;
  for (const auto& [rel, column] : route_column) {
    if (!first) out << ", ";
    first = false;
    out << rel.str() << "[" << column << "]";
  }
  return out.str();
}

}  // namespace exec
}  // namespace ringdb
