#include "exec/sharded_executor.h"

#include <algorithm>

#include "compiler/lower.h"
#include "util/check.h"

namespace ringdb {
namespace exec {

ShardedExecutor::ShardedExecutor(const compiler::TriggerProgram& program,
                                 PartitionScheme scheme, size_t num_shards,
                                 runtime::Backend backend)
    : scheme_(std::move(scheme)) {
  size_t effective = num_shards;
  if (effective == 0) effective = 1;
  if (!scheme_.valid) effective = 1;
  // Lower to bytecode once; every shard's executor shares the programs.
  // Only materialize an augmented copy when the caller's program has not
  // been lowered yet.
  const compiler::TriggerProgram* prog = &program;
  compiler::TriggerProgram augmented;
  if (program.lowered == nullptr) {
    augmented = program;
    augmented.lowered = compiler::lower::Lower(augmented);
    prog = &augmented;
  }
  // The native module (one emit + compile + dlopen) is shared by every
  // shard, like the lowered program; failure to build one is not an
  // error, it selects the interpreter (graceful fallback for hosts
  // without a C compiler and for all-lazy programs).
  std::shared_ptr<const runtime::NativeModule> module;
  if (backend == runtime::Backend::kCompile) {
    auto built = runtime::NativeModule::Build(*prog);
    if (built.ok()) {
      module = *std::move(built);
      native_enabled_ = true;
    } else {
      native_status_ = built.status();
    }
  }
  shards_.reserve(effective);
  for (size_t i = 0; i < effective; ++i) {
    if (module != nullptr) {
      shards_.push_back(
          std::make_unique<runtime::CompiledExecutor>(*prog, module));
    } else {
      shards_.push_back(std::make_unique<runtime::Executor>(*prog));
    }
  }
  shard_work_.resize(effective);
  shard_work_used_.assign(effective, 0);
  route_scratch_.resize(effective);
  shard_status_.assign(effective, Status::Ok());
  // Shard 0 always runs on the calling thread; workers serve shards 1..N.
  for (size_t i = 1; i < effective; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ShardedExecutor::~ShardedExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ShardedExecutor::RunShard(size_t shard_idx) {
  const uint64_t t0 = obs::NowNs();
  runtime::Executor& exec = *shards_[shard_idx];
  Status status = Status::Ok();
  // Each slice is one relation's (sub-)delta in columnar form and goes
  // through the statement-major columnar path; whole-delta slices pass
  // the columns straight down with no row list at all.
  const size_t used = shard_work_used_[shard_idx];
  for (size_t i = 0; i < used && status.ok(); ++i) {
    const ShardSlice& slice = shard_work_[shard_idx][i];
    status = slice.all ? exec.ApplyDeltaColumns(*slice.delta)
                       : exec.ApplyDeltaColumns(*slice.delta,
                                                slice.rows.data(),
                                                slice.rows.size());
  }
  shard_status_[shard_idx] = std::move(status);
#ifndef RINGDB_NO_METRICS
  const uint64_t t1 = obs::NowNs();
  apply_ns_.Record(t1 - t0);
  if (trace_ctx_.recorder != nullptr && trace_ctx_.seq != 0) {
    trace_ctx_.recorder->AddSpan(
        trace_ctx_.seq, obs::kSpanShardApply, trace_ctx_.query,
        static_cast<uint32_t>(shard_idx), exec.window_dispatch_mode(), t0,
        t1);
  }
#endif
}

void ShardedExecutor::WorkerLoop(size_t shard_idx) {
  uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
    }
    RunShard(shard_idx);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
    }
    done_cv_.notify_one();
  }
}

Status ShardedExecutor::ApplyBatch(const UpdateBatch& batch) {
  if (batch.empty()) return Status::Ok();
  const size_t n = shards_.size();
  std::fill(shard_work_used_.begin(), shard_work_used_.end(), size_t{0});
  if (n == 1) {
    // Single shard: hand every delta over whole — no routing, no row
    // lists, the columns flow through untouched.
    for (const RelationDelta& delta : batch.deltas()) {
      ShardSlice& slice = NextSlice(0);
      slice.delta = &delta;
      slice.all = true;
    }
  } else {
    for (const RelationDelta& delta : batch.deltas()) {
      // The routing column is per relation; resolve it once and hash only
      // that column's values. Unroutable relations (absent from the
      // scheme, or a malformed routing column) go whole to shard 0,
      // matching PartitionScheme::ShardOf row semantics.
      auto route = scheme_.route_column.find(delta.relation);
      if (route == scheme_.route_column.end() ||
          route->second >= delta.arity()) {
        ShardSlice& slice = NextSlice(0);
        slice.delta = &delta;
        slice.all = true;
        continue;
      }
      const std::vector<Value>& col = delta.columns[route->second];
      std::fill(route_scratch_.begin(), route_scratch_.end(), nullptr);
      for (uint32_t r = 0; r < delta.size(); ++r) {
        const size_t s = col[r].Hash() % n;
        if (route_scratch_[s] == nullptr) {
          route_scratch_[s] = &NextSlice(s);
          route_scratch_[s]->delta = &delta;
        }
        route_scratch_[s]->rows.push_back(r);
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    size_t rows = 0;
    for (size_t k = 0; k < shard_work_used_[i]; ++k) {
      const ShardSlice& slice = shard_work_[i][k];
      rows += slice.all ? slice.delta->size() : slice.rows.size();
    }
    if (rows != 0) shards_[i]->ReserveForBatch(rows);
  }
  if (n == 1) {
    RunShard(0);
    return shard_status_[0];
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_ = n - 1;
    ++generation_;
  }
  work_cv_.notify_all();
  RunShard(0);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
  }
  for (const Status& s : shard_status_) {
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

runtime::Executor::Stats ShardedExecutor::AggregateStats() const {
  runtime::Executor::Stats total;
  for (const auto& shard : shards_) {
    const runtime::Executor::Stats& s = shard->stats();
    total.updates += s.updates;
    total.statements_run += s.statements_run;
    total.entries_touched += s.entries_touched;
    total.arithmetic_ops += s.arithmetic_ops;
    total.init_evaluations += s.init_evaluations;
    total.delta_entries += s.delta_entries;
    total.scaled_firings += s.scaled_firings;
  }
  return total;
}

std::vector<runtime::Executor::StmtCounters>
ShardedExecutor::AggregateStmtCounters() const {
  std::vector<runtime::Executor::StmtCounters> total(
      shards_[0]->stmt_counters().size());
  for (const auto& shard : shards_) {
    const auto& per = shard->stmt_counters();
    for (size_t i = 0; i < per.size() && i < total.size(); ++i) {
      total[i].invocations += per[i].invocations;
      total[i].loop_iterations += per[i].loop_iterations;
      total[i].probes += per[i].probes;
      total[i].emissions += per[i].emissions;
      total[i].native_calls += per[i].native_calls;
      total[i].interp_calls += per[i].interp_calls;
      total[i].window_ns += per[i].window_ns;
    }
  }
  return total;
}

void ShardedExecutor::ResetStats() {
  for (const auto& shard : shards_) shard->ResetStats();
}

size_t ShardedExecutor::ApproxBytes() const {
  size_t bytes = 0;
  for (const auto& shard : shards_) bytes += shard->ApproxBytes();
  // Routing scratch: pooled slices and their row-id buffers.
  for (const std::vector<ShardSlice>& pool : shard_work_) {
    bytes += pool.capacity() * sizeof(ShardSlice);
    for (const ShardSlice& slice : pool) {
      bytes += slice.rows.capacity() * sizeof(uint32_t);
    }
  }
  return bytes;
}

}  // namespace exec
}  // namespace ringdb
