#include "exec/sharded_executor.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "compiler/lower.h"
#include "log/crash_point.h"
#include "util/check.h"

namespace ringdb {
namespace exec {

namespace {

StealMode StealModeFromEnv() {
  const char* env = std::getenv("RINGDB_STEAL");
  if (env == nullptr) return StealMode::kAuto;
  if (std::strcmp(env, "disabled") == 0) return StealMode::kDisabled;
  if (std::strcmp(env, "forced") == 0) return StealMode::kForced;
  return StealMode::kAuto;
}

}  // namespace

ShardedExecutor::ShardedExecutor(const compiler::TriggerProgram& program,
                                 PartitionScheme scheme, size_t num_shards,
                                 runtime::Backend backend)
    : scheme_(std::move(scheme)), steal_mode_(StealModeFromEnv()) {
  size_t effective = num_shards;
  if (effective == 0) effective = 1;
  if (!scheme_.valid) effective = 1;
  // Lower to bytecode once; every shard's executor shares the programs.
  // Only materialize an augmented copy when the caller's program has not
  // been lowered yet.
  const compiler::TriggerProgram* prog = &program;
  compiler::TriggerProgram augmented;
  if (program.lowered == nullptr) {
    augmented = program;
    augmented.lowered = compiler::lower::Lower(augmented);
    prog = &augmented;
  }
  // The native module (one emit + compile + dlopen) is shared by every
  // shard, like the lowered program; failure to build one is not an
  // error, it selects the interpreter (graceful fallback for hosts
  // without a C compiler and for all-lazy programs).
  std::shared_ptr<const runtime::NativeModule> module;
  if (backend == runtime::Backend::kCompile) {
    auto built = runtime::NativeModule::Build(*prog);
    if (built.ok()) {
      module = *std::move(built);
      native_enabled_ = true;
    } else {
      native_status_ = built.status();
    }
  }
  shards_.reserve(effective);
  for (size_t i = 0; i < effective; ++i) {
    if (module != nullptr) {
      shards_.push_back(
          std::make_unique<runtime::CompiledExecutor>(*prog, module));
    } else {
      shards_.push_back(std::make_unique<runtime::Executor>(*prog));
    }
  }
  shard_work_.resize(effective);
  shard_work_used_.assign(effective, 0);
  route_scratch_.resize(effective);
  subs_.resize(effective);
  sub_epoch_.assign(effective, 0);  // 0 < mutation_epoch_: stale until frozen
  runs_.reserve(effective);
  for (size_t i = 0; i < effective; ++i) {
    runs_.push_back(std::make_unique<ShardRun>());
  }
  // Shard 0 always runs on the calling thread; workers serve shards 1..N.
  for (size_t i = 1; i < effective; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ShardedExecutor::~ShardedExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ShardedExecutor::FreezeShard(size_t s) const {
  RINGDB_CRASH_POINT("shard_publish");
  subs_[s] = runtime::FrozenView::Freeze(shards_[s]->root());
  sub_epoch_[s] = mutation_epoch_;
}

std::vector<runtime::FrozenViewPtr> ShardedExecutor::RootSubSnapshots()
    const {
  std::vector<runtime::FrozenViewPtr> parts(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (subs_[s] == nullptr || sub_epoch_[s] != mutation_epoch_) {
      // Stale (publication off for some windows, single-tuple applies,
      // or the first composition after recovery replay): freeze now and
      // seed the shard's epoch so subsequent windows carry it forward.
      FreezeShard(s);
    }
    parts[s] = subs_[s];
  }
  return parts;
}

void ShardedExecutor::RunShardWhole(size_t shard_idx) {
  const uint64_t t0 = obs::NowNs();
  runtime::Executor& exec = *shards_[shard_idx];
  Status status = Status::Ok();
  // Each slice is one relation's (sub-)delta in columnar form and goes
  // through the statement-major columnar path; whole-delta slices pass
  // the columns straight down with no row list at all.
  const size_t used = shard_work_used_[shard_idx];
  for (size_t i = 0; i < used && status.ok(); ++i) {
    const ShardSlice& slice = shard_work_[shard_idx][i];
    status = slice.all ? exec.ApplyDeltaColumns(*slice.delta)
                       : exec.ApplyDeltaColumns(*slice.delta,
                                                slice.rows.data(),
                                                slice.rows.size());
  }
  shard0_status_ = std::move(status);
#ifndef RINGDB_NO_METRICS
  const uint64_t t1 = obs::NowNs();
  apply_ns_.Record(t1 - t0);
  if (trace_ctx_.recorder != nullptr && trace_ctx_.seq != 0) {
    trace_ctx_.recorder->AddSpan(
        trace_ctx_.seq, obs::kSpanShardApply, trace_ctx_.query,
        static_cast<uint32_t>(shard_idx), exec.window_dispatch_mode(), t0,
        t1);
  }
#endif
}

Status ShardedExecutor::RunMorsel(size_t s, const Morsel& morsel) {
  runtime::Executor& exec = *shards_[s];
  const ShardSlice& slice = shard_work_[s][morsel.slice];
  if (slice.all) return exec.ApplyDeltaColumns(*slice.delta);
  return exec.ApplyDeltaColumns(*slice.delta,
                                slice.rows.data() + morsel.begin,
                                morsel.end - morsel.begin);
}

void ShardedExecutor::FinishShard(size_t s, ShardRun& run) {
#ifndef RINGDB_NO_METRICS
  const uint64_t t1 = obs::NowNs();
  apply_ns_.Record(t1 - run.begin_ns);
  if (trace_ctx_.recorder != nullptr && trace_ctx_.seq != 0) {
    trace_ctx_.recorder->AddSpan(
        trace_ctx_.seq, obs::kSpanShardApply, trace_ctx_.query,
        static_cast<uint32_t>(s), shards_[s]->window_dispatch_mode(),
        run.begin_ns, t1);
  }
#endif
  if (publish_enabled_ && run.status.ok()) {
    const uint64_t p0 = obs::NowNs();
    FreezeShard(s);
#ifndef RINGDB_NO_METRICS
    if (trace_ctx_.recorder != nullptr && trace_ctx_.seq != 0) {
      trace_ctx_.recorder->AddSpan(
          trace_ctx_.seq, obs::kSpanShardPublish, trace_ctx_.query,
          static_cast<uint32_t>(s), shards_[s]->window_dispatch_mode(), p0,
          obs::NowNs());
    }
#endif
  }
  // done is the thieves' cheap short-circuit; the release pairs with
  // their acquire load so a true reading implies the shard's final
  // state (status, sub-snapshot) is visible.
  run.done.store(true, std::memory_order_release);
}

bool ShardedExecutor::TryRunShard(size_t s, size_t home) {
  ShardRun& run = *runs_[s];
  if (run.done.load(std::memory_order_acquire)) return false;
  if (run.token.exchange(true, std::memory_order_acquire)) return false;
  // Token held: exclusive over shards_[s] and run's plain fields. The
  // acquire exchange synchronized with the previous holder's release
  // store, so the shard executor's state (and the cursor) is current.
  const size_t idx = run.next;
  if (idx >= run.morsels.size()) {
    // The previous holder finished the shard between our done check and
    // the exchange.
    run.token.store(false, std::memory_order_release);
    return false;
  }
  const uint64_t t0 = obs::NowNs();
  if (idx == 0) run.begin_ns = t0;
  run.next = idx + 1;
  Status status = RunMorsel(s, run.morsels[idx]);
  size_t completed = 1;
  if (!status.ok()) {
    run.status = std::move(status);
    // Fail the shard: skip its remaining morsels (they are accounted as
    // completed so the window barrier still drains).
    completed += run.morsels.size() - run.next;
    run.next = run.morsels.size();
  }
  RINGDB_OBS(morsels_run_.Add());
  if (s != home) {
    RINGDB_OBS(morsels_stolen_.Add());
#ifndef RINGDB_NO_METRICS
    if (trace_ctx_.recorder != nullptr && trace_ctx_.seq != 0) {
      trace_ctx_.recorder->AddSpan(
          trace_ctx_.seq, obs::kSpanShardSteal, trace_ctx_.query,
          static_cast<uint32_t>(s), shards_[s]->window_dispatch_mode(), t0,
          obs::NowNs());
    }
#endif
  }
  if (run.next >= run.morsels.size()) FinishShard(s, run);
  run.token.store(false, std::memory_order_release);
  // Completion count last: when unclaimed_ hits zero every morsel has
  // fully executed and every touched shard is finished (FinishShard ran
  // before this decrement). The RMW joins the release sequence, so the
  // window owner's acquire read of zero sees all workers' effects.
  unclaimed_.fetch_sub(completed, std::memory_order_acq_rel);
  return true;
}

void ShardedExecutor::RunWindowWorker(size_t home) {
  const size_t n = shards_.size();
  const StealMode mode = steal_mode_;
  while (unclaimed_.load(std::memory_order_acquire) != 0) {
    bool progress = false;
    switch (mode) {
      case StealMode::kDisabled:
        progress = TryRunShard(home, home);
        break;
      case StealMode::kForced:
        // Visit the other shards first, own shard as a last resort —
        // maximizes steals for the differential and the TSan hammer.
        for (size_t k = 1; k < n && !progress; ++k) {
          progress = TryRunShard((home + k) % n, home);
        }
        if (!progress) progress = TryRunShard(home, home);
        break;
      case StealMode::kAuto:
        progress = TryRunShard(home, home);
        for (size_t k = 1; k < n && !progress; ++k) {
          progress = TryRunShard((home + k) % n, home);
        }
        break;
    }
    if (!progress) std::this_thread::yield();
  }
}

void ShardedExecutor::WorkerLoop(size_t shard_idx) {
  uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
    }
    RunWindowWorker(shard_idx);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
    }
    done_cv_.notify_one();
  }
}

Status ShardedExecutor::ApplyBatch(const UpdateBatch& batch) {
  if (batch.empty()) return Status::Ok();
  const size_t n = shards_.size();
  ++mutation_epoch_;
  std::fill(shard_work_used_.begin(), shard_work_used_.end(), size_t{0});
  if (n == 1) {
    // Single shard: hand every delta over whole — no routing, no row
    // lists, no morsels; the columns flow through untouched on the
    // calling thread.
    size_t rows = 0;
    for (const RelationDelta& delta : batch.deltas()) {
      ShardSlice& slice = NextSlice(0);
      slice.delta = &delta;
      slice.all = true;
      rows += delta.size();
    }
    if (rows != 0) shards_[0]->ReserveForBatch(rows);
    RunShardWhole(0);
    if (publish_enabled_ && shard0_status_.ok()) FreezeShard(0);
    return shard0_status_;
  }
  for (const RelationDelta& delta : batch.deltas()) {
    // The routing column is per relation; resolve it once and hash only
    // that column's values. Unroutable relations (absent from the
    // scheme, or a malformed routing column) go whole to shard 0,
    // matching PartitionScheme::ShardOf row semantics.
    auto route = scheme_.route_column.find(delta.relation);
    if (route == scheme_.route_column.end() ||
        route->second >= delta.arity()) {
      ShardSlice& slice = NextSlice(0);
      slice.delta = &delta;
      slice.all = true;
      continue;
    }
    const std::vector<Value>& col = delta.columns[route->second];
    std::fill(route_scratch_.begin(), route_scratch_.end(), nullptr);
    for (uint32_t r = 0; r < delta.size(); ++r) {
      const size_t s = col[r].Hash() % n;
      if (route_scratch_[s] == nullptr) {
        route_scratch_[s] = &NextSlice(s);
        route_scratch_[s]->delta = &delta;
      }
      route_scratch_[s]->rows.push_back(r);
    }
  }
  // Cut each shard's slices into morsels and arm the per-shard runs.
  // Whole-delta slices and slices at or under the grain stay one morsel
  // (small windows keep the exact pre-morsel invocation pattern); only a
  // genuinely hot shard's long row lists split into stealable ranges.
  size_t total_morsels = 0;
  for (size_t s = 0; s < n; ++s) {
    ShardRun& run = *runs_[s];
    run.morsels.clear();
    size_t rows = 0;
    for (uint32_t k = 0; k < shard_work_used_[s]; ++k) {
      const ShardSlice& slice = shard_work_[s][k];
      if (slice.all) {
        run.morsels.push_back(Morsel{k, 0, 0});
        rows += slice.delta->size();
        continue;
      }
      const uint32_t count = static_cast<uint32_t>(slice.rows.size());
      rows += count;
      if (count <= kMorselGrain) {
        run.morsels.push_back(Morsel{k, 0, count});
        continue;
      }
      for (uint32_t b = 0; b < count; b += kMorselGrain) {
        run.morsels.push_back(
            Morsel{k, b, std::min(count, b + kMorselGrain)});
      }
    }
    run.next = 0;
    run.begin_ns = 0;
    run.status = Status::Ok();
    run.token.store(false, std::memory_order_relaxed);
    if (run.morsels.empty()) {
      run.done.store(true, std::memory_order_relaxed);
      if (publish_enabled_ && sub_epoch_[s] == mutation_epoch_ - 1) {
        // Epoch carry: the window does not touch this shard, so its
        // previous sub-snapshot stays exact — republish it for free.
        sub_epoch_[s] = mutation_epoch_;
      }
    } else {
      run.done.store(false, std::memory_order_relaxed);
      total_morsels += run.morsels.size();
    }
    if (rows != 0) shards_[s]->ReserveForBatch(rows);
  }
  if (total_morsels == 0) return Status::Ok();
  unclaimed_.store(total_morsels, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_ = n - 1;
    ++generation_;
  }
  work_cv_.notify_all();
  RunWindowWorker(0);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
  }
  for (const auto& run : runs_) {
    if (!run->status.ok()) return run->status;
  }
  return Status::Ok();
}

runtime::Executor::Stats ShardedExecutor::AggregateStats() const {
  runtime::Executor::Stats total;
  for (const auto& shard : shards_) {
    const runtime::Executor::Stats& s = shard->stats();
    total.updates += s.updates;
    total.statements_run += s.statements_run;
    total.entries_touched += s.entries_touched;
    total.arithmetic_ops += s.arithmetic_ops;
    total.init_evaluations += s.init_evaluations;
    total.delta_entries += s.delta_entries;
    total.scaled_firings += s.scaled_firings;
  }
  return total;
}

std::vector<runtime::Executor::StmtCounters>
ShardedExecutor::AggregateStmtCounters() const {
  std::vector<runtime::Executor::StmtCounters> total(
      shards_[0]->stmt_counters().size());
  for (const auto& shard : shards_) {
    const auto& per = shard->stmt_counters();
    for (size_t i = 0; i < per.size() && i < total.size(); ++i) {
      total[i].invocations += per[i].invocations;
      total[i].loop_iterations += per[i].loop_iterations;
      total[i].probes += per[i].probes;
      total[i].emissions += per[i].emissions;
      total[i].native_calls += per[i].native_calls;
      total[i].interp_calls += per[i].interp_calls;
      total[i].window_ns += per[i].window_ns;
    }
  }
  return total;
}

void ShardedExecutor::ResetStats() {
  for (const auto& shard : shards_) shard->ResetStats();
}

size_t ShardedExecutor::ApproxBytes() const {
  size_t bytes = 0;
  for (const auto& shard : shards_) bytes += shard->ApproxBytes();
  // Routing scratch: pooled slices and their row-id buffers.
  for (const std::vector<ShardSlice>& pool : shard_work_) {
    bytes += pool.capacity() * sizeof(ShardSlice);
    for (const ShardSlice& slice : pool) {
      bytes += slice.rows.capacity() * sizeof(uint32_t);
    }
  }
  // Published sub-snapshots (shared with any live ResultSnapshots).
  for (const runtime::FrozenViewPtr& sub : subs_) {
    if (sub != nullptr) bytes += sub->ApproxBytes();
  }
  return bytes;
}

}  // namespace exec
}  // namespace ringdb
