// Shard partitioning analysis for data-parallel view maintenance.
//
// A query Q decomposes over a hash partition of its input relations,
// Q(D) = sum_i Q(D_i), exactly when every monomial of Q constrains all of
// its relation atoms to agree on some variable equivalence class E (shared
// variable names and explicit kEq comparisons): any joining combination of
// tuples then shares one routing value, lands in one shard, and is counted
// by that shard alone, while the ring sum merges shard results (including
// cancellations) losslessly. This is the classic co-partitioning condition
// of parallel hash joins lifted to AGCA's polynomial form.
//
// DerivePartitionScheme searches for one routing column per relation that
// witnesses the condition for every monomial simultaneously. Queries with
// no such witness — chain joins, inequality joins, disjoint products —
// yield an invalid scheme and the engine falls back to one shard; this is
// a conservative soundness analysis, never a correctness gamble.

#ifndef RINGDB_EXEC_PARTITION_H_
#define RINGDB_EXEC_PARTITION_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "agca/ast.h"
#include "ring/database.h"
#include "util/symbol.h"
#include "util/value.h"

namespace ringdb {
namespace exec {

struct PartitionScheme {
  // Sound to run the query on hash-partitioned shards and merge by ring
  // addition. When false, multi-shard execution must not be used.
  bool valid = false;
  // relation -> routing key column. Relations the query never mentions
  // are absent and route to shard 0 (their updates fire no trigger).
  std::unordered_map<Symbol, size_t> route_column;

  // Owning shard of an update to `relation` with the given tuple values.
  // Malformed tuples (shorter than the routing column) route to shard 0,
  // whose executor rejects them with the proper arity error.
  size_t ShardOf(Symbol relation, const std::vector<Value>& values,
                 size_t num_shards) const {
    auto it = route_column.find(relation);
    if (it == route_column.end() || it->second >= values.size()) return 0;
    return values[it->second].Hash() % num_shards;
  }

  std::string ToString() const;
};

// Analyzes Sum_[group_vars](body) over the catalog. Returns a valid
// scheme iff the decomposition condition above holds for a single global
// choice of routing columns; otherwise {valid = false}.
PartitionScheme DerivePartitionScheme(const ring::Catalog& catalog,
                                      const std::vector<Symbol>& group_vars,
                                      const agca::ExprPtr& body);

}  // namespace exec
}  // namespace ringdb

#endif  // RINGDB_EXEC_PARTITION_H_
