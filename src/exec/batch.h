// Batched update execution: coalescing a sequence of single-tuple update
// events into per-relation delta GMRs.
//
// Koch's delta rule maintains views from the update event alone, and ring
// addition makes a batch of events a first-class object: the net effect of
// a window of updates is one gmr per relation mapping each touched tuple
// to its signed multiplicity (inserts +1, deletes -1, duplicates summed).
// Opposite events inside one batch cancel *before* any trigger fires, so
// a sliding-window workload that inserts and deletes the same tuple within
// a batch costs nothing at all, and m identical inserts fire a
// multiplicity-linear trigger once (see compiler::Trigger) instead of m
// times. Entries preserve per-relation first-touch order, so replaying a
// batch is deterministic.

#ifndef RINGDB_EXEC_BATCH_H_
#define RINGDB_EXEC_BATCH_H_

#include <cstddef>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "ring/database.h"
#include "util/hash.h"
#include "util/numeric.h"
#include "util/status.h"
#include "util/symbol.h"
#include "util/value.h"

namespace ringdb {
namespace exec {

// One coalesced tuple delta: net multiplicity of the tuple in the batch.
struct DeltaEntry {
  std::vector<Value> values;
  Numeric multiplicity = kZero;
};

// The delta GMR of one relation: all touched tuples with nonzero net
// multiplicity, in first-touch order.
struct RelationDelta {
  Symbol relation;
  std::vector<DeltaEntry> entries;

  // Sum of |multiplicity| over entries (tuple-units the delta stands for).
  uint64_t TupleUnits() const;
};

// An immutable coalesced batch, produced by BatchBuilder::Build.
class UpdateBatch {
 public:
  UpdateBatch() = default;

  const std::vector<RelationDelta>& deltas() const { return deltas_; }
  bool empty() const { return deltas_.empty(); }

  // Number of coalesced (relation, tuple) entries across relations.
  size_t EntryCount() const;
  // Number of input tuple-units the batch nets out to.
  uint64_t TupleUnits() const;

  std::string ToString() const;

 private:
  friend class BatchBuilder;
  std::vector<RelationDelta> deltas_;  // relation first-touch order
};

// Accumulates update events and coalesces them into an UpdateBatch.
// Validates each event against the catalog at Add time, so a built batch
// is always well-formed.
class BatchBuilder {
 public:
  explicit BatchBuilder(const ring::Catalog& catalog) : catalog_(&catalog) {}

  Status Add(const ring::Update& update) {
    return Add(update.relation, update.values, update.SignedUnit());
  }
  Status Add(Symbol relation, const std::vector<Value>& values,
             Numeric multiplicity);

  // The validation Add performs (relation known, arity matches), exposed
  // so producer-facing layers (serve::QueryService::Push) can reject bad
  // events eagerly with the identical error — an update passing Validate
  // cannot fail Add.
  static Status Validate(const ring::Catalog& catalog, Symbol relation,
                         const std::vector<Value>& values);

  // Events accumulated since the last Build (tuple-units, pre-coalesce).
  uint64_t pending_updates() const { return pending_updates_; }

  // Finalizes the batch: drops entries whose multiplicities cancelled to
  // zero (preserving the order of the survivors) and resets the builder.
  UpdateBatch Build();

 private:
  // The coalescing maps key on pointers into the accumulating entries
  // (stored in deques for address stability), so each distinct tuple is
  // stored exactly once.
  struct ValuesPtrHash {
    size_t operator()(const std::vector<Value>* vs) const noexcept {
      size_t h = 0x8c62e9f7655b2ae1ULL;
      for (const Value& v : *vs) h = HashCombine(h, v.Hash());
      return h;
    }
  };
  struct ValuesPtrEq {
    bool operator()(const std::vector<Value>* a,
                    const std::vector<Value>* b) const noexcept {
      return *a == *b;
    }
  };

  const ring::Catalog* catalog_;
  uint64_t pending_updates_ = 0;
  // Parallel per-relation accumulators, in relation first-touch order.
  std::vector<Symbol> relations_;
  std::vector<std::deque<DeltaEntry>> entries_;
  std::unordered_map<Symbol, size_t> relation_slot_;
  std::vector<std::unordered_map<const std::vector<Value>*, DeltaEntry*,
                                 ValuesPtrHash, ValuesPtrEq>>
      entry_slot_;
};

}  // namespace exec
}  // namespace ringdb

#endif  // RINGDB_EXEC_BATCH_H_
