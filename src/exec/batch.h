// Batched update execution: coalescing a sequence of single-tuple update
// events into per-relation columnar delta GMRs.
//
// Koch's delta rule maintains views from the update event alone, and ring
// addition makes a batch of events a first-class object: the net effect of
// a window of updates is one gmr per relation mapping each touched tuple
// to its signed multiplicity (inserts +1, deletes -1, duplicates summed).
// Opposite events inside one batch cancel *before* any trigger fires, so
// a sliding-window workload that inserts and deletes the same tuple within
// a batch costs nothing at all, and m identical inserts fire a
// multiplicity-linear trigger once (see compiler::Trigger) instead of m
// times. Rows preserve per-relation first-touch order, so replaying a
// batch is deterministic.
//
// The delta is stored column-major: one dense Value array per attribute
// plus a contiguous multiplicity array. Columns are built directly during
// coalescing (BatchBuilder appends each event's values to the column
// tails), so there is no row-to-column transpose pass. Downstream loop
// drivers (Executor::ApplyDeltaColumns, the native columnar-window entry
// points) index the columns directly; call sites that still want a tuple
// at a time use the RowView/Rows() adapter, which is a pair of pointers —
// no materialization.

#ifndef RINGDB_EXEC_BATCH_H_
#define RINGDB_EXEC_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ring/database.h"
#include "util/hash.h"
#include "util/numeric.h"
#include "util/status.h"
#include "util/symbol.h"
#include "util/value.h"

namespace ringdb {
namespace exec {

// The delta GMR of one relation in columnar layout: all touched tuples
// with nonzero net multiplicity, in first-touch order. Row r of the delta
// is (columns[0][r], ..., columns[arity-1][r]) -> mults[r].
struct RelationDelta {
  Symbol relation;
  std::vector<std::vector<Value>> columns;  // arity() dense columns
  std::vector<Numeric> mults;               // one net multiplicity per row

  size_t size() const { return mults.size(); }
  size_t arity() const { return columns.size(); }
  bool empty() const { return mults.empty(); }

  // Copies row r into out[0..arity), which must have room for arity()
  // values. The row-gather used by fallback paths that need a contiguous
  // tuple (legacy row representation, nonlinear triggers).
  void GatherRow(size_t r, Value* out) const {
    for (size_t c = 0; c < columns.size(); ++c) out[c] = columns[c][r];
  }

  // Sum of |multiplicity| over rows (tuple-units the delta stands for).
  uint64_t TupleUnits() const;

  // Cheap per-tuple adapter over the columnar storage for call sites that
  // read one row at a time (tests, printing). Holds a delta pointer and a
  // row id; no values are copied.
  class RowView {
   public:
    RowView(const RelationDelta* d, size_t row) : d_(d), row_(row) {}
    size_t arity() const { return d_->columns.size(); }
    const Value& operator[](size_t c) const { return d_->columns[c][row_]; }
    const Numeric& multiplicity() const { return d_->mults[row_]; }
    size_t row() const { return row_; }

   private:
    const RelationDelta* d_;
    size_t row_;
  };

  class RowIterator {
   public:
    RowIterator(const RelationDelta* d, size_t row) : d_(d), row_(row) {}
    RowView operator*() const { return RowView(d_, row_); }
    RowIterator& operator++() {
      ++row_;
      return *this;
    }
    bool operator!=(const RowIterator& o) const { return row_ != o.row_; }

   private:
    const RelationDelta* d_;
    size_t row_;
  };

  struct RowRange {
    const RelationDelta* d;
    RowIterator begin() const { return RowIterator(d, 0); }
    RowIterator end() const { return RowIterator(d, d->size()); }
  };
  RowRange Rows() const { return RowRange{this}; }

  RowView Row(size_t r) const { return RowView(this, r); }
};

// An immutable coalesced batch, produced by BatchBuilder::Build.
class UpdateBatch {
 public:
  UpdateBatch() = default;

  // Rehydrates a batch from already-materialized deltas. This is the
  // recovery path (log::DecodeBatch): WAL records store the coalesced
  // deltas a BatchBuilder produced before the crash, so replay feeds
  // them back through ApplyPrepared without re-coalescing. Callers are
  // responsible for the BatchBuilder invariants (validated rows, net
  // multiplicities) — decode validates against the catalog.
  static UpdateBatch FromDeltas(std::vector<RelationDelta> deltas) {
    UpdateBatch batch;
    batch.deltas_ = std::move(deltas);
    return batch;
  }

  const std::vector<RelationDelta>& deltas() const { return deltas_; }
  bool empty() const { return deltas_.empty(); }

  // Number of coalesced (relation, tuple) rows across relations.
  size_t EntryCount() const;
  // Number of input tuple-units the batch nets out to.
  uint64_t TupleUnits() const;

  std::string ToString() const;

 private:
  friend class BatchBuilder;
  std::vector<RelationDelta> deltas_;  // relation first-touch order
};

// Accumulates update events and coalesces them into an UpdateBatch.
// Validates each event against the catalog at Add time, so a built batch
// is always well-formed. Coalescing is an open-addressing hash over row
// ids (power-of-two table, linear probing): a repeated tuple folds its
// multiplicity into the existing row, a fresh tuple appends one Value to
// each column tail — the columnar delta is built in place.
class BatchBuilder {
 public:
  explicit BatchBuilder(const ring::Catalog& catalog) : catalog_(&catalog) {}

  Status Add(const ring::Update& update) {
    return Add(update.relation, update.values, update.SignedUnit());
  }
  Status Add(Symbol relation, const std::vector<Value>& values,
             Numeric multiplicity);

  // The validation Add performs (relation known, arity matches), exposed
  // so producer-facing layers (serve::QueryService::Push) can reject bad
  // events eagerly with the identical error — an update passing Validate
  // cannot fail Add.
  static Status Validate(const ring::Catalog& catalog, Symbol relation,
                         const std::vector<Value>& values);

  // Events accumulated since the last Build (tuple-units, pre-coalesce).
  uint64_t pending_updates() const { return pending_updates_; }

  // Finalizes the batch: drops rows whose multiplicities cancelled to
  // zero (preserving the order of the survivors) and resets the builder.
  // The columnar buffers move out wholesale; the builder re-acquires
  // capacity on the next Add.
  UpdateBatch Build();

  // Bytes held by the coalescing buffers (columns, multiplicities, hash
  // tables), including string payloads of buffered values. Feeds
  // Engine::Stats::approx_bytes so pending-window memory is visible.
  size_t ApproxBytes() const;

 private:
  static constexpr uint32_t kEmptySlot = UINT32_MAX;

  // Per-relation accumulator: the delta under construction plus the
  // open-addressing row index (hashes cached per row so growth never
  // rehashes values).
  struct Accum {
    RelationDelta delta;
    std::vector<uint64_t> hashes;  // per-row tuple hash
    std::vector<uint32_t> slots;   // power-of-two open addressing -> row id
  };

  static uint64_t HashRow(const std::vector<Value>& values);
  static void GrowSlots(Accum& a, size_t min_rows);

  const ring::Catalog* catalog_;
  uint64_t pending_updates_ = 0;
  // Parallel per-relation accumulators, in relation first-touch order.
  std::vector<Symbol> relations_;
  std::vector<Accum> accums_;
  std::unordered_map<Symbol, size_t> relation_slot_;
};

}  // namespace exec
}  // namespace ringdb

#endif  // RINGDB_EXEC_BATCH_H_
