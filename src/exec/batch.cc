#include "exec/batch.h"

#include <sstream>

#include "util/check.h"

namespace ringdb {
namespace exec {

uint64_t RelationDelta::TupleUnits() const {
  uint64_t n = 0;
  for (const DeltaEntry& e : entries) {
    RINGDB_CHECK(e.multiplicity.is_integer());
    int64_t m = e.multiplicity.AsInt();
    n += static_cast<uint64_t>(m > 0 ? m : -m);
  }
  return n;
}

size_t UpdateBatch::EntryCount() const {
  size_t n = 0;
  for (const RelationDelta& d : deltas_) n += d.entries.size();
  return n;
}

uint64_t UpdateBatch::TupleUnits() const {
  uint64_t n = 0;
  for (const RelationDelta& d : deltas_) n += d.TupleUnits();
  return n;
}

std::string UpdateBatch::ToString() const {
  std::ostringstream out;
  for (const RelationDelta& d : deltas_) {
    out << d.relation.str() << ": {";
    for (size_t i = 0; i < d.entries.size(); ++i) {
      if (i) out << ", ";
      out << '(';
      for (size_t j = 0; j < d.entries[i].values.size(); ++j) {
        if (j) out << ", ";
        out << d.entries[i].values[j].ToString();
      }
      out << ") -> " << d.entries[i].multiplicity.ToString();
    }
    out << "}\n";
  }
  return out.str();
}

Status BatchBuilder::Validate(const ring::Catalog& catalog, Symbol relation,
                              const std::vector<Value>& values) {
  if (!catalog.Has(relation)) {
    return Status::NotFound("unknown relation " + relation.str());
  }
  if (catalog.Arity(relation) != values.size()) {
    return Status::InvalidArgument(
        "arity mismatch in update of " + relation.str() + ": expected " +
        std::to_string(catalog.Arity(relation)) + " values, got " +
        std::to_string(values.size()));
  }
  return Status::Ok();
}

Status BatchBuilder::Add(Symbol relation, const std::vector<Value>& values,
                         Numeric multiplicity) {
  RINGDB_RETURN_IF_ERROR(Validate(*catalog_, relation, values));
  if (multiplicity.IsZero()) return Status::Ok();
  RINGDB_CHECK(multiplicity.is_integer());
  int64_t m = multiplicity.AsInt();
  pending_updates_ += static_cast<uint64_t>(m > 0 ? m : -m);

  auto [rel_it, rel_inserted] =
      relation_slot_.try_emplace(relation, relations_.size());
  if (rel_inserted) {
    relations_.push_back(relation);
    entries_.emplace_back();
    entry_slot_.emplace_back();
  }
  std::deque<DeltaEntry>& entries = entries_[rel_it->second];
  auto& slots = entry_slot_[rel_it->second];
  auto probe = slots.find(&values);
  if (probe != slots.end()) {
    probe->second->multiplicity += multiplicity;
    return Status::Ok();
  }
  // One copy per distinct tuple: the deque slot owns the values and the
  // map keys on their (stable) address.
  entries.push_back(DeltaEntry{values, multiplicity});
  slots.emplace(&entries.back().values, &entries.back());
  return Status::Ok();
}

UpdateBatch BatchBuilder::Build() {
  UpdateBatch out;
  out.deltas_.reserve(relations_.size());
  // Drop fully cancelled entries (and then empty relations), keeping the
  // first-touch order of the survivors.
  for (size_t r = 0; r < relations_.size(); ++r) {
    RelationDelta delta;
    delta.relation = relations_[r];
    delta.entries.reserve(entries_[r].size());
    for (DeltaEntry& e : entries_[r]) {
      if (!e.multiplicity.IsZero()) delta.entries.push_back(std::move(e));
    }
    if (!delta.entries.empty()) out.deltas_.push_back(std::move(delta));
  }
  relations_.clear();
  entries_.clear();
  relation_slot_.clear();
  entry_slot_.clear();
  pending_updates_ = 0;
  return out;
}

}  // namespace exec
}  // namespace ringdb
