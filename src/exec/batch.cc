#include "exec/batch.h"

#include <sstream>

#include "util/check.h"

namespace ringdb {
namespace exec {

uint64_t RelationDelta::TupleUnits() const {
  uint64_t n = 0;
  for (const Numeric& m : mults) {
    RINGDB_CHECK(m.is_integer());
    int64_t v = m.AsInt();
    n += static_cast<uint64_t>(v > 0 ? v : -v);
  }
  return n;
}

size_t UpdateBatch::EntryCount() const {
  size_t n = 0;
  for (const RelationDelta& d : deltas_) n += d.size();
  return n;
}

uint64_t UpdateBatch::TupleUnits() const {
  uint64_t n = 0;
  for (const RelationDelta& d : deltas_) n += d.TupleUnits();
  return n;
}

std::string UpdateBatch::ToString() const {
  std::ostringstream out;
  for (const RelationDelta& d : deltas_) {
    out << d.relation.str() << ": {";
    for (size_t i = 0; i < d.size(); ++i) {
      if (i) out << ", ";
      out << '(';
      for (size_t j = 0; j < d.arity(); ++j) {
        if (j) out << ", ";
        out << d.columns[j][i].ToString();
      }
      out << ") -> " << d.mults[i].ToString();
    }
    out << "}\n";
  }
  return out.str();
}

Status BatchBuilder::Validate(const ring::Catalog& catalog, Symbol relation,
                              const std::vector<Value>& values) {
  if (!catalog.Has(relation)) {
    return Status::NotFound("unknown relation " + relation.str());
  }
  if (catalog.Arity(relation) != values.size()) {
    return Status::InvalidArgument(
        "arity mismatch in update of " + relation.str() + ": expected " +
        std::to_string(catalog.Arity(relation)) + " values, got " +
        std::to_string(values.size()));
  }
  return Status::Ok();
}

uint64_t BatchBuilder::HashRow(const std::vector<Value>& values) {
  uint64_t h = 0x8c62e9f7655b2ae1ULL;
  for (const Value& v : values) h = HashCombine(h, v.Hash());
  return h;
}

void BatchBuilder::GrowSlots(Accum& a, size_t min_rows) {
  size_t cap = a.slots.empty() ? 16 : a.slots.size();
  while (min_rows * 4 > cap * 3) cap *= 2;
  if (cap == a.slots.size()) return;
  a.slots.assign(cap, kEmptySlot);
  const size_t mask = cap - 1;
  for (size_t r = 0; r < a.hashes.size(); ++r) {
    size_t s = a.hashes[r] & mask;
    while (a.slots[s] != kEmptySlot) s = (s + 1) & mask;
    a.slots[s] = static_cast<uint32_t>(r);
  }
}

Status BatchBuilder::Add(Symbol relation, const std::vector<Value>& values,
                         Numeric multiplicity) {
  RINGDB_RETURN_IF_ERROR(Validate(*catalog_, relation, values));
  if (multiplicity.IsZero()) return Status::Ok();
  RINGDB_CHECK(multiplicity.is_integer());
  int64_t m = multiplicity.AsInt();
  pending_updates_ += static_cast<uint64_t>(m > 0 ? m : -m);

  auto [rel_it, rel_inserted] =
      relation_slot_.try_emplace(relation, relations_.size());
  if (rel_inserted) {
    relations_.push_back(relation);
    accums_.emplace_back();
    Accum& fresh = accums_.back();
    fresh.delta.relation = relation;
    fresh.delta.columns.resize(values.size());
  }
  Accum& a = accums_[rel_it->second];
  const uint64_t h = HashRow(values);

  GrowSlots(a, a.hashes.size() + 1);
  const size_t mask = a.slots.size() - 1;
  size_t s = h & mask;
  while (a.slots[s] != kEmptySlot) {
    const uint32_t row = a.slots[s];
    if (a.hashes[row] == h) {
      bool eq = true;
      for (size_t c = 0; c < values.size(); ++c) {
        if (!(a.delta.columns[c][row] == values[c])) {
          eq = false;
          break;
        }
      }
      if (eq) {
        a.delta.mults[row] += multiplicity;
        return Status::Ok();
      }
    }
    s = (s + 1) & mask;
  }
  // Fresh tuple: append one value to each column tail — this is the only
  // copy the tuple ever takes; there is no transpose pass later.
  a.slots[s] = static_cast<uint32_t>(a.hashes.size());
  a.hashes.push_back(h);
  for (size_t c = 0; c < values.size(); ++c) {
    a.delta.columns[c].push_back(values[c]);
  }
  a.delta.mults.push_back(multiplicity);
  return Status::Ok();
}

UpdateBatch BatchBuilder::Build() {
  UpdateBatch out;
  out.deltas_.reserve(relations_.size());
  // Drop fully cancelled rows (and then empty relations), keeping the
  // first-touch order of the survivors. Compaction is stable and in
  // place, one column at a time.
  for (Accum& a : accums_) {
    RelationDelta& d = a.delta;
    size_t keep = 0;
    for (size_t r = 0; r < d.mults.size(); ++r) {
      if (d.mults[r].IsZero()) continue;
      if (keep != r) {
        for (std::vector<Value>& col : d.columns) {
          col[keep] = std::move(col[r]);
        }
        d.mults[keep] = d.mults[r];
      }
      ++keep;
    }
    for (std::vector<Value>& col : d.columns) col.resize(keep);
    d.mults.resize(keep);
    if (keep != 0) out.deltas_.push_back(std::move(d));
  }
  relations_.clear();
  accums_.clear();
  relation_slot_.clear();
  pending_updates_ = 0;
  return out;
}

size_t BatchBuilder::ApproxBytes() const {
  size_t bytes = sizeof(*this);
  for (const Accum& a : accums_) {
    bytes += a.hashes.capacity() * sizeof(uint64_t);
    bytes += a.slots.capacity() * sizeof(uint32_t);
    bytes += a.delta.mults.capacity() * sizeof(Numeric);
    for (const std::vector<Value>& col : a.delta.columns) {
      bytes += col.capacity() * sizeof(Value);
      for (const Value& v : col) {
        if (v.kind() == Value::Kind::kString) bytes += v.AsString().size();
      }
    }
  }
  return bytes;
}

}  // namespace exec
}  // namespace ringdb
