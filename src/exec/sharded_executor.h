// Data-parallel trigger execution over hash-partitioned view hierarchies.
//
// Each shard owns a full runtime::Executor (views, indexes, lazy base
// database) maintained over the shard's slice of every input relation, as
// assigned by a PartitionScheme. Because the scheme witnesses
// Q(D) = sum_i Q(D_i), the shards never need to communicate during update
// application: a batch is routed entry-by-entry to owning shards, a
// persistent worker pool applies the per-shard sub-batches in parallel,
// and reads merge shard root views by ring addition (cancellations
// included). When the scheme is invalid — the query does not decompose —
// the executor degrades to a single shard and stays exactly as correct as
// the sequential engine.

#ifndef RINGDB_EXEC_SHARDED_EXECUTOR_H_
#define RINGDB_EXEC_SHARDED_EXECUTOR_H_

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "compiler/ir.h"
#include "exec/batch.h"
#include "exec/partition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ring/database.h"
#include "runtime/compiled_executor.h"
#include "runtime/interpreter.h"
#include "util/status.h"

namespace ringdb {
namespace exec {

class ShardedExecutor {
 public:
  // Builds `num_shards` executors from copies of the program. The
  // effective shard count drops to 1 when num_shards <= 1 or the scheme
  // is invalid; worker threads are only spawned for > 1 effective shards.
  // With backend == kCompile the program's native module is built once
  // (emit C, cc -shared, dlopen — see runtime/native_module.h) and shared
  // by every shard; when that fails (no host compiler, nothing emittable)
  // the shards are plain interpreters and native_status() says why.
  ShardedExecutor(const compiler::TriggerProgram& program,
                  PartitionScheme scheme, size_t num_shards,
                  runtime::Backend backend = runtime::Backend::kInterpret);
  ~ShardedExecutor();

  ShardedExecutor(const ShardedExecutor&) = delete;
  ShardedExecutor& operator=(const ShardedExecutor&) = delete;

  size_t num_shards() const { return shards_.size(); }
  const PartitionScheme& scheme() const { return scheme_; }

  // True when the shards dispatch (at least some) statements into a
  // dlopen'd native module rather than the bytecode interpreter.
  bool native_enabled() const { return native_enabled_; }
  // Why the compiled backend is off (Ok while native_enabled() or when it
  // was never requested).
  const Status& native_status() const { return native_status_; }

  // Single-tuple path: a batch of one, routed and applied inline on the
  // owning shard (no worker handoff).
  Status Apply(const ring::Update& update) {
    return shards_[ShardOf(update.relation, update.values)]->ApplyDelta(
        update.relation, update.values, update.SignedUnit());
  }

  // Routes every delta entry to its owning shard and applies the
  // per-shard sub-batches in parallel. Entries keep their per-relation
  // order within a shard. Returns the first shard error, if any.
  Status ApplyBatch(const UpdateBatch& batch);

  runtime::Executor& shard(size_t i) { return *shards_[i]; }
  const runtime::Executor& shard(size_t i) const { return *shards_[i]; }

  // Merge-on-read: invokes fn(key, multiplicity) for every root-view
  // entry of every shard (templated straight through ViewTable::ForEach,
  // no type erasure). One group key may appear in several shards; callers
  // merge by ring addition.
  template <typename Fn>
  void ForEachRoot(Fn&& fn) const {
    for (const auto& shard : shards_) shard->root().ForEach(fn);
  }

  // Like ForEachRoot, but group keys appearing in several shards are
  // pre-merged by ring addition: fn sees each root key exactly once with
  // its global multiplicity (keys whose shard contributions cancel to
  // zero are skipped). The merge map is member scratch with a reserve
  // sized from the previous merge's cardinality — snapshot publication
  // (serve::QueryService) calls this once per applied batch, and steady-
  // state result sizes drift slowly, so rehash growth is a one-time cost
  // instead of a per-batch one. Single-shard executors stream straight
  // from the root table, no map at all. The scratch is guarded by its
  // own mutex (one uncontended lock per call, not per entry) so
  // concurrent const readers on a quiescent executor stay safe; racing
  // the *writer* is still on the caller, as for every read path here.
  template <typename Fn>
  void ForEachRootMerged(Fn&& fn) const {
    if (shards_.size() == 1) {
      shards_[0]->root().ForEach(fn);
      return;
    }
    const uint64_t t0 = obs::NowNs();
    std::lock_guard<std::mutex> lock(merge_mu_);
    merge_scratch_.clear();
    merge_scratch_.reserve(last_merge_size_ + last_merge_size_ / 8 + 8);
    for (const auto& shard : shards_) {
      shard->root().ForEach([&](runtime::KeyView key, Numeric m) {
        auto [it, inserted] = merge_scratch_.try_emplace(key.ToKey(), m);
        if (!inserted) it->second += m;
      });
    }
    last_merge_size_ = merge_scratch_.size();
    for (const auto& [key, m] : merge_scratch_) {
      if (!m.IsZero()) fn(runtime::KeyView(key), m);
    }
    RINGDB_OBS(merge_ns_.Record(obs::NowNs() - t0));
  }

  // Sums of per-shard counters (reads are only safe between batches).
  runtime::Executor::Stats AggregateStats() const;
  // Cross-shard sums of the per-statement counters, indexed by
  // StmtProgram::stmt_id (same read-safety caveat as AggregateStats).
  std::vector<runtime::Executor::StmtCounters> AggregateStmtCounters() const;
  // Shard 0's backend dispatch report (shards profile independently but
  // see statistically identical slices, so one shard is representative).
  void CollectDispatch(
      std::vector<runtime::Executor::StmtDispatch>* out) const {
    shards_[0]->CollectDispatch(out);
  }
  void ResetStats();
  size_t ApproxBytes() const;

  // Pipeline stage spans, batch-boundary granularity: wall time of one
  // shard applying its sub-batch (recorded per shard per batch, so the
  // spread exposes shard skew), and wall time of one merged root read.
  obs::HistogramSnapshot ApplySpanSnapshot() const {
    return apply_ns_.Snapshot();
  }
  obs::HistogramSnapshot MergeSpanSnapshot() const {
    return merge_ns_.Snapshot();
  }

  // Window tracer hook: set by the owning thread before ApplyBatch (the
  // generation handshake publishes it to the workers), cleared or
  // re-pointed per window. Each shard records a kSpanShardApply sub-span
  // tagged with its dispatch mode into ctx.recorder. Null disables.
  void SetTraceContext(const obs::TraceContext& ctx) { trace_ctx_ = ctx; }

 private:
  // One shard's slice of one relation's columnar delta: either the whole
  // delta (all = true, the single-shard / unroutable fast path — no row
  // list is built at all) or the listed row ids. Slices and their row
  // vectors are pooled across batches (shard_work_used_ marks the live
  // prefix), so steady-state routing allocates nothing.
  struct ShardSlice {
    const RelationDelta* delta = nullptr;
    std::vector<uint32_t> rows;
    bool all = false;
  };

  size_t ShardOf(Symbol relation, const std::vector<Value>& values) const {
    return scheme_.ShardOf(relation, values, shards_.size());
  }

  ShardSlice& NextSlice(size_t shard_idx) {
    std::vector<ShardSlice>& pool = shard_work_[shard_idx];
    if (shard_work_used_[shard_idx] == pool.size()) pool.emplace_back();
    ShardSlice& slice = pool[shard_work_used_[shard_idx]++];
    slice.rows.clear();
    slice.all = false;
    return slice;
  }

  void WorkerLoop(size_t shard_idx);
  void RunShard(size_t shard_idx);

  PartitionScheme scheme_;
  std::vector<std::unique_ptr<runtime::Executor>> shards_;
  bool native_enabled_ = false;
  Status native_status_ = Status::Ok();

  // ForEachRootMerged scratch (mutable: merge-on-read is logically
  // const). Reused across calls, guarded by merge_mu_; see the method
  // comment.
  mutable std::mutex merge_mu_;
  mutable std::unordered_map<runtime::Key, Numeric, runtime::KeyHash>
      merge_scratch_;
  mutable size_t last_merge_size_ = 0;

  // Stage-span histograms (atomic buckets: shard workers record
  // concurrently; merge records under merge_mu_ but reads race freely).
  obs::Histogram apply_ns_;
  mutable obs::Histogram merge_ns_;

  // Per-window trace target. Written by the batch owner before the
  // generation handshake, read by workers after it (the mu_ acquire
  // gives the happens-before), so plain fields are TSan-clean.
  obs::TraceContext trace_ctx_;

  // Worker pool state: workers_[i] serves shard i + 1 (shard 0 runs on
  // the calling thread), guarded by mu_. A batch publishes shard_work_,
  // bumps generation_, and waits for pending_ to drain.
  std::vector<std::vector<ShardSlice>> shard_work_;
  std::vector<size_t> shard_work_used_;     // live slices per shard
  std::vector<ShardSlice*> route_scratch_;  // per-delta open slice per shard
  std::vector<Status> shard_status_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;
  size_t pending_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace exec
}  // namespace ringdb

#endif  // RINGDB_EXEC_SHARDED_EXECUTOR_H_
