// Data-parallel trigger execution over hash-partitioned view hierarchies.
//
// Each shard owns a full runtime::Executor (views, indexes, lazy base
// database) maintained over the shard's slice of every input relation, as
// assigned by a PartitionScheme. Because the scheme witnesses
// Q(D) = sum_i Q(D_i), the shards never need to communicate during update
// application: a batch is routed entry-by-entry to owning shards and the
// per-shard sub-batches run in parallel. When the scheme is invalid — the
// query does not decompose — the executor degrades to a single shard and
// stays exactly as correct as the sequential engine.
//
// Shard ownership is end-to-end (PR 10). A window's per-shard work is cut
// into *morsels* (row-ranges of the routed slices) executed under a
// per-shard token: any worker may claim the token of any shard, run
// exactly one morsel, and release it, so a zipf-hot shard sheds its tail
// morsels to idle workers. Three invariants make stealing result-
// invariant by construction:
//
//  1. State never migrates. A stolen morsel runs on the *owner shard's*
//     executor — the thief moves to the data, never the data to the
//     thief — so every tuple still lands in the partition the scheme
//     co-located its join partners in.
//  2. Exact per-shard order. The token plus a sequential morsel cursor
//     means each shard's morsels execute in routing order with full
//     mutual exclusion, i.e. precisely the sequential schedule; the
//     paper's window decomposition (applying a window as consecutive
//     sub-windows) is the only rewrite stealing ever exercises.
//  3. Publication happens-before composition. The worker that runs a
//     shard's last morsel freezes the shard's root into an immutable
//     FrozenView (runtime/frozen_view.h) while still holding the token;
//     readers compose the per-shard FrozenViews (serve::ResultSnapshot)
//     instead of paying ForEachRootMerged's merge-on-read, and a shard
//     untouched by a window carries its previous FrozenView forward by
//     epoch (no copy, no scan).
//
// Steal behaviour is observable (morsels_run/morsels_stolen counters,
// kSpanShardSteal/kSpanShardPublish window-trace spans) and testable:
// StealMode::kForced makes every worker prefer other shards' tokens,
// StealMode::kDisabled pins workers to their own shard — the
// differential suite asserts bit-identical results either way.

#ifndef RINGDB_EXEC_SHARDED_EXECUTOR_H_
#define RINGDB_EXEC_SHARDED_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "compiler/ir.h"
#include "exec/batch.h"
#include "exec/partition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ring/database.h"
#include "runtime/compiled_executor.h"
#include "runtime/frozen_view.h"
#include "runtime/interpreter.h"
#include "util/status.h"

namespace ringdb {
namespace exec {

// Morsel scheduling policy. kAuto (default): a worker drains its own
// shard first and steals only when idle. kDisabled: workers never touch
// another shard's token (the sequential per-shard schedule, for
// differentials). kForced: workers prefer *other* shards' tokens and
// fall back to their own, maximizing steals (for differentials and the
// TSan hammer). Also selectable via RINGDB_STEAL=auto|disabled|forced.
enum class StealMode { kAuto, kDisabled, kForced };

class ShardedExecutor {
 public:
  // Builds `num_shards` executors from copies of the program. The
  // effective shard count drops to 1 when num_shards <= 1 or the scheme
  // is invalid; worker threads are only spawned for > 1 effective shards.
  // With backend == kCompile the program's native module is built once
  // (emit C, cc -shared, dlopen — see runtime/native_module.h) and shared
  // by every shard; when that fails (no host compiler, nothing emittable)
  // the shards are plain interpreters and native_status() says why.
  ShardedExecutor(const compiler::TriggerProgram& program,
                  PartitionScheme scheme, size_t num_shards,
                  runtime::Backend backend = runtime::Backend::kInterpret);
  ~ShardedExecutor();

  ShardedExecutor(const ShardedExecutor&) = delete;
  ShardedExecutor& operator=(const ShardedExecutor&) = delete;

  size_t num_shards() const { return shards_.size(); }
  const PartitionScheme& scheme() const { return scheme_; }

  // True when the shards dispatch (at least some) statements into a
  // dlopen'd native module rather than the bytecode interpreter.
  bool native_enabled() const { return native_enabled_; }
  // Why the compiled backend is off (Ok while native_enabled() or when it
  // was never requested).
  const Status& native_status() const { return native_status_; }

  // Single-tuple path: a batch of one, routed and applied inline on the
  // owning shard (no worker handoff, no morsels).
  Status Apply(const ring::Update& update) {
    ++mutation_epoch_;
    return shards_[ShardOf(update.relation, update.values)]->ApplyDelta(
        update.relation, update.values, update.SignedUnit());
  }

  // Routes every delta entry to its owning shard, cuts the per-shard
  // slices into morsels, and runs them on the worker pool with stealing
  // per steal_mode(). Entries keep their per-relation order within a
  // shard. Returns the first shard error, if any.
  Status ApplyBatch(const UpdateBatch& batch);

  runtime::Executor& shard(size_t i) { return *shards_[i]; }
  const runtime::Executor& shard(size_t i) const { return *shards_[i]; }

  // Merge-on-read: invokes fn(key, multiplicity) for every root-view
  // entry of every shard (templated straight through ViewTable::ForEach,
  // no type erasure). One group key may appear in several shards; callers
  // merge by ring addition.
  template <typename Fn>
  void ForEachRoot(Fn&& fn) const {
    for (const auto& shard : shards_) shard->root().ForEach(fn);
  }

  // Like ForEachRoot, but group keys appearing in several shards are
  // pre-merged by ring addition: fn sees each root key exactly once with
  // its global multiplicity (keys whose shard contributions cancel to
  // zero are skipped). Standalone-engine read path (Engine::ResultGmr);
  // the serving pipeline composes RootSubSnapshots() instead. The merge
  // map is member scratch guarded by its own mutex; racing the *writer*
  // is on the caller, as for every read path here.
  template <typename Fn>
  void ForEachRootMerged(Fn&& fn) const {
    if (shards_.size() == 1) {
      shards_[0]->root().ForEach(fn);
      return;
    }
    const uint64_t t0 = obs::NowNs();
    std::lock_guard<std::mutex> lock(merge_mu_);
    merge_scratch_.clear();
    merge_scratch_.reserve(last_merge_size_ + last_merge_size_ / 8 + 8);
    for (const auto& shard : shards_) {
      shard->root().ForEach([&](runtime::KeyView key, Numeric m) {
        auto [it, inserted] = merge_scratch_.try_emplace(key.ToKey(), m);
        if (!inserted) it->second += m;
      });
    }
    last_merge_size_ = merge_scratch_.size();
    for (const auto& [key, m] : merge_scratch_) {
      if (!m.IsZero()) fn(runtime::KeyView(key), m);
    }
    RINGDB_OBS(merge_ns_.Record(obs::NowNs() - t0));
  }

  // --- Shard-owned publication ----------------------------------------

  // Turns on eager per-shard publication: the worker finishing a shard's
  // window freezes the shard root into a FrozenView while still holding
  // the shard token. Off by default (standalone engines and benches pay
  // nothing); serve::QueryService enables it after recovery replay so
  // replayed windows also skip the freeze. Call only while quiescent.
  void EnablePublish(bool on) { publish_enabled_ = on; }
  bool publish_enabled() const { return publish_enabled_; }

  // The composed read surface: one immutable FrozenView per shard, each
  // current as of the last mutation. Shards whose published view is
  // stale (publication disabled for some windows, single-tuple applies,
  // recovery replay) are frozen here, on the calling thread — which also
  // seeds the per-shard epochs after crash recovery. Must not race an
  // apply, like every read path on this class.
  std::vector<runtime::FrozenViewPtr> RootSubSnapshots() const;

  // Every shard-table mutation must advance mutation_epoch_, or
  // RootSubSnapshots will serve FrozenViews frozen before the mutation.
  // Apply/ApplyBatch advance it themselves; state installed behind their
  // back (checkpoint load writes directly into the view tables) must
  // call this afterwards. Quiescent-only, like the loads it annotates.
  void NoteExternalMutation() { ++mutation_epoch_; }

  // --- Morsel stealing -------------------------------------------------

  void SetStealMode(StealMode mode) { steal_mode_ = mode; }
  StealMode steal_mode() const { return steal_mode_; }

  struct StealStats {
    uint64_t morsels_run = 0;     // all morsels, stolen or not
    uint64_t morsels_stolen = 0;  // run by a thread whose home != owner
  };
  StealStats steal_stats() const {
    return StealStats{morsels_run_.Value(), morsels_stolen_.Value()};
  }

  // Sums of per-shard counters (reads are only safe between batches).
  runtime::Executor::Stats AggregateStats() const;
  // Cross-shard sums of the per-statement counters, indexed by
  // StmtProgram::stmt_id (same read-safety caveat as AggregateStats).
  std::vector<runtime::Executor::StmtCounters> AggregateStmtCounters() const;
  // Shard 0's backend dispatch report (shards profile independently but
  // see statistically identical slices, so one shard is representative).
  void CollectDispatch(
      std::vector<runtime::Executor::StmtDispatch>* out) const {
    shards_[0]->CollectDispatch(out);
  }
  void ResetStats();
  size_t ApproxBytes() const;

  // Pipeline stage spans, batch-boundary granularity: wall time of one
  // shard applying its window (first morsel begin → last morsel end, so
  // the spread exposes shard skew), and wall time of one merged root
  // read.
  obs::HistogramSnapshot ApplySpanSnapshot() const {
    return apply_ns_.Snapshot();
  }
  obs::HistogramSnapshot MergeSpanSnapshot() const {
    return merge_ns_.Snapshot();
  }

  // Window tracer hook: set by the owning thread before ApplyBatch (the
  // generation handshake publishes it to the workers), cleared or
  // re-pointed per window. Each shard records a kSpanShardApply sub-span
  // tagged with its dispatch mode into ctx.recorder; stolen morsels add
  // kSpanShardSteal and eager publication kSpanShardPublish. Null
  // disables.
  void SetTraceContext(const obs::TraceContext& ctx) { trace_ctx_ = ctx; }

 private:
  // One shard's slice of one relation's columnar delta: either the whole
  // delta (all = true, the single-shard / unroutable fast path — no row
  // list is built at all) or the listed row ids. Slices and their row
  // vectors are pooled across batches (shard_work_used_ marks the live
  // prefix), so steady-state routing allocates nothing.
  struct ShardSlice {
    const RelationDelta* delta = nullptr;
    std::vector<uint32_t> rows;
    bool all = false;
  };

  // One schedulable unit: rows [begin, end) of slice `slice` of the
  // owning shard (the whole slice when it is an all-rows slice). Slices
  // at or under the grain stay one morsel, so small windows keep the
  // exact invocation pattern of the pre-morsel executor.
  struct Morsel {
    uint32_t slice = 0;
    uint32_t begin = 0;
    uint32_t end = 0;
  };
  static constexpr uint32_t kMorselGrain = 256;

  // Per-shard window state. `token` is the shard's execution right: the
  // holder may run exactly one morsel (and, for the last one, finish the
  // shard) before releasing. All plain fields are token-protected — the
  // acquire exchange that takes the token synchronizes with the release
  // store that freed it, so hand-offs between workers carry the shard's
  // executor state with them. `done` short-circuits thieves without
  // touching the token line.
  struct ShardRun {
    std::vector<Morsel> morsels;          // built by the router (pre-handshake)
    std::atomic<bool> token{false};
    std::atomic<bool> done{false};
    size_t next = 0;                      // morsel cursor (token-protected)
    uint64_t begin_ns = 0;                // first morsel start
    Status status = Status::Ok();         // first error (token-protected)
  };

  size_t ShardOf(Symbol relation, const std::vector<Value>& values) const {
    return scheme_.ShardOf(relation, values, shards_.size());
  }

  ShardSlice& NextSlice(size_t shard_idx) {
    std::vector<ShardSlice>& pool = shard_work_[shard_idx];
    if (shard_work_used_[shard_idx] == pool.size()) pool.emplace_back();
    ShardSlice& slice = pool[shard_work_used_[shard_idx]++];
    slice.rows.clear();
    slice.all = false;
    return slice;
  }

  void WorkerLoop(size_t shard_idx);
  // Single-shard fast path: the whole window, no morsels, no atomics.
  void RunShardWhole(size_t shard_idx);
  // Runs morsels until every morsel of the window has completed,
  // preferring shards per steal_mode() with `home` as this thread's own
  // shard.
  void RunWindowWorker(size_t home);
  // Claims shard `s`'s token and runs one morsel; finishes the shard
  // (status, spans, eager publish) after its last morsel. Returns false
  // when the token was busy or the shard had no morsel left.
  bool TryRunShard(size_t s, size_t home);
  Status RunMorsel(size_t s, const Morsel& morsel);
  // Token must be held: records the shard apply span and, when
  // publication is on, freezes the root sub-snapshot.
  void FinishShard(size_t s, ShardRun& run);
  void FreezeShard(size_t s) const;

  PartitionScheme scheme_;
  std::vector<std::unique_ptr<runtime::Executor>> shards_;
  bool native_enabled_ = false;
  Status native_status_ = Status::Ok();

  // ForEachRootMerged scratch (mutable: merge-on-read is logically
  // const). Reused across calls, guarded by merge_mu_; see the method
  // comment.
  mutable std::mutex merge_mu_;
  mutable std::unordered_map<runtime::Key, Numeric, runtime::KeyHash>
      merge_scratch_;
  mutable size_t last_merge_size_ = 0;

  // Published sub-snapshots. subs_[s] is current iff sub_epoch_[s] ==
  // mutation_epoch_. Writers: the worker finishing shard s (under the
  // shard token), the router (epoch carry for untouched shards, before
  // the handshake), and RootSubSnapshots (lazy freeze on a quiescent
  // executor) — all disjoint-by-index or ordered by the pool handshake.
  // Mutable: lazy freezing is logically const, like the merge scratch.
  uint64_t mutation_epoch_ = 1;
  mutable std::vector<runtime::FrozenViewPtr> subs_;
  mutable std::vector<uint64_t> sub_epoch_;
  bool publish_enabled_ = false;

  StealMode steal_mode_ = StealMode::kAuto;
  obs::Counter morsels_run_;
  obs::Counter morsels_stolen_;

  // Stage-span histograms (atomic buckets: shard workers record
  // concurrently; merge records under merge_mu_ but reads race freely).
  obs::Histogram apply_ns_;
  mutable obs::Histogram merge_ns_;

  // Per-window trace target. Written by the batch owner before the
  // generation handshake, read by workers after it (the mu_ acquire
  // gives the happens-before), so plain fields are TSan-clean.
  obs::TraceContext trace_ctx_;

  // Worker pool state: workers_[i] serves shard i + 1 (shard 0 runs on
  // the calling thread), guarded by mu_. A batch publishes shard_work_
  // and the per-shard morsel lists, bumps generation_, and waits for
  // pending_ workers to drain; within the window the workers coordinate
  // lock-free through unclaimed_ and the shard tokens.
  std::vector<std::vector<ShardSlice>> shard_work_;
  std::vector<size_t> shard_work_used_;     // live slices per shard
  std::vector<ShardSlice*> route_scratch_;  // per-delta open slice per shard
  std::vector<std::unique_ptr<ShardRun>> runs_;
  std::atomic<size_t> unclaimed_{0};        // window morsels not yet completed
  Status shard0_status_ = Status::Ok();     // single-shard fast path
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;
  size_t pending_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace exec
}  // namespace ringdb

#endif  // RINGDB_EXEC_SHARDED_EXECUTOR_H_
