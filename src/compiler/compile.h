// The recursive incremental-view-maintenance compiler (§1.1, §7, Ex. 1.3).
//
// Compile() turns the query Sum_[group_vars](body) into a TriggerProgram:
//
//  1. The query becomes the root materialized view m0[group_vars].
//  2. For every event ±R, the delta of each view's definition is expanded
//     into polynomial normal form (§5).
//  3. Per monomial, assignments and equalities against update parameters
//     are *consumed* as bindings (substituted through the monomial), so
//     parameters flow into relation atoms and view keys.
//  4. The remaining database-dependent factors are factorized into
//     connected components (linked by shared aggregated variables); each
//     component becomes an auxiliary view keyed by the parameters and
//     group variables it mentions (Ex. 1.3's (ΔQ)1/(ΔQ)2 decomposition),
//     unified across the hierarchy by canonical fingerprint (CSE).
//  5. Auxiliary views are compiled recursively; Theorem 6.4 guarantees
//     strictly decreasing degree, so recursion terminates at views whose
//     deltas are database-free (pure functions of the update).
//
// The engine starts from the empty database, so every view entry starts
// at 0 and is maintained purely incrementally (footnote 2 of the paper).
//
// Unsupported (returns kUnimplemented): assignments whose source is not
// reducible to a parameter/constant at trigger time, and non-simple
// conditions (nested aggregates in comparisons) — the delta rewriter
// handles them, but they would require re-evaluation at trigger time,
// which NC0C forbids; route such queries to the classical baseline.

#ifndef RINGDB_COMPILER_COMPILE_H_
#define RINGDB_COMPILER_COMPILE_H_

#include <vector>

#include "agca/ast.h"
#include "compiler/ir.h"
#include "ring/database.h"
#include "util/status.h"

namespace ringdb {
namespace compiler {

struct CompiledQuery {
  TriggerProgram program;
  // root_key_order[i] = key column of the root view holding the i-th
  // requested group variable (view keys are stored in canonical order).
  std::vector<size_t> root_key_order;
};

StatusOr<CompiledQuery> Compile(const ring::Catalog& catalog,
                                std::vector<Symbol> group_vars,
                                const agca::ExprPtr& body);

}  // namespace compiler
}  // namespace ringdb

#endif  // RINGDB_COMPILER_COMPILE_H_
