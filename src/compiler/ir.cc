#include "compiler/ir.h"

#include <sstream>

#include "util/check.h"

namespace ringdb {
namespace compiler {

std::string KeyRef::ToString() const {
  switch (kind_) {
    case Kind::kParam: return "@p" + std::to_string(param_index_);
    case Kind::kLoopVar: return loop_var_.str();
    case Kind::kConst:
      return const_.is_string() ? "'" + const_.ToString() + "'"
                                : const_.ToString();
  }
  return "?";
}

TExprPtr TExpr::Const(Value v) {
  auto e = New();
  e->kind_ = Kind::kConst;
  e->const_ = std::move(v);
  return e;
}

TExprPtr TExpr::Param(size_t index) {
  auto e = New();
  e->kind_ = Kind::kParam;
  e->param_index_ = index;
  return e;
}

TExprPtr TExpr::LoopVar(Symbol v) {
  auto e = New();
  e->kind_ = Kind::kLoopVar;
  e->loop_var_ = v;
  return e;
}

TExprPtr TExpr::ViewLookup(int view_id, std::vector<KeyRef> keys) {
  auto e = New();
  e->kind_ = Kind::kViewLookup;
  e->view_id_ = view_id;
  e->keys_ = std::move(keys);
  return e;
}

TExprPtr TExpr::Add(std::vector<TExprPtr> children) {
  RINGDB_CHECK(!children.empty());
  if (children.size() == 1) return children[0];
  auto e = New();
  e->kind_ = Kind::kAdd;
  e->children_ = std::move(children);
  return e;
}

TExprPtr TExpr::Mul(std::vector<TExprPtr> children) {
  RINGDB_CHECK(!children.empty());
  if (children.size() == 1) return children[0];
  auto e = New();
  e->kind_ = Kind::kMul;
  e->children_ = std::move(children);
  return e;
}

TExprPtr TExpr::Cmp(agca::CmpOp op, TExprPtr l, TExprPtr r) {
  auto e = New();
  e->kind_ = Kind::kCmp;
  e->cmp_op_ = op;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

size_t TExpr::OpCount() const {
  switch (kind_) {
    case Kind::kConst:
    case Kind::kParam:
    case Kind::kLoopVar:
    case Kind::kViewLookup:
      return 0;
    case Kind::kAdd:
    case Kind::kMul: {
      size_t n = children_.size() - 1;
      for (const auto& c : children_) n += c->OpCount();
      return n;
    }
    case Kind::kCmp:
      return 1 + children_[0]->OpCount() + children_[1]->OpCount();
  }
  return 0;
}

std::string TExpr::ToString() const {
  std::ostringstream out;
  switch (kind_) {
    case Kind::kConst:
      out << (const_.is_string() ? "'" + const_.ToString() + "'"
                                 : const_.ToString());
      break;
    case Kind::kParam:
      out << "@p" << param_index_;
      break;
    case Kind::kLoopVar:
      out << loop_var_.str();
      break;
    case Kind::kViewLookup: {
      out << 'm' << view_id_ << '[';
      for (size_t i = 0; i < keys_.size(); ++i) {
        if (i) out << ", ";
        out << keys_[i].ToString();
      }
      out << ']';
      break;
    }
    case Kind::kAdd:
    case Kind::kMul: {
      out << '(';
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i) out << (kind_ == Kind::kAdd ? " + " : " * ");
        out << children_[i]->ToString();
      }
      out << ')';
      break;
    }
    case Kind::kCmp:
      out << '(' << children_[0]->ToString() << ' '
          << agca::CmpOpToString(cmp_op_) << ' '
          << children_[1]->ToString() << ')';
      break;
  }
  return out.str();
}

std::string LoopSpec::ToString() const {
  std::ostringstream out;
  out << "for m" << view_id << '[';
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (i) out << ", ";
    out << pattern[i].ToString();
  }
  out << ']';
  return out.str();
}

std::string Statement::ToString() const {
  std::ostringstream out;
  for (const LoopSpec& loop : loops) out << loop.ToString() << ": ";
  out << 'm' << target_view << '[';
  for (size_t i = 0; i < target_key.size(); ++i) {
    if (i) out << ", ";
    out << target_key[i].ToString();
  }
  out << "] += " << rhs->ToString();
  return out.str();
}

std::string Trigger::ToString() const {
  std::ostringstream out;
  out << "on " << (sign == ring::Update::Sign::kInsert ? '+' : '-')
      << relation.str() << ":\n";
  for (const Statement& s : statements) out << "  " << s.ToString() << '\n';
  return out.str();
}

std::string ViewDef::ToString() const {
  std::ostringstream out;
  out << name << '[';
  for (size_t i = 0; i < key_vars.size(); ++i) {
    if (i) out << ", ";
    out << key_vars[i].str();
  }
  out << "] (deg " << degree << (lazy_init ? ", lazy" : "") << ") := "
      << definition->ToString();
  return out.str();
}

std::string TriggerProgram::ToString() const {
  std::ostringstream out;
  out << "views:\n";
  for (const ViewDef& v : views) out << "  " << v.ToString() << '\n';
  out << "triggers:\n";
  for (const Trigger& t : triggers) out << t.ToString();
  return out.str();
}

}  // namespace compiler
}  // namespace ringdb
