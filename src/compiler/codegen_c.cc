#include "compiler/codegen_c.h"

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "compiler/lower.h"
#include "util/check.h"

namespace ringdb {
namespace compiler {

namespace {

namespace lw = lower;

// The module-side copy of runtime/native_abi.h plus the scalar helpers
// every statement body uses. The struct definitions MUST stay textually
// equivalent to native_abi.h; rdb_abi_version/rdb_abi_layout (emitted at
// the tail) let the loader verify that at dlopen time instead of
// corrupting memory at run time.
constexpr const char kPreamble[] = R"(#include <stddef.h>
#include <stdint.h>
#include <string.h>

typedef struct RdbVal {
  int64_t i;
  double d;
  const char* s;
  uint64_t slen;
  uint8_t kind; /* 0 int, 1 double, 2 string */
} RdbVal;

typedef struct RdbNum {
  int64_t i;
  double d;
  uint8_t is_int;
} RdbNum;

typedef void (*RdbLoopFn)(void* env, const RdbVal* key, RdbNum mult);

typedef struct RdbHostApi {
  uint32_t abi_version;
  RdbNum (*probe)(void* ctx, int32_t view_id, const RdbVal* key,
                  uint32_t n);
  void (*foreach)(void* ctx, int32_t view_id, RdbLoopFn fn, void* env);
  void (*foreach_matching)(void* ctx, int32_t view_id, int32_t index_id,
                           const RdbVal* subkey, uint32_t n, RdbLoopFn fn,
                           void* env);
  void (*emit)(void* ctx, const RdbVal* key, uint32_t n, RdbNum value);
  void (*add)(void* ctx, int32_t view_id, const RdbVal* key, uint32_t n,
              RdbNum delta);
  void (*fail)(void* ctx, const char* msg);
  void (*add_span)(void* ctx, int32_t view_id, const RdbVal* keys,
                   const RdbNum* deltas, uint32_t count, uint32_t arity);
} RdbHostApi;

typedef struct RdbColWin {
  const RdbVal* const* cols;
  const uint32_t* rows;
  const RdbNum* scales;
  uint32_t n;
  uint32_t arity;
} RdbColWin;

static RdbNum rdb_int(int64_t v) {
  RdbNum n; n.i = v; n.d = 0.0; n.is_int = 1; return n;
}
static RdbNum rdb_dbl(double v) {
  RdbNum n; n.i = 0; n.d = v; n.is_int = 0; return n;
}
static double rdb_f(RdbNum a) { return a.is_int ? (double)a.i : a.d; }
static int rdb_is_zero(RdbNum a) { return a.is_int ? a.i == 0 : a.d == 0.0; }
static int rdb_is_one(RdbNum a) { return a.is_int ? a.i == 1 : a.d == 1.0; }

/* Value -> scalar-ring embedding; strings cannot enter arithmetic
 * (mirrors Value::ToNumeric + the interpreter's RINGDB_CHECK). */
static RdbNum rdb_num(const RdbHostApi* api, void* ctx, RdbVal v) {
  if (v.kind == 0) return rdb_int(v.i);
  if (v.kind == 1) return rdb_dbl(v.d);
  api->fail(ctx, "string value used in arithmetic");
  return rdb_int(0);
}

/* int64 add/mul promote to double instead of wrapping on overflow
 * (util/numeric.h contract). */
static RdbNum rdb_add(RdbNum a, RdbNum b) {
  if (a.is_int && b.is_int) {
    int64_t r;
    if (!__builtin_add_overflow(a.i, b.i, &r)) return rdb_int(r);
    return rdb_dbl((double)a.i + (double)b.i);
  }
  return rdb_dbl(rdb_f(a) + rdb_f(b));
}
static RdbNum rdb_mul(RdbNum a, RdbNum b) {
  if (a.is_int && b.is_int) {
    int64_t r;
    if (!__builtin_mul_overflow(a.i, b.i, &r)) return rdb_int(r);
    return rdb_dbl((double)a.i * (double)b.i);
  }
  return rdb_dbl(rdb_f(a) * rdb_f(b));
}

/* Kind-sensitive Value equality: int64(3) != double(3.0) != "3". */
static int rdb_val_eq(RdbVal a, RdbVal b) {
  if (a.kind != b.kind) return 0;
  if (a.kind == 0) return a.i == b.i;
  if (a.kind == 1) return a.d == b.d;
  return a.slen == b.slen && memcmp(a.s, b.s, (size_t)a.slen) == 0;
}
/* Value equality against a computed scalar materialized as Value(n)
 * (int kind while exact, double kind otherwise). */
static int rdb_val_num_eq(RdbVal a, RdbNum b) {
  if (b.is_int) return a.kind == 0 && a.i == b.i;
  return a.kind == 1 && a.d == b.d;
}
static int rdb_num_num_eq(RdbNum a, RdbNum b) {
  if (a.is_int != b.is_int) return 0;
  return a.is_int ? a.i == b.i : a.d == b.d;
}
/* Numeric ordering: exact on int pairs, double otherwise (3 < 3.5). */
static int rdb_lt(RdbNum a, RdbNum b) {
  if (a.is_int && b.is_int) return a.i < b.i;
  return rdb_f(a) < rdb_f(b);
}
static int rdb_le(RdbNum a, RdbNum b) {
  if (a.is_int && b.is_int) return a.i <= b.i;
  return rdb_f(a) <= rdb_f(b);
}
)";

constexpr const char kTail[] = R"(
/* Loader handshake: layout checksum over this translation unit's own
 * struct copies; must equal runtime::RdbAbiLayout() on the host side. */
const int32_t rdb_abi_version = 3;
const uint64_t rdb_abi_layout =
    (uint64_t)sizeof(RdbVal) * 1000000u +
    (uint64_t)offsetof(RdbVal, kind) * 10000u +
    (uint64_t)sizeof(RdbNum) * 100u + (uint64_t)offsetof(RdbNum, is_int);
)";

// Statements that touch lazy domain maintenance are interpreted, not
// emitted: slice enumeration and first-touch initialization read
// executor-private state (the slice sets and the base database) that the
// C ABI deliberately does not expose.
bool Emittable(const lw::StmtProgram& sp) {
  if (sp.target_lazy) return false;
  for (const lw::LoopProgram& lp : sp.loops) {
    if (lp.slice_domain || lp.lazy_driver) return false;
  }
  for (const lw::ProbePlan& p : sp.probes) {
    if (p.lazy) return false;
  }
  return true;
}

std::string CComment(std::string s) {
  // Comment bodies come from disassembly/user strings; break any "*/".
  for (size_t i = 0; i + 1 < s.size(); ++i) {
    if (s[i] == '*' && s[i + 1] == '/') s[i + 1] = ' ';
  }
  return s;
}

std::string CInt(int64_t v) {
  if (v == INT64_MIN) return "(-9223372036854775807 - 1)";
  return std::to_string(v);
}

std::string CDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string CStringLit(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (u < 0x20 || u >= 0x7f) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\%03o", u);
      out += buf;
    } else {
      out += c;
    }
  }
  return out + "\"";
}

// A positional RdbVal initializer {i, d, s, slen, kind}.
std::string CValInit(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kInt:
      return "{" + CInt(v.AsInt()) + ", 0.0, 0, 0, 0}";
    case Value::Kind::kDouble:
      return "{0, " + CDouble(v.AsDouble()) + ", 0, 0, 1}";
    case Value::Kind::kString:
      return "{0, 0.0, " + CStringLit(v.AsString()) + ", " +
             std::to_string(v.AsString().size()) + ", 2}";
  }
  RINGDB_CHECK(false);
  return "{0, 0.0, 0, 0, 0}";
}

// Emits the full function set of one lowered statement: a shared constant
// pool and environment struct, then one {body, loop callbacks, entry}
// chain per rhs variant. The structure mirrors the interpreter exactly —
// RunLoops becomes the callback chain, EvalRhs becomes the straight-line
// body — so results (including evaluation order over doubles) agree.
// Static cost model for one rhs variant: a native statement pays an
// ABI-crossing conversion per enumerated loop entry (key values
// marshalled to RdbVal, callback through a function pointer), and buys
// back the interpreter's opcode dispatch. A loop whose rhs is a single
// load — the strength-reduced grouped join forwarding the driver's
// multiplicity — is already a bind-and-copy loop in the interpreter with
// nothing left to buy back; measured on the zipf revenue stream, running
// it natively LOSES ~7%. Loop-less statements (pure arithmetic, no
// per-entry tax) and loops with real rhs work win.
//
// Since PR 6 the verdict is a *preference*, not an emission gate: every
// emittable variant is compiled, and the runtime's profile-guided
// selection (runtime/compiled_executor.h) starts from this preference,
// then alternates backends during a warmup window and locks in whichever
// one measures faster on the live workload.
bool WorthNative(const lw::StmtProgram& sp, const lw::RhsProgram& rhs) {
  return sp.loops.empty() || rhs.ops.size() > 1;
}

// Rows buffered by a columnar window before flushing through
// api->add_span (flattened keys + parallel scaled deltas). 128 keeps the
// key chunk a few KB of stack while amortizing the host's up-front
// hash-and-prefetch pipeline over enough rows to hide probe latency.
constexpr uint32_t kWindowChunk = 128;

// True when the statement's rhs cannot read its own target view (no loop
// drives it, no probe looks it up): emissions may then apply in place
// (api->add) instead of through the host's deferred buffer, because no
// later rhs evaluation of this statement run can observe them.
bool CanEmitDirect(const lw::StmtProgram& sp) {
  for (const lw::LoopProgram& lp : sp.loops) {
    if (lp.view_id == sp.target_view) return false;
  }
  for (const lw::ProbePlan& p : sp.probes) {
    if (p.view_id == sp.target_view) return false;
  }
  return true;
}

class StmtEmitter {
 public:
  StmtEmitter(const lw::StmtProgram& sp, std::string base,
              std::ostringstream* out)
      : sp_(sp), direct_(CanEmitDirect(sp)), base_(std::move(base)),
        out_(*out) {}

  void EmitShared() {
    out_ << "/* " << CComment(sp_.ToString()) << " */\n";
    if (!sp_.const_pool.empty()) {
      out_ << "static const RdbVal " << base_ << "_c[] = {\n";
      for (const Value& v : sp_.const_pool) {
        out_ << "    " << CValInit(v) << ",\n";
      }
      out_ << "};\n";
    }
    out_ << "typedef struct {\n"
         << "  const RdbHostApi* api;\n"
         << "  void* ctx;\n"
         << "  const RdbVal* p;\n"
         << "  RdbNum sc;\n"
         << "  RdbVal f[" << std::max<int>(sp_.frame_size, 1) << "];\n"
         << "  RdbNum lv[" << std::max<size_t>(sp_.loops.size(), 1)
         << "];\n"
         << "  RdbVal* kb;\n"  // window emission chunk (window variants
         << "  RdbNum* vb;\n"  // only; per-firing entry points leave
         << "  uint32_t nb;\n"  // these unset)
         << "} " << base_ << "_env;\n";
  }

  // One rhs variant: `suffix` is "" (plain) or "_g" (grouped).
  void EmitVariant(const std::string& suffix, const lw::RhsProgram& rhs) {
    const std::string name = base_ + suffix;
    EmitBody(name, rhs);
    for (size_t i = sp_.loops.size(); i-- > 0;) {
      EmitLoopCallback(name, i);
    }
    out_ << "void " << name
         << "(const RdbHostApi* api, void* ctx, const RdbVal* p, "
            "RdbNum scale) {\n"
         << "  " << base_ << "_env e;\n"
         << "  e.api = api;\n  e.ctx = ctx;\n  e.p = p;\n"
         << "  e.sc = scale;\n"
         << "  " << base_ << "_env* E = &e;\n";
    EmitNext(name, 0, "  ");
    out_ << "}\n\n";
  }

  // The columnar-window entry point `<base><wsuffix>` (RdbColStmtFn) for
  // one rhs variant: all window firings in one native call, params
  // indexed straight out of the mirrored columns. Loop-less statements
  // inline the rhs over restrict-qualified column pointers — a straight-
  // line loop nest cc -O2 can vectorize. Statements with loops get their
  // own callback chain whose body pushes emissions into the window's
  // chunk instead of one api->add per enumerated entry. Either way,
  // scaled emissions collect in chunk buffers and flush through
  // api->add_span, which hashes whole chunks up front; deferring the
  // adds past firing boundaries is sound exactly because windows are
  // only emitted for direct-add statements — the rhs provably never
  // reads the target view, so no firing in the window can observe
  // another's emissions early or late. (Emit-buffered self-loop
  // statements need a host flush per firing, hence no window.)
  void EmitWindowVariant(const std::string& wsuffix,
                         const lw::RhsProgram& rhs) {
    RINGDB_CHECK(direct_);
    const std::string name = base_ + wsuffix;
    if (sp_.loops.empty()) {
      EmitWindowLoopless(name, rhs);
      return;
    }
    const uint32_t key_size = sp_.target_key.size;
    const std::string ks = std::to_string(key_size);
    EmitWindowBody(name, rhs);
    for (size_t i = sp_.loops.size(); i-- > 0;) {
      EmitLoopCallback(name, i);
    }
    out_ << "void " << name
         << "(const RdbHostApi* api, void* ctx, const RdbColWin* win) {\n"
         << "  " << base_ << "_env e;\n"
         << "  e.api = api;\n  e.ctx = ctx;\n"
         << "  RdbVal pbuf[" << std::max<int>(sp_.param_count, 1)
         << "];\n"
         << "  e.p = pbuf;\n"
         << "  RdbVal kb[" << kWindowChunk * std::max<uint32_t>(key_size, 1)
         << "];\n"
         << "  RdbNum vb[" << kWindowChunk << "];\n"
         << "  e.kb = kb;\n  e.vb = vb;\n  e.nb = 0;\n";
    for (uint16_t c : sp_.cols_read) {
      out_ << "  const RdbVal* restrict c" << c << " = win->cols[" << c
           << "];\n";
    }
    out_ << "  const uint32_t* restrict rows = win->rows;\n"
         << "  const RdbNum* restrict scales = win->scales;\n"
         << "  " << base_ << "_env* E = &e;\n"
         << "  for (uint32_t i = 0; i < win->n; ++i) {\n"
         << "    const uint32_t r = rows[i];\n";
    if (sp_.cols_read.empty()) out_ << "    (void)r;\n";
    for (uint16_t c : sp_.cols_read) {
      out_ << "    pbuf[" << c << "] = c" << c << "[r];\n";
    }
    out_ << "    e.sc = scales[i];\n";
    EmitNext(name, 0, "    ");
    out_ << "  }\n"
         << "  if (e.nb) api->add_span(ctx, " << sp_.target_view
         << ", kb, vb, e.nb, " << ks << ");\n"
         << "}\n\n";
  }

 private:
  // In column mode (the loop-less window variant) params read straight
  // from the restrict-qualified column pointers at the current row and
  // host calls use the entry point's own api/ctx — there is no env.
  std::string Ref(const lw::SlotRef& r) const {
    switch (r.source) {
      case lw::SlotRef::Source::kParam:
        if (col_) return "c" + std::to_string(r.index) + "[r]";
        return "E->p[" + std::to_string(r.index) + "]";
      case lw::SlotRef::Source::kConst:
        return base_ + "_c[" + std::to_string(r.index) + "]";
      case lw::SlotRef::Source::kFrame:
        return "E->f[" + std::to_string(r.index) + "]";
    }
    RINGDB_CHECK(false);
    return "";
  }

  std::string Api() const { return col_ ? "api" : "E->api"; }
  std::string Ctx() const { return col_ ? "ctx" : "E->ctx"; }

  // Materializes a KeyTemplate into stack buffer `buf`. Clamped to one
  // element for empty templates (a scalar-view probe): zero-length
  // arrays are a GNU extension a strict RINGDB_CC would reject.
  void EmitKeyBuffer(const std::string& buf, lw::KeyTemplate t,
                     const std::string& indent) {
    out_ << indent << "RdbVal " << buf << "["
         << std::max<int>(t.size, 1) << "];\n";
    for (size_t i = 0; i < t.size; ++i) {
      out_ << indent << buf << "[" << i
           << "] = " << Ref(sp_.slot_refs[t.first + i]) << ";\n";
    }
  }

  // Starts loop `i` (or calls the body past the last loop).
  void EmitNext(const std::string& name, size_t i,
                const std::string& indent) {
    if (i == sp_.loops.size()) {
      out_ << indent << name << "_body(E);\n";
      return;
    }
    const lw::LoopProgram& lp = sp_.loops[i];
    const std::string cb = name + "_l" + std::to_string(i);
    if (lp.index_id >= 0) {
      const std::string sk = "sk" + std::to_string(i);
      EmitKeyBuffer(sk, lp.probe, indent);
      out_ << indent << "E->api->foreach_matching(E->ctx, " << lp.view_id
           << ", " << lp.index_id << ", " << sk << ", " << lp.probe.size
           << ", " << cb << ", (void*)E);\n";
    } else {
      out_ << indent << "E->api->foreach(E->ctx, " << lp.view_id << ", "
           << cb << ", (void*)E);\n";
    }
  }

  void EmitLoopCallback(const std::string& name, size_t i) {
    const lw::LoopProgram& lp = sp_.loops[i];
    out_ << "static void " << name << "_l" << i
         << "(void* ve, const RdbVal* k, RdbNum m) {\n"
         << "  " << base_ << "_env* E = (" << base_ << "_env*)ve;\n";
    for (const lw::LoopBind& b : lp.binds) {
      if (b.is_filter) {
        // Re-bound position: must agree with the earlier binding.
        out_ << "  if (!rdb_val_eq(E->f[" << b.frame << "], k[" << b.pos
             << "])) return;\n";
      } else {
        out_ << "  E->f[" << b.frame << "] = k[" << b.pos << "];\n";
      }
    }
    out_ << "  E->lv[" << i << "] = m;\n";
    EmitNext(name, i + 1, "  ");
    out_ << "}\n";
  }

  // One rhs operand tracked while unrolling the postfix program: either
  // an RdbVal lvalue (leaf) or an RdbNum expression (computed).
  struct CV {
    bool is_num;
    std::string expr;
  };

  std::string AsNum(const CV& v) const {
    if (v.is_num) return v.expr;
    return "rdb_num(" + Api() + ", " + Ctx() + ", " + v.expr + ")";
  }

  // Unrolls one postfix rhs into straight-line C at `indent`; returns the
  // final value as a CV. Shared by the per-firing body functions and the
  // loop-less columnar window (which runs it in column mode inside the
  // row loop).
  CV EmitRhs(const lw::RhsProgram& rhs, const std::string& indent) {
    std::vector<CV> stk;
    auto temp = [&](const std::string& expr) {
      const std::string t = "t" + std::to_string(tmp_++);
      out_ << indent << "RdbNum " << t << " = " << expr << ";\n";
      stk.push_back(CV{true, t});
    };
    for (const lw::Op& op : rhs.ops) {
      switch (op.code) {
        case lw::OpCode::kLoadConst:
          stk.push_back(
              CV{false, base_ + "_c[" + std::to_string(op.a) + "]"});
          break;
        case lw::OpCode::kLoadParam:
          stk.push_back(CV{
              false, Ref(lw::SlotRef{lw::SlotRef::Source::kParam,
                                     static_cast<uint16_t>(op.a)})});
          break;
        case lw::OpCode::kLoadFrame:
          stk.push_back(CV{false, "E->f[" + std::to_string(op.a) + "]"});
          break;
        case lw::OpCode::kLoadLoopValue:
          // The loop driver already enumerated this entry; forward its
          // multiplicity instead of re-probing (compiler/lower.h).
          stk.push_back(CV{true, "E->lv[" + std::to_string(op.a) + "]"});
          break;
        case lw::OpCode::kProbeView: {
          const lw::ProbePlan& plan = sp_.probes[op.a];
          const std::string pk = "pk" + std::to_string(tmp_);
          EmitKeyBuffer(pk, plan.key, indent);
          temp(Api() + "->probe(" + Ctx() + ", " +
               std::to_string(plan.view_id) + ", " + pk + ", " +
               std::to_string(plan.key.size) + ")");
          break;
        }
        case lw::OpCode::kAdd:
        case lw::OpCode::kMul: {
          const char* fn = op.code == lw::OpCode::kAdd ? "rdb_add"
                                                       : "rdb_mul";
          const size_t n = op.a;
          // Left fold, matching the interpreter's accumulation order
          // (double rounding is order-sensitive).
          std::string expr = AsNum(stk[stk.size() - n]);
          for (size_t i = 1; i < n; ++i) {
            expr = std::string(fn) + "(" + expr + ", " +
                   AsNum(stk[stk.size() - n + i]) + ")";
          }
          stk.resize(stk.size() - n);
          temp(expr);
          break;
        }
        case lw::OpCode::kCmp: {
          const CV r = stk.back();
          stk.pop_back();
          const CV l = stk.back();
          stk.pop_back();
          const auto cop = static_cast<agca::CmpOp>(op.aux);
          std::string cond;
          if (cop == agca::CmpOp::kEq || cop == agca::CmpOp::kNe) {
            // Kind-sensitive Value equality; computed operands
            // materialize as Value(num) — exactly EvalRhs's kCmp.
            if (!l.is_num && !r.is_num) {
              cond = "rdb_val_eq(" + l.expr + ", " + r.expr + ")";
            } else if (!l.is_num) {
              cond = "rdb_val_num_eq(" + l.expr + ", " + r.expr + ")";
            } else if (!r.is_num) {
              cond = "rdb_val_num_eq(" + r.expr + ", " + l.expr + ")";
            } else {
              cond = "rdb_num_num_eq(" + l.expr + ", " + r.expr + ")";
            }
            if (cop == agca::CmpOp::kNe) cond = "!" + cond;
          } else {
            const std::string ln = AsNum(l);
            const std::string rn = AsNum(r);
            switch (cop) {
              case agca::CmpOp::kLt:
                cond = "rdb_lt(" + ln + ", " + rn + ")";
                break;
              case agca::CmpOp::kLe:
                cond = "rdb_le(" + ln + ", " + rn + ")";
                break;
              case agca::CmpOp::kGt:
                cond = "rdb_lt(" + rn + ", " + ln + ")";
                break;
              case agca::CmpOp::kGe:
                cond = "rdb_le(" + rn + ", " + ln + ")";
                break;
              default:
                RINGDB_CHECK(false);
            }
          }
          temp("rdb_int(" + cond + " ? 1 : 0)");
          break;
        }
      }
    }
    RINGDB_CHECK_EQ(stk.size(), 1u);
    return stk[0];
  }

  // Shape of the loop-less window variant: one tight row loop, no env
  // struct, no callbacks, no per-firing host call. Emissions collect in
  // local chunk buffers (flattened keys + parallel scaled deltas) and
  // flush through api->add_span, which hashes the whole chunk up front.
  void EmitWindowLoopless(const std::string& name,
                          const lw::RhsProgram& rhs) {
    const uint32_t key_size = sp_.target_key.size;
    const std::string ks = std::to_string(key_size);
    out_ << "void " << name
         << "(const RdbHostApi* api, void* ctx, const RdbColWin* win) {\n";
    for (uint16_t c : sp_.cols_read) {
      out_ << "  const RdbVal* restrict c" << c << " = win->cols[" << c
           << "];\n";
    }
    out_ << "  const uint32_t* restrict rows = win->rows;\n"
         << "  const RdbNum* restrict scales = win->scales;\n"
         << "  enum { CHUNK = 128 };\n"
         << "  RdbVal kb[CHUNK * " << std::max<uint32_t>(key_size, 1)
         << "];\n"
         << "  RdbNum vb[CHUNK];\n"
         << "  uint32_t nb = 0;\n"
         << "  for (uint32_t i = 0; i < win->n; ++i) {\n"
         << "    const uint32_t r = rows[i];\n";
    if (sp_.cols_read.empty()) out_ << "    (void)r;\n";
    col_ = true;
    tmp_ = 0;
    const CV result = EmitRhs(rhs, "    ");
    out_ << "    RdbNum v = " << AsNum(result) << ";\n"
         << "    if (rdb_is_zero(v)) continue;\n"
         << "    if (!rdb_is_one(scales[i])) v = rdb_mul(v, scales[i]);\n";
    for (uint32_t j = 0; j < key_size; ++j) {
      out_ << "    kb[nb * " << ks << " + " << j
           << "] = " << Ref(sp_.slot_refs[sp_.target_key.first + j])
           << ";\n";
    }
    col_ = false;
    out_ << "    vb[nb] = v;\n"
         << "    if (++nb == CHUNK) {\n"
         << "      api->add_span(ctx, " << sp_.target_view
         << ", kb, vb, nb, " << ks << ");\n"
         << "      nb = 0;\n"
         << "    }\n"
         << "  }\n"
         << "  if (nb) api->add_span(ctx, " << sp_.target_view
         << ", kb, vb, nb, " << ks << ");\n"
         << "}\n\n";
  }

  // The body of a loop-ful window variant: the same straight-line rhs as
  // the per-firing body (same evaluation order, so results agree to the
  // last double bit), but the emission folds the scale in and pushes
  // into the env's window chunk — the entry point flushes the tail.
  void EmitWindowBody(const std::string& name, const lw::RhsProgram& rhs) {
    const uint32_t ks = sp_.target_key.size;
    out_ << "static void " << name << "_body(" << base_ << "_env* E) {\n";
    tmp_ = 0;
    const CV result = EmitRhs(rhs, "  ");
    out_ << "  RdbNum v = " << AsNum(result) << ";\n"
         << "  if (rdb_is_zero(v)) return;\n"
         << "  if (!rdb_is_one(E->sc)) v = rdb_mul(v, E->sc);\n";
    if (ks > 0) {
      out_ << "  RdbVal* kk = E->kb + (size_t)E->nb * " << ks << ";\n";
      for (uint32_t j = 0; j < ks; ++j) {
        out_ << "  kk[" << j
             << "] = " << Ref(sp_.slot_refs[sp_.target_key.first + j])
             << ";\n";
      }
    }
    out_ << "  E->vb[E->nb] = v;\n"
         << "  if (++E->nb == " << kWindowChunk << ") {\n"
         << "    E->api->add_span(E->ctx, " << sp_.target_view
         << ", E->kb, E->vb, E->nb, " << ks << ");\n"
         << "    E->nb = 0;\n"
         << "  }\n"
         << "}\n";
  }

  void EmitBody(const std::string& name, const lw::RhsProgram& rhs) {
    out_ << "static void " << name << "_body(" << base_ << "_env* E) {\n";
    tmp_ = 0;
    const CV result = EmitRhs(rhs, "  ");
    out_ << "  RdbNum v = " << AsNum(result) << ";\n"
         << "  if (rdb_is_zero(v)) return;\n";
    const std::string key =
        sp_.target_key.size > 0 ? "tk" : "0";
    if (sp_.target_key.size > 0) {
      EmitKeyBuffer("tk", sp_.target_key, "  ");
    }
    if (direct_) {
      // Rhs never reads the target: fold the scale in and apply now.
      out_ << "  if (!rdb_is_one(E->sc)) v = rdb_mul(v, E->sc);\n"
           << "  E->api->add(E->ctx, " << sp_.target_view << ", " << key
           << ", " << sp_.target_key.size << ", v);\n";
    } else {
      // Self-loop statement: buffer; the host scales and applies after
      // the loops finish, preserving pre-statement reads.
      out_ << "  E->api->emit(E->ctx, " << key << ", "
           << sp_.target_key.size << ", v);\n";
    }
    out_ << "}\n";
  }

  const lw::StmtProgram& sp_;
  const bool direct_;
  const std::string base_;
  std::ostringstream& out_;
  bool col_ = false;  // see Ref(): loop-less window emission mode
  int tmp_ = 0;       // rhs temporary counter of the function being emitted
};

}  // namespace

CodegenModule GenerateModule(const TriggerProgram& program) {
  std::shared_ptr<const lw::LoweredProgram> lowered = program.lowered;
  if (lowered == nullptr) lowered = lw::Lower(program);

  CodegenModule mod;
  std::ostringstream out;
  out << "/* Native trigger module generated by ringdb "
         "(compiler/codegen_c.cc).\n"
      << " * Views (host-owned; probed through the RdbHostApi):\n";
  for (const ViewDef& v : program.views) {
    out << " *   " << CComment(v.ToString()) << "\n";
  }
  out << " */\n" << kPreamble;

  mod.stmts.resize(program.triggers.size());
  for (size_t t = 0; t < program.triggers.size(); ++t) {
    const Trigger& trigger = program.triggers[t];
    out << "\n/* === trigger "
        << (trigger.sign == ring::Update::Sign::kInsert ? "+" : "-")
        << trigger.relation.str() << " === */\n";
    const std::vector<lw::StmtProgram>& stmts = lowered->stmts[t];
    mod.stmts[t].reserve(stmts.size());
    for (size_t s = 0; s < stmts.size(); ++s) {
      const lw::StmtProgram& sp = stmts[s];
      CodegenStmt cs;
      if (!Emittable(sp)) {
        out << "/* stmt " << s << ": interpreter fallback (lazy domain): "
            << CComment(sp.ToString()) << " */\n";
        mod.stmts[t].push_back(cs);
        continue;
      }
      cs.emitted = true;
      cs.fn = "rdb_t" + std::to_string(t) + "_s" + std::to_string(s);
      cs.prefer_native = WorthNative(sp, sp.rhs);
      if (!cs.prefer_native) {
        out << "/* stmt " << s
            << ": static cost model prefers interpreter "
               "(profile-guided selection decides at run time) */\n";
      }
      StmtEmitter emitter(sp, cs.fn, &out);
      emitter.EmitShared();
      emitter.EmitVariant("", sp.rhs);
      const bool direct = CanEmitDirect(sp);
      if (direct) {
        cs.win_fn = cs.fn + "_w";
        emitter.EmitWindowVariant("_w", sp.rhs);
      }
      if (sp.groupable) {
        cs.grouped_prefer_native = WorthNative(sp, sp.grouped_rhs);
        if (!cs.grouped_prefer_native) {
          out << "/* grouped variant of stmt " << s
              << ": static cost model prefers interpreter */\n";
        }
        if (sp.foldable_params.empty()) {
          // grouped_rhs shares the plain ops; reuse the function(s).
          cs.grouped_fn = cs.fn;
          cs.grouped_win_fn = cs.win_fn;
        } else {
          cs.grouped_fn = cs.fn + "_g";
          emitter.EmitVariant("_g", sp.grouped_rhs);
          if (direct) {
            cs.grouped_win_fn = cs.fn + "_gw";
            emitter.EmitWindowVariant("_gw", sp.grouped_rhs);
          }
        }
      }
      ++mod.emitted_statements;
      mod.stmts[t].push_back(std::move(cs));
    }
  }
  out << kTail;
  mod.source = out.str();
  return mod;
}

std::string GenerateC(const TriggerProgram& program) {
  return GenerateModule(program).source;
}

}  // namespace compiler
}  // namespace ringdb
