// Lowering pass: flattens compiled NC0C statements (compiler/ir.h) into
// register-based bytecode programs the trigger interpreter executes
// without touching the TExpr tree.
//
// The tree-walking executor paid a per-firing tax that had nothing to do
// with the paper's constant: every loop variable went through an
// unordered_map<Symbol, Value>, every rhs node was a shared_ptr
// indirection, and every emission heap-allocated a fresh Key. Lowering
// resolves all of that at compile time:
//
//  - Loop variables get *frame slots* (dense indices into a Value array
//    sized per statement). Loop drivers copy bindings straight from the
//    enumerated KeyView into slots; re-bindings of an already-bound
//    variable become equality filters. No Symbol ever appears at run time.
//  - Every key the statement builds — index probe subkeys, lazy slice
//    subkeys, view-lookup keys, the target key — becomes a KeyTemplate:
//    a span of SlotRefs (param index / constant-pool index / frame slot)
//    the runtime materializes into reusable scratch buffers.
//  - The rhs becomes a flat postfix Op array over a small register stack
//    (kLoadConst/kLoadParam/kLoadFrame/kProbeView/kAdd/kMul/kCmp). A view
//    lookup whose key pattern is identical to a loop driver's pattern is
//    strength-reduced to kLoadLoopValue: the driver already enumerated
//    that exact entry, so its multiplicity is forwarded for free.
//
// Operation counting is preserved exactly: kAdd/kMul of n operands count
// n-1 ops, kCmp counts one, so the instrumented NC0 benches report the
// same constants as the tree walker did.
//
// The linear opcode stream is also the stepping stone for codegen_c: each
// Op maps 1:1 onto a line of emitted C.

#ifndef RINGDB_COMPILER_LOWER_H_
#define RINGDB_COMPILER_LOWER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "compiler/ir.h"
#include "util/numeric.h"
#include "util/value.h"

namespace ringdb {
namespace compiler {
namespace lower {

// One resolvable key slot: where the runtime fetches the Value from.
struct SlotRef {
  enum class Source : uint8_t { kParam, kConst, kFrame };
  Source source = Source::kConst;
  uint16_t index = 0;  // param position / const-pool index / frame slot
};

// A span of SlotRefs inside StmtProgram::slot_refs.
struct KeyTemplate {
  uint32_t first = 0;
  uint16_t size = 0;
};

enum class OpCode : uint8_t {
  kLoadConst,      // push &const_pool[a]
  kLoadParam,      // push &params[a]
  kLoadFrame,      // push &frame[a]
  kLoadLoopValue,  // push loop a's current driver-entry multiplicity
  kProbeView,      // build probes[a]'s key, probe its view, push Numeric
  kAdd,            // pop a operands, push their sum (a-1 ops)
  kMul,            // pop a operands, push their product (a-1 ops)
  kCmp,            // pop rhs, lhs; push 1/0; aux = agca::CmpOp (1 op)
};

struct Op {
  OpCode code;
  uint8_t aux = 0;
  uint16_t a = 0;
};

// A postfix rhs; executing all ops leaves exactly one stack value.
struct RhsProgram {
  std::vector<Op> ops;
  uint32_t max_stack = 0;
};

// An O(1) view lookup inside an rhs.
struct ProbePlan {
  int view_id = -1;
  KeyTemplate key;  // full key of the probed view
  // Lazy-init target: the probed slice is ensured first, projected from
  // the built key at these positions.
  bool lazy = false;
  std::vector<uint16_t> slice_positions;
};

// One binding action of a loop, in key-position order. Non-filter binds
// copy key[pos] into frame[frame]; filters require frame[frame] ==
// key[pos] (the variable was bound by an earlier loop or an earlier
// position of this one).
struct LoopBind {
  uint16_t pos = 0;
  uint16_t frame = 0;
  bool is_filter = false;
};

struct LoopProgram {
  int view_id = -1;
  // Index over the bound key positions; -1 for a full scan. Ids follow
  // LoweredProgram::view_indexes registration order, which the runtime
  // replays through ViewTable::EnsureIndex.
  int index_id = -1;
  // Slice-domain loop (lazy self maintenance): enumerate the view's
  // initialized slice subkeys; binds[].pos then indexes the slice subkey.
  bool slice_domain = false;
  // Lazy driver, case A: the probed slice must be materialized before
  // enumerating; lazy_slice builds its subkey.
  bool lazy_driver = false;
  KeyTemplate probe;       // subkey over bound positions, position order
  KeyTemplate lazy_slice;  // slice subkey (lazy_driver only)
  std::vector<LoopBind> binds;
};

// A fully lowered statement: for loops[0..n): target[target_key] += rhs.
struct StmtProgram {
  int target_view = -1;
  KeyTemplate target_key;
  bool target_lazy = false;                     // lazy-init target view
  std::vector<uint16_t> target_slice_positions;  // over the built key
  std::vector<LoopProgram> loops;
  RhsProgram rhs;
  // Batch grouping metadata (multiplicity-linear triggers only; see the
  // statement-major batch rule in runtime/interpreter.h). Delta entries
  // agreeing at shape_params share one execution of grouped_rhs (the rhs
  // with foldable bare-param factors removed) scaled by the group's
  // accumulated coefficient.
  bool groupable = false;
  std::vector<uint16_t> shape_params;
  std::vector<uint16_t> foldable_params;
  RhsProgram grouped_rhs;

  uint16_t frame_size = 0;          // loop-variable slots used
  std::vector<SlotRef> slot_refs;   // backing store for all KeyTemplates
  std::vector<Value> const_pool;
  std::vector<ProbePlan> probes;

  // Flat program-wide statement id (trigger-major assignment order),
  // indexing LoweredProgram::num_statements-sized side tables: the
  // runtime's per-statement execution counters (obs layer) and the
  // compiled backend's per-variant profiles key on it.
  uint32_t stmt_id = 0;

  // Column-access metadata for the columnar batch path: the trigger
  // relation's arity (how many params a firing carries) and the sorted
  // distinct param positions this statement actually reads — from key
  // templates (slot_refs) or either rhs opcode stream. Window drivers
  // bind only these columns; the native emitter declares one restrict-
  // qualified column pointer per entry.
  uint16_t param_count = 0;
  std::vector<uint16_t> cols_read;

  std::string ToString() const;  // disassembly (tests, debugging)
};

// Secondary indexes each view must expose, in registration order. The
// runtime replays EnsureIndex over these sets at construction; because
// EnsureIndex deduplicates identically, the returned ids match the
// LoopProgram::index_id values assigned here.
struct ViewIndexes {
  std::vector<std::vector<size_t>> position_sets;
};

struct LoweredProgram {
  // stmts[t][s] lowers program.triggers[t].statements[s].
  std::vector<std::vector<StmtProgram>> stmts;
  std::vector<ViewIndexes> view_indexes;  // parallel to program.views
  // Sizing hints for the runtime's shared scratch state.
  uint16_t max_frame = 0;
  uint32_t max_stack = 0;
  uint32_t max_loop_depth = 0;
  // Total statements across all triggers; StmtProgram::stmt_id ranges
  // over [0, num_statements).
  uint32_t num_statements = 0;
};

// Pure function of the program; the result is immutable and shared by
// every executor built from it (TriggerProgram::lowered).
std::shared_ptr<const LoweredProgram> Lower(const TriggerProgram& program);

}  // namespace lower
}  // namespace compiler
}  // namespace ringdb

#endif  // RINGDB_COMPILER_LOWER_H_
