#include "compiler/compile.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "agca/canonical.h"
#include "agca/degree.h"
#include "agca/polynomial.h"
#include "delta/delta.h"
#include "util/check.h"

namespace ringdb {
namespace compiler {

using agca::Atom;
using agca::CanonicalizeView;
using agca::CmpOp;
using agca::Expr;
using agca::ExprPtr;
using agca::Monomial;

namespace {

// True if e is, after substitution, a trigger-time atom: an update
// parameter or a constant.
bool IsClosedAtom(const ExprPtr& e,
                  const std::unordered_set<Symbol>& params) {
  switch (e->kind()) {
    case Expr::Kind::kConst:
    case Expr::Kind::kValueConst:
      return true;
    case Expr::Kind::kVar:
      return params.contains(e->var());
    default:
      return false;
  }
}

Atom AtomOf(const ExprPtr& e) {
  switch (e->kind()) {
    case Expr::Kind::kConst:
      return Value(e->constant());
    case Expr::Kind::kValueConst:
      return e->value_const();
    case Expr::Kind::kVar:
      return e->var();
    default:
      RINGDB_CHECK(false);
      return Value();
  }
}

ExprPtr AtomToExpr(const Atom& a) {
  if (std::holds_alternative<Symbol>(a)) {
    return Expr::Var(std::get<Symbol>(a));
  }
  return Expr::ValueConst(std::get<Value>(a));
}

// Whether `x` occurs as a Sum group variable anywhere in `e`; binding such
// a variable to a constant cannot be expressed by Substitute, so the
// compiler declines to consume it.
bool UsedAsGroupVar(const Expr& e, Symbol x) {
  switch (e.kind()) {
    case Expr::Kind::kConst:
    case Expr::Kind::kValueConst:
    case Expr::Kind::kVar:
    case Expr::Kind::kRelation:
      return false;
    case Expr::Kind::kAdd:
    case Expr::Kind::kMul:
      for (const auto& c : e.children()) {
        if (UsedAsGroupVar(*c, x)) return true;
      }
      return false;
    case Expr::Kind::kSum:
      for (Symbol g : e.group_vars()) {
        if (g == x) return true;
      }
      return UsedAsGroupVar(*e.child(), x);
    case Expr::Kind::kCmp:
      return UsedAsGroupVar(*e.lhs(), x) || UsedAsGroupVar(*e.rhs(), x);
    case Expr::Kind::kAssign:
      return UsedAsGroupVar(*e.child(), x);
  }
  return false;
}

class CompilerImpl {
 public:
  explicit CompilerImpl(const ring::Catalog& catalog) {
    program_.catalog = catalog;
  }

  StatusOr<CompiledQuery> Run(std::vector<Symbol> group_vars,
                              const ExprPtr& body) {
    for (Symbol v : agca::AllVars(*body)) {
      const std::string& n = v.str();
      if (!n.empty() && (n[0] == '@' || n[0] == '$')) {
        return Status::InvalidArgument(
            "query variable names may not start with '@' or '$': " + n);
      }
    }
    if (!agca::HasSimpleConditionsOnly(*body)) {
      // Theorem 6.4 requires simple conditions; without it deltas do not
      // reduce degree and the view hierarchy would not terminate.
      return Status::Unimplemented(
          "nested aggregates inside comparisons are not NC0C-compilable; "
          "use the classical IVM baseline for this query");
    }
    ViewRef root = GetOrCreateView(group_vars, body);
    while (!worklist_.empty()) {
      int id = worklist_.front();
      worklist_.pop_front();
      RINGDB_RETURN_IF_ERROR(CompileView(id));
    }
    FinalizeTriggers();
    CompiledQuery out;
    program_.root_view = root.id;
    out.program = std::move(program_);
    out.root_key_order = std::move(root.key_order);
    return out;
  }

 private:
  struct ViewRef {
    int id = -1;
    std::vector<size_t> key_order;  // given-key index -> canonical slot
  };

  // Looks up or creates the view Sum_[keys](body); all variables of a
  // newly created view are renamed to canonical "$<i>" symbols so later
  // delta parameters ("@R.col") can never collide with view variables.
  ViewRef GetOrCreateView(const std::vector<Symbol>& keys,
                          const ExprPtr& body) {
    agca::CanonicalView canonical = CanonicalizeView(keys, body);
    ViewRef ref;
    ref.key_order = canonical.key_order;
    auto it = by_fingerprint_.find(canonical.fingerprint);
    if (it != by_fingerprint_.end()) {
      ref.id = it->second;
      return ref;
    }

    // Rename every variable to its canonical name.
    std::unordered_map<Symbol, Atom> rename;
    {
      // Recover canonical ids by re-running canonicalization against a
      // renaming recorder: CanonicalizeView assigns ids by traversal
      // order, which we reproduce by renaming through a fresh counter.
      // Simpler: rename variables in order of first appearance in the
      // same traversal (AllVars is sorted, not traversal-ordered), so we
      // reuse the canonical machinery by renaming then re-canonicalizing;
      // identity of fingerprints is checked below.
      std::vector<Symbol> order = TraversalOrder(keys, body);
      for (size_t i = 0; i < order.size(); ++i) {
        rename.emplace(order[i], Symbol::Intern("$" + std::to_string(i)));
      }
    }
    ExprPtr renamed_body = Substitute(body, rename);
    std::vector<Symbol> canonical_keys(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      auto r = rename.find(keys[i]);
      RINGDB_CHECK(r != rename.end());
      canonical_keys[canonical.key_order[i]] = std::get<Symbol>(r->second);
    }
    // The canonical rename must preserve the fingerprint.
    RINGDB_CHECK(CanonicalizeView(canonical_keys, renamed_body).fingerprint ==
                 canonical.fingerprint);

    ViewDef def;
    def.id = static_cast<int>(program_.views.size());
    def.name = "m" + std::to_string(def.id);
    def.key_vars = canonical_keys;
    def.definition = Expr::Sum(canonical_keys, renamed_body);
    def.degree = agca::Degree(*renamed_body);
    program_.views.push_back(def);
    view_bodies_.push_back(renamed_body);
    by_fingerprint_.emplace(canonical.fingerprint, def.id);
    worklist_.push_back(def.id);
    ref.id = def.id;
    return ref;
  }

  // Variables in first-appearance order of the canonical traversal (body
  // first, then keys), matching agca::CanonicalizeView.
  static std::vector<Symbol> TraversalOrder(const std::vector<Symbol>& keys,
                                            const ExprPtr& body) {
    std::vector<Symbol> order;
    std::unordered_set<Symbol> seen;
    auto visit = [&](Symbol v) {
      if (seen.insert(v).second) order.push_back(v);
    };
    VisitVarsInTraversalOrder(*body, visit);
    for (Symbol k : keys) visit(k);
    return order;
  }

  template <typename F>
  static void VisitVarsInTraversalOrder(const Expr& e, F& visit) {
    switch (e.kind()) {
      case Expr::Kind::kConst:
      case Expr::Kind::kValueConst:
        break;
      case Expr::Kind::kVar:
        visit(e.var());
        break;
      case Expr::Kind::kRelation:
        for (const agca::Term& t : e.args()) {
          if (agca::IsVar(t)) visit(agca::TermVar(t));
        }
        break;
      case Expr::Kind::kAdd:
      case Expr::Kind::kMul:
        for (const auto& c : e.children()) {
          VisitVarsInTraversalOrder(*c, visit);
        }
        break;
      case Expr::Kind::kSum:
        for (Symbol v : e.group_vars()) visit(v);
        VisitVarsInTraversalOrder(*e.child(), visit);
        break;
      case Expr::Kind::kCmp:
        VisitVarsInTraversalOrder(*e.lhs(), visit);
        VisitVarsInTraversalOrder(*e.rhs(), visit);
        break;
      case Expr::Kind::kAssign:
        visit(e.var());
        VisitVarsInTraversalOrder(*e.child(), visit);
        break;
    }
  }

  Status CompileView(int view_id) {
    const ExprPtr body = view_bodies_[static_cast<size_t>(view_id)];
    std::set<Symbol> relations = agca::RelationsIn(*body);
    // Deterministic relation order (sets of Symbols sort by intern id).
    for (Symbol rel : relations) {
      for (auto sign :
           {ring::Update::Sign::kInsert, ring::Update::Sign::kDelete}) {
        delta::Event event = delta::MakeEvent(program_.catalog, rel, sign);
        ExprPtr dbody = delta::Delta(body, event);
        std::vector<Monomial> poly = agca::Expand(dbody);
        Trigger& trigger = TriggerFor(rel, sign);
        for (const Monomial& m : poly) {
          RINGDB_ASSIGN_OR_RETURN(
              Statement stmt, BuildStatement(view_id, event, m));
          trigger.statements.push_back(std::move(stmt));
        }
      }
    }
    return Status::Ok();
  }

  Trigger& TriggerFor(Symbol rel, ring::Update::Sign sign) {
    for (Trigger& t : program_.triggers) {
      if (t.relation == rel && t.sign == sign) return t;
    }
    Trigger t;
    t.relation = rel;
    t.sign = sign;
    program_.triggers.push_back(std::move(t));
    return program_.triggers.back();
  }

  // Turns one monomial of Delta(view definition) into an NC0C statement.
  StatusOr<Statement> BuildStatement(int view_id, const delta::Event& event,
                                     const Monomial& monomial) {
    // Copied, not referenced: creating component views below grows
    // program_.views and would invalidate a reference.
    const std::vector<Symbol> target_key_vars =
        program_.views[static_cast<size_t>(view_id)].key_vars;
    std::unordered_set<Symbol> params(event.params.begin(),
                                      event.params.end());
    std::unordered_map<Symbol, size_t> param_index;
    for (size_t i = 0; i < event.params.size(); ++i) {
      param_index.emplace(event.params[i], i);
    }
    std::set<Symbol> target_keys(target_key_vars.begin(),
                                 target_key_vars.end());

    // ---- Binding consumption (fixpoint) ----
    std::unordered_map<Symbol, Atom> subst;
    std::vector<ExprPtr> factors = monomial.factors;
    std::vector<bool> consumed(factors.size(), false);
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = 0; i < factors.size(); ++i) {
        if (consumed[i]) continue;
        const ExprPtr& f = factors[i];
        Symbol x;
        ExprPtr source;
        if (f->kind() == Expr::Kind::kAssign &&
            !subst.contains(f->var())) {
          x = f->var();
          source = Substitute(f->child(), subst);
        } else if (f->kind() == Expr::Kind::kCmp &&
                   f->cmp_op() == CmpOp::kEq) {
          ExprPtr l = Substitute(f->lhs(), subst);
          ExprPtr r = Substitute(f->rhs(), subst);
          if (l->kind() == Expr::Kind::kVar && !params.contains(l->var()) &&
              !subst.contains(l->var()) && IsClosedAtom(r, params)) {
            x = l->var();
            source = r;
          } else if (r->kind() == Expr::Kind::kVar &&
                     !params.contains(r->var()) &&
                     !subst.contains(r->var()) && IsClosedAtom(l, params)) {
            x = r->var();
            source = l;
          } else {
            continue;
          }
        } else {
          continue;
        }
        if (source == nullptr || !IsClosedAtom(source, params)) continue;
        Atom atom = AtomOf(source);
        // Value bindings cannot flow into Sum group-variable positions.
        if (std::holds_alternative<Value>(atom)) {
          bool blocked = false;
          for (size_t j = 0; j < factors.size() && !blocked; ++j) {
            if (!consumed[j] && j != i) {
              blocked = UsedAsGroupVar(*factors[j], x);
            }
          }
          if (blocked) continue;
        }
        subst.emplace(x, std::move(atom));
        consumed[i] = true;
        changed = true;
      }
    }

    // ---- Final substitution & classification ----
    struct Member {
      ExprPtr expr;
      std::set<Symbol> link_vars;  // vars connecting components
      std::set<Symbol> key_vars;   // params/target keys it mentions
    };
    std::vector<Member> members;
    std::vector<ExprPtr> guards;  // database-free, translated to TExpr

    for (size_t i = 0; i < factors.size(); ++i) {
      if (consumed[i]) continue;
      ExprPtr f = factors[i];
      if (f->kind() == Expr::Kind::kAssign && subst.contains(f->var())) {
        // Duplicate binding, e.g. Delta of R(x, x): becomes an equality
        // guard between the two parameters.
        f = Expr::Cmp(CmpOp::kEq, AtomToExpr(subst.at(f->var())),
                      Substitute(f->child(), subst));
      } else {
        f = Substitute(f, subst);
      }
      std::set<Symbol> vars = agca::AllVars(*f);
      std::set<Symbol> link, keyish;
      for (Symbol v : vars) {
        if (params.contains(v) || target_keys.contains(v)) {
          keyish.insert(v);
        } else {
          link.insert(v);
        }
      }
      bool database_free = agca::DatabaseFree(*f);
      if (database_free && link.empty() &&
          f->kind() != Expr::Kind::kAssign &&
          f->kind() != Expr::Kind::kSum) {
        guards.push_back(f);
        continue;
      }
      if (f->kind() == Expr::Kind::kAssign && database_free) {
        return Status::Unimplemented(
            "assignment not reducible to a parameter or constant at "
            "trigger time: " +
            f->ToString());
      }
      members.push_back(Member{f, std::move(link), std::move(keyish)});
    }

    // ---- Connected components over shared aggregated variables ----
    std::vector<int> comp(members.size());
    for (size_t i = 0; i < members.size(); ++i) comp[i] = static_cast<int>(i);
    bool merged = true;
    while (merged) {
      merged = false;
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          if (comp[i] == comp[j]) continue;
          bool shares = false;
          for (Symbol v : members[i].link_vars) {
            if (members[j].link_vars.contains(v)) {
              shares = true;
              break;
            }
          }
          if (shares) {
            int from = std::max(comp[i], comp[j]);
            int to = std::min(comp[i], comp[j]);
            for (int& c : comp) {
              if (c == from) c = to;
            }
            merged = true;
          }
        }
      }
    }

    // ---- Build a view per component, in first-factor order ----
    std::vector<TExprPtr> rhs_factors;
    if (!monomial.coefficient.IsOne()) {
      rhs_factors.push_back(TExpr::Const(Value(monomial.coefficient)));
    }
    std::set<Symbol> loop_vars_available;  // free target keys some view binds
    struct Lookup {
      int view_id;
      std::vector<KeyRef> slots;
      std::set<Symbol> binds;  // loop vars among the slots
    };
    std::vector<Lookup> lookups;

    std::vector<int> component_order;
    for (size_t i = 0; i < members.size(); ++i) {
      if (std::find(component_order.begin(), component_order.end(),
                    comp[i]) == component_order.end()) {
        component_order.push_back(comp[i]);
      }
    }
    for (int c : component_order) {
      std::vector<ExprPtr> body_factors;
      std::vector<Symbol> keys;  // first-occurrence order
      std::set<Symbol> seen_keys;
      bool has_relation = false;
      for (size_t i = 0; i < members.size(); ++i) {
        if (comp[i] != c) continue;
        body_factors.push_back(members[i].expr);
        if (!agca::DatabaseFree(*members[i].expr)) has_relation = true;
        for (Symbol v : members[i].key_vars) {
          if (seen_keys.insert(v).second) keys.push_back(v);
        }
      }
      if (!has_relation) {
        return Status::Unimplemented(
            "database-free component requires trigger-time evaluation "
            "(non-simple condition?): " +
            Expr::Mul(body_factors)->ToString());
      }
      ViewRef ref = GetOrCreateView(keys, Expr::Mul(body_factors));
      Lookup lk;
      lk.view_id = ref.id;
      lk.slots.resize(keys.size(), KeyRef::Const(Value()));
      for (size_t i = 0; i < keys.size(); ++i) {
        KeyRef kr = params.contains(keys[i])
                        ? KeyRef::Param(param_index.at(keys[i]))
                        : KeyRef::LoopVar(keys[i]);
        if (kr.kind() == KeyRef::Kind::kLoopVar) lk.binds.insert(keys[i]);
        lk.slots[ref.key_order[i]] = kr;
      }
      lookups.push_back(std::move(lk));
    }

    // ---- Guards and value multipliers ----
    for (const ExprPtr& g : guards) {
      RINGDB_ASSIGN_OR_RETURN(
          TExprPtr t, TranslateGuard(g, param_index));
      rhs_factors.push_back(t);
    }
    for (const Lookup& lk : lookups) {
      rhs_factors.push_back(TExpr::ViewLookup(lk.view_id, lk.slots));
    }
    if (rhs_factors.empty()) {
      rhs_factors.push_back(TExpr::Const(Value(monomial.coefficient)));
    }

    // ---- Target key references & loops ----
    Statement stmt;
    stmt.target_view = view_id;
    std::set<Symbol> uncovered;
    for (Symbol k : target_key_vars) {
      auto it = subst.find(k);
      if (it != subst.end()) {
        if (std::holds_alternative<Symbol>(it->second)) {
          Symbol p = std::get<Symbol>(it->second);
          RINGDB_CHECK(params.contains(p));
          stmt.target_key.push_back(KeyRef::Param(param_index.at(p)));
        } else {
          stmt.target_key.push_back(
              KeyRef::Const(std::get<Value>(it->second)));
        }
      } else {
        stmt.target_key.push_back(KeyRef::LoopVar(k));
        uncovered.insert(k);
      }
    }
    for (const Lookup& lk : lookups) {
      bool useful = false;
      for (Symbol v : lk.binds) {
        if (uncovered.contains(v)) {
          useful = true;
          uncovered.erase(v);
        }
      }
      if (useful) {
        LoopSpec loop;
        loop.view_id = lk.view_id;
        loop.pattern = lk.slots;
        stmt.loops.push_back(std::move(loop));
      }
    }
    if (!uncovered.empty()) {
      // Domain maintenance: the update changes this view at keys it does
      // not bind (e.g. every threshold k with k < q for an inequality
      // view). The unbound key positions become the view's slice ("input
      // variable") positions; the statement loops over the initialized
      // slice subkeys (runtime case B), appended last so any component
      // loops have bound the remaining variables first.
      std::vector<size_t> slice_positions;
      for (size_t pos = 0; pos < stmt.target_key.size(); ++pos) {
        const KeyRef& ref = stmt.target_key[pos];
        if (ref.kind() == KeyRef::Kind::kLoopVar &&
            uncovered.contains(ref.loop_var())) {
          slice_positions.push_back(pos);
        }
      }
      ViewDef& target_def = program_.views[static_cast<size_t>(view_id)];
      if (target_def.lazy_init &&
          target_def.slice_positions != slice_positions) {
        return Status::Unimplemented(
            "conflicting slice (input-variable) positions for view " +
            target_def.name);
      }
      target_def.lazy_init = true;
      target_def.slice_positions = std::move(slice_positions);
      LoopSpec self_loop;
      self_loop.view_id = view_id;
      self_loop.pattern = stmt.target_key;
      stmt.loops.push_back(std::move(self_loop));
    }
    stmt.rhs = TExpr::Mul(std::move(rhs_factors));
    return stmt;
  }

  // Database-free guard/multiplier -> TExpr over params and loop vars.
  StatusOr<TExprPtr> TranslateGuard(
      const ExprPtr& e,
      const std::unordered_map<Symbol, size_t>& param_index) {
    switch (e->kind()) {
      case Expr::Kind::kConst:
        return TExpr::Const(Value(e->constant()));
      case Expr::Kind::kValueConst:
        return TExpr::Const(e->value_const());
      case Expr::Kind::kVar: {
        auto it = param_index.find(e->var());
        if (it != param_index.end()) return TExpr::Param(it->second);
        return TExpr::LoopVar(e->var());
      }
      case Expr::Kind::kAdd:
      case Expr::Kind::kMul: {
        std::vector<TExprPtr> children;
        for (const auto& c : e->children()) {
          RINGDB_ASSIGN_OR_RETURN(TExprPtr t, TranslateGuard(c, param_index));
          children.push_back(t);
        }
        return e->kind() == Expr::Kind::kAdd ? TExpr::Add(children)
                                             : TExpr::Mul(children);
      }
      case Expr::Kind::kCmp: {
        RINGDB_ASSIGN_OR_RETURN(TExprPtr l,
                                TranslateGuard(e->lhs(), param_index));
        RINGDB_ASSIGN_OR_RETURN(TExprPtr r,
                                TranslateGuard(e->rhs(), param_index));
        return TExpr::Cmp(e->cmp_op(), l, r);
      }
      default:
        return Status::Unimplemented("guard kind not NC0C-translatable: " +
                                     e->ToString());
    }
  }

  static void CollectViewReads(const TExpr& e, std::set<int>* out) {
    if (e.kind() == TExpr::Kind::kViewLookup) out->insert(e.view_id());
    for (const TExprPtr& c : e.children()) CollectViewReads(*c, out);
  }

  // A trigger is multiplicity-linear when its read set (rhs view lookups
  // and loop drivers) is disjoint from its write set (statement targets):
  // no firing observes state written by a previous firing of the same
  // trigger, so m unit firings emit exactly m times the emissions of one.
  static void ComputeMultiplicityLinearity(Trigger& t) {
    std::set<int> reads, writes;
    for (const Statement& s : t.statements) {
      writes.insert(s.target_view);
      CollectViewReads(*s.rhs, &reads);
      for (const LoopSpec& loop : s.loops) reads.insert(loop.view_id);
    }
    t.multiplicity_linear =
        std::none_of(writes.begin(), writes.end(),
                     [&](int v) { return reads.contains(v); });
  }

  // Sorts every trigger's statements by descending target-view degree so
  // each view reads pre-update values of the strictly deeper views.
  void FinalizeTriggers() {
    for (Trigger& t : program_.triggers) {
      ComputeMultiplicityLinearity(t);
      std::stable_sort(
          t.statements.begin(), t.statements.end(),
          [&](const Statement& a, const Statement& b) {
            return program_.views[static_cast<size_t>(a.target_view)].degree >
                   program_.views[static_cast<size_t>(b.target_view)].degree;
          });
    }
    // Deterministic trigger order: by relation id, insert before delete.
    std::sort(program_.triggers.begin(), program_.triggers.end(),
              [](const Trigger& a, const Trigger& b) {
                if (a.relation != b.relation) return a.relation < b.relation;
                return a.sign < b.sign;
              });
  }

  TriggerProgram program_;
  std::vector<ExprPtr> view_bodies_;
  std::unordered_map<std::string, int> by_fingerprint_;
  std::deque<int> worklist_;
};

}  // namespace

StatusOr<CompiledQuery> Compile(const ring::Catalog& catalog,
                                std::vector<Symbol> group_vars,
                                const agca::ExprPtr& body) {
  CompilerImpl impl(catalog);
  return impl.Run(std::move(group_vars), body);
}

}  // namespace compiler
}  // namespace ringdb
