#include "compiler/lower.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "util/check.h"

namespace ringdb {
namespace compiler {
namespace lower {

namespace {

bool SameRef(const KeyRef& a, const KeyRef& b) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case KeyRef::Kind::kParam:
      return a.param_index() == b.param_index();
    case KeyRef::Kind::kLoopVar:
      return a.loop_var() == b.loop_var();
    case KeyRef::Kind::kConst:
      return a.constant() == b.constant();
  }
  return false;
}

bool SamePattern(const std::vector<KeyRef>& a, const std::vector<KeyRef>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!SameRef(a[i], b[i])) return false;
  }
  return true;
}

void CollectParams(const TExpr& e, std::vector<size_t>* out) {
  if (e.kind() == TExpr::Kind::kParam) out->push_back(e.param_index());
  if (e.kind() == TExpr::Kind::kViewLookup) {
    for (const KeyRef& ref : e.keys()) {
      if (ref.kind() == KeyRef::Kind::kParam) out->push_back(ref.param_index());
    }
  }
  for (const auto& c : e.children()) CollectParams(*c, out);
}

void SortUnique(std::vector<size_t>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

// Registers (idempotently) the index requirement and returns the id
// ViewTable::EnsureIndex will assign when the runtime replays the
// registrations in order.
int IndexIdFor(LoweredProgram* lp, int view_id, std::vector<size_t> positions) {
  auto& sets = lp->view_indexes[static_cast<size_t>(view_id)].position_sets;
  for (size_t i = 0; i < sets.size(); ++i) {
    if (sets[i] == positions) return static_cast<int>(i);
  }
  sets.push_back(std::move(positions));
  return static_cast<int>(sets.size() - 1);
}

class StmtLowerer {
 public:
  StmtLowerer(const TriggerProgram& program, const Trigger& trigger,
              const Statement& stmt, LoweredProgram* lp)
      : program_(program), trigger_(trigger), stmt_(stmt), lp_(lp) {}

  StmtProgram Run() {
    LowerLoops();
    LowerTarget();
    out_.rhs = LowerRhs(*stmt_.rhs);
    LowerGrouping();
    out_.frame_size = next_slot_;
    return std::move(out_);
  }

 private:
  static uint16_t U16(size_t v) {
    RINGDB_CHECK_LT(v, size_t{1} << 16);
    return static_cast<uint16_t>(v);
  }

  uint16_t ConstIdx(const Value& v) {
    for (size_t i = 0; i < out_.const_pool.size(); ++i) {
      if (out_.const_pool[i] == v) return U16(i);
    }
    out_.const_pool.push_back(v);
    return U16(out_.const_pool.size() - 1);
  }

  // The reference must already be resolvable: loop variables are bound by
  // the time anything that uses this template runs (loops lower first).
  SlotRef RefFor(const KeyRef& ref) {
    SlotRef r;
    switch (ref.kind()) {
      case KeyRef::Kind::kParam:
        r.source = SlotRef::Source::kParam;
        r.index = U16(ref.param_index());
        return r;
      case KeyRef::Kind::kConst:
        r.source = SlotRef::Source::kConst;
        r.index = ConstIdx(ref.constant());
        return r;
      case KeyRef::Kind::kLoopVar: {
        auto it = slot_.find(ref.loop_var());
        RINGDB_CHECK(it != slot_.end());
        r.source = SlotRef::Source::kFrame;
        r.index = it->second;
        return r;
      }
    }
    RINGDB_CHECK(false);
    return r;
  }

  KeyTemplate Template(const std::vector<SlotRef>& refs) {
    KeyTemplate t;
    t.first = static_cast<uint32_t>(out_.slot_refs.size());
    t.size = U16(refs.size());
    out_.slot_refs.insert(out_.slot_refs.end(), refs.begin(), refs.end());
    return t;
  }

  // Mirrors the tree-walking executor's LoopPlan classification: a key
  // position is *bound* (part of the index probe subkey) when it is a
  // param, a constant, or a variable bound by an earlier loop; otherwise
  // it binds (first occurrence) or filters (repeat within this loop).
  void LowerLoops() {
    for (const LoopSpec& loop : stmt_.loops) {
      LoopProgram lpgm;
      lpgm.view_id = loop.view_id;
      const ViewDef& driver = program_.view(loop.view_id);
      // Variables bound before this loop started (slot_ grows as this
      // loop allocates, so snapshot the boundary).
      std::unordered_map<Symbol, uint16_t> bound_before = slot_;
      std::vector<size_t> bound_positions;
      std::vector<size_t> binding_positions;
      std::vector<SlotRef> probe_refs;
      for (size_t pos = 0; pos < loop.pattern.size(); ++pos) {
        const KeyRef& ref = loop.pattern[pos];
        if (ref.kind() != KeyRef::Kind::kLoopVar ||
            bound_before.contains(ref.loop_var())) {
          bound_positions.push_back(pos);
          probe_refs.push_back(RefFor(ref));
          continue;
        }
        binding_positions.push_back(pos);
        auto it = slot_.find(ref.loop_var());
        if (it != slot_.end()) {
          // Repeat within this loop: positions must agree at run time.
          lpgm.binds.push_back(LoopBind{U16(pos), it->second, true});
        } else {
          uint16_t s = next_slot_++;
          slot_.emplace(ref.loop_var(), s);
          lpgm.binds.push_back(LoopBind{U16(pos), s, false});
        }
      }
      if (driver.lazy_init) {
        // Case B (slice-domain loop): the loop binds exactly the slice
        // positions — enumerate initialized slice subkeys. Case A: all
        // slice positions are bound — materialize the probed slice, then
        // take the regular index path.
        if (binding_positions == driver.slice_positions) {
          lpgm.slice_domain = true;
          // binds[i].pos currently indexes the full key at
          // slice_positions[i]; the slice subkey is exactly those
          // positions in order, so rebase onto subkey indices.
          for (size_t i = 0; i < lpgm.binds.size(); ++i) {
            RINGDB_CHECK_EQ(lpgm.binds[i].pos, driver.slice_positions[i]);
            lpgm.binds[i].pos = U16(i);
          }
        } else {
          lpgm.lazy_driver = true;
          std::vector<SlotRef> slice_refs;
          for (size_t p : driver.slice_positions) {
            RINGDB_CHECK(std::find(bound_positions.begin(),
                                   bound_positions.end(),
                                   p) != bound_positions.end());
            slice_refs.push_back(RefFor(loop.pattern[p]));
          }
          lpgm.lazy_slice = Template(slice_refs);
        }
      }
      if (!lpgm.slice_domain && !bound_positions.empty()) {
        lpgm.index_id =
            IndexIdFor(lp_, loop.view_id, std::move(bound_positions));
        lpgm.probe = Template(probe_refs);
      }
      out_.loops.push_back(std::move(lpgm));
    }
  }

  void LowerTarget() {
    out_.target_view = stmt_.target_view;
    std::vector<SlotRef> refs;
    refs.reserve(stmt_.target_key.size());
    for (const KeyRef& ref : stmt_.target_key) refs.push_back(RefFor(ref));
    out_.target_key = Template(refs);
    const ViewDef& def = program_.view(stmt_.target_view);
    out_.target_lazy = def.lazy_init;
    for (size_t p : def.slice_positions) {
      out_.target_slice_positions.push_back(U16(p));
    }
  }

  void Grow(RhsProgram* p, uint32_t* depth) {
    ++*depth;
    p->max_stack = std::max(p->max_stack, *depth);
  }

  // A view lookup whose key pattern is identical to a (non-slice-domain)
  // loop driver's pattern always probes the entry that loop is currently
  // enumerating: the probe subkey matched the bound positions and the
  // binding positions were just copied out of the entry itself. Forward
  // the enumerated multiplicity instead of re-probing. (Slice-domain
  // loops enumerate slice subkeys, not entries, so they never forward.)
  int ForwardableLoop(const TExpr& e) const {
    for (size_t i = 0; i < stmt_.loops.size(); ++i) {
      if (out_.loops[i].slice_domain) continue;
      if (stmt_.loops[i].view_id == e.view_id() &&
          SamePattern(stmt_.loops[i].pattern, e.keys())) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  void EmitExpr(const TExpr& e, RhsProgram* p, uint32_t* depth) {
    switch (e.kind()) {
      case TExpr::Kind::kConst:
        p->ops.push_back({OpCode::kLoadConst, 0, ConstIdx(e.constant())});
        Grow(p, depth);
        return;
      case TExpr::Kind::kParam:
        p->ops.push_back({OpCode::kLoadParam, 0, U16(e.param_index())});
        Grow(p, depth);
        return;
      case TExpr::Kind::kLoopVar: {
        auto it = slot_.find(e.loop_var());
        RINGDB_CHECK(it != slot_.end());
        p->ops.push_back({OpCode::kLoadFrame, 0, it->second});
        Grow(p, depth);
        return;
      }
      case TExpr::Kind::kViewLookup: {
        int fwd = ForwardableLoop(e);
        if (fwd >= 0) {
          p->ops.push_back({OpCode::kLoadLoopValue, 0, U16(fwd)});
        } else {
          ProbePlan plan;
          plan.view_id = e.view_id();
          std::vector<SlotRef> refs;
          refs.reserve(e.keys().size());
          for (const KeyRef& ref : e.keys()) refs.push_back(RefFor(ref));
          plan.key = Template(refs);
          const ViewDef& def = program_.view(e.view_id());
          plan.lazy = def.lazy_init;
          for (size_t sp : def.slice_positions) {
            plan.slice_positions.push_back(U16(sp));
          }
          out_.probes.push_back(std::move(plan));
          p->ops.push_back(
              {OpCode::kProbeView, 0, U16(out_.probes.size() - 1)});
        }
        Grow(p, depth);
        return;
      }
      case TExpr::Kind::kAdd:
      case TExpr::Kind::kMul: {
        RINGDB_CHECK(!e.children().empty());
        for (const TExprPtr& c : e.children()) EmitExpr(*c, p, depth);
        p->ops.push_back({e.kind() == TExpr::Kind::kAdd ? OpCode::kAdd
                                                        : OpCode::kMul,
                          0, U16(e.children().size())});
        *depth -= static_cast<uint32_t>(e.children().size()) - 1;
        return;
      }
      case TExpr::Kind::kCmp: {
        EmitExpr(*e.children()[0], p, depth);
        EmitExpr(*e.children()[1], p, depth);
        p->ops.push_back(
            {OpCode::kCmp, static_cast<uint8_t>(e.cmp_op()), 0});
        *depth -= 1;
        return;
      }
    }
    RINGDB_CHECK(false);
  }

  RhsProgram LowerRhs(const TExpr& e) {
    RhsProgram p;
    uint32_t depth = 0;
    EmitExpr(e, &p, &depth);
    RINGDB_CHECK_EQ(depth, 1u);
    return p;
  }

  // Port of the tree-walking executor's grouping analysis (see the batch
  // delta rule in runtime/interpreter.h): shape params are every param
  // resolved positionally, foldable params are bare kParam leaves that
  // are direct factors of a top-level product.
  void LowerGrouping() {
    if (!trigger_.multiplicity_linear) return;
    const size_t arity = program_.catalog.Arity(trigger_.relation);
    std::vector<size_t> shape;
    for (const KeyRef& ref : stmt_.target_key) {
      if (ref.kind() == KeyRef::Kind::kParam) {
        shape.push_back(ref.param_index());
      }
    }
    for (const LoopSpec& loop : stmt_.loops) {
      for (const KeyRef& ref : loop.pattern) {
        if (ref.kind() == KeyRef::Kind::kParam) {
          shape.push_back(ref.param_index());
        }
      }
    }
    std::vector<size_t> foldable;
    std::vector<TExprPtr> residual;
    if (stmt_.rhs->kind() == TExpr::Kind::kParam) {
      foldable.push_back(stmt_.rhs->param_index());
    } else if (stmt_.rhs->kind() == TExpr::Kind::kMul) {
      for (const TExprPtr& child : stmt_.rhs->children()) {
        if (child->kind() == TExpr::Kind::kParam) {
          foldable.push_back(child->param_index());
        } else {
          CollectParams(*child, &shape);
          residual.push_back(child);
        }
      }
    } else {
      CollectParams(*stmt_.rhs, &shape);
    }
    SortUnique(&shape);
    // When the shape already spans every param, grouping can only merge
    // identical tuples, which batch coalescing did upstream.
    if (shape.size() >= arity) return;
    out_.groupable = true;
    for (size_t p : shape) out_.shape_params.push_back(U16(p));
    for (size_t p : foldable) out_.foldable_params.push_back(U16(p));
    if (foldable.empty()) {
      // Nothing folded out: the grouped rhs is the rhs (share the
      // already-lowered program; its operands index the same pools).
      out_.grouped_rhs = out_.rhs;
      return;
    }
    TExprPtr grouped;
    if (residual.empty()) {
      grouped = TExpr::Const(Value(int64_t{1}));
    } else if (residual.size() == 1) {
      grouped = residual[0];
    } else {
      grouped = TExpr::Mul(std::move(residual));
    }
    out_.grouped_rhs = LowerRhs(*grouped);
  }

  const TriggerProgram& program_;
  const Trigger& trigger_;
  const Statement& stmt_;
  LoweredProgram* lp_;
  StmtProgram out_;
  std::unordered_map<Symbol, uint16_t> slot_;  // loop var -> frame slot
  uint16_t next_slot_ = 0;
};

std::string RefStr(const StmtProgram& sp, const SlotRef& r) {
  switch (r.source) {
    case SlotRef::Source::kParam:
      return "@p" + std::to_string(r.index);
    case SlotRef::Source::kConst:
      return sp.const_pool[r.index].ToString();
    case SlotRef::Source::kFrame:
      return "f" + std::to_string(r.index);
  }
  return "?";
}

std::string TemplateStr(const StmtProgram& sp, const KeyTemplate& t) {
  std::string out = "[";
  for (size_t i = 0; i < t.size; ++i) {
    if (i) out += ", ";
    out += RefStr(sp, sp.slot_refs[t.first + i]);
  }
  return out + "]";
}

void AppendRhs(const StmtProgram& sp, const RhsProgram& p,
               std::ostringstream* out) {
  for (size_t i = 0; i < p.ops.size(); ++i) {
    const Op& op = p.ops[i];
    if (i) *out << ' ';
    switch (op.code) {
      case OpCode::kLoadConst:
        *out << "const(" << sp.const_pool[op.a].ToString() << ')';
        break;
      case OpCode::kLoadParam:
        *out << "param(" << op.a << ')';
        break;
      case OpCode::kLoadFrame:
        *out << "frame(" << op.a << ')';
        break;
      case OpCode::kLoadLoopValue:
        *out << "loopval(" << op.a << ')';
        break;
      case OpCode::kProbeView:
        *out << "probe(m" << sp.probes[op.a].view_id << ' '
             << TemplateStr(sp, sp.probes[op.a].key) << ')';
        break;
      case OpCode::kAdd:
        *out << "add(" << op.a << ')';
        break;
      case OpCode::kMul:
        *out << "mul(" << op.a << ')';
        break;
      case OpCode::kCmp:
        *out << "cmp(" << static_cast<int>(op.aux) << ')';
        break;
    }
  }
}

}  // namespace

std::string StmtProgram::ToString() const {
  std::ostringstream out;
  for (size_t i = 0; i < loops.size(); ++i) {
    const LoopProgram& lp = loops[i];
    out << "for m" << lp.view_id;
    if (lp.slice_domain) {
      out << " slices";
    } else if (lp.index_id >= 0) {
      out << " idx" << lp.index_id << TemplateStr(*this, lp.probe);
    } else {
      out << " scan";
    }
    if (lp.lazy_driver) {
      out << " ensure" << TemplateStr(*this, lp.lazy_slice);
    }
    out << " {";
    for (size_t b = 0; b < lp.binds.size(); ++b) {
      if (b) out << ' ';
      out << (lp.binds[b].is_filter ? "filter " : "bind ")
          << lp.binds[b].pos << "->f" << lp.binds[b].frame;
    }
    out << "}: ";
  }
  out << 'm' << target_view << TemplateStr(*this, target_key) << " += ";
  AppendRhs(*this, rhs, &out);
  if (groupable) {
    out << " | grouped: ";
    AppendRhs(*this, grouped_rhs, &out);
  }
  return out.str();
}

std::shared_ptr<const LoweredProgram> Lower(const TriggerProgram& program) {
  auto lp = std::make_shared<LoweredProgram>();
  lp->view_indexes.resize(program.views.size());
  lp->stmts.resize(program.triggers.size());
  for (size_t t = 0; t < program.triggers.size(); ++t) {
    const Trigger& trigger = program.triggers[t];
    lp->stmts[t].reserve(trigger.statements.size());
    for (const Statement& stmt : trigger.statements) {
      StmtProgram sp = StmtLowerer(program, trigger, stmt, lp.get()).Run();
      sp.stmt_id = lp->num_statements++;
      // Column-access metadata: every param position the statement reads,
      // whether through a key template or either rhs opcode stream.
      sp.param_count =
          static_cast<uint16_t>(program.catalog.Arity(trigger.relation));
      for (const SlotRef& r : sp.slot_refs) {
        if (r.source == SlotRef::Source::kParam) {
          sp.cols_read.push_back(r.index);
        }
      }
      for (const RhsProgram* rp : {&sp.rhs, &sp.grouped_rhs}) {
        for (const Op& op : rp->ops) {
          if (op.code == OpCode::kLoadParam) sp.cols_read.push_back(op.a);
        }
      }
      std::sort(sp.cols_read.begin(), sp.cols_read.end());
      sp.cols_read.erase(
          std::unique(sp.cols_read.begin(), sp.cols_read.end()),
          sp.cols_read.end());
      lp->max_frame = std::max(lp->max_frame, sp.frame_size);
      lp->max_stack = std::max(
          {lp->max_stack, sp.rhs.max_stack, sp.grouped_rhs.max_stack});
      lp->max_loop_depth = std::max(lp->max_loop_depth,
                                    static_cast<uint32_t>(sp.loops.size()));
      lp->stmts[t].push_back(std::move(sp));
    }
  }
  return lp;
}

}  // namespace lower
}  // namespace compiler
}  // namespace ringdb
