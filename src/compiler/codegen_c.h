// Emits a compiled TriggerProgram as a self-contained C translation unit
// ready for `cc -O2 -shared` — the paper's §7 observation ("essentially a
// small fragment of the programming language C") taken literally and made
// an execution backend (runtime::NativeModule + the compiled-backend seam
// in runtime/compiled_executor.h).
//
// The emission scheme works from the lowered bytecode (compiler/lower.h),
// not the TExpr trees: each StmtProgram becomes one exported function
// whose body is the statement's loop nest and straight-line rhs —
//
//  - frame slots become fields of a stack-allocated environment struct
//    (locals, threaded through the loop callbacks);
//  - every KeyTemplate materializes into a fixed-size stack buffer;
//  - the postfix Op array unrolls into straight-line C expressions over
//    RdbNum temporaries (overflow-promoting arithmetic and kind-sensitive
//    comparisons textually mirror util/numeric.h and the interpreter's
//    EvalRhs — same results, no dispatch loop);
//  - view probes, loop enumeration, and emissions call through the
//    RdbHostApi function-pointer table (runtime/native_abi.h), so the
//    module has no link-time dependencies and views stay host-owned
//    (sharding, serving snapshots, and merge-on-read are unaffected).
//
// Not everything is emitted. Statements touching the lazy domain-
// maintenance machinery (slice enumeration, lazy drivers or probes, lazy
// targets) are skipped and keep the interpreter (CodegenStmt::emitted
// false). Everything else is emitted, and a per-variant static cost
// model records a *preference* instead: loops whose rhs is a single load
// (the strength-reduced grouped join) are flagged prefer-interpreter —
// the interpreter already runs those as bind-and-copy loops, and the ABI
// marshalling per enumerated entry usually costs more than the saved
// dispatch — but the runtime's profile-guided selection
// (runtime/compiled_executor.h) measures both backends during warmup and
// may overturn the static verdict on the live workload. A statement
// whose grouped rhs folds nothing reuses the plain function
// (grouped_fn == fn).

#ifndef RINGDB_COMPILER_CODEGEN_C_H_
#define RINGDB_COMPILER_CODEGEN_C_H_

#include <string>
#include <vector>

#include "compiler/ir.h"

namespace ringdb {
namespace compiler {

// Emission record for one lowered statement.
struct CodegenStmt {
  bool emitted = false;    // false: interpreter fallback for this statement
  std::string fn;          // exported symbol for the plain rhs
  std::string grouped_fn;  // exported symbol for the grouped rhs (may == fn;
                           // empty when the statement is not groupable)
  // Columnar-window entry points (RdbColStmtFn, symbol `fn + "_w"` /
  // `fn + "_gw"`): whole-window execution over mirrored column arrays.
  // Emitted only for direct-add statements (emit-buffered self-loop
  // statements need a host flush per firing); empty otherwise. A
  // statement whose grouped rhs folds nothing shares the plain window
  // (grouped_win_fn == win_fn), like grouped_fn == fn.
  std::string win_fn;
  std::string grouped_win_fn;
  // Static cost-model verdict per variant (see WorthNative in the .cc):
  // the runtime's profile-guided selection (runtime/compiled_executor.h)
  // starts from this preference and overrides it with measured warmup
  // timings. Before PR 6 a false verdict suppressed emission entirely;
  // now every emittable variant is compiled and the verdict is advice.
  bool prefer_native = true;          // plain variant
  bool grouped_prefer_native = true;  // grouped variant
};

struct CodegenModule {
  std::string source;  // the complete C translation unit
  // stmts[t][s] describes program.triggers[t].statements[s].
  std::vector<std::vector<CodegenStmt>> stmts;
  size_t emitted_statements = 0;  // functions worth compiling
};

// Emits the module for `program`, lowering it first if program.lowered is
// unset. Pure function of the program: identical programs produce
// byte-identical source (the .so cache keys on the source hash).
CodegenModule GenerateModule(const TriggerProgram& program);

// Convenience: just the emitted source (docs, golden tests, debugging).
std::string GenerateC(const TriggerProgram& program);

}  // namespace compiler
}  // namespace ringdb

#endif  // RINGDB_COMPILER_CODEGEN_C_H_
