// Emits a compiled TriggerProgram as NC0C source — "essentially a small
// fragment of the programming language C" (§7). The emitted translation
// unit declares one hash map per materialized view and one trigger
// function per event kind, each a straight-line (or singly-nested-loop)
// sequence of += statements over map entries: no joins, no aggregation,
// a constant number of arithmetic operations per maintained value.
//
// The output is illustrative and self-describing (maps are modeled with a
// tiny open-addressing helper emitted into the preamble); tests check the
// structural properties rather than compiling the output.

#ifndef RINGDB_COMPILER_CODEGEN_C_H_
#define RINGDB_COMPILER_CODEGEN_C_H_

#include <string>

#include "compiler/ir.h"

namespace ringdb {
namespace compiler {

std::string GenerateC(const TriggerProgram& program);

}  // namespace compiler
}  // namespace ringdb

#endif  // RINGDB_COMPILER_CODEGEN_C_H_
