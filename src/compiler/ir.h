// NC0C: the low-level trigger language targeted by the compiler (§7).
//
// A TriggerProgram is a set of materialized-view declarations plus, for
// every update event ±R, a list of statements of the form
//
//     for <loop bindings>:  V[k1, ..., kn] += rhs
//
// where each key k_i is an update parameter, a constant, or a loop
// variable; loops enumerate the entries of an existing view matching the
// already-bound key positions; and rhs is built from constants, update
// parameters, loop variables, O(1) view lookups, +, *, and comparisons —
// no joins and no aggregation. When every key is bound by the update the
// statement touches exactly one view entry with a constant number of
// arithmetic operations; this is the paper's NC0 property, and the
// op-counting interpreter (runtime/interpreter.h) measures it.
//
// Statements are executed in descending order of target-view degree, so
// each level is refreshed from the *pre-update* values of the strictly
// deeper (lower-degree) views it reads — Equation (1) of §1.1 applied
// in increasing delta order.

#ifndef RINGDB_COMPILER_IR_H_
#define RINGDB_COMPILER_IR_H_

#include <memory>
#include <string>
#include <vector>

#include "agca/ast.h"
#include "ring/database.h"
#include "util/symbol.h"
#include "util/value.h"

namespace ringdb {
namespace compiler {

namespace lower {
struct LoweredProgram;  // compiler/lower.h
}  // namespace lower

// A key-slot reference resolvable at trigger-execution time.
class KeyRef {
 public:
  enum class Kind { kParam, kLoopVar, kConst };

  static KeyRef Param(size_t index) {
    KeyRef k;
    k.kind_ = Kind::kParam;
    k.param_index_ = index;
    return k;
  }
  static KeyRef LoopVar(Symbol v) {
    KeyRef k;
    k.kind_ = Kind::kLoopVar;
    k.loop_var_ = v;
    return k;
  }
  static KeyRef Const(Value v) {
    KeyRef k;
    k.kind_ = Kind::kConst;
    k.const_ = std::move(v);
    return k;
  }

  Kind kind() const { return kind_; }
  size_t param_index() const { return param_index_; }
  Symbol loop_var() const { return loop_var_; }
  const Value& constant() const { return const_; }

  bool IsBoundBeforeLoops() const { return kind_ != Kind::kLoopVar; }

  std::string ToString() const;

 private:
  Kind kind_ = Kind::kConst;
  size_t param_index_ = 0;
  Symbol loop_var_;
  Value const_;
};

// Scalar right-hand-side expressions of NC0C statements.
class TExpr;
using TExprPtr = std::shared_ptr<const TExpr>;

class TExpr {
 public:
  enum class Kind { kConst, kParam, kLoopVar, kViewLookup, kAdd, kMul, kCmp };

  static TExprPtr Const(Value v);
  static TExprPtr Param(size_t index);
  static TExprPtr LoopVar(Symbol v);
  static TExprPtr ViewLookup(int view_id, std::vector<KeyRef> keys);
  static TExprPtr Add(std::vector<TExprPtr> children);
  static TExprPtr Mul(std::vector<TExprPtr> children);
  // 1 if l op r else 0 (value equality for kEq/kNe, numeric otherwise).
  static TExprPtr Cmp(agca::CmpOp op, TExprPtr l, TExprPtr r);

  Kind kind() const { return kind_; }
  const Value& constant() const { return const_; }
  size_t param_index() const { return param_index_; }
  Symbol loop_var() const { return loop_var_; }
  int view_id() const { return view_id_; }
  const std::vector<KeyRef>& keys() const { return keys_; }
  const std::vector<TExprPtr>& children() const { return children_; }
  agca::CmpOp cmp_op() const { return cmp_op_; }

  // Total number of +/* operations an evaluation performs (the constant
  // of the NC0 claim; comparisons count as one op).
  size_t OpCount() const;

  std::string ToString() const;

 private:
  TExpr() = default;
  static std::shared_ptr<TExpr> New() {
    return std::shared_ptr<TExpr>(new TExpr());
  }

  Kind kind_ = Kind::kConst;
  Value const_;
  size_t param_index_ = 0;
  Symbol loop_var_;
  int view_id_ = -1;
  std::vector<KeyRef> keys_;
  std::vector<TExprPtr> children_;
  agca::CmpOp cmp_op_ = agca::CmpOp::kEq;
};

// Enumerates entries of `view_id` whose keys match the bound positions of
// `pattern`; each enumerated entry binds the loop variables appearing in
// the kLoopVar positions (variables bound by an earlier loop act as
// additional filters).
struct LoopSpec {
  int view_id = -1;
  std::vector<KeyRef> pattern;  // one per key column of the view

  std::string ToString() const;
};

// for loops: target[target_key] += rhs.
struct Statement {
  int target_view = -1;
  std::vector<KeyRef> target_key;
  std::vector<LoopSpec> loops;
  TExprPtr rhs;

  std::string ToString() const;
};

// All statements fired by one kind of event (±R).
struct Trigger {
  Symbol relation;
  ring::Update::Sign sign = ring::Update::Sign::kInsert;
  std::vector<Statement> statements;  // descending target-view degree
  // Batch-execution metadata: true when no statement reads (via rhs view
  // lookups or driving loops) a view that any statement of this trigger
  // writes. Then the query is linear in R, every firing computes the same
  // emissions, and the delta of m identical events is exactly m times the
  // delta of one — the batch executor fires such a trigger once per
  // coalesced delta-GMR entry with emissions scaled by the entry's net
  // multiplicity, instead of once per input tuple. Nonlinear triggers
  // (self-joins, lazy domain maintenance) fall back to unit firings.
  bool multiplicity_linear = false;

  std::string ToString() const;
};

// A materialized view of the hierarchy.
struct ViewDef {
  int id = -1;
  std::string name;                   // "m0", "m1", ...
  std::vector<Symbol> key_vars;       // canonical key order
  agca::ExprPtr definition;           // Sum_[key_vars](body); documentation
                                      // and oracle for tests
  int degree = 0;                     // Degree(definition)
  // Domain maintenance (paper footnote 2): true when some event changes
  // this view at keys *not* bound by the update (e.g. inequality
  // thresholds). Such a view is maintained per *slice*: slice_positions
  // are the "input" key columns (the DBToaster notion of input
  // variables); the first use of a slice evaluates the view definition
  // with the slice key bound against the base database, materializing
  // every entry of the slice, after which self-loop statements keep all
  // initialized slices fresh.
  bool lazy_init = false;
  std::vector<size_t> slice_positions;

  std::string ToString() const;
};

struct TriggerProgram {
  ring::Catalog catalog;
  std::vector<ViewDef> views;  // views[root_view] is the query result
  int root_view = 0;
  std::vector<Trigger> triggers;  // one per (relation, sign)
  // Register-based bytecode form of every statement (compiler/lower.h),
  // immutable and shared by all executors built from this program. The
  // executor lowers on demand when absent; multi-shard construction
  // lowers once up front.
  std::shared_ptr<const lower::LoweredProgram> lowered;

  const ViewDef& view(int id) const { return views[static_cast<size_t>(id)]; }

  // Human-readable listing of the whole program (views + triggers).
  std::string ToString() const;
};

}  // namespace compiler
}  // namespace ringdb

#endif  // RINGDB_COMPILER_IR_H_
