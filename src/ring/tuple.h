// Records: schema-polymorphic tuples (§3.1).
//
// A record is a partial function Sigma -> Adom from column names to values.
// Records of *different* schemas coexist inside one gmr; this schema
// polymorphism is what makes the ring operations + and * total. Storage is
// a vector of (column, value) pairs sorted by interned column id, giving a
// canonical form with O(n) merge-based natural join.
//
// The singletons {t} with natural join form the commutative monoid Sng∅
// with zero ∅; Join returning nullopt realizes the mutilation of that zero
// (§2.4), so Tuple is a PartialMonoid and Gmr ≅ A[Sng] (Proposition 3.3).

#ifndef RINGDB_RING_TUPLE_H_
#define RINGDB_RING_TUPLE_H_

#include <functional>
#include <initializer_list>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/hash.h"
#include "util/symbol.h"
#include "util/value.h"

namespace ringdb {
namespace ring {

class Tuple {
 public:
  using Field = std::pair<Symbol, Value>;

  // The empty record <> (the monoid identity 1_Sng).
  Tuple() = default;

  Tuple(std::initializer_list<Field> fields);

  // Builds from an unsorted field list; later duplicates must agree.
  static Tuple FromFields(std::vector<Field> fields);

  // The record {col_i -> val_i} for parallel column/value vectors.
  static Tuple FromRow(const std::vector<Symbol>& columns,
                       const std::vector<Value>& values);

  bool empty() const { return fields_.empty(); }
  size_t size() const { return fields_.size(); }
  const std::vector<Field>& fields() const { return fields_; }

  // The value bound to `column`, or nullptr if outside the domain.
  const Value* Get(Symbol column) const;
  bool Has(Symbol column) const { return Get(column) != nullptr; }

  // dom(t): the record's own schema.
  std::vector<Symbol> Schema() const;

  // Natural join {a} ./ {b}: the merged record when a and b agree on every
  // shared column, nullopt (the mutilated zero) otherwise.
  static std::optional<Tuple> Join(const Tuple& a, const Tuple& b);

  // True when Join(a, b) would succeed (no value conflict).
  static bool Consistent(const Tuple& a, const Tuple& b);

  // The restriction t|cols of the domain to the given columns.
  Tuple Restrict(const std::vector<Symbol>& columns) const;

  // Record extended with column -> value; the column must be fresh.
  Tuple Extend(Symbol column, Value value) const;

  // PartialMonoid interface (algebra/ring_traits.h), so the generic
  // MonoidRingElem<Tuple, A> is literally the A[Sng] of the paper.
  static Tuple One() { return Tuple(); }
  static std::optional<Tuple> Compose(const Tuple& a, const Tuple& b) {
    return Join(a, b);
  }

  size_t Hash() const;
  std::string ToString() const;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.fields_ == b.fields_;
  }
  friend bool operator!=(const Tuple& a, const Tuple& b) {
    return !(a == b);
  }
  // Lexicographic on the canonical field sequence (deterministic output
  // ordering for printing; not semantically meaningful).
  friend bool operator<(const Tuple& a, const Tuple& b);

 private:
  std::vector<Field> fields_;  // sorted by Symbol id, unique columns
};

}  // namespace ring
}  // namespace ringdb

template <>
struct std::hash<ringdb::ring::Tuple> {
  size_t operator()(const ringdb::ring::Tuple& t) const noexcept {
    return t.Hash();
  }
};

#endif  // RINGDB_RING_TUPLE_H_
