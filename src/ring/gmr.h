// Generalized multiset relations: the ring of databases A[T] (§3,
// Definition 3.1).
//
// A Gmr is a finite-support function Tuple -> Numeric. Addition generalizes
// multiset union, multiplication generalizes the natural join (it is the
// convolution product of the monoid ring Z[Sng]), and every element has an
// additive inverse -R, which models deletions (Remark 5.1: deleting "too
// much" yields tuples with negative multiplicity, not an error).
//
// On classical multiset relations (uniform schema, multiplicities >= 0),
// + and * coincide with multiset union and multiset natural join; the unit
// tests check this against a naive reference join.

#ifndef RINGDB_RING_GMR_H_
#define RINGDB_RING_GMR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "ring/tuple.h"
#include "util/numeric.h"

namespace ringdb {
namespace ring {

class Gmr {
 public:
  using Support = std::unordered_map<Tuple, Numeric>;

  Gmr() = default;

  // 0: the empty gmr (additive identity).
  static Gmr Zero() { return Gmr(); }

  // 1: the nullary singleton {<> -> 1} (multiplicative identity).
  static Gmr One() { return Singleton(Tuple(), kOne); }

  // The scaled basis element m * chi_{t}.
  static Gmr Singleton(Tuple t, Numeric multiplicity);

  // Builds a classical multiset relation over `columns` from rows, each
  // with multiplicity 1 (duplicate rows accumulate).
  static Gmr FromRows(const std::vector<Symbol>& columns,
                      const std::vector<std::vector<Value>>& rows);

  // Multiplicity of t (0 outside the support).
  Numeric At(const Tuple& t) const;

  // Adds m to the multiplicity of t; entries cancelling to 0 are erased so
  // that support() is exactly the nonzero part (canonical representation).
  void Add(const Tuple& t, Numeric m);

  const Support& support() const { return support_; }
  size_t SupportSize() const { return support_.size(); }
  bool IsZero() const { return support_.empty(); }

  // Pre-sizes the support table for at least `n` tuples (batch paths pass
  // current size + delta entry count). Never shrinks.
  void Reserve(size_t n) { support_.reserve(n); }

  // Sum of all multiplicities: the Sum(.) aggregate of AGCA applied to
  // this gmr, i.e. the image under the ring homomorphism A[T] -> A that
  // collapses every tuple to <>.
  Numeric TotalMultiplicity() const;

  // True iff this is a classical multiset relation (§5): all tuples share
  // one schema and all multiplicities are positive integers.
  bool IsMultisetRelation() const;

  Gmr& operator+=(const Gmr& o);
  friend Gmr operator+(const Gmr& a, const Gmr& b);
  Gmr operator-() const;
  friend Gmr operator-(const Gmr& a, const Gmr& b);

  // Convolution product: sum over all pairs of tuples whose natural join
  // is consistent. Inconsistent pairs contribute nothing (mutilated zero).
  friend Gmr operator*(const Gmr& a, const Gmr& b);

  // Scalar action of A on A[T] (the A-module structure, §2.5).
  friend Gmr operator*(Numeric a, const Gmr& r);

  friend bool operator==(const Gmr& a, const Gmr& b);
  friend bool operator!=(const Gmr& a, const Gmr& b) { return !(a == b); }

  // Deterministically ordered multi-line rendering (used to regenerate the
  // paper's example tables).
  std::string ToString() const;

 private:
  Support support_;
};

}  // namespace ring
}  // namespace ringdb

#endif  // RINGDB_RING_GMR_H_
