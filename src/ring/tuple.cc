#include "ring/tuple.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace ringdb {
namespace ring {

namespace {
bool FieldLess(const Tuple::Field& a, const Tuple::Field& b) {
  return a.first < b.first;
}
}  // namespace

Tuple::Tuple(std::initializer_list<Field> fields)
    : Tuple(FromFields(std::vector<Field>(fields))) {}

Tuple Tuple::FromFields(std::vector<Field> fields) {
  std::sort(fields.begin(), fields.end(), FieldLess);
  for (size_t i = 1; i < fields.size(); ++i) {
    if (fields[i - 1].first == fields[i].first) {
      RINGDB_CHECK(fields[i - 1].second == fields[i].second);
    }
  }
  fields.erase(std::unique(fields.begin(), fields.end(),
                           [](const Field& a, const Field& b) {
                             return a.first == b.first;
                           }),
               fields.end());
  Tuple t;
  t.fields_ = std::move(fields);
  return t;
}

Tuple Tuple::FromRow(const std::vector<Symbol>& columns,
                     const std::vector<Value>& values) {
  RINGDB_CHECK_EQ(columns.size(), values.size());
  std::vector<Field> fields;
  fields.reserve(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) {
    fields.emplace_back(columns[i], values[i]);
  }
  return FromFields(std::move(fields));
}

const Value* Tuple::Get(Symbol column) const {
  auto it = std::lower_bound(fields_.begin(), fields_.end(),
                             Field(column, Value()), FieldLess);
  if (it == fields_.end() || it->first != column) return nullptr;
  return &it->second;
}

std::vector<Symbol> Tuple::Schema() const {
  std::vector<Symbol> cols;
  cols.reserve(fields_.size());
  for (const Field& f : fields_) cols.push_back(f.first);
  return cols;
}

std::optional<Tuple> Tuple::Join(const Tuple& a, const Tuple& b) {
  Tuple out;
  out.fields_.reserve(a.fields_.size() + b.fields_.size());
  size_t i = 0, j = 0;
  while (i < a.fields_.size() && j < b.fields_.size()) {
    if (a.fields_[i].first < b.fields_[j].first) {
      out.fields_.push_back(a.fields_[i++]);
    } else if (b.fields_[j].first < a.fields_[i].first) {
      out.fields_.push_back(b.fields_[j++]);
    } else {
      if (a.fields_[i].second != b.fields_[j].second) return std::nullopt;
      out.fields_.push_back(a.fields_[i]);
      ++i;
      ++j;
    }
  }
  out.fields_.insert(out.fields_.end(), a.fields_.begin() + i,
                     a.fields_.end());
  out.fields_.insert(out.fields_.end(), b.fields_.begin() + j,
                     b.fields_.end());
  return out;
}

bool Tuple::Consistent(const Tuple& a, const Tuple& b) {
  size_t i = 0, j = 0;
  while (i < a.fields_.size() && j < b.fields_.size()) {
    if (a.fields_[i].first < b.fields_[j].first) {
      ++i;
    } else if (b.fields_[j].first < a.fields_[i].first) {
      ++j;
    } else {
      if (a.fields_[i].second != b.fields_[j].second) return false;
      ++i;
      ++j;
    }
  }
  return true;
}

Tuple Tuple::Restrict(const std::vector<Symbol>& columns) const {
  std::vector<Field> kept;
  for (const Field& f : fields_) {
    if (std::find(columns.begin(), columns.end(), f.first) != columns.end()) {
      kept.push_back(f);
    }
  }
  Tuple t;
  t.fields_ = std::move(kept);  // restriction preserves sortedness
  return t;
}

Tuple Tuple::Extend(Symbol column, Value value) const {
  RINGDB_CHECK(!Has(column));
  Tuple t = *this;
  auto it = std::lower_bound(t.fields_.begin(), t.fields_.end(),
                             Field(column, Value()), FieldLess);
  t.fields_.insert(it, Field(column, std::move(value)));
  return t;
}

size_t Tuple::Hash() const {
  size_t h = 0x2545f4914f6cdd1dULL;
  for (const Field& f : fields_) {
    h = HashCombine(h, std::hash<Symbol>()(f.first));
    h = HashCombine(h, f.second.Hash());
  }
  return h;
}

std::string Tuple::ToString() const {
  std::ostringstream out;
  out << '{';
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i) out << "; ";
    out << fields_[i].first.str() << "->" << fields_[i].second.ToString();
  }
  out << '}';
  return out.str();
}

bool operator<(const Tuple& a, const Tuple& b) {
  const auto& x = a.fields_;
  const auto& y = b.fields_;
  size_t n = std::min(x.size(), y.size());
  for (size_t i = 0; i < n; ++i) {
    if (x[i].first != y[i].first) return x[i].first < y[i].first;
    if (x[i].second != y[i].second) return x[i].second < y[i].second;
  }
  return x.size() < y.size();
}

}  // namespace ring
}  // namespace ringdb
