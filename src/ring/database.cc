#include "ring/database.h"

#include <cstdlib>
#include <sstream>

#include "util/check.h"

namespace ringdb {
namespace ring {

void Catalog::AddRelation(Symbol name, std::vector<Symbol> columns) {
  auto it = schemas_.find(name);
  if (it != schemas_.end()) {
    RINGDB_CHECK(it->second == columns);
    return;
  }
  schemas_.emplace(name, std::move(columns));
}

const std::vector<Symbol>& Catalog::Columns(Symbol name) const {
  auto it = schemas_.find(name);
  RINGDB_CHECK(it != schemas_.end());
  return it->second;
}

std::vector<Symbol> Catalog::RelationNames() const {
  std::vector<Symbol> names;
  names.reserve(schemas_.size());
  for (const auto& [name, cols] : schemas_) names.push_back(name);
  return names;
}

std::string Update::ToString() const {
  std::ostringstream out;
  out << (sign == Sign::kInsert ? '+' : '-') << relation.str() << '(';
  for (size_t i = 0; i < values.size(); ++i) {
    if (i) out << ", ";
    out << values[i].ToString();
  }
  out << ')';
  return out.str();
}

const Gmr Database::kEmpty;

Database::Database(Catalog catalog) : catalog_(std::move(catalog)) {}

const Gmr& Database::Relation(Symbol name) const {
  RINGDB_CHECK(catalog_.Has(name));
  auto it = relations_.find(name);
  if (it == relations_.end()) return kEmpty;
  return it->second;
}

void Database::Apply(const Update& u) {
  AddTuple(u.relation, u.values, u.SignedUnit());
}

void Database::AddTuple(Symbol relation, const std::vector<Value>& values,
                        Numeric m) {
  RINGDB_CHECK(catalog_.Has(relation));
  const std::vector<Symbol>& cols = catalog_.Columns(relation);
  RINGDB_CHECK_EQ(cols.size(), values.size());
  relations_[relation].Add(Tuple::FromRow(cols, values), m);
}

void Database::Reserve(Symbol relation, size_t additional) {
  RINGDB_CHECK(catalog_.Has(relation));
  Gmr& gmr = relations_[relation];
  gmr.Reserve(gmr.SupportSize() + additional);
}

int64_t Database::TotalTuples() const {
  int64_t n = 0;
  for (const auto& [name, gmr] : relations_) {
    for (const auto& [t, m] : gmr.support()) {
      n += m.is_integer() ? std::llabs(m.AsInt()) : 1;
    }
  }
  return n;
}

}  // namespace ring
}  // namespace ringdb
