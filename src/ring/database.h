// Catalog (relation schemas), update events ±R(t), and the database: one
// gmr per base relation, updated by single-tuple insertions/deletions.
//
// D + u is literally ring addition of the signed singleton gmr: insertion
// adds {t -> +1}, deletion adds {t -> -1}. A deletion of an absent tuple
// produces a negative multiplicity rather than failing (Remark 5.1);
// callers that want multiset integrity can check beforehand.

#ifndef RINGDB_RING_DATABASE_H_
#define RINGDB_RING_DATABASE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "ring/gmr.h"
#include "ring/tuple.h"
#include "util/status.h"
#include "util/symbol.h"

namespace ringdb {
namespace ring {

class Catalog {
 public:
  // Declares relation `name` with the given column names. Redeclaration
  // with a different arity is a checked failure.
  void AddRelation(Symbol name, std::vector<Symbol> columns);

  bool Has(Symbol name) const { return schemas_.contains(name); }
  const std::vector<Symbol>& Columns(Symbol name) const;
  size_t Arity(Symbol name) const { return Columns(name).size(); }
  std::vector<Symbol> RelationNames() const;

 private:
  std::unordered_map<Symbol, std::vector<Symbol>> schemas_;
};

// A single-tuple update event ±R(t1, ..., tk).
struct Update {
  enum class Sign { kInsert, kDelete };

  Sign sign = Sign::kInsert;
  Symbol relation;
  std::vector<Value> values;  // positional, per the catalog's column order

  static Update Insert(Symbol relation, std::vector<Value> values) {
    return {Sign::kInsert, relation, std::move(values)};
  }
  static Update Delete(Symbol relation, std::vector<Value> values) {
    return {Sign::kDelete, relation, std::move(values)};
  }

  // +1 for insertion, -1 for deletion.
  Numeric SignedUnit() const {
    return sign == Sign::kInsert ? kOne : Numeric(int64_t{-1});
  }

  std::string ToString() const;
};

class Database {
 public:
  explicit Database(Catalog catalog);

  const Catalog& catalog() const { return catalog_; }

  // The current gmr of relation `name` (empty gmr if never touched).
  const Gmr& Relation(Symbol name) const;

  // D := D + u.
  void Apply(const Update& u);

  // D := D + m * chi_{R(values)}: applies a coalesced batch delta entry in
  // one step (m is the net multiplicity of the tuple within the batch).
  void AddTuple(Symbol relation, const std::vector<Value>& values, Numeric m);

  // Pre-sizes a relation's gmr for `additional` more tuples; the batch
  // path calls this once per delta block instead of growing tuple by
  // tuple.
  void Reserve(Symbol relation, size_t additional);

  void Insert(Symbol relation, std::vector<Value> values) {
    Apply(Update::Insert(relation, std::move(values)));
  }
  void Delete(Symbol relation, std::vector<Value> values) {
    Apply(Update::Delete(relation, std::move(values)));
  }

  // Total number of tuples (by absolute multiplicity) across relations;
  // used by benchmarks to report database size.
  int64_t TotalTuples() const;

 private:
  Catalog catalog_;
  std::unordered_map<Symbol, Gmr> relations_;
  static const Gmr kEmpty;
};

}  // namespace ring
}  // namespace ringdb

#endif  // RINGDB_RING_DATABASE_H_
