#include "ring/gmr.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/check.h"

namespace ringdb {
namespace ring {

Gmr Gmr::Singleton(Tuple t, Numeric multiplicity) {
  Gmr r;
  r.Add(t, multiplicity);
  return r;
}

Gmr Gmr::FromRows(const std::vector<Symbol>& columns,
                  const std::vector<std::vector<Value>>& rows) {
  Gmr r;
  for (const auto& row : rows) {
    r.Add(Tuple::FromRow(columns, row), kOne);
  }
  return r;
}

Numeric Gmr::At(const Tuple& t) const {
  auto it = support_.find(t);
  if (it == support_.end()) return kZero;
  return it->second;
}

void Gmr::Add(const Tuple& t, Numeric m) {
  if (m.IsZero()) return;
  auto [it, inserted] = support_.try_emplace(t, m);
  if (!inserted) {
    it->second += m;
    if (it->second.IsZero()) support_.erase(it);
  }
}

Numeric Gmr::TotalMultiplicity() const {
  Numeric total = kZero;
  for (const auto& [t, m] : support_) total += m;
  return total;
}

bool Gmr::IsMultisetRelation() const {
  const std::vector<Symbol>* schema = nullptr;
  std::vector<Symbol> first;
  for (const auto& [t, m] : support_) {
    if (!m.is_integer() || m.AsInt() < 0) return false;
    if (schema == nullptr) {
      first = t.Schema();
      schema = &first;
    } else if (t.Schema() != *schema) {
      return false;
    }
  }
  return true;
}

Gmr& Gmr::operator+=(const Gmr& o) {
  for (const auto& [t, m] : o.support_) Add(t, m);
  return *this;
}

Gmr operator+(const Gmr& a, const Gmr& b) {
  Gmr r = a;
  r += b;
  return r;
}

Gmr Gmr::operator-() const {
  Gmr r;
  for (const auto& [t, m] : support_) r.support_.emplace(t, -m);
  return r;
}

Gmr operator-(const Gmr& a, const Gmr& b) { return a + (-b); }

Gmr operator*(const Gmr& a, const Gmr& b) {
  Gmr r;
  for (const auto& [t1, m1] : a.support_) {
    for (const auto& [t2, m2] : b.support_) {
      std::optional<Tuple> joined = Tuple::Join(t1, t2);
      if (!joined.has_value()) continue;
      r.Add(*joined, m1 * m2);
    }
  }
  return r;
}

Gmr operator*(Numeric a, const Gmr& r) {
  Gmr out;
  if (a.IsZero()) return out;
  for (const auto& [t, m] : r.support_) out.Add(t, a * m);
  return out;
}

bool operator==(const Gmr& a, const Gmr& b) {
  if (a.support_.size() != b.support_.size()) return false;
  for (const auto& [t, m] : a.support_) {
    auto it = b.support_.find(t);
    if (it == b.support_.end() || it->second != m) return false;
  }
  return true;
}

std::string Gmr::ToString() const {
  // std::map gives deterministic tuple order for printing.
  std::map<Tuple, Numeric> ordered(support_.begin(), support_.end());
  std::ostringstream out;
  out << "{|";
  bool first = true;
  for (const auto& [t, m] : ordered) {
    if (!first) out << ", ";
    first = false;
    out << t.ToString() << " -> " << m.ToString();
  }
  out << "|}";
  return out.str();
}

}  // namespace ring
}  // namespace ringdb
