// Delta queries (§6): the rewrite Delta_u(q) such that
// [[q]](A + u) = [[q]](A) + [[Delta_u q]](A) (Proposition 6.1).
//
// Updates are symbolic events ±R(p1, ..., pk) whose parameters p_i are
// fresh query variables; a concrete update instantiates them with the
// inserted/deleted tuple's values. AGCA is closed under Delta, so deltas
// can be taken repeatedly ("infinitely differentiable" queries) — each
// application strictly reduces the degree for queries with simple
// conditions (Theorem 6.4), bottoming out at database-free expressions.

#ifndef RINGDB_DELTA_DELTA_H_
#define RINGDB_DELTA_DELTA_H_

#include <string>
#include <vector>

#include "agca/ast.h"
#include "ring/database.h"

namespace ringdb {
namespace delta {

// A symbolic single-tuple update event. When `sign_param` is a non-empty
// symbol the event's sign is symbolic too: the delta of a matching atom
// is sign_param * (x1 := p1) * ... — i.e. the update multiplicity (+1 or
// -1) becomes a bound variable, letting one delta expression cover both
// insertion and deletion (used by the §1.1 delta-tower baseline, where
// U contains both signs of every tuple).
struct Event {
  ring::Update::Sign sign = ring::Update::Sign::kInsert;
  Symbol relation;
  std::vector<Symbol> params;  // one fresh variable per column
  Symbol sign_param;           // empty (id 0): concrete sign

  bool IsInsert() const { return sign == ring::Update::Sign::kInsert; }
  bool HasSymbolicSign() const { return sign_param != Symbol(); }
  std::string ToString() const;
};

// Builds the event ±R(p...) with canonical parameter names "@R.col<tag>"
// (tag distinguishes nesting levels when taking repeated deltas).
Event MakeEvent(const ring::Catalog& catalog, Symbol relation,
                ring::Update::Sign sign, const std::string& tag = "");

// An event with a symbolic sign variable "@R!sign<tag>".
Event MakeSymbolicSignEvent(const ring::Catalog& catalog, Symbol relation,
                            const std::string& tag = "");

// The delta rewrite. Implements every rule of §6, including the general
// (non-simple) condition rule
//   Delta(t θ 0) = ((t + Δt) θ 0)*(t θ̄ 0) − ((t + Δt) θ̄ 0)*(t θ 0);
// simple conditions short-circuit to delta 0.
agca::ExprPtr Delta(const agca::ExprPtr& q, const Event& event);

// Binds the event's parameters to a concrete update's values, for
// evaluating a delta expression directly (classical IVM baseline, tests).
ring::Tuple BindParams(const Event& event, const ring::Update& update);

}  // namespace delta
}  // namespace ringdb

#endif  // RINGDB_DELTA_DELTA_H_
