#include "delta/delta.h"

#include <sstream>

#include "util/check.h"

namespace ringdb {
namespace delta {

using agca::CmpOp;
using agca::Expr;
using agca::ExprPtr;
using agca::IsVar;
using agca::Term;
using agca::TermValue;
using agca::TermVar;

std::string Event::ToString() const {
  std::ostringstream out;
  out << (IsInsert() ? '+' : '-') << relation.str() << '(';
  for (size_t i = 0; i < params.size(); ++i) {
    if (i) out << ", ";
    out << params[i].str();
  }
  out << ')';
  return out.str();
}

Event MakeEvent(const ring::Catalog& catalog, Symbol relation,
                ring::Update::Sign sign, const std::string& tag) {
  Event ev;
  ev.sign = sign;
  ev.relation = relation;
  for (Symbol col : catalog.Columns(relation)) {
    ev.params.push_back(
        Symbol::Intern("@" + relation.str() + "." + col.str() + tag));
  }
  return ev;
}

Event MakeSymbolicSignEvent(const ring::Catalog& catalog, Symbol relation,
                            const std::string& tag) {
  Event ev = MakeEvent(catalog, relation, ring::Update::Sign::kInsert, tag);
  ev.sign_param = Symbol::Intern("@" + relation.str() + "!sign" + tag);
  return ev;
}

namespace {

// Delta of a relational atom: ±R(t) applied to R(a1, ..., ak) yields
// ±prod_i (a_i := p_i) for variable arguments; constant arguments become
// equality guards on the parameter (the update only matches if its value
// equals the constant).
ExprPtr DeltaRelation(const Expr& q, const Event& ev) {
  if (q.relation() != ev.relation) return Expr::Const(kZero);
  RINGDB_CHECK_EQ(q.args().size(), ev.params.size());
  std::vector<ExprPtr> factors;
  factors.reserve(q.args().size());
  for (size_t i = 0; i < q.args().size(); ++i) {
    const Term& t = q.args()[i];
    if (IsVar(t)) {
      factors.push_back(
          Expr::Assign(TermVar(t), Expr::Var(ev.params[i])));
    } else {
      factors.push_back(Expr::Cmp(CmpOp::kEq, Expr::Var(ev.params[i]),
                                  Expr::ValueConst(TermValue(t))));
    }
  }
  if (ev.HasSymbolicSign()) {
    factors.insert(factors.begin(), Expr::Var(ev.sign_param));
    return Expr::Mul(std::move(factors));
  }
  ExprPtr d = Expr::Mul(std::move(factors));
  return ev.IsInsert() ? d : Expr::Neg(std::move(d));
}

// Delta of a product, folded right-to-left over the factor list:
//   Delta(a * b) = Delta(a)*b + a*Delta(b) + Delta(a)*Delta(b).
ExprPtr DeltaProduct(const std::vector<ExprPtr>& factors, size_t index,
                     const Event& ev) {
  if (index + 1 == factors.size()) return Delta(factors[index], ev);
  ExprPtr a = factors[index];
  std::vector<ExprPtr> rest(factors.begin() + index + 1, factors.end());
  ExprPtr b = Expr::Mul(rest);
  ExprPtr da = Delta(a, ev);
  ExprPtr db = DeltaProduct(factors, index + 1, ev);
  return Expr::Add({Expr::Mul({da, b}), Expr::Mul({a, db}),
                    Expr::Mul({da, db})});
}

// The general condition rule of §6 for t θ 0 with Δt possibly nonzero.
ExprPtr DeltaCondition(CmpOp op, const ExprPtr& t, const Event& ev) {
  ExprPtr dt = Delta(t, ev);
  if (dt->IsZero()) return Expr::Const(kZero);  // simple condition
  ExprPtr zero = Expr::Const(kZero);
  ExprPtr t_new = Expr::Add({t, dt});
  CmpOp bar = agca::Complement(op);
  ExprPtr became_true = Expr::Mul(
      {Expr::Cmp(op, t_new, zero), Expr::Cmp(bar, t, zero)});
  ExprPtr became_false = Expr::Mul(
      {Expr::Cmp(bar, t_new, zero), Expr::Cmp(op, t, zero)});
  return Expr::Add({became_true, Expr::Neg(became_false)});
}

}  // namespace

ExprPtr Delta(const ExprPtr& q, const Event& ev) {
  switch (q->kind()) {
    case Expr::Kind::kConst:
    case Expr::Kind::kValueConst:
    case Expr::Kind::kVar:
      // Constants and (bound) variables do not depend on the database.
      return Expr::Const(kZero);

    case Expr::Kind::kRelation:
      return DeltaRelation(*q, ev);

    case Expr::Kind::kAdd: {
      std::vector<ExprPtr> deltas;
      deltas.reserve(q->children().size());
      for (const auto& c : q->children()) deltas.push_back(Delta(c, ev));
      return Expr::Add(std::move(deltas));
    }

    case Expr::Kind::kMul:
      return DeltaProduct(q->children(), 0, ev);

    case Expr::Kind::kSum:
      return Expr::Sum(q->group_vars(), Delta(q->child(), ev));

    case Expr::Kind::kCmp: {
      if (agca::DatabaseFree(*q->lhs()) && agca::DatabaseFree(*q->rhs())) {
        return Expr::Const(kZero);
      }
      // l θ r is (l - r) θ 0.
      ExprPtr t = Expr::Add({q->lhs(), Expr::Neg(q->rhs())});
      return DeltaCondition(q->cmp_op(), t, ev);
    }

    case Expr::Kind::kAssign: {
      // x := t is treated like the condition x = t (§6).
      if (agca::DatabaseFree(*q->child())) return Expr::Const(kZero);
      ExprPtr t = Expr::Add({Expr::Var(q->var()), Expr::Neg(q->child())});
      return DeltaCondition(CmpOp::kEq, t, ev);
    }
  }
  RINGDB_CHECK(false);
  return nullptr;
}

ring::Tuple BindParams(const Event& event, const ring::Update& update) {
  RINGDB_CHECK(event.relation == update.relation);
  RINGDB_CHECK(event.sign == update.sign);
  RINGDB_CHECK_EQ(event.params.size(), update.values.size());
  std::vector<ring::Tuple::Field> fields;
  fields.reserve(event.params.size());
  for (size_t i = 0; i < event.params.size(); ++i) {
    fields.emplace_back(event.params[i], update.values[i]);
  }
  return ring::Tuple::FromFields(std::move(fields));
}

}  // namespace delta
}  // namespace ringdb
