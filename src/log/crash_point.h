// Fault-injection kill points for crash-recovery testing.
//
// The durability layer (WAL append, fsync, checkpoint write/rename/GC)
// marks every state transition with RINGDB_CRASH_POINT("name"). In
// normal operation a point costs one predictable branch on a cached
// flag. Under test, the environment arms the harness:
//
//   RINGDB_CRASH_AT=N       _exit(137) at the N-th crash point hit
//                           (1-based, process-wide, any point name)
//   RINGDB_CRASH_REPORT=p   before exiting, write "<hit> <name>\n" to
//                           file p so the parent test can log where the
//                           process died
//
// Killing at the N-th *hit* rather than at a named point is what makes
// the recovery test "kill-anywhere": a uniformly random N lands between
// any two adjacent durability state transitions — mid-record, between
// write and fsync, between checkpoint rename and GC — without the test
// enumerating the transitions. _exit (not abort, not exceptions) models
// a power-cut: no destructors, no flush, no atexit.

#ifndef RINGDB_LOG_CRASH_POINT_H_
#define RINGDB_LOG_CRASH_POINT_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace ringdb {
namespace log {

// True when RINGDB_CRASH_AT is set for this process (cached at first
// call; the env is read once).
bool CrashPointsArmed();

// Registers one hit; exits the process iff this is the armed N-th hit.
void CrashPointHit(const char* name);

// Total hits so far (test introspection: a completed run's hit count
// bounds the useful RINGDB_CRASH_AT range for the next run).
uint64_t CrashPointHits();

// Per-site pass-through counter, registered once per call site by the
// macro's function-local static (name must be a string literal — the
// pointer is retained). Returns a stable atomic the site bumps on every
// pass, armed or not, so StatsJson can show which durability
// transitions a run actually exercised.
std::atomic<uint64_t>& RegisterCrashPoint(const char* name);

struct CrashPointCount {
  const char* name;
  uint64_t hits;
};

// All registered crash points with their cumulative pass counts, in
// registration order (only points whose call site executed at least
// once are registered).
std::vector<CrashPointCount> CrashPointCounts();

}  // namespace log
}  // namespace ringdb

// The cheap always-on marker. Kept a macro so the fast path inlines to
// one relaxed increment on a cached per-site counter plus the disarmed
// flag check.
#define RINGDB_CRASH_POINT(name)                        \
  do {                                                  \
    static std::atomic<uint64_t>& rdb_cp_hits_ =        \
        ::ringdb::log::RegisterCrashPoint(name);        \
    rdb_cp_hits_.fetch_add(1, std::memory_order_relaxed); \
    if (::ringdb::log::CrashPointsArmed()) {            \
      ::ringdb::log::CrashPointHit(name);               \
    }                                                   \
  } while (0)

#endif  // RINGDB_LOG_CRASH_POINT_H_
