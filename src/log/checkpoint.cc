#include "log/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "log/crash_point.h"
#include "log/crc32.h"
#include "log/serialize.h"
#include "runtime/engine.h"
#include "util/hash.h"

namespace ringdb {
namespace log {

namespace {

namespace fs = std::filesystem;

constexpr char kCkptMagic[8] = {'R', 'D', 'B', 'C', 'K', 'P', '1', '\n'};
// magic + crc:u32 + payload_len:u64
constexpr size_t kCkptHeaderSize = sizeof(kCkptMagic) + 4 + 8;

std::string CkptFileName(const std::string& name, uint64_t seq) {
  return name + "." + std::to_string(seq) + ".ckpt";
}

// Parses "<name>.<seq>.ckpt"; false when `filename` is not a checkpoint
// of `name` (different engine, temp file, stray).
bool ParseCkptSeq(const std::string& name, const std::string& filename,
                  uint64_t* seq) {
  const std::string prefix = name + ".";
  const std::string suffix = ".ckpt";
  if (filename.size() <= prefix.size() + suffix.size()) return false;
  if (filename.compare(0, prefix.size(), prefix) != 0) return false;
  if (filename.compare(filename.size() - suffix.size(), suffix.size(),
                       suffix) != 0) {
    return false;
  }
  const std::string digits = filename.substr(
      prefix.size(), filename.size() - prefix.size() - suffix.size());
  if (digits.empty()) return false;
  uint64_t v = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *seq = v;
  return true;
}

Status FsyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::Internal("cannot open for fsync: " + path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::Internal("fsync failed: " + path);
  return Status::Ok();
}

// Serializes the engine's full view state (every shard, every view).
void EncodeEngineState(const runtime::Engine& engine, std::string* out) {
  const size_t num_shards = engine.num_shards();
  PutU32(out, static_cast<uint32_t>(num_shards));
  for (size_t s = 0; s < num_shards; ++s) {
    const runtime::Executor& shard = engine.sharded().shard(s);
    const size_t num_views = shard.num_views();
    PutU32(out, static_cast<uint32_t>(num_views));
    for (size_t v = 0; v < num_views; ++v) {
      const runtime::ViewTable& view = shard.view(static_cast<int>(v));
      PutU32(out, static_cast<uint32_t>(view.arity()));
      PutU64(out, view.size());
      view.ForEach([&](runtime::KeyView key, Numeric value) {
        for (size_t i = 0; i < key.size(); ++i) EncodeValue(key[i], out);
        EncodeNumeric(value, out);
      });
    }
  }
}

// One view's decoded entries, staged before installation.
struct ViewEntries {
  std::vector<runtime::Key> keys;
  std::vector<Numeric> values;
};

// Decodes the full engine state into scratch, touching the engine only
// for layout validation. Two-phase (decode everything, then install) so
// a failure anywhere leaves the engine exactly as it was — the caller
// can fall back to an older checkpoint or to full WAL replay.
Status DecodeEngineState(BufReader* in, runtime::Engine* engine) {
  uint32_t num_shards;
  if (!in->GetU32(&num_shards)) {
    return Status::InvalidArgument("checkpoint: truncated shard count");
  }
  if (num_shards != engine->num_shards()) {
    return Status::InvalidArgument(
        "checkpoint: shard count mismatch (file " +
        std::to_string(num_shards) + ", engine " +
        std::to_string(engine->num_shards()) + ")");
  }
  std::vector<std::vector<ViewEntries>> staged(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    const runtime::Executor& shard = engine->sharded().shard(s);
    uint32_t num_views;
    if (!in->GetU32(&num_views)) {
      return Status::InvalidArgument("checkpoint: truncated view count");
    }
    if (num_views != shard.num_views()) {
      return Status::InvalidArgument("checkpoint: view count mismatch");
    }
    staged[s].resize(num_views);
    for (uint32_t v = 0; v < num_views; ++v) {
      const runtime::ViewTable& view = shard.view(static_cast<int>(v));
      uint32_t arity;
      uint64_t entries;
      if (!in->GetU32(&arity) || !in->GetU64(&entries)) {
        return Status::InvalidArgument("checkpoint: truncated view header");
      }
      if (arity != view.arity()) {
        return Status::InvalidArgument("checkpoint: view arity mismatch");
      }
      if (entries > in->remaining()) {
        return Status::InvalidArgument(
            "checkpoint: implausible entry count");
      }
      if (view.size() != 0) {
        return Status::FailedPrecondition(
            "checkpoint: loading into a non-empty engine");
      }
      ViewEntries& dst = staged[s][v];
      dst.keys.reserve(entries);
      dst.values.reserve(entries);
      for (uint64_t e = 0; e < entries; ++e) {
        runtime::Key key(arity);
        for (uint32_t i = 0; i < arity; ++i) {
          RINGDB_RETURN_IF_ERROR(DecodeValue(in, &key[i]));
        }
        Numeric value;
        RINGDB_RETURN_IF_ERROR(DecodeNumeric(in, &value));
        dst.keys.push_back(std::move(key));
        dst.values.push_back(value);
      }
    }
  }
  if (in->remaining() != 0) {
    return Status::InvalidArgument(
        "checkpoint: trailing bytes after engine state");
  }
  // Everything validated; install.
  for (uint32_t s = 0; s < num_shards; ++s) {
    runtime::Executor& shard = engine->sharded().shard(s);
    for (uint32_t v = 0; v < staged[s].size(); ++v) {
      runtime::ViewTable& view = shard.mutable_view(static_cast<int>(v));
      ViewEntries& src = staged[s][v];
      view.Reserve(src.keys.size());
      for (size_t e = 0; e < src.keys.size(); ++e) {
        // EnsureEntry (not Add): inserts exactly the stored value, even
        // zero, and maintains all registered indexes — view indexes are
        // registered at engine construction, before any load.
        view.EnsureEntry(src.keys[e], src.values[e]);
      }
    }
  }
  // The install wrote view tables behind ApplyBatch's back; without this
  // the executor would keep serving sub-snapshots frozen when the engine
  // was empty (e.g. the pre-ingest snapshot built at registration).
  engine->sharded().NoteExternalMutation();
  return Status::Ok();
}

// Reads and validates one checkpoint file; returns the payload reader
// positioned past the meta fields. Any validation failure is reported
// as non-ok — LoadLatestCheckpoint treats that as "skip this file".
Status ReadCheckpointFile(const std::string& path, uint64_t expected_seq,
                          uint64_t fingerprint, std::string* payload,
                          CheckpointMeta* meta, size_t* state_offset) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::Internal("cannot open checkpoint " + path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (content.size() < kCkptHeaderSize ||
      std::memcmp(content.data(), kCkptMagic, sizeof(kCkptMagic)) != 0) {
    return Status::InvalidArgument("bad checkpoint header: " + path);
  }
  BufReader header(content.data() + sizeof(kCkptMagic),
                   kCkptHeaderSize - sizeof(kCkptMagic));
  uint32_t crc = 0;
  uint64_t len = 0;
  header.GetU32(&crc);
  header.GetU64(&len);
  if (len != content.size() - kCkptHeaderSize) {
    return Status::InvalidArgument("checkpoint length mismatch: " + path);
  }
  if (Crc32(content.data() + kCkptHeaderSize, len) != crc) {
    return Status::InvalidArgument("checkpoint checksum mismatch: " + path);
  }
  payload->assign(content, kCkptHeaderSize, len);
  BufReader pr(payload->data(), payload->size());
  uint64_t fp = 0;
  if (!pr.GetU64(&meta->seq) || !pr.GetU64(&meta->updates_applied) ||
      !pr.GetU64(&meta->wal_offset) || !pr.GetU64(&fp)) {
    return Status::InvalidArgument("checkpoint meta truncated: " + path);
  }
  if (meta->seq != expected_seq) {
    return Status::InvalidArgument("checkpoint seq/filename mismatch: " +
                                   path);
  }
  if (fp != fingerprint) {
    return Status::InvalidArgument(
        "checkpoint fingerprint mismatch (different query or shard "
        "layout): " + path);
  }
  meta->path = path;
  *state_offset = pr.position();
  return Status::Ok();
}

}  // namespace

uint64_t EngineFingerprint(const runtime::Engine& engine) {
  const uint64_t program_hash = HashString(engine.program().ToString());
  return Mix64(program_hash ^ (engine.num_shards() * 0x9e3779b97f4a7c15ULL));
}

bool Checkpointable(const runtime::Engine& engine) {
  for (const compiler::ViewDef& view : engine.program().views) {
    if (view.lazy_init) return false;
  }
  return true;
}

Status WriteCheckpoint(const std::string& dir, const std::string& name,
                       const CheckpointMeta& meta,
                       const runtime::Engine& engine) {
  if (!Checkpointable(engine)) {
    return Status::FailedPrecondition(
        "engine has lazily initialized views; checkpoint not supported");
  }
  RINGDB_CRASH_POINT("ckpt:begin");
  std::string payload;
  PutU64(&payload, meta.seq);
  PutU64(&payload, meta.updates_applied);
  PutU64(&payload, meta.wal_offset);
  PutU64(&payload, EngineFingerprint(engine));
  EncodeEngineState(engine, &payload);

  std::string file;
  file.append(kCkptMagic, sizeof(kCkptMagic));
  PutU32(&file, Crc32(payload));
  PutU64(&file, payload.size());
  file.append(payload);

  const fs::path target = fs::path(dir) / CkptFileName(name, meta.seq);
  fs::path tmp = target;
  tmp += ".tmp" + std::to_string(::getpid());
  {
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      return Status::Internal("cannot create checkpoint temp " +
                              tmp.string());
    }
    // Two writes with a kill point between: a crash mid-checkpoint
    // leaves a short temp file that recovery ignores and GC removes.
    const size_t half = file.size() / 2;
    size_t done = 0;
    Status write_status = Status::Ok();
    auto write_span = [&](const char* data, size_t n) {
      while (done < n && write_status.ok()) {
        const ssize_t w = ::write(fd, data + done, n - done);
        if (w < 0) {
          write_status =
              Status::Internal("checkpoint write failed: " + tmp.string());
          break;
        }
        done += static_cast<size_t>(w);
      }
    };
    write_span(file.data(), half);
    RINGDB_CRASH_POINT("ckpt:mid_write");
    write_span(file.data(), file.size());
    if (write_status.ok() && ::fsync(fd) != 0) {
      write_status =
          Status::Internal("checkpoint fsync failed: " + tmp.string());
    }
    ::close(fd);
    if (!write_status.ok()) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return write_status;
    }
  }
  RINGDB_CRASH_POINT("ckpt:before_rename");
  std::error_code ec;
  fs::rename(tmp, target, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return Status::Internal("cannot publish checkpoint " + target.string() +
                            ": " + ec.message());
  }
  // Make the rename itself durable: fsync the directory entry.
  RINGDB_RETURN_IF_ERROR(FsyncPath(dir));
  RINGDB_CRASH_POINT("ckpt:after_rename");

  // GC: keep this generation and its predecessor (the fallback when the
  // newest file turns out damaged); drop older ones and stray temps.
  std::vector<uint64_t> seqs;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string fname = entry.path().filename().string();
    uint64_t seq;
    if (ParseCkptSeq(name, fname, &seq)) {
      seqs.push_back(seq);
    } else if (fname.rfind(name + ".", 0) == 0 &&
               fname.find(".tmp") != std::string::npos) {
      fs::remove(entry.path(), ec);
    }
  }
  std::sort(seqs.begin(), seqs.end());
  if (seqs.size() > 2) {
    for (size_t i = 0; i + 2 < seqs.size(); ++i) {
      fs::remove(fs::path(dir) / CkptFileName(name, seqs[i]), ec);
    }
  }
  RINGDB_CRASH_POINT("ckpt:gc");
  return Status::Ok();
}

StatusOr<bool> LoadLatestCheckpoint(const std::string& dir,
                                    const std::string& name,
                                    runtime::Engine* engine,
                                    CheckpointMeta* meta) {
  std::error_code ec;
  if (!fs::exists(dir, ec)) return false;
  std::vector<uint64_t> seqs;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    uint64_t seq;
    if (ParseCkptSeq(name, entry.path().filename().string(), &seq)) {
      seqs.push_back(seq);
    }
  }
  if (ec) {
    return Status::Internal("cannot list checkpoint dir " + dir + ": " +
                            ec.message());
  }
  std::sort(seqs.begin(), seqs.end(), std::greater<uint64_t>());
  const uint64_t fingerprint = EngineFingerprint(*engine);
  for (uint64_t seq : seqs) {
    const std::string path =
        (fs::path(dir) / CkptFileName(name, seq)).string();
    std::string payload;
    size_t state_offset = 0;
    CheckpointMeta candidate;
    Status valid = ReadCheckpointFile(path, seq, fingerprint, &payload,
                                      &candidate, &state_offset);
    if (!valid.ok()) continue;  // damaged or foreign: fall back to older
    BufReader state(payload.data() + state_offset,
                    payload.size() - state_offset);
    // The payload passed its CRC, so a decode failure here means a
    // format/fingerprint bug, not disk corruption — still skip rather
    // than crash, and let replay rebuild from scratch.
    Status loaded = DecodeEngineState(&state, engine);
    if (!loaded.ok()) continue;
    *meta = candidate;
    return true;
  }
  return false;
}

}  // namespace log
}  // namespace ringdb
