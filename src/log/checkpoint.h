// ViewTable checkpoints: the full materialized state of one engine
// (every view of every shard), frozen at a window boundary so recovery
// replays only the WAL tail past it instead of the whole log.
//
// A checkpoint file carries the epoch it freezes — the last WAL
// sequence number included and the cumulative `updates_applied` event
// count the serve snapshots advertise — plus the WAL offset just past
// that record (informational: recovery re-scans the log and filters by
// sequence number, which stays correct even if the log was truncated or
// rewritten underneath the stored offset), a program fingerprint so a
// checkpoint is never loaded into a different query or shard layout,
// and per shard, per view, every live entry as (key, value).
//
// Atomicity: the file is assembled in memory, written to a temp name,
// fsynced, renamed into place, and the directory fsynced — a crash
// leaves either the old set of checkpoints or the old set plus one new
// complete file, never a half-written visible checkpoint. One CRC-32
// over the whole payload rejects partial or bit-rotted files at load
// time; an invalid newest checkpoint silently falls back to the next
// older one (kept: the previous generation), and ultimately to a full
// WAL replay from the empty state. The WAL is synced *before* a
// checkpoint is written (DurableLog enforces it), so a visible
// checkpoint never claims an epoch ahead of the durable log.
//
// File name: <name>.<seq>.ckpt under the durability directory, where
// `name` identifies the engine ("q0", "q1", ... in QueryService).
//
// Engines with lazily initialized views cannot checkpoint (their state
// includes the base database and the initialized-slice sets); writers
// gate on Checkpointable() and such engines recover by full replay.

#ifndef RINGDB_LOG_CHECKPOINT_H_
#define RINGDB_LOG_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace ringdb {

namespace runtime {
class Engine;
}  // namespace runtime

namespace log {

// Identifies the (program, shard layout) a checkpoint belongs to: a
// checkpoint written by a different query definition or shard count is
// rejected at load, forcing the safe full-replay path.
uint64_t EngineFingerprint(const runtime::Engine& engine);

// False when the engine's program has lazily initialized views (their
// state is not captured by the view dump); such engines never
// checkpoint and recover by full WAL replay.
bool Checkpointable(const runtime::Engine& engine);

struct CheckpointMeta {
  uint64_t seq = 0;              // last WAL sequence included
  uint64_t updates_applied = 0;  // cumulative event epoch at that window
  uint64_t wal_offset = 0;       // offset just past that record (info only)
  std::string path;              // the file the meta came from (load)
};

// Writes <name>.<seq>.ckpt atomically, then garbage-collects all but
// the newest two generations (the new file and its predecessor — the
// fallback if the newest is later found damaged) plus any stale temp
// files. The engine must be quiescent (no apply in flight) and
// Checkpointable().
Status WriteCheckpoint(const std::string& dir, const std::string& name,
                       const CheckpointMeta& meta,
                       const runtime::Engine& engine);

// Loads the newest valid checkpoint for `name` into `engine` (which
// must be freshly created: empty views, same program/shard layout as
// the writer — enforced via the fingerprint). Returns true and fills
// *meta when one was loaded; false when none exists or none is valid
// (the caller replays the full WAL). I/O errors while listing the
// directory are returned as non-ok; a damaged checkpoint file is not an
// error, just skipped.
StatusOr<bool> LoadLatestCheckpoint(const std::string& dir,
                                    const std::string& name,
                                    runtime::Engine* engine,
                                    CheckpointMeta* meta);

}  // namespace log
}  // namespace ringdb

#endif  // RINGDB_LOG_CHECKPOINT_H_
