#include "log/durable_log.h"

#include <ctime>
#include <filesystem>
#include <system_error>
#include <utility>

#include "log/checkpoint.h"
#include "log/crash_point.h"
#include "log/serialize.h"
#include "runtime/engine.h"

namespace ringdb {
namespace log {

namespace {

namespace fs = std::filesystem;

// Spans here must survive -DRINGDB_NO_METRICS (obs::NowNs compiles to 0
// there); the histograms they feed become no-ops, but elapsed time also
// guards nothing semantic, so a private clock keeps the code one path.
uint64_t MonotonicNs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace

DurableLog::DurableLog(const ring::Catalog& catalog,
                       DurabilityOptions options)
    : catalog_(&catalog), options_(std::move(options)) {
  wal_path_ = options_.dir + "/windows.wal";
}

StatusOr<std::unique_ptr<DurableLog>> DurableLog::Open(
    const ring::Catalog& catalog, DurabilityOptions options) {
  if (!options.enabled()) {
    return Status::InvalidArgument("durability directory is empty");
  }
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::Internal("cannot create durability dir " + options.dir +
                            ": " + ec.message());
  }
  return std::unique_ptr<DurableLog>(
      new DurableLog(catalog, std::move(options)));
}

Status DurableLog::Recover(const std::vector<EngineSlot>& engines) {
  if (recovered_) {
    return Status::FailedPrecondition("durable log already recovered");
  }

  // Phase 1: newest valid checkpoint per engine. `floor[i]` is the WAL
  // sequence the engine's loaded state already includes (0 = empty).
  std::vector<uint64_t> floor(engines.size(), 0);
  uint64_t best_seq = 0;
  uint64_t best_updates = 0;
  for (size_t i = 0; i < engines.size(); ++i) {
    CheckpointMeta meta;
    RINGDB_ASSIGN_OR_RETURN(
        const bool loaded,
        LoadLatestCheckpoint(options_.dir, engines[i].name,
                             engines[i].engine, &meta));
    if (loaded) {
      floor[i] = meta.seq;
      recovered_from_checkpoint_ = true;
      if (meta.seq > best_seq) {
        best_seq = meta.seq;
        best_updates = meta.updates_applied;
      }
    }
  }

  // Phase 2: one scan of the WAL; each valid record past an engine's
  // floor replays through the normal prepared-batch path. The batch is
  // decoded at most once per record (lazily: a record every engine's
  // checkpoint already covers is skipped without decoding).
  WalScanResult scan;
  Status scan_status = ScanWal(
      wal_path_,
      [&](const WalRecordView& record) -> Status {
        bool needed = false;
        for (size_t i = 0; i < engines.size(); ++i) {
          needed = needed || record.seq > floor[i];
        }
        if (!needed) return Status::Ok();
        RINGDB_ASSIGN_OR_RETURN(
            exec::UpdateBatch batch,
            DecodeBatch(*catalog_, record.batch_bytes));
        for (size_t i = 0; i < engines.size(); ++i) {
          if (record.seq > floor[i]) {
            engines[i].engine->ApplyPrepared(batch);
          }
        }
        return Status::Ok();
      },
      &scan);
  if (!scan_status.ok()) {
    return Status::Internal("wal replay failed (" + wal_path_ +
                            "): " + std::string(scan_status.message()));
  }
  recovered_records_ = scan.records;
  if (scan.last_seq > best_seq) {
    best_seq = scan.last_seq;
    best_updates = scan.last_updates_after;
  }
  recovered_seq_ = best_seq;
  recovered_updates_ = best_updates;

  // Phase 3: drop the torn tail so appends resume on a record boundary.
  if (scan.valid_end < scan.file_size) {
    truncated_bytes_ = scan.file_size - scan.valid_end;
    RINGDB_RETURN_IF_ERROR(TruncateWal(wal_path_, scan.valid_end));
  }

  // Phase 4: reopen for appending.
  WalOptions wal_options;
  wal_options.policy = options_.fsync_policy;
  wal_options.group_windows = options_.group_windows;
  wal_options.group_max_delay_ms = options_.group_max_delay_ms;
  RINGDB_ASSIGN_OR_RETURN(wal_, WalWriter::Open(wal_path_, wal_options));
  recovered_ = true;
  return Status::Ok();
}

Status DurableLog::AppendWindow(uint64_t seq, uint64_t events,
                                uint64_t updates_after,
                                const exec::UpdateBatch& batch) {
  if (!recovered_) {
    return Status::FailedPrecondition("durable log not recovered");
  }
  RINGDB_CRASH_POINT("durable:before_append");
  // The span starts before encoding: serialization is part of the price
  // this window pays for durability, so the tracer attributes it to
  // wal_append (MonotonicNs and obs::NowNs read the same clock, so the
  // spans line up with the pipeline's other stages).
  const uint64_t t0 = MonotonicNs();
  encode_scratch_.clear();
  EncodeBatch(batch, &encode_scratch_);
  WalWriter::AppendResult append_result;
  RINGDB_RETURN_IF_ERROR(wal_.Append(seq, events, updates_after,
                                     encode_scratch_, &append_result));
  const uint64_t t1 = MonotonicNs();
  RINGDB_OBS(append_ns_.Record(t1 - t0));
#ifndef RINGDB_NO_METRICS
  if (trace_ != nullptr) {
    const uint64_t fsync_begin = t1 - append_result.fsync_ns;
    trace_->Stage(seq, obs::kTraceWalAppend, t0, fsync_begin);
    if (append_result.synced && append_result.fsync_ns > 0) {
      trace_->Stage(seq, obs::kTraceWalFsync, fsync_begin, t1);
    }
    trace_->SetBytesLogged(seq, append_result.bytes, append_result.synced);
  }
#endif
  RINGDB_CRASH_POINT("durable:after_append");
  return Status::Ok();
}

Status DurableLog::MaybeCheckpoint(uint64_t seq, uint64_t updates_applied,
                                   const std::vector<EngineSlot>& engines) {
  if (!recovered_) {
    return Status::FailedPrecondition("durable log not recovered");
  }
  if (options_.checkpoint_every_windows == 0) return Status::Ok();
  if (++windows_since_checkpoint_ < options_.checkpoint_every_windows) {
    return Status::Ok();
  }
  windows_since_checkpoint_ = 0;
  bool any = false;
  for (const EngineSlot& slot : engines) {
    any = any || Checkpointable(*slot.engine);
  }
  if (!any) return Status::Ok();

  const uint64_t t0 = MonotonicNs();
  // Log-ahead rule: the epoch a checkpoint claims must already be
  // durable in the WAL, or a crash could strand a checkpoint the log
  // tail cannot reconcile (kNever / kGroupCommit policies).
  RINGDB_RETURN_IF_ERROR(wal_.Sync());
  CheckpointMeta meta;
  meta.seq = seq;
  meta.updates_applied = updates_applied;
  meta.wal_offset = wal_.offset();
  for (const EngineSlot& slot : engines) {
    if (!Checkpointable(*slot.engine)) continue;
    RINGDB_RETURN_IF_ERROR(
        WriteCheckpoint(options_.dir, slot.name, meta, *slot.engine));
    ++checkpoints_;
  }
  const uint64_t t1 = MonotonicNs();
  RINGDB_OBS(checkpoint_ns_.Record(t1 - t0));
#ifndef RINGDB_NO_METRICS
  if (trace_ != nullptr) trace_->Stage(seq, obs::kTraceCheckpoint, t0, t1);
#endif
  return Status::Ok();
}

Status DurableLog::Sync() {
  if (!recovered_) {
    return Status::FailedPrecondition("durable log not recovered");
  }
  return wal_.Sync();
}

Status DurableLog::Close() {
  if (!wal_.is_open()) return Status::Ok();
  return wal_.Close();
}

DurabilityStats DurableLog::GetStats() const {
  DurabilityStats stats;
  stats.enabled = true;
  stats.policy = FsyncPolicyName(options_.fsync_policy);
  stats.wal_records = wal_.records_appended();
  stats.wal_bytes = wal_.bytes_appended();
  stats.wal_fsyncs = wal_.fsyncs();
  stats.unsynced_windows = wal_.unsynced_windows();
  stats.checkpoints = checkpoints_;
  stats.recovered_seq = recovered_seq_;
  stats.recovered_updates = recovered_updates_;
  stats.recovered_records = recovered_records_;
  stats.truncated_bytes = truncated_bytes_;
  stats.windows_since_checkpoint = windows_since_checkpoint_;
  stats.recovered_from_checkpoint = recovered_from_checkpoint_;
  stats.append_ns = append_ns_.Snapshot();
  stats.checkpoint_ns = checkpoint_ns_.Snapshot();
  return stats;
}

}  // namespace log
}  // namespace ringdb
