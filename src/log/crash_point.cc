#include "log/crash_point.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

namespace ringdb {
namespace log {

namespace {

std::atomic<uint64_t> g_hits{0};

// Per-site registry. Registration runs once per call site (the macro's
// magic static); CrashPointCounts may race with increments, which is
// fine — counts are advisory observability, read relaxed.
struct SiteRegistry {
  std::mutex mu;
  std::vector<std::pair<const char*, std::unique_ptr<std::atomic<uint64_t>>>>
      sites;
};

SiteRegistry& GetSiteRegistry() {
  static SiteRegistry* registry = new SiteRegistry;
  return *registry;
}

struct Config {
  long long target = -1;  // -1: disarmed
  const char* report = nullptr;
  Config() {
    if (const char* e = std::getenv("RINGDB_CRASH_AT")) {
      target = std::atoll(e);
      if (target <= 0) target = -1;
    }
    report = std::getenv("RINGDB_CRASH_REPORT");
  }
};

const Config& GetConfig() {
  static const Config config;
  return config;
}

}  // namespace

bool CrashPointsArmed() { return GetConfig().target > 0; }

uint64_t CrashPointHits() {
  return g_hits.load(std::memory_order_relaxed);
}

std::atomic<uint64_t>& RegisterCrashPoint(const char* name) {
  SiteRegistry& registry = GetSiteRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  // Two call sites may share a name (none do today); fold them into one
  // counter so the export stays keyed by name.
  for (auto& site : registry.sites) {
    if (std::strcmp(site.first, name) == 0) return *site.second;
  }
  registry.sites.emplace_back(name,
                              std::make_unique<std::atomic<uint64_t>>(0));
  return *registry.sites.back().second;
}

std::vector<CrashPointCount> CrashPointCounts() {
  SiteRegistry& registry = GetSiteRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<CrashPointCount> out;
  out.reserve(registry.sites.size());
  for (const auto& site : registry.sites) {
    out.push_back(CrashPointCount{
        site.first, site.second->load(std::memory_order_relaxed)});
  }
  return out;
}

void CrashPointHit(const char* name) {
  const Config& config = GetConfig();
  if (config.target <= 0) return;
  const uint64_t hit = g_hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (static_cast<long long>(hit) != config.target) return;
  if (config.report != nullptr) {
    // Raw write, no stdio buffering: the next line is _exit.
    char buf[256];
    const int n = std::snprintf(buf, sizeof(buf), "%llu %s\n",
                                static_cast<unsigned long long>(hit), name);
    const int fd = ::open(config.report, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0 && n > 0) {
      ssize_t ignored = ::write(fd, buf, static_cast<size_t>(n));
      (void)ignored;
      ::close(fd);
    }
  }
  ::_exit(137);  // the power cut: no destructors, no flushes
}

}  // namespace log
}  // namespace ringdb
