#include "log/crash_point.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ringdb {
namespace log {

namespace {

std::atomic<uint64_t> g_hits{0};

struct Config {
  long long target = -1;  // -1: disarmed
  const char* report = nullptr;
  Config() {
    if (const char* e = std::getenv("RINGDB_CRASH_AT")) {
      target = std::atoll(e);
      if (target <= 0) target = -1;
    }
    report = std::getenv("RINGDB_CRASH_REPORT");
  }
};

const Config& GetConfig() {
  static const Config config;
  return config;
}

}  // namespace

bool CrashPointsArmed() { return GetConfig().target > 0; }

uint64_t CrashPointHits() {
  return g_hits.load(std::memory_order_relaxed);
}

void CrashPointHit(const char* name) {
  const Config& config = GetConfig();
  if (config.target <= 0) return;
  const uint64_t hit = g_hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (static_cast<long long>(hit) != config.target) return;
  if (config.report != nullptr) {
    // Raw write, no stdio buffering: the next line is _exit.
    char buf[256];
    const int n = std::snprintf(buf, sizeof(buf), "%llu %s\n",
                                static_cast<unsigned long long>(hit), name);
    const int fd = ::open(config.report, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0 && n > 0) {
      ssize_t ignored = ::write(fd, buf, static_cast<size_t>(n));
      (void)ignored;
      ::close(fd);
    }
  }
  ::_exit(137);  // the power cut: no destructors, no flushes
}

}  // namespace log
}  // namespace ringdb
