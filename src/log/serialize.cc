#include "log/serialize.h"

#include <cstring>
#include <utility>
#include <vector>

namespace ringdb {
namespace log {

namespace {

// A corrupted-but-CRC-valid length field must not drive a giant
// allocation: every count is checked against the bytes that could
// possibly back it before any reserve. The smallest encodings are 1
// byte per Value and 9 per Numeric, so `count <= remaining` is a sound
// (loose) pre-reserve bound for both.
bool PlausibleCount(const BufReader& in, uint64_t count) {
  return count <= in.remaining();
}

}  // namespace

bool BufReader::GetU8(uint8_t* out) {
  if (!ok_ || size_ - pos_ < 1) {
    ok_ = false;
    return false;
  }
  *out = static_cast<uint8_t>(data_[pos_++]);
  return true;
}

bool BufReader::GetBytes(void* out, size_t n) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return true;
}

bool BufReader::GetU32(uint32_t* out) {
  unsigned char b[4];
  if (!GetBytes(b, 4)) return false;
  *out = static_cast<uint32_t>(b[0]) | static_cast<uint32_t>(b[1]) << 8 |
         static_cast<uint32_t>(b[2]) << 16 |
         static_cast<uint32_t>(b[3]) << 24;
  return true;
}

bool BufReader::GetU64(uint64_t* out) {
  unsigned char b[8];
  if (!GetBytes(b, 8)) return false;
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = v << 8 | b[i];
  *out = v;
  return true;
}

bool BufReader::GetI64(int64_t* out) {
  uint64_t u;
  if (!GetU64(&u)) return false;
  std::memcpy(out, &u, sizeof(u));
  return true;
}

bool BufReader::GetDouble(double* out) {
  uint64_t bits;
  if (!GetU64(&bits)) return false;
  std::memcpy(out, &bits, sizeof(bits));
  return true;
}

bool BufReader::GetString(std::string* out, uint32_t len) {
  if (!ok_ || size_ - pos_ < len) {
    ok_ = false;
    return false;
  }
  out->assign(data_ + pos_, len);
  pos_ += len;
  return true;
}

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out->append(b, 8);
}

void PutI64(std::string* out, int64_t v) {
  uint64_t u;
  std::memcpy(&u, &v, sizeof(v));
  PutU64(out, u);
}

void PutDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(v));
  PutU64(out, bits);
}

void EncodeValue(const Value& v, std::string* out) {
  PutU8(out, static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case Value::Kind::kInt:
      PutI64(out, v.AsInt());
      break;
    case Value::Kind::kDouble:
      PutDouble(out, v.AsDouble());
      break;
    case Value::Kind::kString: {
      const std::string& s = v.AsString();
      PutU32(out, static_cast<uint32_t>(s.size()));
      out->append(s);
      break;
    }
  }
}

Status DecodeValue(BufReader* in, Value* out) {
  uint8_t kind;
  if (!in->GetU8(&kind)) {
    return Status::InvalidArgument("value: truncated kind");
  }
  switch (kind) {
    case static_cast<uint8_t>(Value::Kind::kInt): {
      int64_t i;
      if (!in->GetI64(&i)) {
        return Status::InvalidArgument("value: truncated int payload");
      }
      *out = Value(i);
      return Status::Ok();
    }
    case static_cast<uint8_t>(Value::Kind::kDouble): {
      double d;
      if (!in->GetDouble(&d)) {
        return Status::InvalidArgument("value: truncated double payload");
      }
      *out = Value(d);
      return Status::Ok();
    }
    case static_cast<uint8_t>(Value::Kind::kString): {
      uint32_t len;
      std::string s;
      if (!in->GetU32(&len) || !in->GetString(&s, len)) {
        return Status::InvalidArgument("value: truncated string payload");
      }
      *out = Value(std::move(s));
      return Status::Ok();
    }
    default:
      return Status::InvalidArgument("value: unknown kind tag " +
                                     std::to_string(kind));
  }
}

void EncodeNumeric(Numeric n, std::string* out) {
  if (n.is_integer()) {
    PutU8(out, 0);
    PutI64(out, n.AsInt());
  } else {
    PutU8(out, 1);
    PutDouble(out, n.AsDouble());
  }
}

Status DecodeNumeric(BufReader* in, Numeric* out) {
  uint8_t tag;
  if (!in->GetU8(&tag)) {
    return Status::InvalidArgument("numeric: truncated tag");
  }
  if (tag == 0) {
    int64_t i;
    if (!in->GetI64(&i)) {
      return Status::InvalidArgument("numeric: truncated int payload");
    }
    *out = Numeric(i);
    return Status::Ok();
  }
  if (tag == 1) {
    double d;
    if (!in->GetDouble(&d)) {
      return Status::InvalidArgument("numeric: truncated double payload");
    }
    *out = Numeric(d);
    return Status::Ok();
  }
  return Status::InvalidArgument("numeric: unknown tag " +
                                 std::to_string(tag));
}

void EncodeKey(const Value* values, size_t n, std::string* out) {
  PutU32(out, static_cast<uint32_t>(n));
  for (size_t i = 0; i < n; ++i) EncodeValue(values[i], out);
}

void EncodeDelta(const exec::RelationDelta& delta, std::string* out) {
  const std::string& name = delta.relation.str();
  PutU32(out, static_cast<uint32_t>(name.size()));
  out->append(name);
  PutU32(out, static_cast<uint32_t>(delta.arity()));
  PutU64(out, delta.size());
  for (const std::vector<Value>& column : delta.columns) {
    for (const Value& v : column) EncodeValue(v, out);
  }
  for (const Numeric& m : delta.mults) EncodeNumeric(m, out);
}

Status DecodeDelta(BufReader* in, const ring::Catalog& catalog,
                   exec::RelationDelta* out) {
  uint32_t name_len;
  std::string name;
  if (!in->GetU32(&name_len) || !in->GetString(&name, name_len)) {
    return Status::InvalidArgument("delta: truncated relation name");
  }
  const Symbol relation = Symbol::Intern(name);
  if (!catalog.Has(relation)) {
    return Status::InvalidArgument("delta: unknown relation '" + name + "'");
  }
  uint32_t arity;
  uint64_t rows;
  if (!in->GetU32(&arity) || !in->GetU64(&rows)) {
    return Status::InvalidArgument("delta: truncated header");
  }
  if (arity != catalog.Arity(relation)) {
    return Status::InvalidArgument(
        "delta: arity mismatch for '" + name + "': encoded " +
        std::to_string(arity) + ", catalog " +
        std::to_string(catalog.Arity(relation)));
  }
  if (!PlausibleCount(*in, rows) ||
      (arity > 0 && !PlausibleCount(*in, rows * arity))) {
    return Status::InvalidArgument("delta: implausible row count " +
                                   std::to_string(rows));
  }
  out->relation = relation;
  out->columns.assign(arity, {});
  out->mults.clear();
  for (std::vector<Value>& column : out->columns) {
    column.reserve(rows);
    for (uint64_t r = 0; r < rows; ++r) {
      Value v;
      RINGDB_RETURN_IF_ERROR(DecodeValue(in, &v));
      column.push_back(std::move(v));
    }
  }
  out->mults.reserve(rows);
  for (uint64_t r = 0; r < rows; ++r) {
    Numeric m;
    RINGDB_RETURN_IF_ERROR(DecodeNumeric(in, &m));
    out->mults.push_back(m);
  }
  return Status::Ok();
}

void EncodeBatch(const exec::UpdateBatch& batch, std::string* out) {
  PutU32(out, static_cast<uint32_t>(batch.deltas().size()));
  for (const exec::RelationDelta& delta : batch.deltas()) {
    EncodeDelta(delta, out);
  }
}

StatusOr<exec::UpdateBatch> DecodeBatch(const ring::Catalog& catalog,
                                        std::string_view payload) {
  BufReader in(payload);
  uint32_t num_deltas;
  if (!in.GetU32(&num_deltas)) {
    return Status::InvalidArgument("batch: truncated delta count");
  }
  if (!PlausibleCount(in, num_deltas)) {
    return Status::InvalidArgument("batch: implausible delta count " +
                                   std::to_string(num_deltas));
  }
  std::vector<exec::RelationDelta> deltas(num_deltas);
  for (uint32_t i = 0; i < num_deltas; ++i) {
    RINGDB_RETURN_IF_ERROR(DecodeDelta(&in, catalog, &deltas[i]));
  }
  if (in.remaining() != 0) {
    return Status::InvalidArgument(
        "batch: " + std::to_string(in.remaining()) +
        " trailing bytes after last delta");
  }
  return exec::UpdateBatch::FromDeltas(std::move(deltas));
}

}  // namespace log
}  // namespace ringdb
