// CRC-32 (IEEE 802.3 polynomial, reflected) for log record checksums.
//
// Every WAL record and every checkpoint file carries a CRC over its
// payload; recovery treats a mismatch as the torn tail of a crashed
// write, not as an error to propagate. The classic table-driven
// byte-at-a-time implementation is plenty: the log path is dominated by
// the write() syscall and the optional fsync, not the checksum.

#ifndef RINGDB_LOG_CRC32_H_
#define RINGDB_LOG_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ringdb {
namespace log {

// CRC-32 of `data[0..n)`, seeded with `seed` (0 for a fresh checksum;
// pass a previous result to checksum discontiguous spans as one).
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

}  // namespace log
}  // namespace ringdb

#endif  // RINGDB_LOG_CRC32_H_
