// Binary serialization of delta windows: Value / Numeric / RelationDelta
// / UpdateBatch <-> bytes, the payload format of WAL records and
// checkpoint entries.
//
// Design rules:
//  - Little-endian fixed-width integers, no varints: the format is a
//    recovery log read back by the same binary family, not a wire
//    protocol; fixed widths keep encode/decode branch-free and make
//    torn-tail arithmetic exact in tests.
//  - Doubles are raw IEEE-754 bit patterns, so -0.0, NaN payloads, and
//    subnormals round-trip bit-exactly (Value's hash normalizes -0.0 at
//    *hash* time, not at storage time — the log must preserve storage).
//  - Symbols are process-local interned ids, so relations are encoded by
//    *name* and re-interned on decode; a log written by one process is
//    replayable by any other.
//  - Decoding is bounds-checked everywhere and validates against the
//    catalog (relation known, arity matches). Corruption that slips past
//    the record CRC surfaces as Status, never as UB or a crash.
//
// Layouts (all integers little-endian):
//   Value         := kind:u8 (0 int | 1 double | 2 string)
//                    int -> i64; double -> 8 raw bytes; string -> len:u32 bytes
//   Numeric       := tag:u8 (0 int | 1 double) payload:8 bytes
//   RelationDelta := name_len:u32 name arity:u32 rows:u64
//                    columns column-major (arity x rows Values)
//                    mults (rows Numerics)
//   UpdateBatch   := num_deltas:u32 RelationDelta*

#ifndef RINGDB_LOG_SERIALIZE_H_
#define RINGDB_LOG_SERIALIZE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "exec/batch.h"
#include "ring/database.h"
#include "util/numeric.h"
#include "util/status.h"
#include "util/value.h"

namespace ringdb {
namespace log {

// Bounds-checked little-endian cursor over a byte span. Get* return
// false on underflow and leave the output untouched; once any Get
// failed, ok() stays false (callers may batch their error checks).
class BufReader {
 public:
  BufReader(const char* data, size_t size)
      : data_(data), size_(size) {}
  explicit BufReader(std::string_view s) : BufReader(s.data(), s.size()) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }

  bool GetU8(uint8_t* out);
  bool GetU32(uint32_t* out);
  bool GetU64(uint64_t* out);
  bool GetI64(int64_t* out);
  bool GetDouble(double* out);  // raw bit pattern
  bool GetBytes(void* out, size_t n);
  bool GetString(std::string* out, uint32_t len);

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Little-endian primitive appenders (encode side; appending to a string
// keeps record assembly a single allocation-amortized buffer).
void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI64(std::string* out, int64_t v);
void PutDouble(std::string* out, double v);  // raw bit pattern

void EncodeValue(const Value& v, std::string* out);
Status DecodeValue(BufReader* in, Value* out);

void EncodeNumeric(Numeric n, std::string* out);
Status DecodeNumeric(BufReader* in, Numeric* out);

// A key / tuple as count-prefixed Values (checkpoint entries).
void EncodeKey(const Value* values, size_t n, std::string* out);

void EncodeDelta(const exec::RelationDelta& delta, std::string* out);
// Decodes and validates one delta: the relation must exist in `catalog`
// with the encoded arity. The symbol is re-interned by name.
Status DecodeDelta(BufReader* in, const ring::Catalog& catalog,
                   exec::RelationDelta* out);

void EncodeBatch(const exec::UpdateBatch& batch, std::string* out);
// Decodes a full batch payload; fails unless the payload is consumed
// exactly (trailing garbage means a framing bug, not a valid batch).
StatusOr<exec::UpdateBatch> DecodeBatch(const ring::Catalog& catalog,
                                        std::string_view payload);

}  // namespace log
}  // namespace ringdb

#endif  // RINGDB_LOG_SERIALIZE_H_
