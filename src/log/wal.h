// Write-ahead log of applied update windows.
//
// One append-only file of length-prefixed, CRC-checksummed records, one
// record per coalesced ingest window, written *before* the window fans
// out to the engines (write-ahead: a crash after the append replays the
// window, a crash before it loses only what the producer never had
// acknowledged durable). The record payload carries the window's
// monotone sequence number, its pre-coalesce event count, the cumulative
// event epoch after it, and the serialized UpdateBatch
// (log/serialize.h), so replay re-enters the normal ApplyPrepared path
// with byte-identical deltas.
//
// File layout:
//   header  := "RDBWAL1\n" (8 bytes)
//   record  := len:u32 crc:u32 payload[len]     (crc = CRC-32 of payload)
//   payload := seq:u64 events:u64 updates_after:u64 batch_bytes
//
// Torn-tail discipline (the MariaDB/innodb recover-to-epoch shape): a
// scan accepts records while length, checksum, minimum payload size, and
// sequence monotonicity all hold, and treats the first violation as the
// torn tail of a crashed write — everything from that offset on is
// discarded by truncation, never "repaired". A record is only readable
// if every byte of it made it to disk, so recovery lands exactly on a
// window boundary.
//
// Fsync policy mirrors the classic trade (innodb_flush_log_at_trx_commit):
//   kNever       - no fsync; survives process kill (page cache persists),
//                  not OS crash/power loss.
//   kEveryWindow - fsync after every record; full durability.
//   kGroupCommit - fsync every N windows or when max_delay elapsed since
//                  the last sync, whichever first, checked at append
//                  granularity (no timer thread: an idle log defers its
//                  tail to Sync()/Close()).

#ifndef RINGDB_LOG_WAL_H_
#define RINGDB_LOG_WAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/status.h"

namespace ringdb {
namespace log {

inline constexpr char kWalMagic[8] = {'R', 'D', 'B', 'W',
                                      'A', 'L', '1', '\n'};
inline constexpr size_t kWalHeaderSize = 8;
inline constexpr size_t kWalRecordHeaderSize = 8;   // len + crc
inline constexpr size_t kWalPayloadHeaderSize = 24; // seq, events, updates
// Length sanity bound: a bit-flipped length field must not drive a
// multi-gigabyte allocation during scan.
inline constexpr uint32_t kWalMaxRecordBytes = 1u << 30;

enum class FsyncPolicy : uint8_t {
  kNever = 0,
  kEveryWindow = 1,
  kGroupCommit = 2,
};

const char* FsyncPolicyName(FsyncPolicy policy);

struct WalOptions {
  FsyncPolicy policy = FsyncPolicy::kEveryWindow;
  // kGroupCommit knobs: sync after this many unsynced windows, or when
  // this much wall time passed since the last sync — whichever first.
  uint64_t group_windows = 8;
  uint64_t group_max_delay_ms = 50;
};

// Appender. Open() assumes any torn tail was already truncated by a
// prior RecoverWal/ScanWal pass (DurableLog guarantees the order);
// appends go at the current end of file.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  WalWriter(WalWriter&& other) noexcept { *this = std::move(other); }
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Opens (creating + writing the header if absent or empty).
  static StatusOr<WalWriter> Open(const std::string& path,
                                  WalOptions options);

  // Per-append effort split, for the window tracer: how much of the
  // append was the fsync (0 when the policy skipped it this window),
  // whether this window's record is on disk, and the record bytes
  // written. Optional — pass nullptr when not tracing.
  struct AppendResult {
    uint64_t fsync_ns = 0;
    bool synced = false;
    uint64_t bytes = 0;
  };

  // Appends one window record; applies the fsync policy. `seq` must
  // strictly increase across the log's life (the scan enforces it).
  Status Append(uint64_t seq, uint64_t events, uint64_t updates_after,
                std::string_view batch_bytes,
                AppendResult* result = nullptr);

  // Forces an fsync of everything appended so far (group-commit tail,
  // pre-checkpoint barrier).
  Status Sync();

  // Sync + close. Idempotent; the destructor closes without syncing
  // (crash semantics are the WAL's whole point — an unclean exit must
  // not look cleaner than it was).
  Status Close();

  bool is_open() const { return fd_ >= 0; }
  uint64_t offset() const { return offset_; }

  // Cumulative effort counters (exported through obs by DurableLog).
  uint64_t records_appended() const { return records_; }
  uint64_t bytes_appended() const { return bytes_; }
  uint64_t fsyncs() const { return fsyncs_; }
  uint64_t unsynced_windows() const { return unsynced_windows_; }

 private:
  Status WriteAll(const char* data, size_t n);
  bool GroupCommitDue() const;
  Status DoSync();

  int fd_ = -1;
  std::string path_;
  WalOptions options_;
  uint64_t offset_ = 0;
  uint64_t records_ = 0;
  uint64_t bytes_ = 0;
  uint64_t fsyncs_ = 0;
  uint64_t unsynced_windows_ = 0;
  uint64_t last_sync_ns_ = 0;
  std::string scratch_;  // record assembly buffer, reused per append
};

// One decoded record during a scan; `batch_bytes` points into the
// scan's buffer and is only valid inside the callback.
struct WalRecordView {
  uint64_t seq = 0;
  uint64_t events = 0;
  uint64_t updates_after = 0;
  std::string_view batch_bytes;
  uint64_t offset = 0;  // file offset of the record's length prefix
};

struct WalScanResult {
  uint64_t records = 0;
  uint64_t last_seq = 0;            // 0 when no record was valid
  uint64_t last_updates_after = 0;
  uint64_t valid_end = 0;           // offset just past the last valid record
  uint64_t file_size = 0;
  bool torn = false;                // valid_end < file_size
  std::string torn_reason;
};

// Scans `path`, invoking fn per valid record in order, stopping at the
// first torn/invalid one (reported via *result, not as an error). A
// missing file scans as empty. Errors are real I/O or header problems
// (unreadable file, wrong magic) — the callers treat those as "this is
// not our log", not as a tail to truncate. A non-ok status from fn
// aborts the scan and is returned as-is.
Status ScanWal(const std::string& path,
               const std::function<Status(const WalRecordView&)>& fn,
               WalScanResult* result);

// Truncates the file to `offset` (the scan's valid_end): discards a torn
// tail so the next append starts on a record boundary.
Status TruncateWal(const std::string& path, uint64_t offset);

}  // namespace log
}  // namespace ringdb

#endif  // RINGDB_LOG_WAL_H_
