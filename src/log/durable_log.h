// DurableLog: the durability coordinator the serve layer talks to.
//
// Owns one write-ahead log (shared by every standing query of a
// service: the WAL records the *ingest stream's* coalesced windows
// once, not per query) plus per-engine checkpoint families, and runs
// recovery in the order that makes the pieces compose:
//
//   1. Load the newest valid checkpoint of each engine (damaged or
//      fingerprint-mismatched files fall back to the previous
//      generation, then to nothing).
//   2. Scan the WAL once; every record with seq greater than an
//      engine's checkpoint seq replays into it through the normal
//      ApplyPrepared path — the identical code path live ingest uses,
//      on either backend.
//   3. Truncate the torn tail (first bad length/CRC/sequence) so the
//      next append starts on a record boundary.
//   4. Reopen the log for appending; the recovered epoch (last valid
//      seq, cumulative event count) seeds the service's window
//      sequencing, so post-recovery snapshots advertise exactly the
//      epoch the replayed state corresponds to.
//
// Invariants:
//   - Write-ahead: AppendWindow runs before the window fans out to any
//     engine. A crash between append and apply replays the window.
//   - Log-ahead-of-checkpoint: MaybeCheckpoint syncs the WAL before
//     writing, so a visible checkpoint's epoch is never ahead of the
//     durable log (otherwise a kNever/kGroupCommit crash could leave a
//     checkpoint no log tail can reconcile).
//   - Recovery errors are loud: a CRC-valid record that fails to decode
//     against the catalog means the schema changed or the log is
//     foreign — that is a returned error, never a silent truncation.

#ifndef RINGDB_LOG_DURABLE_LOG_H_
#define RINGDB_LOG_DURABLE_LOG_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/batch.h"
#include "log/wal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ring/database.h"
#include "util/status.h"

namespace ringdb {

namespace runtime {
class Engine;
}  // namespace runtime

namespace log {

struct DurabilityOptions {
  // Directory for the WAL + checkpoints. Empty disables durability
  // entirely (the memory-only pre-PR-8 behavior).
  std::string dir;
  FsyncPolicy fsync_policy = FsyncPolicy::kEveryWindow;
  // kGroupCommit tuning (ignored for the other policies).
  uint64_t group_windows = 8;
  uint64_t group_max_delay_ms = 50;
  // Checkpoint all engines every N applied windows; 0 = never (recovery
  // replays the whole WAL).
  uint64_t checkpoint_every_windows = 256;

  bool enabled() const { return !dir.empty(); }
};

// Read-time snapshot of the durability layer's effort counters
// (exported through QueryService::Stats).
struct DurabilityStats {
  bool enabled = false;
  std::string policy;
  uint64_t wal_records = 0;
  uint64_t wal_bytes = 0;
  uint64_t wal_fsyncs = 0;
  uint64_t unsynced_windows = 0;   // group-commit exposure right now
  uint64_t checkpoints = 0;
  uint64_t recovered_seq = 0;      // window epoch recovery landed on
  uint64_t recovered_updates = 0;  // event epoch recovery landed on
  uint64_t recovered_records = 0;  // WAL records replayed
  uint64_t truncated_bytes = 0;    // torn tail discarded at recovery
  uint64_t windows_since_checkpoint = 0;  // replay debt if we died now
  bool recovered_from_checkpoint = false;
  obs::HistogramSnapshot append_ns;      // per-window append (+fsync)
  obs::HistogramSnapshot checkpoint_ns;  // per checkpoint round
};

class DurableLog {
 public:
  // One engine under durability management. `name` keys the engine's
  // checkpoint family and must be stable across restarts ("q0", "q1",
  // ... in QueryService registration order).
  struct EngineSlot {
    std::string name;
    runtime::Engine* engine;
  };

  // Creates the directory if needed. No recovery yet; call Recover().
  static StatusOr<std::unique_ptr<DurableLog>> Open(
      const ring::Catalog& catalog, DurabilityOptions options);

  // Runs recovery (checkpoints + WAL replay + torn-tail truncation) into
  // the given engines — which must be freshly created, empty, and remain
  // valid for later MaybeCheckpoint calls — then opens the WAL for
  // appending. Must be called exactly once, before AppendWindow.
  Status Recover(const std::vector<EngineSlot>& engines);

  // The epoch recovery landed on; the service resumes numbering from
  // here. Zero when the directory was empty.
  uint64_t recovered_seq() const { return recovered_seq_; }
  uint64_t recovered_updates() const { return recovered_updates_; }

  // Logs one coalesced window (write-ahead: call before fan-out).
  Status AppendWindow(uint64_t seq, uint64_t events, uint64_t updates_after,
                      const exec::UpdateBatch& batch);

  // Call after window `seq` is fully applied to every engine and the
  // engines are quiescent; writes a checkpoint round when one is due.
  Status MaybeCheckpoint(uint64_t seq, uint64_t updates_applied,
                         const std::vector<EngineSlot>& engines);

  // Forces the group-commit tail to disk.
  Status Sync();

  // Sync + close the WAL. Idempotent.
  Status Close();

  DurabilityStats GetStats() const;

  const std::string& wal_path() const { return wal_path_; }

  // Window tracer hook: when set, AppendWindow records wal_append /
  // wal_fsync stage spans + bytes logged, and MaybeCheckpoint records a
  // checkpoint span, into the owning pipeline's recorder. The recorder
  // must outlive this log; null disables.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

 private:
  DurableLog(const ring::Catalog& catalog, DurabilityOptions options);

  const ring::Catalog* catalog_;
  DurabilityOptions options_;
  std::string wal_path_;
  WalWriter wal_;
  bool recovered_ = false;
  uint64_t recovered_seq_ = 0;
  uint64_t recovered_updates_ = 0;
  uint64_t recovered_records_ = 0;
  uint64_t truncated_bytes_ = 0;
  bool recovered_from_checkpoint_ = false;
  uint64_t windows_since_checkpoint_ = 0;
  uint64_t checkpoints_ = 0;
  std::string encode_scratch_;  // batch payload buffer, reused per window
  obs::TraceRecorder* trace_ = nullptr;  // not owned; null = no tracing

  obs::Histogram append_ns_;
  obs::Histogram checkpoint_ns_;
};

}  // namespace log
}  // namespace ringdb

#endif  // RINGDB_LOG_DURABLE_LOG_H_
