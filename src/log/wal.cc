#include "log/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <vector>

#include "log/crash_point.h"
#include "log/crc32.h"
#include "log/serialize.h"

namespace ringdb {
namespace log {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " +
                          std::strerror(errno));
}

// Group-commit delay needs a real clock even in -DRINGDB_NO_METRICS
// builds (obs::NowNs compiles to 0 there), so the WAL keeps its own.
uint64_t MonotonicNs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNever: return "never";
    case FsyncPolicy::kEveryWindow: return "window";
    case FsyncPolicy::kGroupCommit: return "group";
  }
  return "?";
}

WalWriter::~WalWriter() {
  // No sync: an unclean exit must leave exactly what the kernel already
  // has, not retroactively look durable.
  if (fd_ >= 0) ::close(fd_);
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
    path_ = std::move(other.path_);
    options_ = other.options_;
    offset_ = other.offset_;
    records_ = other.records_;
    bytes_ = other.bytes_;
    fsyncs_ = other.fsyncs_;
    unsynced_windows_ = other.unsynced_windows_;
    last_sync_ns_ = other.last_sync_ns_;
  }
  return *this;
}

StatusOr<WalWriter> WalWriter::Open(const std::string& path,
                                    WalOptions options) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) return Errno("cannot open wal", path);
  WalWriter writer;
  writer.fd_ = fd;
  writer.path_ = path;
  writer.options_ = options;
  writer.last_sync_ns_ = MonotonicNs();
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) return Errno("cannot seek wal", path);
  if (end == 0) {
    RINGDB_RETURN_IF_ERROR(writer.WriteAll(kWalMagic, sizeof(kWalMagic)));
    writer.offset_ = kWalHeaderSize;
  } else {
    writer.offset_ = static_cast<uint64_t>(end);
  }
  return writer;
}

Status WalWriter::WriteAll(const char* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    const ssize_t w = ::write(fd_, data + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("wal write failed", path_);
    }
    done += static_cast<size_t>(w);
  }
  return Status::Ok();
}

bool WalWriter::GroupCommitDue() const {
  if (unsynced_windows_ >= options_.group_windows) return true;
  const uint64_t elapsed_ns = MonotonicNs() - last_sync_ns_;
  return elapsed_ns / 1000000 >= options_.group_max_delay_ms;
}

Status WalWriter::DoSync() {
  RINGDB_CRASH_POINT("wal:before_fsync");
  if (::fsync(fd_) != 0) return Errno("wal fsync failed", path_);
  ++fsyncs_;
  unsynced_windows_ = 0;
  last_sync_ns_ = MonotonicNs();
  RINGDB_CRASH_POINT("wal:after_fsync");
  return Status::Ok();
}

Status WalWriter::Append(uint64_t seq, uint64_t events,
                         uint64_t updates_after,
                         std::string_view batch_bytes,
                         AppendResult* result) {
  if (fd_ < 0) return Status::FailedPrecondition("wal is closed");
  // Assemble payload then prepend length + checksum; one buffer, one
  // logical record, two write() calls with a kill point between so the
  // fault harness produces genuinely torn on-disk records.
  scratch_.clear();
  PutU64(&scratch_, seq);
  PutU64(&scratch_, events);
  PutU64(&scratch_, updates_after);
  scratch_.append(batch_bytes.data(), batch_bytes.size());
  const uint32_t len = static_cast<uint32_t>(scratch_.size());
  const uint32_t crc = Crc32(scratch_);
  std::string header;
  PutU32(&header, len);
  PutU32(&header, crc);

  RINGDB_CRASH_POINT("wal:before_record");
  RINGDB_RETURN_IF_ERROR(WriteAll(header.data(), header.size()));
  RINGDB_CRASH_POINT("wal:torn_record");
  // Split the payload write so a kill can also land mid-payload (a
  // record whose length and checksum prefix are intact but whose body
  // is short — the CRC-mismatch flavor of a torn tail).
  const size_t half = scratch_.size() / 2;
  RINGDB_RETURN_IF_ERROR(WriteAll(scratch_.data(), half));
  RINGDB_CRASH_POINT("wal:torn_payload");
  RINGDB_RETURN_IF_ERROR(
      WriteAll(scratch_.data() + half, scratch_.size() - half));
  RINGDB_CRASH_POINT("wal:after_record");

  offset_ += kWalRecordHeaderSize + scratch_.size();
  bytes_ += kWalRecordHeaderSize + scratch_.size();
  ++records_;
  ++unsynced_windows_;

  bool want_sync = false;
  switch (options_.policy) {
    case FsyncPolicy::kNever:
      break;
    case FsyncPolicy::kEveryWindow:
      want_sync = true;
      break;
    case FsyncPolicy::kGroupCommit:
      want_sync = GroupCommitDue();
      break;
  }
  if (want_sync) {
    const uint64_t sync_t0 = MonotonicNs();
    RINGDB_RETURN_IF_ERROR(DoSync());
    if (result != nullptr) {
      result->fsync_ns = MonotonicNs() - sync_t0;
      result->synced = true;
    }
  }
  if (result != nullptr) {
    result->bytes = kWalRecordHeaderSize + scratch_.size();
  }
  return Status::Ok();
}

Status WalWriter::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("wal is closed");
  if (unsynced_windows_ == 0) return Status::Ok();
  return DoSync();
}

Status WalWriter::Close() {
  if (fd_ < 0) return Status::Ok();
  Status synced = unsynced_windows_ > 0 ? DoSync() : Status::Ok();
  if (::close(fd_) != 0 && synced.ok()) {
    synced = Errno("wal close failed", path_);
  }
  fd_ = -1;
  return synced;
}

Status ScanWal(const std::string& path,
               const std::function<Status(const WalRecordView&)>& fn,
               WalScanResult* result) {
  *result = WalScanResult{};
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return Status::Ok();  // no log yet: empty scan
    return Errno("cannot open wal", path);
  }
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};

  if (std::fseek(f, 0, SEEK_END) != 0) return Errno("cannot seek", path);
  const long size = std::ftell(f);
  if (size < 0) return Errno("cannot tell", path);
  result->file_size = static_cast<uint64_t>(size);
  std::rewind(f);

  if (result->file_size == 0) return Status::Ok();  // created, not headed

  char magic[kWalHeaderSize];
  if (std::fread(magic, 1, sizeof(magic), f) != sizeof(magic)) {
    // A crash while the 8-byte header itself was in flight: torn, not
    // foreign. Truncating to zero lets the reopened writer re-head it.
    result->torn = true;
    result->torn_reason = "partial file header";
    result->valid_end = 0;
    return Status::Ok();
  }
  if (std::memcmp(magic, kWalMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("not a wal file (bad header): " + path);
  }
  result->valid_end = kWalHeaderSize;

  std::vector<char> payload;
  auto torn = [&](std::string reason) {
    result->torn = result->valid_end < result->file_size;
    result->torn_reason = std::move(reason);
    return Status::Ok();
  };
  while (true) {
    const uint64_t record_offset = result->valid_end;
    char header[kWalRecordHeaderSize];
    const size_t got = std::fread(header, 1, sizeof(header), f);
    if (got == 0) return torn("end of file");
    if (got < sizeof(header)) return torn("truncated record header");
    BufReader hr(header, sizeof(header));
    uint32_t len = 0;
    uint32_t crc = 0;
    hr.GetU32(&len);
    hr.GetU32(&crc);
    if (len < kWalPayloadHeaderSize || len > kWalMaxRecordBytes) {
      // Covers zero-fill (len=0 checks out against an empty payload's
      // CRC of 0, so the length bound must reject it first) and
      // bit-flipped lengths.
      return torn("implausible record length " + std::to_string(len));
    }
    if (record_offset + kWalRecordHeaderSize + len > result->file_size) {
      return torn("record extends past end of file");
    }
    payload.resize(len);
    if (std::fread(payload.data(), 1, len, f) != len) {
      return torn("truncated record payload");
    }
    if (Crc32(static_cast<const void*>(payload.data()), len) != crc) {
      return torn("checksum mismatch");
    }
    BufReader pr(payload.data(), len);
    WalRecordView record;
    pr.GetU64(&record.seq);
    pr.GetU64(&record.events);
    pr.GetU64(&record.updates_after);
    record.batch_bytes =
        std::string_view(payload.data() + kWalPayloadHeaderSize,
                         len - kWalPayloadHeaderSize);
    record.offset = record_offset;
    if (record.seq <= result->last_seq) {
      // Sequence numbers strictly increase for the log's whole life;
      // a CRC-valid record that breaks that is stale or corrupt bytes
      // that happened to checksum — stop here rather than replay it.
      return torn("non-monotone sequence " + std::to_string(record.seq) +
                  " after " + std::to_string(result->last_seq));
    }
    RINGDB_RETURN_IF_ERROR(fn(record));
    ++result->records;
    result->last_seq = record.seq;
    result->last_updates_after = record.updates_after;
    result->valid_end = record_offset + kWalRecordHeaderSize + len;
  }
}

Status TruncateWal(const std::string& path, uint64_t offset) {
  if (::truncate(path.c_str(), static_cast<off_t>(offset)) != 0) {
    return Errno("cannot truncate wal", path);
  }
  return Status::Ok();
}

}  // namespace log
}  // namespace ringdb
