// Synthetic single-tuple update streams for benchmarks and examples.
//
// DBToaster (the system built on this paper) was evaluated on financial
// order-book streams that are not redistributable; these generators are
// the substitution documented in DESIGN.md: schema-driven random tuple
// streams with controllable key skew (zipf) and deletion rate (sliding
// window), which exercise the same code paths — multi-relation equality
// joins maintained under mixed insert/delete workloads.

#ifndef RINGDB_WORKLOAD_STREAM_H_
#define RINGDB_WORKLOAD_STREAM_H_

#include <deque>
#include <memory>
#include <vector>

#include "ring/database.h"
#include "util/random.h"

namespace ringdb {
namespace workload {

struct StreamOptions {
  uint64_t seed = 1;
  // Values are drawn from [0, domain_size) per column.
  int64_t domain_size = 1024;
  // Fraction of events that delete a previously inserted (still live)
  // tuple; the database size grows at rate (1 - 2*delete_fraction).
  double delete_fraction = 0.0;
  // Zipf skew parameter; 0 disables skew (uniform).
  double zipf_s = 0.0;
  // Fraction of NextOp() events that are *read* operations probing a
  // live key instead of updates (the serving-path mix). Reads pick a
  // live row — zipf-skewed toward a stable low-index subset (mostly the
  // oldest rows; deletions swap-erase, so not strictly) when zipf_s > 0,
  // mirroring hot-key read traffic — and project read_key_positions out
  // of it. 0 keeps NextOp() event-for-event identical to Next().
  double read_fraction = 0.0;
  // Row positions projected into a read op's key (e.g. {1} = ckey of
  // orders(okey, ckey)); empty projects the whole row.
  std::vector<size_t> read_key_positions;
};

// One mixed-stream event: an update to apply or a key to read back.
struct StreamOp {
  enum class Kind { kUpdate, kRead };
  Kind kind = Kind::kUpdate;
  ring::Update update;           // when kind == kUpdate
  std::vector<Value> read_key;   // when kind == kRead
};

// Deterministic per-child seed derivation: child streams of a split
// generator draw from statistically independent substreams, and the same
// (master seed, child index) pair always yields the same substream, so
// multi-threaded benches reproduce exactly regardless of interleaving.
uint64_t ChildSeed(uint64_t master_seed, uint64_t child_index);

// Generates inserts (and sliding-window deletes) for one relation.
class RelationStream {
 public:
  RelationStream(const ring::Catalog& catalog, Symbol relation,
                 StreamOptions options);

  ring::Update Next();

  // Mixed read/update event (options.read_fraction); with no live rows
  // or read_fraction == 0 this is exactly Next() wrapped as an update op
  // (same rng draws, so update-only streams are unchanged).
  StreamOp NextOp();

  // A child stream with the same shape (relation, domain, skew, deletes)
  // on the derived seed ChildSeed(options.seed, child_index), starting
  // from an empty live window. Children with distinct indexes are
  // independent; splitting is how per-shard generators stay deterministic.
  RelationStream Split(uint64_t child_index) const;

  Symbol relation() const { return relation_; }
  size_t live_count() const { return live_.size(); }

 private:
  RelationStream(Symbol relation, size_t arity, StreamOptions options);

  std::vector<Value> RandomRow();

  Symbol relation_;
  size_t arity_;
  StreamOptions options_;
  Rng rng_;
  std::unique_ptr<Zipf> zipf_;
  std::deque<std::vector<Value>> live_;
};

// Interleaves several relation streams round-robin (orders, lineitems,
// ... receive updates in turn), the common shape of multi-stream view
// maintenance workloads.
class RoundRobinStream {
 public:
  explicit RoundRobinStream(std::vector<RelationStream> streams)
      : streams_(std::move(streams)) {}

  ring::Update Next() {
    ring::Update u = streams_[next_].Next();
    next_ = (next_ + 1) % streams_.size();
    return u;
  }

  // Round-robin mixed read/update events (see RelationStream::NextOp).
  StreamOp NextOp() {
    StreamOp op = streams_[next_].NextOp();
    next_ = (next_ + 1) % streams_.size();
    return op;
  }

  // Splits every member stream with the same child index, preserving the
  // round-robin relation order (see RelationStream::Split).
  RoundRobinStream Split(uint64_t child_index) const {
    std::vector<RelationStream> children;
    children.reserve(streams_.size());
    for (const RelationStream& s : streams_) {
      children.push_back(s.Split(child_index));
    }
    return RoundRobinStream(std::move(children));
  }

 private:
  std::vector<RelationStream> streams_;
  size_t next_ = 0;
};

// The order/lineitem schema used by the stream-analytics benches and
// examples (a TPC-H-inspired miniature):
//   orders(okey, ckey)            — order okey placed by customer ckey
//   lineitem(okey, price, qty)    — one line of order okey
// Returns a catalog containing both relations.
ring::Catalog OrdersSchema();

}  // namespace workload
}  // namespace ringdb

#endif  // RINGDB_WORKLOAD_STREAM_H_
