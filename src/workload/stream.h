// Synthetic single-tuple update streams for benchmarks and examples.
//
// DBToaster (the system built on this paper) was evaluated on financial
// order-book streams that are not redistributable; these generators are
// the substitution documented in DESIGN.md: schema-driven random tuple
// streams with controllable key skew (zipf) and deletion rate (sliding
// window), which exercise the same code paths — multi-relation equality
// joins maintained under mixed insert/delete workloads.

#ifndef RINGDB_WORKLOAD_STREAM_H_
#define RINGDB_WORKLOAD_STREAM_H_

#include <deque>
#include <memory>
#include <vector>

#include "ring/database.h"
#include "util/random.h"

namespace ringdb {
namespace workload {

struct StreamOptions {
  uint64_t seed = 1;
  // Values are drawn from [0, domain_size) per column.
  int64_t domain_size = 1024;
  // Fraction of events that delete a previously inserted (still live)
  // tuple; the database size grows at rate (1 - 2*delete_fraction).
  double delete_fraction = 0.0;
  // Zipf skew parameter; 0 disables skew (uniform).
  double zipf_s = 0.0;
};

// Generates inserts (and sliding-window deletes) for one relation.
class RelationStream {
 public:
  RelationStream(const ring::Catalog& catalog, Symbol relation,
                 StreamOptions options);

  ring::Update Next();

  Symbol relation() const { return relation_; }
  size_t live_count() const { return live_.size(); }

 private:
  std::vector<Value> RandomRow();

  Symbol relation_;
  size_t arity_;
  StreamOptions options_;
  Rng rng_;
  std::unique_ptr<Zipf> zipf_;
  std::deque<std::vector<Value>> live_;
};

// Interleaves several relation streams round-robin (orders, lineitems,
// ... receive updates in turn), the common shape of multi-stream view
// maintenance workloads.
class RoundRobinStream {
 public:
  explicit RoundRobinStream(std::vector<RelationStream> streams)
      : streams_(std::move(streams)) {}

  ring::Update Next() {
    ring::Update u = streams_[next_].Next();
    next_ = (next_ + 1) % streams_.size();
    return u;
  }

 private:
  std::vector<RelationStream> streams_;
  size_t next_ = 0;
};

// The order/lineitem schema used by the stream-analytics benches and
// examples (a TPC-H-inspired miniature):
//   orders(okey, ckey)            — order okey placed by customer ckey
//   lineitem(okey, price, qty)    — one line of order okey
// Returns a catalog containing both relations.
ring::Catalog OrdersSchema();

}  // namespace workload
}  // namespace ringdb

#endif  // RINGDB_WORKLOAD_STREAM_H_
