#include "workload/stream.h"

#include "util/check.h"

namespace ringdb {
namespace workload {

uint64_t ChildSeed(uint64_t master_seed, uint64_t child_index) {
  // SplitMix-style: decorrelates even adjacent child indexes, and child 0
  // differs from the master so parent and child never alias.
  return Mix64(master_seed ^ Mix64(child_index + 0x9e3779b97f4a7c15ULL));
}

RelationStream::RelationStream(const ring::Catalog& catalog, Symbol relation,
                               StreamOptions options)
    : RelationStream(relation, catalog.Arity(relation), options) {}

RelationStream::RelationStream(Symbol relation, size_t arity,
                               StreamOptions options)
    : relation_(relation),
      arity_(arity),
      options_(options),
      rng_(options.seed ^ (static_cast<uint64_t>(relation.id()) << 32)) {
  RINGDB_CHECK_GT(options_.domain_size, 0);
  for (size_t position : options_.read_key_positions) {
    RINGDB_CHECK_LT(position, arity_);
  }
  if (options_.zipf_s > 0) {
    zipf_ = std::make_unique<Zipf>(
        static_cast<uint64_t>(options_.domain_size), options_.zipf_s);
  }
}

RelationStream RelationStream::Split(uint64_t child_index) const {
  StreamOptions child_options = options_;
  child_options.seed = ChildSeed(options_.seed, child_index);
  return RelationStream(relation_, arity_, child_options);
}

std::vector<Value> RelationStream::RandomRow() {
  std::vector<Value> row;
  row.reserve(arity_);
  for (size_t i = 0; i < arity_; ++i) {
    int64_t v = (zipf_ != nullptr)
                    ? static_cast<int64_t>(zipf_->Sample(rng_))
                    : rng_.Range(0, options_.domain_size - 1);
    row.emplace_back(v);
  }
  return row;
}

ring::Update RelationStream::Next() {
  if (!live_.empty() && rng_.Bernoulli(options_.delete_fraction)) {
    size_t pick = rng_.Below(live_.size());
    std::vector<Value> row = live_[pick];
    live_[pick] = live_.back();
    live_.pop_back();
    return ring::Update::Delete(relation_, std::move(row));
  }
  std::vector<Value> row = RandomRow();
  live_.push_back(row);
  return ring::Update::Insert(relation_, std::move(row));
}

StreamOp RelationStream::NextOp() {
  if (options_.read_fraction > 0 && !live_.empty() &&
      rng_.Bernoulli(options_.read_fraction)) {
    StreamOp op;
    op.kind = StreamOp::Kind::kRead;
    size_t index;
    if (zipf_ != nullptr) {
      // Rescale the domain skew onto the live window: hot zipf ranks map
      // to low indexes, so read traffic concentrates on a stable subset
      // of live rows the way hot-key workloads do. (With deletions on,
      // swap-erase occasionally moves a young row into a hot slot, so
      // "low index" means mostly-oldest, not strictly oldest.)
      const uint64_t rank = zipf_->Sample(rng_);
      index = static_cast<size_t>(
          static_cast<unsigned __int128>(rank) * live_.size() /
          static_cast<uint64_t>(options_.domain_size));
    } else {
      index = static_cast<size_t>(rng_.Below(live_.size()));
    }
    const std::vector<Value>& row = live_[index];
    if (options_.read_key_positions.empty()) {
      op.read_key = row;
    } else {
      op.read_key.reserve(options_.read_key_positions.size());
      for (size_t position : options_.read_key_positions) {
        op.read_key.push_back(row[position]);
      }
    }
    return op;
  }
  StreamOp op;
  op.update = Next();
  return op;
}

ring::Catalog OrdersSchema() {
  ring::Catalog catalog;
  catalog.AddRelation(Symbol::Intern("orders"),
                      {Symbol::Intern("okey"), Symbol::Intern("ckey")});
  catalog.AddRelation(Symbol::Intern("lineitem"),
                      {Symbol::Intern("okey"), Symbol::Intern("price"),
                       Symbol::Intern("qty")});
  return catalog;
}

}  // namespace workload
}  // namespace ringdb
