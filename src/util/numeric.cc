#include "util/numeric.h"

#include <cstdio>

namespace ringdb {

std::string Numeric::ToString() const {
  char buf[64];
  if (is_int_) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(i_));
    return buf;
  }
  // Shortest representation that round-trips is overkill here; %g keeps
  // printed tables readable.
  std::snprintf(buf, sizeof(buf), "%g", d_);
  return buf;
}

}  // namespace ringdb
