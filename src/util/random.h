// Deterministic PRNG utilities (xoshiro256++) for workload generation and
// property tests. std::mt19937 is avoided for speed and cross-platform
// reproducibility of streams.

#ifndef RINGDB_UTIL_RANDOM_H_
#define RINGDB_UTIL_RANDOM_H_

#include <cstdint>

#include "util/check.h"
#include "util/hash.h"

namespace ringdb {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x243f6a8885a308d3ULL) {
    // SplitMix64 seeding per xoshiro authors' recommendation.
    uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      word = Mix64(x);
    }
  }

  uint64_t Next() {
    uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, n).
  uint64_t Below(uint64_t n) {
    RINGDB_CHECK_GT(n, 0u);
    // Lemire's nearly-divisionless bounded sampling (unbiased rejection).
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = (0 - n) % n;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    RINGDB_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  double Uniform01() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  bool Bernoulli(double p) { return Uniform01() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

// Approximate Zipf(s) sampler over {0, ..., n-1} using the rejection-
// inversion method of Hörmann & Derflinger; adequate for skewing workloads.
class Zipf {
 public:
  Zipf(uint64_t n, double s);
  uint64_t Sample(Rng& rng);

 private:
  double H(double x) const;
  double HInv(double x) const;

  uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;
};

}  // namespace ringdb

#endif  // RINGDB_UTIL_RANDOM_H_
