#include "util/random.h"

#include <cmath>

namespace ringdb {

Zipf::Zipf(uint64_t n, double s) : n_(n), s_(s) {
  RINGDB_CHECK_GT(n, 0u);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - HInv(H(2.5) - std::pow(2.0, -s_));
}

double Zipf::H(double x) const {
  // Integral of x^(-s); handles s == 1 via the log branch.
  if (s_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double Zipf::HInv(double x) const {
  if (s_ == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

uint64_t Zipf::Sample(Rng& rng) {
  if (n_ == 1) return 0;
  while (true) {
    double u = h_n_ + rng.Uniform01() * (h_x1_ - h_n_);
    double x = HInv(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    double dk = static_cast<double>(k);
    if (dk - x <= threshold_ ||
        u >= H(dk + 0.5) - std::pow(dk, -s_)) {
      return k - 1;
    }
  }
}

}  // namespace ringdb
