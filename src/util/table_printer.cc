#include "util/table_printer.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace ringdb {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  RINGDB_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (size_t i = 0; i < row.size(); ++i) {
      out << ' ' << row[i] << std::string(widths[i] - row[i].size(), ' ')
          << " |";
    }
    out << '\n';
  };
  emit_row(header_);
  out << "|";
  for (size_t w : widths) out << std::string(w + 2, '-') << "|";
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TablePrinter::RenderCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << row[i];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace ringdb
