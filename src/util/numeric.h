// Numeric: the ring of scalars A used for gmr multiplicities and aggregate
// values.
//
// The paper instantiates its constructions over a commutative ring with
// identity A, usually Z (integers) and occasionally R (reals). Numeric is a
// tagged int64/double union with exact integer arithmetic whenever both
// operands are integers, promoting to double otherwise. It forms a
// commutative ring with identity under (+, *, 0, 1) with additive inverse.

#ifndef RINGDB_UTIL_NUMERIC_H_
#define RINGDB_UTIL_NUMERIC_H_

#include <cstdint>
#include <functional>
#include <string>

#include "util/hash.h"

namespace ringdb {

class Numeric {
 public:
  constexpr Numeric() : is_int_(true), i_(0) {}
  constexpr Numeric(int64_t v) : is_int_(true), i_(v) {}      // NOLINT
  constexpr Numeric(int v) : is_int_(true), i_(v) {}          // NOLINT
  constexpr Numeric(double v) : is_int_(false), d_(v) {}      // NOLINT

  bool is_integer() const { return is_int_; }

  // Exact integer payload; caller must know is_integer().
  int64_t AsInt() const { return i_; }

  // Numeric value as double (exact payload if double, converted if int).
  double AsDouble() const { return is_int_ ? static_cast<double>(i_) : d_; }

  bool IsZero() const { return is_int_ ? i_ == 0 : d_ == 0.0; }
  bool IsOne() const { return is_int_ ? i_ == 1 : d_ == 1.0; }

  // Integer arithmetic promotes to double instead of wrapping when the
  // exact result does not fit int64 (signed overflow would be UB; streams
  // of billions of updates reach INT64-scale sums in practice).
  friend Numeric operator+(Numeric a, Numeric b) {
    if (a.is_int_ && b.is_int_) {
      int64_t r;
      if (!__builtin_add_overflow(a.i_, b.i_, &r)) return Numeric(r);
      return Numeric(static_cast<double>(a.i_) + static_cast<double>(b.i_));
    }
    return Numeric(a.AsDouble() + b.AsDouble());
  }
  friend Numeric operator-(Numeric a, Numeric b) {
    if (a.is_int_ && b.is_int_) {
      int64_t r;
      if (!__builtin_sub_overflow(a.i_, b.i_, &r)) return Numeric(r);
      return Numeric(static_cast<double>(a.i_) - static_cast<double>(b.i_));
    }
    return Numeric(a.AsDouble() - b.AsDouble());
  }
  friend Numeric operator*(Numeric a, Numeric b) {
    if (a.is_int_ && b.is_int_) {
      int64_t r;
      if (!__builtin_mul_overflow(a.i_, b.i_, &r)) return Numeric(r);
      return Numeric(static_cast<double>(a.i_) * static_cast<double>(b.i_));
    }
    return Numeric(a.AsDouble() * b.AsDouble());
  }
  Numeric operator-() const {
    if (!is_int_) return Numeric(-d_);
    if (i_ == INT64_MIN) return Numeric(-static_cast<double>(i_));
    return Numeric(-i_);
  }
  Numeric& operator+=(Numeric o) { return *this = *this + o; }
  Numeric& operator-=(Numeric o) { return *this = *this - o; }
  Numeric& operator*=(Numeric o) { return *this = *this * o; }

  // Numeric equality/ordering: 3 == 3.0. (Contrast with Value, where
  // equality is kind-sensitive; Numeric models ring elements, for which the
  // embedding Z -> R is the identity of interest.)
  friend bool operator==(Numeric a, Numeric b) {
    if (a.is_int_ && b.is_int_) return a.i_ == b.i_;
    return a.AsDouble() == b.AsDouble();
  }
  friend bool operator!=(Numeric a, Numeric b) { return !(a == b); }
  friend bool operator<(Numeric a, Numeric b) {
    if (a.is_int_ && b.is_int_) return a.i_ < b.i_;
    return a.AsDouble() < b.AsDouble();
  }
  friend bool operator>(Numeric a, Numeric b) { return b < a; }
  friend bool operator<=(Numeric a, Numeric b) { return !(b < a); }
  friend bool operator>=(Numeric a, Numeric b) { return !(a < b); }

  size_t Hash() const {
    // Integral doubles hash like the corresponding int so that Numeric
    // hashing is consistent with numeric equality. The int64-range check
    // must precede the cast: casting a double at or beyond 2^63 (or NaN)
    // is UB, and overflow promotion produces exactly such values.
    if (!is_int_) {
      double d = d_;
      if (d >= -9223372036854775808.0 && d < 9223372036854775808.0) {
        int64_t asint = static_cast<int64_t>(d);
        if (static_cast<double>(asint) == d) {
          return Mix64(static_cast<uint64_t>(asint));
        }
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return Mix64(bits ^ 0x5851f42d4c957f2dULL);
    }
    return Mix64(static_cast<uint64_t>(i_));
  }

  std::string ToString() const;

 private:
  bool is_int_;
  union {
    int64_t i_;
    double d_;
  };
};

inline constexpr Numeric kZero = Numeric(static_cast<int64_t>(0));
inline constexpr Numeric kOne = Numeric(static_cast<int64_t>(1));

}  // namespace ringdb

template <>
struct std::hash<ringdb::Numeric> {
  size_t operator()(const ringdb::Numeric& n) const noexcept {
    return n.Hash();
  }
};

#endif  // RINGDB_UTIL_NUMERIC_H_
