// Status / StatusOr error propagation (exception-free public API).
//
// A trimmed-down analogue of absl::Status sufficient for this library:
// parse errors, unbound-variable errors, and type errors are reported as
// Status values; programming errors are RINGDB_CHECK failures.

#ifndef RINGDB_UTIL_STATUS_H_
#define RINGDB_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace ringdb {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kUnavailable,
};

// Value-type error carrier. Ok statuses are cheap to copy.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

 private:
  static std::string CodeName(StatusCode c) {
    switch (c) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::kNotFound: return "NOT_FOUND";
      case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
      case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
      case StatusCode::kInternal: return "INTERNAL";
      case StatusCode::kUnavailable: return "UNAVAILABLE";
    }
    return "UNKNOWN";
  }

  StatusCode code_;
  std::string message_;
};

// Either a T or an error Status. Accessing the value of a non-ok
// StatusOr is a checked failure.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    RINGDB_CHECK(!status_.ok());
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    RINGDB_CHECK(ok());
    return *value_;
  }
  T& value() & {
    RINGDB_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    RINGDB_CHECK(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ringdb

// Propagates a non-ok Status from an expression.
#define RINGDB_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::ringdb::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

#define RINGDB_INTERNAL_CONCAT_(a, b) a##b
#define RINGDB_INTERNAL_CONCAT(a, b) RINGDB_INTERNAL_CONCAT_(a, b)

// Assigns the value of a StatusOr expression or propagates its error.
#define RINGDB_ASSIGN_OR_RETURN(lhs, expr)                          \
  RINGDB_INTERNAL_ASSIGN_OR_RETURN_IMPL(                            \
      RINGDB_INTERNAL_CONCAT(_status_or_, __LINE__), lhs, expr)

#define RINGDB_INTERNAL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                          \
  if (!tmp.ok()) return tmp.status();                         \
  lhs = std::move(tmp).value()

#endif  // RINGDB_UTIL_STATUS_H_
