// Hash combinators shared across the library.

#ifndef RINGDB_UTIL_HASH_H_
#define RINGDB_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace ringdb {

// 64-bit mix (splitmix64 finalizer); good avalanche for integer keys.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Order-dependent combination of two hash values.
inline size_t HashCombine(size_t seed, size_t v) {
  return static_cast<size_t>(
      Mix64(static_cast<uint64_t>(seed) * 0x100000001b3ULL ^
            static_cast<uint64_t>(v)));
}

inline size_t HashString(std::string_view s) {
  // FNV-1a.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return static_cast<size_t>(Mix64(h));
}

}  // namespace ringdb

#endif  // RINGDB_UTIL_HASH_H_
