// Interned identifiers (column names, relation names, query variables).
//
// A Symbol is a 32-bit handle into a process-wide interning table. Equality
// and ordering are O(1) integer operations; ordering follows interning
// order, which gives a stable canonical order for records within one
// process (sufficient for the ring's canonical tuple representation).

#ifndef RINGDB_UTIL_SYMBOL_H_
#define RINGDB_UTIL_SYMBOL_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace ringdb {

class Symbol {
 public:
  // The default symbol is the interned empty string.
  Symbol() : id_(0) {}

  // Interns `name` (idempotent) and returns its handle.
  static Symbol Intern(std::string_view name);

  // The interned spelling. The returned reference lives for the process.
  const std::string& str() const;

  uint32_t id() const { return id_; }

  friend bool operator==(Symbol a, Symbol b) { return a.id_ == b.id_; }
  friend bool operator!=(Symbol a, Symbol b) { return a.id_ != b.id_; }
  friend bool operator<(Symbol a, Symbol b) { return a.id_ < b.id_; }
  friend bool operator>(Symbol a, Symbol b) { return a.id_ > b.id_; }
  friend bool operator<=(Symbol a, Symbol b) { return a.id_ <= b.id_; }
  friend bool operator>=(Symbol a, Symbol b) { return a.id_ >= b.id_; }

 private:
  explicit Symbol(uint32_t id) : id_(id) {}
  uint32_t id_;
};

}  // namespace ringdb

template <>
struct std::hash<ringdb::Symbol> {
  size_t operator()(ringdb::Symbol s) const noexcept {
    return static_cast<size_t>(s.id()) * 0x9e3779b97f4a7c15ULL >> 16;
  }
};

#endif  // RINGDB_UTIL_SYMBOL_H_
