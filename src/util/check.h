// Lightweight CHECK macros for invariant enforcement.
//
// These are always-on (also in release builds): the library's correctness
// argument rests on algebraic invariants, and silently continuing after a
// violated invariant would corrupt maintained views.

#ifndef RINGDB_UTIL_CHECK_H_
#define RINGDB_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace ringdb {
namespace internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal_check
}  // namespace ringdb

#define RINGDB_CHECK(expr)                                             \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::ringdb::internal_check::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                                  \
  } while (0)

#define RINGDB_CHECK_EQ(a, b) RINGDB_CHECK((a) == (b))
#define RINGDB_CHECK_NE(a, b) RINGDB_CHECK((a) != (b))
#define RINGDB_CHECK_LT(a, b) RINGDB_CHECK((a) < (b))
#define RINGDB_CHECK_LE(a, b) RINGDB_CHECK((a) <= (b))
#define RINGDB_CHECK_GT(a, b) RINGDB_CHECK((a) > (b))
#define RINGDB_CHECK_GE(a, b) RINGDB_CHECK((a) >= (b))

#endif  // RINGDB_UTIL_CHECK_H_
