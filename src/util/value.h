// Value: elements of the active domain Adom (tuple field values).
//
// Values appear as record fields (join keys, group-by keys) and as operands
// of comparisons. Numeric values additionally embed into the scalar ring
// (util/numeric.h) so they can participate in arithmetic, mirroring how the
// paper's AGCA uses active-domain values as ring elements in terms.

#ifndef RINGDB_UTIL_VALUE_H_
#define RINGDB_UTIL_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

#include "util/check.h"
#include "util/hash.h"
#include "util/numeric.h"
#include "util/status.h"

namespace ringdb {

class Value {
 public:
  enum class Kind { kInt = 0, kDouble = 1, kString = 2 };

  Value() : v_(int64_t{0}) {}
  Value(int64_t v) : v_(v) {}                      // NOLINT
  Value(int v) : v_(static_cast<int64_t>(v)) {}    // NOLINT
  Value(double v) : v_(v) {}                       // NOLINT
  Value(std::string v) : v_(std::move(v)) {}       // NOLINT
  Value(const char* v) : v_(std::string(v)) {}     // NOLINT
  Value(Numeric n)                                 // NOLINT
      : v_(int64_t{0}) {
    if (n.is_integer()) {
      v_ = n.AsInt();
    } else {
      v_ = n.AsDouble();
    }
  }

  Kind kind() const { return static_cast<Kind>(v_.index()); }
  bool is_int() const { return kind() == Kind::kInt; }
  bool is_double() const { return kind() == Kind::kDouble; }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_numeric() const { return !is_string(); }

  int64_t AsInt() const {
    RINGDB_CHECK(is_int());
    return std::get<int64_t>(v_);
  }
  double AsDouble() const {
    RINGDB_CHECK(is_double());
    return std::get<double>(v_);
  }
  const std::string& AsString() const {
    RINGDB_CHECK(is_string());
    return std::get<std::string>(v_);
  }

  // Embeds numeric values into the scalar ring; error for strings.
  StatusOr<Numeric> ToNumeric() const {
    switch (kind()) {
      case Kind::kInt: return Numeric(std::get<int64_t>(v_));
      case Kind::kDouble: return Numeric(std::get<double>(v_));
      case Kind::kString:
        return Status::InvalidArgument("string value used in arithmetic: '" +
                                       AsString() + "'");
    }
    return Status::Internal("corrupt Value");
  }

  // Kind-sensitive equality: int64(3) != double(3.0) != string("3").
  // Records are untyped partial functions in the paper; in practice schemas
  // are typed consistently, and kind-sensitive equality keeps hashing exact.
  friend bool operator==(const Value& a, const Value& b) {
    return a.v_ == b.v_;
  }
  friend bool operator!=(const Value& a, const Value& b) {
    return !(a == b);
  }
  // Total order: by kind, then payload (used for canonical sorting only).
  friend bool operator<(const Value& a, const Value& b) {
    if (a.v_.index() != b.v_.index()) return a.v_.index() < b.v_.index();
    return a.v_ < b.v_;
  }

  size_t Hash() const {
    switch (kind()) {
      case Kind::kInt:
        return Mix64(static_cast<uint64_t>(std::get<int64_t>(v_)));
      case Kind::kDouble: {
        double d = std::get<double>(v_);
        // operator== compares payloads numerically, so -0.0 == 0.0; they
        // must therefore hash alike (their bit patterns differ).
        if (d == 0.0) d = 0.0;
        uint64_t bits;
        __builtin_memcpy(&bits, &d, sizeof(bits));
        return Mix64(bits ^ 0xd6e8feb86659fd93ULL);
      }
      case Kind::kString:
        return HashString(std::get<std::string>(v_));
    }
    return 0;
  }

  std::string ToString() const {
    switch (kind()) {
      case Kind::kInt: return std::to_string(std::get<int64_t>(v_));
      case Kind::kDouble: {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%g", std::get<double>(v_));
        return buf;
      }
      case Kind::kString: return std::get<std::string>(v_);
    }
    return "?";
  }

 private:
  std::variant<int64_t, double, std::string> v_;
};

}  // namespace ringdb

template <>
struct std::hash<ringdb::Value> {
  size_t operator()(const ringdb::Value& v) const noexcept { return v.Hash(); }
};

#endif  // RINGDB_UTIL_VALUE_H_
