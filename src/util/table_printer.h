// Plain-text table rendering used by the benchmark/report binaries to
// regenerate the paper's figures and example tables.

#ifndef RINGDB_UTIL_TABLE_PRINTER_H_
#define RINGDB_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace ringdb {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Renders with column-aligned cells and a header rule.
  std::string Render() const;

  // Renders as CSV (for EXPERIMENTS.md ingestion / plotting).
  std::string RenderCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ringdb

#endif  // RINGDB_UTIL_TABLE_PRINTER_H_
