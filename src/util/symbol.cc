#include "util/symbol.h"

#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/check.h"

namespace ringdb {
namespace {

struct InternTable {
  std::mutex mu;
  std::unordered_map<std::string, uint32_t> ids;
  std::vector<const std::string*> names;
};

// Never destroyed: symbols are process-lifetime handles.
InternTable& Table() {
  static InternTable* table = [] {
    auto* t = new InternTable();
    auto [it, inserted] = t->ids.emplace("", 0);
    RINGDB_CHECK(inserted);
    t->names.push_back(&it->first);
    return t;
  }();
  return *table;
}

}  // namespace

Symbol Symbol::Intern(std::string_view name) {
  InternTable& t = Table();
  std::lock_guard<std::mutex> lock(t.mu);
  auto it = t.ids.find(std::string(name));
  if (it != t.ids.end()) return Symbol(it->second);
  uint32_t id = static_cast<uint32_t>(t.names.size());
  auto [ins, inserted] = t.ids.emplace(std::string(name), id);
  RINGDB_CHECK(inserted);
  t.names.push_back(&ins->first);
  return Symbol(id);
}

const std::string& Symbol::str() const {
  InternTable& t = Table();
  std::lock_guard<std::mutex> lock(t.mu);
  RINGDB_CHECK_LT(id_, t.names.size());
  return *t.names[id_];
}

}  // namespace ringdb
