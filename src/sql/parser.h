// Parser for the SQL aggregate-query subset of §5:
//
//   SELECT [col {, col}] , (SUM(arith) | COUNT(*))
//   FROM table [alias] {, table [alias]}
//   [WHERE pred {AND pred}]
//   [GROUP BY col {, col}] [;]
//
// Predicates compare arithmetic expressions over column references and
// literals with =, <>, <, <=, >, >=. This is exactly the query class the
// paper translates to AGCA (§5, "From SQL to the calculus").

#ifndef RINGDB_SQL_PARSER_H_
#define RINGDB_SQL_PARSER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sql/lexer.h"
#include "util/status.h"
#include "util/value.h"

namespace ringdb {
namespace sql {

// alias.column or bare column (qualifier empty).
struct ColumnRef {
  std::string qualifier;
  std::string column;

  std::string ToString() const {
    return qualifier.empty() ? column : qualifier + "." + column;
  }
  friend bool operator==(const ColumnRef& a, const ColumnRef& b) {
    return a.qualifier == b.qualifier && a.column == b.column;
  }
};

// Arithmetic expression tree over columns and literals.
struct Arith {
  enum class Kind { kColumn, kLiteral, kAdd, kSub, kMul, kNeg };
  Kind kind = Kind::kLiteral;
  ColumnRef column;                 // kColumn
  Value literal;                    // kLiteral
  std::vector<std::unique_ptr<Arith>> children;
};
using ArithPtr = std::unique_ptr<Arith>;

enum class SqlCmp { kEq, kNe, kLt, kLe, kGt, kGe };

struct Predicate {
  ArithPtr lhs;
  SqlCmp op = SqlCmp::kEq;
  ArithPtr rhs;
};

struct FromItem {
  std::string table;
  std::string alias;  // defaults to the table name
};

struct SelectQuery {
  std::vector<ColumnRef> select_columns;  // non-aggregate output columns
  bool is_count_star = false;             // COUNT(*) vs SUM(expr)
  ArithPtr sum_expr;                      // set when !is_count_star
  std::vector<FromItem> from;
  std::vector<Predicate> where;           // conjunction
  std::vector<ColumnRef> group_by;
};

StatusOr<SelectQuery> Parse(const std::string& sql);

}  // namespace sql
}  // namespace ringdb

#endif  // RINGDB_SQL_PARSER_H_
