#include "sql/translate.h"

#include <numeric>
#include <optional>
#include <unordered_map>

#include "util/check.h"

namespace ringdb {
namespace sql {

namespace {

using agca::CmpOp;
using agca::Expr;
using agca::ExprPtr;

CmpOp ToCmpOp(SqlCmp op) {
  switch (op) {
    case SqlCmp::kEq: return CmpOp::kEq;
    case SqlCmp::kNe: return CmpOp::kNe;
    case SqlCmp::kLt: return CmpOp::kLt;
    case SqlCmp::kLe: return CmpOp::kLe;
    case SqlCmp::kGt: return CmpOp::kGt;
    case SqlCmp::kGe: return CmpOp::kGe;
  }
  RINGDB_CHECK(false);
  return CmpOp::kEq;
}

// One column slot per (from item, column position); equalities between
// columns merge slots into classes sharing one query variable.
class Unifier {
 public:
  Unifier(const ring::Catalog& catalog, const SelectQuery& q)
      : catalog_(catalog), query_(q) {
    size_t total = 0;
    for (const FromItem& item : q.from) {
      offsets_.push_back(total);
      total += catalog.Columns(Symbol::Intern(item.table)).size();
    }
    parent_.resize(total);
    std::iota(parent_.begin(), parent_.end(), size_t{0});
    literals_.resize(total);
  }

  StatusOr<size_t> Resolve(const ColumnRef& ref) const {
    std::optional<size_t> found;
    for (size_t f = 0; f < query_.from.size(); ++f) {
      const FromItem& item = query_.from[f];
      if (!ref.qualifier.empty() && ref.qualifier != item.alias) continue;
      const auto& cols = catalog_.Columns(Symbol::Intern(item.table));
      for (size_t c = 0; c < cols.size(); ++c) {
        if (cols[c].str() != ref.column) continue;
        if (found.has_value()) {
          return Status::InvalidArgument("ambiguous column " +
                                         ref.ToString());
        }
        found = offsets_[f] + c;
      }
    }
    if (!found.has_value()) {
      return Status::InvalidArgument("unknown column " + ref.ToString());
    }
    return *found;
  }

  size_t Find(size_t slot) const {
    while (parent_[slot] != slot) slot = parent_[slot];
    return slot;
  }

  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (b < a) std::swap(a, b);
    parent_[b] = a;
    if (!literals_[a].has_value()) literals_[a] = literals_[b];
  }

  // Records col = literal; a second, different literal empties the query.
  // Returns false when the class is now over-constrained.
  bool Constrain(size_t slot, const Value& literal) {
    size_t root = Find(slot);
    if (literals_[root].has_value()) return *literals_[root] == literal;
    literals_[root] = literal;
    return true;
  }

  const std::optional<Value>& LiteralOf(size_t slot) const {
    return literals_[Find(slot)];
  }

  size_t SlotOf(size_t from_index, size_t column_index) const {
    return offsets_[from_index] + column_index;
  }

  // The class variable, named after the root slot's alias.column.
  Symbol VarOf(size_t slot) const {
    size_t root = Find(slot);
    size_t f = 0;
    while (f + 1 < offsets_.size() && offsets_[f + 1] <= root) ++f;
    const FromItem& item = query_.from[f];
    const auto& cols = catalog_.Columns(Symbol::Intern(item.table));
    return Symbol::Intern(item.alias + "." +
                          cols[root - offsets_[f]].str());
  }

 private:
  const ring::Catalog& catalog_;
  const SelectQuery& query_;
  std::vector<size_t> offsets_;
  std::vector<size_t> parent_;
  std::vector<std::optional<Value>> literals_;
};

bool IsSimpleColumn(const Arith& a) { return a.kind == Arith::Kind::kColumn; }
bool IsLiteral(const Arith& a) { return a.kind == Arith::Kind::kLiteral; }

}  // namespace

StatusOr<TranslatedQuery> Translate(const ring::Catalog& catalog,
                                    const SelectQuery& query) {
  if (query.from.empty()) {
    return Status::InvalidArgument("FROM list must not be empty");
  }
  for (const FromItem& item : query.from) {
    if (!catalog.Has(Symbol::Intern(item.table))) {
      return Status::InvalidArgument("unknown table " + item.table);
    }
  }
  for (size_t i = 0; i < query.from.size(); ++i) {
    for (size_t j = i + 1; j < query.from.size(); ++j) {
      if (query.from[i].alias == query.from[j].alias) {
        return Status::InvalidArgument("duplicate alias " +
                                       query.from[i].alias);
      }
    }
  }

  Unifier unifier(catalog, query);
  bool always_empty = false;

  // Pass 1: consume unification-friendly equalities.
  std::vector<const Predicate*> residual;
  for (const Predicate& pred : query.where) {
    if (pred.op == SqlCmp::kEq && IsSimpleColumn(*pred.lhs) &&
        IsSimpleColumn(*pred.rhs)) {
      RINGDB_ASSIGN_OR_RETURN(size_t a, unifier.Resolve(pred.lhs->column));
      RINGDB_ASSIGN_OR_RETURN(size_t b, unifier.Resolve(pred.rhs->column));
      unifier.Union(a, b);
      continue;
    }
    if (pred.op == SqlCmp::kEq && IsSimpleColumn(*pred.lhs) &&
        IsLiteral(*pred.rhs)) {
      RINGDB_ASSIGN_OR_RETURN(size_t a, unifier.Resolve(pred.lhs->column));
      if (!unifier.Constrain(a, pred.rhs->literal)) always_empty = true;
      continue;
    }
    if (pred.op == SqlCmp::kEq && IsLiteral(*pred.lhs) &&
        IsSimpleColumn(*pred.rhs)) {
      RINGDB_ASSIGN_OR_RETURN(size_t a, unifier.Resolve(pred.rhs->column));
      if (!unifier.Constrain(a, pred.lhs->literal)) always_empty = true;
      continue;
    }
    residual.push_back(&pred);
  }

  // Group-by classes keep their variable even when literal-constrained
  // (the constraint becomes a guard) so the group key remains produced.
  TranslatedQuery out;
  std::vector<size_t> group_slots;
  for (const ColumnRef& ref : query.group_by) {
    RINGDB_ASSIGN_OR_RETURN(size_t slot, unifier.Resolve(ref));
    group_slots.push_back(slot);
    out.group_vars.push_back(unifier.VarOf(slot));
    out.group_names.push_back(ref.ToString());
  }
  auto is_group_class = [&](size_t slot) {
    for (size_t g : group_slots) {
      if (unifier.Find(g) == unifier.Find(slot)) return true;
    }
    return false;
  };

  // SELECT columns must be grouped.
  for (const ColumnRef& ref : query.select_columns) {
    RINGDB_ASSIGN_OR_RETURN(size_t slot, unifier.Resolve(ref));
    if (!is_group_class(slot)) {
      return Status::InvalidArgument("select column " + ref.ToString() +
                                     " is not in GROUP BY");
    }
  }

  if (always_empty) {
    out.body = Expr::Const(kZero);
    return out;
  }

  // Arithmetic translation.
  auto translate_arith = [&](const Arith& a,
                             auto&& self) -> StatusOr<ExprPtr> {
    switch (a.kind) {
      case Arith::Kind::kColumn: {
        RINGDB_ASSIGN_OR_RETURN(size_t slot, unifier.Resolve(a.column));
        const std::optional<Value>& lit = unifier.LiteralOf(slot);
        if (lit.has_value() && !is_group_class(slot)) {
          return lit->is_string() ? Expr::ValueConst(*lit)
                                  : Expr::Const(*lit->ToNumeric());
        }
        return Expr::Var(unifier.VarOf(slot));
      }
      case Arith::Kind::kLiteral:
        return a.literal.is_string() ? Expr::ValueConst(a.literal)
                                     : Expr::Const(*a.literal.ToNumeric());
      case Arith::Kind::kNeg: {
        RINGDB_ASSIGN_OR_RETURN(ExprPtr inner, self(*a.children[0], self));
        return Expr::Neg(std::move(inner));
      }
      case Arith::Kind::kAdd:
      case Arith::Kind::kSub:
      case Arith::Kind::kMul: {
        RINGDB_ASSIGN_OR_RETURN(ExprPtr l, self(*a.children[0], self));
        RINGDB_ASSIGN_OR_RETURN(ExprPtr r, self(*a.children[1], self));
        if (a.kind == Arith::Kind::kMul) return Expr::Mul({l, r});
        if (a.kind == Arith::Kind::kSub) r = Expr::Neg(std::move(r));
        return Expr::Add({l, r});
      }
    }
    return Status::Internal("corrupt arithmetic node");
  };

  // Relation atoms, in FROM order.
  std::vector<ExprPtr> factors;
  for (size_t f = 0; f < query.from.size(); ++f) {
    Symbol table = Symbol::Intern(query.from[f].table);
    const auto& cols = catalog.Columns(table);
    std::vector<agca::Term> args;
    args.reserve(cols.size());
    for (size_t c = 0; c < cols.size(); ++c) {
      size_t slot = unifier.SlotOf(f, c);
      const std::optional<Value>& lit = unifier.LiteralOf(slot);
      if (lit.has_value() && !is_group_class(slot)) {
        args.emplace_back(*lit);
      } else {
        args.emplace_back(unifier.VarOf(slot));
      }
    }
    factors.push_back(Expr::Relation(table, std::move(args)));
  }

  // Guards for literal-constrained group-by classes.
  for (size_t g : group_slots) {
    const std::optional<Value>& lit = unifier.LiteralOf(g);
    if (lit.has_value()) {
      factors.push_back(Expr::Cmp(CmpOp::kEq, Expr::Var(unifier.VarOf(g)),
                                  Expr::ValueConst(*lit)));
    }
  }

  // Residual comparisons.
  for (const Predicate* pred : residual) {
    RINGDB_ASSIGN_OR_RETURN(ExprPtr l,
                            translate_arith(*pred->lhs, translate_arith));
    RINGDB_ASSIGN_OR_RETURN(ExprPtr r,
                            translate_arith(*pred->rhs, translate_arith));
    factors.push_back(Expr::Cmp(ToCmpOp(pred->op), l, r));
  }

  // The aggregated term: SUM(t) multiplies by t; COUNT(*) by 1.
  if (!query.is_count_star) {
    RINGDB_ASSIGN_OR_RETURN(
        ExprPtr t, translate_arith(*query.sum_expr, translate_arith));
    factors.push_back(std::move(t));
  }

  out.body = Expr::Mul(std::move(factors));
  return out;
}

StatusOr<TranslatedQuery> TranslateSql(const ring::Catalog& catalog,
                                       const std::string& sql) {
  RINGDB_ASSIGN_OR_RETURN(SelectQuery parsed, Parse(sql));
  return Translate(catalog, parsed);
}

}  // namespace sql
}  // namespace ringdb
