// SQL -> AGCA translation (§5, "From SQL to the calculus"):
//
//   SELECT ~b, SUM(t) FROM R1 r11, ... WHERE phi GROUP BY ~b
//     ~>  Sum_[~b](R1(~x11) * ... * phi * t)
//
// Equality predicates between columns are realized by *variable
// unification* (shared variables across atoms — the natural-join encoding
// of the ring), equalities against literals become constant atom
// arguments (or guards on group-by columns), and remaining comparisons
// become AGCA condition factors.

#ifndef RINGDB_SQL_TRANSLATE_H_
#define RINGDB_SQL_TRANSLATE_H_

#include <string>
#include <vector>

#include "agca/ast.h"
#include "ring/database.h"
#include "sql/parser.h"
#include "util/status.h"

namespace ringdb {
namespace sql {

struct TranslatedQuery {
  // The AGCA query is Sum_[group_vars](body).
  std::vector<Symbol> group_vars;  // in GROUP BY order
  agca::ExprPtr body;
  // Display names for the grouped output columns, parallel to group_vars.
  std::vector<std::string> group_names;
};

StatusOr<TranslatedQuery> Translate(const ring::Catalog& catalog,
                                    const SelectQuery& query);

// Parse + Translate in one step.
StatusOr<TranslatedQuery> TranslateSql(const ring::Catalog& catalog,
                                       const std::string& sql);

}  // namespace sql
}  // namespace ringdb

#endif  // RINGDB_SQL_TRANSLATE_H_
