#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

namespace ringdb {
namespace sql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "SELECT", "FROM", "WHERE", "GROUP", "BY",
      "AS",     "AND",  "SUM",   "COUNT"};
  return *kKeywords;
}

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(
      static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

StatusOr<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto push = [&](TokenKind kind, size_t at) {
    Token t;
    t.kind = kind;
    t.offset = at;
    tokens.push_back(t);
    return &tokens.back();
  };
  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    size_t at = i;
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      size_t j = i;
      while (j < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[j])) != 0 ||
              input[j] == '_')) {
        ++j;
      }
      std::string word = input.substr(i, j - i);
      std::string upper = ToUpper(word);
      Token* t = push(Keywords().contains(upper) ? TokenKind::kKeyword
                                                 : TokenKind::kIdent,
                      at);
      t->text = Keywords().contains(upper) ? upper : word;
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      size_t j = i;
      bool is_double = false;
      while (j < input.size() &&
             (std::isdigit(static_cast<unsigned char>(input[j])) != 0 ||
              input[j] == '.')) {
        if (input[j] == '.') {
          // "1." followed by an identifier would be ambiguous with the
          // qualified-name dot, but column names cannot start with a
          // digit, so a dot after digits is always a decimal point.
          is_double = true;
        }
        ++j;
      }
      std::string num = input.substr(i, j - i);
      Token* t = push(is_double ? TokenKind::kDouble : TokenKind::kInt, at);
      if (is_double) {
        t->double_value = std::stod(num);
      } else {
        t->int_value = std::stoll(num);
      }
      t->text = num;
      i = j;
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      std::string payload;
      bool closed = false;
      while (j < input.size()) {
        if (input[j] == '\'') {
          if (j + 1 < input.size() && input[j + 1] == '\'') {
            payload.push_back('\'');  // escaped quote
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        payload.push_back(input[j]);
        ++j;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at " +
                                       std::to_string(at));
      }
      Token* t = push(TokenKind::kString, at);
      t->text = std::move(payload);
      i = j;
      continue;
    }
    auto two = [&](char a, char b) {
      return c == a && i + 1 < input.size() && input[i + 1] == b;
    };
    if (two('<', '>') || two('!', '=')) {
      push(TokenKind::kNe, at);
      i += 2;
      continue;
    }
    if (two('<', '=')) {
      push(TokenKind::kLe, at);
      i += 2;
      continue;
    }
    if (two('>', '=')) {
      push(TokenKind::kGe, at);
      i += 2;
      continue;
    }
    switch (c) {
      case ',': push(TokenKind::kComma, at); break;
      case '.': push(TokenKind::kDot, at); break;
      case '(': push(TokenKind::kLParen, at); break;
      case ')': push(TokenKind::kRParen, at); break;
      case '*': push(TokenKind::kStar, at); break;
      case '+': push(TokenKind::kPlus, at); break;
      case '-': push(TokenKind::kMinus, at); break;
      case '=': push(TokenKind::kEq, at); break;
      case '<': push(TokenKind::kLt, at); break;
      case '>': push(TokenKind::kGt, at); break;
      case ';': push(TokenKind::kSemicolon, at); break;
      default:
        return Status::InvalidArgument(
            std::string("unexpected character '") + c + "' at offset " +
            std::to_string(at));
    }
    ++i;
  }
  push(TokenKind::kEnd, input.size());
  return tokens;
}

}  // namespace sql
}  // namespace ringdb
