// Lexer for the SQL subset of §5 (aggregate select-project-join queries).

#ifndef RINGDB_SQL_LEXER_H_
#define RINGDB_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace ringdb {
namespace sql {

enum class TokenKind {
  kIdent,      // table / column / alias names
  kKeyword,    // SELECT FROM WHERE GROUP BY AS AND SUM COUNT
  kInt,
  kDouble,
  kString,     // 'quoted'
  kComma,
  kDot,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kMinus,
  kEq,         // =
  kNe,         // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
  kSemicolon,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      // identifier (original case) / keyword (upper) /
                         // string payload
  int64_t int_value = 0;
  double double_value = 0;
  size_t offset = 0;     // byte offset in the input, for error messages
};

// Tokenizes the whole input. Keywords are case-insensitive and
// canonicalized to upper case in Token::text.
StatusOr<std::vector<Token>> Lex(const std::string& input);

}  // namespace sql
}  // namespace ringdb

#endif  // RINGDB_SQL_LEXER_H_
