#include "sql/parser.h"

#include <utility>

namespace ringdb {
namespace sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<SelectQuery> ParseQuery() {
    RINGDB_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SelectQuery q;
    RINGDB_RETURN_IF_ERROR(ParseSelectList(&q));
    RINGDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    RINGDB_RETURN_IF_ERROR(ParseFromList(&q));
    if (AcceptKeyword("WHERE")) {
      RINGDB_RETURN_IF_ERROR(ParseConjunction(&q));
    }
    if (AcceptKeyword("GROUP")) {
      RINGDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
      RINGDB_RETURN_IF_ERROR(ParseGroupBy(&q));
    }
    Accept(TokenKind::kSemicolon);
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input after query");
    }
    return q;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool Accept(TokenKind kind) {
    if (Peek().kind != kind) return false;
    ++pos_;
    return true;
  }

  bool AcceptKeyword(const std::string& kw) {
    if (Peek().kind != TokenKind::kKeyword || Peek().text != kw) {
      return false;
    }
    ++pos_;
    return true;
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) return Error("expected " + kw);
    return Status::Ok();
  }

  Status Expect(TokenKind kind, const std::string& what) {
    if (!Accept(kind)) return Error("expected " + what);
    return Status::Ok();
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        message + " at offset " + std::to_string(Peek().offset) +
        (Peek().text.empty() ? "" : " (near '" + Peek().text + "')"));
  }

  StatusOr<ColumnRef> ParseColumnRef() {
    if (Peek().kind != TokenKind::kIdent) return Error("expected column");
    ColumnRef ref;
    ref.column = Advance().text;
    if (Accept(TokenKind::kDot)) {
      if (Peek().kind != TokenKind::kIdent) {
        return Error("expected column after '.'");
      }
      ref.qualifier = std::move(ref.column);
      ref.column = Advance().text;
    }
    return ref;
  }

  Status ParseSelectList(SelectQuery* q) {
    while (true) {
      if (Peek().kind == TokenKind::kKeyword &&
          (Peek().text == "SUM" || Peek().text == "COUNT")) {
        bool is_count = Advance().text == "COUNT";
        RINGDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
        if (is_count) {
          RINGDB_RETURN_IF_ERROR(Expect(TokenKind::kStar, "'*'"));
          q->is_count_star = true;
        } else {
          RINGDB_ASSIGN_OR_RETURN(q->sum_expr, ParseArith());
        }
        RINGDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        if (Accept(TokenKind::kComma)) {
          return Error("the aggregate must be the last select item");
        }
        return Status::Ok();
      }
      RINGDB_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
      q->select_columns.push_back(std::move(ref));
      if (!Accept(TokenKind::kComma)) {
        return Error("expected ', SUM(...)' or ', COUNT(*)' — the query "
                     "must end in exactly one aggregate");
      }
    }
  }

  Status ParseFromList(SelectQuery* q) {
    while (true) {
      if (Peek().kind != TokenKind::kIdent) return Error("expected table");
      FromItem item;
      item.table = Advance().text;
      AcceptKeyword("AS");
      if (Peek().kind == TokenKind::kIdent) {
        item.alias = Advance().text;
      } else {
        item.alias = item.table;
      }
      q->from.push_back(std::move(item));
      if (!Accept(TokenKind::kComma)) return Status::Ok();
    }
  }

  Status ParseConjunction(SelectQuery* q) {
    while (true) {
      Predicate pred;
      RINGDB_ASSIGN_OR_RETURN(pred.lhs, ParseArith());
      switch (Peek().kind) {
        case TokenKind::kEq: pred.op = SqlCmp::kEq; break;
        case TokenKind::kNe: pred.op = SqlCmp::kNe; break;
        case TokenKind::kLt: pred.op = SqlCmp::kLt; break;
        case TokenKind::kLe: pred.op = SqlCmp::kLe; break;
        case TokenKind::kGt: pred.op = SqlCmp::kGt; break;
        case TokenKind::kGe: pred.op = SqlCmp::kGe; break;
        default:
          return Error("expected comparison operator");
      }
      Advance();
      RINGDB_ASSIGN_OR_RETURN(pred.rhs, ParseArith());
      q->where.push_back(std::move(pred));
      if (!AcceptKeyword("AND")) return Status::Ok();
    }
  }

  Status ParseGroupBy(SelectQuery* q) {
    while (true) {
      RINGDB_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
      q->group_by.push_back(std::move(ref));
      if (!Accept(TokenKind::kComma)) return Status::Ok();
    }
  }

  // arith := term (('+'|'-') term)*
  StatusOr<ArithPtr> ParseArith() {
    RINGDB_ASSIGN_OR_RETURN(ArithPtr lhs, ParseTerm());
    while (Peek().kind == TokenKind::kPlus ||
           Peek().kind == TokenKind::kMinus) {
      bool plus = Advance().kind == TokenKind::kPlus;
      RINGDB_ASSIGN_OR_RETURN(ArithPtr rhs, ParseTerm());
      auto node = std::make_unique<Arith>();
      node->kind = plus ? Arith::Kind::kAdd : Arith::Kind::kSub;
      node->children.push_back(std::move(lhs));
      node->children.push_back(std::move(rhs));
      lhs = std::move(node);
    }
    return lhs;
  }

  // term := factor ('*' factor)*
  StatusOr<ArithPtr> ParseTerm() {
    RINGDB_ASSIGN_OR_RETURN(ArithPtr lhs, ParseFactor());
    while (Peek().kind == TokenKind::kStar) {
      Advance();
      RINGDB_ASSIGN_OR_RETURN(ArithPtr rhs, ParseFactor());
      auto node = std::make_unique<Arith>();
      node->kind = Arith::Kind::kMul;
      node->children.push_back(std::move(lhs));
      node->children.push_back(std::move(rhs));
      lhs = std::move(node);
    }
    return lhs;
  }

  StatusOr<ArithPtr> ParseFactor() {
    auto node = std::make_unique<Arith>();
    switch (Peek().kind) {
      case TokenKind::kInt:
        node->kind = Arith::Kind::kLiteral;
        node->literal = Value(Advance().int_value);
        return node;
      case TokenKind::kDouble:
        node->kind = Arith::Kind::kLiteral;
        node->literal = Value(Advance().double_value);
        return node;
      case TokenKind::kString:
        node->kind = Arith::Kind::kLiteral;
        node->literal = Value(Advance().text);
        return node;
      case TokenKind::kMinus: {
        Advance();
        RINGDB_ASSIGN_OR_RETURN(ArithPtr inner, ParseFactor());
        node->kind = Arith::Kind::kNeg;
        node->children.push_back(std::move(inner));
        return node;
      }
      case TokenKind::kLParen: {
        Advance();
        RINGDB_ASSIGN_OR_RETURN(ArithPtr inner, ParseArith());
        RINGDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        return inner;
      }
      case TokenKind::kIdent: {
        RINGDB_ASSIGN_OR_RETURN(node->column, ParseColumnRef());
        node->kind = Arith::Kind::kColumn;
        return node;
      }
      default:
        return Error("expected literal, column, or '('");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<SelectQuery> Parse(const std::string& sql) {
  RINGDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

}  // namespace sql
}  // namespace ringdb
