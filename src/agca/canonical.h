// Renaming-insensitive canonical form, used by the compiler to unify
// structurally identical auxiliary views (common subexpression
// elimination across the view hierarchy).
//
// CanonicalizeView renders Sum_[keys](body) with every variable replaced
// by $i in order of first appearance during a deterministic traversal that
// visits the key list first. Two view definitions that differ only in
// variable names (including key names and order-of-key declaration, as
// long as the *canonical* traversal agrees) produce the same string.

#ifndef RINGDB_AGCA_CANONICAL_H_
#define RINGDB_AGCA_CANONICAL_H_

#include <string>
#include <vector>

#include "agca/ast.h"

namespace ringdb {
namespace agca {

struct CanonicalView {
  // The canonical rendering of Sum_[$k...](body).
  std::string fingerprint;
  // key_order[i] = position of the i-th given key variable in the
  // canonical key ordering (keys sorted by canonical id). A caller reusing
  // an existing view with different key names permutes its key references
  // by this mapping to match the stored view's layout.
  std::vector<size_t> key_order;
};

CanonicalView CanonicalizeView(const std::vector<Symbol>& key_vars,
                               const ExprPtr& body);

}  // namespace agca
}  // namespace ringdb

#endif  // RINGDB_AGCA_CANONICAL_H_
