#include "agca/degree.h"

#include <algorithm>

#include "util/check.h"

namespace ringdb {
namespace agca {

int Degree(const Expr& e) {
  switch (e.kind()) {
    case Expr::Kind::kConst:
    case Expr::Kind::kValueConst:
    case Expr::Kind::kVar:
      return 0;
    case Expr::Kind::kRelation:
      return 1;
    case Expr::Kind::kAdd: {
      int d = 0;
      for (const auto& c : e.children()) d = std::max(d, Degree(*c));
      return d;
    }
    case Expr::Kind::kMul: {
      int d = 0;
      for (const auto& c : e.children()) d += Degree(*c);
      return d;
    }
    case Expr::Kind::kSum:
      return Degree(*e.child());
    case Expr::Kind::kCmp:
      // deg(alpha theta 0) := deg(alpha); for the binary sugar l theta r
      // this is the degree of (l - r).
      return std::max(Degree(*e.lhs()), Degree(*e.rhs()));
    case Expr::Kind::kAssign:
      // x := t is treated like the condition x = t.
      return Degree(*e.child());
  }
  RINGDB_CHECK(false);
  return 0;
}

namespace {

bool CheckConditions(const Expr& e) {
  switch (e.kind()) {
    case Expr::Kind::kConst:
    case Expr::Kind::kValueConst:
    case Expr::Kind::kVar:
    case Expr::Kind::kRelation:
      return true;
    case Expr::Kind::kAdd:
    case Expr::Kind::kMul: {
      for (const auto& c : e.children()) {
        if (!CheckConditions(*c)) return false;
      }
      return true;
    }
    case Expr::Kind::kSum:
      return CheckConditions(*e.child());
    case Expr::Kind::kCmp:
      return DatabaseFree(*e.lhs()) && DatabaseFree(*e.rhs());
    case Expr::Kind::kAssign:
      return DatabaseFree(*e.child());
  }
  RINGDB_CHECK(false);
  return false;
}

}  // namespace

bool HasSimpleConditionsOnly(const Expr& e) { return CheckConditions(e); }

}  // namespace agca
}  // namespace ringdb
