#include "agca/ast.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"
#include "util/hash.h"

namespace ringdb {
namespace agca {

bool IsVar(const Term& t) { return std::holds_alternative<Symbol>(t); }

Symbol TermVar(const Term& t) {
  RINGDB_CHECK(IsVar(t));
  return std::get<Symbol>(t);
}

const Value& TermValue(const Term& t) {
  RINGDB_CHECK(!IsVar(t));
  return std::get<Value>(t);
}

std::string TermToString(const Term& t) {
  if (IsVar(t)) return std::get<Symbol>(t).str();
  const Value& v = std::get<Value>(t);
  if (v.is_string()) return "'" + v.ToString() + "'";
  return v.ToString();
}

bool TermEquals(const Term& a, const Term& b) {
  if (IsVar(a) != IsVar(b)) return false;
  if (IsVar(a)) return std::get<Symbol>(a) == std::get<Symbol>(b);
  return std::get<Value>(a) == std::get<Value>(b);
}

CmpOp Complement(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return CmpOp::kNe;
    case CmpOp::kNe: return CmpOp::kEq;
    case CmpOp::kLt: return CmpOp::kGe;
    case CmpOp::kLe: return CmpOp::kGt;
    case CmpOp::kGt: return CmpOp::kLe;
    case CmpOp::kGe: return CmpOp::kLt;
  }
  RINGDB_CHECK(false);
  return CmpOp::kEq;
}

std::string CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  RINGDB_CHECK(false);
  return "?";
}

ExprPtr Expr::Const(Numeric c) {
  auto e = New();
  e->kind_ = Kind::kConst;
  e->constant_ = c;
  return e;
}

ExprPtr Expr::ValueConst(Value v) {
  auto e = New();
  e->kind_ = Kind::kValueConst;
  e->value_ = std::move(v);
  return e;
}

ExprPtr Expr::Var(Symbol x) {
  auto e = New();
  e->kind_ = Kind::kVar;
  e->symbol_ = x;
  return e;
}

ExprPtr Expr::Relation(Symbol name, std::vector<Term> args) {
  auto e = New();
  e->kind_ = Kind::kRelation;
  e->symbol_ = name;
  e->args_ = std::move(args);
  return e;
}

ExprPtr Expr::Add(std::vector<ExprPtr> children) {
  std::vector<ExprPtr> flat;
  Numeric const_sum = kZero;
  for (auto& c : children) {
    RINGDB_CHECK(c != nullptr);
    if (c->kind() == Kind::kAdd) {
      for (const auto& g : c->children()) {
        if (g->kind() == Kind::kConst) {
          const_sum += g->constant();
        } else {
          flat.push_back(g);
        }
      }
    } else if (c->kind() == Kind::kConst) {
      const_sum += c->constant();
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (!const_sum.IsZero()) flat.push_back(Const(const_sum));
  if (flat.empty()) return Const(kZero);
  if (flat.size() == 1) return flat[0];
  auto e = New();
  e->kind_ = Kind::kAdd;
  e->children_ = std::move(flat);
  return e;
}

ExprPtr Expr::Mul(std::vector<ExprPtr> children) {
  std::vector<ExprPtr> flat;
  Numeric const_prod = kOne;
  for (auto& c : children) {
    RINGDB_CHECK(c != nullptr);
    if (c->kind() == Kind::kMul) {
      for (const auto& g : c->children()) {
        if (g->kind() == Kind::kConst) {
          const_prod *= g->constant();
        } else {
          flat.push_back(g);
        }
      }
    } else if (c->kind() == Kind::kConst) {
      const_prod *= c->constant();
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (const_prod.IsZero()) return Const(kZero);
  if (!const_prod.IsOne()) {
    // Constants commute with everything (scalar action); keep them leading
    // so printed monomials read like "3 * R(x) * S(y)".
    flat.insert(flat.begin(), Const(const_prod));
  }
  if (flat.empty()) return Const(kOne);
  if (flat.size() == 1) return flat[0];
  auto e = New();
  e->kind_ = Kind::kMul;
  e->children_ = std::move(flat);
  return e;
}

ExprPtr Expr::Neg(ExprPtr e) {
  return Mul({Const(Numeric(int64_t{-1})), std::move(e)});
}

ExprPtr Expr::Sum(std::vector<Symbol> group_vars, ExprPtr child) {
  RINGDB_CHECK(child != nullptr);
  // Sum_[g](0) is the zero gmr.
  if (child->IsZero()) return child;
  auto e = New();
  e->kind_ = Kind::kSum;
  e->group_vars_ = std::move(group_vars);
  e->children_ = {std::move(child)};
  return e;
}

ExprPtr Expr::Cmp(CmpOp op, ExprPtr lhs, ExprPtr rhs) {
  RINGDB_CHECK(lhs != nullptr);
  RINGDB_CHECK(rhs != nullptr);
  auto e = New();
  e->kind_ = Kind::kCmp;
  e->cmp_op_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::Assign(Symbol var, ExprPtr value) {
  RINGDB_CHECK(value != nullptr);
  auto e = New();
  e->kind_ = Kind::kAssign;
  e->symbol_ = var;
  e->children_ = {std::move(value)};
  return e;
}

Numeric Expr::constant() const {
  RINGDB_CHECK(kind_ == Kind::kConst);
  return constant_;
}

const Value& Expr::value_const() const {
  RINGDB_CHECK(kind_ == Kind::kValueConst);
  return value_;
}

Symbol Expr::var() const {
  RINGDB_CHECK(kind_ == Kind::kVar || kind_ == Kind::kAssign);
  return symbol_;
}

Symbol Expr::relation() const {
  RINGDB_CHECK(kind_ == Kind::kRelation);
  return symbol_;
}

const std::vector<Term>& Expr::args() const {
  RINGDB_CHECK(kind_ == Kind::kRelation);
  return args_;
}

const std::vector<ExprPtr>& Expr::children() const {
  RINGDB_CHECK(kind_ == Kind::kAdd || kind_ == Kind::kMul);
  return children_;
}

const ExprPtr& Expr::child() const {
  RINGDB_CHECK(kind_ == Kind::kSum || kind_ == Kind::kAssign);
  return children_[0];
}

const std::vector<Symbol>& Expr::group_vars() const {
  RINGDB_CHECK(kind_ == Kind::kSum);
  return group_vars_;
}

CmpOp Expr::cmp_op() const {
  RINGDB_CHECK(kind_ == Kind::kCmp);
  return cmp_op_;
}

const ExprPtr& Expr::lhs() const {
  RINGDB_CHECK(kind_ == Kind::kCmp);
  return children_[0];
}

const ExprPtr& Expr::rhs() const {
  RINGDB_CHECK(kind_ == Kind::kCmp);
  return children_[1];
}

std::string Expr::ToString() const {
  std::ostringstream out;
  switch (kind_) {
    case Kind::kConst:
      out << constant_.ToString();
      break;
    case Kind::kValueConst:
      out << (value_.is_string() ? "'" + value_.ToString() + "'"
                                 : value_.ToString());
      break;
    case Kind::kVar:
      out << symbol_.str();
      break;
    case Kind::kRelation: {
      out << symbol_.str() << '(';
      for (size_t i = 0; i < args_.size(); ++i) {
        if (i) out << ", ";
        out << TermToString(args_[i]);
      }
      out << ')';
      break;
    }
    case Kind::kAdd: {
      out << '(';
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i) out << " + ";
        out << children_[i]->ToString();
      }
      out << ')';
      break;
    }
    case Kind::kMul: {
      out << '(';
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i) out << " * ";
        out << children_[i]->ToString();
      }
      out << ')';
      break;
    }
    case Kind::kSum: {
      out << "Sum";
      if (!group_vars_.empty()) {
        out << "_[";
        for (size_t i = 0; i < group_vars_.size(); ++i) {
          if (i) out << ", ";
          out << group_vars_[i].str();
        }
        out << ']';
      }
      out << '(' << children_[0]->ToString() << ')';
      break;
    }
    case Kind::kCmp:
      out << '(' << children_[0]->ToString() << ' '
          << CmpOpToString(cmp_op_) << ' ' << children_[1]->ToString() << ')';
      break;
    case Kind::kAssign:
      out << '(' << symbol_.str() << " := " << children_[0]->ToString()
          << ')';
      break;
  }
  return out.str();
}

// ---- Variable analyses ----

namespace {

void CollectOutputVars(const Expr& e, std::set<Symbol>* out) {
  switch (e.kind()) {
    case Expr::Kind::kConst:
    case Expr::Kind::kValueConst:
    case Expr::Kind::kVar:
    case Expr::Kind::kCmp:
      break;
    case Expr::Kind::kAssign:
      out->insert(e.var());
      break;
    case Expr::Kind::kRelation:
      for (const Term& t : e.args()) {
        if (IsVar(t)) out->insert(TermVar(t));
      }
      break;
    case Expr::Kind::kAdd:
    case Expr::Kind::kMul:
      for (const auto& c : e.children()) CollectOutputVars(*c, out);
      break;
    case Expr::Kind::kSum:
      for (Symbol v : e.group_vars()) out->insert(v);
      break;
  }
}

void CollectRequiredVars(const Expr& e, const std::set<Symbol>& bound,
                         std::set<Symbol>* req) {
  switch (e.kind()) {
    case Expr::Kind::kConst:
    case Expr::Kind::kValueConst:
    case Expr::Kind::kRelation:
      // Relation argument variables that are unbound act as outputs, bound
      // ones as selections; neither requires an external binding.
      break;
    case Expr::Kind::kVar:
      if (!bound.contains(e.var())) req->insert(e.var());
      break;
    case Expr::Kind::kCmp:
      CollectRequiredVars(*e.lhs(), bound, req);
      CollectRequiredVars(*e.rhs(), bound, req);
      break;
    case Expr::Kind::kAssign:
      CollectRequiredVars(*e.child(), bound, req);
      break;
    case Expr::Kind::kAdd:
      for (const auto& c : e.children()) CollectRequiredVars(*c, bound, req);
      break;
    case Expr::Kind::kMul: {
      std::set<Symbol> avail = bound;
      for (const auto& c : e.children()) {
        CollectRequiredVars(*c, avail, req);
        std::set<Symbol> outs = OutputVars(*c);
        avail.insert(outs.begin(), outs.end());
      }
      break;
    }
    case Expr::Kind::kSum:
      CollectRequiredVars(*e.child(), bound, req);
      break;
  }
}

void CollectAllVars(const Expr& e, std::set<Symbol>* out) {
  switch (e.kind()) {
    case Expr::Kind::kConst:
    case Expr::Kind::kValueConst:
      break;
    case Expr::Kind::kVar:
      out->insert(e.var());
      break;
    case Expr::Kind::kRelation:
      for (const Term& t : e.args()) {
        if (IsVar(t)) out->insert(TermVar(t));
      }
      break;
    case Expr::Kind::kCmp:
      CollectAllVars(*e.lhs(), out);
      CollectAllVars(*e.rhs(), out);
      break;
    case Expr::Kind::kAssign:
      out->insert(e.var());
      CollectAllVars(*e.child(), out);
      break;
    case Expr::Kind::kAdd:
    case Expr::Kind::kMul:
      for (const auto& c : e.children()) CollectAllVars(*c, out);
      break;
    case Expr::Kind::kSum:
      for (Symbol v : e.group_vars()) out->insert(v);
      CollectAllVars(*e.child(), out);
      break;
  }
}

void CollectRelations(const Expr& e, std::set<Symbol>* out) {
  switch (e.kind()) {
    case Expr::Kind::kConst:
    case Expr::Kind::kValueConst:
    case Expr::Kind::kVar:
      break;
    case Expr::Kind::kRelation:
      out->insert(e.relation());
      break;
    case Expr::Kind::kCmp:
      CollectRelations(*e.lhs(), out);
      CollectRelations(*e.rhs(), out);
      break;
    case Expr::Kind::kAssign:
    case Expr::Kind::kSum:
      CollectRelations(*e.child(), out);
      break;
    case Expr::Kind::kAdd:
    case Expr::Kind::kMul:
      for (const auto& c : e.children()) CollectRelations(*c, out);
      break;
  }
}

}  // namespace

std::set<Symbol> OutputVars(const Expr& e) {
  std::set<Symbol> out;
  CollectOutputVars(e, &out);
  return out;
}

std::set<Symbol> RequiredVars(const Expr& e) {
  std::set<Symbol> req;
  CollectRequiredVars(e, {}, &req);
  return req;
}

std::set<Symbol> AllVars(const Expr& e) {
  std::set<Symbol> out;
  CollectAllVars(e, &out);
  return out;
}

std::set<Symbol> RelationsIn(const Expr& e) {
  std::set<Symbol> out;
  CollectRelations(e, &out);
  return out;
}

bool DatabaseFree(const Expr& e) { return RelationsIn(e).empty(); }

bool ExprEquals(const Expr& a, const Expr& b) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case Expr::Kind::kConst:
      return a.constant() == b.constant() &&
             a.constant().is_integer() == b.constant().is_integer();
    case Expr::Kind::kValueConst:
      return a.value_const() == b.value_const();
    case Expr::Kind::kVar:
      return a.var() == b.var();
    case Expr::Kind::kRelation: {
      if (a.relation() != b.relation()) return false;
      if (a.args().size() != b.args().size()) return false;
      for (size_t i = 0; i < a.args().size(); ++i) {
        if (!TermEquals(a.args()[i], b.args()[i])) return false;
      }
      return true;
    }
    case Expr::Kind::kAdd:
    case Expr::Kind::kMul: {
      if (a.children().size() != b.children().size()) return false;
      for (size_t i = 0; i < a.children().size(); ++i) {
        if (!ExprEquals(*a.children()[i], *b.children()[i])) return false;
      }
      return true;
    }
    case Expr::Kind::kSum:
      return a.group_vars() == b.group_vars() &&
             ExprEquals(*a.child(), *b.child());
    case Expr::Kind::kCmp:
      return a.cmp_op() == b.cmp_op() && ExprEquals(*a.lhs(), *b.lhs()) &&
             ExprEquals(*a.rhs(), *b.rhs());
    case Expr::Kind::kAssign:
      return a.var() == b.var() && ExprEquals(*a.child(), *b.child());
  }
  return false;
}

size_t ExprHash(const Expr& e) {
  size_t h = HashCombine(0x51ed270b, static_cast<size_t>(e.kind()));
  switch (e.kind()) {
    case Expr::Kind::kConst:
      h = HashCombine(h, e.constant().Hash());
      break;
    case Expr::Kind::kValueConst:
      h = HashCombine(h, e.value_const().Hash());
      break;
    case Expr::Kind::kVar:
      h = HashCombine(h, std::hash<Symbol>()(e.var()));
      break;
    case Expr::Kind::kRelation:
      h = HashCombine(h, std::hash<Symbol>()(e.relation()));
      for (const Term& t : e.args()) {
        h = HashCombine(h, IsVar(t) ? std::hash<Symbol>()(TermVar(t))
                                    : TermValue(t).Hash());
      }
      break;
    case Expr::Kind::kAdd:
    case Expr::Kind::kMul:
      for (const auto& c : e.children()) h = HashCombine(h, ExprHash(*c));
      break;
    case Expr::Kind::kSum:
      for (Symbol v : e.group_vars()) {
        h = HashCombine(h, std::hash<Symbol>()(v));
      }
      h = HashCombine(h, ExprHash(*e.child()));
      break;
    case Expr::Kind::kCmp:
      h = HashCombine(h, static_cast<size_t>(e.cmp_op()));
      h = HashCombine(h, ExprHash(*e.lhs()));
      h = HashCombine(h, ExprHash(*e.rhs()));
      break;
    case Expr::Kind::kAssign:
      h = HashCombine(h, std::hash<Symbol>()(e.var()));
      h = HashCombine(h, ExprHash(*e.child()));
      break;
  }
  return h;
}

ExprPtr Substitute(const ExprPtr& e,
                   const std::unordered_map<Symbol, Atom>& subst) {
  switch (e->kind()) {
    case Expr::Kind::kConst:
    case Expr::Kind::kValueConst:
      return e;
    case Expr::Kind::kVar: {
      auto it = subst.find(e->var());
      if (it == subst.end()) return e;
      if (std::holds_alternative<Symbol>(it->second)) {
        return Expr::Var(std::get<Symbol>(it->second));
      }
      const Value& v = std::get<Value>(it->second);
      auto num = v.ToNumeric();
      RINGDB_CHECK(num.ok());  // string constants cannot be scalar terms
      return Expr::Const(*num);
    }
    case Expr::Kind::kRelation: {
      std::vector<Term> args;
      args.reserve(e->args().size());
      for (const Term& t : e->args()) {
        if (IsVar(t)) {
          auto it = subst.find(TermVar(t));
          if (it != subst.end()) {
            if (std::holds_alternative<Symbol>(it->second)) {
              args.emplace_back(std::get<Symbol>(it->second));
            } else {
              args.emplace_back(std::get<Value>(it->second));
            }
            continue;
          }
        }
        args.push_back(t);
      }
      return Expr::Relation(e->relation(), std::move(args));
    }
    case Expr::Kind::kAdd: {
      std::vector<ExprPtr> children;
      for (const auto& c : e->children()) {
        children.push_back(Substitute(c, subst));
      }
      return Expr::Add(std::move(children));
    }
    case Expr::Kind::kMul: {
      std::vector<ExprPtr> children;
      for (const auto& c : e->children()) {
        children.push_back(Substitute(c, subst));
      }
      return Expr::Mul(std::move(children));
    }
    case Expr::Kind::kSum: {
      std::vector<Symbol> gv;
      for (Symbol v : e->group_vars()) {
        auto it = subst.find(v);
        if (it == subst.end()) {
          gv.push_back(v);
        } else {
          RINGDB_CHECK(std::holds_alternative<Symbol>(it->second));
          gv.push_back(std::get<Symbol>(it->second));
        }
      }
      return Expr::Sum(std::move(gv), Substitute(e->child(), subst));
    }
    case Expr::Kind::kCmp:
      return Expr::Cmp(e->cmp_op(), Substitute(e->lhs(), subst),
                       Substitute(e->rhs(), subst));
    case Expr::Kind::kAssign: {
      auto it = subst.find(e->var());
      if (it != subst.end()) {
        // The target is bound elsewhere: x := t degenerates to the
        // equality condition x = t (the paper treats the two alike).
        ExprPtr bound = std::holds_alternative<Symbol>(it->second)
                            ? Expr::Var(std::get<Symbol>(it->second))
                            : Expr::ValueConst(std::get<Value>(it->second));
        return Expr::Cmp(CmpOp::kEq, std::move(bound),
                         Substitute(e->child(), subst));
      }
      return Expr::Assign(e->var(), Substitute(e->child(), subst));
    }
  }
  RINGDB_CHECK(false);
  return nullptr;
}

}  // namespace agca
}  // namespace ringdb
