// AGCA (AGgregation CAlculus) abstract syntax (§4).
//
// Grammar (paper, EBNF):
//   q ::= q * q | q + q | -q | Sum(q) | c | x | R(~x) | q theta 0 | x := q
//
// Representation choices:
//  * -q is represented as (-1) * q: the ring structure makes negation a
//    scalar action, so a dedicated node would only complicate rewriting.
//  * q theta 0 is generalized to the binary sugar l theta r the paper also
//    uses ("we will also write q theta q' for (q - q') theta 0").
//  * Sum carries an explicit list of group variables. The paper's Sum(q)
//    maps each sub-record ~x of the result to the aggregate over its
//    extensions; in every use the sub-records of interest are the bound
//    (group-by) variables, so Sum_[vars](q) denotes exactly that slice:
//    Sum with an empty list is the paper's full aggregate to <>.
//  * Relation arguments are Terms: either variables or constant values,
//    so selections can be folded into atoms (needed by the compiler's
//    parameter substitution).
//
// Expr nodes are immutable and shared (ExprPtr = shared_ptr<const Expr>);
// all rewriting is functional.

#ifndef RINGDB_AGCA_AST_H_
#define RINGDB_AGCA_AST_H_

#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "util/numeric.h"
#include "util/symbol.h"
#include "util/value.h"

namespace ringdb {
namespace agca {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

// A relation-atom argument: a query variable or a constant.
using Term = std::variant<Symbol, Value>;

bool IsVar(const Term& t);
Symbol TermVar(const Term& t);
const Value& TermValue(const Term& t);
std::string TermToString(const Term& t);
bool TermEquals(const Term& a, const Term& b);

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

// The complement theta-bar of a comparison (used by the general condition
// delta rule of §6).
CmpOp Complement(CmpOp op);
std::string CmpOpToString(CmpOp op);

class Expr {
 public:
  enum class Kind {
    kConst,     // c in A
    kVar,       // x (value of a bound variable, as a scalar)
    kRelation,  // R(t1, ..., tk)
    kAdd,       // q1 + ... + qn        (n >= 2)
    kMul,       // q1 * ... * qn        (n >= 2, sideways binding l-to-r)
    kSum,       // Sum_[group_vars](q)
    kCmp,       // l theta r
    kAssign,    // x := t
    kValueConst,  // a raw Value (incl. strings); Cmp/Assign operand only
  };

  // ---- Factories (lightly normalizing; see notes per function). ----

  static ExprPtr Const(Numeric c);
  // A raw value leaf, for comparisons against (possibly string) constants,
  // e.g. the guards produced by deltas of atoms like R(x, 'US'). Not a
  // valid standalone query (its "multiplicity" is undefined for strings).
  static ExprPtr ValueConst(Value v);
  static ExprPtr Var(Symbol x);
  static ExprPtr Relation(Symbol name, std::vector<Term> args);
  // Flattens nested sums, folds constants, drops zero terms.
  static ExprPtr Add(std::vector<ExprPtr> children);
  // Flattens nested products, folds constants left, annihilates on 0.
  static ExprPtr Mul(std::vector<ExprPtr> children);
  // (-1) * e.
  static ExprPtr Neg(ExprPtr e);
  static ExprPtr Sum(std::vector<Symbol> group_vars, ExprPtr child);
  static ExprPtr Cmp(CmpOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Assign(Symbol var, ExprPtr value);

  Kind kind() const { return kind_; }

  // Payload accessors; calling a mismatched accessor is a checked failure.
  Numeric constant() const;
  const Value& value_const() const;          // kValueConst
  Symbol var() const;                        // kVar, kAssign target
  Symbol relation() const;                   // kRelation
  const std::vector<Term>& args() const;     // kRelation
  const std::vector<ExprPtr>& children() const;  // kAdd, kMul
  const ExprPtr& child() const;              // kSum, kAssign value
  const std::vector<Symbol>& group_vars() const;  // kSum
  CmpOp cmp_op() const;                      // kCmp
  const ExprPtr& lhs() const;                // kCmp
  const ExprPtr& rhs() const;                // kCmp

  bool IsConst(Numeric c) const {
    return kind_ == Kind::kConst && constant_ == c;
  }
  bool IsZero() const { return IsConst(kZero); }
  bool IsOne() const { return IsConst(kOne); }

  std::string ToString() const;

 private:
  Expr() = default;

  // All factories allocate through New and then fill payload fields.
  static std::shared_ptr<Expr> New() {
    return std::shared_ptr<Expr>(new Expr());
  }

  Kind kind_ = Kind::kConst;
  Numeric constant_ = kZero;
  Value value_;                    // kValueConst
  Symbol symbol_;                  // var / relation name / assign target
  std::vector<Term> args_;
  std::vector<ExprPtr> children_;  // kAdd/kMul: n-ary; kSum/kAssign: [child];
                                   // kCmp: [lhs, rhs]
  std::vector<Symbol> group_vars_;
  CmpOp cmp_op_ = CmpOp::kEq;
};

// ---- Variable analyses (§4 range restriction, §5). ----

// Variables the expression *produces* (schema of its result tuples):
// relation atoms produce their variable arguments, assignments produce
// their target, Sum produces its group variables.
std::set<Symbol> OutputVars(const Expr& e);

// Variables that must be bound by the environment before evaluation,
// accounting for sideways binding passing inside products (a variable
// produced by an earlier factor is available to later factors).
std::set<Symbol> RequiredVars(const Expr& e);

// All variables appearing anywhere in the expression.
std::set<Symbol> AllVars(const Expr& e);

// Names of all relations referenced.
std::set<Symbol> RelationsIn(const Expr& e);

// True iff no relation atom occurs in e; such e has delta 0 (its value
// depends on bindings only, not on the database). This is the paper's
// "simple condition" test when applied to comparison operands.
bool DatabaseFree(const Expr& e);

// Structural equality / hashing (exact, not modulo renaming; for
// renaming-insensitive comparison see canonical.h).
bool ExprEquals(const Expr& a, const Expr& b);
size_t ExprHash(const Expr& e);

// Substitution target: a variable or a constant value.
using Atom = std::variant<Symbol, Value>;

// Capture-avoiding-enough substitution for the compiler's use: replaces
// free occurrences of the mapped variables by the given atoms, in Var
// nodes, relation arguments, assignment targets are NOT remapped (CHECK),
// and Sum group variables are remapped only var-to-var.
ExprPtr Substitute(const ExprPtr& e,
                   const std::unordered_map<Symbol, Atom>& subst);

}  // namespace agca
}  // namespace ringdb

#endif  // RINGDB_AGCA_AST_H_
