// The AGCA evaluation function [[.]] (§4).
//
// Evaluate(q, db, env) realizes [[q]](A)(~b): `env` is the binding record
// ~b (variables as column names), and the result is the gmr [[q]](A)(~b),
// i.e. the slice of the avalanche-ring element at binding ~b. Sideways
// binding passing inside products is implemented directly: factor i+1 is
// evaluated once per result tuple of factors 1..i under the extended
// binding, exactly the sum defining * in =>A[T] (§3.2).
//
// Errors (Status) arise from: unbound variables used as scalars (the
// paper's "illegal" queries that fail range restriction), strings used in
// arithmetic or ordered comparisons, and non-scalar comparison operands.

#ifndef RINGDB_AGCA_EVAL_H_
#define RINGDB_AGCA_EVAL_H_

#include "agca/ast.h"
#include "ring/database.h"
#include "ring/gmr.h"
#include "ring/tuple.h"
#include "util/status.h"

namespace ringdb {
namespace agca {

// [[q]](db)(env).
StatusOr<ring::Gmr> Evaluate(const ExprPtr& q, const ring::Database& db,
                             const ring::Tuple& env);

// Evaluates a query expected to produce a scalar (support subset of {<>})
// and returns the multiplicity at <>.
StatusOr<Numeric> EvaluateScalar(const ExprPtr& q, const ring::Database& db,
                                 const ring::Tuple& env);

}  // namespace agca
}  // namespace ringdb

#endif  // RINGDB_AGCA_EVAL_H_
