#include "agca/canonical.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <sstream>

#include "util/check.h"

namespace ringdb {
namespace agca {

namespace {

class Renderer {
 public:
  std::string NameOf(Symbol v) {
    auto [it, inserted] = ids_.emplace(v, ids_.size());
    (void)inserted;
    return "$" + std::to_string(it->second);
  }

  bool Seen(Symbol v) const { return ids_.contains(v); }

  std::string RenderValue(const Value& v) {
    // Kind-tagged so int 3, double 3.0 and string "3" stay distinct.
    switch (v.kind()) {
      case Value::Kind::kInt: return "i" + v.ToString();
      case Value::Kind::kDouble: return "d" + v.ToString();
      case Value::Kind::kString: return "s'" + v.ToString() + "'";
    }
    return "?";
  }

  std::string Render(const Expr& e) {
    std::ostringstream out;
    switch (e.kind()) {
      case Expr::Kind::kConst:
        out << (e.constant().is_integer() ? "i" : "d")
            << e.constant().ToString();
        break;
      case Expr::Kind::kValueConst:
        out << RenderValue(e.value_const());
        break;
      case Expr::Kind::kVar:
        out << NameOf(e.var());
        break;
      case Expr::Kind::kRelation: {
        out << e.relation().str() << '(';
        for (size_t i = 0; i < e.args().size(); ++i) {
          if (i) out << ',';
          const Term& t = e.args()[i];
          out << (IsVar(t) ? NameOf(TermVar(t)) : RenderValue(TermValue(t)));
        }
        out << ')';
        break;
      }
      case Expr::Kind::kAdd:
      case Expr::Kind::kMul: {
        out << (e.kind() == Expr::Kind::kAdd ? "(+ " : "(* ");
        for (const auto& c : e.children()) out << Render(*c) << ' ';
        out << ')';
        break;
      }
      case Expr::Kind::kSum: {
        out << "(Sum [";
        for (Symbol v : e.group_vars()) out << NameOf(v) << ' ';
        out << "] " << Render(*e.child()) << ')';
        break;
      }
      case Expr::Kind::kCmp:
        out << '(' << CmpOpToString(e.cmp_op()) << ' ' << Render(*e.lhs())
            << ' ' << Render(*e.rhs()) << ')';
        break;
      case Expr::Kind::kAssign:
        out << "(:= " << NameOf(e.var()) << ' ' << Render(*e.child())
            << ')';
        break;
    }
    return out.str();
  }

  int IdOf(Symbol v) const {
    auto it = ids_.find(v);
    RINGDB_CHECK(it != ids_.end());
    return it->second;
  }

 private:
  std::map<Symbol, int> ids_;
};

}  // namespace

CanonicalView CanonicalizeView(const std::vector<Symbol>& key_vars,
                               const ExprPtr& body) {
  Renderer r;
  // Ids are assigned by first appearance in the body so that two views
  // differing only in declared key order canonicalize identically.
  std::string rendered_body = r.Render(*body);
  for (Symbol k : key_vars) r.NameOf(k);  // keys absent from the body

  std::vector<size_t> by_canonical(key_vars.size());
  std::iota(by_canonical.begin(), by_canonical.end(), size_t{0});
  std::sort(by_canonical.begin(), by_canonical.end(),
            [&](size_t a, size_t b) {
              return r.IdOf(key_vars[a]) < r.IdOf(key_vars[b]);
            });

  CanonicalView out;
  out.key_order.resize(key_vars.size());
  std::ostringstream fp;
  fp << "view[";
  for (size_t pos = 0; pos < by_canonical.size(); ++pos) {
    size_t original_index = by_canonical[pos];
    out.key_order[original_index] = pos;
    fp << '$' << r.IdOf(key_vars[original_index]) << ' ';
  }
  fp << "]: " << rendered_body;
  out.fingerprint = fp.str();
  return out;
}

}  // namespace agca
}  // namespace ringdb
