// Polynomial degree of AGCA expressions (Definition 6.3).
//
// deg(a * b) = deg a + deg b, deg(a + b) = max, deg(R(~x)) = 1, constants,
// variables, assignments have degree 0; Sum and comparisons are transparent.
// Theorem 6.4: for expressions with simple conditions only,
// deg(Delta q) = max(0, deg q - 1) — verified by property tests.

#ifndef RINGDB_AGCA_DEGREE_H_
#define RINGDB_AGCA_DEGREE_H_

#include "agca/ast.h"

namespace ringdb {
namespace agca {

int Degree(const Expr& e);

// True iff every comparison (and assignment source) in e is "simple": its
// operands contain no relational atoms, so its delta is 0 for every update
// event. This is the precondition of Theorem 6.4.
bool HasSimpleConditionsOnly(const Expr& e);

}  // namespace agca
}  // namespace ringdb

#endif  // RINGDB_AGCA_DEGREE_H_
