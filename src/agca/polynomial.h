// Polynomial normal form (§5): every AGCA expression expands, by
// distributivity of the ring, into a sum of monomials c * f1 * ... * fn
// where each factor is an atom (relation, comparison, assignment, variable,
// or aggregate). Signs and constants are folded into the coefficient; the
// scalar action commutes with everything, so this is sound.
//
// Factor order within a monomial is preserved from the source expression:
// although * is commutative in value, left-to-right order witnesses range
// restriction (a factor's required variables are produced by earlier
// factors), which the compiler relies on.

#ifndef RINGDB_AGCA_POLYNOMIAL_H_
#define RINGDB_AGCA_POLYNOMIAL_H_

#include <string>
#include <vector>

#include "agca/ast.h"

namespace ringdb {
namespace agca {

struct Monomial {
  Numeric coefficient = kOne;
  std::vector<ExprPtr> factors;  // atoms only, in source order

  // Reassembles coefficient * f1 * ... * fn.
  ExprPtr ToExpr() const;
  std::string ToString() const;
};

// Distributes products over sums, flattens, folds constants/signs into
// coefficients, and combines structurally identical monomials. Nested
// aggregates (Sum) are kept as atomic factors with their bodies expanded
// recursively. Monomials with coefficient 0 are dropped, so the zero
// polynomial is the empty vector.
std::vector<Monomial> Expand(const ExprPtr& e);

// Sum of the monomials (the normal-form expression).
ExprPtr PolynomialToExpr(const std::vector<Monomial>& monomials);

}  // namespace agca
}  // namespace ringdb

#endif  // RINGDB_AGCA_POLYNOMIAL_H_
