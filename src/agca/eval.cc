#include "agca/eval.h"

#include <optional>
#include <vector>

#include "util/check.h"

namespace ringdb {
namespace agca {

using ring::Database;
using ring::Gmr;
using ring::Tuple;

namespace {

// Evaluates a scalar-valued subexpression to a raw Value: variables yield
// the bound value as-is (strings allowed, for equality tests), constants
// their payload, and anything else is evaluated as a query whose result
// must be scalar.
StatusOr<Value> EvalValue(const ExprPtr& q, const Database& db,
                          const Tuple& env);

StatusOr<Gmr> EvalRelation(const Expr& e, const Database& db,
                           const Tuple& env) {
  if (!db.catalog().Has(e.relation())) {
    return Status::NotFound("unknown relation " + e.relation().str());
  }
  const std::vector<Symbol>& cols = db.catalog().Columns(e.relation());
  if (cols.size() != e.args().size()) {
    return Status::InvalidArgument(
        "arity mismatch for " + e.relation().str() + ": got " +
        std::to_string(e.args().size()) + ", schema has " +
        std::to_string(cols.size()));
  }
  Gmr out;
  for (const auto& [t, m] : db.Relation(e.relation()).support()) {
    // Rename columns positionally to the atom's terms; reject tuples that
    // conflict with constants, repeated variables, or the environment.
    std::vector<Tuple::Field> fields;
    bool ok = true;
    for (size_t i = 0; i < cols.size() && ok; ++i) {
      const Value* v = t.Get(cols[i]);
      RINGDB_CHECK(v != nullptr);  // base tuples match their schema
      const Term& term = e.args()[i];
      if (IsVar(term)) {
        Symbol var = TermVar(term);
        const Value* bound = env.Get(var);
        if (bound != nullptr && *bound != *v) {
          ok = false;
          break;
        }
        for (const auto& f : fields) {  // repeated variable, e.g. R(x, x)
          if (f.first == var && f.second != *v) {
            ok = false;
            break;
          }
        }
        if (ok) fields.emplace_back(var, *v);
      } else if (TermValue(term) != *v) {
        ok = false;
      }
    }
    if (!ok) continue;
    out.Add(Tuple::FromFields(std::move(fields)), m);
  }
  return out;
}

StatusOr<Value> EvalValue(const ExprPtr& q, const Database& db,
                          const Tuple& env) {
  switch (q->kind()) {
    case Expr::Kind::kConst:
      return Value(q->constant());
    case Expr::Kind::kValueConst:
      return q->value_const();
    case Expr::Kind::kVar: {
      const Value* v = env.Get(q->var());
      if (v == nullptr) {
        return Status::FailedPrecondition("unbound variable " +
                                          q->var().str());
      }
      return *v;
    }
    default: {
      RINGDB_ASSIGN_OR_RETURN(Numeric n, EvaluateScalar(q, db, env));
      return Value(n);
    }
  }
}

}  // namespace

StatusOr<Gmr> Evaluate(const ExprPtr& q, const Database& db,
                       const Tuple& env) {
  switch (q->kind()) {
    case Expr::Kind::kConst:
      return Gmr::Singleton(Tuple(), q->constant());

    case Expr::Kind::kValueConst: {
      RINGDB_ASSIGN_OR_RETURN(Numeric n, q->value_const().ToNumeric());
      return Gmr::Singleton(Tuple(), n);
    }

    case Expr::Kind::kVar: {
      const Value* v = env.Get(q->var());
      if (v == nullptr) {
        return Status::FailedPrecondition(
            "unbound variable " + q->var().str() +
            " (query fails range restriction)");
      }
      RINGDB_ASSIGN_OR_RETURN(Numeric n, v->ToNumeric());
      return Gmr::Singleton(Tuple(), n);
    }

    case Expr::Kind::kRelation:
      return EvalRelation(*q, db, env);

    case Expr::Kind::kAdd: {
      Gmr out;
      for (const auto& c : q->children()) {
        RINGDB_ASSIGN_OR_RETURN(Gmr g, Evaluate(c, db, env));
        out += g;
      }
      return out;
    }

    case Expr::Kind::kMul: {
      // Left-to-right sideways binding passing: evaluate factor i+1 under
      // env extended with each accumulated result tuple.
      Gmr acc = Gmr::One();
      for (const auto& c : q->children()) {
        Gmr next;
        for (const auto& [t, m] : acc.support()) {
          std::optional<Tuple> extended = Tuple::Join(env, t);
          RINGDB_CHECK(extended.has_value());  // invariant: consistent
          RINGDB_ASSIGN_OR_RETURN(Gmr g, Evaluate(c, db, *extended));
          for (const auto& [t2, m2] : g.support()) {
            std::optional<Tuple> joined = Tuple::Join(t, t2);
            if (!joined.has_value()) continue;
            next.Add(*joined, m * m2);
          }
        }
        acc = std::move(next);
        if (acc.IsZero()) break;
      }
      return acc;
    }

    case Expr::Kind::kSum: {
      RINGDB_ASSIGN_OR_RETURN(Gmr g, Evaluate(q->child(), db, env));
      Gmr out;
      // Group-variable values come from the result tuple when the body
      // produces them, and from the binding ~b otherwise ([[Sum q]](~b)
      // maps the sub-record ~x to the aggregate over its extensions; a
      // group variable bound in ~b constrains the body without appearing
      // in its output schema).
      Tuple env_groups = env.Restrict(q->group_vars());
      for (const auto& [t, m] : g.support()) {
        std::optional<Tuple> key =
            Tuple::Join(t.Restrict(q->group_vars()), env_groups);
        RINGDB_CHECK(key.has_value());  // results are env-consistent
        out.Add(*key, m);
      }
      return out;
    }

    case Expr::Kind::kCmp: {
      // Example 4.2 semantics: an equality one side of which is an
      // unbound variable extends the binding (both variables are "safe"
      // in phi ∧ x = y when one of them is); any other comparison over an
      // unbound variable selects nothing.
      const bool l_unbound = q->lhs()->kind() == Expr::Kind::kVar &&
                             !env.Has(q->lhs()->var());
      const bool r_unbound = q->rhs()->kind() == Expr::Kind::kVar &&
                             !env.Has(q->rhs()->var());
      if (q->cmp_op() == CmpOp::kEq) {
        if (l_unbound && r_unbound) return Gmr::Zero();
        if (l_unbound) {
          RINGDB_ASSIGN_OR_RETURN(Value v, EvalValue(q->rhs(), db, env));
          return Gmr::Singleton(Tuple({{q->lhs()->var(), v}}), kOne);
        }
        if (r_unbound) {
          RINGDB_ASSIGN_OR_RETURN(Value v, EvalValue(q->lhs(), db, env));
          return Gmr::Singleton(Tuple({{q->rhs()->var(), v}}), kOne);
        }
      } else if (l_unbound || r_unbound) {
        return Gmr::Zero();
      }
      RINGDB_ASSIGN_OR_RETURN(Value l, EvalValue(q->lhs(), db, env));
      RINGDB_ASSIGN_OR_RETURN(Value r, EvalValue(q->rhs(), db, env));
      bool holds = false;
      switch (q->cmp_op()) {
        case CmpOp::kEq:
          holds = (l == r);
          break;
        case CmpOp::kNe:
          holds = (l != r);
          break;
        default: {
          RINGDB_ASSIGN_OR_RETURN(Numeric ln, l.ToNumeric());
          RINGDB_ASSIGN_OR_RETURN(Numeric rn, r.ToNumeric());
          switch (q->cmp_op()) {
            case CmpOp::kLt: holds = ln < rn; break;
            case CmpOp::kLe: holds = ln <= rn; break;
            case CmpOp::kGt: holds = ln > rn; break;
            case CmpOp::kGe: holds = ln >= rn; break;
            default: RINGDB_CHECK(false);
          }
        }
      }
      return holds ? Gmr::One() : Gmr::Zero();
    }

    case Expr::Kind::kAssign: {
      RINGDB_ASSIGN_OR_RETURN(Value v, EvalValue(q->child(), db, env));
      const Value* bound = env.Get(q->var());
      if (bound != nullptr) {
        // x already bound: behaves as the condition x = t.
        return (*bound == v) ? Gmr::One() : Gmr::Zero();
      }
      return Gmr::Singleton(Tuple({{q->var(), v}}), kOne);
    }
  }
  RINGDB_CHECK(false);
  return Status::Internal("unreachable");
}

StatusOr<Numeric> EvaluateScalar(const ExprPtr& q, const Database& db,
                                 const Tuple& env) {
  RINGDB_ASSIGN_OR_RETURN(Gmr g, Evaluate(q, db, env));
  Numeric total = kZero;
  for (const auto& [t, m] : g.support()) {
    if (!t.empty()) {
      return Status::InvalidArgument(
          "expected scalar result, got tuple " + t.ToString() + " in " +
          q->ToString());
    }
    total += m;
  }
  return total;
}

}  // namespace agca
}  // namespace ringdb
