#include "agca/polynomial.h"

#include <sstream>

#include "util/check.h"

namespace ringdb {
namespace agca {

ExprPtr Monomial::ToExpr() const {
  std::vector<ExprPtr> fs;
  fs.reserve(factors.size() + 1);
  if (!coefficient.IsOne()) fs.push_back(Expr::Const(coefficient));
  fs.insert(fs.end(), factors.begin(), factors.end());
  return Expr::Mul(std::move(fs));
}

std::string Monomial::ToString() const { return ToExpr()->ToString(); }

namespace {

// True if the two monomials have identical factor sequences.
bool SameFactors(const Monomial& a, const Monomial& b) {
  if (a.factors.size() != b.factors.size()) return false;
  for (size_t i = 0; i < a.factors.size(); ++i) {
    if (!ExprEquals(*a.factors[i], *b.factors[i])) return false;
  }
  return true;
}

void Combine(std::vector<Monomial>* out, Monomial m) {
  if (m.coefficient.IsZero()) return;
  for (Monomial& existing : *out) {
    if (SameFactors(existing, m)) {
      existing.coefficient += m.coefficient;
      if (existing.coefficient.IsZero()) {
        existing = std::move(out->back());
        out->pop_back();
      }
      return;
    }
  }
  out->push_back(std::move(m));
}

std::vector<Monomial> ExpandImpl(const ExprPtr& e) {
  switch (e->kind()) {
    case Expr::Kind::kConst: {
      if (e->constant().IsZero()) return {};
      Monomial m;
      m.coefficient = e->constant();
      return {m};
    }
    case Expr::Kind::kValueConst:
    case Expr::Kind::kVar:
    case Expr::Kind::kRelation:
    case Expr::Kind::kCmp:
    case Expr::Kind::kAssign: {
      Monomial m;
      m.factors = {e};
      return {m};
    }
    case Expr::Kind::kSum: {
      // Sum is linear: Sum(sum_i c_i * m_i) = sum_i c_i * Sum(m_i).
      std::vector<Monomial> out;
      for (Monomial& inner : ExpandImpl(e->child())) {
        Monomial m;
        m.coefficient = inner.coefficient;
        inner.coefficient = kOne;
        m.factors = {Expr::Sum(e->group_vars(), inner.ToExpr())};
        Combine(&out, std::move(m));
      }
      return out;
    }
    case Expr::Kind::kAdd: {
      std::vector<Monomial> out;
      for (const auto& c : e->children()) {
        for (Monomial& m : ExpandImpl(c)) Combine(&out, std::move(m));
      }
      return out;
    }
    case Expr::Kind::kMul: {
      std::vector<Monomial> acc;
      acc.push_back(Monomial{});  // the unit monomial
      for (const auto& c : e->children()) {
        std::vector<Monomial> rhs = ExpandImpl(c);
        std::vector<Monomial> next;
        for (const Monomial& a : acc) {
          for (const Monomial& b : rhs) {
            Monomial m;
            m.coefficient = a.coefficient * b.coefficient;
            m.factors = a.factors;
            m.factors.insert(m.factors.end(), b.factors.begin(),
                             b.factors.end());
            Combine(&next, std::move(m));
          }
        }
        acc = std::move(next);
      }
      return acc;
    }
  }
  RINGDB_CHECK(false);
  return {};
}

}  // namespace

std::vector<Monomial> Expand(const ExprPtr& e) { return ExpandImpl(e); }

ExprPtr PolynomialToExpr(const std::vector<Monomial>& monomials) {
  std::vector<ExprPtr> terms;
  terms.reserve(monomials.size());
  for (const Monomial& m : monomials) terms.push_back(m.ToExpr());
  return Expr::Add(std::move(terms));
}

}  // namespace agca
}  // namespace ringdb
