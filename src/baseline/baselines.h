// Comparison baselines for the complexity-separation experiments (E8):
//
//  * NaiveReevaluator — re-evaluates Sum_[group](body) from the base
//    relations after every update: O(n^deg) per update (§6, data
//    complexity of nonincremental evaluation).
//  * ClassicalIvm — the pre-paper state of the art: materializes only the
//    query result and, per update, *evaluates the first delta query*
//    against the base database (which it must therefore keep), then folds
//    it into the view. Cheaper than naive re-evaluation, but the delta is
//    still a query of degree deg-1 over the database.
//
// Both share the Engine's result interface so tests can cross-check all
// three implementations on random update streams.

#ifndef RINGDB_BASELINE_BASELINES_H_
#define RINGDB_BASELINE_BASELINES_H_

#include <unordered_map>
#include <vector>

#include "agca/ast.h"
#include "agca/eval.h"
#include "delta/delta.h"
#include "ring/database.h"
#include "ring/gmr.h"
#include "util/status.h"

namespace ringdb {
namespace baseline {

class NaiveReevaluator {
 public:
  NaiveReevaluator(ring::Catalog catalog, std::vector<Symbol> group_vars,
                   agca::ExprPtr body);

  Status Apply(const ring::Update& update);

  // Bulk-load path for benchmarks: applies the update without
  // re-evaluating; call Refresh() once afterwards.
  void Load(const ring::Update& update) { db_.Apply(update); }
  Status Refresh() { return Reevaluate(); }

  Numeric ResultScalar() const;
  Numeric ResultAt(const std::vector<Value>& group_values) const;
  const ring::Gmr& ResultGmr() const { return result_; }
  const ring::Database& database() const { return db_; }

 private:
  Status Reevaluate();

  ring::Database db_;
  std::vector<Symbol> group_vars_;
  agca::ExprPtr query_;  // Sum_[group_vars](body)
  ring::Gmr result_;
};

class ClassicalIvm {
 public:
  ClassicalIvm(ring::Catalog catalog, std::vector<Symbol> group_vars,
               agca::ExprPtr body);

  Status Apply(const ring::Update& update);

  // Bulk-load path for latency benchmarks: applies the update to the base
  // database only, leaving the materialized view stale. Use when only the
  // per-update delta-evaluation cost is being measured.
  void LoadWithoutViewMaintenance(const ring::Update& update) {
    db_.Apply(update);
  }

  Numeric ResultScalar() const;
  Numeric ResultAt(const std::vector<Value>& group_values) const;
  const ring::Gmr& ResultGmr() const { return view_; }

 private:
  ring::Database db_;
  std::vector<Symbol> group_vars_;
  // Delta queries per (relation id, sign): evaluated against the
  // pre-update database with the event parameters bound.
  struct DeltaQuery {
    delta::Event event;
    agca::ExprPtr expr;  // Sum_[group_vars](Delta(body))
  };
  std::unordered_map<uint64_t, DeltaQuery> deltas_;
  ring::Gmr view_;
};

}  // namespace baseline
}  // namespace ringdb

#endif  // RINGDB_BASELINE_BASELINES_H_
