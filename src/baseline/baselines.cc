#include "baseline/baselines.h"

#include "util/check.h"

namespace ringdb {
namespace baseline {

namespace {

uint64_t DeltaKey(Symbol relation, ring::Update::Sign sign) {
  return (static_cast<uint64_t>(relation.id()) << 1) |
         (sign == ring::Update::Sign::kInsert ? 0u : 1u);
}

ring::Tuple GroupTuple(const std::vector<Symbol>& group_vars,
                       const std::vector<Value>& group_values) {
  RINGDB_CHECK_EQ(group_vars.size(), group_values.size());
  std::vector<ring::Tuple::Field> fields;
  fields.reserve(group_vars.size());
  for (size_t i = 0; i < group_vars.size(); ++i) {
    fields.emplace_back(group_vars[i], group_values[i]);
  }
  return ring::Tuple::FromFields(std::move(fields));
}

}  // namespace

NaiveReevaluator::NaiveReevaluator(ring::Catalog catalog,
                                   std::vector<Symbol> group_vars,
                                   agca::ExprPtr body)
    : db_(std::move(catalog)),
      group_vars_(std::move(group_vars)),
      query_(agca::Expr::Sum(group_vars_, std::move(body))) {}

Status NaiveReevaluator::Apply(const ring::Update& update) {
  db_.Apply(update);
  return Reevaluate();
}

Status NaiveReevaluator::Reevaluate() {
  RINGDB_ASSIGN_OR_RETURN(ring::Gmr g,
                          agca::Evaluate(query_, db_, ring::Tuple()));
  result_ = std::move(g);
  return Status::Ok();
}

Numeric NaiveReevaluator::ResultScalar() const {
  RINGDB_CHECK(group_vars_.empty());
  return result_.At(ring::Tuple());
}

Numeric NaiveReevaluator::ResultAt(
    const std::vector<Value>& group_values) const {
  return result_.At(GroupTuple(group_vars_, group_values));
}

ClassicalIvm::ClassicalIvm(ring::Catalog catalog,
                           std::vector<Symbol> group_vars,
                           agca::ExprPtr body)
    : db_(std::move(catalog)), group_vars_(std::move(group_vars)) {
  for (Symbol rel : agca::RelationsIn(*body)) {
    for (auto sign :
         {ring::Update::Sign::kInsert, ring::Update::Sign::kDelete}) {
      DeltaQuery dq;
      dq.event = delta::MakeEvent(db_.catalog(), rel, sign);
      dq.expr =
          agca::Expr::Sum(group_vars_, delta::Delta(body, dq.event));
      deltas_.emplace(DeltaKey(rel, sign), std::move(dq));
    }
  }
}

Status ClassicalIvm::Apply(const ring::Update& update) {
  auto it = deltas_.find(DeltaKey(update.relation, update.sign));
  if (it != deltas_.end()) {
    const DeltaQuery& dq = it->second;
    ring::Tuple env = delta::BindParams(dq.event, update);
    // Delta evaluated on the PRE-update database: Q(D+u) = Q(D) + dQ(D,u).
    RINGDB_ASSIGN_OR_RETURN(ring::Gmr d, agca::Evaluate(dq.expr, db_, env));
    // The delta result still carries the bound parameters of the event in
    // its tuples only if they leak through Sum group vars; restrict to the
    // group variables to be safe.
    ring::Gmr projected;
    for (const auto& [t, m] : d.support()) {
      projected.Add(t.Restrict(group_vars_), m);
    }
    view_ += projected;
  }
  db_.Apply(update);
  return Status::Ok();
}

Numeric ClassicalIvm::ResultScalar() const {
  RINGDB_CHECK(group_vars_.empty());
  return view_.At(ring::Tuple());
}

Numeric ClassicalIvm::ResultAt(
    const std::vector<Value>& group_values) const {
  return view_.At(GroupTuple(group_vars_, group_values));
}

}  // namespace baseline
}  // namespace ringdb
