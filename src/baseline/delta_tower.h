// The *unfactorized* recursive delta scheme of §1.1, applied verbatim:
// memoize Delta^j Q(x, u_1, ..., u_j) for all j-tuples of possible
// updates over the active domain, and refresh every memoized value with
// one addition per update (Equation (1)).
//
// This is the scheme the paper motivates and then *refines*: §1.2 notes
// that "a j-th delta is a function of a j-tuple of update tuples, which
// means that its domain ... may become large ... it defeats the
// practical purpose of incremental view maintenance". DeltaTowerIvm
// exists to demonstrate that ablation (bench_tower): per update it
// performs Theta(sum_j |U|^j) additions and stores Theta(|U|^(k-1))
// values, where U = {±R(t) : t in adom} grows with the data — versus the
// factorized compiler's O(1) work and O(adom) space on the same queries.
//
// Domain growth follows footnote 2: when an update introduces a tuple
// never seen before, the memo entries involving it are initialized by
// evaluating the delta-query definitions against the current database.
//
// Scope: scalar AGCA queries (no group-by) over relations of any arity;
// practical only for small degrees/domains — which is the point.

#ifndef RINGDB_BASELINE_DELTA_TOWER_H_
#define RINGDB_BASELINE_DELTA_TOWER_H_

#include <map>
#include <set>
#include <vector>

#include "agca/ast.h"
#include "delta/delta.h"
#include "ring/database.h"
#include "util/status.h"

namespace ringdb {
namespace baseline {

class DeltaTowerIvm {
 public:
  // `body` must be a scalar query (Sum over all variables is implied).
  DeltaTowerIvm(ring::Catalog catalog, agca::ExprPtr body);

  Status Apply(const ring::Update& update);

  Numeric ResultScalar() const;

  // Total number of memoized delta values (the space cost of the tower).
  size_t MemoizedValues() const;

  // Additions performed by update rules so far (excludes initialization
  // evaluations, which are counted separately).
  uint64_t Additions() const { return additions_; }
  uint64_t InitEvaluations() const { return init_evaluations_; }

  int depth() const { return static_cast<int>(deltas_.size()); }

 private:
  // An update encoded as a flat key: [relation id, sign, values...].
  using UKey = std::vector<Value>;
  // theta = concatenation of j update keys (fixed per-update width).
  using Theta = std::vector<Value>;

  UKey Encode(const ring::Update& u) const;
  ring::Tuple BindTheta(const Theta& theta, size_t levels) const;
  Status InitializeEntriesInvolving(const UKey& fresh);
  Status EnumerateAndInit(size_t level, size_t index, bool has_fresh,
                          const UKey& fresh, Theta* theta);

  ring::Database db_;
  agca::ExprPtr query_;                    // Sum(body): level-0 definition
  std::vector<delta::Event> events_;       // one symbolic event per level
  std::vector<agca::ExprPtr> deltas_;      // deltas_[j] = Delta^(j+1) query
  // tables_[j] memoizes Delta^j; tables_[0] has the single empty key.
  std::vector<std::map<Theta, Numeric>> tables_;
  std::vector<UKey> universe_;             // U: all updates seen (both signs)
  std::set<std::vector<Value>> seen_rows_;
  size_t ukey_width_ = 0;
  uint64_t additions_ = 0;
  uint64_t init_evaluations_ = 0;
};

}  // namespace baseline
}  // namespace ringdb

#endif  // RINGDB_BASELINE_DELTA_TOWER_H_
