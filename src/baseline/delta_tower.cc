#include "baseline/delta_tower.h"

#include "agca/degree.h"
#include "agca/eval.h"
#include "util/check.h"

namespace ringdb {
namespace baseline {

using agca::Expr;
using agca::ExprPtr;

DeltaTowerIvm::DeltaTowerIvm(ring::Catalog catalog, agca::ExprPtr body)
    : db_(std::move(catalog)), query_(Expr::Sum({}, std::move(body))) {
  std::set<Symbol> rels = agca::RelationsIn(*query_);
  RINGDB_CHECK_EQ(rels.size(), 1u);  // single-relation queries only
  Symbol rel = *rels.begin();
  ukey_width_ = 1 + db_.catalog().Arity(rel);  // sign + columns

  // Delta tower: deltas_[j] = Delta^{j+1} Q with level-tagged symbolic-
  // sign events; deltas_.back() has degree 0 and its own delta is zero,
  // so the tower stops there (k = deg Q levels of deltas).
  int degree = agca::Degree(*query_);
  ExprPtr current = query_;
  for (int level = 1; level <= degree; ++level) {
    delta::Event event = delta::MakeSymbolicSignEvent(
        db_.catalog(), rel, "#" + std::to_string(level));
    events_.push_back(event);
    current = delta::Delta(current, event);
    deltas_.push_back(current);
  }
  RINGDB_CHECK(deltas_.empty() ||
               agca::Degree(*deltas_.back()) == 0);

  // Tables for levels 0..degree; level 0 starts memoized on the empty db.
  tables_.resize(static_cast<size_t>(degree) + 1);
  tables_[0].emplace(Theta{}, kZero);
}

DeltaTowerIvm::UKey DeltaTowerIvm::Encode(const ring::Update& u) const {
  UKey key;
  key.reserve(ukey_width_);
  key.emplace_back(u.SignedUnit());
  for (const Value& v : u.values) key.push_back(v);
  return key;
}

ring::Tuple DeltaTowerIvm::BindTheta(const Theta& theta,
                                     size_t levels) const {
  std::vector<ring::Tuple::Field> fields;
  for (size_t level = 0; level < levels; ++level) {
    const delta::Event& ev = events_[level];
    const Value* slot = &theta[level * ukey_width_];
    fields.emplace_back(ev.sign_param, slot[0]);
    for (size_t i = 0; i < ev.params.size(); ++i) {
      fields.emplace_back(ev.params[i], slot[1 + i]);
    }
  }
  return ring::Tuple::FromFields(std::move(fields));
}

Status DeltaTowerIvm::EnumerateAndInit(size_t level, size_t index,
                                       bool has_fresh, const UKey& fresh,
                                       Theta* theta) {
  if (index == level) {
    if (!has_fresh) return Status::Ok();  // already memoized
    RINGDB_ASSIGN_OR_RETURN(
        Numeric v, agca::EvaluateScalar(deltas_[level - 1], db_,
                                        BindTheta(*theta, level)));
    tables_[level][*theta] = v;
    ++init_evaluations_;
    return Status::Ok();
  }
  for (const UKey& u : universe_) {
    size_t before = theta->size();
    theta->insert(theta->end(), u.begin(), u.end());
    RINGDB_RETURN_IF_ERROR(EnumerateAndInit(
        level, index + 1, has_fresh || (u == fresh), fresh, theta));
    theta->resize(before);
  }
  return Status::Ok();
}

Status DeltaTowerIvm::InitializeEntriesInvolving(const UKey& fresh) {
  for (size_t level = 1; level < tables_.size(); ++level) {
    Theta theta;
    RINGDB_RETURN_IF_ERROR(
        EnumerateAndInit(level, 0, /*has_fresh=*/false, fresh, &theta));
  }
  return Status::Ok();
}

Status DeltaTowerIvm::Apply(const ring::Update& update) {
  std::set<Symbol> rels = agca::RelationsIn(*query_);
  if (update.relation != *rels.begin()) {
    db_.Apply(update);
    return Status::Ok();
  }
  // Footnote 2: grow U when a never-seen tuple arrives, initializing all
  // memo entries that involve the new updates from the current database.
  if (!seen_rows_.contains(update.values)) {
    for (auto sign :
         {ring::Update::Sign::kInsert, ring::Update::Sign::kDelete}) {
      ring::Update u = update;
      u.sign = sign;
      UKey fresh = Encode(u);
      universe_.push_back(fresh);
      RINGDB_RETURN_IF_ERROR(InitializeEntriesInvolving(fresh));
    }
    seen_rows_.insert(update.values);
  }

  // Equation (1), ascending level order so updates are in place: every
  // memoized value of level j < k gets exactly one addition.
  UKey ukey = Encode(update);
  for (size_t level = 0; level + 1 < tables_.size(); ++level) {
    for (auto& [theta, value] : tables_[level]) {
      Theta next = theta;
      next.insert(next.end(), ukey.begin(), ukey.end());
      auto it = tables_[level + 1].find(next);
      RINGDB_CHECK(it != tables_[level + 1].end());
      value += it->second;
      ++additions_;
    }
  }
  db_.Apply(update);
  return Status::Ok();
}

Numeric DeltaTowerIvm::ResultScalar() const {
  return tables_[0].at(Theta{});
}

size_t DeltaTowerIvm::MemoizedValues() const {
  size_t n = 0;
  for (const auto& table : tables_) n += table.size();
  return n;
}

}  // namespace baseline
}  // namespace ringdb
