#include "obs/trace.h"

#include <algorithm>
#include <csignal>

namespace ringdb {
namespace obs {

const char* TraceStageName(TraceStage stage) {
  switch (stage) {
    case kTraceQueueWait: return "queue_wait";
    case kTraceCoalesce: return "coalesce";
    case kTraceWalAppend: return "wal_append";
    case kTraceWalFsync: return "wal_fsync";
    case kTraceApply: return "apply";
    case kTraceFanout: return "fanout";
    case kTraceCheckpoint: return "checkpoint";
    default: return "?";
  }
}

const char* TraceSpanKindName(TraceSpanKind kind) {
  switch (kind) {
    case kSpanQueryApply: return "query_apply";
    case kSpanQueryPublish: return "query_publish";
    case kSpanShardApply: return "shard_apply";
    case kSpanShardSteal: return "shard_steal";
    case kSpanShardPublish: return "shard_publish";
    default: return "?";
  }
}

uint64_t WindowTrace::BeginNs() const {
  uint64_t first = 0;
  for (size_t s = 0; s < kTraceStageCount; ++s) {
    const uint64_t b = stage_begin_ns[s];
    if (b != 0 && (first == 0 || b < first)) first = b;
  }
  return first;
}

uint64_t WindowTrace::EndNs() const {
  uint64_t last = 0;
  for (size_t s = 0; s < kTraceStageCount; ++s) {
    if (stage_end_ns[s] > last) last = stage_end_ns[s];
  }
  const uint64_t first = BeginNs();
  return last > first ? last : first;
}

TraceRecorder::TraceRecorder(size_t capacity)
#ifdef RINGDB_NO_METRICS
    : capacity_(0) {
  (void)capacity;
}
#else
    : capacity_(capacity) {
  if (capacity_ != 0) slots_ = std::make_unique<Slot[]>(capacity_);
}
#endif

void TraceRecorder::BeginWindow(uint64_t seq, uint64_t events) {
  Slot* slot = SlotFor(seq);
  if (slot == nullptr || seq == 0) return;
  // Invalidate the overwritten window before clearing: a concurrent
  // Export that re-reads started sees 0 (or the new seq), never the old
  // seq over half-cleared fields.
  slot->started.store(0, std::memory_order_release);
  slot->finished.store(0, std::memory_order_relaxed);
  slot->events.store(events, std::memory_order_relaxed);
  slot->bytes_logged.store(0, std::memory_order_relaxed);
  slot->flags.store(0, std::memory_order_relaxed);
  for (size_t s = 0; s < kTraceStageCount; ++s) {
    slot->stage_begin[s].store(0, std::memory_order_relaxed);
    slot->stage_end[s].store(0, std::memory_order_relaxed);
  }
  slot->nspans.store(0, std::memory_order_relaxed);
  slot->started.store(seq, std::memory_order_release);
}

void TraceRecorder::Stage(uint64_t seq, TraceStage stage, uint64_t begin_ns,
                          uint64_t end_ns) {
  Slot* slot = SlotFor(seq);
  if (slot == nullptr || stage >= kTraceStageCount) return;
  if (slot->started.load(std::memory_order_acquire) != seq) return;
  slot->stage_begin[stage].store(begin_ns, std::memory_order_relaxed);
  slot->stage_end[stage].store(end_ns, std::memory_order_relaxed);
}

void TraceRecorder::SetBytesLogged(uint64_t seq, uint64_t bytes,
                                   bool synced) {
  Slot* slot = SlotFor(seq);
  if (slot == nullptr) return;
  if (slot->started.load(std::memory_order_acquire) != seq) return;
  slot->bytes_logged.store(bytes, std::memory_order_relaxed);
  if (synced) slot->flags.fetch_or(1, std::memory_order_relaxed);
}

void TraceRecorder::AddSpan(uint64_t seq, TraceSpanKind kind, uint32_t query,
                            uint32_t shard, uint32_t mode, uint64_t begin_ns,
                            uint64_t end_ns) {
  Slot* slot = SlotFor(seq);
  if (slot == nullptr) return;
  if (slot->started.load(std::memory_order_acquire) != seq) return;
  const uint32_t i = slot->nspans.fetch_add(1, std::memory_order_relaxed);
  if (i >= kMaxSpans) {
    dropped_spans_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  SpanSlot& span = slot->spans[i];
  const uint64_t meta = static_cast<uint64_t>(kind) |
                        (static_cast<uint64_t>(query & 0xffff) << 8) |
                        (static_cast<uint64_t>(shard & 0xffff) << 24) |
                        (static_cast<uint64_t>(mode & 0xff) << 40);
  span.meta.store(meta, std::memory_order_relaxed);
  span.begin_ns.store(begin_ns, std::memory_order_relaxed);
  span.end_ns.store(end_ns, std::memory_order_relaxed);
}

void TraceRecorder::FinishWindow(uint64_t seq) {
  Slot* slot = SlotFor(seq);
  if (slot == nullptr) return;
  if (slot->started.load(std::memory_order_acquire) != seq) return;
  slot->finished.store(seq, std::memory_order_release);
}

std::vector<WindowTrace> TraceRecorder::Export() const {
  std::vector<WindowTrace> out;
  if (capacity_ == 0) return out;
  out.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    const uint64_t seq = slot.started.load(std::memory_order_acquire);
    if (seq == 0) continue;
    WindowTrace w;
    w.seq = seq;
    w.complete = slot.finished.load(std::memory_order_acquire) == seq;
    w.events = slot.events.load(std::memory_order_relaxed);
    w.bytes_logged = slot.bytes_logged.load(std::memory_order_relaxed);
    w.wal_synced =
        (slot.flags.load(std::memory_order_relaxed) & 1) != 0;
    for (size_t s = 0; s < kTraceStageCount; ++s) {
      w.stage_begin_ns[s] =
          slot.stage_begin[s].load(std::memory_order_relaxed);
      w.stage_end_ns[s] = slot.stage_end[s].load(std::memory_order_relaxed);
    }
    uint32_t n = slot.nspans.load(std::memory_order_relaxed);
    if (n > kMaxSpans) n = kMaxSpans;
    w.spans.reserve(n);
    for (uint32_t j = 0; j < n; ++j) {
      const SpanSlot& span = slot.spans[j];
      const uint64_t meta = span.meta.load(std::memory_order_relaxed);
      TraceSpan s;
      s.kind = static_cast<TraceSpanKind>(meta & 0xff);
      s.query = static_cast<uint32_t>((meta >> 8) & 0xffff);
      s.shard = static_cast<uint32_t>((meta >> 24) & 0xffff);
      s.mode = static_cast<uint32_t>((meta >> 40) & 0xff);
      s.begin_ns = span.begin_ns.load(std::memory_order_relaxed);
      s.end_ns = span.end_ns.load(std::memory_order_relaxed);
      if (s.end_ns != 0) w.spans.push_back(s);
    }
    // Seqlock validation: if the slot was recycled while we copied, the
    // frame moved on — drop the torn copy.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.started.load(std::memory_order_acquire) != seq) continue;
    out.push_back(std::move(w));
  }
  std::sort(out.begin(), out.end(),
            [](const WindowTrace& a, const WindowTrace& b) {
              return a.seq < b.seq;
            });
  return out;
}

namespace {
// Async-signal-safe dump request flag: the handler only stores; the
// pipeline thread polls + exchanges at window boundaries.
std::atomic<bool> g_trace_dump_requested{false};

void TraceDumpSignalHandler(int) {
  g_trace_dump_requested.store(true, std::memory_order_relaxed);
}
}  // namespace

void ArmTraceDumpSignal(int signum) {
  struct sigaction sa = {};
  sa.sa_handler = &TraceDumpSignalHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  (void)sigaction(signum, &sa, nullptr);
}

bool ConsumeTraceDumpRequest() {
  return g_trace_dump_requested.exchange(false, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace ringdb
