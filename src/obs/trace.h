// Window-scoped pipeline tracing (DESIGN.md "Tracing").
//
// Since PR 4 the unit of work is a coalesced *window* flowing through a
// concurrent pipeline (ingest queue → coalesce → WAL append/fsync →
// per-query fan-out apply → snapshot publish). The histograms in
// obs/metrics.h aggregate each stage in isolation; this layer records
// one WindowTrace per window so a p99 spike can be attributed to the
// stage (and shard, and query) that caused it, and the last N windows
// double as a flight recorder dumped on durability fail-stop.
//
// TraceRecorder is a fixed-capacity ring of seqlock-framed slots:
//
//  - BeginWindow(seq) claims slot seq % capacity by publishing
//    started=seq (release) after zeroing the slot. A window overwrites
//    whatever was capacity windows ago — retention is "last N", never
//    an allocation or a lock.
//  - Each pipeline stage writes its own begin/end timestamp pair into
//    the slot (relaxed atomics). Stages are single-writer by
//    construction — the batcher owns queue-wait/coalesce/WAL/fan-out,
//    each shard worker owns its sub-span, each query worker owns its
//    apply/publish sub-span — so there are no write-write races, and
//    the relaxed stores keep the hot path at one vDSO clock read plus
//    one store per stage edge.
//  - FinishWindow(seq) publishes finished=seq (release). Export()
//    re-checks started after copying a slot (acquire fences on both
//    reads) and discards slots whose frame changed mid-copy; a slot
//    with started==seq but finished!=seq exports as complete=false —
//    exactly what a flight-recorder dump wants to show for the window
//    that was in flight when the pipeline died.
//
// Everything compiles out under -DRINGDB_NO_METRICS (capacity forced to
// zero, every call an early-out), and recording is timing-granular only
// at window/stage boundaries, so the ≤2% CI overhead budget holds with
// tracing on.

#ifndef RINGDB_OBS_TRACE_H_
#define RINGDB_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metrics.h"

namespace ringdb {
namespace obs {

// Pipeline stages, one track each in the Chrome-trace export. Values
// index fixed arrays in the slot; keep kTraceStageCount last.
enum TraceStage : uint32_t {
  kTraceQueueWait = 0,  // oldest enqueue → batcher dequeue (serve)
  kTraceCoalesce,       // BatchBuilder Add loop + Build
  kTraceWalAppend,      // encode + WAL write (excluding fsync)
  kTraceWalFsync,       // the fsync portion of the append, if any
  kTraceApply,          // engine-standalone ApplyBatch window
  kTraceFanout,         // serve fan-out publish → done barrier
  kTraceCheckpoint,     // ViewTable checkpoint round, when one ran
  kTraceStageCount,
};

const char* TraceStageName(TraceStage stage);

// Sub-span kinds within a window: per-query and per-shard attribution.
enum TraceSpanKind : uint32_t {
  kSpanQueryApply = 0,  // one query's ApplyPrepared inside the fan-out
  kSpanQueryPublish,    // that query's snapshot rebuild + store
  kSpanShardApply,      // one shard's ApplyDeltaColumns inside an apply
  kSpanShardSteal,      // one stolen morsel run on an idle worker
  kSpanShardPublish,    // one shard freezing its root sub-snapshot
  kSpanKindCount,
};

const char* TraceSpanKindName(TraceSpanKind kind);

// One sub-span as exported (begin/end in NowNs() nanoseconds).
struct TraceSpan {
  TraceSpanKind kind = kSpanQueryApply;
  uint32_t query = 0;  // query index (query spans) or 0
  uint32_t shard = 0;  // shard index (shard spans) or 0
  uint32_t mode = 0;   // dispatch mode the window ran under (shard spans)
  uint64_t begin_ns = 0;
  uint64_t end_ns = 0;
};

// One window's merged trace as exported. Stage begin/end of 0 means the
// stage did not run for this window (e.g. no WAL when durability is
// off, no checkpoint most windows).
struct WindowTrace {
  uint64_t seq = 0;
  uint64_t events = 0;       // updates coalesced into the window
  uint64_t bytes_logged = 0;  // WAL bytes appended for the window
  bool wal_synced = false;    // window's append ended with an fsync
  bool complete = false;      // FinishWindow ran (false: in flight)
  uint64_t stage_begin_ns[kTraceStageCount] = {};
  uint64_t stage_end_ns[kTraceStageCount] = {};
  std::vector<TraceSpan> spans;

  uint64_t StageNs(TraceStage stage) const {
    const uint64_t b = stage_begin_ns[stage];
    const uint64_t e = stage_end_ns[stage];
    return e > b ? e - b : 0;
  }
  // End-to-end latency: first stage begin to last stage end.
  uint64_t BeginNs() const;
  uint64_t EndNs() const;
  uint64_t ElapsedNs() const { return EndNs() - BeginNs(); }
};

// Fixed-capacity lock-free window-trace ring + flight recorder. One
// recorder per pipeline (QueryService) or per engine; writers are the
// pipeline's own threads, Export() may run concurrently from any thread.
class TraceRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 256;
  // Per-window sub-span budget: covers 8 shards + 16 queries × 2 spans
  // with room to spare; overflow increments dropped_spans() instead of
  // writing out of bounds.
  static constexpr size_t kMaxSpans = 48;

  explicit TraceRecorder(size_t capacity = kDefaultCapacity);

  // Claims the slot for `seq` (seq must be nonzero and monotone per
  // recorder; both hold for window sequence numbers). Invalidates the
  // overwritten window first so a concurrent Export never sees a
  // half-cleared slot as valid.
  void BeginWindow(uint64_t seq, uint64_t events);
  // Records one stage's [begin, end) for the window. Single writer per
  // (seq, stage).
  void Stage(uint64_t seq, TraceStage stage, uint64_t begin_ns,
             uint64_t end_ns);
  void SetBytesLogged(uint64_t seq, uint64_t bytes, bool synced);
  // Appends a sub-span; safe from concurrent shard/query workers (slot
  // claim via fetch_add).
  void AddSpan(uint64_t seq, TraceSpanKind kind, uint32_t query,
               uint32_t shard, uint32_t mode, uint64_t begin_ns,
               uint64_t end_ns);
  void FinishWindow(uint64_t seq);

  // Merge-on-export: copies every valid retained window, oldest seq
  // first. Windows overwritten or begun mid-copy are skipped; a window
  // still in flight exports with complete=false.
  std::vector<WindowTrace> Export() const;

  size_t capacity() const { return capacity_; }
  uint64_t dropped_spans() const {
    return dropped_spans_.load(std::memory_order_relaxed);
  }

 private:
  struct SpanSlot {
    std::atomic<uint64_t> meta{0};  // kind | query<<8 | shard<<24 | mode<<40
    std::atomic<uint64_t> begin_ns{0};
    std::atomic<uint64_t> end_ns{0};
  };
  struct Slot {
    // Seqlock frame: started is published (release) after the clear,
    // finished (release) after the last stage write. A reader that sees
    // started==seq before and after its copy, with acquire ordering,
    // holds a consistent snapshot of everything written in between.
    std::atomic<uint64_t> started{0};
    std::atomic<uint64_t> finished{0};
    std::atomic<uint64_t> events{0};
    std::atomic<uint64_t> bytes_logged{0};
    std::atomic<uint64_t> flags{0};  // bit 0: wal_synced
    std::atomic<uint64_t> stage_begin[kTraceStageCount];
    std::atomic<uint64_t> stage_end[kTraceStageCount];
    std::atomic<uint32_t> nspans{0};
    SpanSlot spans[kMaxSpans];
  };

  Slot* SlotFor(uint64_t seq) const {
    return capacity_ == 0 ? nullptr : &slots_[seq % capacity_];
  }

  size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> dropped_spans_{0};
};

// Shared writer context handed down to the executors so per-shard and
// per-query sub-spans land in the pipeline's recorder. A null recorder
// (or seq 0) disables recording; ownership stays with the pipeline.
struct TraceContext {
  TraceRecorder* recorder = nullptr;
  uint64_t seq = 0;
  uint32_t query = 0;
};

// SIGUSR1-style on-demand dump: ArmTraceDumpSignal installs an async-
// signal-safe handler that only bumps a flag; the pipeline polls
// ConsumeTraceDumpRequest() at window boundaries and writes the dump on
// its own thread. Process-wide (signals are); last armer wins.
void ArmTraceDumpSignal(int signum);
bool ConsumeTraceDumpRequest();

}  // namespace obs
}  // namespace ringdb

#endif  // RINGDB_OBS_TRACE_H_
