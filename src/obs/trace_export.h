// Exporters over TraceRecorder::Export() output: Chrome trace-event
// JSON (chrome://tracing / Perfetto loadable) and a per-stage latency
// breakdown with critical-path attribution. Pure functions over the
// merged WindowTrace vector — no recorder internals, no locking.

#ifndef RINGDB_OBS_TRACE_EXPORT_H_
#define RINGDB_OBS_TRACE_EXPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace ringdb {
namespace obs {

// Chrome trace-event JSON. Track layout: pid 1 = pipeline (one tid per
// stage), pid 2 = queries (one tid per query index, apply + publish
// sub-spans), pid 3 = shards (one tid per shard index). Timestamps are
// normalized so the earliest window starts at t=0; ph:"X" complete
// events with ts/dur in microseconds (fractional — nanosecond detail
// survives). `label` becomes the process_name suffix.
std::string TraceToChromeJson(const std::vector<WindowTrace>& windows,
                              const std::string& label);

// One stage's (or sub-span kind's) latency distribution across the
// retained windows — exact order statistics, not bucket estimates (the
// flight recorder holds at most a few hundred windows).
struct StageBreakdownRow {
  std::string name;
  uint64_t windows = 0;   // windows in which the stage ran
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t max_ns = 0;
  uint64_t mean_ns = 0;
  uint64_t total_ns = 0;
  // Critical-path attribution: windows where this stage was the
  // largest single contributor to end-to-end latency.
  uint64_t dominated = 0;
};

struct TraceBreakdown {
  uint64_t windows = 0;           // complete windows summarized
  uint64_t e2e_p50_ns = 0;        // end-to-end window latency
  uint64_t e2e_p99_ns = 0;
  uint64_t e2e_max_ns = 0;
  // Reconciliation: 100 * (Σ e2e − Σ stage sums) / Σ e2e over complete
  // windows — the fraction of end-to-end time the stage spans fail to
  // account for (CI gates this at 5%).
  double reconcile_error_pct = 0.0;
  std::vector<StageBreakdownRow> stages;  // pipeline stages that ran
  std::vector<StageBreakdownRow> spans;   // query/shard sub-span kinds
};

TraceBreakdown ComputeTraceBreakdown(
    const std::vector<WindowTrace>& windows);

// Aligned text table of the breakdown (for StatsText-style dumps).
std::string TraceBreakdownText(const TraceBreakdown& breakdown);

// Appends the breakdown as one JSON object (for embedding in bench
// rows / StatsJson). `indent` spaces prefix every line.
void AppendTraceBreakdownJson(const TraceBreakdown& breakdown, int indent,
                              std::string* out);

}  // namespace obs
}  // namespace ringdb

#endif  // RINGDB_OBS_TRACE_EXPORT_H_
