// Low-overhead, always-on metrics primitives (DESIGN.md "Observability").
//
// Everything here is built for one budget: instrumentation that stays on
// in production costs < 2% of zipf batch-1024 maintenance throughput
// (the CI release job enforces exactly that, comparing against a build
// with -DRINGDB_NO_METRICS=ON). Three primitives carry the whole layer:
//
//  - Counter: a monotone event count, thread-sharded over cache-line-
//    padded cells. Writers pick a cell by a per-thread slot (relaxed
//    fetch_add, no contention, no false sharing); readers merge on
//    demand. Totals are exact — sharding changes where the adds land,
//    never how many.
//  - Gauge: a single atomic level (queue depth, snapshot epoch, bytes).
//    One writer or few writers, many readers; relaxed everywhere, the
//    value is advisory by nature.
//  - Histogram: fixed-point log2-bucketed distribution (latency spans in
//    nanoseconds, probe lengths, batch sizes). Atomic bucket counts, so
//    concurrent recording from shard workers is safe; quantiles are
//    bucket-upper-bound estimates — exact enough for "did p99 move an
//    order of magnitude", which is what pipeline tracing needs.
//
// Recording is timing-granular only at batch/window boundaries: nothing
// in this layer is called per tuple with a clock. Per-tuple facts
// (statement loop iterations, probes, emissions) are plain uint64
// counters owned single-writer by each executor shard and merged on
// read — see runtime::Executor::StmtCounters — because even a relaxed
// atomic per enumerated join entry is measurable on the NC0 hot path.
//
// MetricsRegistry owns named instances (stable addresses; components
// create their metrics once at construction and keep raw pointers) and
// renders the whole set as an aligned text table (util/table_printer)
// or a JSON object — the exporters behind Engine::StatsText/StatsJson,
// QueryService stats, and the bench --stats flags.
//
// Compiling with -DRINGDB_NO_METRICS turns every recording call into a
// no-op (reads return zeros) without changing any signature; that build
// is the control arm of the CI overhead gate, not a supported
// configuration for users.

#ifndef RINGDB_OBS_METRICS_H_
#define RINGDB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <ctime>
#include <memory>
#include <string>
#include <vector>

// Wraps a single recording statement so -DRINGDB_NO_METRICS compiles it
// out entirely (the control arm of the CI overhead gate). Use only for
// observability side effects — never for anything semantics depend on.
#ifdef RINGDB_NO_METRICS
#define RINGDB_OBS(stmt) \
  do {                   \
  } while (0)
#else
#define RINGDB_OBS(stmt) \
  do {                   \
    stmt;                \
  } while (0)
#endif

namespace ringdb {
namespace obs {

// Monotonic nanosecond clock for stage spans. Kept out-of-line-free and
// vDSO-backed (clock_gettime) so a batch-boundary span costs ~20ns.
inline uint64_t NowNs() {
#ifdef RINGDB_NO_METRICS
  return 0;
#else
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
#endif
}

// Stable small slot for the calling thread; threads hash onto
// Counter::kCells cells. Monotone assignment (not a hash of the thread
// id) keeps the first kCells threads perfectly collision-free — the
// engine's shard workers and the serve pipeline threads are exactly
// that population.
inline size_t ThreadSlot() {
  static std::atomic<size_t> next{0};
  thread_local const size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

class Counter {
 public:
  static constexpr size_t kCells = 16;  // power of two

  void Add(uint64_t n = 1) {
#ifndef RINGDB_NO_METRICS
    cells_[ThreadSlot() & (kCells - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  // Merge-on-read total. Exact for quiescent writers; a concurrent read
  // may miss in-flight adds (never double-counts).
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& c : cells_) {
      total += c.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  Cell cells_[kCells];
};

class Gauge {
 public:
  void Set(int64_t v) {
#ifndef RINGDB_NO_METRICS
    v_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void Add(int64_t d) {
#ifndef RINGDB_NO_METRICS
    v_.fetch_add(d, std::memory_order_relaxed);
#else
    (void)d;
#endif
  }
  // Set-if-greater, for monotone epoch gauges updated by racing writers.
  void SetMax(int64_t v) {
#ifndef RINGDB_NO_METRICS
    int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
#else
    (void)v;
#endif
  }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Read-time summary of a Histogram (also the unit JSON/text exporters
// format). Quantiles are upper bounds of the containing log2 bucket;
// min/max/sum (and therefore mean()) are exact — tracked per Record
// with relaxed CAS extremes, so exported stats carry one exact central
// moment alongside the bucket-estimated tail.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;

  uint64_t mean() const { return count == 0 ? 0 : sum / count; }
};

class Histogram {
 public:
  // Bucket b holds values v with bit_width(v) == b, i.e. [2^(b-1), 2^b);
  // bucket 0 holds v == 0. 48 buckets cover ~78 hours in nanoseconds.
  static constexpr size_t kBuckets = 48;

  void Record(uint64_t v) {
#ifndef RINGDB_NO_METRICS
    size_t b = BucketOf(v);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    // Exact extremes. The CAS loops almost never iterate: after warmup
    // the extremes are sticky, so the common case is one relaxed load.
    uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
#else
    (void)v;
#endif
  }

  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  static size_t BucketOf(uint64_t v) {
    size_t b = 0;
    while (v != 0) {
      ++b;
      v >>= 1;
    }
    return b < kBuckets ? b : kBuckets - 1;
  }

  std::atomic<uint64_t> buckets_[kBuckets]{};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~uint64_t{0}};
  std::atomic<uint64_t> max_{0};
};

// Named-metric owner + exporter. Registration (construction-time, takes
// a mutex-free single-threaded path by convention: components register
// in their constructors, before any concurrent recording) returns
// stable pointers; Export* merges every metric on demand. Names use
// dotted paths ("serve.queue.wait_ns") and render in registration
// order.
class MetricsRegistry {
 public:
  Counter* AddCounter(std::string name);
  Gauge* AddGauge(std::string name);
  Histogram* AddHistogram(std::string name);

  // Aligned text table: name | value | p50 | p90 | p99 | max (histogram
  // columns empty for counters/gauges).
  std::string ExportText() const;
  // One JSON object: {"name": value, "hist_name": {count, sum, ...}}.
  // `indent` spaces prefix every line (for embedding in larger docs).
  std::string ExportJson(int indent = 0) const;

  void ResetAll();

 private:
  struct Entry {
    std::string name;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  std::vector<Entry> entries_;
};

// Appends one JSON histogram object for `snap` to `out` (shared by the
// registry exporter and the structured Stats() serializers).
void AppendHistogramJson(const HistogramSnapshot& snap, std::string* out);

}  // namespace obs
}  // namespace ringdb

#endif  // RINGDB_OBS_METRICS_H_
