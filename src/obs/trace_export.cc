#include "obs/trace_export.h"

#include <algorithm>
#include <cstdio>

#include "util/table_printer.h"

namespace ringdb {
namespace obs {

namespace {

// Append one ph:"X" complete event. ts/dur in microseconds with
// fractional nanoseconds (Chrome/Perfetto accept doubles).
void AppendCompleteEvent(uint64_t begin_ns, uint64_t end_ns, uint64_t t0_ns,
                         int pid, uint32_t tid, const std::string& name,
                         const std::string& args_json, std::string* out) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"X\",\"pid\":%d,\"tid\":%u,\"ts\":%.3f,"
                "\"dur\":%.3f,\"name\":\"",
                pid, tid, (begin_ns - t0_ns) / 1000.0,
                (end_ns - begin_ns) / 1000.0);
  *out += buf;
  *out += name;
  *out += "\"";
  if (!args_json.empty()) {
    *out += ",\"args\":";
    *out += args_json;
  }
  *out += "},\n";
}

void AppendMetadataEvent(int pid, int tid, const char* what,
                         const std::string& name, std::string* out) {
  *out += "{\"ph\":\"M\",\"pid\":" + std::to_string(pid);
  if (tid >= 0) *out += ",\"tid\":" + std::to_string(tid);
  *out += ",\"name\":\"";
  *out += what;
  *out += "\",\"args\":{\"name\":\"" + name + "\"}},\n";
}

// Exact nearest-rank percentile over a sorted vector.
uint64_t Percentile(const std::vector<uint64_t>& sorted, int pct) {
  if (sorted.empty()) return 0;
  size_t rank = (sorted.size() * static_cast<size_t>(pct) + 99) / 100;
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

StageBreakdownRow SummarizeSamples(const std::string& name,
                                   std::vector<uint64_t>* samples) {
  StageBreakdownRow row;
  row.name = name;
  row.windows = samples->size();
  if (samples->empty()) return row;
  std::sort(samples->begin(), samples->end());
  for (uint64_t v : *samples) row.total_ns += v;
  row.p50_ns = Percentile(*samples, 50);
  row.p99_ns = Percentile(*samples, 99);
  row.max_ns = samples->back();
  row.mean_ns = row.total_ns / samples->size();
  return row;
}

std::string Ms(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ns / 1e6);
  return buf;
}

}  // namespace

std::string TraceToChromeJson(const std::vector<WindowTrace>& windows,
                              const std::string& label) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  // Track metadata: pid 1 = pipeline stages, pid 2 = queries,
  // pid 3 = shards. Emit thread names only for tracks that have events.
  const std::string suffix = label.empty() ? "" : " (" + label + ")";
  AppendMetadataEvent(1, -1, "process_name", "pipeline" + suffix, &out);
  AppendMetadataEvent(2, -1, "process_name", "queries" + suffix, &out);
  AppendMetadataEvent(3, -1, "process_name", "shards" + suffix, &out);
  bool stage_seen[kTraceStageCount] = {};
  std::vector<bool> query_seen, shard_seen;
  uint64_t t0 = 0;
  for (const WindowTrace& w : windows) {
    const uint64_t b = w.BeginNs();
    if (b != 0 && (t0 == 0 || b < t0)) t0 = b;
    for (const TraceSpan& s : w.spans) {
      if (s.begin_ns != 0 && (t0 == 0 || s.begin_ns < t0)) t0 = s.begin_ns;
    }
  }
  std::string events;
  for (const WindowTrace& w : windows) {
    const std::string wtag = "w" + std::to_string(w.seq);
    for (size_t s = 0; s < kTraceStageCount; ++s) {
      const TraceStage stage = static_cast<TraceStage>(s);
      if (w.stage_end_ns[s] <= w.stage_begin_ns[s]) continue;
      stage_seen[s] = true;
      std::string args = "{\"seq\":" + std::to_string(w.seq) +
                         ",\"events\":" + std::to_string(w.events);
      if (stage == kTraceWalAppend) {
        args += ",\"bytes\":" + std::to_string(w.bytes_logged);
        args += w.wal_synced ? ",\"synced\":true" : ",\"synced\":false";
      }
      if (!w.complete) args += ",\"complete\":false";
      args += "}";
      AppendCompleteEvent(w.stage_begin_ns[s], w.stage_end_ns[s], t0, 1,
                          static_cast<uint32_t>(s),
                          std::string(TraceStageName(stage)) + " " + wtag,
                          args, &events);
    }
    for (const TraceSpan& span : w.spans) {
      if (span.end_ns <= span.begin_ns) continue;
      const bool shard_track = span.kind == kSpanShardApply ||
                               span.kind == kSpanShardSteal ||
                               span.kind == kSpanShardPublish;
      const int pid = shard_track ? 3 : 2;
      const uint32_t tid = shard_track ? span.shard : span.query;
      std::vector<bool>& seen = shard_track ? shard_seen : query_seen;
      if (tid >= seen.size()) seen.resize(tid + 1, false);
      seen[tid] = true;
      const std::string args = "{\"seq\":" + std::to_string(w.seq) +
                               ",\"mode\":" + std::to_string(span.mode) +
                               "}";
      AppendCompleteEvent(span.begin_ns, span.end_ns, t0, pid, tid,
                          std::string(TraceSpanKindName(span.kind)) + " " +
                              wtag,
                          args, &events);
    }
  }
  for (size_t s = 0; s < kTraceStageCount; ++s) {
    if (stage_seen[s]) {
      AppendMetadataEvent(1, static_cast<int>(s), "thread_name",
                          TraceStageName(static_cast<TraceStage>(s)), &out);
    }
  }
  for (size_t q = 0; q < query_seen.size(); ++q) {
    if (query_seen[q]) {
      AppendMetadataEvent(2, static_cast<int>(q), "thread_name",
                          "query " + std::to_string(q), &out);
    }
  }
  for (size_t sh = 0; sh < shard_seen.size(); ++sh) {
    if (shard_seen[sh]) {
      AppendMetadataEvent(3, static_cast<int>(sh), "thread_name",
                          "shard " + std::to_string(sh), &out);
    }
  }
  out += events;
  // Strip the trailing ",\n" so the array is valid JSON.
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);
  }
  out += "]}\n";
  return out;
}

TraceBreakdown ComputeTraceBreakdown(
    const std::vector<WindowTrace>& windows) {
  TraceBreakdown breakdown;
  std::vector<uint64_t> stage_samples[kTraceStageCount];
  uint64_t stage_dominated[kTraceStageCount] = {};
  std::vector<uint64_t> span_samples[kSpanKindCount];
  std::vector<uint64_t> e2e_samples;
  uint64_t sum_e2e = 0;
  uint64_t sum_gap = 0;
  for (const WindowTrace& w : windows) {
    if (!w.complete) continue;
    const uint64_t e2e = w.ElapsedNs();
    if (e2e == 0) continue;
    e2e_samples.push_back(e2e);
    sum_e2e += e2e;
    uint64_t stage_sum = 0;
    size_t dominant = kTraceStageCount;
    uint64_t dominant_ns = 0;
    for (size_t s = 0; s < kTraceStageCount; ++s) {
      const uint64_t ns = w.StageNs(static_cast<TraceStage>(s));
      if (ns == 0) continue;
      stage_samples[s].push_back(ns);
      stage_sum += ns;
      if (ns > dominant_ns) {
        dominant_ns = ns;
        dominant = s;
      }
    }
    if (dominant < kTraceStageCount) ++stage_dominated[dominant];
    // Stages are disjoint sequential intervals of the window, so the
    // unaccounted gap is e2e − Σstages (never negative in theory;
    // clamp against clock jitter).
    sum_gap += e2e > stage_sum ? e2e - stage_sum : 0;
    for (const TraceSpan& span : w.spans) {
      if (span.kind < kSpanKindCount && span.end_ns > span.begin_ns) {
        span_samples[span.kind].push_back(span.end_ns - span.begin_ns);
      }
    }
  }
  breakdown.windows = e2e_samples.size();
  std::sort(e2e_samples.begin(), e2e_samples.end());
  breakdown.e2e_p50_ns = Percentile(e2e_samples, 50);
  breakdown.e2e_p99_ns = Percentile(e2e_samples, 99);
  breakdown.e2e_max_ns = e2e_samples.empty() ? 0 : e2e_samples.back();
  breakdown.reconcile_error_pct =
      sum_e2e == 0 ? 0.0 : 100.0 * static_cast<double>(sum_gap) /
                               static_cast<double>(sum_e2e);
  for (size_t s = 0; s < kTraceStageCount; ++s) {
    if (stage_samples[s].empty()) continue;
    StageBreakdownRow row = SummarizeSamples(
        TraceStageName(static_cast<TraceStage>(s)), &stage_samples[s]);
    row.dominated = stage_dominated[s];
    breakdown.stages.push_back(std::move(row));
  }
  for (size_t k = 0; k < kSpanKindCount; ++k) {
    if (span_samples[k].empty()) continue;
    breakdown.spans.push_back(SummarizeSamples(
        TraceSpanKindName(static_cast<TraceSpanKind>(k)),
        &span_samples[k]));
  }
  return breakdown;
}

std::string TraceBreakdownText(const TraceBreakdown& breakdown) {
  TablePrinter table({"stage", "windows", "p50 ms", "p99 ms", "max ms",
                      "mean ms", "dominated"});
  for (const StageBreakdownRow& row : breakdown.stages) {
    table.AddRow({row.name, std::to_string(row.windows), Ms(row.p50_ns),
                  Ms(row.p99_ns), Ms(row.max_ns), Ms(row.mean_ns),
                  std::to_string(row.dominated)});
  }
  for (const StageBreakdownRow& row : breakdown.spans) {
    table.AddRow({"  " + row.name, std::to_string(row.windows),
                  Ms(row.p50_ns), Ms(row.p99_ns), Ms(row.max_ns),
                  Ms(row.mean_ns), ""});
  }
  std::string out = table.Render();
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "windows: %llu  e2e p50/p99/max ms: %s/%s/%s  "
                "unattributed: %.1f%%\n",
                static_cast<unsigned long long>(breakdown.windows),
                Ms(breakdown.e2e_p50_ns).c_str(),
                Ms(breakdown.e2e_p99_ns).c_str(),
                Ms(breakdown.e2e_max_ns).c_str(),
                breakdown.reconcile_error_pct);
  out += buf;
  return out;
}

namespace {
void AppendRowJson(const StageBreakdownRow& row, const std::string& pad,
                   std::string* out) {
  *out += pad + "\"" + row.name +
          "\": {\"windows\": " + std::to_string(row.windows) +
          ", \"p50_ns\": " + std::to_string(row.p50_ns) +
          ", \"p99_ns\": " + std::to_string(row.p99_ns) +
          ", \"max_ns\": " + std::to_string(row.max_ns) +
          ", \"mean_ns\": " + std::to_string(row.mean_ns) +
          ", \"total_ns\": " + std::to_string(row.total_ns) +
          ", \"dominated\": " + std::to_string(row.dominated) + "}";
}
}  // namespace

void AppendTraceBreakdownJson(const TraceBreakdown& breakdown, int indent,
                              std::string* out) {
  const std::string pad(static_cast<size_t>(indent), ' ');
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", breakdown.reconcile_error_pct);
  *out += "{\n";
  *out += pad + "  \"windows\": " + std::to_string(breakdown.windows) +
          ",\n";
  *out +=
      pad + "  \"e2e_p50_ns\": " + std::to_string(breakdown.e2e_p50_ns) +
      ",\n";
  *out +=
      pad + "  \"e2e_p99_ns\": " + std::to_string(breakdown.e2e_p99_ns) +
      ",\n";
  *out +=
      pad + "  \"e2e_max_ns\": " + std::to_string(breakdown.e2e_max_ns) +
      ",\n";
  *out += pad + "  \"reconcile_error_pct\": " + buf + ",\n";
  *out += pad + "  \"stages\": {";
  for (size_t i = 0; i < breakdown.stages.size(); ++i) {
    *out += i == 0 ? "\n" : ",\n";
    AppendRowJson(breakdown.stages[i], pad + "    ", out);
  }
  *out += breakdown.stages.empty() ? "},\n" : "\n" + pad + "  },\n";
  *out += pad + "  \"spans\": {";
  for (size_t i = 0; i < breakdown.spans.size(); ++i) {
    *out += i == 0 ? "\n" : ",\n";
    AppendRowJson(breakdown.spans[i], pad + "    ", out);
  }
  *out += breakdown.spans.empty() ? "}\n" : "\n" + pad + "  }\n";
  *out += pad + "}";
}

}  // namespace obs
}  // namespace ringdb
