#include "obs/metrics.h"

#include <utility>

#include "util/table_printer.h"

namespace ringdb {
namespace obs {

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  uint64_t counts[kBuckets];
  for (size_t b = 0; b < kBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    snap.count += counts[b];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  if (snap.count == 0) return snap;
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  // Quantile q = upper bound of the first bucket whose cumulative count
  // reaches q * total. Bucket b covers [2^(b-1), 2^b), so the upper
  // bound is (1 << b) - 1 (bucket 0 is exactly {0}).
  auto quantile = [&](uint64_t rank) -> uint64_t {
    uint64_t cum = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      cum += counts[b];
      if (cum >= rank) {
        return b == 0 ? 0 : (uint64_t{1} << b) - 1;
      }
    }
    return (uint64_t{1} << (kBuckets - 1)) - 1;
  };
  snap.p50 = quantile((snap.count + 1) / 2);
  snap.p90 = quantile((snap.count * 9 + 9) / 10);
  snap.p99 = quantile((snap.count * 99 + 99) / 100);
  return snap;
}

void Histogram::Reset() {
  for (size_t b = 0; b < kBuckets; ++b) {
    buckets_[b].store(0, std::memory_order_relaxed);
  }
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Counter* MetricsRegistry::AddCounter(std::string name) {
  Entry e;
  e.name = std::move(name);
  e.counter = std::make_unique<Counter>();
  Counter* ptr = e.counter.get();
  entries_.push_back(std::move(e));
  return ptr;
}

Gauge* MetricsRegistry::AddGauge(std::string name) {
  Entry e;
  e.name = std::move(name);
  e.gauge = std::make_unique<Gauge>();
  Gauge* ptr = e.gauge.get();
  entries_.push_back(std::move(e));
  return ptr;
}

Histogram* MetricsRegistry::AddHistogram(std::string name) {
  Entry e;
  e.name = std::move(name);
  e.histogram = std::make_unique<Histogram>();
  Histogram* ptr = e.histogram.get();
  entries_.push_back(std::move(e));
  return ptr;
}

std::string MetricsRegistry::ExportText() const {
  TablePrinter table({"metric", "value", "p50", "p90", "p99", "max"});
  for (const Entry& e : entries_) {
    if (e.counter != nullptr) {
      table.AddRow({e.name, std::to_string(e.counter->Value()), "", "", "",
                    ""});
    } else if (e.gauge != nullptr) {
      table.AddRow(
          {e.name, std::to_string(e.gauge->Value()), "", "", "", ""});
    } else {
      const HistogramSnapshot s = e.histogram->Snapshot();
      table.AddRow({e.name + " (n=" + std::to_string(s.count) + ")",
                    std::to_string(s.mean()), std::to_string(s.p50),
                    std::to_string(s.p90), std::to_string(s.p99),
                    std::to_string(s.max)});
    }
  }
  return table.Render();
}

void AppendHistogramJson(const HistogramSnapshot& snap, std::string* out) {
  *out += "{\"count\": " + std::to_string(snap.count) +
          ", \"sum\": " + std::to_string(snap.sum) +
          ", \"mean\": " + std::to_string(snap.mean()) +
          ", \"min\": " + std::to_string(snap.min) +
          ", \"p50\": " + std::to_string(snap.p50) +
          ", \"p90\": " + std::to_string(snap.p90) +
          ", \"p99\": " + std::to_string(snap.p99) +
          ", \"max\": " + std::to_string(snap.max) + "}";
}

std::string MetricsRegistry::ExportJson(int indent) const {
  const std::string pad(static_cast<size_t>(indent), ' ');
  std::string out = "{\n";
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    out += pad + "  \"" + e.name + "\": ";
    if (e.counter != nullptr) {
      out += std::to_string(e.counter->Value());
    } else if (e.gauge != nullptr) {
      out += std::to_string(e.gauge->Value());
    } else {
      AppendHistogramJson(e.histogram->Snapshot(), &out);
    }
    if (i + 1 < entries_.size()) out += ",";
    out += "\n";
  }
  out += pad + "}";
  return out;
}

void MetricsRegistry::ResetAll() {
  for (Entry& e : entries_) {
    if (e.counter != nullptr) {
      e.counter->Reset();
    } else if (e.gauge != nullptr) {
      e.gauge->Reset();
    } else {
      e.histogram->Reset();
    }
  }
}

}  // namespace obs
}  // namespace ringdb
