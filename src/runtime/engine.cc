#include "runtime/engine.h"

#include <algorithm>
#include <cstdio>

#include "obs/trace_export.h"
#include "util/check.h"
#include "util/table_printer.h"

namespace ringdb {
namespace runtime {

StatusOr<Engine> Engine::Create(const ring::Catalog& catalog,
                                std::vector<Symbol> group_vars,
                                agca::ExprPtr body, EngineOptions options) {
  // The partition analysis reads the query before compilation consumes it.
  exec::PartitionScheme scheme =
      options.num_shards > 1
          ? exec::DerivePartitionScheme(catalog, group_vars, body)
          : exec::PartitionScheme{};
  RINGDB_ASSIGN_OR_RETURN(
      compiler::CompiledQuery compiled,
      compiler::Compile(catalog, group_vars, std::move(body)));
  return Engine(std::move(compiled), std::move(group_vars),
                std::move(options), std::move(scheme));
}

Engine::Engine(compiler::CompiledQuery compiled,
               std::vector<Symbol> group_vars, EngineOptions options,
               exec::PartitionScheme scheme)
    : group_vars_(std::move(group_vars)),
      root_key_order_(std::move(compiled.root_key_order)),
      options_(options),
      sharded_(std::make_unique<exec::ShardedExecutor>(
          compiled.program, std::move(scheme), options.num_shards,
          options.backend)),
      builder_(std::make_unique<exec::BatchBuilder>(
          sharded_->shard(0).program().catalog)) {}

Status Engine::ApplyBatch(const std::vector<ring::Update>& updates) {
  ApplyGuard guard(apply_depth_.get());
  const size_t window = std::max<size_t>(options_.batch_size, 1);
  size_t i = 0;
  while (i < updates.size()) {
    size_t end = std::min(updates.size(), i + window);
    const size_t window_events = end - i;
    const uint64_t seq = trace_ != nullptr ? ++trace_seq_ : 0;
    if (seq != 0) {
      trace_->BeginWindow(seq, window_events);
      sharded_->SetTraceContext({trace_.get(), seq, 0});
    }
    const uint64_t t0 = obs::NowNs();
    for (; i < end; ++i) {
      Status added = builder_->Add(updates[i]);
      if (!added.ok()) {
        // Match sequential semantics: the valid prefix before the bad
        // update still applies, and nothing lingers in the builder to
        // leak into a later batch.
        RINGDB_RETURN_IF_ERROR(sharded_->ApplyBatch(builder_->Build()));
        return added;
      }
    }
    exec::UpdateBatch batch = builder_->Build();
    const uint64_t t1 = obs::NowNs();
    Status applied = sharded_->ApplyBatch(batch);
    if (seq != 0) {
      const uint64_t t2 = obs::NowNs();
      trace_->Stage(seq, obs::kTraceCoalesce, t0, t1);
      trace_->Stage(seq, obs::kTraceApply, t1, t2);
      trace_->FinishWindow(seq);
      sharded_->SetTraceContext({});
    }
    RINGDB_RETURN_IF_ERROR(std::move(applied));
  }
  return Status::Ok();
}

Status Engine::ApplyPrepared(const exec::UpdateBatch& batch) {
  ApplyGuard guard(apply_depth_.get());
  return sharded_->ApplyBatch(batch);
}

Numeric Engine::ResultScalar() const {
  CheckNotApplying();
  RINGDB_CHECK(group_vars_.empty());
  Numeric total = kZero;
  for (size_t i = 0; i < sharded_->num_shards(); ++i) {
    total += sharded_->shard(i).root().At({});
  }
  return total;
}

Numeric Engine::ResultAt(const std::vector<Value>& group_values) const {
  CheckNotApplying();
  RINGDB_CHECK_EQ(group_values.size(), group_vars_.size());
  Key key(group_values.size());
  for (size_t i = 0; i < group_values.size(); ++i) {
    key[root_key_order_[i]] = group_values[i];
  }
  Numeric total = kZero;
  for (size_t i = 0; i < sharded_->num_shards(); ++i) {
    total += sharded_->shard(i).root().At(key);
  }
  return total;
}

ring::Gmr Engine::ResultGmr() const {
  CheckNotApplying();
  ring::Gmr out;
  sharded_->ForEachRootMerged([&](KeyView key, Numeric m) {
    std::vector<ring::Tuple::Field> fields;
    fields.reserve(group_vars_.size());
    for (size_t i = 0; i < group_vars_.size(); ++i) {
      fields.emplace_back(group_vars_[i], key[root_key_order_[i]]);
    }
    out.Add(ring::Tuple::FromFields(std::move(fields)), m);
  });
  return out;
}

namespace {

const char* ModeName(uint8_t mode) {
  switch (mode) {
    case 1:
      return "native";
    case 2:
      return "profiling";
    default:
      return "interp";
  }
}

}  // namespace

Engine::EngineStats Engine::Stats() const {
  CheckNotApplying();
  EngineStats out;
  out.totals = sharded_->AggregateStats();
  out.approx_bytes = sharded_->ApproxBytes();
  out.num_shards = sharded_->num_shards();
  out.native_enabled = sharded_->native_enabled();
  out.shard_apply_ns = sharded_->ApplySpanSnapshot();
  out.merge_ns = sharded_->MergeSpanSnapshot();
  const exec::ShardedExecutor::StealStats steals = sharded_->steal_stats();
  out.morsels_run = steals.morsels_run;
  out.morsels_stolen = steals.morsels_stolen;

  const std::vector<Executor::StmtCounters> counters =
      sharded_->AggregateStmtCounters();
  std::vector<Executor::StmtDispatch> dispatch;
  sharded_->CollectDispatch(&dispatch);
  const compiler::TriggerProgram& prog = program();
  out.statements.reserve(counters.size());
  for (size_t t = 0; t < prog.lowered->stmts.size(); ++t) {
    const compiler::Trigger& trig = prog.triggers[t];
    const char sign =
        trig.sign == ring::Update::Sign::kDelete ? '-' : '+';
    for (size_t s = 0; s < prog.lowered->stmts[t].size(); ++s) {
      const compiler::lower::StmtProgram& sp = prog.lowered->stmts[t][s];
      StmtStats row;
      row.stmt_id = sp.stmt_id;
      row.label = std::string(1, sign) + trig.relation.str() + " s" +
                  std::to_string(s) + " -> " +
                  prog.views[static_cast<size_t>(sp.target_view)].name;
      if (sp.stmt_id < counters.size()) row.counters = counters[sp.stmt_id];
      if (sp.stmt_id < dispatch.size()) row.dispatch = dispatch[sp.stmt_id];
      out.statements.push_back(std::move(row));
    }
  }
  std::sort(out.statements.begin(), out.statements.end(),
            [](const StmtStats& a, const StmtStats& b) {
              return a.stmt_id < b.stmt_id;
            });
  return out;
}

std::string Engine::StatsText() const {
  const EngineStats st = Stats();
  std::string out;
  out += "engine: shards=" + std::to_string(st.num_shards) +
         " backend=" + (st.native_enabled ? "native" : "interp") +
         " approx_bytes=" + std::to_string(st.approx_bytes) +
         " updates=" + std::to_string(st.totals.updates) +
         " statements_run=" + std::to_string(st.totals.statements_run) +
         " entries_touched=" + std::to_string(st.totals.entries_touched) +
         " morsels_run=" + std::to_string(st.morsels_run) +
         " morsels_stolen=" + std::to_string(st.morsels_stolen) + "\n";
  auto span = [&](const char* name, const obs::HistogramSnapshot& s) {
    out += std::string(name) + ": n=" + std::to_string(s.count) +
           " mean=" + std::to_string(s.mean()) +
           "ns p50=" + std::to_string(s.p50) +
           "ns p99=" + std::to_string(s.p99) +
           "ns max=" + std::to_string(s.max) + "ns\n";
  };
  span("shard_apply", st.shard_apply_ns);
  span("merge_read", st.merge_ns);
  TablePrinter table({"statement", "invocations", "loop_iters", "probes",
                      "emissions", "native", "interp", "win ms", "mode"});
  for (const StmtStats& row : st.statements) {
    const Executor::StmtCounters& c = row.counters;
    std::string mode = ModeName(row.dispatch.plain_mode);
    if (row.dispatch.grouped_available &&
        row.dispatch.grouped_mode != row.dispatch.plain_mode) {
      mode += "/";
      mode += ModeName(row.dispatch.grouped_mode);
    }
    if (row.dispatch.window_available) {
      mode += " w:";
      mode += ModeName(row.dispatch.win_plain_mode);
      if (row.dispatch.win_grouped_mode != row.dispatch.win_plain_mode) {
        mode += "/";
        mode += ModeName(row.dispatch.win_grouped_mode);
      }
    }
    if (!row.dispatch.native_available) mode = "interp-only";
    char win_ms[32];
    std::snprintf(win_ms, sizeof(win_ms), "%.1f", c.window_ns / 1e6);
    table.AddRow({row.label, std::to_string(c.invocations),
                  std::to_string(c.loop_iterations),
                  std::to_string(c.probes), std::to_string(c.emissions),
                  std::to_string(c.native_calls),
                  std::to_string(c.interp_calls), win_ms,
                  std::move(mode)});
  }
  out += table.Render();
  return out;
}

void Engine::EnableTracing(size_t windows) {
  trace_ = std::make_unique<obs::TraceRecorder>(windows);
}

std::string Engine::TraceJson() const {
  if (trace_ == nullptr) return "";
  return obs::TraceToChromeJson(trace_->Export(), "engine");
}

std::string Engine::TraceBreakdownJson(int indent) const {
  std::string out;
  if (trace_ == nullptr) return "null";
  obs::AppendTraceBreakdownJson(
      obs::ComputeTraceBreakdown(trace_->Export()), indent, &out);
  return out;
}

std::string Engine::StatsJson(int indent) const {
  const EngineStats st = Stats();
  const std::string pad(static_cast<size_t>(indent), ' ');
  std::string out = "{\n";
  out += pad + "  \"num_shards\": " + std::to_string(st.num_shards) + ",\n";
  out += pad + "  \"native_enabled\": " +
         (st.native_enabled ? std::string("true") : std::string("false")) +
         ",\n";
  out += pad + "  \"approx_bytes\": " + std::to_string(st.approx_bytes) +
         ",\n";
  out += pad + "  \"totals\": {\"updates\": " +
         std::to_string(st.totals.updates) +
         ", \"statements_run\": " + std::to_string(st.totals.statements_run) +
         ", \"entries_touched\": " +
         std::to_string(st.totals.entries_touched) +
         ", \"arithmetic_ops\": " + std::to_string(st.totals.arithmetic_ops) +
         ", \"init_evaluations\": " +
         std::to_string(st.totals.init_evaluations) +
         ", \"delta_entries\": " + std::to_string(st.totals.delta_entries) +
         ", \"scaled_firings\": " + std::to_string(st.totals.scaled_firings) +
         "},\n";
  out += pad + "  \"morsels_run\": " + std::to_string(st.morsels_run) +
         ",\n";
  out += pad + "  \"morsels_stolen\": " + std::to_string(st.morsels_stolen) +
         ",\n";
  out += pad + "  \"shard_apply_ns\": ";
  obs::AppendHistogramJson(st.shard_apply_ns, &out);
  out += ",\n" + pad + "  \"merge_ns\": ";
  obs::AppendHistogramJson(st.merge_ns, &out);
  out += ",\n" + pad + "  \"statements\": [\n";
  for (size_t i = 0; i < st.statements.size(); ++i) {
    const StmtStats& row = st.statements[i];
    const Executor::StmtCounters& c = row.counters;
    out += pad + "    {\"stmt_id\": " + std::to_string(row.stmt_id) +
           ", \"label\": \"" + row.label + "\"" +
           ", \"invocations\": " + std::to_string(c.invocations) +
           ", \"loop_iterations\": " + std::to_string(c.loop_iterations) +
           ", \"probes\": " + std::to_string(c.probes) +
           ", \"emissions\": " + std::to_string(c.emissions) +
           ", \"native_calls\": " + std::to_string(c.native_calls) +
           ", \"interp_calls\": " + std::to_string(c.interp_calls) +
           ", \"window_ns\": " + std::to_string(c.window_ns) +
           ", \"native_available\": " +
           (row.dispatch.native_available ? "true" : "false") +
           ", \"window_available\": " +
           (row.dispatch.window_available ? "true" : "false") +
           ", \"plain_mode\": \"" + ModeName(row.dispatch.plain_mode) +
           "\", \"grouped_mode\": \"" + ModeName(row.dispatch.grouped_mode) +
           "\", \"win_plain_mode\": \"" +
           ModeName(row.dispatch.win_plain_mode) +
           "\", \"win_grouped_mode\": \"" +
           ModeName(row.dispatch.win_grouped_mode) +
           "\", \"profile_native_ns\": " +
           std::to_string(row.dispatch.profile_native_ns) +
           ", \"profile_interp_ns\": " +
           std::to_string(row.dispatch.profile_interp_ns) + "}";
    out += (i + 1 < st.statements.size()) ? ",\n" : "\n";
  }
  out += pad + "  ]\n" + pad + "}";
  return out;
}

}  // namespace runtime
}  // namespace ringdb
