#include "runtime/engine.h"

#include <algorithm>

#include "util/check.h"

namespace ringdb {
namespace runtime {

StatusOr<Engine> Engine::Create(const ring::Catalog& catalog,
                                std::vector<Symbol> group_vars,
                                agca::ExprPtr body, EngineOptions options) {
  // The partition analysis reads the query before compilation consumes it.
  exec::PartitionScheme scheme =
      options.num_shards > 1
          ? exec::DerivePartitionScheme(catalog, group_vars, body)
          : exec::PartitionScheme{};
  RINGDB_ASSIGN_OR_RETURN(
      compiler::CompiledQuery compiled,
      compiler::Compile(catalog, group_vars, std::move(body)));
  return Engine(std::move(compiled), std::move(group_vars),
                std::move(options), std::move(scheme));
}

Engine::Engine(compiler::CompiledQuery compiled,
               std::vector<Symbol> group_vars, EngineOptions options,
               exec::PartitionScheme scheme)
    : group_vars_(std::move(group_vars)),
      root_key_order_(std::move(compiled.root_key_order)),
      options_(options),
      sharded_(std::make_unique<exec::ShardedExecutor>(
          compiled.program, std::move(scheme), options.num_shards,
          options.backend)),
      builder_(std::make_unique<exec::BatchBuilder>(
          sharded_->shard(0).program().catalog)) {}

Status Engine::ApplyBatch(const std::vector<ring::Update>& updates) {
  ApplyGuard guard(apply_depth_.get());
  const size_t window = std::max<size_t>(options_.batch_size, 1);
  size_t i = 0;
  while (i < updates.size()) {
    size_t end = std::min(updates.size(), i + window);
    for (; i < end; ++i) {
      Status added = builder_->Add(updates[i]);
      if (!added.ok()) {
        // Match sequential semantics: the valid prefix before the bad
        // update still applies, and nothing lingers in the builder to
        // leak into a later batch.
        RINGDB_RETURN_IF_ERROR(sharded_->ApplyBatch(builder_->Build()));
        return added;
      }
    }
    RINGDB_RETURN_IF_ERROR(sharded_->ApplyBatch(builder_->Build()));
  }
  return Status::Ok();
}

Status Engine::ApplyPrepared(const exec::UpdateBatch& batch) {
  ApplyGuard guard(apply_depth_.get());
  return sharded_->ApplyBatch(batch);
}

Numeric Engine::ResultScalar() const {
  CheckNotApplying();
  RINGDB_CHECK(group_vars_.empty());
  Numeric total = kZero;
  for (size_t i = 0; i < sharded_->num_shards(); ++i) {
    total += sharded_->shard(i).root().At({});
  }
  return total;
}

Numeric Engine::ResultAt(const std::vector<Value>& group_values) const {
  CheckNotApplying();
  RINGDB_CHECK_EQ(group_values.size(), group_vars_.size());
  Key key(group_values.size());
  for (size_t i = 0; i < group_values.size(); ++i) {
    key[root_key_order_[i]] = group_values[i];
  }
  Numeric total = kZero;
  for (size_t i = 0; i < sharded_->num_shards(); ++i) {
    total += sharded_->shard(i).root().At(key);
  }
  return total;
}

ring::Gmr Engine::ResultGmr() const {
  CheckNotApplying();
  ring::Gmr out;
  sharded_->ForEachRootMerged([&](KeyView key, Numeric m) {
    std::vector<ring::Tuple::Field> fields;
    fields.reserve(group_vars_.size());
    for (size_t i = 0; i < group_vars_.size(); ++i) {
      fields.emplace_back(group_vars_[i], key[root_key_order_[i]]);
    }
    out.Add(ring::Tuple::FromFields(std::move(fields)), m);
  });
  return out;
}

}  // namespace runtime
}  // namespace ringdb
