#include "runtime/engine.h"

#include "util/check.h"

namespace ringdb {
namespace runtime {

StatusOr<Engine> Engine::Create(const ring::Catalog& catalog,
                                std::vector<Symbol> group_vars,
                                agca::ExprPtr body) {
  RINGDB_ASSIGN_OR_RETURN(
      compiler::CompiledQuery compiled,
      compiler::Compile(catalog, group_vars, std::move(body)));
  return Engine(std::move(compiled), std::move(group_vars));
}

Engine::Engine(compiler::CompiledQuery compiled,
               std::vector<Symbol> group_vars)
    : group_vars_(std::move(group_vars)),
      root_key_order_(std::move(compiled.root_key_order)),
      executor_(std::make_unique<Executor>(std::move(compiled.program))) {}

Numeric Engine::ResultScalar() const {
  RINGDB_CHECK(group_vars_.empty());
  return executor_->root().At({});
}

Numeric Engine::ResultAt(const std::vector<Value>& group_values) const {
  RINGDB_CHECK_EQ(group_values.size(), group_vars_.size());
  Key key(group_values.size());
  for (size_t i = 0; i < group_values.size(); ++i) {
    key[root_key_order_[i]] = group_values[i];
  }
  return executor_->root().At(key);
}

ring::Gmr Engine::ResultGmr() const {
  ring::Gmr out;
  executor_->root().ForEach([&](const Key& key, Numeric m) {
    std::vector<ring::Tuple::Field> fields;
    fields.reserve(group_vars_.size());
    for (size_t i = 0; i < group_vars_.size(); ++i) {
      fields.emplace_back(group_vars_[i], key[root_key_order_[i]]);
    }
    out.Add(ring::Tuple::FromFields(std::move(fields)), m);
  });
  return out;
}

}  // namespace runtime
}  // namespace ringdb
