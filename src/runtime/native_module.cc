#include "runtime/native_module.h"

#include <dlfcn.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/hash.h"

namespace ringdb {
namespace runtime {

namespace {

namespace fs = std::filesystem;

// Resolves the host C compiler. RINGDB_CC wins when set (even when bogus:
// the caller is asking for exactly that compiler, and a bad one must fail
// instead of silently substituting); otherwise the first of the usual
// names found on PATH.
std::string FindCompiler() {
  if (const char* env = std::getenv("RINGDB_CC")) return env;
  const char* path = std::getenv("PATH");
  if (path == nullptr) return "";
  for (const char* cand : {"cc", "gcc", "clang"}) {
    std::stringstream dirs(path);
    std::string dir;
    while (std::getline(dirs, dir, ':')) {
      if (dir.empty()) continue;
      fs::path p = fs::path(dir) / cand;
      std::error_code ec;
      if (fs::exists(p, ec) && ::access(p.c_str(), X_OK) == 0) {
        return p.string();
      }
    }
  }
  return "";
}

StatusOr<fs::path> CacheDir() {
  fs::path dir;
  if (const char* env = std::getenv("RINGDB_NATIVE_CACHE_DIR")) {
    dir = env;
  } else {
    std::error_code ec;
    fs::path tmp = fs::temp_directory_path(ec);
    if (ec) tmp = "/tmp";
    dir = tmp / ("ringdb-native-cache-" + std::to_string(::getuid()));
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create native cache dir " +
                            dir.string() + ": " + ec.message());
  }
  return dir;
}

// Unique per (process, call) suffix for temp artifacts: pid alone is not
// enough — two threads of one process building the same program would
// collide on the temp names and could publish a corrupt artifact into
// the hash-keyed cache.
std::string TmpSuffix() {
  static std::atomic<uint64_t> counter{0};
  return ".tmp" + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

Status WriteFileAtomic(const fs::path& target, const std::string& content) {
  fs::path tmp = target;
  tmp += TmpSuffix();
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
  out.close();
  if (!out) {
    std::error_code ec;
    fs::remove(tmp, ec);
    return Status::Internal("cannot write " + tmp.string());
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return Status::Internal("cannot rename into " + target.string() +
                            ": " + ec.message());
  }
  return Status::Ok();
}

std::string ShellQuote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  return out + "'";
}

std::string FirstLines(const fs::path& file, size_t max_bytes) {
  std::ifstream in(file);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (content.size() > max_bytes) {
    content.resize(max_bytes);
    content += "...";
  }
  return content;
}

// Compiles `src` into `so` (via a temp name so concurrent builders of the
// same hash can only ever publish complete artifacts).
Status CompileSo(const std::string& cc, const fs::path& src,
                 const fs::path& so) {
  const std::string suffix = TmpSuffix();
  fs::path tmp_so = so;
  tmp_so += suffix;
  fs::path log = so;
  log += suffix + ".log";
  // -w: generated code compiles warning-free in spirit, but helper
  // functions a given module never calls would trip -Wunused-function.
  const std::string cmd = ShellQuote(cc) + " -O2 -fPIC -shared -w -x c " +
                          ShellQuote(src.string()) + " -o " +
                          ShellQuote(tmp_so.string()) + " 2> " +
                          ShellQuote(log.string());
  const int rc = std::system(cmd.c_str());
  if (rc != 0) {
    const std::string detail = FirstLines(log, 512);
    std::error_code ec;
    fs::remove(tmp_so, ec);
    fs::remove(log, ec);
    return Status::Internal("native compile failed (" + cc +
                            "): " + detail);
  }
  std::error_code ec;
  fs::remove(log, ec);
  fs::rename(tmp_so, so, ec);
  if (ec) {
    fs::remove(tmp_so, ec);
    return Status::Internal("cannot publish " + so.string() + ": " +
                            ec.message());
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::shared_ptr<const NativeModule>> NativeModule::Build(
    const compiler::TriggerProgram& program) {
  compiler::CodegenModule gen = compiler::GenerateModule(program);
  if (gen.emitted_statements == 0) {
    return Status::FailedPrecondition(
        "no emittable statements (lazy-domain program); interpreter only");
  }
  const std::string cc = FindCompiler();
  if (cc.empty()) {
    return Status::FailedPrecondition(
        "no host C compiler found (set RINGDB_CC or install cc)");
  }
  RINGDB_ASSIGN_OR_RETURN(fs::path dir, CacheDir());
  // Key on content hash + length: same program, same artifact.
  char key[64];
  std::snprintf(key, sizeof(key), "%016llx-%zu",
                static_cast<unsigned long long>(HashString(gen.source)),
                gen.source.size());
  const fs::path src = dir / (std::string(key) + ".c");
  const fs::path so = dir / (std::string(key) + ".so");

  std::error_code ec;
  const bool cached = fs::exists(so, ec);
  if (!cached) {
    RINGDB_RETURN_IF_ERROR(WriteFileAtomic(src, gen.source));
    RINGDB_RETURN_IF_ERROR(CompileSo(cc, src, so));
  }

  auto loaded = LoadAndResolve(so.string(), gen);
  if (!loaded.ok() && cached) {
    // The cache lied: the hash-keyed name promised a loadable module for
    // this exact source, but the artifact would not dlopen, failed the
    // ABI handshake, or is missing symbols (truncated or bit-rotted
    // file, cache shared with an incompatible build). Evict it and pay
    // the compile once — never surface a corrupt cache entry as an
    // engine-construction error.
    fs::remove(so, ec);
    RINGDB_RETURN_IF_ERROR(WriteFileAtomic(src, gen.source));
    RINGDB_RETURN_IF_ERROR(CompileSo(cc, src, so));
    loaded = LoadAndResolve(so.string(), gen);
  }
  if (!loaded.ok()) return loaded.status();
  std::shared_ptr<NativeModule> module = std::move(loaded).value();
  module->source_ = std::move(gen.source);
  return std::shared_ptr<const NativeModule>(std::move(module));
}

StatusOr<std::shared_ptr<NativeModule>> NativeModule::LoadAndResolve(
    const std::string& so_path, const compiler::CodegenModule& gen) {
  void* handle = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    const char* err = ::dlerror();
    return Status::Internal("dlopen(" + so_path +
                            ") failed: " + (err ? err : "?"));
  }
  auto module = std::shared_ptr<NativeModule>(new NativeModule());
  module->handle_ = handle;
  module->so_path_ = so_path;

  // ABI handshake before touching any statement symbol: a stale cached
  // artifact from an older ABI must be rejected, not executed.
  const auto* version =
      static_cast<const int32_t*>(::dlsym(handle, "rdb_abi_version"));
  const auto* layout =
      static_cast<const uint64_t*>(::dlsym(handle, "rdb_abi_layout"));
  if (version == nullptr || layout == nullptr ||
      static_cast<uint32_t>(*version) != RDB_ABI_VERSION ||
      *layout != RdbAbiLayout()) {
    return Status::Internal("native module ABI mismatch: " + so_path);
  }

  module->fns_.resize(gen.stmts.size());
  for (size_t t = 0; t < gen.stmts.size(); ++t) {
    module->fns_[t].resize(gen.stmts[t].size());
    for (size_t s = 0; s < gen.stmts[t].size(); ++s) {
      const compiler::CodegenStmt& cs = gen.stmts[t][s];
      if (!cs.emitted) continue;
      StmtFns fns;
      fns.plain = reinterpret_cast<RdbStmtFn>(
          ::dlsym(handle, cs.fn.c_str()));
      if (fns.plain == nullptr) {
        return Status::Internal("missing native symbol " + cs.fn);
      }
      if (!cs.grouped_fn.empty()) {
        fns.grouped = reinterpret_cast<RdbStmtFn>(
            ::dlsym(handle, cs.grouped_fn.c_str()));
        if (fns.grouped == nullptr) {
          return Status::Internal("missing native symbol " +
                                  cs.grouped_fn);
        }
      }
      if (!cs.win_fn.empty()) {
        fns.col_plain = reinterpret_cast<RdbColStmtFn>(
            ::dlsym(handle, cs.win_fn.c_str()));
        if (fns.col_plain == nullptr) {
          return Status::Internal("missing native symbol " + cs.win_fn);
        }
      }
      if (!cs.grouped_win_fn.empty()) {
        if (cs.grouped_win_fn == cs.win_fn) {
          fns.col_grouped = fns.col_plain;
        } else {
          fns.col_grouped = reinterpret_cast<RdbColStmtFn>(
              ::dlsym(handle, cs.grouped_win_fn.c_str()));
          if (fns.col_grouped == nullptr) {
            return Status::Internal("missing native symbol " +
                                    cs.grouped_win_fn);
          }
        }
      }
      fns.prefer_native = cs.prefer_native;
      fns.grouped_prefer_native = cs.grouped_prefer_native;
      module->fns_[t][s] = fns;
      ++module->native_statements_;
    }
  }
  return module;
}

NativeModule::~NativeModule() {
  if (handle_ != nullptr) ::dlclose(handle_);
}

}  // namespace runtime
}  // namespace ringdb
