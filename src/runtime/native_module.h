// Runtime compilation of generated trigger modules: take the C source
// emitted by compiler::GenerateModule, compile it with the host C
// compiler (`cc -O2 -shared -fPIC`), dlopen the result, and resolve one
// function pointer per emitted statement variant.
//
// Shared objects are cached by source hash under a per-user build
// directory, so repeated engine construction for the same query (every
// shard, every test run, every process restart) pays the external
// compiler exactly once and then just dlopens. The cache is
// crash/race-safe: artifacts are written to temp names and renamed into
// place atomically.
//
// Environment knobs:
//   RINGDB_CC                - host compiler override. An empty value or a
//                              path that cannot be executed disables the
//                              backend (Build returns an error and the
//                              engine falls back to the interpreter); used
//                              by tests/CI to simulate compiler-less hosts.
//   RINGDB_NATIVE_CACHE_DIR  - cache directory override (default:
//                              $TMPDIR/ringdb-native-cache-<uid>).
//
// Build() never aborts on environmental failure — no compiler, read-only
// filesystem, dlopen errors all surface as Status so the caller can fall
// back gracefully. ABI drift between the host and an (possibly stale,
// cached) module is caught by the rdb_abi_version / rdb_abi_layout
// handshake exported by every module.

#ifndef RINGDB_RUNTIME_NATIVE_MODULE_H_
#define RINGDB_RUNTIME_NATIVE_MODULE_H_

#include <memory>
#include <string>
#include <vector>

#include "compiler/codegen_c.h"
#include "compiler/ir.h"
#include "runtime/native_abi.h"
#include "util/status.h"

namespace ringdb {
namespace runtime {

class NativeModule {
 public:
  // Per-statement native entry points; null means interpreter fallback.
  // The prefer flags carry the emitter's static cost-model verdict per
  // variant (compiler::CodegenStmt); the compiled executor's profile-
  // guided selection starts from them.
  struct StmtFns {
    RdbStmtFn plain = nullptr;
    RdbStmtFn grouped = nullptr;
    // Columnar-window entry points (null for non-direct-add statements,
    // which keep per-firing dispatch). col_grouped aliases col_plain when
    // the grouped rhs folds nothing, mirroring grouped_fn == fn.
    RdbColStmtFn col_plain = nullptr;
    RdbColStmtFn col_grouped = nullptr;
    bool prefer_native = true;
    bool grouped_prefer_native = true;
  };

  // Emits, compiles, caches, and loads the module for `program`. Errors
  // (no emittable statements, no host compiler, compile/dlopen failure,
  // ABI mismatch) are returned, never fatal.
  static StatusOr<std::shared_ptr<const NativeModule>> Build(
      const compiler::TriggerProgram& program);

  ~NativeModule();
  NativeModule(const NativeModule&) = delete;
  NativeModule& operator=(const NativeModule&) = delete;

  // fns(t, s) for program.triggers[t].statements[s].
  const StmtFns& fns(size_t trigger, size_t stmt) const {
    return fns_[trigger][stmt];
  }
  size_t native_statements() const { return native_statements_; }
  const std::string& so_path() const { return so_path_; }
  const std::string& source() const { return source_; }

 private:
  NativeModule() = default;

  // dlopen + ABI handshake + per-statement symbol resolution for one
  // on-disk artifact. Split from Build so a failing *cached* artifact
  // (truncated, bit-rotted, or from an older ABI) can be evicted and
  // rebuilt instead of surfacing as a hard error.
  static StatusOr<std::shared_ptr<NativeModule>> LoadAndResolve(
      const std::string& so_path, const compiler::CodegenModule& gen);

  void* handle_ = nullptr;  // dlclosed by the destructor
  std::vector<std::vector<StmtFns>> fns_;
  size_t native_statements_ = 0;
  std::string so_path_;
  std::string source_;
};

}  // namespace runtime
}  // namespace ringdb

#endif  // RINGDB_RUNTIME_NATIVE_MODULE_H_
