#include "runtime/viewmap.h"

#include <sstream>

namespace ringdb {
namespace runtime {

void ViewMap::Add(const Key& key, Numeric delta) {
  RINGDB_CHECK_EQ(key.size(), arity_);
  if (delta.IsZero()) return;
  auto [it, inserted] = entries_.try_emplace(key, delta);
  if (!inserted) {
    it->second += delta;
    if (it->second.IsZero() && !keep_zeros_) {
      entries_.erase(it);
      for (Index& index : indexes_) {
        auto row = index.rows.find(SubKey(index, key));
        if (row != index.rows.end()) {
          row->second.erase(key);
          if (row->second.empty()) index.rows.erase(row);
        }
      }
    }
    return;
  }
  for (Index& index : indexes_) {
    index.rows[SubKey(index, key)].insert(key);
  }
}

void ViewMap::EnsureEntry(const Key& key, Numeric value) {
  RINGDB_CHECK_EQ(key.size(), arity_);
  auto [it, inserted] = entries_.try_emplace(key, value);
  if (!inserted) return;
  for (Index& index : indexes_) {
    index.rows[SubKey(index, key)].insert(key);
  }
}

int ViewMap::EnsureIndex(std::vector<size_t> positions) {
  for (size_t i = 1; i < positions.size(); ++i) {
    RINGDB_CHECK_LT(positions[i - 1], positions[i]);
  }
  for (size_t p : positions) RINGDB_CHECK_LT(p, arity_);
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i].positions == positions) return static_cast<int>(i);
  }
  Index index;
  index.positions = std::move(positions);
  index.rows.reserve(entries_.size());
  for (const auto& [key, m] : entries_) {
    index.rows[SubKey(index, key)].insert(key);
  }
  indexes_.push_back(std::move(index));
  return static_cast<int>(indexes_.size() - 1);
}

void ViewMap::ForEachMatching(
    int index_id, const Key& subkey,
    const std::function<void(const Key&, Numeric)>& fn) const {
  const Index& index = indexes_[static_cast<size_t>(index_id)];
  RINGDB_CHECK_EQ(subkey.size(), index.positions.size());
  auto row = index.rows.find(subkey);
  if (row == index.rows.end()) return;
  for (const Key& key : row->second) {
    auto it = entries_.find(key);
    if (it != entries_.end()) fn(key, it->second);
  }
}

void ViewMap::ForEach(
    const std::function<void(const Key&, Numeric)>& fn) const {
  for (const auto& [key, m] : entries_) fn(key, m);
}

size_t ViewMap::ApproxBytes() const {
  size_t per_entry = sizeof(Key) + arity_ * sizeof(Value) + sizeof(Numeric) +
                     2 * sizeof(void*);
  size_t bytes = entries_.size() * per_entry;
  for (const Index& index : indexes_) {
    bytes += index.rows.size() *
             (sizeof(Key) + index.positions.size() * sizeof(Value) +
              2 * sizeof(void*));
    for (const auto& [sub, rows] : index.rows) {
      bytes += rows.size() * (sizeof(Key) + arity_ * sizeof(Value));
    }
  }
  return bytes;
}

std::string ViewMap::ToString() const {
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (const auto& [key, m] : entries_) {
    if (!first) out << ", ";
    first = false;
    out << '[';
    for (size_t i = 0; i < key.size(); ++i) {
      if (i) out << ", ";
      out << key[i].ToString();
    }
    out << "] -> " << m.ToString();
  }
  out << '}';
  return out.str();
}

}  // namespace runtime
}  // namespace ringdb
