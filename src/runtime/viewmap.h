// Materialized view storage: positional-key hash maps with default 0,
// zero-erasure (so the support is always exactly the nonzero entries),
// and incrementally maintained secondary indexes over key-position
// subsets (used by trigger statements that loop over the entries matching
// the update's bound key positions — this keeps per-update work
// proportional to the number of *affected* values, per Theorem 7.1).

#ifndef RINGDB_RUNTIME_VIEWMAP_H_
#define RINGDB_RUNTIME_VIEWMAP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/check.h"
#include "util/hash.h"
#include "util/numeric.h"
#include "util/value.h"

namespace ringdb {
namespace runtime {

using Key = std::vector<Value>;

struct KeyHash {
  size_t operator()(const Key& k) const noexcept {
    size_t h = 0x9ae16a3b2f90404fULL;
    for (const Value& v : k) h = HashCombine(h, v.Hash());
    return h;
  }
};

class ViewMap {
 public:
  using Entries = std::unordered_map<Key, Numeric, KeyHash>;

  explicit ViewMap(size_t arity) : arity_(arity) {}

  size_t arity() const { return arity_; }
  size_t size() const { return entries_.size(); }

  // Pre-sizes the entry table for at least `n` entries (hint from the
  // batch path: current size + delta-GMR size), avoiding rehash storms on
  // large batches. Never shrinks.
  void Reserve(size_t n) { entries_.reserve(n); }

  // Lazily initialized views keep zero-valued entries: their entry set is
  // the *initialized key domain* (paper footnote 2), which self-loop
  // maintenance statements must enumerate even where the value is 0.
  void SetKeepZeros() { keep_zeros_ = true; }
  bool keep_zeros() const { return keep_zeros_; }

  bool Contains(const Key& key) const { return entries_.contains(key); }

  // Inserts an entry with the given value (even zero) if absent; used to
  // mark a lazily initialized key. No-op when the key exists.
  void EnsureEntry(const Key& key, Numeric value);

  Numeric At(const Key& key) const {
    auto it = entries_.find(key);
    return it == entries_.end() ? kZero : it->second;
  }

  // entry[key] += delta, erasing on cancellation to zero; all registered
  // indexes are maintained.
  void Add(const Key& key, Numeric delta);

  const Entries& entries() const { return entries_; }

  // Registers (idempotently) an index over the given key positions;
  // returns its id. Positions must be sorted and within arity.
  int EnsureIndex(std::vector<size_t> positions);

  // Invokes fn(key, multiplicity) for every entry whose values at the
  // index's positions equal `subkey` (values in position order).
  void ForEachMatching(int index_id, const Key& subkey,
                       const std::function<void(const Key&, Numeric)>& fn)
      const;

  void ForEach(const std::function<void(const Key&, Numeric)>& fn) const;

  // Estimated heap bytes (entries + index buckets), for the memory
  // comparisons of the factorization experiment (E3).
  size_t ApproxBytes() const;

  std::string ToString() const;

 private:
  struct Index {
    std::vector<size_t> positions;
    std::unordered_map<Key, std::unordered_set<Key, KeyHash>, KeyHash> rows;
  };

  Key SubKey(const Index& index, const Key& full) const {
    Key sub;
    sub.reserve(index.positions.size());
    for (size_t p : index.positions) sub.push_back(full[p]);
    return sub;
  }

  size_t arity_;
  bool keep_zeros_ = false;
  Entries entries_;
  std::vector<Index> indexes_;
};

}  // namespace runtime
}  // namespace ringdb

#endif  // RINGDB_RUNTIME_VIEWMAP_H_
