// Historical name for the view store. The original ViewMap — nested
// std::unordered_map entries plus map<Key, set<Key>> indexes — grew into
// the flat open-addressing ViewTable (runtime/view_table.h); this alias
// keeps the runtime-facing name stable.

#ifndef RINGDB_RUNTIME_VIEWMAP_H_
#define RINGDB_RUNTIME_VIEWMAP_H_

#include "runtime/view_table.h"

namespace ringdb {
namespace runtime {

using ViewMap = ViewTable;

}  // namespace runtime
}  // namespace ringdb

#endif  // RINGDB_RUNTIME_VIEWMAP_H_
