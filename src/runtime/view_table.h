// Flat open-addressing storage for materialized views.
//
// A ViewTable is a positional-key hash map with default 0, zero-erasure
// (the support is exactly the nonzero entries unless keep_zeros is set),
// and incrementally maintained secondary indexes over key-position
// subsets — the store behind every trigger firing (Theorem 7.1 keeps
// per-update work proportional to the affected values, so the constant
// factor of a single probe is the whole ballgame).
//
// Layout (see DESIGN.md "View storage"):
//  - entries_: one dense array of Entry{cached 64-bit hash, Numeric,
//    key}. Keys of arity <= kInlineValues live in-slot; larger keys live
//    in a per-view arena of fixed-size blocks with a free list.
//  - slots_: power-of-two open-addressing table of 32-bit entry ids,
//    linear probing, tombstone-free backshift deletion.
//  - indexes_: subkey-hash -> vector of 32-bit entry ids. No Key copies;
//    probes verify candidates against the entry key (collisions share a
//    row).
// Deletion swap-moves the last entry into the hole and patches its slot
// and index rows, keeping ids dense. While an iteration is in flight,
// erases are deferred: the entry is flagged pending_erase (reads and
// iteration treat it as absent) and structurally removed before the next
// mutation, so callbacks may write to the view they are iterating.
//
// ForEach/ForEachMatching are templated on the callback: the interpreter
// inner loop probes without std::function type erasure. Callbacks get a
// KeyView into entry storage; a write to the same view inside the
// callback invalidates it, so copy needed values out before mutating
// (the interpreter binds loop variables before recursing, and defers its
// own emissions past the loops, so it conforms).

#ifndef RINGDB_RUNTIME_VIEW_TABLE_H_
#define RINGDB_RUNTIME_VIEW_TABLE_H_

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/check.h"
#include "util/hash.h"
#include "util/numeric.h"
#include "util/value.h"

namespace ringdb {
namespace runtime {

using Key = std::vector<Value>;

// Order-dependent hash over a positional key; shared by the entry table,
// the index subkey rows, and the unordered containers that still key on
// full Keys (e.g. lazy slice sets).
inline uint64_t HashValues(const Value* v, size_t n) {
  uint64_t h = 0x9ae16a3b2f90404fULL;
  for (size_t i = 0; i < n; ++i) {
    h = HashCombine(h, v[i].Hash());
  }
  return h;
}

struct KeyHash {
  size_t operator()(const Key& k) const noexcept {
    return static_cast<size_t>(HashValues(k.data(), k.size()));
  }
};

// Non-owning view of an entry's key. Valid until the owning table is
// mutated; materialize with ToKey() to outlive that.
class KeyView {
 public:
  KeyView(const Value* data, size_t size) : data_(data), size_(size) {}
  KeyView(const Key& key) : data_(key.data()), size_(key.size()) {}  // NOLINT

  size_t size() const { return size_; }
  const Value& operator[](size_t i) const { return data_[i]; }
  const Value* begin() const { return data_; }
  const Value* end() const { return data_ + size_; }

  Key ToKey() const { return Key(data_, data_ + size_); }

 private:
  const Value* data_;
  size_t size_;
};

class ViewTable {
 public:
  // Keys up to this arity are stored inline in the entry; larger keys go
  // through the per-view arena.
  static constexpr size_t kInlineValues = 2;

  explicit ViewTable(size_t arity) : arity_(arity) {}

  ViewTable(ViewTable&&) = default;
  ViewTable& operator=(ViewTable&&) = default;
  ViewTable(const ViewTable&) = delete;
  ViewTable& operator=(const ViewTable&) = delete;

  size_t arity() const { return arity_; }
  size_t size() const { return entries_.size() - pending_erases_.size(); }

  // Pre-sizes the slot table and entry array for at least `n` entries
  // (hint from the batch path: current size + delta-GMR size), avoiding
  // rehash storms on large batches. Never shrinks.
  void Reserve(size_t n);

  // Lazily initialized views keep zero-valued entries: their entry set is
  // the *initialized key domain* (paper footnote 2), which self-loop
  // maintenance statements must enumerate even where the value is 0.
  void SetKeepZeros() { keep_zeros_ = true; }
  bool keep_zeros() const { return keep_zeros_; }

  bool Contains(const Key& key) const;

  Numeric At(const Key& key) const { return At(key.data(), key.size()); }
  Numeric At(const Value* key, size_t n) const {
    const uint32_t id = FindEntry(key, n);
    return id == kNoEntry ? kZero : entries_[id].value;
  }

  // entry[key] += delta, erasing on cancellation to zero; all registered
  // indexes are maintained. The pointer overload lets callers keep keys
  // in flat reused buffers (the interpreter's emission path) instead of
  // allocating a Key per call.
  void Add(const Key& key, Numeric delta) {
    Add(key.data(), key.size(), delta);
  }
  void Add(const Value* key, size_t n, Numeric delta);

  // Batched Add over a column span: `keys` holds `count` keys flattened
  // into arity-sized chunks (the layout of the interpreter's emission
  // buffer and of a columnar window's gathered target keys), `deltas`
  // one Numeric per key. Semantically identical to calling Add per
  // element in order; the batch hoists the pending-erase sweep out of
  // the loop, hashes all keys up front into a reused scratch column, and
  // prefetches each key's slot-table cache line before probing it.
  void AddSpan(const Value* keys, const Numeric* deltas, size_t count);

  // Inserts an entry with the given value (even zero) if absent; used to
  // mark a lazily initialized key. No-op when the key exists.
  void EnsureEntry(const Key& key, Numeric value);

  // Registers (idempotently) an index over the given key positions;
  // returns its id. Positions must be sorted and within arity.
  int EnsureIndex(std::vector<size_t> positions);

  // Invokes fn(key, multiplicity) for every entry whose values at the
  // index's positions equal `subkey` (values in position order). Entries
  // added by fn to this view are not visited (snapshot bound); entries
  // erased by fn are deferred-erased and skipped from then on.
  template <typename Fn>
  void ForEachMatching(int index_id, const Key& subkey, Fn&& fn) const {
    const Index& index = indexes_[static_cast<size_t>(index_id)];
    RINGDB_CHECK_EQ(subkey.size(), index.positions.size());
    auto row_it =
        index.rows.find(HashValues(subkey.data(), subkey.size()));
    if (row_it == index.rows.end()) return;
    const std::vector<uint32_t>& row = row_it->second;
    IterGuard guard(this);
    // Snapshot bound: appends by fn land past n and are not visited. The
    // row reference is stable (unordered_map) and indexing re-reads the
    // data pointer, so growth during fn is safe.
    const size_t n = row.size();
    for (size_t i = 0; i < n; ++i) {
      const Entry& e = entries_[row[i]];
      if (e.pending_erase) continue;
      const Value* ek = EntryKey(e);
      bool match = true;
      for (size_t p = 0; p < index.positions.size() && match; ++p) {
        match = ek[index.positions[p]] == subkey[p];
      }
      if (match) fn(KeyView(ek, arity_), e.value);
    }
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    IterGuard guard(this);
    const size_t n = entries_.size();
    for (size_t i = 0; i < n; ++i) {
      const Entry& e = entries_[i];
      if (e.pending_erase) continue;
      fn(KeyView(EntryKey(e), arity_), e.value);
    }
  }

  // Estimated heap bytes: slot table, entry array, key arena, string
  // payloads behind key values, and index storage (bucket arrays, row
  // nodes, id vectors). Used by the memory comparisons of the
  // factorization experiment (E3) and the engine's approx_bytes gauge.
  // O(#indexes), not O(#entries): the string and index-row components
  // are maintained incrementally on insert/erase/index churn (a live
  // gauge instead of a recount walk, so stats polling stays cheap on
  // million-entry views). Debug builds cross-check against the walk.
  size_t ApproxBytes() const;
  // The original full-recount walk; the incremental accounting must
  // agree with it exactly (debug ApproxBytes asserts so, and the
  // randomized view_table tests call both).
  size_t ApproxBytesSlow() const;

  std::string ToString() const;

 private:
  static constexpr uint32_t kEmptySlot = UINT32_MAX;
  static constexpr uint32_t kNoEntry = UINT32_MAX;

  struct Entry {
    uint64_t hash = 0;
    Numeric value = kZero;
    uint32_t block = 0;          // arena block, used when arity > inline
    bool pending_erase = false;  // deferred zero-cancellation erase
    std::array<Value, kInlineValues> ikey;  // in-slot key (arity <= inline)
  };

  struct Index {
    std::vector<size_t> positions;
    // subkey hash -> ids of entries whose key matches at `positions`.
    // Hash collisions share a row; probes verify against the entry key.
    std::unordered_map<uint64_t, std::vector<uint32_t>> rows;
  };

  // Tracks iteration nesting so structural mutation (entry moves, slot
  // backshift, row compaction) can be deferred while callbacks run.
  class IterGuard {
   public:
    explicit IterGuard(const ViewTable* t) : t_(t) { ++t_->iter_depth_; }
    ~IterGuard() { --t_->iter_depth_; }

   private:
    const ViewTable* t_;
  };
  friend class IterGuard;

  bool inline_keys() const { return arity_ <= kInlineValues; }

  const Value* EntryKey(const Entry& e) const {
    return inline_keys() ? e.ikey.data() : arena_.data() + e.block * arity_;
  }

  uint64_t SubHash(const Index& index, const Value* key) const {
    uint64_t h = 0x9ae16a3b2f90404fULL;
    for (size_t p : index.positions) h = HashCombine(h, key[p].Hash());
    return h;
  }

  // Id of the live entry with this key, or kNoEntry.
  uint32_t FindEntry(const Value* key, size_t n) const;
  uint32_t FindEntryHashed(const Value* key, size_t n, uint64_t hash) const;

  // Add with the key's hash already computed (the AddSpan batch path);
  // does not sweep pending erases — the caller has.
  void AddHashed(const Value* key, uint64_t hash, Numeric delta);

  // Clears entry `id`'s deferred erase (it counts as live again).
  void Unpend(uint32_t id);

  // Inserts a new entry (key must be absent) and returns its id.
  uint32_t AppendEntry(const Value* key, uint64_t hash, Numeric value);

  // Removes entry `id` from slots and index rows, frees its key storage,
  // and swap-moves the last entry into the hole (patching its slot and
  // rows). Defers onto pending_erases_ while iterating.
  void EraseEntry(uint32_t id);
  void EraseEntryNow(uint32_t id);
  void ApplyPendingErases();

  void EraseSlotAt(size_t slot);           // backshift deletion
  size_t SlotOf(uint32_t id) const;        // slot holding this entry id
  void RemoveFromRow(Index* index, uint64_t subhash, uint32_t id);
  void GrowSlots(size_t min_entries);

  // Incremental ApproxBytes accounting. string_bytes_: heap payloads
  // behind stored string key values (entries own copies, so capacities
  // are measured on the stored strings, live + pending-erase alike).
  // index_row_bytes_: per-row node overhead + id-vector capacities
  // across all indexes (bucket arrays are added at read time — they are
  // O(#indexes) to query but change on rehash, which is invisible from
  // the mutation sites).
  size_t string_bytes_ = 0;
  size_t index_row_bytes_ = 0;

  size_t arity_;
  bool keep_zeros_ = false;
  std::vector<uint32_t> slots_;  // power-of-two; kEmptySlot = free
  std::vector<Entry> entries_;   // dense, ids stable except swap-erase
  std::vector<Value> arena_;     // arity_-sized blocks for large keys
  std::vector<uint32_t> free_blocks_;
  std::vector<uint32_t> pending_erases_;
  std::vector<Index> indexes_;
  // AddSpan's per-batch hash column (one 64-bit hash per spanned key),
  // reused across windows. Counted by ApproxBytes: it is the view-side
  // buffer of the columnar window path and the accounting invariant
  // (ApproxBytes == ApproxBytesSlow in debug) must cover it.
  std::vector<uint64_t> span_hash_scratch_;
  mutable int iter_depth_ = 0;
};

// Deprecated spelling from the nested-map era (the original ViewMap was
// rebuilt into this flat store in PR 2; the runtime/viewmap.h shim that
// kept the old name alive is retired). New code says ViewTable.
using ViewMap [[deprecated("use ViewTable")]] = ViewTable;

}  // namespace runtime
}  // namespace ringdb

#endif  // RINGDB_RUNTIME_VIEW_TABLE_H_
