// The NC0C trigger interpreter: executes a compiled TriggerProgram against
// materialized ViewMaps. Apply(update) runs the matching trigger's
// statements (ordered by descending target-view degree, so each level
// reads pre-update values of the deeper levels — Equation (1) of §1.1).
//
// The interpreter counts arithmetic operations and touched entries so the
// benchmarks can verify the constant-work-per-maintained-value claim
// (Theorem 7.1 / the NC0 property) empirically.

#ifndef RINGDB_RUNTIME_INTERPRETER_H_
#define RINGDB_RUNTIME_INTERPRETER_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "compiler/ir.h"
#include "ring/database.h"
#include "runtime/viewmap.h"
#include "util/status.h"
#include "util/symbol.h"

namespace ringdb {
namespace runtime {

class Executor {
 public:
  struct Stats {
    uint64_t updates = 0;
    uint64_t statements_run = 0;
    uint64_t entries_touched = 0;   // view entries incremented
    uint64_t arithmetic_ops = 0;    // +, *, comparisons in rhs evaluation
    uint64_t init_evaluations = 0;  // lazy first-touch initializations
  };

  explicit Executor(compiler::TriggerProgram program);

  // Fires the trigger for the update; relations without triggers are
  // no-ops (the query does not depend on them).
  Status Apply(const ring::Update& update);

  const compiler::TriggerProgram& program() const { return program_; }
  const ViewMap& view(int id) const {
    return views_[static_cast<size_t>(id)];
  }
  const ViewMap& root() const {
    return views_[static_cast<size_t>(program_.root_view)];
  }

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

  // Total heap footprint of all views (experiment E3).
  size_t ApproxBytes() const;

 private:
  struct LoopPlan {
    int index_id = -1;                  // -1: full scan
    std::vector<size_t> bound_positions;  // positions probed via the index
    std::vector<size_t> binding_positions;  // positions that bind vars
    std::vector<Symbol> binding_vars;
    // Lazy-driver classification: slice_domain loops (self maintenance)
    // enumerate the view's initialized slice subkeys; non-slice loops
    // over lazy views first ensure the probed slice is initialized.
    bool slice_domain = false;
    bool lazy_driver = false;
  };
  struct StatementPlan {
    std::vector<LoopPlan> loops;
  };

  using Bindings = std::unordered_map<Symbol, Value>;
  using Emission = std::pair<Key, Numeric>;

  void RunStatement(const compiler::Statement& stmt,
                    const StatementPlan& plan,
                    const std::vector<Value>& params);
  void RunLoops(const compiler::Statement& stmt, const StatementPlan& plan,
                size_t loop_index, const std::vector<Value>& params,
                Bindings* bindings, std::vector<Emission>* emissions);
  void Emit(const compiler::Statement& stmt,
            const std::vector<Value>& params, const Bindings& bindings,
            std::vector<Emission>* emissions);

  // Lazy domain maintenance (paper footnote 2): the first use of a slice
  // of a lazy_init view evaluates the view definition with the slice key
  // bound against the base database, materializing the whole slice.
  void InitializeLazySlice(int view_id, const Key& slice_key);
  // Projects a full key onto the view's slice positions and initializes
  // the slice if needed.
  void EnsureSliceFor(int view_id, const Key& full_key);
  Numeric ProbeView(int view_id, const Key& key);
  void AddToView(int view_id, const Key& key, Numeric delta);

  Value ResolveKey(const compiler::KeyRef& ref,
                   const std::vector<Value>& params,
                   const Bindings& bindings) const;
  Numeric EvalNumeric(const compiler::TExpr& e,
                      const std::vector<Value>& params,
                      const Bindings& bindings);
  Value EvalValue(const compiler::TExpr& e, const std::vector<Value>& params,
                  const Bindings& bindings);

  compiler::TriggerProgram program_;
  // Base database, maintained only when some view needs lazy
  // initialization (the pure view hierarchy never reads it otherwise).
  bool has_lazy_views_ = false;
  ring::Database base_db_;
  std::vector<ViewMap> views_;
  // Initialized slice subkeys per lazy view (empty sets for non-lazy).
  std::vector<std::unordered_set<Key, KeyHash>> slices_;
  // trigger index per (relation, sign): parallel to program_.triggers.
  std::unordered_map<uint64_t, size_t> trigger_index_;
  std::vector<std::vector<StatementPlan>> plans_;  // per trigger
  Stats stats_;
};

}  // namespace runtime
}  // namespace ringdb

#endif  // RINGDB_RUNTIME_INTERPRETER_H_
