// The NC0C trigger interpreter: executes a compiled TriggerProgram against
// materialized ViewMaps. Apply(update) runs the matching trigger's
// statements (ordered by descending target-view degree, so each level
// reads pre-update values of the deeper levels — Equation (1) of §1.1).
//
// The interpreter counts arithmetic operations and touched entries so the
// benchmarks can verify the constant-work-per-maintained-value claim
// (Theorem 7.1 / the NC0 property) empirically.

#ifndef RINGDB_RUNTIME_INTERPRETER_H_
#define RINGDB_RUNTIME_INTERPRETER_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "compiler/ir.h"
#include "ring/database.h"
#include "runtime/viewmap.h"
#include "util/status.h"
#include "util/symbol.h"

namespace ringdb {
namespace runtime {

class Executor {
 public:
  struct Stats {
    uint64_t updates = 0;           // input tuple-units (|multiplicity|)
    uint64_t statements_run = 0;
    uint64_t entries_touched = 0;   // view entries incremented
    uint64_t arithmetic_ops = 0;    // +, *, comparisons in rhs evaluation
    uint64_t init_evaluations = 0;  // lazy first-touch initializations
    uint64_t delta_entries = 0;     // coalesced delta-GMR entries applied
    uint64_t scaled_firings = 0;    // linear triggers fired once for m > 1
  };

  explicit Executor(compiler::TriggerProgram program);

  // Fires the trigger for the update; relations without triggers are
  // no-ops (the query does not depend on them).
  Status Apply(const ring::Update& update) {
    return ApplyDelta(update.relation, update.values, update.SignedUnit());
  }

  // Applies one coalesced delta-GMR entry: the net effect of inserting
  // (multiplicity > 0) or deleting (multiplicity < 0) |multiplicity|
  // copies of the tuple. Multiplicity-linear triggers (see compiler::
  // Trigger) fire once with emissions scaled by |multiplicity|; nonlinear
  // triggers fall back to |multiplicity| unit firings, each reading the
  // state left by the previous one. Multiplicity must be integral (batch
  // deltas are sums of ±1 events) and may be zero (no-op).
  Status ApplyDelta(Symbol relation, const std::vector<Value>& values,
                    Numeric multiplicity);

  // One delta-GMR entry of a batch, pointing into caller-owned storage.
  struct Delta {
    const std::vector<Value>* values;
    Numeric multiplicity;
  };

  // Applies a relation's delta GMR (same net semantics as calling
  // ApplyDelta per entry, in order). For multiplicity-linear triggers the
  // statements additionally run *statement-major with grouping*: entries
  // that agree on a statement's shape params (those resolved into loop
  // probes, target keys, or view-lookup keys) share one execution whose
  // emission scale is the group's accumulated coefficient — multiplicity
  // times the product of the rhs's pure scalar-multiplier params. This is
  // the batch delta rule: e.g. the revenue query's per-lineitem join loop
  // runs once per distinct order key in the batch instead of once per
  // lineitem event. Sound because linearity makes every firing read only
  // views this trigger never writes, so reordering and merging firings
  // cannot change what they observe.
  Status ApplyDeltaBatch(Symbol relation, const std::vector<Delta>& deltas);

  // Pre-sizes every view's entry table for `additional` more entries (the
  // batch path passes the delta-GMR entry count as the hint).
  void ReserveForBatch(size_t additional);

  const compiler::TriggerProgram& program() const { return program_; }
  const ViewMap& view(int id) const {
    return views_[static_cast<size_t>(id)];
  }
  const ViewMap& root() const {
    return views_[static_cast<size_t>(program_.root_view)];
  }

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

  // Total heap footprint of all views (experiment E3).
  size_t ApproxBytes() const;

 private:
  struct LoopPlan {
    int index_id = -1;                  // -1: full scan
    std::vector<size_t> bound_positions;  // positions probed via the index
    std::vector<size_t> binding_positions;  // positions that bind vars
    std::vector<Symbol> binding_vars;
    // Lazy-driver classification: slice_domain loops (self maintenance)
    // enumerate the view's initialized slice subkeys; non-slice loops
    // over lazy views first ensure the probed slice is initialized.
    bool slice_domain = false;
    bool lazy_driver = false;
  };
  struct StatementPlan {
    std::vector<LoopPlan> loops;
    // Batch grouping (multiplicity-linear triggers only). Entries whose
    // update params agree at shape_params share one statement execution.
    // foldable_params are rhs factors that are bare param leaves; their
    // values multiply into the group coefficient and grouped_rhs is the
    // rhs with those leaves removed. groupable is false when the shape
    // covers every param (coalescing already merged identical tuples).
    bool groupable = false;
    std::vector<size_t> shape_params;
    std::vector<size_t> foldable_params;
    compiler::TExprPtr grouped_rhs;
  };

  using Bindings = std::unordered_map<Symbol, Value>;
  using Emission = std::pair<Key, Numeric>;

  // ApplyDelta after relation/arity validation (batch entries are
  // validated once per batch, not per entry).
  void ApplyDeltaUnchecked(Symbol relation, const std::vector<Value>& values,
                           Numeric multiplicity);
  // Runs every statement of the trigger once; emissions are scaled by
  // `scale` (1 for unit firings).
  void FireTrigger(size_t trigger_idx, const std::vector<Value>& params,
                   Numeric scale);
  // Runs one statement with the given rhs (stmt.rhs normally,
  // plan.grouped_rhs for grouped batch execution); emissions scale by
  // `scale`.
  void RunStatement(const compiler::Statement& stmt,
                    const StatementPlan& plan,
                    const std::vector<Value>& params, Numeric scale,
                    const compiler::TExpr& rhs);
  // Statement-major grouped execution of a linear trigger over same-sign
  // delta entries (see ApplyDeltaBatch).
  void RunLinearTriggerBatch(size_t trigger_idx,
                             const std::vector<Delta>& deltas);
  void BuildGroupingPlan(const compiler::Trigger& trigger,
                         const compiler::Statement& stmt,
                         StatementPlan* plan);
  void RunLoops(const compiler::Statement& stmt, const StatementPlan& plan,
                size_t loop_index, const std::vector<Value>& params,
                const compiler::TExpr& rhs, Bindings* bindings,
                std::vector<Emission>* emissions);
  void Emit(const compiler::Statement& stmt,
            const std::vector<Value>& params, const compiler::TExpr& rhs,
            const Bindings& bindings, std::vector<Emission>* emissions);

  // Lazy domain maintenance (paper footnote 2): the first use of a slice
  // of a lazy_init view evaluates the view definition with the slice key
  // bound against the base database, materializing the whole slice.
  void InitializeLazySlice(int view_id, const Key& slice_key);
  // Projects a full key onto the view's slice positions and initializes
  // the slice if needed.
  void EnsureSliceFor(int view_id, const Key& full_key);
  Numeric ProbeView(int view_id, const Key& key);
  void AddToView(int view_id, const Key& key, Numeric delta);

  Value ResolveKey(const compiler::KeyRef& ref,
                   const std::vector<Value>& params,
                   const Bindings& bindings) const;
  Numeric EvalNumeric(const compiler::TExpr& e,
                      const std::vector<Value>& params,
                      const Bindings& bindings);
  Value EvalValue(const compiler::TExpr& e, const std::vector<Value>& params,
                  const Bindings& bindings);

  compiler::TriggerProgram program_;
  // Base database, maintained only when some view needs lazy
  // initialization (the pure view hierarchy never reads it otherwise).
  bool has_lazy_views_ = false;
  ring::Database base_db_;
  std::vector<ViewMap> views_;
  // Initialized slice subkeys per lazy view (empty sets for non-lazy).
  std::vector<std::unordered_set<Key, KeyHash>> slices_;
  // trigger index per (relation, sign): parallel to program_.triggers.
  std::unordered_map<uint64_t, size_t> trigger_index_;
  std::vector<std::vector<StatementPlan>> plans_;  // per trigger
  // Scratch buffers reused across statement executions (the batch path
  // fires thousands of statements per call; per-firing allocation of the
  // binding map and emission buffer dominated the interpreter profile).
  Bindings bindings_scratch_;
  std::vector<Emission> emissions_scratch_;
  // Shared "1" rhs for grouped statements whose whole rhs folded away.
  compiler::TExprPtr foldable_empty_rhs_;
  Stats stats_;
};

}  // namespace runtime
}  // namespace ringdb

#endif  // RINGDB_RUNTIME_INTERPRETER_H_
