// The NC0C trigger interpreter: executes a compiled TriggerProgram against
// materialized ViewTables. Apply(update) runs the matching trigger's
// statements (ordered by descending target-view degree, so each level
// reads pre-update values of the deeper levels — Equation (1) of §1.1).
//
// Statements run in their lowered bytecode form (compiler/lower.h): loop
// variables live in a flat Value frame indexed by slot, every key the
// statement builds comes from a pre-resolved SlotRef template into a
// reused scratch buffer, and the rhs is a postfix opcode stream executed
// by a tight dispatch loop over a small register stack. The statement
// inner loop performs no Symbol lookups, no expression-tree recursion,
// and no per-emission allocation.
//
// The interpreter counts arithmetic operations and touched entries so the
// benchmarks can verify the constant-work-per-maintained-value claim
// (Theorem 7.1 / the NC0 property) empirically; the lowered programs
// preserve the tree walker's operation counts exactly.
//
// Statement execution is a virtual seam: the compiled backend
// (runtime/compiled_executor.h) subclasses Executor and overrides
// RunStatement to dispatch into dlopen'd native code, inheriting batching,
// grouping, lazy maintenance, and all read paths unchanged.

#ifndef RINGDB_RUNTIME_INTERPRETER_H_
#define RINGDB_RUNTIME_INTERPRETER_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "compiler/ir.h"
#include "compiler/lower.h"
#include "exec/batch.h"
#include "obs/metrics.h"
#include "ring/database.h"
#include "runtime/view_table.h"
#include "util/status.h"
#include "util/symbol.h"

namespace ringdb {
namespace runtime {

class Executor {
 public:
  struct Stats {
    uint64_t updates = 0;           // input tuple-units (|multiplicity|)
    uint64_t statements_run = 0;
    uint64_t entries_touched = 0;   // view entries incremented
    uint64_t arithmetic_ops = 0;    // +, *, comparisons in rhs evaluation.
                                    // Instrumentation, not a contract: it
                                    // counts arithmetic actually performed,
                                    // which differs across backends (native
                                    // statements do not instrument rhs ops)
                                    // and across representations (the
                                    // columnar window path folds per-row
                                    // scales where the per-tuple path
                                    // re-evaluates per firing).
    uint64_t init_evaluations = 0;  // lazy first-touch initializations
    uint64_t delta_entries = 0;     // coalesced delta-GMR entries applied
    uint64_t scaled_firings = 0;    // linear triggers fired once for m > 1
  };

  // Per-statement execution counters, indexed by StmtProgram::stmt_id.
  // Plain (non-atomic) uint64: each executor shard is single-writer, and
  // even relaxed atomics are measurable per enumerated join entry on the
  // NC0 hot path; cross-shard totals merge on read (Engine::Stats). The
  // semantic counters (everything except the dispatch split) are backend-
  // invariant: interpreter and native execution of the same stream
  // produce identical values — the metrics-exactness test pins that.
  // Compiled out (left zero) under -DRINGDB_NO_METRICS.
  struct StmtCounters {
    uint64_t invocations = 0;      // statement firings (both rhs variants)
    uint64_t loop_iterations = 0;  // enumerated loop entries, pre-filter
    uint64_t probes = 0;           // rhs view lookups
    uint64_t emissions = 0;        // nonzero rhs values emitted
    uint64_t native_calls = 0;     // dispatched into the native module
    uint64_t interp_calls = 0;     // run by the bytecode interpreter
    // Wall ns spent in this statement's whole-window dispatches
    // (RunStatementWindow). Timing, not a semantic count: it varies by
    // backend and run, so the backend/representation invariance suites
    // exclude it. Zero on the per-tuple path, which never runs windows.
    uint64_t window_ns = 0;
  };

  // Per-statement backend dispatch report for stats export; the compiled
  // backend overrides with its profile-guided decisions.
  struct StmtDispatch {
    bool native_available = false;    // plain variant has a native fn
    bool grouped_available = false;   // grouped variant has a native fn
    bool window_available = false;    // columnar-window entry point exists
    // Locked execution mode: 0 = interpreter, 1 = native, 2 = profiling
    // (warmup alternation still measuring).
    uint8_t plain_mode = 0;
    uint8_t grouped_mode = 0;
    // Same, for the whole-window dispatch (native columnar call vs the
    // gathered per-firing path); meaningless unless window_available.
    uint8_t win_plain_mode = 0;
    uint8_t win_grouped_mode = 0;
    uint64_t profile_native_ns = 0;   // warmup wall time, native runs
    uint64_t profile_interp_ns = 0;   // warmup wall time, interpreted runs
  };

  explicit Executor(compiler::TriggerProgram program);
  virtual ~Executor() = default;

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // Fires the trigger for the update; relations without triggers are
  // no-ops (the query does not depend on them).
  Status Apply(const ring::Update& update) {
    return ApplyDelta(update.relation, update.values, update.SignedUnit());
  }

  // Applies one coalesced delta-GMR entry: the net effect of inserting
  // (multiplicity > 0) or deleting (multiplicity < 0) |multiplicity|
  // copies of the tuple. Multiplicity-linear triggers (see compiler::
  // Trigger) fire once with emissions scaled by |multiplicity|; nonlinear
  // triggers fall back to |multiplicity| unit firings, each reading the
  // state left by the previous one. Multiplicity must be integral (batch
  // deltas are sums of ±1 events) and may be zero (no-op).
  Status ApplyDelta(Symbol relation, const std::vector<Value>& values,
                    Numeric multiplicity);

  // One delta-GMR entry of a batch, pointing into caller-owned storage.
  struct Delta {
    const std::vector<Value>* values;
    Numeric multiplicity;
  };

  // Applies a relation's delta GMR (same net semantics as calling
  // ApplyDelta per entry, in order). For multiplicity-linear triggers the
  // statements additionally run *statement-major with grouping*: entries
  // that agree on a statement's shape params (those resolved into loop
  // probes, target keys, or view-lookup keys) share one execution whose
  // emission scale is the group's accumulated coefficient — multiplicity
  // times the product of the rhs's pure scalar-multiplier params. This is
  // the batch delta rule: e.g. the revenue query's per-lineitem join loop
  // runs once per distinct order key in the batch instead of once per
  // lineitem event. Sound because linearity makes every firing read only
  // views this trigger never writes, so reordering and merging firings
  // cannot change what they observe.
  Status ApplyDeltaBatch(Symbol relation, const std::vector<Delta>& deltas);

  // A columnar execution window: `n` firings of one statement, row i
  // reading its trigger params from cols[c][rows[i]] and scaling its
  // emissions by scales[i]. `cols` points at the arity dense columns of a
  // RelationDelta; `rows` selects and orders the firings (never null);
  // col_len is the full column length and `epoch` identifies the column
  // arrays across windows cut from the same delta, so backends can cache
  // per-delta derived state (the native mirror columns) and convert each
  // column once per batch rather than once per statement window.
  struct ColWindow {
    const std::vector<Value>* cols;
    const uint32_t* rows;
    const Numeric* scales;
    size_t n = 0;
    uint32_t arity = 0;
    size_t col_len = 0;
    uint64_t epoch = 0;
  };

  // Applies a columnar relation delta (or the subset selected by `rows`,
  // when non-null) with the same net semantics and operation counts as
  // routing each row through ApplyDeltaBatch. This is the batch fast
  // path: sign groups become ColWindows driven statement-major straight
  // off the column arrays — no per-row Value vectors, no KeyView callback
  // binding. Setting RINGDB_FORCE_ROW=1 in the environment (sampled at
  // construction) re-materializes rows and runs the legacy row
  // representation instead; the differential tests use that to pin
  // row/columnar equivalence.
  Status ApplyDeltaColumns(const exec::RelationDelta& delta,
                           const uint32_t* rows, size_t n);
  Status ApplyDeltaColumns(const exec::RelationDelta& delta) {
    return ApplyDeltaColumns(delta, nullptr, 0);
  }

  // Pre-sizes every view's entry table for `additional` more entries (the
  // batch path passes the delta-GMR entry count as the hint).
  void ReserveForBatch(size_t additional);

  const compiler::TriggerProgram& program() const { return program_; }
  const ViewTable& view(int id) const {
    return views_[static_cast<size_t>(id)];
  }
  const ViewTable& root() const {
    return views_[static_cast<size_t>(program_.root_view)];
  }
  size_t num_views() const { return views_.size(); }
  // Checkpoint-recovery load hook (log/checkpoint.cc): bulk-inserts
  // restored entries into an otherwise untouched executor. Not for use
  // during normal maintenance — views are trigger-owned state.
  ViewTable& mutable_view(int id) { return views_[static_cast<size_t>(id)]; }
  bool has_lazy_views() const { return has_lazy_views_; }

  const Stats& stats() const { return stats_; }
  // Per-statement counters, indexed by StmtProgram::stmt_id (see
  // StmtCounters; all-zero under -DRINGDB_NO_METRICS).
  const std::vector<StmtCounters>& stmt_counters() const {
    return stmt_counters_;
  }
  // Fills *out (resized to the statement count) with each statement's
  // backend dispatch state. Base executor: everything interpreted.
  virtual void CollectDispatch(std::vector<StmtDispatch>* out) const {
    out->assign(lowered_->num_statements, StmtDispatch{});
  }
  // How this executor dispatches whole columnar windows, for per-shard
  // trace spans: 0 = row fallback (RINGDB_FORCE_ROW), 1 = interpreted /
  // gathered windows, 2 = native window entry points, 3 = still
  // profiling. Base executor never has native windows.
  virtual uint32_t window_dispatch_mode() const {
    return force_row_ ? 0u : 1u;
  }
  void ResetStats() {
    stats_ = Stats();
    std::fill(stmt_counters_.begin(), stmt_counters_.end(), StmtCounters{});
  }

  // Total heap footprint of all views plus executor-side batch scratch
  // (experiment E3). Virtual so the compiled backend can add its native
  // conversion buffers (mirror columns, span scratch) to the gauge.
  virtual size_t ApproxBytes() const;

 protected:
  // Runs one statement with the given rhs program (sp.rhs normally,
  // sp.grouped_rhs for grouped batch execution); emissions scale by
  // `scale`. This is the backend seam: the compiled executor overrides it
  // to dispatch into native code (falling back to this implementation for
  // statements that were not emitted).
  virtual void RunStatement(const compiler::lower::StmtProgram& sp,
                            const Value* params, Numeric scale,
                            const compiler::lower::RhsProgram& rhs);
  // Runs one statement over a whole columnar window. The base
  // implementation gathers each row's params into a scratch buffer and
  // delegates to the virtual RunStatement, so subclasses that only
  // override the per-firing seam still execute windows correctly; the
  // compiled backend overrides this to dispatch whole windows into the
  // native columnar entry points. Callers have already accounted
  // statements_run/invocations for all n firings.
  virtual void RunStatementWindow(const compiler::lower::StmtProgram& sp,
                                  const ColWindow& win,
                                  const compiler::lower::RhsProgram& rhs);
  // Applies the buffered emissions of the statement just run, scaled by
  // `scale` (shared epilogue of the interpreted and native paths).
  void FlushEmissions(const compiler::lower::StmtProgram& sp, Numeric scale);

  // Shared with the compiled backend: the immutable lowered program, the
  // view stores its trampolines probe/enumerate/emit against, and the
  // per-statement emission buffers its native calls fill.
  std::shared_ptr<const compiler::lower::LoweredProgram> lowered_;
  std::vector<ViewTable> views_;
  // Deferred emissions of the running statement: target keys flattened
  // into one Value buffer (arity-sized chunks) plus parallel deltas.
  // Buffered because a statement may loop over its own target view
  // (domain maintenance), and mutating a view during enumeration would
  // change what later iterations observe.
  std::vector<Value> emission_keys_;
  std::vector<Numeric> emission_values_;
  Stats stats_;
  // stmt_counters_[StmtProgram::stmt_id]; sized at construction (at
  // least one element so cur_counters_ always points at valid storage).
  std::vector<StmtCounters> stmt_counters_;
  // The running statement's counter row, set on RunStatement entry; the
  // compiled backend's trampolines attribute loop/probe/emission events
  // through it.
  StmtCounters* cur_counters_ = nullptr;

 private:
  // One rhs register: either a computed Numeric or a reference to a Value
  // in the params array, a constant pool, or the loop-variable frame.
  // Leaves load references; arithmetic converts on use, so string values
  // flow into kind-sensitive equality comparisons without conversion.
  struct Reg {
    const Value* ref = nullptr;  // nullptr: num holds a computed value
    Numeric num;
  };

  // Lowered trigger index for (relation, sign), or -1: a flat array
  // indexed by (relation.id() - trigger_base_) * 2 + sign, resolved once
  // at construction (replaces a hash lookup per applied delta). Rebasing
  // on the smallest trigger relation id keeps the array sized by the
  // program's own relation-id span, not the global intern counter.
  int FindTrigger(Symbol relation, ring::Update::Sign sign) const {
    const uint32_t id = relation.id();
    if (id < trigger_base_) return -1;
    const size_t idx = static_cast<size_t>(id - trigger_base_) * 2 +
                       (sign == ring::Update::Sign::kDelete ? 1 : 0);
    return idx < trigger_lookup_.size() ? trigger_lookup_[idx] : -1;
  }

  // ApplyDelta after relation/arity validation (batch entries are
  // validated once per batch, not per entry).
  void ApplyDeltaUnchecked(Symbol relation, const std::vector<Value>& values,
                           Numeric multiplicity);
  // Runs every statement of the trigger once; emissions are scaled by
  // `scale` (1 for unit firings).
  void FireTrigger(size_t trigger_idx, const Value* params, Numeric scale);
  // Statement-major grouped execution of a linear trigger over same-sign
  // delta entries (see ApplyDeltaBatch).
  void RunLinearTriggerBatch(size_t trigger_idx,
                             const std::vector<Delta>& deltas);
  // Columnar twin of RunLinearTriggerBatch: same grouping decisions and
  // operation counts, but shape keys hash straight out of the columns
  // (no Key materialization) and statements fire through
  // RunStatementWindow. `rows` lists same-sign row ids of `delta`.
  void RunLinearTriggerBatchColumnar(size_t trigger_idx,
                                     const exec::RelationDelta& delta,
                                     const uint32_t* rows, size_t n);
  // ApplyDeltaColumns under RINGDB_FORCE_ROW=1: gathers the selected rows
  // back into per-row Value vectors and replays the legacy row path.
  Status ApplyDeltaRowFallback(const exec::RelationDelta& delta,
                               const uint32_t* rows, size_t n);
  void RunLoops(const compiler::lower::StmtProgram& sp, size_t loop_index,
                const Value* params, const compiler::lower::RhsProgram& rhs);
  // Applies a loop's binds/filters from the enumerated key (or slice
  // subkey); false when a filter rejects the entry.
  bool BindLoop(const compiler::lower::LoopProgram& lp, const Value* key);
  void Emit(const compiler::lower::StmtProgram& sp, const Value* params,
            const compiler::lower::RhsProgram& rhs);
  // The bytecode dispatch loop; returns the rhs value.
  Numeric EvalRhs(const compiler::lower::StmtProgram& sp,
                  const compiler::lower::RhsProgram& rhs,
                  const Value* params);
  Numeric AsNum(const Reg& r) const;

  const Value& Resolve(const compiler::lower::StmtProgram& sp,
                       compiler::lower::SlotRef ref,
                       const Value* params) const {
    switch (ref.source) {
      case compiler::lower::SlotRef::Source::kParam:
        return params[ref.index];
      case compiler::lower::SlotRef::Source::kConst:
        return sp.const_pool[ref.index];
      case compiler::lower::SlotRef::Source::kFrame:
        return frame_[ref.index];
    }
    RINGDB_CHECK(false);
    return frame_[0];
  }
  // Materializes a key template into a reused scratch buffer.
  void BuildKey(const compiler::lower::StmtProgram& sp,
                compiler::lower::KeyTemplate t, const Value* params,
                Key* out) {
    out->resize(t.size);
    const compiler::lower::SlotRef* refs = sp.slot_refs.data() + t.first;
    for (size_t i = 0; i < t.size; ++i) {
      (*out)[i] = Resolve(sp, refs[i], params);
    }
  }

  // Lazy domain maintenance (paper footnote 2): the first use of a slice
  // of a lazy_init view evaluates the view definition with the slice key
  // bound against the base database, materializing the whole slice.
  void InitializeLazySlice(int view_id, const Key& slice_key);
  // Initializes the slice (given directly as its subkey) if needed.
  void EnsureSlice(int view_id, const Key& slice_key) {
    if (!slices_[static_cast<size_t>(view_id)].contains(slice_key)) {
      InitializeLazySlice(view_id, slice_key);
    }
  }
  Numeric ProbeView(const compiler::lower::ProbePlan& plan, const Key& key);

  compiler::TriggerProgram program_;
  // Base database, maintained only when some view needs lazy
  // initialization (the pure view hierarchy never reads it otherwise).
  bool has_lazy_views_ = false;
  ring::Database base_db_;
  // Initialized slice subkeys per lazy view (empty sets for non-lazy).
  std::vector<std::unordered_set<Key, KeyHash>> slices_;
  // Flat (relation, sign) -> trigger index map; -1 = no trigger.
  uint32_t trigger_base_ = 0;  // smallest trigger relation id
  std::vector<int32_t> trigger_lookup_;

  // Shared execution scratch, sized once at construction from the
  // lowered program's maxima. Nothing below allocates per firing.
  std::vector<Value> frame_;          // loop-variable slots
  std::vector<Reg> stack_;            // rhs register stack
  std::vector<Numeric> loop_values_;  // per-depth driver-entry value
  std::vector<Key> loop_key_scratch_;  // per-depth index probe subkeys
  Key probe_scratch_;                  // rhs view-lookup keys
  Key slice_scratch_;                  // lazy slice subkeys
  // Batch grouping scratch (RunLinearTriggerBatch).
  Key shape_scratch_;
  std::unordered_map<Key, size_t, KeyHash> groups_scratch_;
  std::vector<std::pair<const std::vector<Value>*, Numeric>> reps_scratch_;

  // Columnar batch scratch (ApplyDeltaColumns /
  // RunLinearTriggerBatchColumnar); counted by ApproxBytes. The grouped
  // path open-addresses representative rows directly: group_slots_ maps
  // hash -> rep index, reps keep (row id, accumulated coefficient, hash)
  // in first-touch order — no shape Key is ever materialized.
  bool force_row_ = false;          // RINGDB_FORCE_ROW=1 at construction
  uint64_t col_epoch_ = 0;          // bumped once per columnar delta
  std::vector<uint32_t> sign_rows_[2];
  std::vector<uint32_t> group_slots_;
  std::vector<uint32_t> rep_rows_;
  std::vector<Numeric> rep_coeffs_;
  std::vector<uint64_t> rep_hashes_;
  std::vector<uint32_t> win_rows_;     // rows of the window being fired
  std::vector<Numeric> win_scales_;    // parallel per-firing scales
  std::vector<Value> param_gather_;    // RunStatementWindow base impl
  std::vector<Value> row_gather_;      // single-row gathers (lazy, fallback)
  // RINGDB_FORCE_ROW re-materialization buffers.
  std::vector<std::vector<Value>> row_values_scratch_;
  std::vector<Delta> row_deltas_scratch_;
};

}  // namespace runtime
}  // namespace ringdb

#endif  // RINGDB_RUNTIME_INTERPRETER_H_
