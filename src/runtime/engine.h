// Public facade: register a schema and an AGCA query, then stream
// single-tuple updates or coalesced batches; the query result (scalar or
// grouped) is always available in O(1) per value, maintained by the
// compiled view hierarchy.
//
//   ring::Catalog catalog;
//   catalog.AddRelation(R, {A});
//   auto engine = runtime::Engine::Create(
//       catalog, /*group_vars=*/{}, body);
//   engine->Apply(ring::Update::Insert(R, {Value(42)}));
//   Numeric count = engine->ResultScalar();
//
// Scaling knobs (runtime::EngineOptions): batch_size coalesces windows of
// updates into per-relation delta GMRs before triggers fire (cancelled
// events cost nothing, repeated events fire multiplicity-linear triggers
// once), and num_shards hash-partitions the view hierarchy for parallel
// application when the query admits a sound partition scheme (see
// exec/partition.h). The single-tuple Apply is a batch of one routed to
// its owning shard, so both APIs share one execution path.

#ifndef RINGDB_RUNTIME_ENGINE_H_
#define RINGDB_RUNTIME_ENGINE_H_

#include <memory>
#include <vector>

#include "agca/ast.h"
#include "compiler/compile.h"
#include "exec/batch.h"
#include "exec/partition.h"
#include "exec/sharded_executor.h"
#include "ring/database.h"
#include "ring/gmr.h"
#include "runtime/interpreter.h"
#include "util/status.h"

namespace ringdb {
namespace runtime {

struct EngineOptions {
  // Number of buffered updates coalesced into one delta batch by
  // ApplyBatch; 1 degenerates to per-tuple execution.
  size_t batch_size = 1;
  // Requested data-parallel shards. The effective count is 1 when the
  // query admits no sound partition scheme (Engine::num_shards tells).
  size_t num_shards = 1;
};

class Engine {
 public:
  // Compiles Sum_[group_vars](body) over the catalog. The engine starts
  // on the empty database.
  static StatusOr<Engine> Create(const ring::Catalog& catalog,
                                 std::vector<Symbol> group_vars,
                                 agca::ExprPtr body) {
    return Create(catalog, std::move(group_vars), std::move(body),
                  EngineOptions{});
  }
  static StatusOr<Engine> Create(const ring::Catalog& catalog,
                                 std::vector<Symbol> group_vars,
                                 agca::ExprPtr body, EngineOptions options);

  Status Apply(const ring::Update& update) { return sharded_->Apply(update); }

  // Applies the updates in windows of options.batch_size: each window is
  // coalesced into per-relation delta GMRs (opposite events cancel) and
  // executed shard-parallel. Any window size yields the same final state
  // as applying the updates one by one.
  Status ApplyBatch(const std::vector<ring::Update>& updates);

  Status Insert(Symbol relation, std::vector<Value> values) {
    return Apply(ring::Update::Insert(relation, std::move(values)));
  }
  Status Delete(Symbol relation, std::vector<Value> values) {
    return Apply(ring::Update::Delete(relation, std::move(values)));
  }

  // Result for a scalar query (empty group_vars); sums over shards.
  Numeric ResultScalar() const;

  // Result value for one group, values given in group_vars order.
  Numeric ResultAt(const std::vector<Value>& group_values) const;

  // The full grouped result as a gmr over the group variables (tuples
  // {group_var -> value} with the aggregate as multiplicity), merged over
  // shards by ring addition.
  ring::Gmr ResultGmr() const;

  const compiler::TriggerProgram& program() const {
    return sharded_->shard(0).program();
  }
  // The primary shard's executor (the only shard unless sharding is on);
  // multi-shard callers should use sharded() for per-shard access.
  Executor& executor() { return sharded_->shard(0); }
  const Executor& executor() const { return sharded_->shard(0); }
  exec::ShardedExecutor& sharded() { return *sharded_; }
  const exec::ShardedExecutor& sharded() const { return *sharded_; }

  const std::vector<Symbol>& group_vars() const { return group_vars_; }
  const EngineOptions& options() const { return options_; }
  // Effective shard count (1 when the query is not partitionable).
  size_t num_shards() const { return sharded_->num_shards(); }
  const exec::PartitionScheme& partition_scheme() const {
    return sharded_->scheme();
  }

 private:
  Engine(compiler::CompiledQuery compiled, std::vector<Symbol> group_vars,
         EngineOptions options, exec::PartitionScheme scheme);

  std::vector<Symbol> group_vars_;
  std::vector<size_t> root_key_order_;
  EngineOptions options_;
  // unique_ptr so Engine stays movable despite the executor's internals
  // (worker threads, mutexes).
  std::unique_ptr<exec::ShardedExecutor> sharded_;
  std::unique_ptr<exec::BatchBuilder> builder_;
};

}  // namespace runtime
}  // namespace ringdb

#endif  // RINGDB_RUNTIME_ENGINE_H_
