// Public facade: register a schema and an AGCA query, then stream
// single-tuple updates; the query result (scalar or grouped) is always
// available in O(1) per value, maintained by the compiled view hierarchy.
//
//   ring::Catalog catalog;
//   catalog.AddRelation(R, {A});
//   auto engine = runtime::Engine::Create(
//       catalog, /*group_vars=*/{}, body);
//   engine->Apply(ring::Update::Insert(R, {Value(42)}));
//   Numeric count = engine->ResultScalar();

#ifndef RINGDB_RUNTIME_ENGINE_H_
#define RINGDB_RUNTIME_ENGINE_H_

#include <memory>
#include <vector>

#include "agca/ast.h"
#include "compiler/compile.h"
#include "ring/database.h"
#include "ring/gmr.h"
#include "runtime/interpreter.h"
#include "util/status.h"

namespace ringdb {
namespace runtime {

class Engine {
 public:
  // Compiles Sum_[group_vars](body) over the catalog. The engine starts
  // on the empty database.
  static StatusOr<Engine> Create(const ring::Catalog& catalog,
                                 std::vector<Symbol> group_vars,
                                 agca::ExprPtr body);

  Status Apply(const ring::Update& update) { return executor_->Apply(update); }

  Status Insert(Symbol relation, std::vector<Value> values) {
    return Apply(ring::Update::Insert(relation, std::move(values)));
  }
  Status Delete(Symbol relation, std::vector<Value> values) {
    return Apply(ring::Update::Delete(relation, std::move(values)));
  }

  // Result for a scalar query (empty group_vars).
  Numeric ResultScalar() const;

  // Result value for one group, values given in group_vars order.
  Numeric ResultAt(const std::vector<Value>& group_values) const;

  // The full grouped result as a gmr over the group variables (tuples
  // {group_var -> value} with the aggregate as multiplicity).
  ring::Gmr ResultGmr() const;

  const compiler::TriggerProgram& program() const {
    return executor_->program();
  }
  Executor& executor() { return *executor_; }
  const Executor& executor() const { return *executor_; }
  const std::vector<Symbol>& group_vars() const { return group_vars_; }

 private:
  Engine(compiler::CompiledQuery compiled, std::vector<Symbol> group_vars);

  std::vector<Symbol> group_vars_;
  std::vector<size_t> root_key_order_;
  // unique_ptr so Engine stays movable despite the Executor's internals.
  std::unique_ptr<Executor> executor_;
};

}  // namespace runtime
}  // namespace ringdb

#endif  // RINGDB_RUNTIME_ENGINE_H_
