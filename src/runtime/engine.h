// Public facade: register a schema and an AGCA query, then stream
// single-tuple updates or coalesced batches; the query result (scalar or
// grouped) is always available in O(1) per value, maintained by the
// compiled view hierarchy.
//
//   ring::Catalog catalog;
//   catalog.AddRelation(R, {A});
//   auto engine = runtime::Engine::Create(
//       catalog, /*group_vars=*/{}, body);
//   engine->Apply(ring::Update::Insert(R, {Value(42)}));
//   Numeric count = engine->ResultScalar();
//
// Scaling knobs (runtime::EngineOptions): batch_size coalesces windows of
// updates into per-relation delta GMRs before triggers fire (cancelled
// events cost nothing, repeated events fire multiplicity-linear triggers
// once), num_shards hash-partitions the view hierarchy for parallel
// application when the query admits a sound partition scheme (see
// exec/partition.h), and backend selects between the bytecode interpreter
// and the runtime-compiled native backend (emitted C behind dlopen; see
// runtime/compiled_executor.h). The single-tuple Apply is a batch of one
// routed to its owning shard, so all APIs share one execution path.
//
// Thread safety: Engine is single-writer. Apply/ApplyBatch/ApplyPrepared
// must not run concurrently with each other or with the result accessors
// (ResultScalar/ResultAt/ResultGmr), which read the live view hierarchy
// and would return torn state if they raced the writer. The accessors
// CHECK-fail when an apply is in flight (a relaxed-atomic depth guard, so
// misuse dies loudly instead of silently serving garbage). Concurrent
// readers belong on serve::QueryService, which publishes an immutable
// ResultSnapshot per applied batch and never blocks either side.

#ifndef RINGDB_RUNTIME_ENGINE_H_
#define RINGDB_RUNTIME_ENGINE_H_

#include <atomic>
#include <memory>
#include <vector>

#include <string>

#include "agca/ast.h"
#include "compiler/compile.h"
#include "exec/batch.h"
#include "exec/partition.h"
#include "exec/sharded_executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ring/database.h"
#include "ring/gmr.h"
#include "runtime/interpreter.h"
#include "util/status.h"

namespace ringdb {
namespace runtime {

struct EngineOptions {
  // Number of buffered updates coalesced into one delta batch by
  // ApplyBatch; 1 degenerates to per-tuple execution.
  size_t batch_size = 1;
  // Requested data-parallel shards. The effective count is 1 when the
  // query admits no sound partition scheme (Engine::num_shards tells).
  size_t num_shards = 1;
  // Statement-execution backend. kCompile emits the query's lowered
  // trigger program as C, compiles it with the host C compiler (cached by
  // source hash), and dlopens the result; statements the emitter cannot
  // handle (lazy domain maintenance) and hosts without a compiler fall
  // back to the interpreter transparently — results are identical either
  // way (Engine::native_enabled reports what actually engaged). Prefer
  // kInterpret for short-lived engines and tiny streams, where the
  // one-time cc invocation costs more than it saves.
  Backend backend = Backend::kInterpret;
};

class Engine {
 public:
  // Compiles Sum_[group_vars](body) over the catalog. The engine starts
  // on the empty database.
  static StatusOr<Engine> Create(const ring::Catalog& catalog,
                                 std::vector<Symbol> group_vars,
                                 agca::ExprPtr body) {
    return Create(catalog, std::move(group_vars), std::move(body),
                  EngineOptions{});
  }
  static StatusOr<Engine> Create(const ring::Catalog& catalog,
                                 std::vector<Symbol> group_vars,
                                 agca::ExprPtr body, EngineOptions options);

  // Applies one signed single-tuple update (a batch of one, routed
  // inline to its owning shard). Single-writer: see the class comment.
  Status Apply(const ring::Update& update) {
    ApplyGuard guard(apply_depth_.get());
    return sharded_->Apply(update);
  }

  // Applies the updates in windows of options.batch_size: each window is
  // coalesced into per-relation delta GMRs (opposite events cancel) and
  // executed shard-parallel. Any window size yields the same final state
  // as applying the updates one by one.
  Status ApplyBatch(const std::vector<ring::Update>& updates);

  // Applies one already-coalesced batch (exec::BatchBuilder output)
  // directly, bypassing this engine's builder. This is the multi-query
  // serving hook: serve::QueryService coalesces each ingest window's
  // per-relation delta GMRs once and feeds the same UpdateBatch to every
  // registered query's engine, so the coalescing cost amortizes across
  // queries. The batch must be built against this engine's catalog;
  // relations the query never mentions are no-ops.
  Status ApplyPrepared(const exec::UpdateBatch& batch);

  // Convenience single-tuple wrappers around Apply (multiplicity ±1).
  Status Insert(Symbol relation, std::vector<Value> values) {
    return Apply(ring::Update::Insert(relation, std::move(values)));
  }
  Status Delete(Symbol relation, std::vector<Value> values) {
    return Apply(ring::Update::Delete(relation, std::move(values)));
  }

  // Result for a scalar query; sums over shards. Precondition: the query
  // was compiled with empty group_vars (CHECK-fails otherwise).
  Numeric ResultScalar() const;

  // Result value for one group, values given in group_vars order (0 for
  // groups not in the result's support).
  Numeric ResultAt(const std::vector<Value>& group_values) const;

  // The full grouped result as a gmr over the group variables (tuples
  // {group_var -> value} with the aggregate as multiplicity), merged over
  // shards by ring addition.
  ring::Gmr ResultGmr() const;

  // The compiled NC0C trigger program this engine maintains.
  const compiler::TriggerProgram& program() const {
    return sharded_->shard(0).program();
  }
  // The primary shard's executor (the only shard unless sharding is on);
  // multi-shard callers should use sharded() for per-shard access.
  Executor& executor() { return sharded_->shard(0); }
  const Executor& executor() const { return sharded_->shard(0); }
  // The sharded execution layer (per-shard access, aggregate stats).
  exec::ShardedExecutor& sharded() { return *sharded_; }
  const exec::ShardedExecutor& sharded() const { return *sharded_; }

  // The query's grouping variables, in the order the caller declared.
  const std::vector<Symbol>& group_vars() const { return group_vars_; }
  // root_key_order()[i] = root-view key position holding the i-th group
  // variable (view keys are stored in canonical order); snapshot
  // extraction (serve/) permutes read keys through this.
  const std::vector<size_t>& root_key_order() const {
    return root_key_order_;
  }
  // The options this engine was created with (requested, not effective).
  const EngineOptions& options() const { return options_; }
  // Effective shard count (1 when the query is not partitionable).
  size_t num_shards() const { return sharded_->num_shards(); }
  // The partition-analysis witness behind the effective shard count.
  const exec::PartitionScheme& partition_scheme() const {
    return sharded_->scheme();
  }
  // True when backend == kCompile actually engaged: statements dispatch
  // into the dlopen'd native module instead of the bytecode interpreter.
  bool native_enabled() const { return sharded_->native_enabled(); }
  // Why the compiled backend is off (Ok when on or never requested) —
  // e.g. "no host C compiler found" in sandboxed CI.
  const Status& native_status() const { return sharded_->native_status(); }

  // One lowered statement's observability row (see Executor::StmtCounters
  // / StmtDispatch): cross-shard counter sums plus shard 0's backend
  // dispatch state, labeled for humans ("+lineitem s0 -> m1").
  struct StmtStats {
    uint32_t stmt_id = 0;
    std::string label;
    Executor::StmtCounters counters;
    Executor::StmtDispatch dispatch;
  };

  // Structured engine-wide observability snapshot. Reads merge per-shard
  // state on demand; like every Engine read it must not race a writer
  // (concurrent serving stats belong to QueryService::Stats, which only
  // reads between batches by construction).
  struct EngineStats {
    Executor::Stats totals;               // cross-shard sums
    std::vector<StmtStats> statements;    // by stmt_id
    size_t approx_bytes = 0;              // all views, all shards
    size_t num_shards = 0;
    bool native_enabled = false;
    obs::HistogramSnapshot shard_apply_ns;  // per shard per batch
    obs::HistogramSnapshot merge_ns;        // merged root reads
    uint64_t morsels_run = 0;     // window morsels executed (all shards)
    uint64_t morsels_stolen = 0;  // executed by a non-owner worker
  };

  EngineStats Stats() const;
  // The snapshot as an aligned text table / a JSON object (`indent`
  // spaces prefix every line, for embedding in bench JSON files).
  std::string StatsText() const;
  std::string StatsJson(int indent = 0) const;

  // Standalone window tracing (flight recorder). ApplyBatch records one
  // WindowTrace per coalesced window — coalesce + apply stages plus
  // per-shard sub-spans — into a ring of the last `windows` windows.
  // Engines under serve::QueryService do not need this: the service owns
  // the pipeline-wide recorder and hands a TraceContext down per window.
  void EnableTracing(size_t windows = obs::TraceRecorder::kDefaultCapacity);
  const obs::TraceRecorder* trace_recorder() const { return trace_.get(); }
  // Chrome trace-event JSON of the retained windows ("" when tracing is
  // off); loadable in chrome://tracing or Perfetto.
  std::string TraceJson() const;
  // Per-stage latency breakdown of the retained windows as JSON.
  std::string TraceBreakdownJson(int indent = 0) const;

 private:
  // Marks an apply in flight for the duration of a scope; the result
  // accessors check the depth so a reader racing the writer fails fast.
  class ApplyGuard {
   public:
    explicit ApplyGuard(std::atomic<int>* depth) : depth_(depth) {
      depth_->fetch_add(1, std::memory_order_relaxed);
    }
    ~ApplyGuard() { depth_->fetch_sub(1, std::memory_order_relaxed); }

   private:
    std::atomic<int>* depth_;
  };

  Engine(compiler::CompiledQuery compiled, std::vector<Symbol> group_vars,
         EngineOptions options, exec::PartitionScheme scheme);

  void CheckNotApplying() const {
    // Racy by nature (that is the point: it only trips when a reader
    // overlaps a writer); relaxed is enough for a diagnostic.
    RINGDB_CHECK(apply_depth_->load(std::memory_order_relaxed) == 0 &&
                 "Engine result accessor raced Apply/ApplyBatch; use "
                 "serve::QueryService snapshots for concurrent reads");
  }

  std::vector<Symbol> group_vars_;
  std::vector<size_t> root_key_order_;
  EngineOptions options_;
  // unique_ptr so Engine stays movable despite the executor's internals
  // (worker threads, mutexes).
  std::unique_ptr<exec::ShardedExecutor> sharded_;
  std::unique_ptr<exec::BatchBuilder> builder_;
  // unique_ptr keeps Engine movable (atomics are not).
  std::unique_ptr<std::atomic<int>> apply_depth_ =
      std::make_unique<std::atomic<int>>(0);
  // Standalone flight recorder (EnableTracing); null = tracing off.
  std::unique_ptr<obs::TraceRecorder> trace_;
  uint64_t trace_seq_ = 0;  // window numbering for the standalone path
};

}  // namespace runtime
}  // namespace ringdb

#endif  // RINGDB_RUNTIME_ENGINE_H_
