// The C ABI between the host runtime and natively compiled trigger
// modules (compiler/codegen_c.{h,cc} emits the module side).
//
// A compiled module is a self-contained C translation unit: it receives
// every service it needs — view probes, index-driven loop enumeration,
// emission buffering — as a table of function pointers (RdbHostApi)
// passed into each statement function, so the .so links against nothing
// and the host needs no -rdynamic. Values cross the boundary as RdbVal
// (a flattened util/value.h Value: tagged int64/double/string-view) and
// scalars as RdbNum (a flattened util/numeric.h Numeric). String
// payloads are borrowed pointers into host-owned storage (update params,
// constant pools, view entry keys); they stay valid for the duration of
// one statement execution because natively emitted statements never
// mutate a view mid-run (emissions are buffered by the host and applied
// after the statement function returns, and lazy-domain statements are
// not emitted at all).
//
// The emitted preamble (codegen_c.cc) textually duplicates these
// definitions so the module compiles standalone; RDB_ABI_VERSION and the
// RdbAbiLayout() checksum exported by every module guard against the two
// copies drifting apart — NativeModule refuses to load on mismatch.

#ifndef RINGDB_RUNTIME_NATIVE_ABI_H_
#define RINGDB_RUNTIME_NATIVE_ABI_H_

#include <cstddef>
#include <cstdint>

namespace ringdb {
namespace runtime {

extern "C" {

// Bumped whenever a struct layout or host-api slot changes.
// v3: columnar windows — RdbColWin, the RdbColStmtFn entry-point shape,
// and the add_span host slot (appended, so the v2 prefix is unchanged;
// the bump still retires stale cached modules).
enum : uint32_t { RDB_ABI_VERSION = 3 };

// A flattened Value: kind 0 = int64 (payload i), 1 = double (payload d),
// 2 = string (payload s/slen, NOT NUL-terminated, borrowed).
typedef struct RdbVal {
  int64_t i;
  double d;
  const char* s;
  uint64_t slen;
  uint8_t kind;
} RdbVal;

// A flattened Numeric: exact int64 while is_int, double otherwise.
typedef struct RdbNum {
  int64_t i;
  double d;
  uint8_t is_int;
} RdbNum;

// Loop-body callback: `key` is the enumerated entry's full key (arity
// values, valid only during the call), `mult` its multiplicity.
typedef void (*RdbLoopFn)(void* env, const RdbVal* key, RdbNum mult);

// Host services available to a statement function. `ctx` is the opaque
// executor handle threaded through every call.
typedef struct RdbHostApi {
  uint32_t abi_version;
  // O(1) view lookup (ViewTable::At); the key is the view's full key.
  RdbNum (*probe)(void* ctx, int32_t view_id, const RdbVal* key,
                  uint32_t n);
  // Full-scan enumeration of a view's live entries.
  void (*foreach)(void* ctx, int32_t view_id, RdbLoopFn fn, void* env);
  // Index-driven enumeration: entries whose key matches `subkey` at the
  // index's positions (ViewTable::ForEachMatching).
  void (*foreach_matching)(void* ctx, int32_t view_id, int32_t index_id,
                           const RdbVal* subkey, uint32_t n, RdbLoopFn fn,
                           void* env);
  // Buffers one emission target[key] += value; the host applies all
  // buffered emissions (scaled) after the statement function returns.
  // Used by statements whose rhs may read the target view (self-loops):
  // all rhs evaluations must observe the pre-statement state.
  void (*emit)(void* ctx, const RdbVal* key, uint32_t n, RdbNum value);
  // Immediate emission: view[key] += delta, applied in place (the
  // statement scale already folded in). Sound only when the statement's
  // rhs provably never reads `view_id` — the emitter checks the loop
  // drivers and probe plans statically and falls back to emit()
  // otherwise. Skips the buffer round trip on the hot path.
  void (*add)(void* ctx, int32_t view_id, const RdbVal* key, uint32_t n,
              RdbNum delta);
  // Aborts with a diagnostic (the RINGDB_CHECK analogue; never returns).
  void (*fail)(void* ctx, const char* msg);
  // Batched immediate emission: view[keys + j*arity .. +arity) += deltas[j]
  // for j in [0, count). The columnar-window analogue of add(): window
  // variants accumulate chunks of scaled (key, delta) pairs locally and
  // flush them through one host call, which hashes all keys up front
  // (ViewTable::AddSpan). Zero deltas are skipped by the host. Same
  // direct-emission soundness requirement as add().
  void (*add_span)(void* ctx, int32_t view_id, const RdbVal* keys,
                   const RdbNum* deltas, uint32_t count, uint32_t arity);
} RdbHostApi;

// A columnar execution window: n statement firings reading row ids out of
// dense per-attribute columns. cols[c] points at the full mirrored column
// of the relation delta (host-converted RdbVal arrays, shared across every
// statement window cut from the same delta); firing j reads its params as
// cols[c][rows[j]] and scales its emissions by scales[j].
typedef struct RdbColWin {
  const RdbVal* const* cols;
  const uint32_t* rows;
  const RdbNum* scales;
  uint32_t n;
  uint32_t arity;
} RdbColWin;

// One lowered statement compiled to native code. `params` holds the
// update's values (the trigger relation's arity of them); `scale` is the
// emission scale (1 for unit firings, the net multiplicity for scaled
// linear firings, the accumulated group coefficient on the grouped batch
// path). Statements emitting through api->emit ignore scale (the host
// applies it when flushing); direct-add statements fold it in.
typedef void (*RdbStmtFn)(const RdbHostApi* api, void* ctx,
                          const RdbVal* params, RdbNum scale);

// The columnar-window entry point of one statement (`<fn>_w`, and `_gw`
// for the grouped rhs): runs the whole window's firings in one native
// call, indexing columns directly — no per-firing host dispatch. The
// per-firing scale is already folded in by the emitting code (windows are
// only emitted for direct-add statements, so there is no host-side flush
// to apply it).
typedef void (*RdbColStmtFn)(const RdbHostApi* api, void* ctx,
                             const RdbColWin* win);

}  // extern "C"

// Host-side layout checksum; every emitted module exports
// `uint64_t rdb_abi_layout` computed by the same formula from its own
// textual copy of the structs. Loading compares the two.
constexpr uint64_t RdbAbiLayout() {
  return static_cast<uint64_t>(sizeof(RdbVal)) * 1000000u +
         offsetof(RdbVal, kind) * 10000u + sizeof(RdbNum) * 100u +
         offsetof(RdbNum, is_int);
}

}  // namespace runtime
}  // namespace ringdb

#endif  // RINGDB_RUNTIME_NATIVE_ABI_H_
