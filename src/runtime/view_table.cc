#include "runtime/view_table.h"

#include <algorithm>
#include <functional>
#include <sstream>

namespace ringdb {
namespace runtime {

namespace {

// Finds the live entry with this hash/key in the slot table; kNoEntry if
// absent. Free function so both the const and mutating paths share it.
template <typename Slots, typename Entries, typename KeyOf>
uint32_t Probe(const Slots& slots, const Entries& entries, const KeyOf& key_of,
               const Value* key, size_t n, uint64_t hash) {
  if (slots.empty()) return UINT32_MAX;
  const size_t mask = slots.size() - 1;
  size_t s = hash & mask;
  while (slots[s] != UINT32_MAX) {
    const auto& e = entries[slots[s]];
    if (e.hash == hash) {
      const Value* ek = key_of(e);
      bool eq = true;
      for (size_t i = 0; i < n && eq; ++i) eq = ek[i] == key[i];
      if (eq) return slots[s];
    }
    s = (s + 1) & mask;
  }
  return UINT32_MAX;
}

// One index row's fixed cost in the unordered_map: subkey hash, id
// vector header, bucket chain + cached hash.
constexpr size_t kIndexRowNodeBytes =
    sizeof(uint64_t) + sizeof(std::vector<uint32_t>) + 2 * sizeof(void*);

// Heap payload behind the string values of a stored key (SSO strings —
// up to 15 chars in libstdc++/libc++ — cost nothing).
size_t StringHeapBytes(const Value* key, size_t n) {
  size_t bytes = 0;
  for (size_t i = 0; i < n; ++i) {
    if (key[i].is_string()) {
      const std::string& s = key[i].AsString();
      if (s.capacity() > 15) bytes += s.capacity() + 1;
    }
  }
  return bytes;
}

}  // namespace

uint32_t ViewTable::FindEntryHashed(const Value* key, size_t n,
                                    uint64_t hash) const {
  return Probe(
      slots_, entries_, [this](const Entry& e) { return EntryKey(e); }, key,
      n, hash);
}

uint32_t ViewTable::FindEntry(const Value* key, size_t n) const {
  return FindEntryHashed(key, n, HashValues(key, n));
}

// Clears a deferred erase: the entry at `id` counts as live again.
void ViewTable::Unpend(uint32_t id) {
  entries_[id].pending_erase = false;
  pending_erases_.erase(
      std::find(pending_erases_.begin(), pending_erases_.end(), id));
}

bool ViewTable::Contains(const Key& key) const {
  const uint32_t id = FindEntry(key.data(), key.size());
  return id != kNoEntry && !entries_[id].pending_erase;
}

void ViewTable::Add(const Value* key, size_t n, Numeric delta) {
  RINGDB_CHECK_EQ(n, arity_);
  if (delta.IsZero()) return;
  if (iter_depth_ == 0 && !pending_erases_.empty()) ApplyPendingErases();
  AddHashed(key, HashValues(key, n), delta);
}

void ViewTable::AddHashed(const Value* key, uint64_t hash, Numeric delta) {
  const uint32_t id = FindEntryHashed(key, arity_, hash);
  if (id == kNoEntry) {
    AppendEntry(key, hash, delta);
    return;
  }
  Entry& e = entries_[id];
  e.value += delta;
  if (e.pending_erase) {
    // Resurrected before the deferred erase applied (delta is nonzero, so
    // the sum left zero).
    Unpend(id);
    return;
  }
  if (e.value.IsZero() && !keep_zeros_) EraseEntry(id);
}

void ViewTable::AddSpan(const Value* keys, const Numeric* deltas,
                        size_t count) {
  if (count == 0) return;
  // One pending-erase sweep for the whole span: when no iteration is in
  // flight, per-element Adds cannot re-defer (EraseEntry applies
  // immediately), so hoisting the sweep is observationally identical to
  // calling Add in a loop. Under an active iteration the sweep is skipped
  // exactly like Add skips it.
  if (iter_depth_ == 0 && !pending_erases_.empty()) ApplyPendingErases();
  span_hash_scratch_.resize(count);
  // Hash pass first: computing all key hashes up front lets the probe
  // pass start from a warm slot line (the prefetch below) instead of
  // alternating hash arithmetic with dependent cache misses. Slot growth
  // mid-span only staleness-es the *hint*; the probe recomputes masks.
  const size_t mask = slots_.empty() ? 0 : slots_.size() - 1;
  for (size_t i = 0; i < count; ++i) {
    const uint64_t h = HashValues(keys + i * arity_, arity_);
    span_hash_scratch_[i] = h;
    if (mask != 0) __builtin_prefetch(&slots_[h & mask]);
  }
  for (size_t i = 0; i < count; ++i) {
    if (deltas[i].IsZero()) continue;
    AddHashed(keys + i * arity_, span_hash_scratch_[i], deltas[i]);
  }
}

void ViewTable::EnsureEntry(const Key& key, Numeric value) {
  RINGDB_CHECK_EQ(key.size(), arity_);
  if (iter_depth_ == 0 && !pending_erases_.empty()) ApplyPendingErases();
  const uint64_t hash = HashValues(key.data(), key.size());
  const uint32_t id = FindEntryHashed(key.data(), key.size(), hash);
  if (id != kNoEntry) {
    // A pending-erase entry still owns its key; marking it live again
    // with the requested value preserves EnsureEntry's contract.
    if (entries_[id].pending_erase) {
      entries_[id].value = value;
      Unpend(id);
    }
    return;
  }
  AppendEntry(key.data(), hash, value);
}

void ViewTable::Reserve(size_t n) {
  if (iter_depth_ == 0 && !pending_erases_.empty()) ApplyPendingErases();
  // reserve() allocates *exactly* n, so a caller that reserves a little
  // more every window (the batch path's size + delta hint) would move
  // the whole entry table once per window. Grow geometrically instead,
  // and only when capacity is actually short.
  if (entries_.capacity() < n) {
    entries_.reserve(std::max(n, entries_.capacity() * 2));
  }
  if (!inline_keys() && arena_.capacity() < n * arity_) {
    arena_.reserve(std::max(n * arity_, arena_.capacity() * 2));
  }
  GrowSlots(n);
  // Index rows are keyed by distinct subkey, typically far fewer than n;
  // they grow amortized on insert — pre-reserving n buckets per window
  // was a rehash per window for no locality gain.
}

int ViewTable::EnsureIndex(std::vector<size_t> positions) {
  RINGDB_CHECK_EQ(iter_depth_, 0);
  if (!pending_erases_.empty()) ApplyPendingErases();
  for (size_t i = 1; i < positions.size(); ++i) {
    RINGDB_CHECK_LT(positions[i - 1], positions[i]);
  }
  for (size_t p : positions) RINGDB_CHECK_LT(p, arity_);
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i].positions == positions) return static_cast<int>(i);
  }
  Index index;
  index.positions = std::move(positions);
  index.rows.reserve(entries_.size());
  for (uint32_t id = 0; id < entries_.size(); ++id) {
    index.rows[SubHash(index, EntryKey(entries_[id]))].push_back(id);
  }
  // Account the freshly built rows in one pass (the only O(n) moment of
  // the incremental scheme: index registration itself is O(n) anyway).
  for (const auto& [subhash, row] : index.rows) {
    index_row_bytes_ += kIndexRowNodeBytes + row.capacity() * sizeof(uint32_t);
  }
  indexes_.push_back(std::move(index));
  return static_cast<int>(indexes_.size() - 1);
}

uint32_t ViewTable::AppendEntry(const Value* key, uint64_t hash,
                                Numeric value) {
  RINGDB_CHECK_LT(entries_.size(), static_cast<size_t>(kNoEntry));
  if (slots_.empty() || (entries_.size() + 1) * 4 > slots_.size() * 3) {
    GrowSlots(entries_.size() + 1);
  }
  const uint32_t id = static_cast<uint32_t>(entries_.size());
  Entry e;
  e.hash = hash;
  e.value = value;
  if (inline_keys()) {
    for (size_t i = 0; i < arity_; ++i) e.ikey[i] = key[i];
  } else {
    uint32_t block;
    if (!free_blocks_.empty()) {
      block = free_blocks_.back();
      free_blocks_.pop_back();
    } else {
      block = static_cast<uint32_t>(arena_.size() / arity_);
      arena_.resize(arena_.size() + arity_);
    }
    Value* dst = arena_.data() + static_cast<size_t>(block) * arity_;
    for (size_t i = 0; i < arity_; ++i) dst[i] = key[i];
    e.block = block;
  }
  entries_.push_back(std::move(e));
  const size_t mask = slots_.size() - 1;
  size_t s = hash & mask;
  while (slots_[s] != kEmptySlot) s = (s + 1) & mask;
  slots_[s] = id;
  const Value* ek = EntryKey(entries_[id]);
  // Incremental ApproxBytes: measure the *stored* copies (their
  // capacities, not the caller's), and track row growth around the
  // push_back.
  string_bytes_ += StringHeapBytes(ek, arity_);
  for (Index& index : indexes_) {
    auto [it, inserted] = index.rows.try_emplace(SubHash(index, ek));
    if (inserted) index_row_bytes_ += kIndexRowNodeBytes;
    index_row_bytes_ -= it->second.capacity() * sizeof(uint32_t);
    it->second.push_back(id);
    index_row_bytes_ += it->second.capacity() * sizeof(uint32_t);
  }
  return id;
}

void ViewTable::EraseEntry(uint32_t id) {
  if (iter_depth_ > 0) {
    entries_[id].pending_erase = true;
    pending_erases_.push_back(id);
    return;
  }
  EraseEntryNow(id);
}

void ViewTable::ApplyPendingErases() {
  // Descending id order keeps every deferred id valid: swap-erase only
  // relocates the last (maximal) entry, which is either the id being
  // erased or not deferred at all.
  std::sort(pending_erases_.begin(), pending_erases_.end(),
            std::greater<uint32_t>());
  for (uint32_t id : pending_erases_) EraseEntryNow(id);
  pending_erases_.clear();
}

void ViewTable::EraseEntryNow(uint32_t id) {
  {
    const Entry& e = entries_[id];
    EraseSlotAt(SlotOf(id));
    const Value* ek = EntryKey(e);
    string_bytes_ -= StringHeapBytes(ek, arity_);
    for (Index& index : indexes_) {
      RemoveFromRow(&index, SubHash(index, ek), id);
    }
    if (!inline_keys()) {
      // Clear the block so string payloads release before reuse.
      Value* block = arena_.data() + static_cast<size_t>(e.block) * arity_;
      for (size_t i = 0; i < arity_; ++i) block[i] = Value();
      free_blocks_.push_back(e.block);
    }
  }
  const uint32_t last = static_cast<uint32_t>(entries_.size()) - 1;
  if (id != last) {
    // Swap-move the last entry into the hole; its slot and index rows
    // must point at the new id.
    slots_[SlotOf(last)] = id;
    const Value* lk = EntryKey(entries_[last]);
    for (Index& index : indexes_) {
      auto row = index.rows.find(SubHash(index, lk));
      RINGDB_CHECK(row != index.rows.end());
      for (uint32_t& rid : row->second) {
        if (rid == last) {
          rid = id;
          break;
        }
      }
    }
    // Re-measure string capacities across the move: a move-assign into
    // the hole's inline key may keep the hole's larger heap buffer (an
    // SSO source cannot be stolen from, so the destination's allocation
    // is reused), leaving the survivor with a different capacity than
    // was accounted at its append. Arena keys never move, so the two
    // terms cancel there.
    string_bytes_ -= StringHeapBytes(lk, arity_);
    entries_[id] = std::move(entries_[last]);
    string_bytes_ += StringHeapBytes(EntryKey(entries_[id]), arity_);
  }
  entries_.pop_back();
}

void ViewTable::EraseSlotAt(size_t slot) {
  // Tombstone-free backshift deletion: walk the probe chain after the
  // hole and move back every entry whose home position reaches the hole.
  const size_t mask = slots_.size() - 1;
  size_t i = slot;
  size_t j = slot;
  while (true) {
    j = (j + 1) & mask;
    if (slots_[j] == kEmptySlot) break;
    const size_t home = entries_[slots_[j]].hash & mask;
    if (((j - home) & mask) >= ((j - i) & mask)) {
      slots_[i] = slots_[j];
      i = j;
    }
  }
  slots_[i] = kEmptySlot;
}

size_t ViewTable::SlotOf(uint32_t id) const {
  const size_t mask = slots_.size() - 1;
  size_t s = entries_[id].hash & mask;
  while (slots_[s] != id) s = (s + 1) & mask;
  return s;
}

void ViewTable::RemoveFromRow(Index* index, uint64_t subhash, uint32_t id) {
  auto it = index->rows.find(subhash);
  RINGDB_CHECK(it != index->rows.end());
  std::vector<uint32_t>& row = it->second;
  for (uint32_t& rid : row) {
    if (rid == id) {
      rid = row.back();
      row.pop_back();
      break;
    }
  }
  if (row.empty()) {
    // pop_back never shrinks capacity, so the row still accounts for
    // capacity() ids plus its node.
    index_row_bytes_ -=
        kIndexRowNodeBytes + row.capacity() * sizeof(uint32_t);
    index->rows.erase(it);
  }
}

void ViewTable::GrowSlots(size_t min_entries) {
  size_t cap = slots_.empty() ? 16 : slots_.size();
  while (min_entries * 4 > cap * 3) cap *= 2;
  if (cap == slots_.size()) return;
  slots_.assign(cap, kEmptySlot);
  const size_t mask = cap - 1;
  for (uint32_t id = 0; id < entries_.size(); ++id) {
    size_t s = entries_[id].hash & mask;
    while (slots_[s] != kEmptySlot) s = (s + 1) & mask;
    slots_[s] = id;
  }
}

size_t ViewTable::ApproxBytes() const {
  size_t bytes = slots_.capacity() * sizeof(uint32_t) +
                 entries_.capacity() * sizeof(Entry) +
                 arena_.capacity() * sizeof(Value) +
                 (free_blocks_.capacity() + pending_erases_.capacity()) *
                     sizeof(uint32_t) +
                 span_hash_scratch_.capacity() * sizeof(uint64_t) +
                 string_bytes_ + index_row_bytes_;
  // Bucket arrays rehash behind the map's back, so they are queried at
  // read time instead of tracked (O(#indexes), still no entry walk).
  for (const Index& index : indexes_) {
    bytes += index.positions.capacity() * sizeof(size_t);
    bytes += index.rows.bucket_count() * sizeof(void*);
  }
#ifndef NDEBUG
  RINGDB_CHECK_EQ(bytes, ApproxBytesSlow());
#endif
  return bytes;
}

size_t ViewTable::ApproxBytesSlow() const {
  size_t bytes = slots_.capacity() * sizeof(uint32_t) +
                 entries_.capacity() * sizeof(Entry) +
                 arena_.capacity() * sizeof(Value) +
                 (free_blocks_.capacity() + pending_erases_.capacity()) *
                     sizeof(uint32_t) +
                 span_hash_scratch_.capacity() * sizeof(uint64_t);
  // Heap payloads behind string key values (SSO strings cost nothing).
  for (const Entry& e : entries_) {
    bytes += StringHeapBytes(EntryKey(e), arity_);
  }
  for (const Index& index : indexes_) {
    bytes += index.positions.capacity() * sizeof(size_t);
    bytes += index.rows.bucket_count() * sizeof(void*);
    for (const auto& [subhash, row] : index.rows) {
      bytes += kIndexRowNodeBytes + row.capacity() * sizeof(uint32_t);
    }
  }
  return bytes;
}

std::string ViewTable::ToString() const {
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (const Entry& e : entries_) {
    if (e.pending_erase) continue;
    if (!first) out << ", ";
    first = false;
    out << '[';
    const Value* ek = EntryKey(e);
    for (size_t i = 0; i < arity_; ++i) {
      if (i) out << ", ";
      out << ek[i].ToString();
    }
    out << "] -> " << e.value.ToString();
  }
  out << '}';
  return out.str();
}

}  // namespace runtime
}  // namespace ringdb
