// The compiled execution backend: an Executor whose statements run as
// dlopen'd native code (compiler/codegen_c.h emission, runtime/
// native_module.h compilation + caching) instead of bytecode dispatch.
//
// CompiledExecutor is plug-compatible with the interpreter — it overrides
// exactly one seam, RunStatement, and inherits everything else: trigger
// dispatch, delta batching, grouped statement-major execution, lazy
// domain maintenance, stats, and every read path (root views, sharding
// merge-on-read, serving snapshots). A native statement executes as
//
//   host RunStatement            native statement function
//   ------------------           ----------------------------------
//   convert params to RdbVal --> loop nest via api->foreach[_matching]
//   (per-shard scratch)          straight-line rhs over RdbNum locals
//                                api->emit into the host buffers
//   apply buffered emissions <-- return
//   (scaled, stats counted)
//
// so native code never mutates a view: probes and enumeration see frozen
// state for the duration of the statement (which is also what keeps the
// borrowed string pointers in RdbVal valid).
//
// Backend choice is per statement VARIANT (plain rhs vs grouped rhs) and
// profile-guided: the emitter compiles every emittable variant and
// records its static cost-model preference, then during a short warmup
// this executor alternates native and interpreted execution, timing both
// with obs::NowNs, and locks whichever measured cheaper on the live
// workload (cross-multiplied ns-per-run comparison, no division). Under
// -DRINGDB_NO_METRICS there is no clock, so the static preference locks
// immediately. Engine::Stats exports the decision per statement
// (StmtDispatch).
//
// Fallback is per statement and per module: statements the emitter skips
// (lazy domain maintenance) simply keep their interpreter implementation,
// and when no module could be built at all (no host compiler — CI
// sandboxes, locked-down deploys) ShardedExecutor constructs plain
// Executors instead, recording why in native_status().

#ifndef RINGDB_RUNTIME_COMPILED_EXECUTOR_H_
#define RINGDB_RUNTIME_COMPILED_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "compiler/ir.h"
#include "compiler/lower.h"
#include "runtime/interpreter.h"
#include "runtime/native_abi.h"
#include "runtime/native_module.h"

namespace ringdb {
namespace runtime {

// Which statement-execution backend an engine uses (EngineOptions).
enum class Backend {
  kInterpret,  // register-based bytecode interpreter (always available)
  kCompile,    // emitted C compiled at runtime; falls back to the
               // interpreter per statement (lazy domain) and wholesale
               // when no host compiler is available
};

class CompiledExecutor : public Executor {
 public:
  // `module` must have been built from (a program lowered identically to)
  // `program`; ShardedExecutor builds it once and shares it across
  // shards.
  CompiledExecutor(compiler::TriggerProgram program,
                   std::shared_ptr<const NativeModule> module);

  // Statements this executor runs natively (the rest interpret).
  size_t native_statements() const { return module_->native_statements(); }

  void CollectDispatch(std::vector<StmtDispatch>* out) const override;

  // Executor::ApproxBytes plus the native conversion scratch this backend
  // owns (mirror columns, span buffers, param/entry scratch).
  size_t ApproxBytes() const override;

  // Trace-span mode summary over the window profiles: 2 (native) when
  // any variant locked a native columnar entry point, 3 while any is
  // still profiling, else the interpreter's own answer.
  uint32_t window_dispatch_mode() const override;

 protected:
  void RunStatement(const compiler::lower::StmtProgram& sp,
                    const Value* params, Numeric scale,
                    const compiler::lower::RhsProgram& rhs) override;
  // Whole-window dispatch into the columnar native entry points
  // (RdbColStmtFn). Profiled separately from the per-firing variants: the
  // window path competes against the base gather loop (which itself lands
  // in the profiled RunStatement above), so the measured alternative is
  // "best per-firing backend", not just the interpreter.
  void RunStatementWindow(const compiler::lower::StmtProgram& sp,
                          const ColWindow& win,
                          const compiler::lower::RhsProgram& rhs) override;

 private:
  // Profile-guided selection state for one rhs variant. Mode values
  // match StmtDispatch: 0 = interpreter, 1 = native, 2 = still profiling
  // (warmup alternation). Single-writer per shard, like everything else
  // in the executor.
  struct VariantProfile {
    uint8_t mode = 2;
    uint16_t native_runs = 0;
    uint16_t interp_runs = 0;
    uint64_t native_ns = 0;
    uint64_t interp_ns = 0;
  };
  // Warmup runs per backend before a variant's mode locks. Long enough
  // to amortize first-touch effects (branch training, view growth during
  // early batches), short enough that profiling cost is invisible next
  // to steady-state throughput.
  static constexpr uint16_t kWarmupRuns = 12;

  // Like VariantProfile, but for whole-window runs, whose cost scales
  // with the window width: the lock normalizes by row units (ns x units
  // cross-multiplication), so a wide native window and a narrow gathered
  // one still compare per row.
  struct WindowProfile {
    uint8_t mode = 2;
    uint16_t native_runs = 0;
    uint16_t interp_runs = 0;
    uint64_t native_ns = 0;
    uint64_t interp_ns = 0;
    uint64_t native_units = 0;
    uint64_t interp_units = 0;
  };

  struct Fns {
    RdbStmtFn plain = nullptr;
    RdbStmtFn grouped = nullptr;
    // Columnar-window entry points; null for emit-buffered statements
    // (windows are emitted only for direct-add statements).
    RdbColStmtFn col_plain = nullptr;
    RdbColStmtFn col_grouped = nullptr;
    uint32_t param_count = 0;  // trigger relation arity
    VariantProfile plain_profile;
    VariantProfile grouped_profile;
    WindowProfile plain_win_profile;
    WindowProfile grouped_win_profile;
  };

  // Dispatches into `fn` through the RdbHostApi trampolines (the native
  // half of RunStatement; the interpreted half is the base class).
  void RunNative(RdbStmtFn fn, uint32_t param_count,
                 const compiler::lower::StmtProgram& sp, const Value* params,
                 Numeric scale);
  // The native half of RunStatementWindow: mirrors the window's columns
  // into cached RdbVal arrays (once per delta epoch, shared by every
  // statement window cut from it), converts the scales, and runs the
  // whole window in one RdbColStmtFn call.
  void RunNativeWindow(RdbColStmtFn fn, const compiler::lower::StmtProgram& sp,
                       const ColWindow& win);

  // The host-api table handed to every native call (function-local static
  // so the private trampolines stay private).
  static const RdbHostApi& HostApi();

  // RdbHostApi trampolines; ctx is the CompiledExecutor.
  static RdbNum Probe(void* ctx, int32_t view_id, const RdbVal* key,
                      uint32_t n);
  static void Foreach(void* ctx, int32_t view_id, RdbLoopFn fn, void* env);
  static void ForeachMatching(void* ctx, int32_t view_id, int32_t index_id,
                              const RdbVal* subkey, uint32_t n,
                              RdbLoopFn fn, void* env);
  static void Emit(void* ctx, const RdbVal* key, uint32_t n, RdbNum value);
  static void Add(void* ctx, int32_t view_id, const RdbVal* key,
                  uint32_t n, RdbNum delta);
  static void AddSpan(void* ctx, int32_t view_id, const RdbVal* keys,
                      const RdbNum* deltas, uint32_t count, uint32_t arity);
  static void Fail(void* ctx, const char* msg);

  std::shared_ptr<const NativeModule> module_;
  // Lowered statement -> native entry points + profiles, resolved once
  // (lowered_ is immutable and shared, so StmtProgram addresses are
  // stable keys).
  std::unordered_map<const compiler::lower::StmtProgram*, Fns> fns_;

  // Per-call conversion scratch (single-writer executor, like the
  // interpreter's frames): params once per statement, enumerated keys and
  // probe subkeys per loop depth.
  std::vector<RdbVal> param_scratch_;
  std::vector<std::vector<RdbVal>> entry_scratch_;  // per loop depth
  std::vector<Key> subkey_scratch_;                 // per loop depth
  Key probe_scratch_;
  Key add_scratch_;
  size_t depth_ = 0;

  // Columnar-window conversion scratch. Mirror columns are keyed by the
  // window's delta epoch: the first statement window cut from a delta
  // converts the columns it reads (cols_read), later windows over the
  // same delta reuse them — so conversion is once per (delta, column),
  // not once per statement. Pointers for unconverted columns stay null
  // (never dereferenced: window code only names cols_read).
  uint64_t mirror_epoch_ = ~0ull;
  std::vector<std::vector<RdbVal>> mirror_cols_;
  std::vector<const RdbVal*> mirror_ptrs_;
  std::vector<RdbNum> win_scale_scratch_;
  // add_span trampoline conversion buffers (flattened keys + deltas).
  std::vector<Value> span_keys_scratch_;
  std::vector<Numeric> span_deltas_scratch_;
};

}  // namespace runtime
}  // namespace ringdb

#endif  // RINGDB_RUNTIME_COMPILED_EXECUTOR_H_
