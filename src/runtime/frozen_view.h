// Immutable frozen copy of one ViewTable — a shard's published sub-result.
//
// The shard-owned publish path (PR 10) ends every applied window with the
// owning worker freezing its shard's root view into one of these:
// a build-once open-addressing table (dense arity-strided keys, dense
// values, power-of-two slot array with linear probing) plus the
// precomputed ring total of all its multiplicities. serve::ResultSnapshot
// composes the per-shard FrozenViews by shared_ptr — readers probe each
// part and sum in the ring, full scans lazily merge — so publication
// never pays ShardedExecutor::ForEachRootMerged's merge-on-read barrier,
// and a shard untouched by a window republishes its previous FrozenView
// for free (the epoch-carry in ShardedExecutor).
//
// Immutable after Freeze(): every accessor is const and safe to call from
// any number of threads with no synchronization beyond the happens-before
// that delivered the pointer (SnapshotCell / the worker-pool handshake).
//
// Freeze copies out all live entries exactly as ViewTable::ForEach visits
// them — including zero-valued entries of keep_zeros views — so a
// single-part composition preserves the source table's iteration
// semantics bit-for-bit.

#ifndef RINGDB_RUNTIME_FROZEN_VIEW_H_
#define RINGDB_RUNTIME_FROZEN_VIEW_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/view_table.h"
#include "util/numeric.h"
#include "util/value.h"

namespace ringdb {
namespace runtime {

class FrozenView {
 public:
  // Freezes `table`'s current live entries. Must not race a writer of
  // `table` (callers hold the shard token or the executor is quiescent).
  static std::shared_ptr<const FrozenView> Freeze(const ViewTable& table) {
    auto view = std::shared_ptr<FrozenView>(new FrozenView(table.arity()));
    const size_t n = table.size();
    view->keys_.reserve(n * view->arity_);
    view->values_.reserve(n);
    Numeric total = kZero;
    table.ForEach([&](KeyView key, Numeric m) {
      for (size_t i = 0; i < key.size(); ++i) view->keys_.push_back(key[i]);
      view->values_.push_back(m);
      total += m;
    });
    view->total_ = total;
    view->BuildSlots();
    return view;
  }

  size_t arity() const { return arity_; }
  size_t size() const { return values_.size(); }
  // Ring sum of every entry's multiplicity (the shard's contribution to
  // a scalar / Sum(.) read), precomputed so composition is O(shards).
  Numeric total() const { return total_; }

  // Point probe in root key order; 0 when absent (the gmr default).
  Numeric At(const Value* key, size_t n) const {
    if (values_.empty()) return kZero;
    size_t slot = HashValues(key, n) & slot_mask_;
    while (slots_[slot] != kEmptySlot) {
      const uint32_t id = slots_[slot];
      const Value* entry = keys_.data() + static_cast<size_t>(id) * arity_;
      bool match = true;
      for (size_t i = 0; i < n && match; ++i) match = entry[i] == key[i];
      if (match) return values_[id];
      slot = (slot + 1) & slot_mask_;
    }
    return kZero;
  }

  // fn(KeyView, Numeric) per entry, in freeze (= source iteration) order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < values_.size(); ++i) {
      fn(KeyView(keys_.data() + i * arity_, arity_), values_[i]);
    }
  }

  size_t ApproxBytes() const {
    return keys_.capacity() * sizeof(Value) +
           values_.capacity() * sizeof(Numeric) +
           slots_.capacity() * sizeof(uint32_t);
  }

 private:
  static constexpr uint32_t kEmptySlot = UINT32_MAX;

  explicit FrozenView(size_t arity) : arity_(arity) {}

  void BuildSlots() {
    size_t want = 16;
    while (want < values_.size() * 2) want <<= 1;
    slots_.assign(want, kEmptySlot);
    slot_mask_ = want - 1;
    for (size_t id = 0; id < values_.size(); ++id) {
      const uint64_t h = HashValues(keys_.data() + id * arity_, arity_);
      size_t slot = h & slot_mask_;
      while (slots_[slot] != kEmptySlot) slot = (slot + 1) & slot_mask_;
      slots_[slot] = static_cast<uint32_t>(id);
    }
  }

  const size_t arity_;
  Numeric total_ = kZero;
  std::vector<Value> keys_;  // arity_-strided, root key order
  std::vector<Numeric> values_;
  std::vector<uint32_t> slots_;
  size_t slot_mask_ = 0;
};

using FrozenViewPtr = std::shared_ptr<const FrozenView>;

}  // namespace runtime
}  // namespace ringdb

#endif  // RINGDB_RUNTIME_FROZEN_VIEW_H_
