#include "runtime/compiled_executor.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"
#include "util/check.h"

namespace ringdb {
namespace runtime {

namespace lower = compiler::lower;

namespace {

// The emitted preamble (compiler/codegen_c.cc) carries its own textual
// copy of these structs; the load-time rdb_abi_layout handshake keeps the
// two in sync, and this keeps the host honest about its own header.
static_assert(RdbAbiLayout() ==
              sizeof(RdbVal) * 1000000u + offsetof(RdbVal, kind) * 10000u +
                  sizeof(RdbNum) * 100u + offsetof(RdbNum, is_int));

inline RdbVal ToRdbVal(const Value& v) {
  RdbVal r{};
  switch (v.kind()) {
    case Value::Kind::kInt:
      r.kind = 0;
      r.i = v.AsInt();
      break;
    case Value::Kind::kDouble:
      r.kind = 1;
      r.d = v.AsDouble();
      break;
    case Value::Kind::kString: {
      const std::string& s = v.AsString();
      r.kind = 2;
      r.s = s.data();
      r.slen = s.size();
      break;
    }
  }
  return r;
}

inline Value ToValue(const RdbVal& v) {
  switch (v.kind) {
    case 0:
      return Value(v.i);
    case 1:
      return Value(v.d);
    default:
      return Value(std::string(v.s, static_cast<size_t>(v.slen)));
  }
}

inline RdbNum ToRdbNum(Numeric n) {
  RdbNum r{};
  if (n.is_integer()) {
    r.is_int = 1;
    r.i = n.AsInt();
  } else {
    r.is_int = 0;
    r.d = n.AsDouble();
  }
  return r;
}

inline Numeric ToNumeric(RdbNum n) {
  return n.is_int ? Numeric(n.i) : Numeric(n.d);
}

}  // namespace

CompiledExecutor::CompiledExecutor(compiler::TriggerProgram program,
                                   std::shared_ptr<const NativeModule> module)
    : Executor(std::move(program)), module_(std::move(module)) {
  const compiler::TriggerProgram& prog = this->program();
  for (size_t t = 0; t < lowered_->stmts.size(); ++t) {
    const uint32_t arity = static_cast<uint32_t>(
        prog.catalog.Arity(prog.triggers[t].relation));
    for (size_t s = 0; s < lowered_->stmts[t].size(); ++s) {
      const NativeModule::StmtFns& fns = module_->fns(t, s);
      if (fns.plain == nullptr) continue;
      Fns f;
      f.plain = fns.plain;
      f.grouped = fns.grouped;
      f.param_count = arity;
#ifdef RINGDB_NO_METRICS
      // No clock to profile with: lock the emitter's static cost-model
      // preference immediately (the pre-PR 6 behavior).
      f.plain_profile.mode = fns.prefer_native ? 1 : 0;
      f.grouped_profile.mode = fns.grouped_prefer_native ? 1 : 0;
#endif
      fns_.emplace(&lowered_->stmts[t][s], f);
    }
  }
  const size_t depths = std::max<size_t>(lowered_->max_loop_depth, 1);
  entry_scratch_.resize(depths);
  subkey_scratch_.resize(depths);
}

void CompiledExecutor::CollectDispatch(std::vector<StmtDispatch>* out) const {
  out->assign(lowered_->num_statements, StmtDispatch{});
  for (const auto& [sp, f] : fns_) {
    StmtDispatch& d = (*out)[sp->stmt_id];
    d.native_available = f.plain != nullptr;
    d.grouped_available = f.grouped != nullptr;
    d.plain_mode = f.plain_profile.mode;
    d.grouped_mode = f.grouped != nullptr ? f.grouped_profile.mode : 0;
    d.profile_native_ns =
        f.plain_profile.native_ns + f.grouped_profile.native_ns;
    d.profile_interp_ns =
        f.plain_profile.interp_ns + f.grouped_profile.interp_ns;
  }
}

void CompiledExecutor::RunStatement(const lower::StmtProgram& sp,
                                    const Value* params, Numeric scale,
                                    const lower::RhsProgram& rhs) {
  const auto it = fns_.find(&sp);
  if (it == fns_.end()) {
    Executor::RunStatement(sp, params, scale, rhs);
    return;
  }
  Fns& f = it->second;
  // The grouped rhs is a distinct RhsProgram object even when it shares
  // the plain ops, so the address identifies the variant.
  const bool is_grouped = (&rhs != &sp.rhs);
  const RdbStmtFn fn = is_grouped ? f.grouped : f.plain;
  if (fn == nullptr) {
    Executor::RunStatement(sp, params, scale, rhs);
    return;
  }
  VariantProfile& prof = is_grouped ? f.grouped_profile : f.plain_profile;
  switch (prof.mode) {
    case 1:  // locked native
      RunNative(fn, f.param_count, sp, params, scale);
      return;
    case 0:  // locked interpreter
      Executor::RunStatement(sp, params, scale, rhs);
      return;
    default:
      break;  // profiling
  }
  // Warmup: alternate backends, timing each run, until both have
  // kWarmupRuns samples; then lock whichever measured cheaper per run
  // (cross-multiplied so there is no division and ties go native).
  const bool run_native = prof.native_runs <= prof.interp_runs;
  const uint64_t t0 = obs::NowNs();
  if (run_native) {
    RunNative(fn, f.param_count, sp, params, scale);
  } else {
    Executor::RunStatement(sp, params, scale, rhs);
  }
  const uint64_t dt = obs::NowNs() - t0;
  if (run_native) {
    prof.native_ns += dt;
    ++prof.native_runs;
  } else {
    prof.interp_ns += dt;
    ++prof.interp_runs;
  }
  if (prof.native_runs >= kWarmupRuns && prof.interp_runs >= kWarmupRuns) {
    prof.mode = (prof.native_ns * prof.interp_runs <=
                 prof.interp_ns * prof.native_runs)
                    ? 1
                    : 0;
  }
}

void CompiledExecutor::RunNative(RdbStmtFn fn, uint32_t param_count,
                                 const lower::StmtProgram& sp,
                                 const Value* params, Numeric scale) {
  static const RdbHostApi kApi = {
      RDB_ABI_VERSION, &CompiledExecutor::Probe, &CompiledExecutor::Foreach,
      &CompiledExecutor::ForeachMatching, &CompiledExecutor::Emit,
      &CompiledExecutor::Add, &CompiledExecutor::Fail,
  };
  RINGDB_OBS(cur_counters_ = &stmt_counters_[sp.stmt_id]);
  RINGDB_OBS(++cur_counters_->native_calls);
  emission_keys_.clear();
  emission_values_.clear();
  param_scratch_.resize(param_count);
  for (uint32_t i = 0; i < param_count; ++i) {
    param_scratch_[i] = ToRdbVal(params[i]);
  }
  depth_ = 0;
  fn(&kApi, this, param_scratch_.data(), ToRdbNum(scale));
  // Direct-add statements already applied everything (empty buffers);
  // self-loop statements flush here, exactly like the interpreter.
  FlushEmissions(sp, scale);
}

RdbNum CompiledExecutor::Probe(void* ctx, int32_t view_id, const RdbVal* key,
                               uint32_t n) {
  auto* self = static_cast<CompiledExecutor*>(ctx);
  RINGDB_OBS(++self->cur_counters_->probes);
  Key& k = self->probe_scratch_;
  k.resize(n);
  for (uint32_t i = 0; i < n; ++i) k[i] = ToValue(key[i]);
  return ToRdbNum(self->views_[static_cast<size_t>(view_id)].At(k));
}

void CompiledExecutor::Foreach(void* ctx, int32_t view_id, RdbLoopFn fn,
                               void* env) {
  auto* self = static_cast<CompiledExecutor*>(ctx);
  const size_t d = self->depth_++;
  const ViewTable& table = self->views_[static_cast<size_t>(view_id)];
  std::vector<RdbVal>& kbuf = self->entry_scratch_[d];
  kbuf.resize(table.arity());
  table.ForEach([&](KeyView key, Numeric m) {
    RINGDB_OBS(++self->cur_counters_->loop_iterations);
    for (size_t i = 0; i < key.size(); ++i) kbuf[i] = ToRdbVal(key[i]);
    fn(env, kbuf.data(), ToRdbNum(m));
  });
  --self->depth_;
}

void CompiledExecutor::ForeachMatching(void* ctx, int32_t view_id,
                                       int32_t index_id,
                                       const RdbVal* subkey, uint32_t n,
                                       RdbLoopFn fn, void* env) {
  auto* self = static_cast<CompiledExecutor*>(ctx);
  const size_t d = self->depth_++;
  const ViewTable& table = self->views_[static_cast<size_t>(view_id)];
  Key& sk = self->subkey_scratch_[d];
  sk.resize(n);
  for (uint32_t i = 0; i < n; ++i) sk[i] = ToValue(subkey[i]);
  std::vector<RdbVal>& kbuf = self->entry_scratch_[d];
  kbuf.resize(table.arity());
  table.ForEachMatching(index_id, sk, [&](KeyView key, Numeric m) {
    RINGDB_OBS(++self->cur_counters_->loop_iterations);
    for (size_t i = 0; i < key.size(); ++i) kbuf[i] = ToRdbVal(key[i]);
    fn(env, kbuf.data(), ToRdbNum(m));
  });
  --self->depth_;
}

void CompiledExecutor::Emit(void* ctx, const RdbVal* key, uint32_t n,
                            RdbNum value) {
  auto* self = static_cast<CompiledExecutor*>(ctx);
  RINGDB_OBS(++self->cur_counters_->emissions);
  for (uint32_t i = 0; i < n; ++i) {
    self->emission_keys_.push_back(ToValue(key[i]));
  }
  self->emission_values_.push_back(ToNumeric(value));
}

void CompiledExecutor::Add(void* ctx, int32_t view_id, const RdbVal* key,
                           uint32_t n, RdbNum delta) {
  auto* self = static_cast<CompiledExecutor*>(ctx);
  RINGDB_OBS(++self->cur_counters_->emissions);
  Key& k = self->add_scratch_;
  k.resize(n);
  for (uint32_t i = 0; i < n; ++i) k[i] = ToValue(key[i]);
  self->views_[static_cast<size_t>(view_id)].Add(k.data(), n,
                                                 ToNumeric(delta));
  ++self->stats_.entries_touched;
  ++self->stats_.arithmetic_ops;  // the += itself
}

void CompiledExecutor::Fail(void* ctx, const char* msg) {
  // The native analogue of RINGDB_CHECK: invariant violations inside a
  // module (a string flowing into arithmetic) must die loudly, exactly
  // like the interpreter's paths.
  (void)ctx;
  std::fprintf(stderr, "native trigger module CHECK failed: %s\n", msg);
  std::abort();
}

}  // namespace runtime
}  // namespace ringdb
