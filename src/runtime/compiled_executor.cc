#include "runtime/compiled_executor.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"
#include "util/check.h"

namespace ringdb {
namespace runtime {

namespace lower = compiler::lower;

namespace {

// The emitted preamble (compiler/codegen_c.cc) carries its own textual
// copy of these structs; the load-time rdb_abi_layout handshake keeps the
// two in sync, and this keeps the host honest about its own header.
static_assert(RdbAbiLayout() ==
              sizeof(RdbVal) * 1000000u + offsetof(RdbVal, kind) * 10000u +
                  sizeof(RdbNum) * 100u + offsetof(RdbNum, is_int));

inline RdbVal ToRdbVal(const Value& v) {
  RdbVal r{};
  switch (v.kind()) {
    case Value::Kind::kInt:
      r.kind = 0;
      r.i = v.AsInt();
      break;
    case Value::Kind::kDouble:
      r.kind = 1;
      r.d = v.AsDouble();
      break;
    case Value::Kind::kString: {
      const std::string& s = v.AsString();
      r.kind = 2;
      r.s = s.data();
      r.slen = s.size();
      break;
    }
  }
  return r;
}

inline Value ToValue(const RdbVal& v) {
  switch (v.kind) {
    case 0:
      return Value(v.i);
    case 1:
      return Value(v.d);
    default:
      return Value(std::string(v.s, static_cast<size_t>(v.slen)));
  }
}

inline RdbNum ToRdbNum(Numeric n) {
  RdbNum r{};
  if (n.is_integer()) {
    r.is_int = 1;
    r.i = n.AsInt();
  } else {
    r.is_int = 0;
    r.d = n.AsDouble();
  }
  return r;
}

inline Numeric ToNumeric(RdbNum n) {
  return n.is_int ? Numeric(n.i) : Numeric(n.d);
}

}  // namespace

CompiledExecutor::CompiledExecutor(compiler::TriggerProgram program,
                                   std::shared_ptr<const NativeModule> module)
    : Executor(std::move(program)), module_(std::move(module)) {
  const compiler::TriggerProgram& prog = this->program();
  for (size_t t = 0; t < lowered_->stmts.size(); ++t) {
    const uint32_t arity = static_cast<uint32_t>(
        prog.catalog.Arity(prog.triggers[t].relation));
    for (size_t s = 0; s < lowered_->stmts[t].size(); ++s) {
      const NativeModule::StmtFns& fns = module_->fns(t, s);
      if (fns.plain == nullptr) continue;
      Fns f;
      f.plain = fns.plain;
      f.grouped = fns.grouped;
      f.col_plain = fns.col_plain;
      f.col_grouped = fns.col_grouped;
      f.param_count = arity;
#ifdef RINGDB_NO_METRICS
      // No clock to profile with: lock the emitter's static cost-model
      // preference immediately (the pre-PR 6 behavior). The window
      // variants inherit the same per-variant verdict.
      f.plain_profile.mode = fns.prefer_native ? 1 : 0;
      f.grouped_profile.mode = fns.grouped_prefer_native ? 1 : 0;
      f.plain_win_profile.mode = fns.prefer_native ? 1 : 0;
      f.grouped_win_profile.mode = fns.grouped_prefer_native ? 1 : 0;
#endif
      fns_.emplace(&lowered_->stmts[t][s], f);
    }
  }
  const size_t depths = std::max<size_t>(lowered_->max_loop_depth, 1);
  entry_scratch_.resize(depths);
  subkey_scratch_.resize(depths);
}

void CompiledExecutor::CollectDispatch(std::vector<StmtDispatch>* out) const {
  out->assign(lowered_->num_statements, StmtDispatch{});
  for (const auto& [sp, f] : fns_) {
    StmtDispatch& d = (*out)[sp->stmt_id];
    d.native_available = f.plain != nullptr;
    d.grouped_available = f.grouped != nullptr;
    d.window_available = f.col_plain != nullptr;
    d.plain_mode = f.plain_profile.mode;
    d.grouped_mode = f.grouped != nullptr ? f.grouped_profile.mode : 0;
    d.win_plain_mode = f.plain_win_profile.mode;
    d.win_grouped_mode =
        f.col_grouped != nullptr ? f.grouped_win_profile.mode : 0;
    d.profile_native_ns = f.plain_profile.native_ns +
                          f.grouped_profile.native_ns +
                          f.plain_win_profile.native_ns +
                          f.grouped_win_profile.native_ns;
    d.profile_interp_ns = f.plain_profile.interp_ns +
                          f.grouped_profile.interp_ns +
                          f.plain_win_profile.interp_ns +
                          f.grouped_win_profile.interp_ns;
  }
}

uint32_t CompiledExecutor::window_dispatch_mode() const {
  bool native = false;
  bool profiling = false;
  for (const auto& [sp, f] : fns_) {
    if (f.col_plain != nullptr) {
      native = native || f.plain_win_profile.mode == 1;
      profiling = profiling || f.plain_win_profile.mode == 2;
    }
    if (f.col_grouped != nullptr) {
      native = native || f.grouped_win_profile.mode == 1;
      profiling = profiling || f.grouped_win_profile.mode == 2;
    }
  }
  if (native) return 2;
  if (profiling) return 3;
  return Executor::window_dispatch_mode();
}

void CompiledExecutor::RunStatement(const lower::StmtProgram& sp,
                                    const Value* params, Numeric scale,
                                    const lower::RhsProgram& rhs) {
  const auto it = fns_.find(&sp);
  if (it == fns_.end()) {
    Executor::RunStatement(sp, params, scale, rhs);
    return;
  }
  Fns& f = it->second;
  // The grouped rhs is a distinct RhsProgram object even when it shares
  // the plain ops, so the address identifies the variant.
  const bool is_grouped = (&rhs != &sp.rhs);
  const RdbStmtFn fn = is_grouped ? f.grouped : f.plain;
  if (fn == nullptr) {
    Executor::RunStatement(sp, params, scale, rhs);
    return;
  }
  VariantProfile& prof = is_grouped ? f.grouped_profile : f.plain_profile;
  switch (prof.mode) {
    case 1:  // locked native
      RunNative(fn, f.param_count, sp, params, scale);
      return;
    case 0:  // locked interpreter
      Executor::RunStatement(sp, params, scale, rhs);
      return;
    default:
      break;  // profiling
  }
  // Warmup: alternate backends, timing each run, until both have
  // kWarmupRuns samples; then lock whichever measured cheaper per run
  // (cross-multiplied so there is no division and ties go native).
  const bool run_native = prof.native_runs <= prof.interp_runs;
  const uint64_t t0 = obs::NowNs();
  if (run_native) {
    RunNative(fn, f.param_count, sp, params, scale);
  } else {
    Executor::RunStatement(sp, params, scale, rhs);
  }
  const uint64_t dt = obs::NowNs() - t0;
  if (run_native) {
    prof.native_ns += dt;
    ++prof.native_runs;
  } else {
    prof.interp_ns += dt;
    ++prof.interp_runs;
  }
  if (prof.native_runs >= kWarmupRuns && prof.interp_runs >= kWarmupRuns) {
    prof.mode = (prof.native_ns * prof.interp_runs <=
                 prof.interp_ns * prof.native_runs)
                    ? 1
                    : 0;
  }
}

const RdbHostApi& CompiledExecutor::HostApi() {
  static const RdbHostApi kApi = {
      RDB_ABI_VERSION, &CompiledExecutor::Probe, &CompiledExecutor::Foreach,
      &CompiledExecutor::ForeachMatching, &CompiledExecutor::Emit,
      &CompiledExecutor::Add, &CompiledExecutor::Fail,
      &CompiledExecutor::AddSpan,
  };
  return kApi;
}

void CompiledExecutor::RunStatementWindow(const lower::StmtProgram& sp,
                                          const ColWindow& win,
                                          const lower::RhsProgram& rhs) {
  const auto it = fns_.find(&sp);
  Fns* f = it != fns_.end() ? &it->second : nullptr;
  const bool is_grouped = (&rhs != &sp.rhs);
  const RdbColStmtFn fn =
      f != nullptr ? (is_grouped ? f->col_grouped : f->col_plain) : nullptr;
  if (fn == nullptr) {
    // No window entry point (interpreter-only or emit-buffered
    // statement): the base gather loop dispatches per firing through the
    // profiled RunStatement seam above.
    Executor::RunStatementWindow(sp, win, rhs);
    return;
  }
  WindowProfile& prof =
      is_grouped ? f->grouped_win_profile : f->plain_win_profile;
  switch (prof.mode) {
    case 1:  // locked native window
      RunNativeWindow(fn, sp, win);
      return;
    case 0:  // locked per-firing path
      Executor::RunStatementWindow(sp, win, rhs);
      return;
    default:
      break;  // profiling
  }
  // Warmup: alternate whole windows between the native window call and
  // the gathered per-firing path, then lock whichever measured cheaper
  // *per row* — windows vary in width, so the comparison cross-multiplies
  // ns by the other side's row units. Ties go native.
  const bool run_native = prof.native_runs <= prof.interp_runs;
  const uint64_t t0 = obs::NowNs();
  if (run_native) {
    RunNativeWindow(fn, sp, win);
  } else {
    Executor::RunStatementWindow(sp, win, rhs);
  }
  const uint64_t dt = obs::NowNs() - t0;
  // Each side's first window is discarded from the totals (still counted
  // as a run): it pays one-off costs — first mirror-column conversion,
  // module page-in, cold view tables — that would otherwise decide the
  // lock off one outlier sample.
  if (run_native) {
    if (prof.native_runs > 0) {
      prof.native_ns += dt;
      prof.native_units += win.n;
    }
    ++prof.native_runs;
  } else {
    if (prof.interp_runs > 0) {
      prof.interp_ns += dt;
      prof.interp_units += win.n;
    }
    ++prof.interp_runs;
  }
  if (prof.native_runs >= kWarmupRuns && prof.interp_runs >= kWarmupRuns) {
    prof.mode = (prof.native_ns * prof.interp_units <=
                 prof.interp_ns * prof.native_units)
                    ? 1
                    : 0;
  }
}

void CompiledExecutor::RunNativeWindow(RdbColStmtFn fn,
                                       const lower::StmtProgram& sp,
                                       const ColWindow& win) {
  RINGDB_OBS(cur_counters_ = &stmt_counters_[sp.stmt_id]);
  RINGDB_OBS(cur_counters_->native_calls += win.n);
  // Mirror the delta's columns into RdbVal arrays, converting each column
  // at most once per delta (the epoch identifies the column arrays across
  // every statement window cut from the same delta). Only the columns
  // this statement reads are converted; the rest stay null.
  if (win.epoch != mirror_epoch_) {
    mirror_epoch_ = win.epoch;
    mirror_cols_.resize(win.arity);
    mirror_ptrs_.assign(win.arity, nullptr);
  }
  for (uint16_t c : sp.cols_read) {
    if (mirror_ptrs_[c] != nullptr) continue;
    std::vector<RdbVal>& col = mirror_cols_[c];
    col.resize(win.col_len);
    const std::vector<Value>& src = win.cols[c];
    for (size_t i = 0; i < win.col_len; ++i) col[i] = ToRdbVal(src[i]);
    mirror_ptrs_[c] = col.data();
  }
  win_scale_scratch_.resize(win.n);
  for (size_t i = 0; i < win.n; ++i) {
    win_scale_scratch_[i] = ToRdbNum(win.scales[i]);
  }
  RdbColWin w;
  w.cols = mirror_ptrs_.data();
  w.rows = win.rows;
  w.scales = win_scale_scratch_.data();
  w.n = static_cast<uint32_t>(win.n);
  w.arity = win.arity;
  depth_ = 0;
  // Windows exist only for direct-add statements: every emission lands
  // immediately through add/add_span, so there is nothing to flush.
  fn(&HostApi(), this, &w);
}

void CompiledExecutor::RunNative(RdbStmtFn fn, uint32_t param_count,
                                 const lower::StmtProgram& sp,
                                 const Value* params, Numeric scale) {
  RINGDB_OBS(cur_counters_ = &stmt_counters_[sp.stmt_id]);
  RINGDB_OBS(++cur_counters_->native_calls);
  emission_keys_.clear();
  emission_values_.clear();
  param_scratch_.resize(param_count);
  for (uint32_t i = 0; i < param_count; ++i) {
    param_scratch_[i] = ToRdbVal(params[i]);
  }
  depth_ = 0;
  fn(&HostApi(), this, param_scratch_.data(), ToRdbNum(scale));
  // Direct-add statements already applied everything (empty buffers);
  // self-loop statements flush here, exactly like the interpreter.
  FlushEmissions(sp, scale);
}

RdbNum CompiledExecutor::Probe(void* ctx, int32_t view_id, const RdbVal* key,
                               uint32_t n) {
  auto* self = static_cast<CompiledExecutor*>(ctx);
  RINGDB_OBS(++self->cur_counters_->probes);
  Key& k = self->probe_scratch_;
  k.resize(n);
  for (uint32_t i = 0; i < n; ++i) k[i] = ToValue(key[i]);
  return ToRdbNum(self->views_[static_cast<size_t>(view_id)].At(k));
}

void CompiledExecutor::Foreach(void* ctx, int32_t view_id, RdbLoopFn fn,
                               void* env) {
  auto* self = static_cast<CompiledExecutor*>(ctx);
  const size_t d = self->depth_++;
  const ViewTable& table = self->views_[static_cast<size_t>(view_id)];
  std::vector<RdbVal>& kbuf = self->entry_scratch_[d];
  kbuf.resize(table.arity());
  table.ForEach([&](KeyView key, Numeric m) {
    RINGDB_OBS(++self->cur_counters_->loop_iterations);
    for (size_t i = 0; i < key.size(); ++i) kbuf[i] = ToRdbVal(key[i]);
    fn(env, kbuf.data(), ToRdbNum(m));
  });
  --self->depth_;
}

void CompiledExecutor::ForeachMatching(void* ctx, int32_t view_id,
                                       int32_t index_id,
                                       const RdbVal* subkey, uint32_t n,
                                       RdbLoopFn fn, void* env) {
  auto* self = static_cast<CompiledExecutor*>(ctx);
  const size_t d = self->depth_++;
  const ViewTable& table = self->views_[static_cast<size_t>(view_id)];
  Key& sk = self->subkey_scratch_[d];
  sk.resize(n);
  for (uint32_t i = 0; i < n; ++i) sk[i] = ToValue(subkey[i]);
  std::vector<RdbVal>& kbuf = self->entry_scratch_[d];
  kbuf.resize(table.arity());
  table.ForEachMatching(index_id, sk, [&](KeyView key, Numeric m) {
    RINGDB_OBS(++self->cur_counters_->loop_iterations);
    for (size_t i = 0; i < key.size(); ++i) kbuf[i] = ToRdbVal(key[i]);
    fn(env, kbuf.data(), ToRdbNum(m));
  });
  --self->depth_;
}

void CompiledExecutor::Emit(void* ctx, const RdbVal* key, uint32_t n,
                            RdbNum value) {
  auto* self = static_cast<CompiledExecutor*>(ctx);
  RINGDB_OBS(++self->cur_counters_->emissions);
  for (uint32_t i = 0; i < n; ++i) {
    self->emission_keys_.push_back(ToValue(key[i]));
  }
  self->emission_values_.push_back(ToNumeric(value));
}

void CompiledExecutor::Add(void* ctx, int32_t view_id, const RdbVal* key,
                           uint32_t n, RdbNum delta) {
  auto* self = static_cast<CompiledExecutor*>(ctx);
  RINGDB_OBS(++self->cur_counters_->emissions);
  Key& k = self->add_scratch_;
  k.resize(n);
  for (uint32_t i = 0; i < n; ++i) k[i] = ToValue(key[i]);
  self->views_[static_cast<size_t>(view_id)].Add(k.data(), n,
                                                 ToNumeric(delta));
  ++self->stats_.entries_touched;
  ++self->stats_.arithmetic_ops;  // the += itself
}

void CompiledExecutor::AddSpan(void* ctx, int32_t view_id, const RdbVal* keys,
                               const RdbNum* deltas, uint32_t count,
                               uint32_t arity) {
  auto* self = static_cast<CompiledExecutor*>(ctx);
  RINGDB_OBS(self->cur_counters_->emissions += count);
  // One Add's worth of accounting per spanned key, exactly like the
  // element-wise Add trampoline (the chunking must not change counters).
  std::vector<Value>& kb = self->span_keys_scratch_;
  std::vector<Numeric>& vb = self->span_deltas_scratch_;
  const size_t nk = static_cast<size_t>(count) * arity;
  kb.resize(nk);
  for (size_t i = 0; i < nk; ++i) kb[i] = ToValue(keys[i]);
  vb.resize(count);
  for (uint32_t i = 0; i < count; ++i) vb[i] = ToNumeric(deltas[i]);
  self->views_[static_cast<size_t>(view_id)].AddSpan(kb.data(), vb.data(),
                                                     count);
  self->stats_.entries_touched += count;
  self->stats_.arithmetic_ops += count;  // the += per spanned key
}

size_t CompiledExecutor::ApproxBytes() const {
  size_t bytes = Executor::ApproxBytes();
  // Native conversion scratch: param/entry marshalling plus the columnar
  // window buffers (mirror columns, scale column, span buffers).
  bytes += param_scratch_.capacity() * sizeof(RdbVal);
  for (const std::vector<RdbVal>& v : entry_scratch_) {
    bytes += v.capacity() * sizeof(RdbVal);
  }
  for (const std::vector<RdbVal>& v : mirror_cols_) {
    bytes += v.capacity() * sizeof(RdbVal);
  }
  bytes += mirror_ptrs_.capacity() * sizeof(const RdbVal*);
  bytes += win_scale_scratch_.capacity() * sizeof(RdbNum);
  bytes += span_keys_scratch_.capacity() * sizeof(Value);
  bytes += span_deltas_scratch_.capacity() * sizeof(Numeric);
  return bytes;
}

void CompiledExecutor::Fail(void* ctx, const char* msg) {
  // The native analogue of RINGDB_CHECK: invariant violations inside a
  // module (a string flowing into arithmetic) must die loudly, exactly
  // like the interpreter's paths.
  (void)ctx;
  std::fprintf(stderr, "native trigger module CHECK failed: %s\n", msg);
  std::abort();
}

}  // namespace runtime
}  // namespace ringdb
