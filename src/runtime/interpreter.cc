#include "runtime/interpreter.h"

#include <algorithm>

#include "agca/eval.h"
#include "util/check.h"

namespace ringdb {
namespace runtime {

using compiler::KeyRef;
using compiler::LoopSpec;
using compiler::Statement;
using compiler::TExpr;

namespace {

uint64_t TriggerKey(Symbol relation, ring::Update::Sign sign) {
  return (static_cast<uint64_t>(relation.id()) << 1) |
         (sign == ring::Update::Sign::kInsert ? 0u : 1u);
}

void CollectParams(const TExpr& e, std::vector<size_t>* out) {
  if (e.kind() == TExpr::Kind::kParam) out->push_back(e.param_index());
  if (e.kind() == TExpr::Kind::kViewLookup) {
    for (const KeyRef& ref : e.keys()) {
      if (ref.kind() == KeyRef::Kind::kParam) out->push_back(ref.param_index());
    }
  }
  for (const auto& c : e.children()) CollectParams(*c, out);
}

void SortUnique(std::vector<size_t>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

}  // namespace

Executor::Executor(compiler::TriggerProgram program)
    : program_(std::move(program)), base_db_(program_.catalog) {
  views_.reserve(program_.views.size());
  slices_.resize(program_.views.size());
  for (const compiler::ViewDef& v : program_.views) {
    views_.emplace_back(v.key_vars.size());
    if (v.lazy_init) has_lazy_views_ = true;
  }
  plans_.resize(program_.triggers.size());
  for (size_t t = 0; t < program_.triggers.size(); ++t) {
    const compiler::Trigger& trigger = program_.triggers[t];
    trigger_index_.emplace(TriggerKey(trigger.relation, trigger.sign), t);
    plans_[t].resize(trigger.statements.size());
    for (size_t s = 0; s < trigger.statements.size(); ++s) {
      const Statement& stmt = trigger.statements[s];
      StatementPlan& plan = plans_[t][s];
      std::unordered_map<Symbol, bool> bound;  // loop vars bound so far
      for (const LoopSpec& loop : stmt.loops) {
        LoopPlan lp;
        for (size_t pos = 0; pos < loop.pattern.size(); ++pos) {
          const KeyRef& ref = loop.pattern[pos];
          if (ref.kind() == KeyRef::Kind::kLoopVar &&
              !bound.contains(ref.loop_var())) {
            lp.binding_positions.push_back(pos);
            lp.binding_vars.push_back(ref.loop_var());
          } else {
            lp.bound_positions.push_back(pos);
          }
        }
        for (Symbol v : lp.binding_vars) bound.emplace(v, true);
        const compiler::ViewDef& driver_def = program_.view(loop.view_id);
        if (driver_def.lazy_init) {
          lp.lazy_driver = true;
          // Case B (slice-domain loop): the loop binds exactly the slice
          // positions — enumerate initialized slices. Case A: all slice
          // positions are bound — ensure the probed slice, then use the
          // regular index path.
          if (lp.binding_positions == driver_def.slice_positions) {
            lp.slice_domain = true;
          } else {
            for (size_t p : driver_def.slice_positions) {
              RINGDB_CHECK(std::find(lp.bound_positions.begin(),
                                     lp.bound_positions.end(),
                                     p) != lp.bound_positions.end());
            }
          }
        }
        if (!lp.slice_domain && !lp.bound_positions.empty()) {
          lp.index_id = views_[static_cast<size_t>(loop.view_id)].EnsureIndex(
              lp.bound_positions);
        }
        plan.loops.push_back(std::move(lp));
      }
      BuildGroupingPlan(trigger, stmt, &plan);
    }
  }
}

void Executor::BuildGroupingPlan(const compiler::Trigger& trigger,
                                 const Statement& stmt, StatementPlan* plan) {
  if (!trigger.multiplicity_linear) return;
  const size_t arity = program_.catalog.Arity(trigger.relation);
  // Shape params: every param the statement resolves positionally —
  // target keys, loop probe patterns, and all rhs occurrences except the
  // foldable ones extracted below.
  std::vector<size_t> shape;
  for (const KeyRef& ref : stmt.target_key) {
    if (ref.kind() == KeyRef::Kind::kParam) shape.push_back(ref.param_index());
  }
  for (const LoopSpec& loop : stmt.loops) {
    for (const KeyRef& ref : loop.pattern) {
      if (ref.kind() == KeyRef::Kind::kParam) {
        shape.push_back(ref.param_index());
      }
    }
  }
  // Foldable params: bare kParam leaves that are direct factors of a
  // top-level product (or the whole rhs). Their values are pure scalar
  // multipliers, so they move into the group coefficient.
  std::vector<size_t> foldable;
  std::vector<compiler::TExprPtr> residual;
  if (stmt.rhs->kind() == TExpr::Kind::kParam) {
    foldable.push_back(stmt.rhs->param_index());
  } else if (stmt.rhs->kind() == TExpr::Kind::kMul) {
    for (const compiler::TExprPtr& child : stmt.rhs->children()) {
      if (child->kind() == TExpr::Kind::kParam) {
        foldable.push_back(child->param_index());
      } else {
        CollectParams(*child, &shape);
        residual.push_back(child);
      }
    }
  } else {
    CollectParams(*stmt.rhs, &shape);
  }
  SortUnique(&shape);
  // When the shape already spans every param, grouping can only merge
  // identical tuples, which batch coalescing did upstream.
  if (shape.size() >= arity) return;
  plan->groupable = true;
  plan->shape_params = std::move(shape);
  plan->foldable_params = std::move(foldable);
  if (foldable_empty_rhs_ == nullptr) {
    foldable_empty_rhs_ = TExpr::Const(Value(int64_t{1}));
  }
  if (plan->foldable_params.empty()) {
    plan->grouped_rhs = stmt.rhs;
  } else if (residual.empty()) {
    plan->grouped_rhs = foldable_empty_rhs_;
  } else if (residual.size() == 1) {
    plan->grouped_rhs = residual[0];
  } else {
    plan->grouped_rhs = TExpr::Mul(std::move(residual));
  }
}

Status Executor::ApplyDelta(Symbol relation, const std::vector<Value>& values,
                            Numeric multiplicity) {
  if (multiplicity.IsZero()) return Status::Ok();
  if (!program_.catalog.Has(relation)) {
    return Status::NotFound("unknown relation " + relation.str());
  }
  if (program_.catalog.Arity(relation) != values.size()) {
    return Status::InvalidArgument(
        "arity mismatch in update of " + relation.str() + " (got " +
        std::to_string(values.size()) + " values)");
  }
  ApplyDeltaUnchecked(relation, values, multiplicity);
  return Status::Ok();
}

void Executor::ApplyDeltaUnchecked(Symbol relation,
                                   const std::vector<Value>& values,
                                   Numeric multiplicity) {
  // Batch deltas are sums of ±1 events, so net multiplicities are
  // integral; unit-firing fallback for nonlinear triggers needs a count.
  RINGDB_CHECK(multiplicity.is_integer());
  const int64_t m = multiplicity.AsInt();
  const uint64_t count = static_cast<uint64_t>(m > 0 ? m : -m);
  const ring::Update::Sign sign = m > 0 ? ring::Update::Sign::kInsert
                                        : ring::Update::Sign::kDelete;
  const Numeric unit = m > 0 ? kOne : Numeric(int64_t{-1});
  stats_.updates += count;
  ++stats_.delta_entries;
  auto it = trigger_index_.find(TriggerKey(relation, sign));
  if (it == trigger_index_.end()) {
    // Query-irrelevant relation: only the base database (if kept) moves.
    if (has_lazy_views_) base_db_.AddTuple(relation, values, multiplicity);
    return;
  }
  if (program_.triggers[it->second].multiplicity_linear) {
    // Linear in the relation: the delta of `count` identical events is
    // count times the delta of one, so fire once with scaled emissions.
    if (count > 1) ++stats_.scaled_firings;
    FireTrigger(it->second, values, Numeric(static_cast<int64_t>(count)));
    // The base database transitions to D + u only after the trigger ran:
    // deltas and lazy initializations both read the pre-update state.
    if (has_lazy_views_) base_db_.AddTuple(relation, values, multiplicity);
    return;
  }
  for (uint64_t i = 0; i < count; ++i) {
    FireTrigger(it->second, values, kOne);
    if (has_lazy_views_) base_db_.AddTuple(relation, values, unit);
  }
}

Status Executor::ApplyDeltaBatch(Symbol relation,
                                 const std::vector<Delta>& deltas) {
  if (deltas.empty()) return Status::Ok();
  if (!program_.catalog.Has(relation)) {
    return Status::NotFound("unknown relation " + relation.str());
  }
  const size_t arity = program_.catalog.Arity(relation);
  for (const Delta& d : deltas) {
    if (d.values->size() != arity) {
      return Status::InvalidArgument("arity mismatch in batch delta of " +
                                     relation.str());
    }
  }
  // Split by sign (insert trigger for net-positive entries, delete
  // trigger for net-negative); each sign group runs as one sequential
  // block, so cross-relation read dependencies see a consistent prefix.
  std::vector<Delta> by_sign[2];
  for (const Delta& d : deltas) {
    if (d.multiplicity.IsZero()) continue;
    RINGDB_CHECK(d.multiplicity.is_integer());
    by_sign[d.multiplicity.AsInt() > 0 ? 0 : 1].push_back(d);
  }
  for (int s = 0; s < 2; ++s) {
    const std::vector<Delta>& group = by_sign[s];
    if (group.empty()) continue;
    const ring::Update::Sign sign = s == 0 ? ring::Update::Sign::kInsert
                                           : ring::Update::Sign::kDelete;
    auto it = trigger_index_.find(TriggerKey(relation, sign));
    const bool linear =
        it != trigger_index_.end() &&
        program_.triggers[it->second].multiplicity_linear &&
        group.size() > 1;
    if (linear) {
      for (const Delta& d : group) {
        const int64_t m = d.multiplicity.AsInt();
        stats_.updates += static_cast<uint64_t>(m > 0 ? m : -m);
        ++stats_.delta_entries;
        if (m > 1 || m < -1) ++stats_.scaled_firings;
      }
      RunLinearTriggerBatch(it->second, group);
      if (has_lazy_views_) {
        base_db_.Reserve(relation, group.size());
        for (const Delta& d : group) {
          base_db_.AddTuple(relation, *d.values, d.multiplicity);
        }
      }
    } else {
      // Entries were validated against the catalog above.
      for (const Delta& d : group) {
        ApplyDeltaUnchecked(relation, *d.values, d.multiplicity);
      }
    }
  }
  return Status::Ok();
}

void Executor::RunLinearTriggerBatch(size_t trigger_idx,
                                     const std::vector<Delta>& deltas) {
  const compiler::Trigger& trigger = program_.triggers[trigger_idx];
  const std::vector<StatementPlan>& plans = plans_[trigger_idx];
  // Statement-major: linearity guarantees no statement reads anything
  // this trigger writes, so all firings of one statement see the same
  // state and merge freely.
  std::unordered_map<Key, size_t, KeyHash> groups;
  std::vector<std::pair<const std::vector<Value>*, Numeric>> reps;
  for (size_t s = 0; s < trigger.statements.size(); ++s) {
    const Statement& stmt = trigger.statements[s];
    const StatementPlan& plan = plans[s];
    if (!plan.groupable) {
      for (const Delta& d : deltas) {
        ++stats_.statements_run;
        const int64_t m = d.multiplicity.AsInt();
        RunStatement(stmt, plan, *d.values,
                     Numeric(m > 0 ? m : -m), *stmt.rhs);
      }
      continue;
    }
    // Accumulate one coefficient per distinct shape projection:
    // sum over entries of |multiplicity| * product(foldable params).
    groups.clear();
    reps.clear();
    Key shape_key(plan.shape_params.size());
    for (const Delta& d : deltas) {
      const std::vector<Value>& values = *d.values;
      for (size_t i = 0; i < plan.shape_params.size(); ++i) {
        shape_key[i] = values[plan.shape_params[i]];
      }
      const int64_t m = d.multiplicity.AsInt();
      Numeric coeff(m > 0 ? m : -m);
      for (size_t p : plan.foldable_params) {
        auto n = values[p].ToNumeric();
        RINGDB_CHECK(n.ok());
        coeff *= *n;
        ++stats_.arithmetic_ops;
      }
      auto [slot, inserted] = groups.try_emplace(shape_key, reps.size());
      if (inserted) {
        reps.emplace_back(&values, coeff);
      } else {
        reps[slot->second].second += coeff;
        ++stats_.arithmetic_ops;
      }
    }
    for (const auto& [rep_values, coeff] : reps) {
      if (coeff.IsZero()) continue;
      ++stats_.statements_run;
      RunStatement(stmt, plan, *rep_values, coeff, *plan.grouped_rhs);
    }
  }
}

void Executor::FireTrigger(size_t trigger_idx,
                           const std::vector<Value>& params, Numeric scale) {
  const compiler::Trigger& trigger = program_.triggers[trigger_idx];
  const std::vector<StatementPlan>& plans = plans_[trigger_idx];
  for (size_t s = 0; s < trigger.statements.size(); ++s) {
    ++stats_.statements_run;
    RunStatement(trigger.statements[s], plans[s], params, scale,
                 *trigger.statements[s].rhs);
  }
}

void Executor::ReserveForBatch(size_t additional) {
  for (ViewMap& v : views_) v.Reserve(v.size() + additional);
}

void Executor::RunStatement(const Statement& stmt, const StatementPlan& plan,
                            const std::vector<Value>& params, Numeric scale,
                            const TExpr& rhs) {
  Bindings& bindings = bindings_scratch_;
  bindings.clear();
  // Emissions are buffered and applied after all loops finish: a
  // statement may loop over its own target view (domain maintenance), and
  // mutating a map during enumeration is undefined.
  std::vector<Emission>& emissions = emissions_scratch_;
  emissions.clear();
  RunLoops(stmt, plan, 0, params, rhs, &bindings, &emissions);
  const bool scaled = !scale.IsOne();
  for (Emission& e : emissions) {
    if (scaled) {
      e.second *= scale;
      ++stats_.arithmetic_ops;
    }
    AddToView(stmt.target_view, e.first, e.second);
    ++stats_.entries_touched;
    ++stats_.arithmetic_ops;  // the += itself
  }
}

void Executor::RunLoops(const Statement& stmt, const StatementPlan& plan,
                        size_t loop_index, const std::vector<Value>& params,
                        const TExpr& rhs, Bindings* bindings,
                        std::vector<Emission>* emissions) {
  if (loop_index == stmt.loops.size()) {
    Emit(stmt, params, rhs, *bindings, emissions);
    return;
  }
  const LoopSpec& loop = stmt.loops[loop_index];
  const LoopPlan& lp = plan.loops[loop_index];
  const ViewMap& driver = views_[static_cast<size_t>(loop.view_id)];

  // The KeyView is only read before the recursion (bindings copy the
  // values out), so writes to `driver` deeper in the loop nest — lazy
  // slice initialization, self-loop maintenance — cannot invalidate it
  // mid-use.
  auto body = [&](KeyView key, Numeric) {
    // Bind this loop's variables from the enumerated key; positions that
    // repeat a variable within the same loop must agree.
    std::vector<Symbol> inserted_here;
    bool ok = true;
    for (size_t i = 0; i < lp.binding_positions.size() && ok; ++i) {
      Symbol var = lp.binding_vars[i];
      const Value& v = key[lp.binding_positions[i]];
      auto [it, inserted] = bindings->emplace(var, v);
      if (inserted) {
        inserted_here.push_back(var);
      } else if (it->second != v) {
        ok = false;
      }
    }
    if (ok) {
      RunLoops(stmt, plan, loop_index + 1, params, rhs, bindings, emissions);
    }
    for (Symbol var : inserted_here) bindings->erase(var);
  };

  if (lp.slice_domain) {
    // Enumerate the initialized slice subkeys; each binds the slice-
    // position loop variables (bound positions are outside the subkey).
    const auto& slices = slices_[static_cast<size_t>(loop.view_id)];
    const auto& positions =
        program_.view(loop.view_id).slice_positions;
    for (const Key& slice : slices) {
      Key synthetic(loop.pattern.size());
      for (size_t i = 0; i < positions.size(); ++i) {
        synthetic[positions[i]] = slice[i];
      }
      body(synthetic, kZero);
    }
    return;
  }
  if (lp.lazy_driver) {
    // Case A: the bound positions cover the slice; materialize it before
    // enumerating so the index sees every entry.
    Key full(loop.pattern.size());
    for (size_t pos : lp.bound_positions) {
      full[pos] = ResolveKey(loop.pattern[pos], params, *bindings);
    }
    EnsureSliceFor(loop.view_id, full);
  }
  if (lp.index_id >= 0) {
    Key subkey;
    subkey.reserve(lp.bound_positions.size());
    for (size_t pos : lp.bound_positions) {
      subkey.push_back(ResolveKey(loop.pattern[pos], params, *bindings));
    }
    driver.ForEachMatching(lp.index_id, subkey, body);
  } else {
    driver.ForEach(body);
  }
}

void Executor::Emit(const Statement& stmt, const std::vector<Value>& params,
                    const TExpr& rhs, const Bindings& bindings,
                    std::vector<Emission>* emissions) {
  Numeric value = EvalNumeric(rhs, params, bindings);
  if (value.IsZero()) return;
  Key key;
  key.reserve(stmt.target_key.size());
  for (const KeyRef& ref : stmt.target_key) {
    key.push_back(ResolveKey(ref, params, bindings));
  }
  emissions->emplace_back(std::move(key), value);
}

void Executor::InitializeLazySlice(int view_id, const Key& slice_key) {
  const compiler::ViewDef& def = program_.view(view_id);
  std::vector<ring::Tuple::Field> fields;
  fields.reserve(slice_key.size());
  for (size_t i = 0; i < def.slice_positions.size(); ++i) {
    fields.emplace_back(def.key_vars[def.slice_positions[i]],
                        slice_key[i]);
  }
  ring::Tuple env = ring::Tuple::FromFields(std::move(fields));
  auto result = agca::Evaluate(def.definition, base_db_, env);
  // Compiled view definitions are range-restricted queries; evaluation
  // cannot fail on a well-formed program.
  RINGDB_CHECK(result.ok());
  ViewMap& view = views_[static_cast<size_t>(view_id)];
  for (const auto& [tuple, m] : result->support()) {
    Key key(def.key_vars.size());
    for (size_t j = 0; j < def.key_vars.size(); ++j) {
      const Value* v = tuple.Get(def.key_vars[j]);
      RINGDB_CHECK(v != nullptr);
      key[j] = *v;
    }
    view.Add(key, m);
  }
  slices_[static_cast<size_t>(view_id)].insert(slice_key);
  ++stats_.init_evaluations;
}

void Executor::EnsureSliceFor(int view_id, const Key& full_key) {
  const compiler::ViewDef& def = program_.view(view_id);
  if (!def.lazy_init) return;
  Key slice;
  slice.reserve(def.slice_positions.size());
  for (size_t p : def.slice_positions) slice.push_back(full_key[p]);
  if (!slices_[static_cast<size_t>(view_id)].contains(slice)) {
    InitializeLazySlice(view_id, slice);
  }
}

Numeric Executor::ProbeView(int view_id, const Key& key) {
  EnsureSliceFor(view_id, key);
  return views_[static_cast<size_t>(view_id)].At(key);
}

void Executor::AddToView(int view_id, const Key& key, Numeric delta) {
  EnsureSliceFor(view_id, key);
  views_[static_cast<size_t>(view_id)].Add(key, delta);
}

Value Executor::ResolveKey(const KeyRef& ref, const std::vector<Value>& params,
                           const Bindings& bindings) const {
  switch (ref.kind()) {
    case KeyRef::Kind::kParam:
      return params[ref.param_index()];
    case KeyRef::Kind::kConst:
      return ref.constant();
    case KeyRef::Kind::kLoopVar: {
      auto it = bindings.find(ref.loop_var());
      RINGDB_CHECK(it != bindings.end());
      return it->second;
    }
  }
  RINGDB_CHECK(false);
  return Value();
}

Numeric Executor::EvalNumeric(const TExpr& e, const std::vector<Value>& params,
                              const Bindings& bindings) {
  switch (e.kind()) {
    case TExpr::Kind::kConst: {
      auto n = e.constant().ToNumeric();
      RINGDB_CHECK(n.ok());
      return *n;
    }
    case TExpr::Kind::kParam: {
      auto n = params[e.param_index()].ToNumeric();
      RINGDB_CHECK(n.ok());
      return *n;
    }
    case TExpr::Kind::kLoopVar: {
      auto it = bindings.find(e.loop_var());
      RINGDB_CHECK(it != bindings.end());
      auto n = it->second.ToNumeric();
      RINGDB_CHECK(n.ok());
      return *n;
    }
    case TExpr::Kind::kViewLookup: {
      Key key;
      key.reserve(e.keys().size());
      for (const KeyRef& ref : e.keys()) {
        key.push_back(ResolveKey(ref, params, bindings));
      }
      return ProbeView(e.view_id(), key);
    }
    case TExpr::Kind::kAdd: {
      Numeric total = kZero;
      bool first = true;
      for (const auto& c : e.children()) {
        Numeric v = EvalNumeric(*c, params, bindings);
        if (first) {
          total = v;
          first = false;
        } else {
          total += v;
          ++stats_.arithmetic_ops;
        }
      }
      return total;
    }
    case TExpr::Kind::kMul: {
      Numeric total = kOne;
      bool first = true;
      for (const auto& c : e.children()) {
        Numeric v = EvalNumeric(*c, params, bindings);
        if (first) {
          total = v;
          first = false;
        } else {
          total *= v;
          ++stats_.arithmetic_ops;
        }
      }
      return total;
    }
    case TExpr::Kind::kCmp: {
      Value l = EvalValue(*e.children()[0], params, bindings);
      Value r = EvalValue(*e.children()[1], params, bindings);
      ++stats_.arithmetic_ops;
      bool holds = false;
      switch (e.cmp_op()) {
        case agca::CmpOp::kEq: holds = (l == r); break;
        case agca::CmpOp::kNe: holds = (l != r); break;
        default: {
          auto ln = l.ToNumeric();
          auto rn = r.ToNumeric();
          RINGDB_CHECK(ln.ok());
          RINGDB_CHECK(rn.ok());
          switch (e.cmp_op()) {
            case agca::CmpOp::kLt: holds = *ln < *rn; break;
            case agca::CmpOp::kLe: holds = *ln <= *rn; break;
            case agca::CmpOp::kGt: holds = *ln > *rn; break;
            case agca::CmpOp::kGe: holds = *ln >= *rn; break;
            default: RINGDB_CHECK(false);
          }
        }
      }
      return holds ? kOne : kZero;
    }
  }
  RINGDB_CHECK(false);
  return kZero;
}

Value Executor::EvalValue(const TExpr& e, const std::vector<Value>& params,
                          const Bindings& bindings) {
  switch (e.kind()) {
    case TExpr::Kind::kConst:
      return e.constant();
    case TExpr::Kind::kParam:
      return params[e.param_index()];
    case TExpr::Kind::kLoopVar: {
      auto it = bindings.find(e.loop_var());
      RINGDB_CHECK(it != bindings.end());
      return it->second;
    }
    default:
      return Value(EvalNumeric(e, params, bindings));
  }
}

size_t Executor::ApproxBytes() const {
  size_t bytes = 0;
  for (const ViewMap& v : views_) bytes += v.ApproxBytes();
  return bytes;
}

}  // namespace runtime
}  // namespace ringdb
