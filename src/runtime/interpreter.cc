#include "runtime/interpreter.h"

#include <algorithm>
#include <cstdlib>

#include "agca/eval.h"
#include "util/check.h"
#include "util/hash.h"

namespace ringdb {
namespace runtime {

namespace lower = compiler::lower;

Executor::Executor(compiler::TriggerProgram program)
    : program_(std::move(program)), base_db_(program_.catalog) {
  // Single-shard construction lowers here; the sharded executor lowers
  // once and shares the result across shards.
  if (program_.lowered == nullptr) {
    program_.lowered = lower::Lower(program_);
  }
  lowered_ = program_.lowered;

  views_.reserve(program_.views.size());
  slices_.resize(program_.views.size());
  for (const compiler::ViewDef& v : program_.views) {
    views_.emplace_back(v.key_vars.size());
    if (v.lazy_init) has_lazy_views_ = true;
  }
  // Replay the lowering pass's index registrations; EnsureIndex
  // deduplicates identically, so the assigned ids match the
  // LoopProgram::index_id values baked into the bytecode.
  for (size_t v = 0; v < views_.size(); ++v) {
    int expected = 0;
    for (const std::vector<size_t>& positions :
         lowered_->view_indexes[v].position_sets) {
      RINGDB_CHECK_EQ(views_[v].EnsureIndex(positions), expected);
      ++expected;
    }
  }
  // Flat (relation, sign) -> trigger map over the program's own
  // relation-id span.
  if (!program_.triggers.empty()) {
    uint32_t min_rel = UINT32_MAX;
    uint32_t max_rel = 0;
    for (const compiler::Trigger& t : program_.triggers) {
      min_rel = std::min(min_rel, t.relation.id());
      max_rel = std::max(max_rel, t.relation.id());
    }
    trigger_base_ = min_rel;
    trigger_lookup_.assign(
        2 * (static_cast<size_t>(max_rel - min_rel) + 1), -1);
    for (size_t t = 0; t < program_.triggers.size(); ++t) {
      const compiler::Trigger& trigger = program_.triggers[t];
      const size_t idx =
          static_cast<size_t>(trigger.relation.id() - trigger_base_) * 2 +
          (trigger.sign == ring::Update::Sign::kDelete ? 1 : 0);
      trigger_lookup_[idx] = static_cast<int32_t>(t);
    }
  }
  // Execution scratch, sized to the program's maxima once.
  frame_.resize(lowered_->max_frame);
  stack_.resize(std::max<uint32_t>(lowered_->max_stack, 1));
  loop_values_.resize(lowered_->max_loop_depth);
  loop_key_scratch_.resize(lowered_->max_loop_depth);
  stmt_counters_.resize(std::max<uint32_t>(lowered_->num_statements, 1));
  cur_counters_ = stmt_counters_.data();
  // Representation toggle for differential testing: force the legacy
  // row-at-a-time batch path even when the caller hands us columns.
  const char* force_row = std::getenv("RINGDB_FORCE_ROW");
  force_row_ = force_row != nullptr && force_row[0] == '1';
}

Status Executor::ApplyDelta(Symbol relation, const std::vector<Value>& values,
                            Numeric multiplicity) {
  if (multiplicity.IsZero()) return Status::Ok();
  if (!program_.catalog.Has(relation)) {
    return Status::NotFound("unknown relation " + relation.str());
  }
  if (program_.catalog.Arity(relation) != values.size()) {
    return Status::InvalidArgument(
        "arity mismatch in update of " + relation.str() + " (got " +
        std::to_string(values.size()) + " values)");
  }
  ApplyDeltaUnchecked(relation, values, multiplicity);
  return Status::Ok();
}

void Executor::ApplyDeltaUnchecked(Symbol relation,
                                   const std::vector<Value>& values,
                                   Numeric multiplicity) {
  // Batch deltas are sums of ±1 events, so net multiplicities are
  // integral; unit-firing fallback for nonlinear triggers needs a count.
  RINGDB_CHECK(multiplicity.is_integer());
  const int64_t m = multiplicity.AsInt();
  const uint64_t count = static_cast<uint64_t>(m > 0 ? m : -m);
  const ring::Update::Sign sign = m > 0 ? ring::Update::Sign::kInsert
                                        : ring::Update::Sign::kDelete;
  const Numeric unit = m > 0 ? kOne : Numeric(int64_t{-1});
  stats_.updates += count;
  ++stats_.delta_entries;
  const int t = FindTrigger(relation, sign);
  if (t < 0) {
    // Query-irrelevant relation: only the base database (if kept) moves.
    if (has_lazy_views_) base_db_.AddTuple(relation, values, multiplicity);
    return;
  }
  if (program_.triggers[static_cast<size_t>(t)].multiplicity_linear) {
    // Linear in the relation: the delta of `count` identical events is
    // count times the delta of one, so fire once with scaled emissions.
    if (count > 1) ++stats_.scaled_firings;
    FireTrigger(static_cast<size_t>(t), values.data(),
                Numeric(static_cast<int64_t>(count)));
    // The base database transitions to D + u only after the trigger ran:
    // deltas and lazy initializations both read the pre-update state.
    if (has_lazy_views_) base_db_.AddTuple(relation, values, multiplicity);
    return;
  }
  for (uint64_t i = 0; i < count; ++i) {
    FireTrigger(static_cast<size_t>(t), values.data(), kOne);
    if (has_lazy_views_) base_db_.AddTuple(relation, values, unit);
  }
}

Status Executor::ApplyDeltaBatch(Symbol relation,
                                 const std::vector<Delta>& deltas) {
  if (deltas.empty()) return Status::Ok();
  if (!program_.catalog.Has(relation)) {
    return Status::NotFound("unknown relation " + relation.str());
  }
  const size_t arity = program_.catalog.Arity(relation);
  for (const Delta& d : deltas) {
    if (d.values->size() != arity) {
      return Status::InvalidArgument("arity mismatch in batch delta of " +
                                     relation.str());
    }
  }
  // Split by sign (insert trigger for net-positive entries, delete
  // trigger for net-negative); each sign group runs as one sequential
  // block, so cross-relation read dependencies see a consistent prefix.
  std::vector<Delta> by_sign[2];
  for (const Delta& d : deltas) {
    if (d.multiplicity.IsZero()) continue;
    RINGDB_CHECK(d.multiplicity.is_integer());
    by_sign[d.multiplicity.AsInt() > 0 ? 0 : 1].push_back(d);
  }
  for (int s = 0; s < 2; ++s) {
    const std::vector<Delta>& group = by_sign[s];
    if (group.empty()) continue;
    const ring::Update::Sign sign = s == 0 ? ring::Update::Sign::kInsert
                                           : ring::Update::Sign::kDelete;
    const int t = FindTrigger(relation, sign);
    const bool linear =
        t >= 0 &&
        program_.triggers[static_cast<size_t>(t)].multiplicity_linear &&
        group.size() > 1;
    if (linear) {
      for (const Delta& d : group) {
        const int64_t m = d.multiplicity.AsInt();
        stats_.updates += static_cast<uint64_t>(m > 0 ? m : -m);
        ++stats_.delta_entries;
        if (m > 1 || m < -1) ++stats_.scaled_firings;
      }
      RunLinearTriggerBatch(static_cast<size_t>(t), group);
      if (has_lazy_views_) {
        base_db_.Reserve(relation, group.size());
        for (const Delta& d : group) {
          base_db_.AddTuple(relation, *d.values, d.multiplicity);
        }
      }
    } else {
      // Entries were validated against the catalog above.
      for (const Delta& d : group) {
        ApplyDeltaUnchecked(relation, *d.values, d.multiplicity);
      }
    }
  }
  return Status::Ok();
}

Status Executor::ApplyDeltaColumns(const exec::RelationDelta& delta,
                                   const uint32_t* rows, size_t n) {
  if (rows == nullptr) n = delta.size();
  if (n == 0) return Status::Ok();
  if (!program_.catalog.Has(delta.relation)) {
    return Status::NotFound("unknown relation " + delta.relation.str());
  }
  if (program_.catalog.Arity(delta.relation) != delta.arity()) {
    return Status::InvalidArgument("arity mismatch in batch delta of " +
                                   delta.relation.str());
  }
  if (force_row_) return ApplyDeltaRowFallback(delta, rows, n);
  ++col_epoch_;
  // Split by sign (insert trigger for net-positive rows, delete trigger
  // for net-negative); each sign group runs as one sequential block, so
  // cross-relation read dependencies see a consistent prefix. Mirrors
  // ApplyDeltaBatch exactly, over row ids instead of entry copies.
  sign_rows_[0].clear();
  sign_rows_[1].clear();
  for (size_t i = 0; i < n; ++i) {
    const uint32_t r = rows != nullptr ? rows[i] : static_cast<uint32_t>(i);
    const Numeric& m = delta.mults[r];
    if (m.IsZero()) continue;
    RINGDB_CHECK(m.is_integer());
    sign_rows_[m.AsInt() > 0 ? 0 : 1].push_back(r);
  }
  for (int s = 0; s < 2; ++s) {
    const std::vector<uint32_t>& group = sign_rows_[s];
    if (group.empty()) continue;
    const ring::Update::Sign sign = s == 0 ? ring::Update::Sign::kInsert
                                           : ring::Update::Sign::kDelete;
    const int t = FindTrigger(delta.relation, sign);
    const bool linear =
        t >= 0 &&
        program_.triggers[static_cast<size_t>(t)].multiplicity_linear &&
        group.size() > 1;
    if (linear) {
      for (const uint32_t r : group) {
        const int64_t m = delta.mults[r].AsInt();
        stats_.updates += static_cast<uint64_t>(m > 0 ? m : -m);
        ++stats_.delta_entries;
        if (m > 1 || m < -1) ++stats_.scaled_firings;
      }
      RunLinearTriggerBatchColumnar(static_cast<size_t>(t), delta,
                                    group.data(), group.size());
      if (has_lazy_views_) {
        base_db_.Reserve(delta.relation, group.size());
        row_gather_.resize(delta.arity());
        for (const uint32_t r : group) {
          delta.GatherRow(r, row_gather_.data());
          base_db_.AddTuple(delta.relation, row_gather_, delta.mults[r]);
        }
      }
    } else {
      row_gather_.resize(delta.arity());
      for (const uint32_t r : group) {
        delta.GatherRow(r, row_gather_.data());
        ApplyDeltaUnchecked(delta.relation, row_gather_, delta.mults[r]);
      }
    }
  }
  return Status::Ok();
}

Status Executor::ApplyDeltaRowFallback(const exec::RelationDelta& delta,
                                       const uint32_t* rows, size_t n) {
  row_values_scratch_.resize(n);
  row_deltas_scratch_.clear();
  row_deltas_scratch_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t r = rows != nullptr ? rows[i] : static_cast<uint32_t>(i);
    std::vector<Value>& values = row_values_scratch_[i];
    values.resize(delta.arity());
    delta.GatherRow(r, values.data());
    row_deltas_scratch_.push_back(Delta{&values, delta.mults[r]});
  }
  return ApplyDeltaBatch(delta.relation, row_deltas_scratch_);
}

void Executor::RunLinearTriggerBatchColumnar(size_t trigger_idx,
                                             const exec::RelationDelta& delta,
                                             const uint32_t* rows, size_t n) {
  // Statement-major, like RunLinearTriggerBatch; the grouping decisions
  // and every semantic counter are identical to the row path — only the
  // execution mechanics (column indexing, window dispatch) differ.
  const std::vector<Value>* cols = delta.columns.data();
  const uint32_t arity = static_cast<uint32_t>(delta.arity());
  for (const lower::StmtProgram& sp : lowered_->stmts[trigger_idx]) {
    if (!sp.groupable) {
      win_rows_.assign(rows, rows + n);
      win_scales_.resize(n);
      for (size_t i = 0; i < n; ++i) {
        const int64_t m = delta.mults[rows[i]].AsInt();
        win_scales_[i] = Numeric(m > 0 ? m : -m);
      }
      stats_.statements_run += n;
      RINGDB_OBS(stmt_counters_[sp.stmt_id].invocations += n);
      const ColWindow win{cols,  win_rows_.data(), win_scales_.data(),
                          n,     arity,            delta.size(),
                          col_epoch_};
#ifndef RINGDB_NO_METRICS
      const uint64_t win_t0 = obs::NowNs();
#endif
      RunStatementWindow(sp, win, sp.rhs);
      RINGDB_OBS(stmt_counters_[sp.stmt_id].window_ns +=
                 obs::NowNs() - win_t0);
      continue;
    }
    // Accumulate one coefficient per distinct shape projection:
    // sum over rows of |multiplicity| * product(foldable params). The
    // open-addressing table keys on the shape columns in place.
    rep_rows_.clear();
    rep_coeffs_.clear();
    rep_hashes_.clear();
    size_t cap = group_slots_.empty() ? 16 : group_slots_.size();
    while (n * 4 > cap * 3) cap *= 2;
    group_slots_.assign(cap, UINT32_MAX);
    const size_t mask = cap - 1;
    for (size_t i = 0; i < n; ++i) {
      const uint32_t r = rows[i];
      uint64_t h = 0x51c9a7f0d3b86e25ULL;
      for (uint16_t p : sp.shape_params) {
        h = HashCombine(h, cols[p][r].Hash());
      }
      const int64_t m = delta.mults[r].AsInt();
      Numeric coeff(m > 0 ? m : -m);
      for (uint16_t p : sp.foldable_params) {
        auto num = cols[p][r].ToNumeric();
        RINGDB_CHECK(num.ok());
        coeff *= *num;
        ++stats_.arithmetic_ops;
      }
      size_t slot = h & mask;
      bool merged = false;
      while (group_slots_[slot] != UINT32_MAX) {
        const uint32_t g = group_slots_[slot];
        if (rep_hashes_[g] == h) {
          bool eq = true;
          for (uint16_t p : sp.shape_params) {
            if (!(cols[p][rep_rows_[g]] == cols[p][r])) {
              eq = false;
              break;
            }
          }
          if (eq) {
            rep_coeffs_[g] += coeff;
            ++stats_.arithmetic_ops;
            merged = true;
            break;
          }
        }
        slot = (slot + 1) & mask;
      }
      if (!merged) {
        group_slots_[slot] = static_cast<uint32_t>(rep_rows_.size());
        rep_rows_.push_back(r);
        rep_coeffs_.push_back(coeff);
        rep_hashes_.push_back(h);
      }
    }
    // Fire the survivors in first-touch order, like the row path's
    // reps_scratch_ walk (zero coefficients are skipped uncounted).
    win_rows_.clear();
    win_scales_.clear();
    for (size_t g = 0; g < rep_rows_.size(); ++g) {
      if (rep_coeffs_[g].IsZero()) continue;
      win_rows_.push_back(rep_rows_[g]);
      win_scales_.push_back(rep_coeffs_[g]);
    }
    if (win_rows_.empty()) continue;
    stats_.statements_run += win_rows_.size();
    RINGDB_OBS(stmt_counters_[sp.stmt_id].invocations += win_rows_.size());
    const ColWindow win{cols,
                        win_rows_.data(),
                        win_scales_.data(),
                        win_rows_.size(),
                        arity,
                        delta.size(),
                        col_epoch_};
#ifndef RINGDB_NO_METRICS
    const uint64_t win_t0 = obs::NowNs();
#endif
    RunStatementWindow(sp, win, sp.grouped_rhs);
    RINGDB_OBS(stmt_counters_[sp.stmt_id].window_ns +=
               obs::NowNs() - win_t0);
  }
}

void Executor::RunStatementWindow(const lower::StmtProgram& sp,
                                  const ColWindow& win,
                                  const lower::RhsProgram& rhs) {
  // Base implementation: gather each row's params and run the per-firing
  // seam, so an interpreter-only executor (and any subclass that lacks a
  // native window variant) executes windows row by row with unchanged
  // semantics and counters.
  param_gather_.resize(win.arity);
  for (size_t i = 0; i < win.n; ++i) {
    const uint32_t r = win.rows[i];
    for (uint32_t c = 0; c < win.arity; ++c) {
      param_gather_[c] = win.cols[c][r];
    }
    RunStatement(sp, param_gather_.data(), win.scales[i], rhs);
  }
}

void Executor::RunLinearTriggerBatch(size_t trigger_idx,
                                     const std::vector<Delta>& deltas) {
  // Statement-major: linearity guarantees no statement reads anything
  // this trigger writes, so all firings of one statement see the same
  // state and merge freely.
  for (const lower::StmtProgram& sp : lowered_->stmts[trigger_idx]) {
    if (!sp.groupable) {
      for (const Delta& d : deltas) {
        ++stats_.statements_run;
        RINGDB_OBS(++stmt_counters_[sp.stmt_id].invocations);
        const int64_t m = d.multiplicity.AsInt();
        RunStatement(sp, d.values->data(), Numeric(m > 0 ? m : -m), sp.rhs);
      }
      continue;
    }
    // Accumulate one coefficient per distinct shape projection:
    // sum over entries of |multiplicity| * product(foldable params).
    groups_scratch_.clear();
    reps_scratch_.clear();
    shape_scratch_.resize(sp.shape_params.size());
    for (const Delta& d : deltas) {
      const std::vector<Value>& values = *d.values;
      for (size_t i = 0; i < sp.shape_params.size(); ++i) {
        shape_scratch_[i] = values[sp.shape_params[i]];
      }
      const int64_t m = d.multiplicity.AsInt();
      Numeric coeff(m > 0 ? m : -m);
      for (uint16_t p : sp.foldable_params) {
        auto n = values[p].ToNumeric();
        RINGDB_CHECK(n.ok());
        coeff *= *n;
        ++stats_.arithmetic_ops;
      }
      auto [slot, inserted] =
          groups_scratch_.try_emplace(shape_scratch_, reps_scratch_.size());
      if (inserted) {
        reps_scratch_.emplace_back(&values, coeff);
      } else {
        reps_scratch_[slot->second].second += coeff;
        ++stats_.arithmetic_ops;
      }
    }
    for (const auto& [rep_values, coeff] : reps_scratch_) {
      if (coeff.IsZero()) continue;
      ++stats_.statements_run;
      RINGDB_OBS(++stmt_counters_[sp.stmt_id].invocations);
      RunStatement(sp, rep_values->data(), coeff, sp.grouped_rhs);
    }
  }
}

void Executor::FireTrigger(size_t trigger_idx, const Value* params,
                           Numeric scale) {
  for (const lower::StmtProgram& sp : lowered_->stmts[trigger_idx]) {
    ++stats_.statements_run;
    RINGDB_OBS(++stmt_counters_[sp.stmt_id].invocations);
    RunStatement(sp, params, scale, sp.rhs);
  }
}

void Executor::ReserveForBatch(size_t additional) {
  for (ViewTable& v : views_) v.Reserve(v.size() + additional);
}

void Executor::RunStatement(const lower::StmtProgram& sp, const Value* params,
                            Numeric scale, const lower::RhsProgram& rhs) {
  RINGDB_OBS(cur_counters_ = &stmt_counters_[sp.stmt_id]);
  RINGDB_OBS(++cur_counters_->interp_calls);
  // Emissions are buffered and applied after all loops finish: a
  // statement may loop over its own target view (domain maintenance), and
  // mutating a view during enumeration would change what later iterations
  // observe.
  emission_keys_.clear();
  emission_values_.clear();
  RunLoops(sp, 0, params, rhs);
  FlushEmissions(sp, scale);
}

void Executor::FlushEmissions(const lower::StmtProgram& sp, Numeric scale) {
  const size_t count = emission_values_.size();
  if (count == 0) return;
  const bool scaled = !scale.IsOne();
  const size_t arity = sp.target_key.size;
  ViewTable& target = views_[static_cast<size_t>(sp.target_view)];
  if (scaled) {
    for (size_t i = 0; i < count; ++i) emission_values_[i] *= scale;
    stats_.arithmetic_ops += count;
  }
  if (sp.target_lazy) {
    // Lazy targets interleave slice initialization with each emission, so
    // they stay element-wise.
    for (size_t i = 0; i < count; ++i) {
      const Value* key = emission_keys_.data() + i * arity;
      slice_scratch_.resize(sp.target_slice_positions.size());
      for (size_t j = 0; j < sp.target_slice_positions.size(); ++j) {
        slice_scratch_[j] = key[sp.target_slice_positions[j]];
      }
      EnsureSlice(sp.target_view, slice_scratch_);
      target.Add(key, arity, emission_values_[i]);
    }
  } else {
    // The emission buffer is already a column span (flattened keys +
    // parallel deltas); apply it through the batched Add.
    target.AddSpan(emission_keys_.data(), emission_values_.data(), count);
  }
  stats_.entries_touched += count;
  stats_.arithmetic_ops += count;  // the += itself
}

bool Executor::BindLoop(const lower::LoopProgram& lp, const Value* key) {
  for (const lower::LoopBind& b : lp.binds) {
    if (b.is_filter) {
      // Positions that repeat an already-bound variable must agree.
      if (frame_[b.frame] != key[b.pos]) return false;
    } else {
      frame_[b.frame] = key[b.pos];
    }
  }
  return true;
}

void Executor::RunLoops(const lower::StmtProgram& sp, size_t loop_index,
                        const Value* params,
                        const lower::RhsProgram& rhs) {
  if (loop_index == sp.loops.size()) {
    Emit(sp, params, rhs);
    return;
  }
  const lower::LoopProgram& lp = sp.loops[loop_index];
  const ViewTable& driver = views_[static_cast<size_t>(lp.view_id)];

  if (lp.slice_domain) {
    // Enumerate the initialized slice subkeys; each binds the slice-
    // position loop variables (bound positions are outside the subkey).
    for (const Key& slice : slices_[static_cast<size_t>(lp.view_id)]) {
      RINGDB_OBS(++cur_counters_->loop_iterations);
      if (!BindLoop(lp, slice.data())) continue;
      loop_values_[loop_index] = kZero;
      RunLoops(sp, loop_index + 1, params, rhs);
    }
    return;
  }
  if (lp.lazy_driver) {
    // Case A: the bound positions cover the slice; materialize it before
    // enumerating so the index sees every entry.
    BuildKey(sp, lp.lazy_slice, params, &slice_scratch_);
    EnsureSlice(lp.view_id, slice_scratch_);
  }
  // The KeyView is only read before the recursion (binds copy the values
  // into frame slots), so writes to `driver` deeper in the loop nest —
  // lazy slice initialization, self-loop maintenance — cannot invalidate
  // it mid-use.
  auto body = [&](KeyView key, Numeric value) {
    RINGDB_OBS(++cur_counters_->loop_iterations);
    if (!BindLoop(lp, key.begin())) return;
    loop_values_[loop_index] = value;
    RunLoops(sp, loop_index + 1, params, rhs);
  };
  if (lp.index_id >= 0) {
    // The probe subkey must stay alive for the whole enumeration (the
    // index verifies candidates against it), so each loop depth owns a
    // scratch buffer.
    Key& subkey = loop_key_scratch_[loop_index];
    BuildKey(sp, lp.probe, params, &subkey);
    driver.ForEachMatching(lp.index_id, subkey, body);
  } else {
    driver.ForEach(body);
  }
}

void Executor::Emit(const lower::StmtProgram& sp, const Value* params,
                    const lower::RhsProgram& rhs) {
  Numeric value = EvalRhs(sp, rhs, params);
  if (value.IsZero()) return;
  RINGDB_OBS(++cur_counters_->emissions);
  const lower::SlotRef* refs = sp.slot_refs.data() + sp.target_key.first;
  for (size_t i = 0; i < sp.target_key.size; ++i) {
    emission_keys_.push_back(Resolve(sp, refs[i], params));
  }
  emission_values_.push_back(value);
}

Numeric Executor::AsNum(const Reg& r) const {
  if (r.ref == nullptr) return r.num;
  auto n = r.ref->ToNumeric();
  RINGDB_CHECK(n.ok());
  return *n;
}

Numeric Executor::EvalRhs(const lower::StmtProgram& sp,
                          const lower::RhsProgram& rhs, const Value* params) {
  Reg* stack = stack_.data();
  size_t top = 0;
  for (const lower::Op& op : rhs.ops) {
    switch (op.code) {
      case lower::OpCode::kLoadConst:
        stack[top++].ref = &sp.const_pool[op.a];
        break;
      case lower::OpCode::kLoadParam:
        stack[top++].ref = &params[op.a];
        break;
      case lower::OpCode::kLoadFrame:
        stack[top++].ref = &frame_[op.a];
        break;
      case lower::OpCode::kLoadLoopValue: {
        Reg& r = stack[top++];
        r.ref = nullptr;
        r.num = loop_values_[op.a];
        break;
      }
      case lower::OpCode::kProbeView: {
        const lower::ProbePlan& plan = sp.probes[op.a];
        RINGDB_OBS(++cur_counters_->probes);
        BuildKey(sp, plan.key, params, &probe_scratch_);
        Reg& r = stack[top++];
        r.ref = nullptr;
        r.num = ProbeView(plan, probe_scratch_);
        break;
      }
      case lower::OpCode::kAdd: {
        const size_t n = op.a;
        Numeric total = AsNum(stack[top - n]);
        for (size_t i = 1; i < n; ++i) {
          total += AsNum(stack[top - n + i]);
          ++stats_.arithmetic_ops;
        }
        top -= n;
        stack[top].ref = nullptr;
        stack[top].num = total;
        ++top;
        break;
      }
      case lower::OpCode::kMul: {
        const size_t n = op.a;
        Numeric total = AsNum(stack[top - n]);
        for (size_t i = 1; i < n; ++i) {
          total *= AsNum(stack[top - n + i]);
          ++stats_.arithmetic_ops;
        }
        top -= n;
        stack[top].ref = nullptr;
        stack[top].num = total;
        ++top;
        break;
      }
      case lower::OpCode::kCmp: {
        const Reg rr = stack[--top];
        const Reg lr = stack[--top];
        ++stats_.arithmetic_ops;
        const auto cop = static_cast<agca::CmpOp>(op.aux);
        bool holds = false;
        if (cop == agca::CmpOp::kEq || cop == agca::CmpOp::kNe) {
          // Kind-sensitive Value equality, like the tree walker's
          // EvalValue path; computed operands materialize transiently.
          bool eq;
          if (lr.ref != nullptr && rr.ref != nullptr) {
            eq = (*lr.ref == *rr.ref);
          } else {
            const Value lv = lr.ref != nullptr ? *lr.ref : Value(lr.num);
            const Value rv = rr.ref != nullptr ? *rr.ref : Value(rr.num);
            eq = (lv == rv);
          }
          holds = (cop == agca::CmpOp::kEq) ? eq : !eq;
        } else {
          const Numeric ln = AsNum(lr);
          const Numeric rn = AsNum(rr);
          switch (cop) {
            case agca::CmpOp::kLt: holds = ln < rn; break;
            case agca::CmpOp::kLe: holds = ln <= rn; break;
            case agca::CmpOp::kGt: holds = ln > rn; break;
            case agca::CmpOp::kGe: holds = ln >= rn; break;
            default: RINGDB_CHECK(false);
          }
        }
        Reg& out = stack[top++];
        out.ref = nullptr;
        out.num = holds ? kOne : kZero;
        break;
      }
    }
  }
  return AsNum(stack[0]);
}

Numeric Executor::ProbeView(const lower::ProbePlan& plan, const Key& key) {
  if (plan.lazy) {
    slice_scratch_.resize(plan.slice_positions.size());
    for (size_t i = 0; i < plan.slice_positions.size(); ++i) {
      slice_scratch_[i] = key[plan.slice_positions[i]];
    }
    EnsureSlice(plan.view_id, slice_scratch_);
  }
  return views_[static_cast<size_t>(plan.view_id)].At(key);
}

void Executor::InitializeLazySlice(int view_id, const Key& slice_key) {
  const compiler::ViewDef& def = program_.view(view_id);
  std::vector<ring::Tuple::Field> fields;
  fields.reserve(slice_key.size());
  for (size_t i = 0; i < def.slice_positions.size(); ++i) {
    fields.emplace_back(def.key_vars[def.slice_positions[i]],
                        slice_key[i]);
  }
  ring::Tuple env = ring::Tuple::FromFields(std::move(fields));
  auto result = agca::Evaluate(def.definition, base_db_, env);
  // Compiled view definitions are range-restricted queries; evaluation
  // cannot fail on a well-formed program.
  RINGDB_CHECK(result.ok());
  ViewTable& view = views_[static_cast<size_t>(view_id)];
  for (const auto& [tuple, m] : result->support()) {
    Key key(def.key_vars.size());
    for (size_t j = 0; j < def.key_vars.size(); ++j) {
      const Value* v = tuple.Get(def.key_vars[j]);
      RINGDB_CHECK(v != nullptr);
      key[j] = *v;
    }
    view.Add(key, m);
  }
  slices_[static_cast<size_t>(view_id)].insert(slice_key);
  ++stats_.init_evaluations;
}

size_t Executor::ApproxBytes() const {
  size_t bytes = 0;
  for (const ViewTable& v : views_) bytes += v.ApproxBytes();
  // Columnar window scratch: sign/row/scale buffers plus the grouped-path
  // open-addressing table (the per-Value payloads are trigger params, all
  // inline kinds in practice, so capacities suffice).
  bytes += (sign_rows_[0].capacity() + sign_rows_[1].capacity() +
            group_slots_.capacity() + rep_rows_.capacity() +
            win_rows_.capacity()) *
           sizeof(uint32_t);
  bytes += (rep_coeffs_.capacity() + win_scales_.capacity()) *
           sizeof(Numeric);
  bytes += rep_hashes_.capacity() * sizeof(uint64_t);
  bytes += (param_gather_.capacity() + row_gather_.capacity()) *
           sizeof(Value);
  for (const std::vector<Value>& row : row_values_scratch_) {
    bytes += row.capacity() * sizeof(Value);
  }
  bytes += row_deltas_scratch_.capacity() * sizeof(Delta);
  return bytes;
}

}  // namespace runtime
}  // namespace ringdb
