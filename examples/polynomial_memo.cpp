// The §1.1 warm-up as a library user would write it: maintain f(x) = x²
// under ±1 updates with the recursive delta memoizer, reproducing the
// seven memoized values of Figure 1 — after initialization, f is never
// re-evaluated; every update costs three additions.

#include <cstdio>
#include <cstdlib>

#include "algebra/memoizer.h"
#include "util/table_printer.h"

int main() {
  using Memo = ringdb::algebra::RecursiveMemoizer<int64_t, int64_t, int64_t>;
  // Updates: index 0 is +1, index 1 is -1. The k with Delta^k f == 0 is
  // deg(f) + 1 = 3, known statically.
  Memo memo([](const int64_t& x) { return x * x; },
            [](const int64_t& x, const int64_t& u) { return x + u; },
            {+1, -1}, /*depth=*/3, /*initial=*/0);

  std::printf("memoized values for x = 0 (7 = |U|^0 + |U|^1 + |U|^2):\n");
  std::printf("  f(x)         = %lld\n",
              static_cast<long long>(memo.Current()));
  std::printf("  df(x,+1)     = %lld\n",
              static_cast<long long>(memo.DeltaAt({0})));
  std::printf("  df(x,-1)     = %lld\n",
              static_cast<long long>(memo.DeltaAt({1})));
  std::printf("  d2f(x,+1,+1) = %lld (constant from here on)\n\n",
              static_cast<long long>(memo.DeltaAt({0, 0})));

  std::printf("a random walk; every step is 3 additions, no squaring:\n");
  ringdb::TablePrinter table({"step", "update", "x", "f(x) (memoized)"});
  int64_t x = 0;
  unsigned seed = 12345;
  for (int step = 1; step <= 10; ++step) {
    seed = seed * 1103515245 + 12345;
    size_t u = (seed >> 16) % 2;
    memo.ApplyUpdate(u);
    x += (u == 0) ? 1 : -1;
    table.AddRow({std::to_string(step), u == 0 ? "+1" : "-1",
                  std::to_string(x),
                  std::to_string(static_cast<long long>(memo.Current()))});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\ntotal additions performed: %zu\n",
              memo.AdditionsPerformed());
  return 0;
}
