// Serving quickstart: register two standing queries over one catalog,
// stream updates through serve::QueryService, and read versioned
// snapshots from a concurrent reader thread while ingestion runs.
//
//   $ ./examples/serving
//
// Each ingest window's per-relation delta GMRs are coalesced once and
// fanned out to both queries; after every applied window each query
// publishes an immutable ResultSnapshot through an RCU-style pointer
// swap, so the reader below never blocks the writer and never sees a
// half-applied batch (DESIGN.md "Serving layer").

#include <atomic>
#include <cstdio>
#include <thread>

#include "obs/trace_export.h"
#include "serve/query_service.h"
#include "workload/stream.h"

using ringdb::Symbol;
using ringdb::Value;

int main() {
  ringdb::ring::Catalog catalog = ringdb::workload::OrdersSchema();

  // 1. Two standing queries over the shared schema.
  ringdb::serve::ServeOptions options;
  options.batch_size = 256;
  ringdb::serve::QueryService service(catalog, options);
  auto revenue = service.RegisterSql(
      "revenue",
      "SELECT o.ckey, SUM(l.price * l.qty) FROM orders o, lineitem l "
      "WHERE o.okey = l.okey GROUP BY o.ckey");
  auto counts = service.RegisterSql(
      "counts", "SELECT o.ckey, SUM(1) FROM orders o GROUP BY o.ckey");
  if (!revenue.ok() || !counts.ok()) {
    std::fprintf(stderr, "register failed\n");
    return 1;
  }
  service.Start();

  // 2. A reader polls snapshots while the writer streams: version is
  // the applied-window epoch, reads are wait-free point lookups.
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    uint64_t last_version = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      auto snapshot = service.snapshot(*revenue);
      if (snapshot->version() != last_version) {
        last_version = snapshot->version();
        std::printf("  [reader] version %llu: %zu customers, "
                    "revenue(ckey=1) = %s\n",
                    static_cast<unsigned long long>(last_version),
                    snapshot->size(),
                    snapshot->Get({Value(1)}).ToString().c_str());
      }
      std::this_thread::yield();
    }
  });

  // 3. The writer: a zipf-skewed order/lineitem stream with deletes.
  ringdb::workload::StreamOptions stream_options;
  stream_options.seed = 7;
  stream_options.domain_size = 64;
  stream_options.zipf_s = 1.1;
  stream_options.delete_fraction = 0.1;
  std::vector<ringdb::workload::RelationStream> streams;
  streams.emplace_back(catalog, Symbol::Intern("orders"), stream_options);
  streams.emplace_back(catalog, Symbol::Intern("lineitem"),
                       stream_options);
  ringdb::workload::RoundRobinStream stream(std::move(streams));
  bool push_failed = false;
  for (int i = 0; i < 20000 && !push_failed; ++i) {
    push_failed = !service.Push(stream.Next()).ok();
  }
  service.Drain();
  stop.store(true);
  reader.join();  // before any return: a joinable thread must be joined
  if (push_failed) {
    std::fprintf(stderr, "push failed\n");
    return 1;
  }

  // 4. Final state, from both queries' snapshots.
  std::printf("final: revenue version %llu over %zu customers, "
              "counts(ckey=1) = %s, total orders = %s\n",
              static_cast<unsigned long long>(service.version(*revenue)),
              service.snapshot(*revenue)->size(),
              service.Get(*counts, {Value(1)}).ToString().c_str(),
              service.snapshot(*counts)->scalar().ToString().c_str());

  // 5. The pipeline's own story: Stats() is safe to poll from any
  // thread while ingest runs (operators do exactly that); here the
  // drained service reports queue waits, coalesce/apply/publish spans,
  // and per-query staleness (DESIGN.md "Observability").
  std::printf("\nservice stats:\n%s", service.StatsText().c_str());

  // 6. Where did each window's time go? The flight recorder kept a full
  // per-stage trace of the last windows (DESIGN.md "Tracing");
  // TraceJson() exports the same data as Chrome trace-event JSON for
  // chrome://tracing / Perfetto.
  std::printf("\nstage breakdown (last %zu windows):\n%s",
              service.TraceWindows().size(),
              ringdb::obs::TraceBreakdownText(
                  ringdb::obs::ComputeTraceBreakdown(service.TraceWindows()))
                  .c_str());
  service.Stop();
  return 0;
}
