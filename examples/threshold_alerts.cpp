// Threshold analytics with inequality joins: for each alert rule
// (a price threshold), maintain the total quantity of trades priced
// strictly above it. Inequality joins are where naive delta
// materialization explodes; the engine maintains them with lazily
// initialized per-threshold slices (paper footnote 2).

#include <cstdio>

#include "agca/ast.h"
#include "ring/database.h"
#include "runtime/engine.h"
#include "util/random.h"
#include "util/table_printer.h"

using ringdb::Symbol;
using ringdb::Value;
using ringdb::agca::CmpOp;
using ringdb::agca::Expr;
using ringdb::agca::Term;

int main() {
  ringdb::ring::Catalog catalog;
  Symbol trades = Symbol::Intern("trades");   // (price, qty)
  Symbol rules = Symbol::Intern("rules");     // (rule_id, threshold)
  catalog.AddRelation(trades,
                      {Symbol::Intern("price"), Symbol::Intern("qty")});
  catalog.AddRelation(rules,
                      {Symbol::Intern("rule"), Symbol::Intern("limit")});

  // Per rule: SUM(qty) over trades with price > limit.
  Symbol rule = Symbol::Intern("r"), limit = Symbol::Intern("lim"),
         price = Symbol::Intern("p"), qty = Symbol::Intern("q");
  auto body = Expr::Mul({Expr::Relation(rules, {Term(rule), Term(limit)}),
                         Expr::Relation(trades, {Term(price), Term(qty)}),
                         Expr::Cmp(CmpOp::kGt, Expr::Var(price),
                                   Expr::Var(limit)),
                         Expr::Var(qty)});
  auto engine = ringdb::runtime::Engine::Create(catalog, {rule}, body);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  // Two alert rules, then a burst of trades, then a third rule added
  // *after* the trades — its aggregate is initialized on first touch.
  (void)engine->Insert(rules, {Value(1), Value(100)});
  (void)engine->Insert(rules, {Value(2), Value(250)});
  ringdb::Rng rng(7);
  int64_t above_100 = 0, above_250 = 0, above_400 = 0;
  for (int i = 0; i < 10000; ++i) {
    int64_t p = rng.Range(1, 500), q = rng.Range(1, 10);
    (void)engine->Insert(trades, {Value(p), Value(q)});
    if (p > 100) above_100 += q;
    if (p > 250) above_250 += q;
    if (p > 400) above_400 += q;
  }
  (void)engine->Insert(rules, {Value(3), Value(400)});  // late rule

  ringdb::TablePrinter table({"rule", "limit", "qty above limit",
                              "expected"});
  table.AddRow({"1", "100",
                engine->ResultAt({Value(1)}).ToString(),
                std::to_string(above_100)});
  table.AddRow({"2", "250",
                engine->ResultAt({Value(2)}).ToString(),
                std::to_string(above_250)});
  table.AddRow({"3", "400",
                engine->ResultAt({Value(3)}).ToString(),
                std::to_string(above_400)});
  std::printf("%s", table.Render().c_str());

  const auto& stats = engine->executor().stats();
  std::printf(
      "\n%llu updates; %llu slice initializations (one per distinct "
      "threshold/price probe, not per update)\n",
      static_cast<unsigned long long>(stats.updates),
      static_cast<unsigned long long>(stats.init_evaluations));
  return 0;
}
