// Sales analytics over a high-rate update stream — the Example 1.3
// scenario at scale. Maintains SUM(A*F) over a three-way chain join under
// a mixed insert/delete stream and reports throughput plus the factorized
// view hierarchy that makes each update O(1).

#include <chrono>
#include <cstdio>

#include "agca/ast.h"
#include "ring/database.h"
#include "runtime/engine.h"
#include "util/random.h"
#include "workload/stream.h"

using ringdb::Symbol;
using ringdb::Value;
using ringdb::agca::Expr;
using ringdb::agca::Term;

int main() {
  // R(A,B) |><| S(B=C, D) |><| T(D=E, F), aggregate SUM(A*F) — written
  // directly in AGCA with shared variables for the join equalities.
  ringdb::ring::Catalog catalog;
  Symbol r = Symbol::Intern("R"), s = Symbol::Intern("S"),
         t = Symbol::Intern("T");
  catalog.AddRelation(r, {Symbol::Intern("A"), Symbol::Intern("B")});
  catalog.AddRelation(s, {Symbol::Intern("C"), Symbol::Intern("D")});
  catalog.AddRelation(t, {Symbol::Intern("E"), Symbol::Intern("F")});

  Symbol a = Symbol::Intern("a"), b = Symbol::Intern("b"),
         d = Symbol::Intern("d"), f = Symbol::Intern("f");
  auto body = Expr::Mul({Expr::Relation(r, {Term(a), Term(b)}),
                         Expr::Relation(s, {Term(b), Term(d)}),
                         Expr::Relation(t, {Term(d), Term(f)}),
                         Expr::Var(a), Expr::Var(f)});

  auto engine = ringdb::runtime::Engine::Create(catalog, {}, body);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("factorized hierarchy (Example 1.3):\n%s\n",
              engine->program().ToString().c_str());

  ringdb::workload::StreamOptions options;
  options.seed = 42;
  options.domain_size = 512;
  options.delete_fraction = 0.15;
  options.zipf_s = 1.05;
  std::vector<ringdb::workload::RelationStream> streams;
  streams.emplace_back(catalog, r, options);
  streams.emplace_back(catalog, s, options);
  streams.emplace_back(catalog, t, options);
  ringdb::workload::RoundRobinStream stream(std::move(streams));

  constexpr int kUpdates = 200000;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kUpdates; ++i) {
    auto status = engine->Apply(stream.Next());
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();

  std::printf("maintained SUM(A*F) = %s after %d updates\n",
              engine->ResultScalar().ToString().c_str(), kUpdates);
  std::printf("throughput: %.0f updates/s (%.2f us/update)\n",
              kUpdates / elapsed, 1e6 * elapsed / kUpdates);
  const auto& st = engine->executor().stats();
  std::printf("arithmetic ops per update: %.2f (constant in |DB|)\n",
              static_cast<double>(st.arithmetic_ops) / st.updates);
  return 0;
}
