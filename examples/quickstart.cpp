// Quickstart: declare a schema, write a SQL aggregate query, stream
// single-tuple updates, and read the incrementally maintained result.
//
//   $ ./examples/quickstart
//
// Under the hood the query is translated to AGCA (§4), compiled into a
// hierarchy of materialized views by recursive delta processing (§1.1,
// §7), and maintained with a constant number of arithmetic operations per
// update — no joins and no aggregation are ever executed at update time.

#include <cstdio>

#include "ring/database.h"
#include "runtime/engine.h"
#include "sql/translate.h"

using ringdb::Symbol;
using ringdb::Value;

int main() {
  // 1. Schema: orders(okey, ckey), lineitem(okey, price, qty).
  ringdb::ring::Catalog catalog;
  Symbol orders = Symbol::Intern("orders");
  Symbol lineitem = Symbol::Intern("lineitem");
  catalog.AddRelation(orders, {Symbol::Intern("okey"),
                               Symbol::Intern("ckey")});
  catalog.AddRelation(lineitem,
                      {Symbol::Intern("okey"), Symbol::Intern("price"),
                       Symbol::Intern("qty")});

  // 2. Query: revenue per customer, maintained incrementally.
  auto query = ringdb::sql::TranslateSql(
      catalog,
      "SELECT o.ckey, SUM(l.price * l.qty) FROM orders o, lineitem l "
      "WHERE o.okey = l.okey GROUP BY o.ckey");
  if (!query.ok()) {
    std::fprintf(stderr, "translate: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }

  // 3. Compile to a trigger program over a view hierarchy.
  auto engine = ringdb::runtime::Engine::Create(catalog, query->group_vars,
                                                query->body);
  if (!engine.ok()) {
    std::fprintf(stderr, "compile: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("compiled view hierarchy:\n%s\n",
              engine->program().ToString().c_str());

  // 4. Stream updates; the result is always fresh.
  (void)engine->Insert(orders, {Value(1001), Value(7)});
  (void)engine->Insert(lineitem, {Value(1001), Value(10), Value(3)});
  (void)engine->Insert(lineitem, {Value(1001), Value(4), Value(5)});
  (void)engine->Insert(orders, {Value(1002), Value(9)});
  (void)engine->Insert(lineitem, {Value(1002), Value(100), Value(1)});
  std::printf("revenue[customer 7] = %s\n",
              engine->ResultAt({Value(7)}).ToString().c_str());
  std::printf("revenue[customer 9] = %s\n",
              engine->ResultAt({Value(9)}).ToString().c_str());

  // Deletions are just additive inverses in the ring of databases (§3).
  (void)engine->Delete(lineitem, {Value(1001), Value(4), Value(5)});
  std::printf("after retraction, revenue[customer 7] = %s\n",
              engine->ResultAt({Value(7)}).ToString().c_str());

  const auto& stats = engine->executor().stats();
  std::printf(
      "\n%llu updates, %llu view-entry increments, %llu arithmetic ops "
      "(%.1f ops/update — constant, per Theorem 7.1)\n",
      static_cast<unsigned long long>(stats.updates),
      static_cast<unsigned long long>(stats.entries_touched),
      static_cast<unsigned long long>(stats.arithmetic_ops),
      static_cast<double>(stats.arithmetic_ops) /
          static_cast<double>(stats.updates));
  return 0;
}
