// Example 5.2 as an application: a social platform maintains, for every
// customer, how many customers share their nationality — a grouped
// self-join count kept fresh under arrivals, departures, and relocations.

#include <cstdio>
#include <map>

#include "ring/database.h"
#include "runtime/engine.h"
#include "sql/translate.h"
#include "util/table_printer.h"

using ringdb::Symbol;
using ringdb::Value;

namespace {

void PrintCounts(const ringdb::runtime::Engine& engine, const char* title) {
  std::printf("%s\n", title);
  ringdb::TablePrinter table({"cid", "same-nation count"});
  // ResultGmr returns tuples over the SQL group columns.
  Symbol cid = Symbol::Intern("C1.cid");
  auto gmr = engine.ResultGmr();
  std::map<int64_t, ringdb::Numeric> ordered;
  for (const auto& [t, m] : gmr.support()) {
    ordered.emplace(t.Get(cid)->AsInt(), m);
  }
  for (const auto& [id, count] : ordered) {
    table.AddRow({std::to_string(id), count.ToString()});
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace

int main() {
  ringdb::ring::Catalog catalog;
  Symbol customer = Symbol::Intern("customer");
  catalog.AddRelation(customer,
                      {Symbol::Intern("cid"), Symbol::Intern("nation")});

  // The exact query of Example 5.2.
  auto query = ringdb::sql::TranslateSql(
      catalog,
      "SELECT C1.cid, SUM(1) FROM customer C1, customer C2 "
      "WHERE C1.nation = C2.nation GROUP BY C1.cid;");
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  auto engine = ringdb::runtime::Engine::Create(catalog, query->group_vars,
                                                query->body);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  (void)engine->Insert(customer, {Value(1), Value("CH")});
  (void)engine->Insert(customer, {Value(2), Value("CH")});
  (void)engine->Insert(customer, {Value(3), Value("AT")});
  (void)engine->Insert(customer, {Value(4), Value("AT")});
  (void)engine->Insert(customer, {Value(5), Value("CH")});
  PrintCounts(*engine, "after initial signups (1,2,5: CH; 3,4: AT):");

  // Customer 3 relocates AT -> CH: a deletion plus an insertion.
  (void)engine->Delete(customer, {Value(3), Value("AT")});
  (void)engine->Insert(customer, {Value(3), Value("CH")});
  PrintCounts(*engine, "after customer 3 relocates to CH:");

  // Customer 5 leaves.
  (void)engine->Delete(customer, {Value(5), Value("CH")});
  PrintCounts(*engine, "after customer 5 leaves:");
  return 0;
}
