// Exhaustive/randomized verification of the §2 constructions:
// Proposition 2.4 (monoid rings are rings), Lemma 2.9 (mutilation yields
// quotient rings), Theorem 2.6 (avalanche rings are rings), and
// Proposition 2.8 (A[G] embeds as the binding-ignoring subring).

#include <gtest/gtest.h>

#include <vector>

#include "algebra/avalanche.h"
#include "algebra/finite_monoids.h"
#include "algebra/monoid_ring.h"
#include "util/random.h"

namespace ringdb {
namespace algebra {
namespace {

template <typename G>
MonoidRingElem<G, int64_t> RandomElem(Rng& rng,
                                      const std::vector<G>& universe) {
  MonoidRingElem<G, int64_t> e;
  for (const G& g : universe) {
    if (rng.Bernoulli(0.5)) e.Set(g, rng.Range(-3, 3));
  }
  return e;
}

template <typename G>
void CheckRingAxioms(uint64_t seed) {
  using R = MonoidRingElem<G, int64_t>;
  Rng rng(seed);
  std::vector<G> universe = G::Universe();
  for (int trial = 0; trial < 200; ++trial) {
    R x = RandomElem<G>(rng, universe);
    R y = RandomElem<G>(rng, universe);
    R z = RandomElem<G>(rng, universe);
    EXPECT_EQ(x + y, y + x);
    EXPECT_EQ((x + y) + z, x + (y + z));
    EXPECT_EQ(x + R::Zero(), x);
    EXPECT_EQ(x + (-x), R::Zero());
    EXPECT_EQ((x * y) * z, x * (y * z));
    EXPECT_EQ(x * R::One(), x);
    EXPECT_EQ(R::One() * x, x);
    EXPECT_EQ(x * (y + z), x * y + x * z);
    EXPECT_EQ((x + y) * z, x * z + y * z);
  }
}

TEST(MonoidRingTest, GroupRingOverZ6IsARing) {
  CheckRingAxioms<CyclicAddMonoid<6>>(1);
}

TEST(MonoidRingTest, MutilatedModMulRingIsARing) {
  // Z_6 \ {0} under multiplication: Compose is genuinely partial
  // (2*3 = 0 is excluded), exercising Lemma 2.9 / quotient behavior.
  CheckRingAxioms<ModMulMonoid<6>>(2);
}

TEST(MonoidRingTest, MutilationDropsExcludedProducts) {
  using G = ModMulMonoid<6>;
  using R = MonoidRingElem<G, int64_t>;
  R two = R::Singleton(G{2}, 1);
  R three = R::Singleton(G{3}, 1);
  // 2 * 3 = 0 mod 6 is excluded: the product is the zero of the quotient.
  EXPECT_EQ(two * three, R::Zero());
  // 2 * 2 = 4 stays inside.
  EXPECT_EQ(two * two, R::Singleton(G{4}, 1));
}

TEST(MonoidRingTest, ConvolutionMatchesPolynomialMultiplication) {
  // Z[x]/(x^8 - ... ) ~ the cyclic monoid ring: (1 + x)^2 = 1 + 2x + x^2.
  using G = CyclicAddMonoid<8>;
  using R = MonoidRingElem<G, int64_t>;
  R one_plus_x = R::Singleton(G{0}, 1) + R::Singleton(G{1}, 1);
  R sq = one_plus_x * one_plus_x;
  EXPECT_EQ(sq.At(G{0}), 1);
  EXPECT_EQ(sq.At(G{1}), 2);
  EXPECT_EQ(sq.At(G{2}), 1);
  EXPECT_EQ(sq.At(G{3}), 0);
}

TEST(MonoidRingTest, ScalarActionAndBilinearity) {
  using G = CyclicAddMonoid<5>;
  using R = MonoidRingElem<G, int64_t>;
  Rng rng(3);
  std::vector<G> universe = G::Universe();
  for (int trial = 0; trial < 100; ++trial) {
    R x = RandomElem<G>(rng, universe);
    R y = RandomElem<G>(rng, universe);
    int64_t a = rng.Range(-4, 4);
    EXPECT_EQ(a * (x * y), (a * x) * y);
    EXPECT_EQ(a * (x * y), x * (a * y));
    EXPECT_EQ(a * (x + y), a * x + a * y);
  }
}

// ---- Avalanche rings (Theorem 2.6) ----

template <typename G>
AvalancheElem<G, int64_t> RandomAvalanche(Rng& rng,
                                          const std::vector<G>& universe) {
  using R = MonoidRingElem<G, int64_t>;
  // A random function G -> A[G], materialized as a table. Elements of the
  // mutilated avalanche ring =>A[G0] must satisfy the §2.4 convention
  // f(b)(x) = 0 whenever b * x falls outside G0 (they live in the quotient
  // by the ideal I of Lemma 2.9), so excluded entries are zeroed.
  std::vector<R> table;
  table.reserve(universe.size());
  for (const G& b : universe) {
    R raw = RandomElem<G>(rng, universe);
    R constrained;
    for (const auto& [g, coeff] : raw.support()) {
      if (G::Compose(b, g).has_value()) constrained.Set(g, coeff);
    }
    table.push_back(std::move(constrained));
  }
  auto universe_copy = universe;
  return AvalancheElem<G, int64_t>(
      [table, universe_copy](const G& b) -> R {
        for (size_t i = 0; i < universe_copy.size(); ++i) {
          if (universe_copy[i] == b) return table[i];
        }
        return R::Zero();
      });
}

template <typename G>
void CheckAvalancheAxioms(uint64_t seed) {
  using AV = AvalancheElem<G, int64_t>;
  Rng rng(seed);
  std::vector<G> universe = G::Universe();
  for (int trial = 0; trial < 30; ++trial) {
    AV f = RandomAvalanche<G>(rng, universe);
    AV g = RandomAvalanche<G>(rng, universe);
    AV h = RandomAvalanche<G>(rng, universe);
    EXPECT_TRUE((f + g).EqualsOn(g + f, universe));
    EXPECT_TRUE(((f + g) + h).EqualsOn(f + (g + h), universe));
    EXPECT_TRUE((f + AV::Zero()).EqualsOn(f, universe));
    EXPECT_TRUE((f - f).EqualsOn(AV::Zero(), universe));
    // Associativity of the sideways-binding product (the heart of the
    // Theorem 2.6 proof).
    EXPECT_TRUE(((f * g) * h).EqualsOn(f * (g * h), universe));
    EXPECT_TRUE((f * AV::One()).EqualsOn(f, universe));
    EXPECT_TRUE((AV::One() * f).EqualsOn(f, universe));
    // Distributivity.
    EXPECT_TRUE((f * (g + h)).EqualsOn(f * g + f * h, universe));
    EXPECT_TRUE(((f + g) * h).EqualsOn(f * h + g * h, universe));
  }
}

TEST(AvalancheTest, RingAxiomsOverGroupMonoid) {
  CheckAvalancheAxioms<CyclicAddMonoid<4>>(11);
}

TEST(AvalancheTest, RingAxiomsOverMutilatedMonoid) {
  CheckAvalancheAxioms<ModMulMonoid<6>>(12);
}

TEST(AvalancheTest, LiftedSubringIsIsomorphicToMonoidRing) {
  // Proposition 2.8: (. -> alpha) op (. -> beta) == (. -> alpha op beta).
  using G = CyclicAddMonoid<4>;
  using R = MonoidRingElem<G, int64_t>;
  using AV = AvalancheElem<G, int64_t>;
  Rng rng(13);
  std::vector<G> universe = G::Universe();
  for (int trial = 0; trial < 100; ++trial) {
    R a = RandomElem<G>(rng, universe);
    R b = RandomElem<G>(rng, universe);
    EXPECT_TRUE((AV::Lift(a) + AV::Lift(b)).EqualsOn(AV::Lift(a + b),
                                                     universe));
    EXPECT_TRUE((AV::Lift(a) * AV::Lift(b)).EqualsOn(AV::Lift(a * b),
                                                     universe));
    EXPECT_TRUE((-AV::Lift(a)).EqualsOn(AV::Lift(-a), universe));
  }
}

TEST(AvalancheTest, SidewaysBindingSelectsLikeExample35) {
  // A miniature of Example 3.5: the right factor "sees" the binding
  // produced by the left factor. Over (Z_4, +): f emits chi_g for every
  // g; g(b) = 1 iff b is even, else 0. Then (f * g)(0) keeps exactly the
  // tuples g of f with g even — selection without a selection operator.
  using G = CyclicAddMonoid<4>;
  using R = MonoidRingElem<G, int64_t>;
  using AV = AvalancheElem<G, int64_t>;
  R all;
  for (const G& g : G::Universe()) all.Set(g, 1);
  AV f = AV::Lift(all);
  AV is_even([](const G& b) {
    return (b.v % 2 == 0) ? R::One() : R::Zero();
  });
  R selected = (f * is_even).Eval(G{0});
  EXPECT_EQ(selected.At(G{0}), 1);
  EXPECT_EQ(selected.At(G{1}), 0);
  EXPECT_EQ(selected.At(G{2}), 1);
  EXPECT_EQ(selected.At(G{3}), 0);
}

}  // namespace
}  // namespace algebra
}  // namespace ringdb
