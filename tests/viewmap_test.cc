// ViewMap: default-zero lookups, cancellation erasure, keep-zeros mode
// (lazy domains), and incrementally maintained partial-key indexes.

#include <gtest/gtest.h>

#include <set>

#include "runtime/viewmap.h"
#include "util/random.h"

namespace ringdb {
namespace runtime {
namespace {

TEST(ViewMapTest, DefaultZeroAndAdd) {
  ViewMap v(2);
  Key k{Value(1), Value("a")};
  EXPECT_EQ(v.At(k), kZero);
  v.Add(k, Numeric(5));
  EXPECT_EQ(v.At(k), Numeric(5));
  v.Add(k, Numeric(-2));
  EXPECT_EQ(v.At(k), Numeric(3));
  EXPECT_EQ(v.size(), 1u);
}

TEST(ViewMapTest, CancellationErasesEntry) {
  ViewMap v(1);
  v.Add({Value(7)}, Numeric(4));
  v.Add({Value(7)}, Numeric(-4));
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.At({Value(7)}), kZero);
}

TEST(ViewMapTest, KeepZerosRetainsInitializedDomain) {
  ViewMap v(1);
  v.SetKeepZeros();
  v.EnsureEntry({Value(1)}, kZero);
  v.Add({Value(2)}, Numeric(3));
  v.Add({Value(2)}, Numeric(-3));
  EXPECT_EQ(v.size(), 2u);  // both survive as (possibly zero) entries
  EXPECT_TRUE(v.Contains({Value(1)}));
  EXPECT_TRUE(v.Contains({Value(2)}));
  EXPECT_EQ(v.At({Value(2)}), kZero);
}

TEST(ViewMapTest, EnsureEntryIsIdempotent) {
  ViewMap v(1);
  v.Add({Value(1)}, Numeric(9));
  v.EnsureEntry({Value(1)}, Numeric(555));  // no-op: entry exists
  EXPECT_EQ(v.At({Value(1)}), Numeric(9));
}

TEST(ViewMapTest, ZeroDeltaIsNoop) {
  ViewMap v(1);
  v.Add({Value(1)}, kZero);
  EXPECT_EQ(v.size(), 0u);
}

TEST(ViewMapTest, IndexFindsMatchingEntries) {
  ViewMap v(2);
  int idx = v.EnsureIndex({1});
  v.Add({Value(1), Value(10)}, kOne);
  v.Add({Value(2), Value(10)}, kOne);
  v.Add({Value(3), Value(20)}, kOne);
  std::set<int64_t> firsts;
  v.ForEachMatching(idx, {Value(10)}, [&](const Key& k, Numeric) {
    firsts.insert(k[0].AsInt());
  });
  EXPECT_EQ(firsts, (std::set<int64_t>{1, 2}));
}

TEST(ViewMapTest, IndexBuiltOverExistingEntries) {
  ViewMap v(2);
  v.Add({Value(1), Value(10)}, kOne);
  v.Add({Value(2), Value(20)}, kOne);
  int idx = v.EnsureIndex({1});  // built after the fact
  int count = 0;
  v.ForEachMatching(idx, {Value(20)},
                    [&](const Key&, Numeric) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ViewMapTest, IndexMaintainedAcrossErasure) {
  ViewMap v(2);
  int idx = v.EnsureIndex({0});
  v.Add({Value(1), Value(10)}, Numeric(2));
  v.Add({Value(1), Value(10)}, Numeric(-2));  // cancels, erased
  int count = 0;
  v.ForEachMatching(idx, {Value(1)}, [&](const Key&, Numeric) { ++count; });
  EXPECT_EQ(count, 0);
  // Re-adding resurrects the index row.
  v.Add({Value(1), Value(10)}, kOne);
  v.ForEachMatching(idx, {Value(1)}, [&](const Key&, Numeric) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ViewMapTest, EnsureIndexDeduplicates) {
  ViewMap v(3);
  EXPECT_EQ(v.EnsureIndex({0, 2}), v.EnsureIndex({0, 2}));
  EXPECT_NE(v.EnsureIndex({0, 2}), v.EnsureIndex({1}));
}

TEST(ViewMapTest, MultiPositionIndex) {
  ViewMap v(3);
  int idx = v.EnsureIndex({0, 2});
  v.Add({Value(1), Value("x"), Value(3)}, kOne);
  v.Add({Value(1), Value("y"), Value(3)}, kOne);
  v.Add({Value(1), Value("z"), Value(4)}, kOne);
  int count = 0;
  v.ForEachMatching(idx, {Value(1), Value(3)},
                    [&](const Key&, Numeric) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(ViewMapTest, RandomizedIndexConsistency) {
  // Index probes must always agree with a full scan.
  ViewMap v(2);
  int idx = v.EnsureIndex({1});
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    Key k{Value(rng.Range(0, 50)), Value(rng.Range(0, 10))};
    v.Add(k, Numeric(rng.Range(-2, 2)));
  }
  for (int64_t probe = 0; probe <= 10; ++probe) {
    std::set<std::pair<int64_t, int64_t>> via_index, via_scan;
    v.ForEachMatching(idx, {Value(probe)}, [&](const Key& k, Numeric) {
      via_index.insert({k[0].AsInt(), k[1].AsInt()});
    });
    v.ForEach([&](const Key& k, Numeric) {
      if (k[1] == Value(probe)) {
        via_scan.insert({k[0].AsInt(), k[1].AsInt()});
      }
    });
    EXPECT_EQ(via_index, via_scan) << probe;
  }
}

TEST(ViewMapTest, ApproxBytesGrowsWithEntries) {
  ViewMap small(1), large(1);
  for (int i = 0; i < 10; ++i) small.Add({Value(i)}, kOne);
  for (int i = 0; i < 1000; ++i) large.Add({Value(i)}, kOne);
  EXPECT_GT(large.ApproxBytes(), small.ApproxBytes());
}

}  // namespace
}  // namespace runtime
}  // namespace ringdb
