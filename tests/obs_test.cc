// Observability layer (src/obs/ + per-statement execution counters):
// primitive semantics, export formats, and the metrics-exactness
// property. The semantic statement counters (invocations, loop
// iterations, probes, emissions) are defined by the lowered program and
// the update stream, not by how statements execute — so they must be
// (a) per-update constants in the bench_opcount differential sense
// (NC0: the count of the next 100 updates does not change as the
// database grows) and (b) bit-identical between the interpreter and the
// compiled backend across batch sizes and shard counts.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "agca/ast.h"
#include "obs/metrics.h"
#include "runtime/engine.h"
#include "sql/translate.h"
#include "util/random.h"
#include "workload/stream.h"

namespace ringdb {
namespace {

using agca::CmpOp;
using agca::Expr;
using agca::ExprPtr;
using agca::Term;
using runtime::Backend;
using runtime::Engine;
using runtime::EngineOptions;
using runtime::Executor;

Symbol S(const char* s) { return Symbol::Intern(s); }

// The NO_METRICS build compiles recording out (reads are all-zero);
// semantic assertions only hold in the normal configuration.
#ifdef RINGDB_NO_METRICS
#define SKIP_WITHOUT_METRICS() \
  GTEST_SKIP() << "metrics compiled out (-DRINGDB_NO_METRICS)"
#else
#define SKIP_WITHOUT_METRICS() \
  do {                         \
  } while (0)
#endif

// ---- Primitives -----------------------------------------------------------

TEST(CounterTest, MergesExactlyAcrossThreads) {
  SKIP_WITHOUT_METRICS();
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kAddsPerThread; ++i) counter.Add();
      counter.Add(5);
    });
  }
  for (std::thread& t : threads) t.join();
  // Sharding moves where the adds land, never how many.
  EXPECT_EQ(counter.Value(), kThreads * (kAddsPerThread + 5));
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(GaugeTest, SetMaxIsMonotone) {
  SKIP_WITHOUT_METRICS();
  obs::Gauge gauge;
  gauge.Set(10);
  gauge.SetMax(7);  // lower: ignored
  EXPECT_EQ(gauge.Value(), 10);
  gauge.SetMax(42);
  EXPECT_EQ(gauge.Value(), 42);
  gauge.Add(-2);
  EXPECT_EQ(gauge.Value(), 40);
}

TEST(HistogramTest, QuantilesAreBucketUpperBoundsExtremesAreExact) {
  SKIP_WITHOUT_METRICS();
  obs::Histogram hist;
  // 100 values of 5: bucket 3 covers [4, 8), upper bound 7. Quantiles
  // are bucket estimates; min/max/sum/mean are exact.
  for (int i = 0; i < 100; ++i) hist.Record(5);
  obs::HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.sum, 500u);
  EXPECT_EQ(snap.mean(), 5u);
  EXPECT_EQ(snap.p50, 7u);
  EXPECT_EQ(snap.p99, 7u);
  EXPECT_EQ(snap.min, 5u);
  EXPECT_EQ(snap.max, 5u);
  // One outlier at 1000 moves max (exactly) and p99 (rank
  // ceil(101*0.99) = 100 of 101 lands past the hundred fives) but not
  // p50 or min.
  hist.Record(1000);
  snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 101u);
  EXPECT_EQ(snap.p50, 7u);
  EXPECT_EQ(snap.min, 5u);
  EXPECT_EQ(snap.max, 1000u);
  // A new low updates min exactly too.
  hist.Record(2);
  snap = hist.Snapshot();
  EXPECT_EQ(snap.min, 2u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_EQ(snap.mean(), (500u + 1000u + 2u) / 102u);
  hist.Reset();
  EXPECT_EQ(hist.Snapshot().count, 0u);
  EXPECT_EQ(hist.Snapshot().min, 0u);
  EXPECT_EQ(hist.Snapshot().max, 0u);
}

TEST(HistogramTest, MinMaxMergeExactlyAcrossThreads) {
  SKIP_WITHOUT_METRICS();
  obs::Histogram hist;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      // Each thread records its own band; the extremes are the global
      // band edges regardless of interleaving (sticky CAS).
      for (uint64_t v = 10 + static_cast<uint64_t>(t) * 100;
           v < 100 + static_cast<uint64_t>(t) * 100; ++v) {
        hist.Record(v);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  obs::HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * 90u);
  EXPECT_EQ(snap.min, 10u);
  EXPECT_EQ(snap.max, 100u + (kThreads - 1) * 100u - 1u);
}

TEST(HistogramTest, ZeroGetsItsOwnBucket) {
  SKIP_WITHOUT_METRICS();
  obs::Histogram hist;
  hist.Record(0);
  obs::HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.p50, 0u);
  EXPECT_EQ(snap.max, 0u);
}

TEST(MetricsRegistryTest, ExportsTextAndJson) {
  SKIP_WITHOUT_METRICS();
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.AddCounter("ingest.updates");
  obs::Gauge* g = registry.AddGauge("serve.queue.depth");
  obs::Histogram* h = registry.AddHistogram("apply.span_ns");
  c->Add(3);
  g->Set(12);
  h->Record(100);
  const std::string text = registry.ExportText();
  EXPECT_NE(text.find("ingest.updates"), std::string::npos);
  EXPECT_NE(text.find("serve.queue.depth"), std::string::npos);
  EXPECT_NE(text.find("apply.span_ns (n=1)"), std::string::npos);
  const std::string json = registry.ExportJson();
  EXPECT_NE(json.find("\"ingest.updates\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"serve.queue.depth\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  registry.ResetAll();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(g->Value(), 0);
}

// ---- Metrics exactness ----------------------------------------------------

// Per-statement semantic counters summed over all statements (the
// dispatch split native_calls/interp_calls is excluded by design: it
// describes *where* statements ran, which the backends legitimately
// disagree on).
struct SemanticTotals {
  uint64_t invocations = 0;
  uint64_t loop_iterations = 0;
  uint64_t probes = 0;
  uint64_t emissions = 0;

  bool operator==(const SemanticTotals&) const = default;
};

SemanticTotals Semantics(const Engine::EngineStats& stats) {
  SemanticTotals t;
  for (const Engine::StmtStats& s : stats.statements) {
    t.invocations += s.counters.invocations;
    t.loop_iterations += s.counters.loop_iterations;
    t.probes += s.counters.probes;
    t.emissions += s.counters.emissions;
  }
  return t;
}

// bench_opcount's oracle, as a test: for a fully update-bound query the
// per-update statement counters are a constant of the query. Measure the
// counter delta of 100 updates at |DB|=1k and again at |DB|=4k — the
// NC0 property says they are equal, and every per-statement row must
// satisfy invocations == native_calls + interp_calls.
TEST(MetricsExactnessTest, CountersAreConstantPerUpdate) {
  SKIP_WITHOUT_METRICS();
  ring::Catalog catalog;
  const Symbol r = S("ObsR");
  catalog.AddRelation(r, {S("A")});
  // Self-join count (Example 1.2): R(x) * R(y) * [x = y].
  ExprPtr body = Expr::Mul({Expr::Relation(r, {Term(S("x"))}),
                            Expr::Relation(r, {Term(S("y"))}),
                            Expr::Cmp(CmpOp::kEq, Expr::Var(S("x")),
                                      Expr::Var(S("y")))});
  auto engine = Engine::Create(catalog, {}, body);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Rng rng(7);
  std::vector<SemanticTotals> deltas;
  int64_t applied = 0;
  for (int64_t target : {1000, 4000}) {
    while (applied < target) {
      ASSERT_TRUE(engine->Insert(r, {Value(rng.Range(0, 64))}).ok());
      ++applied;
    }
    const SemanticTotals before = Semantics(engine->Stats());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(engine->Insert(r, {Value(rng.Range(0, 64))}).ok());
      ++applied;
    }
    const SemanticTotals after = Semantics(engine->Stats());
    deltas.push_back(SemanticTotals{
        after.invocations - before.invocations,
        after.loop_iterations - before.loop_iterations,
        after.probes - before.probes, after.emissions - before.emissions});
  }
  EXPECT_EQ(deltas[0], deltas[1]) << "per-update counter cost grew with |DB|";
  EXPECT_GT(deltas[0].invocations, 0u);
  EXPECT_GT(deltas[0].emissions, 0u);
  for (const Engine::StmtStats& s : engine->Stats().statements) {
    EXPECT_EQ(s.counters.invocations,
              s.counters.native_calls + s.counters.interp_calls)
        << s.label;
  }
}

// The exactness grid: batch {1, 7, 1024} × shards {1, 2, 8} × both
// backends over one fixed revenue-query stream. Within each
// (batch, shards) cell the interpreter and the compiled backend must
// produce identical semantic counters and identical engine totals —
// native execution (including its profile-guided interp/native
// alternation during warmup) may change *where* work runs, never how
// much work the lowered program does.
TEST(MetricsExactnessTest, CountersAreBackendInvariantAcrossGrid) {
  SKIP_WITHOUT_METRICS();
  ring::Catalog catalog = workload::OrdersSchema();
  auto translated = sql::TranslateSql(
      catalog,
      "SELECT o.ckey, SUM(l.price * l.qty) FROM orders o, lineitem l "
      "WHERE o.okey = l.okey GROUP BY o.ckey");
  ASSERT_TRUE(translated.ok()) << translated.status().ToString();

  workload::StreamOptions options;
  options.seed = 99;
  options.domain_size = 512;
  options.zipf_s = 1.1;
  options.delete_fraction = 0.15;
  std::vector<workload::RelationStream> streams;
  streams.emplace_back(catalog, S("orders"), options);
  streams.emplace_back(catalog, S("lineitem"), options);
  workload::RoundRobinStream stream(std::move(streams));
  constexpr int kUpdates = 3000;
  std::vector<ring::Update> updates;
  updates.reserve(kUpdates);
  for (int i = 0; i < kUpdates; ++i) updates.push_back(stream.Next());

  auto run = [&](size_t batch, size_t shards,
                 Backend backend) -> StatusOr<Engine> {
    EngineOptions engine_options;
    engine_options.batch_size = batch;
    engine_options.num_shards = shards;
    engine_options.backend = backend;
    auto engine = Engine::Create(catalog, translated->group_vars,
                                 translated->body, engine_options);
    if (engine.ok()) {
      Status status = engine->ApplyBatch(updates);
      EXPECT_TRUE(status.ok()) << status.ToString();
    }
    return engine;
  };

  bool native_checked = false;
  for (size_t batch : {size_t{1}, size_t{7}, size_t{1024}}) {
    for (size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
      SCOPED_TRACE("batch=" + std::to_string(batch) +
                   " shards=" + std::to_string(shards));
      auto interp = run(batch, shards, Backend::kInterpret);
      ASSERT_TRUE(interp.ok()) << interp.status().ToString();
      const Engine::EngineStats istats = interp->Stats();
      // Dispatch sanity on the pure-interpreter engine: no native calls.
      for (const Engine::StmtStats& s : istats.statements) {
        EXPECT_EQ(s.counters.native_calls, 0u) << s.label;
        EXPECT_EQ(s.counters.invocations, s.counters.interp_calls)
            << s.label;
      }

      auto compiled = run(batch, shards, Backend::kCompile);
      ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
      if (!compiled->native_enabled()) {
        continue;  // no host C compiler: grid still covers the interpreter
      }
      native_checked = true;
      const Engine::EngineStats cstats = compiled->Stats();
      EXPECT_EQ(Semantics(istats), Semantics(cstats));
      ASSERT_EQ(istats.statements.size(), cstats.statements.size());
      for (size_t i = 0; i < istats.statements.size(); ++i) {
        const Engine::StmtStats& a = istats.statements[i];
        const Engine::StmtStats& b = cstats.statements[i];
        EXPECT_EQ(a.counters.invocations, b.counters.invocations) << a.label;
        EXPECT_EQ(a.counters.loop_iterations, b.counters.loop_iterations)
            << a.label;
        EXPECT_EQ(a.counters.probes, b.counters.probes) << a.label;
        EXPECT_EQ(a.counters.emissions, b.counters.emissions) << a.label;
        EXPECT_EQ(b.counters.invocations,
                  b.counters.native_calls + b.counters.interp_calls)
            << a.label;
      }
      // Engine totals that are backend-invariant by construction
      // (arithmetic_ops is interpreter-only and excluded on purpose).
      EXPECT_EQ(istats.totals.updates, cstats.totals.updates);
      EXPECT_EQ(istats.totals.statements_run, cstats.totals.statements_run);
      EXPECT_EQ(istats.totals.delta_entries, cstats.totals.delta_entries);
      EXPECT_EQ(istats.totals.entries_touched,
                cstats.totals.entries_touched);
      // And the results agree, of course.
      EXPECT_EQ(interp->ResultGmr().ToString(),
                compiled->ResultGmr().ToString());
    }
  }
  if (!native_checked) {
    GTEST_SKIP() << "compiled backend unavailable; interpreter grid ran";
  }
}

// The exporters carry the counters: spot-check that StatsText/StatsJson
// contain the per-statement rows and the summary fields.
TEST(MetricsExactnessTest, EngineExportersCarryCounters) {
  SKIP_WITHOUT_METRICS();
  ring::Catalog catalog;
  const Symbol r = S("ObsExp");
  catalog.AddRelation(r, {S("A")});
  auto engine = Engine::Create(catalog, {}, Expr::Relation(r, {Term(S("x"))}));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE(engine->Insert(r, {Value(int64_t{1})}).ok());
  const std::string text = engine->StatsText();
  EXPECT_NE(text.find("statement"), std::string::npos);
  EXPECT_NE(text.find("invocations"), std::string::npos);
  const std::string json = engine->StatsJson();
  EXPECT_NE(json.find("\"num_shards\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"statements\": ["), std::string::npos);
  EXPECT_NE(json.find("\"approx_bytes\""), std::string::npos);
}

}  // namespace
}  // namespace ringdb
