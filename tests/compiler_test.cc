// The recursive IVM compiler: Example 1.2's exact table, Example 1.3's
// factorized delta structure, CSE across the view hierarchy, NC0C code
// generation, and the constant-operation property (E9).

#include <gtest/gtest.h>

#include <string>

#include "agca/ast.h"
#include "compiler/codegen_c.h"
#include "compiler/compile.h"
#include "runtime/engine.h"

namespace ringdb {
namespace compiler {
namespace {

using agca::CmpOp;
using agca::Expr;
using agca::ExprPtr;
using agca::Term;
using ring::Catalog;
using runtime::Engine;

Symbol S(const char* s) { return Symbol::Intern(s); }
ExprPtr V(const char* name) { return Expr::Var(S(name)); }

// ---- Example 1.2: select count(*) from R r1, R r2 where r1.A = r2.A ----

class Example12 : public ::testing::Test {
 protected:
  Catalog catalog_;
  Symbol R_ = S("R12");

  void SetUp() override { catalog_.AddRelation(R_, {S("A")}); }

  ExprPtr Query() const {
    return Expr::Mul({Expr::Relation(R_, {Term(S("r1"))}),
                      Expr::Relation(R_, {Term(S("r2"))}),
                      Expr::Cmp(CmpOp::kEq, V("r1"), V("r2"))});
  }
};

TEST_F(Example12, PaperUpdateSequence) {
  auto engine = Engine::Create(catalog_, {}, Query());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Value c("c"), d("d");

  // The Q(R) column of the Example 1.2 table.
  EXPECT_EQ(engine->ResultScalar(), Numeric(0));
  ASSERT_TRUE(engine->Insert(R_, {c}).ok());
  EXPECT_EQ(engine->ResultScalar(), Numeric(1));
  ASSERT_TRUE(engine->Insert(R_, {c}).ok());
  EXPECT_EQ(engine->ResultScalar(), Numeric(4));
  ASSERT_TRUE(engine->Insert(R_, {d}).ok());
  EXPECT_EQ(engine->ResultScalar(), Numeric(5));
  ASSERT_TRUE(engine->Insert(R_, {c}).ok());
  EXPECT_EQ(engine->ResultScalar(), Numeric(10));
  ASSERT_TRUE(engine->Delete(R_, {d}).ok());
  EXPECT_EQ(engine->ResultScalar(), Numeric(9));
  ASSERT_TRUE(engine->Insert(R_, {c}).ok());
  EXPECT_EQ(engine->ResultScalar(), Numeric(16));
  ASSERT_TRUE(engine->Delete(R_, {c}).ok());
  EXPECT_EQ(engine->ResultScalar(), Numeric(9));
}

TEST_F(Example12, HierarchyHasDegreeOneAuxiliaryView) {
  auto engine = Engine::Create(catalog_, {}, Query());
  ASSERT_TRUE(engine.ok());
  const TriggerProgram& p = engine->program();
  // Root (degree 2) plus one auxiliary view m1[a] = count per value
  // (degree 1); the second delta is constant and stays inline.
  ASSERT_EQ(p.views.size(), 2u);
  EXPECT_EQ(p.view(p.root_view).degree, 2);
  EXPECT_EQ(p.views[1].degree, 1);
  EXPECT_EQ(p.views[1].key_vars.size(), 1u);
}

TEST_F(Example12, CseUnifiesTheTwoSymmetricDeltaViews) {
  // Delta w.r.t. r1's atom and r2's atom both need "count of value a in
  // R"; CSE must materialize it once.
  auto engine = Engine::Create(catalog_, {}, Query());
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->program().views.size(), 2u);
}

TEST_F(Example12, ConstantOpsPerUpdate) {
  auto engine = Engine::Create(catalog_, {}, Query());
  ASSERT_TRUE(engine.ok());
  // Grow the database, recording ops per update: must stay bounded by a
  // constant independent of database size, and become exactly constant
  // once every view entry is populated (zero-valued deltas short-circuit
  // and skip a few ops during warm-up).
  uint64_t steady = 0;
  for (int i = 0; i < 256; ++i) {
    uint64_t before = engine->executor().stats().arithmetic_ops;
    ASSERT_TRUE(engine->Insert(R_, {Value(int64_t{i % 4})}).ok());
    uint64_t ops = engine->executor().stats().arithmetic_ops - before;
    EXPECT_GT(ops, 0u);
    EXPECT_LT(ops, 32u) << "update " << i;
    if (i == 8) steady = ops;
    if (i > 8) EXPECT_EQ(ops, steady) << "update " << i;
  }
}

// ---- Example 1.3: factorization ----

class Example13 : public ::testing::Test {
 protected:
  Catalog catalog_;

  void SetUp() override {
    catalog_.AddRelation(S("R13"), {S("A"), S("B")});
    catalog_.AddRelation(S("S13"), {S("C"), S("D")});
    catalog_.AddRelation(S("T13"), {S("E"), S("F")});
  }

  // select sum(A*F) from R, S, T where B = C and D = E, written with
  // shared variables for the equalities.
  ExprPtr Query() const {
    return Expr::Mul(
        {Expr::Relation(S("R13"), {Term(S("a")), Term(S("b"))}),
         Expr::Relation(S("S13"), {Term(S("b")), Term(S("d"))}),
         Expr::Relation(S("T13"), {Term(S("d")), Term(S("f"))}),
         V("a"), V("f")});
  }
};

TEST_F(Example13, DeltaOnSFactorizesIntoTwoLinearViews) {
  auto compiled = Compile(catalog_, {}, Query());
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const TriggerProgram& p = compiled->program;

  // Find the +S trigger and its statement for the root view.
  const Trigger* s_trigger = nullptr;
  for (const Trigger& t : p.triggers) {
    if (t.relation == S("S13") && t.sign == ring::Update::Sign::kInsert) {
      s_trigger = &t;
    }
  }
  ASSERT_NE(s_trigger, nullptr);
  const Statement* root_stmt = nullptr;
  for (const Statement& st : s_trigger->statements) {
    if (st.target_view == p.root_view) root_stmt = &st;
  }
  ASSERT_NE(root_stmt, nullptr);
  // Q += (dQ)1(c) * (dQ)2(d): two independent view lookups, no loops.
  EXPECT_TRUE(root_stmt->loops.empty());
  ASSERT_EQ(root_stmt->rhs->kind(), TExpr::Kind::kMul);
  int lookups = 0;
  for (const auto& child : root_stmt->rhs->children()) {
    if (child->kind() == TExpr::Kind::kViewLookup) ++lookups;
  }
  EXPECT_EQ(lookups, 2);

  // The two factor views are unary (linear space), not the quadratic
  // unfactorized Delta.
  for (const auto& child : root_stmt->rhs->children()) {
    if (child->kind() == TExpr::Kind::kViewLookup) {
      EXPECT_EQ(p.view(child->view_id()).key_vars.size(), 1u);
    }
  }
}

TEST_F(Example13, EndToEndSumOfProducts) {
  auto engine = Engine::Create(catalog_, {}, Query());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  // R(a=2, b=1), S(c=1, d=5), T(e=5, f=7) joins: sum += 2*7.
  ASSERT_TRUE(engine->Insert(S("R13"), {Value(2), Value(1)}).ok());
  ASSERT_TRUE(engine->Insert(S("S13"), {Value(1), Value(5)}).ok());
  EXPECT_EQ(engine->ResultScalar(), Numeric(0));  // no T yet
  ASSERT_TRUE(engine->Insert(S("T13"), {Value(5), Value(7)}).ok());
  EXPECT_EQ(engine->ResultScalar(), Numeric(14));
  // A second R row with the same join key doubles the A contribution.
  ASSERT_TRUE(engine->Insert(S("R13"), {Value(3), Value(1)}).ok());
  EXPECT_EQ(engine->ResultScalar(), Numeric((2 + 3) * 7));
  // Deleting S empties the join.
  ASSERT_TRUE(engine->Delete(S("S13"), {Value(1), Value(5)}).ok());
  EXPECT_EQ(engine->ResultScalar(), Numeric(0));
}

// ---- Grouped query (Example 5.2 shape) ----

TEST(CompilerGroupedTest, PerNationCustomerCount) {
  Catalog catalog;
  catalog.AddRelation(S("C"), {S("cid"), S("nation")});
  ExprPtr body =
      Expr::Mul({Expr::Relation(S("C"), {Term(S("c")), Term(S("n"))}),
                 Expr::Relation(S("C"), {Term(S("c2")), Term(S("n"))})});
  auto engine = Engine::Create(catalog, {S("c")}, body);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE(engine->Insert(S("C"), {Value(1), Value("CH")}).ok());
  ASSERT_TRUE(engine->Insert(S("C"), {Value(2), Value("CH")}).ok());
  ASSERT_TRUE(engine->Insert(S("C"), {Value(3), Value("AT")}).ok());
  EXPECT_EQ(engine->ResultAt({Value(1)}), Numeric(2));
  EXPECT_EQ(engine->ResultAt({Value(2)}), Numeric(2));
  EXPECT_EQ(engine->ResultAt({Value(3)}), Numeric(1));
  // Customer 3 moves to CH: counts become 3, 3, gone, 3.
  ASSERT_TRUE(engine->Delete(S("C"), {Value(3), Value("AT")}).ok());
  ASSERT_TRUE(engine->Insert(S("C"), {Value(3), Value("CH")}).ok());
  EXPECT_EQ(engine->ResultAt({Value(1)}), Numeric(3));
  EXPECT_EQ(engine->ResultAt({Value(3)}), Numeric(3));
  EXPECT_EQ(engine->ResultGmr().SupportSize(), 3u);
}

// ---- NC0C code generation ----

TEST(CodegenTest, EmitsStatementFunctionsPerTrigger) {
  Catalog catalog;
  catalog.AddRelation(S("Rcg"), {S("A")});
  ExprPtr body = Expr::Mul({Expr::Relation(S("Rcg"), {Term(S("x"))}),
                            Expr::Relation(S("Rcg"), {Term(S("y"))}),
                            Expr::Cmp(CmpOp::kEq, V("x"), V("y"))});
  auto compiled = Compile(catalog, {}, body);
  ASSERT_TRUE(compiled.ok());
  CodegenModule mod = GenerateModule(compiled->program);
  ASSERT_EQ(mod.stmts.size(), compiled->program.triggers.size());
  EXPECT_GT(mod.emitted_statements, 0u);
  // Every statement of this non-lazy program is emitted, each trigger
  // gets a marker section, and exported names follow rdb_t<T>_s<S>.
  for (size_t t = 0; t < mod.stmts.size(); ++t) {
    const Trigger& trigger = compiled->program.triggers[t];
    std::string marker =
        std::string("/* === trigger ") +
        (trigger.sign == ring::Update::Sign::kInsert ? "+" : "-") +
        trigger.relation.str() + " === */";
    EXPECT_NE(mod.source.find(marker), std::string::npos) << marker;
    ASSERT_EQ(mod.stmts[t].size(), trigger.statements.size());
    for (size_t s = 0; s < mod.stmts[t].size(); ++s) {
      EXPECT_TRUE(mod.stmts[t][s].emitted);
      std::string decl = "void " + mod.stmts[t][s].fn +
                         "(const RdbHostApi* api, void* ctx, "
                         "const RdbVal* p, RdbNum scale)";
      EXPECT_NE(mod.source.find(decl), std::string::npos) << decl;
    }
  }
  // No loops are needed for this fully update-bound query: emissions go
  // straight through the host api (direct add — no statement reads its
  // own target), no enumeration calls.
  EXPECT_EQ(mod.source.find("->foreach"), std::string::npos);
  EXPECT_NE(mod.source.find("->add("), std::string::npos);
  // Loader handshake symbols are always present.
  EXPECT_NE(mod.source.find("rdb_abi_version"), std::string::npos);
  EXPECT_NE(mod.source.find("rdb_abi_layout"), std::string::npos);
}

// ---- Error paths ----

TEST(CompilerErrorsTest, ReservedVariablePrefixRejected) {
  Catalog catalog;
  catalog.AddRelation(S("Rz"), {S("A")});
  auto c = Compile(catalog, {},
                   Expr::Relation(S("Rz"), {Term(S("@bad"))}));
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kInvalidArgument);
}

TEST(CompilerErrorsTest, NonSimpleConditionUnimplemented) {
  Catalog catalog;
  catalog.AddRelation(S("Ry"), {S("A")});
  ExprPtr nested = Expr::Cmp(
      CmpOp::kLt, Expr::Sum({}, Expr::Relation(S("Ry"), {Term(S("y"))})),
      Expr::Const(Numeric(2)));
  auto c = Compile(catalog, {},
                   Expr::Mul({Expr::Relation(S("Ry"), {Term(S("x"))}),
                              nested}));
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kUnimplemented);
}

// ---- Statement ordering (Equation (1)) ----

TEST_F(Example12, StatementsOrderedByDescendingDegree) {
  auto compiled = Compile(catalog_, {}, Query());
  ASSERT_TRUE(compiled.ok());
  for (const Trigger& t : compiled->program.triggers) {
    int last = 1 << 20;
    for (const Statement& s : t.statements) {
      int deg = compiled->program.view(s.target_view).degree;
      EXPECT_LE(deg, last);
      last = deg;
    }
  }
}

}  // namespace
}  // namespace compiler
}  // namespace ringdb
