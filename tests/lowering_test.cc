// The bytecode executor (compiler/lower.h + runtime/interpreter.h)
// against the AGCA evaluation function [[.]] (agca/eval.h) as oracle:
// for a pool of query scenarios covering joins, self-joins, grouping,
// inequalities (lazy domain maintenance), arithmetic, and string keys,
// the engine's maintained root view must equal re-evaluating
// Sum_[group_vars](body) on the base database after every window of a
// random mixed insert/delete stream — across batch sizes {1, 7, 1024}
// and shard counts {1, 2, 8}. Also locks the lowering invariants the
// perf work depends on: loop-value forwarding in the grouped rhs, and
// exact operation-count parity with the tree-walking interpreter the
// bytecode replaced (the NC0 constants of bench_opcount).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "agca/ast.h"
#include "agca/eval.h"
#include "compiler/compile.h"
#include "compiler/lower.h"
#include "ring/database.h"
#include "runtime/engine.h"
#include "util/random.h"

namespace ringdb {
namespace {

using agca::CmpOp;
using agca::Expr;
using agca::ExprPtr;
using agca::Term;
using ring::Catalog;
using ring::Update;
using runtime::Engine;

Symbol S(const char* s) { return Symbol::Intern(s); }
ExprPtr V(const char* name) { return Expr::Var(S(name)); }

struct Scenario {
  std::string name;
  Catalog catalog;
  std::vector<Symbol> group_vars;
  ExprPtr body;
  int domain_size = 3;
  bool strings = false;
};

std::vector<Scenario> Scenarios() {
  std::vector<Scenario> out;
  {
    Scenario s;
    s.name = "scalar_count";
    s.catalog.AddRelation(S("LwA"), {S("A")});
    s.body = Expr::Relation(S("LwA"), {Term(S("x"))});
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "self_join_count";  // nonlinear: unit-firing fallback
    s.catalog.AddRelation(S("LwB"), {S("A")});
    s.body = Expr::Mul({Expr::Relation(S("LwB"), {Term(S("x"))}),
                        Expr::Relation(S("LwB"), {Term(S("y"))}),
                        Expr::Cmp(CmpOp::kEq, V("x"), V("y"))});
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "grouped_join_sum";  // revenue shape: grouped batch path
    s.catalog.AddRelation(S("LwO"), {S("ok"), S("ck")});
    s.catalog.AddRelation(S("LwL"), {S("ok2"), S("price")});
    s.group_vars = {S("c")};
    s.body = Expr::Mul(
        {Expr::Relation(S("LwO"), {Term(S("o")), Term(S("c"))}),
         Expr::Relation(S("LwL"), {Term(S("o")), Term(S("p"))}), V("p")});
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "three_way_chain";
    s.catalog.AddRelation(S("LwR3"), {S("A"), S("B")});
    s.catalog.AddRelation(S("LwS3"), {S("C"), S("D")});
    s.catalog.AddRelation(S("LwT3"), {S("E"), S("F")});
    s.body = Expr::Mul(
        {Expr::Relation(S("LwR3"), {Term(S("a")), Term(S("b"))}),
         Expr::Relation(S("LwS3"), {Term(S("b")), Term(S("d"))}),
         Expr::Relation(S("LwT3"), {Term(S("d")), Term(S("f"))}), V("a"),
         V("f")});
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "inequality_join";  // lazy domain maintenance, <
    s.catalog.AddRelation(S("LwRg"), {S("A")});
    s.catalog.AddRelation(S("LwSg"), {S("A")});
    s.body = Expr::Mul({Expr::Relation(S("LwRg"), {Term(S("x"))}),
                        Expr::Relation(S("LwSg"), {Term(S("y"))}),
                        Expr::Cmp(CmpOp::kLt, V("x"), V("y"))});
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "grouped_inequality";  // lazy + free group key
    s.catalog.AddRelation(S("LwRo"), {S("g"), S("A")});
    s.catalog.AddRelation(S("LwSo"), {S("A")});
    s.group_vars = {S("g")};
    s.body =
        Expr::Mul({Expr::Relation(S("LwRo"), {Term(S("g")), Term(S("x"))}),
                   Expr::Relation(S("LwSo"), {Term(S("y"))}),
                   Expr::Cmp(CmpOp::kGt, V("x"), V("y"))});
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "not_equal_join";
    s.catalog.AddRelation(S("LwRm"), {S("A")});
    s.catalog.AddRelation(S("LwSm"), {S("A")});
    s.body = Expr::Mul({Expr::Relation(S("LwRm"), {Term(S("x"))}),
                        Expr::Relation(S("LwSm"), {Term(S("y"))}),
                        Expr::Cmp(CmpOp::kNe, V("x"), V("y")), V("y")});
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "string_keys_grouped";
    s.catalog.AddRelation(S("LwRh"), {S("k"), S("v")});
    s.group_vars = {S("k")};
    s.body = Expr::Mul(
        {Expr::Relation(S("LwRh"), {Term(S("k")), Term(S("v"))}), V("v")});
    s.strings = true;
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "constant_selection";
    s.catalog.AddRelation(S("LwRi"), {S("A"), S("B")});
    s.body = Expr::Relation(S("LwRi"), {Term(S("x")), Term(Value(1))});
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "difference_of_counts";
    s.catalog.AddRelation(S("LwRj"), {S("A")});
    s.catalog.AddRelation(S("LwSj"), {S("A")});
    s.body = Expr::Add({Expr::Relation(S("LwRj"), {Term(S("x"))}),
                        Expr::Neg(Expr::Relation(S("LwSj"), {Term(S("y"))}))});
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "degree_three_self_join";
    s.catalog.AddRelation(S("LwRk"), {S("A")});
    s.body = Expr::Mul({Expr::Relation(S("LwRk"), {Term(S("x"))}),
                        Expr::Relation(S("LwRk"), {Term(S("y"))}),
                        Expr::Relation(S("LwRk"), {Term(S("z"))}),
                        Expr::Cmp(CmpOp::kEq, V("x"), V("y")),
                        Expr::Cmp(CmpOp::kEq, V("y"), V("z"))});
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "two_group_vars";
    s.catalog.AddRelation(S("LwRp"), {S("A"), S("B")});
    s.catalog.AddRelation(S("LwSp"), {S("B"), S("C")});
    s.group_vars = {S("a"), S("c")};
    s.body = Expr::Mul(
        {Expr::Relation(S("LwRp"), {Term(S("a")), Term(S("b"))}),
         Expr::Relation(S("LwSp"), {Term(S("b")), Term(S("c"))})});
    out.push_back(s);
  }
  return out;
}

// Mixed insert/delete stream with skew: min-of-two-uniforms concentrates
// mass on small values, so coalesced batches contain net multiplicities
// beyond ±1 (scaled firings) and exact cancellations.
Update RandomUpdate(const Scenario& s, Rng& rng) {
  std::vector<Symbol> rels = s.catalog.RelationNames();
  std::sort(rels.begin(), rels.end());
  Symbol rel = rels[rng.Below(rels.size())];
  std::vector<Value> values;
  for (size_t i = 0; i < s.catalog.Arity(rel); ++i) {
    if (s.strings && i == 0) {
      values.emplace_back("k" + std::to_string(rng.Range(0, 2)));
    } else {
      values.emplace_back(std::min(
          rng.Range(0, static_cast<int64_t>(s.domain_size)),
          rng.Range(0, static_cast<int64_t>(s.domain_size))));
    }
  }
  return rng.Bernoulli(0.6) ? Update::Insert(rel, std::move(values))
                            : Update::Delete(rel, std::move(values));
}

// The oracle: [[Sum_[group_vars](body)]] on the maintained base database.
class AgcaOracle {
 public:
  AgcaOracle(const Scenario& s)
      : db_(s.catalog), query_(Expr::Sum(s.group_vars, s.body)) {}

  void Apply(const Update& u) { db_.Apply(u); }

  ring::Gmr Result() const {
    auto g = agca::Evaluate(query_, db_, ring::Tuple());
    RINGDB_CHECK(g.ok());
    return *std::move(g);
  }

 private:
  ring::Database db_;
  ExprPtr query_;
};

class LoweringDifferentialTest : public ::testing::TestWithParam<size_t> {};

TEST_P(LoweringDifferentialTest, BytecodeMatchesAgcaOracle) {
  Scenario s = Scenarios()[GetParam()];
  SCOPED_TRACE(s.name);
  struct Config {
    size_t batch_size;
    size_t num_shards;
    runtime::Backend backend;
  };
  // Every (batch, shards) point runs under both backends: the compiled
  // engines must agree with the AGCA oracle exactly like the interpreter
  // (on compiler-less hosts they silently ARE the interpreter — the
  // release CI job asserts native engagement via native_backend_test).
  constexpr auto kI = runtime::Backend::kInterpret;
  constexpr auto kC = runtime::Backend::kCompile;
  const std::vector<Config> configs = {
      {1, 1, kI},    {7, 1, kI}, {1024, 1, kI}, {1, 2, kI},
      {7, 2, kI},    {7, 8, kI}, {1024, 8, kI}, {1, 1, kC},
      {7, 1, kC},    {1024, 1, kC}, {1, 2, kC}, {7, 2, kC},
      {7, 8, kC},    {1024, 8, kC}};
  std::vector<Engine> engines;
  for (const Config& c : configs) {
    runtime::EngineOptions options;
    options.batch_size = c.batch_size;
    options.num_shards = c.num_shards;
    options.backend = c.backend;
    auto e = Engine::Create(s.catalog, s.group_vars, s.body, options);
    ASSERT_TRUE(e.ok()) << e.status().ToString();
    engines.push_back(std::move(*e));
  }
  AgcaOracle oracle(s);

  Rng rng(4200 + GetParam());
  for (int window = 0; window < 6; ++window) {
    std::vector<Update> updates;
    for (int i = 0; i < 40; ++i) updates.push_back(RandomUpdate(s, rng));
    for (const Update& u : updates) oracle.Apply(u);
    ring::Gmr expected = oracle.Result();
    for (size_t e = 0; e < engines.size(); ++e) {
      ASSERT_TRUE(engines[e].ApplyBatch(updates).ok());
      ASSERT_EQ(expected, engines[e].ResultGmr())
          << "window " << window << " batch " << configs[e].batch_size
          << " shards " << engines[e].num_shards() << " backend "
          << (configs[e].backend == kC ? "compiled" : "interpreted")
          << (engines[e].native_enabled() ? " (native)" : "")
          << "\noracle:  " << expected.ToString()
          << "\nengine:  " << engines[e].ResultGmr().ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, LoweringDifferentialTest,
                         ::testing::Range<size_t>(0, Scenarios().size()),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return Scenarios()[info.param].name;
                         });

// Loop-value forwarding: in the revenue-shaped grouped statement the rhs
// view lookup has the same pattern as the loop driver, so the lowered
// program must read the enumerated entry's multiplicity (loopval) instead
// of re-probing the view.
TEST(LoweringTest, ForwardsLoopDriverValueInGroupedRhs) {
  Catalog catalog;
  catalog.AddRelation(S("LwFo"), {S("ok"), S("ck")});
  catalog.AddRelation(S("LwFl"), {S("ok2"), S("price")});
  ExprPtr body = Expr::Mul(
      {Expr::Relation(S("LwFo"), {Term(S("o")), Term(S("c"))}),
       Expr::Relation(S("LwFl"), {Term(S("o")), Term(S("p"))}), V("p")});
  auto compiled = compiler::Compile(catalog, {S("c")}, body);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto lowered = compiler::lower::Lower(compiled->program);
  bool any_forward = false;
  size_t loopy_statements = 0;
  for (size_t t = 0; t < lowered->stmts.size(); ++t) {
    for (const compiler::lower::StmtProgram& sp : lowered->stmts[t]) {
      if (sp.loops.empty()) continue;
      ++loopy_statements;
      for (const compiler::lower::Op& op : sp.rhs.ops) {
        if (op.code == compiler::lower::OpCode::kLoadLoopValue) {
          any_forward = true;
          // A forwarded rhs must not also probe the driver view.
          for (const compiler::lower::ProbePlan& p : sp.probes) {
            EXPECT_NE(p.view_id, sp.loops[op.a].view_id)
                << sp.ToString();
          }
        }
      }
    }
  }
  EXPECT_GT(loopy_statements, 0u);
  EXPECT_TRUE(any_forward);
}

// NC0 regression: the bytecode executor must report the exact operation
// counts the tree-walking interpreter reported (bench_opcount baselines,
// recorded before the rewrite). The constant-work claim is only evidence
// if the instrument itself is stable across executor rewrites.
TEST(LoweringTest, OperationCountsMatchTreeWalkerBaselines) {
  struct Spec {
    const char* rel;
    int degree;  // number of self-join factors
    uint64_t expected_ops_per_update;
  };
  // Baselines: count(R)=1, deg-2 self-join=5, deg-4 self-join=63.
  const Spec specs[] = {{"LwOc1", 1, 1}, {"LwOc2", 2, 5}, {"LwOc4", 4, 63}};
  for (const Spec& spec : specs) {
    Catalog catalog;
    Symbol r = S(spec.rel);
    catalog.AddRelation(r, {S("A")});
    std::vector<ExprPtr> fs;
    const char* vars[] = {"x", "y", "z", "w"};
    for (int i = 0; i < spec.degree; ++i) {
      fs.push_back(Expr::Relation(r, {Term(S(vars[i]))}));
    }
    for (int i = 0; i + 1 < spec.degree; ++i) {
      fs.push_back(
          Expr::Cmp(CmpOp::kEq, V(vars[i]), V(vars[i + 1])));
    }
    ExprPtr body = spec.degree == 1 ? fs[0] : Expr::Mul(std::move(fs));
    auto engine = Engine::Create(catalog, {}, body);
    ASSERT_TRUE(engine.ok());
    Rng rng(7);
    // Cover the whole domain first: a fresh value's zero-valued probe
    // skips emissions (in both executors), which would perturb the
    // measured constant.
    for (int64_t v = 0; v < 64; ++v) {
      ASSERT_TRUE(engine->Insert(r, {Value(v)}).ok());
    }
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(engine->Insert(r, {Value(rng.Range(0, 64))}).ok());
    }
    uint64_t before = engine->executor().stats().arithmetic_ops;
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(engine->Insert(r, {Value(rng.Range(0, 64))}).ok());
    }
    uint64_t ops = engine->executor().stats().arithmetic_ops - before;
    EXPECT_EQ(ops, spec.expected_ops_per_update * 100)
        << spec.rel << " degree " << spec.degree;
  }
}

// Scratch-buffer reuse contract: firing the same statements repeatedly
// must not leak state between firings (frame slots and emission buffers
// are shared across all statements of a program).
TEST(LoweringTest, RepeatedFiringsAreIndependent) {
  Catalog catalog;
  catalog.AddRelation(S("LwIx"), {S("A"), S("B")});
  catalog.AddRelation(S("LwIy"), {S("B"), S("C")});
  ExprPtr body = Expr::Mul(
      {Expr::Relation(S("LwIx"), {Term(S("a")), Term(S("b"))}),
       Expr::Relation(S("LwIy"), {Term(S("b")), Term(S("c"))}), V("c")});
  auto engine = Engine::Create(catalog, {S("a")}, body);
  ASSERT_TRUE(engine.ok());
  AgcaOracle oracle(
      {"ix", catalog, {S("a")}, body, /*domain_size=*/3, false});
  Rng rng(17);
  Scenario s{"ix", catalog, {S("a")}, body, 3, false};
  for (int i = 0; i < 200; ++i) {
    Update u = RandomUpdate(s, rng);
    ASSERT_TRUE(engine->Apply(u).ok());
    oracle.Apply(u);
  }
  EXPECT_EQ(oracle.Result(), engine->ResultGmr());
}

}  // namespace
}  // namespace ringdb
