// The §1.1 recursive memoization scheme, including an exact reproduction
// of Figure 1 (f(x) = x^2 over Z with U = {+1, -1}).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "algebra/memoizer.h"
#include "util/random.h"

namespace ringdb {
namespace algebra {
namespace {

using Memo = RecursiveMemoizer<int64_t, int64_t, int64_t>;

Memo MakeSquareMemo(int64_t x0) {
  return Memo([](const int64_t& x) { return x * x; },
              [](const int64_t& x, const int64_t& u) { return x + u; },
              /*updates=*/{+1, -1}, /*depth=*/3, x0);
}

TEST(MemoizerTest, Figure1RowForXZero) {
  // Figure 1 row x = 0: f=0, Δf(·,-1)=1, Δf(·,+1)=1,
  // Δ²f ∈ {2, -2, -2, 2} for (−1,−1), (−1,+1), (+1,−1), (+1,+1).
  Memo m = MakeSquareMemo(0);
  EXPECT_EQ(m.Current(), 0);
  EXPECT_EQ(m.DeltaAt({1}), 1);      // u = -1 (index 1)
  EXPECT_EQ(m.DeltaAt({0}), 1);      // u = +1 (index 0)
  EXPECT_EQ(m.DeltaAt({1, 1}), 2);   // Δ²f(x,-1,-1)
  EXPECT_EQ(m.DeltaAt({1, 0}), -2);  // Δ²f(x,-1,+1)
  EXPECT_EQ(m.DeltaAt({0, 1}), -2);  // Δ²f(x,+1,-1)
  EXPECT_EQ(m.DeltaAt({0, 0}), 2);   // Δ²f(x,+1,+1)
}

TEST(MemoizerTest, SevenValuesMemoized) {
  // |U|^0 + |U|^1 + |U|^2 = 7 values (the paper's count).
  Memo m = MakeSquareMemo(0);
  EXPECT_EQ(m.MemoizedCount(), 7u);
}

TEST(MemoizerTest, Figure1FullTable) {
  // All rows x = -2..4 of Figure 1, driven purely by additions after
  // initialization at x = -2. Expected values follow the closed forms
  // from Example 1.1: f(x) = x², Δf(x,u) = 2ux + u², Δ²f = 2·u1·u2.
  Memo m = MakeSquareMemo(-2);
  for (int64_t x = -2; x <= 4; ++x) {
    EXPECT_EQ(m.Current(), x * x) << "x=" << x;
    EXPECT_EQ(m.DeltaAt({1}), -2 * x + 1) << "x=" << x;  // u=-1
    EXPECT_EQ(m.DeltaAt({0}), 2 * x + 1) << "x=" << x;   // u=+1
    EXPECT_EQ(m.DeltaAt({1, 1}), 2);
    EXPECT_EQ(m.DeltaAt({1, 0}), -2);
    EXPECT_EQ(m.DeltaAt({0, 1}), -2);
    EXPECT_EQ(m.DeltaAt({0, 0}), 2);
    if (x < 4) m.ApplyUpdate(0);  // x += 1
  }
}

TEST(MemoizerTest, PaperWalkthroughFromXThree) {
  // §1.1: "let x = 3 and we increment x by 1. Then f += 7 = 16,
  // Δf(·,+1) += 2 = 9, Δf(·,-1) += -2 = -7, Δ²f += 0."
  Memo m = MakeSquareMemo(3);
  EXPECT_EQ(m.Current(), 9);
  EXPECT_EQ(m.DeltaAt({0}), 7);
  EXPECT_EQ(m.DeltaAt({1}), -5);
  m.ApplyUpdate(0);
  EXPECT_EQ(m.Current(), 16);
  EXPECT_EQ(m.DeltaAt({0}), 9);
  EXPECT_EQ(m.DeltaAt({1}), -7);
}

TEST(MemoizerTest, UpdateCostIsConstantPerMemoizedValue) {
  Memo m = MakeSquareMemo(0);
  size_t before = m.AdditionsPerformed();
  m.ApplyUpdate(0);
  // Levels 0 and 1 are refreshed: 1 + 2 = 3 additions; level 2 is the
  // terminal (constant) layer.
  EXPECT_EQ(m.AdditionsPerformed() - before, 3u);
  m.ApplyUpdate(1);
  EXPECT_EQ(m.AdditionsPerformed() - before, 6u);
}

TEST(MemoizerTest, RandomWalkNeverDiverges) {
  Memo m = MakeSquareMemo(0);
  Rng rng(42);
  int64_t x = 0;
  for (int i = 0; i < 1000; ++i) {
    size_t u = rng.Below(2);
    m.ApplyUpdate(u);
    x += (u == 0) ? 1 : -1;
    ASSERT_EQ(m.Current(), x * x) << "step " << i;
  }
}

TEST(MemoizerTest, CubicNeedsDepthFour) {
  // deg f = 3 => Δ³f is the first constant layer, Δ⁴f = 0.
  using M = RecursiveMemoizer<int64_t, int64_t, int64_t>;
  M m([](const int64_t& x) { return x * x * x; },
      [](const int64_t& x, const int64_t& u) { return x + u; },
      {+1, -1}, /*depth=*/4, 0);
  EXPECT_EQ(m.MemoizedCount(), 1u + 2u + 4u + 8u);
  int64_t x = 0;
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    size_t u = rng.Below(2);
    m.ApplyUpdate(u);
    x += (u == 0) ? 1 : -1;
    ASSERT_EQ(m.Current(), x * x * x);
  }
}

TEST(MemoizerTest, DeltaOracleMatchesDefinition) {
  Memo m = MakeSquareMemo(5);
  // Δf(5, +1) = (5+1)² - 5² = 11; Δ²f(5,+1,-1) = Δf(4,+1) - Δf(5,+1)
  //           = (2*4+1) - (2*5+1) = -2.
  EXPECT_EQ(m.EvalDeltaFromDefinition({0}), 11);
  EXPECT_EQ(m.EvalDeltaFromDefinition({0, 1}), -2);
}

TEST(MemoizerTest, VectorValuedFunction) {
  // The scheme is generic in the value group: maintain (x², x³) jointly.
  struct Pair {
    int64_t a = 0, b = 0;
    Pair operator+(const Pair& o) const { return {a + o.a, b + o.b}; }
    Pair operator-() const { return {-a, -b}; }
    bool operator==(const Pair& o) const = default;
  };
  RecursiveMemoizer<int64_t, int64_t, Pair> m(
      [](const int64_t& x) {
        return Pair{x * x, x * x * x};
      },
      [](const int64_t& x, const int64_t& u) { return x + u; }, {+1, -1},
      /*depth=*/4, 0);
  int64_t x = 0;
  for (int i = 0; i < 50; ++i) {
    m.ApplyUpdate(i % 2);
    x += (i % 2 == 0) ? 1 : -1;
    ASSERT_EQ(m.Current().a, x * x);
    ASSERT_EQ(m.Current().b, x * x * x);
  }
}

}  // namespace
}  // namespace algebra
}  // namespace ringdb
