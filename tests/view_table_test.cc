// ViewTable (runtime/view_table.h): default-zero lookups, cancellation
// erasure, keep-zeros mode (lazy domains), incrementally maintained
// partial-key slot-id indexes, deferred erasure under iteration, and the
// hash/equality contract of Value keys.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "runtime/view_table.h"
#include "util/random.h"

namespace ringdb {
namespace runtime {
namespace {

TEST(ViewTableTest, DefaultZeroAndAdd) {
  ViewTable v(2);
  Key k{Value(1), Value("a")};
  EXPECT_EQ(v.At(k), kZero);
  v.Add(k, Numeric(5));
  EXPECT_EQ(v.At(k), Numeric(5));
  v.Add(k, Numeric(-2));
  EXPECT_EQ(v.At(k), Numeric(3));
  EXPECT_EQ(v.size(), 1u);
}

TEST(ViewTableTest, CancellationErasesEntry) {
  ViewTable v(1);
  v.Add({Value(7)}, Numeric(4));
  v.Add({Value(7)}, Numeric(-4));
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.At({Value(7)}), kZero);
  EXPECT_FALSE(v.Contains({Value(7)}));
}

TEST(ViewTableTest, KeepZerosRetainsInitializedDomain) {
  ViewTable v(1);
  v.SetKeepZeros();
  v.EnsureEntry({Value(1)}, kZero);
  v.Add({Value(2)}, Numeric(3));
  v.Add({Value(2)}, Numeric(-3));
  EXPECT_EQ(v.size(), 2u);  // both survive as (possibly zero) entries
  EXPECT_TRUE(v.Contains({Value(1)}));
  EXPECT_TRUE(v.Contains({Value(2)}));
  EXPECT_EQ(v.At({Value(2)}), kZero);
}

TEST(ViewTableTest, EnsureEntryIsIdempotent) {
  ViewTable v(1);
  v.Add({Value(1)}, Numeric(9));
  v.EnsureEntry({Value(1)}, Numeric(555));  // no-op: entry exists
  EXPECT_EQ(v.At({Value(1)}), Numeric(9));
}

TEST(ViewTableTest, ZeroDeltaIsNoop) {
  ViewTable v(1);
  v.Add({Value(1)}, kZero);
  EXPECT_EQ(v.size(), 0u);
}

// Value::Hash regression: -0.0 and 0.0 compare equal, so they must land
// on one entry (the old hash split them, silently breaking every Key
// table's hash/equality invariant).
TEST(ViewTableTest, NegativeZeroAndZeroShareOneEntry) {
  ASSERT_EQ(Value(-0.0), Value(0.0));
  ASSERT_EQ(Value(-0.0).Hash(), Value(0.0).Hash());
  ViewTable v(1);
  v.Add({Value(0.0)}, Numeric(2));
  v.Add({Value(-0.0)}, Numeric(3));
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.At({Value(-0.0)}), Numeric(5));
  v.Add({Value(0.0)}, Numeric(-5));  // cancels across both spellings
  EXPECT_EQ(v.size(), 0u);
}

TEST(ViewTableTest, IndexFindsMatchingEntries) {
  ViewTable v(2);
  int idx = v.EnsureIndex({1});
  v.Add({Value(1), Value(10)}, kOne);
  v.Add({Value(2), Value(10)}, kOne);
  v.Add({Value(3), Value(20)}, kOne);
  std::set<int64_t> firsts;
  v.ForEachMatching(idx, {Value(10)}, [&](KeyView k, Numeric) {
    firsts.insert(k[0].AsInt());
  });
  EXPECT_EQ(firsts, (std::set<int64_t>{1, 2}));
}

TEST(ViewTableTest, IndexBuiltOverExistingEntries) {
  ViewTable v(2);
  v.Add({Value(1), Value(10)}, kOne);
  v.Add({Value(2), Value(20)}, kOne);
  int idx = v.EnsureIndex({1});  // built after the fact
  int count = 0;
  v.ForEachMatching(idx, {Value(20)}, [&](KeyView, Numeric) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ViewTableTest, IndexMaintainedAcrossErasure) {
  ViewTable v(2);
  int idx = v.EnsureIndex({0});
  v.Add({Value(1), Value(10)}, Numeric(2));
  v.Add({Value(1), Value(10)}, Numeric(-2));  // cancels, erased
  int count = 0;
  v.ForEachMatching(idx, {Value(1)}, [&](KeyView, Numeric) { ++count; });
  EXPECT_EQ(count, 0);
  // Re-adding resurrects the index row.
  v.Add({Value(1), Value(10)}, kOne);
  v.ForEachMatching(idx, {Value(1)}, [&](KeyView, Numeric) { ++count; });
  EXPECT_EQ(count, 1);
}

// Zero-cancellation in a keep_zeros view must keep the entry *and* its
// index row (the initialized domain is what self-loop statements
// enumerate), reported with multiplicity 0.
TEST(ViewTableTest, KeepZerosIndexRetainsCancelledEntries) {
  ViewTable v(2);
  v.SetKeepZeros();
  int idx = v.EnsureIndex({0});
  v.Add({Value(1), Value(10)}, Numeric(2));
  v.Add({Value(1), Value(11)}, Numeric(5));
  v.Add({Value(1), Value(10)}, Numeric(-2));  // cancels to zero, kept
  std::set<std::pair<int64_t, int64_t>> seen;
  v.ForEachMatching(idx, {Value(1)}, [&](KeyView k, Numeric m) {
    seen.insert({k[1].AsInt(), m.is_integer() ? m.AsInt() : -999});
  });
  EXPECT_EQ(seen, (std::set<std::pair<int64_t, int64_t>>{{10, 0}, {11, 5}}));
  EXPECT_EQ(v.size(), 2u);
}

TEST(ViewTableTest, EnsureIndexDeduplicates) {
  ViewTable v(3);
  EXPECT_EQ(v.EnsureIndex({0, 2}), v.EnsureIndex({0, 2}));
  EXPECT_NE(v.EnsureIndex({0, 2}), v.EnsureIndex({1}));
}

TEST(ViewTableTest, MultiPositionIndex) {
  ViewTable v(3);
  int idx = v.EnsureIndex({0, 2});
  v.Add({Value(1), Value("x"), Value(3)}, kOne);
  v.Add({Value(1), Value("y"), Value(3)}, kOne);
  v.Add({Value(1), Value("z"), Value(4)}, kOne);
  int count = 0;
  v.ForEachMatching(idx, {Value(1), Value(3)},
                    [&](KeyView, Numeric) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(ViewTableTest, RandomizedIndexConsistency) {
  // Index probes must always agree with a full scan, across insertions,
  // accumulation, and cancellation erasure (which swap-moves entries and
  // patches slot/index ids).
  ViewTable v(2);
  int idx = v.EnsureIndex({1});
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    Key k{Value(rng.Range(0, 50)), Value(rng.Range(0, 10))};
    v.Add(k, Numeric(rng.Range(-2, 2)));
  }
  for (int64_t probe = 0; probe <= 10; ++probe) {
    std::set<std::pair<int64_t, int64_t>> via_index, via_scan;
    v.ForEachMatching(idx, {Value(probe)}, [&](KeyView k, Numeric) {
      via_index.insert({k[0].AsInt(), k[1].AsInt()});
    });
    v.ForEach([&](KeyView k, Numeric) {
      if (k[1] == Value(probe)) {
        via_scan.insert({k[0].AsInt(), k[1].AsInt()});
      }
    });
    EXPECT_EQ(via_index, via_scan) << probe;
  }
}

TEST(ViewTableTest, RandomizedAgainstReferenceMap) {
  // Full behavioral check against a simple reference: At/size after a
  // mixed stream of adds and cancellations, for inline (arity 2) and
  // arena (arity 3) key storage.
  for (size_t arity : {size_t{2}, size_t{3}}) {
    ViewTable v(arity);
    std::map<std::vector<int64_t>, int64_t> ref;
    Rng rng(7 + arity);
    for (int i = 0; i < 20000; ++i) {
      std::vector<int64_t> rk;
      Key k;
      for (size_t j = 0; j < arity; ++j) {
        int64_t x = rng.Range(0, 12);
        rk.push_back(x);
        k.push_back(Value(x));
      }
      int64_t d = rng.Range(-2, 2);
      v.Add(k, Numeric(d));
      ref[rk] += d;
      if (ref[rk] == 0) ref.erase(rk);
    }
    EXPECT_EQ(v.size(), ref.size());
    for (const auto& [rk, m] : ref) {
      Key k;
      for (int64_t x : rk) k.push_back(Value(x));
      EXPECT_EQ(v.At(k), Numeric(m));
    }
    size_t scanned = 0;
    v.ForEach([&](KeyView k, Numeric m) {
      ++scanned;
      std::vector<int64_t> rk;
      for (size_t j = 0; j < arity; ++j) rk.push_back(k[j].AsInt());
      auto it = ref.find(rk);
      ASSERT_NE(it, ref.end());
      EXPECT_EQ(Numeric(it->second), m);
    });
    EXPECT_EQ(scanned, ref.size());
  }
}

TEST(ViewTableTest, ArenaKeysSurviveChurnAndReuse) {
  // Arity > 2 keys live in the per-view arena; erased blocks must be
  // reused without corrupting survivors (string payloads included).
  ViewTable v(4);
  int idx = v.EnsureIndex({0, 3});
  auto key = [](int64_t a, const std::string& s, int64_t c, int64_t d) {
    return Key{Value(a), Value(s), Value(c), Value(d)};
  };
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 40; ++i) {
      v.Add(key(i % 4, "payload-string-well-past-sso-" + std::to_string(i),
                round, i % 8),
            kOne);
    }
    for (int i = 0; i < 40; i += 2) {
      v.Add(key(i % 4, "payload-string-well-past-sso-" + std::to_string(i),
                round, i % 8),
            Numeric(-1));  // cancel half, freeing arena blocks
    }
  }
  size_t matches = 0;
  v.ForEachMatching(idx, {Value(1), Value(1)}, [&](KeyView k, Numeric m) {
    EXPECT_EQ(k[0].AsInt(), 1);
    EXPECT_EQ(k[3].AsInt(), 1);
    EXPECT_TRUE(k[1].is_string());
    EXPECT_EQ(m, kOne);
    ++matches;
  });
  EXPECT_EQ(matches, 5u * 50u);  // odd i with i%4==1, i%8==1: 1,9,17,25,33
}

// Mutation-safety: a callback may write to the very view it is
// iterating (self-loop statements do). Inserts are not visited
// (snapshot), cancellations are deferred and skipped, and the table is
// consistent afterwards.
TEST(ViewTableTest, ForEachMatchingSurvivesWritesToSameView) {
  ViewTable v(2);
  int idx = v.EnsureIndex({1});
  for (int i = 0; i < 64; ++i) {
    v.Add({Value(i), Value(i % 4)}, Numeric(i + 1));
  }
  size_t visited = 0;
  v.ForEachMatching(idx, {Value(1)}, [&](KeyView k, Numeric m) {
    ++visited;
    const int64_t first = k[0].AsInt();  // copy out before mutating
    v.Add({Value(first), Value(1)}, -m);       // cancel self
    v.Add({Value(first + 1000), Value(1)}, kOne);  // matching insert
    EXPECT_EQ(v.At({Value(first + 1000), Value(1)}), kOne);
    EXPECT_FALSE(v.Contains({Value(first), Value(1)}));
  });
  EXPECT_EQ(visited, 16u);  // snapshot: the 1000+ inserts not visited
  // The 16 matching originals cancelled, 48 others + 16 inserts remain.
  EXPECT_EQ(v.size(), 64u);
  size_t remaining = 0;
  v.ForEachMatching(idx, {Value(1)}, [&](KeyView k, Numeric m) {
    EXPECT_GE(k[0].AsInt(), 1000);
    EXPECT_EQ(m, kOne);
    ++remaining;
  });
  EXPECT_EQ(remaining, 16u);
}

TEST(ViewTableTest, NestedForEachWithDeferredErase) {
  ViewTable v(1);
  for (int i = 0; i < 8; ++i) v.Add({Value(i)}, kOne);
  size_t outer = 0;
  size_t cancelled = 0;
  v.ForEach([&](KeyView k, Numeric m) {
    ++outer;
    Key key{k[0]};
    v.Add(key, -m);  // deferred erase under iteration
    ++cancelled;
    // An erased-then-readded key resurrects in place.
    if (key[0].AsInt() == 3) {
      v.Add(key, Numeric(7));
      EXPECT_EQ(v.At(key), Numeric(7));
      --cancelled;
    }
    // Nested scans see exactly the live entries.
    size_t inner = 0;
    v.ForEach([&](KeyView, Numeric) { ++inner; });
    EXPECT_EQ(inner, 8u - cancelled);
    EXPECT_EQ(v.size(), 8u - cancelled);
  });
  EXPECT_EQ(outer, 8u);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.At({Value(3)}), Numeric(7));
  EXPECT_FALSE(v.Contains({Value(0)}));
}

TEST(ViewTableTest, ReserveKeepsContents) {
  ViewTable v(2);
  int idx = v.EnsureIndex({0});
  for (int i = 0; i < 100; ++i) v.Add({Value(i % 10), Value(i)}, kOne);
  v.Reserve(100000);
  EXPECT_EQ(v.size(), 100u);
  size_t count = 0;
  v.ForEachMatching(idx, {Value(3)}, [&](KeyView, Numeric) { ++count; });
  EXPECT_EQ(count, 10u);
}

TEST(ViewTableTest, ApproxBytesGrowsWithEntries) {
  ViewTable small(1), large(1);
  for (int i = 0; i < 10; ++i) small.Add({Value(i)}, kOne);
  for (int i = 0; i < 1000; ++i) large.Add({Value(i)}, kOne);
  EXPECT_GT(large.ApproxBytes(), small.ApproxBytes());
}

TEST(ViewTableTest, ApproxBytesCountsStringPayloadAndIndexes) {
  // Long string keys own heap payloads the estimate must include (the
  // old estimate skipped them, skewing the E3 memory comparison).
  ViewTable ints(1), strings(1);
  for (int i = 0; i < 500; ++i) {
    ints.Add({Value(i)}, kOne);
    strings.Add({Value("quite-a-long-key-string-number-" +
                       std::to_string(i))},
                kOne);
  }
  EXPECT_GT(strings.ApproxBytes(), ints.ApproxBytes() + 500 * 16);
  // Registering an index adds accounted storage.
  ViewTable indexed(2), plain(2);
  indexed.EnsureIndex({0});
  for (int i = 0; i < 500; ++i) {
    indexed.Add({Value(i % 7), Value(i)}, kOne);
    plain.Add({Value(i % 7), Value(i)}, kOne);
  }
  EXPECT_GT(indexed.ApproxBytes(), plain.ApproxBytes());
}

// The incremental ApproxBytes accounting (a live gauge maintained at
// insert/erase/index-churn sites) must equal the full recount walk at
// every churn point — across string payloads (SSO and heap), arena
// keys, index registration over existing entries, cancellation erasure
// (swap-move + row compaction), resurrection, and keep-zeros domains.
// Debug builds also self-check inside ApproxBytes; this test pins the
// property in release builds too.
TEST(ViewTableTest, ApproxBytesIncrementalMatchesSlowWalkUnderChurn) {
  for (size_t arity : {size_t{2}, size_t{3}}) {
    ViewTable v(arity);
    int idx = v.EnsureIndex({0});
    Rng rng(31 + arity);
    auto make_key = [&](int64_t salt) {
      Key k;
      k.push_back(Value(salt % 9));
      // Mix of int, SSO string, and heap string key values.
      const int64_t kind = salt % 3;
      k.push_back(kind == 0 ? Value(salt)
                  : kind == 1
                      ? Value("sso")
                      : Value("heap-allocated-key-string-payload-" +
                              std::to_string(salt % 17)));
      while (k.size() < arity) k.push_back(Value(salt % 5));
      return k;
    };
    for (int i = 0; i < 3000; ++i) {
      v.Add(make_key(rng.Range(0, 400)), Numeric(rng.Range(-2, 2)));
      if (i % 257 == 0) {
        EXPECT_EQ(v.ApproxBytes(), v.ApproxBytesSlow()) << "churn step " << i;
      }
    }
    // A second index built over the existing population must be
    // accounted in one pass.
    v.EnsureIndex({1});
    EXPECT_EQ(v.ApproxBytes(), v.ApproxBytesSlow());
    // Deferred erases under iteration, then resurrection.
    v.ForEachMatching(idx, {Value(3)}, [&](KeyView k, Numeric m) {
      v.Add(k.ToKey(), -m);
    });
    EXPECT_EQ(v.ApproxBytes(), v.ApproxBytesSlow());
    for (int i = 0; i < 500; ++i) {
      v.Add(make_key(rng.Range(0, 400)), kOne);
    }
    EXPECT_EQ(v.ApproxBytes(), v.ApproxBytesSlow());
  }
  // keep_zeros domains retain cancelled entries; their storage stays
  // accounted.
  ViewTable lazy(1);
  lazy.SetKeepZeros();
  for (int i = 0; i < 200; ++i) {
    lazy.EnsureEntry({Value("lazy-domain-key-string-" + std::to_string(i))},
                     kZero);
    lazy.Add({Value("lazy-domain-key-string-" + std::to_string(i))},
             Numeric(i % 3 - 1));
  }
  EXPECT_EQ(lazy.ApproxBytes(), lazy.ApproxBytesSlow());
}

TEST(ViewTableTest, ToStringRendersEntries) {
  ViewTable v(2);
  v.Add({Value(1), Value("a")}, Numeric(3));
  EXPECT_EQ(v.ToString(), "{[1, a] -> 3}");
}

}  // namespace
}  // namespace runtime
}  // namespace ringdb
