// Engine facade: result access in group-var order, error paths, stats,
// multiple engines in one process, and long mixed streams.

#include <gtest/gtest.h>

#include "agca/ast.h"
#include "runtime/engine.h"
#include "util/random.h"

namespace ringdb {
namespace runtime {
namespace {

using agca::CmpOp;
using agca::Expr;
using agca::ExprPtr;
using agca::Term;
using ring::Catalog;

Symbol S(const char* s) { return Symbol::Intern(s); }

TEST(EngineTest, ResultAtUsesCallerGroupOrder) {
  Catalog catalog;
  catalog.AddRelation(S("Re1"), {S("A"), S("B"), S("C")});
  // Group by (c, a) — deliberately not the canonical traversal order.
  ExprPtr body = Expr::Relation(
      S("Re1"), {Term(S("a")), Term(S("b")), Term(S("c"))});
  auto engine = Engine::Create(catalog, {S("c"), S("a")}, body);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE(
      engine->Insert(S("Re1"), {Value(1), Value(2), Value(3)}).ok());
  // ResultAt takes (c, a) in the declared order.
  EXPECT_EQ(engine->ResultAt({Value(3), Value(1)}), kOne);
  EXPECT_EQ(engine->ResultAt({Value(1), Value(3)}), kZero);

  ring::Gmr gmr = engine->ResultGmr();
  ring::Tuple expected{{S("a"), Value(1)}, {S("c"), Value(3)}};
  EXPECT_EQ(gmr.At(expected), kOne);
}

TEST(EngineTest, UnknownRelationUpdateIsError) {
  Catalog catalog;
  catalog.AddRelation(S("Re2"), {S("A")});
  auto engine = Engine::Create(catalog, {},
                               Expr::Relation(S("Re2"), {Term(S("x"))}));
  ASSERT_TRUE(engine.ok());
  Status s = engine->Insert(S("NotThere"), {Value(1)});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(EngineTest, ArityMismatchUpdateIsError) {
  Catalog catalog;
  catalog.AddRelation(S("Re3"), {S("A"), S("B")});
  auto engine = Engine::Create(
      catalog, {},
      Expr::Relation(S("Re3"), {Term(S("x")), Term(S("y"))}));
  ASSERT_TRUE(engine.ok());
  Status s = engine->Insert(S("Re3"), {Value(1)});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, UpdatesToIrrelevantRelationsAreCheapNoops) {
  Catalog catalog;
  catalog.AddRelation(S("Re4"), {S("A")});
  catalog.AddRelation(S("Other4"), {S("A")});
  auto engine = Engine::Create(catalog, {},
                               Expr::Relation(S("Re4"), {Term(S("x"))}));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->Insert(S("Other4"), {Value(1)}).ok());
  EXPECT_EQ(engine->ResultScalar(), kZero);
  EXPECT_EQ(engine->executor().stats().entries_touched, 0u);
}

TEST(EngineTest, StatsAccumulateAndReset) {
  Catalog catalog;
  catalog.AddRelation(S("Re5"), {S("A")});
  auto engine = Engine::Create(catalog, {},
                               Expr::Relation(S("Re5"), {Term(S("x"))}));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->Insert(S("Re5"), {Value(1)}).ok());
  EXPECT_EQ(engine->executor().stats().updates, 1u);
  EXPECT_GT(engine->executor().stats().arithmetic_ops, 0u);
  engine->executor().ResetStats();
  EXPECT_EQ(engine->executor().stats().updates, 0u);
}

TEST(EngineTest, TwoEnginesShareNothing) {
  Catalog catalog;
  catalog.AddRelation(S("Re6"), {S("A")});
  ExprPtr body = Expr::Relation(S("Re6"), {Term(S("x"))});
  auto e1 = Engine::Create(catalog, {}, body);
  auto e2 = Engine::Create(catalog, {}, body);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  ASSERT_TRUE(e1->Insert(S("Re6"), {Value(1)}).ok());
  EXPECT_EQ(e1->ResultScalar(), kOne);
  EXPECT_EQ(e2->ResultScalar(), kZero);
}

TEST(EngineTest, NegativeMultiplicitiesRoundTrip) {
  // Deleting below zero and re-inserting must cancel exactly.
  Catalog catalog;
  catalog.AddRelation(S("Re7"), {S("A")});
  ExprPtr body = Expr::Mul({Expr::Relation(S("Re7"), {Term(S("x"))}),
                            Expr::Relation(S("Re7"), {Term(S("y"))}),
                            Expr::Cmp(CmpOp::kEq, Expr::Var(S("x")),
                                      Expr::Var(S("y")))});
  auto engine = Engine::Create(catalog, {}, body);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->Delete(S("Re7"), {Value(9)}).ok());  // -1 copies
  EXPECT_EQ(engine->ResultScalar(), kOne);  // (-1)^2 = 1 pair
  ASSERT_TRUE(engine->Insert(S("Re7"), {Value(9)}).ok());  // back to 0
  EXPECT_EQ(engine->ResultScalar(), kZero);
  // The root view holds no residue.
  EXPECT_EQ(engine->executor().root().size(), 0u);
}

TEST(EngineTest, LongMixedStreamStaysExact) {
  Catalog catalog;
  catalog.AddRelation(S("Re8"), {S("k"), S("v")});
  ExprPtr body = Expr::Mul(
      {Expr::Relation(S("Re8"), {Term(S("k")), Term(S("v"))}),
       Expr::Var(S("v"))});
  auto engine = Engine::Create(catalog, {S("k")}, body);
  ASSERT_TRUE(engine.ok());
  Rng rng(123);
  // Shadow the expected sums exactly.
  std::map<int64_t, int64_t> expected;
  for (int i = 0; i < 20000; ++i) {
    int64_t k = rng.Range(0, 9), v = rng.Range(-5, 5);
    if (rng.Bernoulli(0.3)) {
      ASSERT_TRUE(engine->Delete(S("Re8"), {Value(k), Value(v)}).ok());
      expected[k] -= v;
    } else {
      ASSERT_TRUE(engine->Insert(S("Re8"), {Value(k), Value(v)}).ok());
      expected[k] += v;
    }
  }
  for (const auto& [k, sum] : expected) {
    EXPECT_EQ(engine->ResultAt({Value(k)}), Numeric(sum)) << k;
  }
}

}  // namespace
}  // namespace runtime
}  // namespace ringdb
