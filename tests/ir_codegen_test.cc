// The NC0C IR: TExpr op counting (the NC0 constant), printing, and the
// C-source generator's structural properties across a query portfolio.

#include <gtest/gtest.h>

#include <string>

#include "agca/ast.h"
#include "compiler/codegen_c.h"
#include "compiler/compile.h"
#include "compiler/ir.h"

namespace ringdb {
namespace compiler {
namespace {

using agca::CmpOp;
using agca::Expr;
using agca::ExprPtr;
using agca::Term;

Symbol S(const char* s) { return Symbol::Intern(s); }

TEST(TExprTest, OpCountIsStructural) {
  // (c * m[k] + p) has 1 mul + 1 add = 2 ops; a comparison adds 1.
  TExprPtr e = TExpr::Add(
      {TExpr::Mul({TExpr::Const(Value(3)),
                   TExpr::ViewLookup(0, {KeyRef::Param(0)})}),
       TExpr::Param(1)});
  EXPECT_EQ(e->OpCount(), 2u);
  TExprPtr cmp = TExpr::Cmp(CmpOp::kEq, TExpr::Param(0), TExpr::Param(1));
  EXPECT_EQ(cmp->OpCount(), 1u);
  EXPECT_EQ(TExpr::Mul({e, cmp})->OpCount(), 4u);
}

TEST(TExprTest, SingletonAddMulCollapse) {
  TExprPtr p = TExpr::Param(0);
  EXPECT_EQ(TExpr::Add({p})->kind(), TExpr::Kind::kParam);
  EXPECT_EQ(TExpr::Mul({p})->kind(), TExpr::Kind::kParam);
}

TEST(TExprTest, Printing) {
  TExprPtr e = TExpr::Mul(
      {TExpr::Const(Value(-1)),
       TExpr::ViewLookup(3, {KeyRef::Param(0), KeyRef::LoopVar(S("k"))}),
       TExpr::Cmp(CmpOp::kLt, TExpr::Param(1),
                  TExpr::Const(Value("lim")))});
  EXPECT_EQ(e->ToString(), "(-1 * m3[@p0, k] * (@p1 < 'lim'))");
}

TEST(KeyRefTest, Kinds) {
  EXPECT_EQ(KeyRef::Param(2).ToString(), "@p2");
  EXPECT_EQ(KeyRef::LoopVar(S("v")).ToString(), "v");
  EXPECT_EQ(KeyRef::Const(Value("s")).ToString(), "'s'");
  EXPECT_EQ(KeyRef::Const(Value(5)).ToString(), "5");
  EXPECT_TRUE(KeyRef::Param(0).IsBoundBeforeLoops());
  EXPECT_FALSE(KeyRef::LoopVar(S("v")).IsBoundBeforeLoops());
}

TEST(ProgramPrintTest, ListsViewsAndTriggers) {
  ring::Catalog catalog;
  catalog.AddRelation(S("Rp1"), {S("A")});
  auto compiled = Compile(catalog, {},
                          Expr::Relation(S("Rp1"), {Term(S("x"))}));
  ASSERT_TRUE(compiled.ok());
  std::string s = compiled->program.ToString();
  EXPECT_NE(s.find("views:"), std::string::npos);
  EXPECT_NE(s.find("m0[] (deg 1)"), std::string::npos);
  EXPECT_NE(s.find("on +Rp1:"), std::string::npos);
  EXPECT_NE(s.find("on -Rp1:"), std::string::npos);
  EXPECT_NE(s.find("m0[] += 1"), std::string::npos);
  EXPECT_NE(s.find("m0[] += -1"), std::string::npos);
}

TEST(CodegenTest, LoopsEmitForeachBlocks) {
  ring::Catalog catalog;
  catalog.AddRelation(S("Cg2"), {S("cid"), S("nation")});
  ExprPtr body =
      Expr::Mul({Expr::Relation(S("Cg2"), {Term(S("c")), Term(S("n"))}),
                 Expr::Relation(S("Cg2"), {Term(S("c2")), Term(S("n"))})});
  auto compiled = Compile(catalog, {S("c")}, body);
  ASSERT_TRUE(compiled.ok());
  std::string code = GenerateC(compiled->program);
  EXPECT_NE(code.find("MAP_FOREACH_MATCHING(m"), std::string::npos);
  EXPECT_NE(code.find("void on_insert_Cg2(value_t p0, value_t p1)"),
            std::string::npos);
}

TEST(CodegenTest, EveryViewGetsAMapDeclaration) {
  ring::Catalog catalog;
  catalog.AddRelation(S("Rg3"), {S("A"), S("B")});
  catalog.AddRelation(S("Sg3"), {S("B"), S("C")});
  ExprPtr body = Expr::Mul(
      {Expr::Relation(S("Rg3"), {Term(S("a")), Term(S("b"))}),
       Expr::Relation(S("Sg3"), {Term(S("b")), Term(S("c"))})});
  auto compiled = Compile(catalog, {}, body);
  ASSERT_TRUE(compiled.ok());
  std::string code = GenerateC(compiled->program);
  for (const ViewDef& v : compiled->program.views) {
    EXPECT_NE(code.find("static map_t m" + std::to_string(v.id)),
              std::string::npos)
        << v.ToString();
  }
}

TEST(CodegenTest, RhsOpCountIsQueryConstant) {
  // The emitted statements' op counts are a static property: record them
  // for the Example 1.2 query as a regression anchor of the NC0 claim.
  ring::Catalog catalog;
  catalog.AddRelation(S("Rg4"), {S("A")});
  ExprPtr body = Expr::Mul({Expr::Relation(S("Rg4"), {Term(S("x"))}),
                            Expr::Relation(S("Rg4"), {Term(S("y"))}),
                            Expr::Cmp(CmpOp::kEq, Expr::Var(S("x")),
                                      Expr::Var(S("y")))});
  auto compiled = Compile(catalog, {}, body);
  ASSERT_TRUE(compiled.ok());
  size_t total_ops = 0;
  for (const Trigger& t : compiled->program.triggers) {
    for (const Statement& st : t.statements) {
      total_ops += st.rhs->OpCount() + 1;  // + the final +=
    }
  }
  // Small and static: every update executes at most this many ops.
  EXPECT_GT(total_ops, 0u);
  EXPECT_LT(total_ops, 24u);
}

}  // namespace
}  // namespace compiler
}  // namespace ringdb
