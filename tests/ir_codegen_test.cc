// The NC0C IR: TExpr op counting (the NC0 constant), printing, and the
// native C emitter's structural properties across a query portfolio —
// including the golden-file lock on the revenue query's +lineitem
// trigger, so any change to the emission format shows up as a reviewable
// diff instead of a silent drift (set RINGDB_REGEN_GOLDEN=1 to rewrite
// the golden after an intentional change).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "agca/ast.h"
#include "compiler/codegen_c.h"
#include "compiler/compile.h"
#include "compiler/ir.h"
#include "sql/translate.h"
#include "workload/stream.h"

namespace ringdb {
namespace compiler {
namespace {

using agca::CmpOp;
using agca::Expr;
using agca::ExprPtr;
using agca::Term;

Symbol S(const char* s) { return Symbol::Intern(s); }
ExprPtr V(const char* name) { return Expr::Var(S(name)); }

TEST(TExprTest, OpCountIsStructural) {
  // (c * m[k] + p) has 1 mul + 1 add = 2 ops; a comparison adds 1.
  TExprPtr e = TExpr::Add(
      {TExpr::Mul({TExpr::Const(Value(3)),
                   TExpr::ViewLookup(0, {KeyRef::Param(0)})}),
       TExpr::Param(1)});
  EXPECT_EQ(e->OpCount(), 2u);
  TExprPtr cmp = TExpr::Cmp(CmpOp::kEq, TExpr::Param(0), TExpr::Param(1));
  EXPECT_EQ(cmp->OpCount(), 1u);
  EXPECT_EQ(TExpr::Mul({e, cmp})->OpCount(), 4u);
}

TEST(TExprTest, SingletonAddMulCollapse) {
  TExprPtr p = TExpr::Param(0);
  EXPECT_EQ(TExpr::Add({p})->kind(), TExpr::Kind::kParam);
  EXPECT_EQ(TExpr::Mul({p})->kind(), TExpr::Kind::kParam);
}

TEST(TExprTest, Printing) {
  TExprPtr e = TExpr::Mul(
      {TExpr::Const(Value(-1)),
       TExpr::ViewLookup(3, {KeyRef::Param(0), KeyRef::LoopVar(S("k"))}),
       TExpr::Cmp(CmpOp::kLt, TExpr::Param(1),
                  TExpr::Const(Value("lim")))});
  EXPECT_EQ(e->ToString(), "(-1 * m3[@p0, k] * (@p1 < 'lim'))");
}

TEST(KeyRefTest, Kinds) {
  EXPECT_EQ(KeyRef::Param(2).ToString(), "@p2");
  EXPECT_EQ(KeyRef::LoopVar(S("v")).ToString(), "v");
  EXPECT_EQ(KeyRef::Const(Value("s")).ToString(), "'s'");
  EXPECT_EQ(KeyRef::Const(Value(5)).ToString(), "5");
  EXPECT_TRUE(KeyRef::Param(0).IsBoundBeforeLoops());
  EXPECT_FALSE(KeyRef::LoopVar(S("v")).IsBoundBeforeLoops());
}

TEST(ProgramPrintTest, ListsViewsAndTriggers) {
  ring::Catalog catalog;
  catalog.AddRelation(S("Rp1"), {S("A")});
  auto compiled = Compile(catalog, {},
                          Expr::Relation(S("Rp1"), {Term(S("x"))}));
  ASSERT_TRUE(compiled.ok());
  std::string s = compiled->program.ToString();
  EXPECT_NE(s.find("views:"), std::string::npos);
  EXPECT_NE(s.find("m0[] (deg 1)"), std::string::npos);
  EXPECT_NE(s.find("on +Rp1:"), std::string::npos);
  EXPECT_NE(s.find("on -Rp1:"), std::string::npos);
  EXPECT_NE(s.find("m0[] += 1"), std::string::npos);
  EXPECT_NE(s.find("m0[] += -1"), std::string::npos);
}

TEST(CodegenTest, LoopsEmitForeachCallbacks) {
  ring::Catalog catalog;
  catalog.AddRelation(S("Cg2"), {S("cid"), S("nation")});
  ExprPtr body =
      Expr::Mul({Expr::Relation(S("Cg2"), {Term(S("c")), Term(S("n"))}),
                 Expr::Relation(S("Cg2"), {Term(S("c2")), Term(S("n"))})});
  auto compiled = Compile(catalog, {S("c")}, body);
  ASSERT_TRUE(compiled.ok());
  std::string code = GenerateC(compiled->program);
  // The grouped self-join needs index-driven enumeration: loop callbacks
  // threaded through the host api, binds copied into the env frame.
  EXPECT_NE(code.find("E->api->foreach_matching(E->ctx"),
            std::string::npos);
  EXPECT_NE(code.find("_l0(void* ve, const RdbVal* k, RdbNum m)"),
            std::string::npos);
  EXPECT_NE(code.find("E->f[0] = k["), std::string::npos);
}

TEST(CodegenTest, EveryViewListedAndEmittableStatementsExported) {
  ring::Catalog catalog;
  catalog.AddRelation(S("Rg3"), {S("A"), S("B")});
  catalog.AddRelation(S("Sg3"), {S("B"), S("C")});
  ExprPtr body = Expr::Mul(
      {Expr::Relation(S("Rg3"), {Term(S("a")), Term(S("b"))}),
       Expr::Relation(S("Sg3"), {Term(S("b")), Term(S("c"))})});
  auto compiled = Compile(catalog, {}, body);
  ASSERT_TRUE(compiled.ok());
  CodegenModule mod = GenerateModule(compiled->program);
  // Views are host-owned now; the module lists them in its header
  // comment for self-description rather than declaring maps.
  for (const ViewDef& v : compiled->program.views) {
    EXPECT_NE(mod.source.find(" *   " + v.ToString()), std::string::npos)
        << v.ToString();
  }
  for (size_t t = 0; t < mod.stmts.size(); ++t) {
    for (const CodegenStmt& cs : mod.stmts[t]) {
      ASSERT_TRUE(cs.emitted);  // equality join: nothing lazy
      EXPECT_NE(mod.source.find("void " + cs.fn + "("), std::string::npos);
    }
  }
}

TEST(CodegenTest, LazyDomainStatementsFallBackToInterpreter) {
  // Inequality join: lazy domain maintenance (paper footnote 2) is
  // deliberately not emitted — those statements keep the interpreter.
  ring::Catalog catalog;
  catalog.AddRelation(S("Rg5"), {S("A")});
  catalog.AddRelation(S("Sg5"), {S("A")});
  ExprPtr body = Expr::Mul({Expr::Relation(S("Rg5"), {Term(S("x"))}),
                            Expr::Relation(S("Sg5"), {Term(S("y"))}),
                            Expr::Cmp(CmpOp::kLt, V("x"), V("y"))});
  auto compiled = Compile(catalog, {}, body);
  ASSERT_TRUE(compiled.ok());
  CodegenModule mod = GenerateModule(compiled->program);
  size_t fallback = 0;
  for (const auto& trigger : mod.stmts) {
    for (const CodegenStmt& cs : trigger) {
      if (!cs.emitted) ++fallback;
    }
  }
  EXPECT_GT(fallback, 0u);
  EXPECT_NE(mod.source.find("interpreter fallback (lazy domain)"),
            std::string::npos);
}

TEST(CodegenTest, GroupedVariantDistinctWhenParamsFold) {
  // Revenue shape: the +lineitem statements fold price/qty out of the
  // grouped rhs, so each groupable statement exports a distinct _g
  // function next to the plain one.
  ring::Catalog catalog = workload::OrdersSchema();
  auto t = sql::TranslateSql(
      catalog,
      "SELECT o.ckey, SUM(l.price * l.qty) FROM orders o, lineitem l "
      "WHERE o.okey = l.okey GROUP BY o.ckey");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  auto compiled = Compile(catalog, t->group_vars, t->body);
  ASSERT_TRUE(compiled.ok());
  CodegenModule mod = GenerateModule(compiled->program);
  bool any_distinct = false;
  for (const auto& trigger : mod.stmts) {
    for (const CodegenStmt& cs : trigger) {
      if (cs.grouped_fn.empty()) continue;
      EXPECT_EQ(cs.grouped_fn, cs.fn + "_g");
      any_distinct = true;
      EXPECT_NE(mod.source.find("void " + cs.grouped_fn + "("),
                std::string::npos);
    }
  }
  EXPECT_TRUE(any_distinct);
}

TEST(CodegenTest, GroupedVariantSharedWhenNothingFolds) {
  // Weighted grouped join where the weight is a joined column, not an
  // update parameter: nothing folds out of the grouped rhs, so the
  // module records grouped_fn == fn instead of duplicating code.
  ring::Catalog catalog;
  catalog.AddRelation(S("Rgs"), {S("ok"), S("ck"), S("z")});
  catalog.AddRelation(S("Sgs"), {S("ok2"), S("v")});
  ExprPtr body = Expr::Mul(
      {Expr::Relation(S("Rgs"),
                      {Term(S("o")), Term(S("c")), Term(S("z"))}),
       Expr::Relation(S("Sgs"), {Term(S("o")), Term(S("w"))}), V("w")});
  auto compiled = Compile(catalog, {S("c")}, body);
  ASSERT_TRUE(compiled.ok());
  CodegenModule mod = GenerateModule(compiled->program);
  bool any_shared = false;
  for (const auto& trigger : mod.stmts) {
    for (const CodegenStmt& cs : trigger) {
      if (!cs.grouped_fn.empty() && cs.grouped_fn == cs.fn) {
        any_shared = true;
      }
    }
  }
  EXPECT_TRUE(any_shared);
}

TEST(CodegenTest, TrivialForwardedLoopPrefersInterpreter) {
  // The strength-reduced grouped join (rhs = one forwarded load) is a
  // bind-and-copy loop the interpreter already executes optimally; the
  // static cost model must flag it prefer-interpreter so profiling-free
  // builds (-DRINGDB_NO_METRICS) keep it off the ABI marshalling tax.
  // Since PR 6 the variant is still *emitted* — the runtime's profile-
  // guided selection may overturn the verdict on the live workload.
  ring::Catalog catalog;
  catalog.AddRelation(S("Rcm"), {S("ok"), S("ck")});
  catalog.AddRelation(S("Scm"), {S("ok2"), S("v")});
  ExprPtr body = Expr::Mul(
      {Expr::Relation(S("Rcm"), {Term(S("o")), Term(S("c"))}),
       Expr::Relation(S("Scm"), {Term(S("o")), Term(S("w"))})});
  auto compiled = Compile(catalog, {S("c")}, body);
  ASSERT_TRUE(compiled.ok());
  CodegenModule mod = GenerateModule(compiled->program);
  bool any_prefer_interp = false;
  for (const auto& trigger : mod.stmts) {
    for (const CodegenStmt& cs : trigger) {
      if (!cs.emitted) continue;
      EXPECT_FALSE(cs.fn.empty());
      if (!cs.prefer_native || !cs.grouped_prefer_native) {
        any_prefer_interp = true;
      }
    }
  }
  EXPECT_TRUE(any_prefer_interp);
  EXPECT_NE(mod.source.find("static cost model prefers interpreter"),
            std::string::npos);
}

// Golden-file lock on the emitted C of the revenue query's +lineitem
// trigger. The emission format is an interface now (reviewers read these
// diffs; the .so cache keys on the text): refactors of the emitter must
// show up here. After an intentional format change, regenerate with
//   RINGDB_REGEN_GOLDEN=1 ./build/ir_codegen_test
TEST(CodegenTest, RevenueLineitemTriggerMatchesGolden) {
  ring::Catalog catalog = workload::OrdersSchema();
  auto t = sql::TranslateSql(
      catalog,
      "SELECT o.ckey, SUM(l.price * l.qty) FROM orders o, lineitem l "
      "WHERE o.okey = l.okey GROUP BY o.ckey");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  auto compiled = Compile(catalog, t->group_vars, t->body);
  ASSERT_TRUE(compiled.ok());
  std::string source = GenerateC(compiled->program);

  const std::string marker = "/* === trigger +lineitem === */";
  const size_t begin = source.find(marker);
  ASSERT_NE(begin, std::string::npos);
  size_t end = source.find("/* === trigger ", begin + marker.size());
  if (end == std::string::npos) {
    end = source.find("/* Loader handshake", begin);
  }
  ASSERT_NE(end, std::string::npos);
  const std::string section = source.substr(begin, end - begin);

  const std::string golden_path = std::string(RINGDB_SOURCE_DIR) +
                                  "/tests/golden/revenue_lineitem_trigger.c";
  if (std::getenv("RINGDB_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::trunc);
    out << section;
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path;
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), section)
      << "emitted C for the +lineitem trigger changed; if intentional, "
         "regenerate with RINGDB_REGEN_GOLDEN=1";
}

TEST(CodegenTest, RhsOpCountIsQueryConstant) {
  // The emitted statements' op counts are a static property: record them
  // for the Example 1.2 query as a regression anchor of the NC0 claim.
  ring::Catalog catalog;
  catalog.AddRelation(S("Rg4"), {S("A")});
  ExprPtr body = Expr::Mul({Expr::Relation(S("Rg4"), {Term(S("x"))}),
                            Expr::Relation(S("Rg4"), {Term(S("y"))}),
                            Expr::Cmp(CmpOp::kEq, Expr::Var(S("x")),
                                      Expr::Var(S("y")))});
  auto compiled = Compile(catalog, {}, body);
  ASSERT_TRUE(compiled.ok());
  size_t total_ops = 0;
  for (const Trigger& t : compiled->program.triggers) {
    for (const Statement& st : t.statements) {
      total_ops += st.rhs->OpCount() + 1;  // + the final +=
    }
  }
  // Small and static: every update executes at most this many ops.
  EXPECT_GT(total_ops, 0u);
  EXPECT_LT(total_ops, 24u);
}

}  // namespace
}  // namespace compiler
}  // namespace ringdb
